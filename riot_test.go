package riot

import (
	"math"
	"os"
	"strings"
	"testing"

	"riot/internal/engine"
)

func backends() []Backend {
	return []Backend{BackendRIOT, BackendPlainR, BackendStrawman, BackendMatNamed, BackendFullDB}
}

func TestSessionVectorPipeline(t *testing.T) {
	for _, b := range backends() {
		s := NewSession(Config{Backend: b})
		x, err := s.SeqVector(1000)
		if err != nil {
			t.Fatal(err)
		}
		xm, err := x.Sub(3)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := xm.Square()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sq.Sqrt()
		if err != nil {
			t.Fatal(err)
		}
		d, err := rt.Add(7)
		if err != nil {
			t.Fatal(err)
		}
		head, err := d.Head(5)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range head {
			want := math.Abs(float64(i)-3) + 7
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("%s: head[%d]=%v want %v", s.EngineName(), i, v, want)
			}
		}
		sum, err := d.Sum()
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for i := 0; i < 1000; i++ {
			want += math.Abs(float64(i)-3) + 7
		}
		if math.Abs(sum-want) > 1e-6 {
			t.Fatalf("%s: sum=%v want %v", s.EngineName(), sum, want)
		}
	}
}

func TestSessionGatherAndSlice(t *testing.T) {
	for _, b := range backends() {
		s := NewSession(Config{Backend: b})
		x, err := s.NewVector(500, func(i int64) float64 { return float64(i * 2) })
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.NewVector(4, func(i int64) float64 { return float64(i * 100) })
		if err != nil {
			t.Fatal(err)
		}
		g, err := x.Gather(idx)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := g.Values()
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if v != float64(i*200) {
				t.Fatalf("%s: gather[%d]=%v", s.EngineName(), i, v)
			}
		}
		sl, err := x.Slice(10, 13)
		if err != nil {
			t.Fatal(err)
		}
		svals, err := sl.Values()
		if err != nil {
			t.Fatal(err)
		}
		if len(svals) != 3 || svals[0] != 20 || svals[2] != 24 {
			t.Fatalf("%s: slice=%v", s.EngineName(), svals)
		}
	}
}

func TestSessionUpdateWhere(t *testing.T) {
	for _, b := range backends() {
		s := NewSession(Config{Backend: b})
		x, err := s.SeqVector(50)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := x.Square()
		if err != nil {
			t.Fatal(err)
		}
		u, err := sq.UpdateWhere(">", 100, 100)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := u.Head(15)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			want := math.Min(float64(i*i), 100)
			if v != want {
				t.Fatalf("%s: u[%d]=%v want %v", s.EngineName(), i, v, want)
			}
		}
	}
}

func TestSessionMatMul(t *testing.T) {
	s := NewSession(Config{Backend: BackendRIOT, BlockElems: 64, MemElems: 1 << 16})
	a, err := s.NewMatrix(6, 4, func(i, j int64) float64 { return float64(i + j) })
	if err != nil {
		t.Fatal(err)
	}
	bm, err := s.NewMatrix(4, 5, func(i, j int64) float64 { return float64(i - j) })
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.MatMul(bm)
	if err != nil {
		t.Fatal(err)
	}
	r, cc := c.Dims()
	if r != 6 || cc != 5 {
		t.Fatalf("dims %dx%d", r, cc)
	}
	got, err := c.At(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for k := 0; k < 4; k++ {
		want += float64(2+k) * float64(k-3)
	}
	if got != want {
		t.Fatalf("C[2,3]=%v want %v", got, want)
	}
}

func TestRunScript(t *testing.T) {
	s := NewSession(Config{Backend: BackendRIOT})
	out, err := s.RunScript(`
x <- 1:5
y <- x * x
print(y)
total <- sum(y)
print(total)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 4 9 16 25") {
		t.Fatalf("output missing squares: %q", out)
	}
	if !strings.Contains(out, "55") {
		t.Fatalf("output missing sum: %q", out)
	}
}

func TestReportAndReset(t *testing.T) {
	s := NewSession(Config{Backend: BackendFullDB, MemElems: 1 << 14})
	x, err := s.SeqVector(10000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Report().IOBytes == 0 {
		t.Fatal("loading a vector should do I/O on the DB backend")
	}
	s.ResetStats()
	if s.Report().IOBytes != 0 {
		t.Fatal("reset did not clear counters")
	}
	if _, err := x.Sum(); err != nil {
		t.Fatal(err)
	}
	if s.Report().IOBytes == 0 {
		t.Fatal("forcing a sum should read the table")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := NewSession(Config{})
	if s.EngineName() != "riot" {
		t.Fatalf("default backend = %s", s.EngineName())
	}
}

func TestSessionWorkersConfig(t *testing.T) {
	// Workers: 4 must produce the same results as the deterministic
	// Workers: 1 session on a full pipeline plus a reduction.
	run := func(workers int) ([]float64, float64) {
		s := NewSession(Config{Backend: BackendRIOT, MemElems: 1 << 14, Workers: workers})
		x, err := s.SeqVector(1 << 15)
		if err != nil {
			t.Fatal(err)
		}
		d, err := x.Sub(3)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := d.Square()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sq.Sqrt()
		if err != nil {
			t.Fatal(err)
		}
		vals, err := rt.Values()
		if err != nil {
			t.Fatal(err)
		}
		sum, err := rt.Sum()
		if err != nil {
			t.Fatal(err)
		}
		return vals, sum
	}
	wantVals, wantSum := run(1)
	gotVals, gotSum := run(4)
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("element %d = %v, want %v", i, gotVals[i], wantVals[i])
		}
	}
	if math.Abs(gotSum-wantSum) > 1e-9*math.Abs(wantSum) {
		t.Fatalf("sum=%v, want %v", gotSum, wantSum)
	}
}

// TestSessionExplain checks the public Explain surface: the RIOT
// backend renders a physical plan for vector and matrix expressions
// without forcing them, and other backends refuse.
func TestSessionExplain(t *testing.T) {
	s := NewSession(Config{Backend: BackendRIOT, Planner: PlannerCostBased})
	x, err := s.SeqVector(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := x.Sub(3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := xs.Square()
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"physical plan: strategy=cost-based", "total est:", "decisions:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Vector.Explain missing %q:\n%s", want, out)
		}
	}
	if out2, err := s.Explain(d); err != nil || out2 != out {
		t.Errorf("Session.Explain disagrees with Vector.Explain (err=%v)", err)
	}

	a, err := s.NewMatrix(64, 64, func(i, j int64) float64 { return float64(i + j) })
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.MatMul(a)
	if err != nil {
		t.Fatal(err)
	}
	mout, err := ab.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mout, "matmul") || !strings.Contains(mout, "multiplies:") {
		t.Errorf("Matrix.Explain missing multiply plan:\n%s", mout)
	}

	p := NewSession(Config{Backend: BackendPlainR})
	v, err := p.SeqVector(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Explain(); err == nil {
		t.Error("Explain on plain-r backend should fail")
	}
}

// TestSessionPlannerConfig checks the Planner knob changes plans but
// not values: both strategies produce identical results.
func TestSessionPlannerConfig(t *testing.T) {
	head := func(p Planner) []float64 {
		s := NewSession(Config{Backend: BackendRIOT, Planner: p, Workers: 1})
		x, err := s.SeqVector(1 << 16)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.Sample(1<<16, 100, 42)
		if err != nil {
			t.Fatal(err)
		}
		g, err := x.Gather(idx)
		if err != nil {
			t.Fatal(err)
		}
		a, err := g.Sub(3)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := a.MulV(a)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := sq.Head(10)
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	h, c := head(PlannerHeuristic), head(PlannerCostBased)
	for i := range h {
		if h[i] != c[i] {
			t.Fatalf("planner strategies disagree at %d: %g vs %g", i, h[i], c[i])
		}
	}
}

// TestGoldenExplainFixture is the local mirror of CI's golden-explain
// check: the rendered plan for testdata/example1.R (riot-run's default
// machine: M=1<<22, B=1024, heuristic planner) must match the
// checked-in fixture byte for byte, minus the script's printed values
// which follow the plan in the riot-run transcript.
func TestGoldenExplainFixture(t *testing.T) {
	src, err := os.ReadFile("testdata/example1.R")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/example1_explain.golden")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(Config{Backend: BackendRIOT, Workers: 1})
	rt := s.Engine().(*engine.RIOT)
	var plans strings.Builder
	rt.SetExplainWriter(&plans)
	out, err := s.RunScript(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := plans.String() + out; got != string(want) {
		t.Errorf("explain transcript drifted from testdata/example1_explain.golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
