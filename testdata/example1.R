# The paper's Example 1: Euclidean distances from two fixed points,
# sampled at 100 random positions. Self-contained version for riot-run
# (inputs built in-script rather than pre-bound).
n <- 131072
x <- seq_len(n) %% 9973
y <- seq_len(n) %% 9967
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
