// Quickstart: build a deferred expression over a million-element vector,
// fetch a selective result, and inspect how little I/O it cost.
package main

import (
	"fmt"
	"log"

	"riot"
)

func main() {
	s := riot.NewSession(riot.Config{Backend: riot.BackendRIOT})
	defer s.Close()

	// A million-element vector; nothing is computed yet.
	x, err := s.SeqVector(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	// d = sqrt((x-3)^2) + 7, still deferred.
	xm, _ := x.Sub(3)
	sq, _ := xm.Square()
	rt, _ := sq.Sqrt()
	d, _ := rt.Add(7)

	s.ResetStats()
	head, err := d.Head(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("d[1:5] =", head)
	fmt.Println("stats  :", s.Report())
	fmt.Println()

	// The same program as riotscript, on the same engine:
	out, err := s.RunScript(`
v <- 1:10
w <- sqrt(v*v + 3)
print(w)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
