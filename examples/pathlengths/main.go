// Pathlengths runs the paper's Example 1 — path lengths through a cloud
// of points, then a 100-element sample — on every backend, printing the
// I/O and simulated time each one pays. This is Figure 1 in miniature.
package main

import (
	"fmt"
	"log"

	"riot"
)

const script = `
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
`

func main() {
	const n = 1 << 18
	backends := []struct {
		name string
		b    riot.Backend
	}{
		{"plain R", riot.BackendPlainR},
		{"RIOT-DB strawman", riot.BackendStrawman},
		{"RIOT-DB matnamed", riot.BackendMatNamed},
		{"RIOT-DB full", riot.BackendFullDB},
		{"RIOT", riot.BackendRIOT},
	}
	for _, be := range backends {
		s := riot.NewSession(riot.Config{Backend: be.b, MemElems: n / 2})
		in := s.Interp()
		x, err := s.Engine().NewVector(n, func(i int64) float64 { return float64(i % 9973) })
		if err != nil {
			log.Fatal(err)
		}
		y, err := s.Engine().NewVector(n, func(i int64) float64 { return float64(i % 9967) })
		if err != nil {
			log.Fatal(err)
		}
		in.SetVector("x", x)
		in.SetVector("y", y)
		s.ResetStats()
		if err := in.Run(script); err != nil {
			log.Fatalf("%s: %v", be.name, err)
		}
		fmt.Printf("%-18s %s\n", be.name, s.Report())
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
