// Pathlengths is the canonical graph demo: all-pairs shortest paths as
// linear algebra over the (min,+) semi-ring. A sparse weighted digraph
// becomes an adjacency matrix whose absent entries mean "no edge"
// (+Inf in min-plus); the reflexive-transitive closure A* — repeated
// squaring X ← X ⊕ (X ⊗ X) — then holds the exact shortest-path
// distance between every pair of nodes. The demo runs the closure on
// both array kinds (dense tiles and the tile-compressed sparse kind),
// verifies each against an in-memory Floyd–Warshall, and prints the
// I/O each pays: the sparse closure's block reads follow the graph's
// reachability structure, not the tile grid.
//
// The riotscript section shows the same surface syntax —
// closure(S, ring="minplus"), matmul(A, B, ring="minplus") — running
// unchanged on every backend: engines without semi-ring kernels fall
// back to an in-memory evaluator with the same storage convention
// (stored zero = no edge), so the ring, like sparsity, stays a storage
// and kernel property, never a semantic one. The tail exercises the
// empty-graph edge cases (all-zero and 0×0 adjacency) through the
// closure.
package main

import (
	"fmt"
	"log"
	"math"

	"riot"
)

const (
	n       = 96
	edgeMod = 8 // edge when hash%256 < edgeMod: ~3.1% density
)

// weight is the deterministic random digraph: a hash of (i,j) decides
// whether the edge exists and what integer weight in [1,9] it carries.
// Integer weights keep multi-hop sums exact in float64, so the closure
// must match Floyd–Warshall bit for bit. Stored 0 means "no edge".
func weight(i, j int64) float64 {
	if i == j {
		return 0
	}
	h := uint64(i*n+j)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	if h%256 < edgeMod {
		return float64(1 + (h>>8)%9)
	}
	return 0
}

// floydWarshall is the in-memory reference: O(n³) relaxation over the
// verbatim min-plus domain (+Inf = unreachable, 0 diagonal).
func floydWarshall() [][]float64 {
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			switch w := weight(int64(i), int64(j)); {
			case i == j:
				dist[i][j] = 0
			case w != 0:
				dist[i][j] = w
			default:
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}

// checkClosure fetches a closure result and demands exact equality with
// the Floyd–Warshall distances.
func checkClosure(kind string, c *riot.Matrix, dist [][]float64) {
	vals, err := c.Values()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got := vals[i*n+j]; got != dist[i][j] {
				log.Fatalf("%s closure disagrees with Floyd–Warshall at (%d,%d): %g vs %g",
					kind, i, j, got, dist[i][j])
			}
		}
	}
}

func main() {
	// --- Min-plus closure on both kinds, verified against FW ---
	s := riot.NewSession(riot.Config{MemElems: 1 << 16, Workers: 1})
	a, err := s.NewMatrix(n, n, weight)
	if err != nil {
		log.Fatal(err)
	}
	nnz, err := a.NNZ()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digraph: %d nodes, %d weighted edges (density %.2f%%)\n",
		n, nnz, 100*float64(nnz)/float64(n*n))

	dist := floydWarshall()
	reach, finite := 0, 0.0
	for i := range dist {
		for j := range dist[i] {
			if i != j && !math.IsInf(dist[i][j], 1) {
				reach++
				finite += dist[i][j]
			}
		}
	}
	fmt.Printf("Floyd–Warshall: %d of %d ordered pairs connected, mean distance %.3f\n",
		reach, n*(n-1), finite/float64(reach))

	s.ResetStats()
	dc, err := a.Closure("minplus")
	if err != nil {
		log.Fatal(err)
	}
	checkClosure("dense", dc, dist)
	fmt.Printf("dense  closure(A, minplus): matches FW exactly, %s\n", s.Report())

	sa, err := a.Sparse()
	if err != nil {
		log.Fatal(err)
	}
	s.ResetStats()
	sc, err := sa.Closure("minplus")
	if err != nil {
		log.Fatal(err)
	}
	checkClosure("sparse", sc, dist)
	fmt.Printf("sparse closure(A, minplus): matches FW exactly, %s\n", s.Report())

	for _, pair := range [][2]int64{{0, 1}, {0, n / 2}, {3, n - 1}} {
		d, err := sc.At(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  shortest %d → %d: %g\n", pair[0], pair[1], d)
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	// --- The same script, every backend: the ring is a kernel choice ---
	script := `
y <- floor(runif(64) * 10)
y[y < 7] <- 0
A <- matrix(y, 8, 8)
P <- matmul(A, A, ring="minplus")
print(nnz(P))
C <- closure(sparse(A), ring="minplus")
print(nnz(C))
print(min(C))
`
	backends := []struct {
		name string
		b    riot.Backend
	}{
		{"plain R", riot.BackendPlainR},
		{"RIOT-DB strawman", riot.BackendStrawman},
		{"RIOT-DB matnamed", riot.BackendMatNamed},
		{"RIOT-DB full", riot.BackendFullDB},
		{"RIOT", riot.BackendRIOT},
	}
	var want string
	for _, be := range backends {
		bs := riot.NewSession(riot.Config{Backend: be.b})
		out, err := bs.RunScript(script)
		if err != nil {
			log.Fatalf("%s: %v", be.name, err)
		}
		fmt.Printf("%-18s %s", be.name, out)
		if want == "" {
			want = out
		} else if out != want {
			log.Fatalf("%s printed different results:\n%s\nvs\n%s", be.name, out, want)
		}
		if err := bs.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// --- Empty-graph edge cases: all-zero and 0×0 adjacency ---
	es := riot.NewSession(riot.Config{MemElems: 1 << 14})
	zero, err := es.NewMatrix(16, 16, func(i, j int64) float64 { return 0 })
	if err != nil {
		log.Fatal(err)
	}
	zc, err := zero.Closure("minplus")
	if err != nil {
		log.Fatal(err)
	}
	zvals, err := zc.Values()
	if err != nil {
		log.Fatal(err)
	}
	diag, inf := 0, 0
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			switch v := zvals[i*16+j]; {
			case i == j && v == 0:
				diag++
			case i != j && math.IsInf(v, 1):
				inf++
			}
		}
	}
	fmt.Printf("\nempty graph closure: %d zero diagonal entries, %d unreachable pairs\n", diag, inf)

	void, err := es.NewMatrix(0, 0, func(i, j int64) float64 { return 0 })
	if err != nil {
		log.Fatal(err)
	}
	vc, err := void.Closure("minplus")
	if err != nil {
		log.Fatal(err)
	}
	vvals, err := vc.Values()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0×0 graph: closure has %d elements\n", len(vvals))
	if err := es.Close(); err != nil {
		log.Fatal(err)
	}
}
