// Pathlengths is the canonical sparse demo: path counting through a
// sparse adjacency matrix. A ring of points where each point connects
// only to its nearest neighbours yields a banded adjacency matrix whose
// square tiles are almost all empty — exactly the workload the paper's
// future-work section points at. The demo multiplies A %*% A (two-hop
// path counts) twice, once with dense tiles and once with the
// tile-compressed sparse kind, and prints the I/O each pays: block
// reads drop roughly in proportion to density, because empty tiles
// cost no blocks and the sparse kernels skip them outright.
//
// The riotscript section shows the same surface syntax — sparse(),
// dense(), nnz() — running unchanged on every backend: engines without
// a sparse array kind treat the conversions as identities, so sparsity
// stays a storage property, never a semantic one. The tail exercises
// the empty-graph edge cases (all-zero and 0×0 adjacency) through
// matmul and reductions.
package main

import (
	"fmt"
	"log"

	"riot"
)

// adjacency is the ring-with-neighbours graph: i and j are connected
// when they are within `band` of each other (but not equal).
func adjacency(band int64) func(i, j int64) float64 {
	return func(i, j int64) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d != 0 && d <= band {
			return 1
		}
		return 0
	}
}

func main() {
	const n, band = 512, 2

	// --- Dense vs sparse two-hop path counts on the RIOT engine ---
	s := riot.NewSession(riot.Config{MemElems: 1 << 16, Workers: 1})
	a, err := s.NewMatrix(n, n, adjacency(band))
	if err != nil {
		log.Fatal(err)
	}
	dnnz, err := a.NNZ()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacency: %d×%d, nnz=%d (density %.2f%%)\n", n, n, dnnz, 100*float64(dnnz)/float64(n*n))

	// Correctness first (unmeasured): both kinds must count the same
	// two-hop pairs. NNZ on a deferred product forces the multiply
	// either way; the count itself is then a full result scan on the
	// dense side but free — from the tile directory — on the sparse
	// side.
	p2, err := a.MatMul(a)
	if err != nil {
		log.Fatal(err)
	}
	densePaths, err := p2.NNZ()
	if err != nil {
		log.Fatal(err)
	}
	sa, err := a.Sparse()
	if err != nil {
		log.Fatal(err)
	}
	sp2, err := sa.MatMul(sa)
	if err != nil {
		log.Fatal(err)
	}
	sparsePaths, err := sp2.NNZ()
	if err != nil {
		log.Fatal(err)
	}
	if sparsePaths != densePaths {
		log.Fatalf("sparse result disagrees with dense: %d vs %d", sparsePaths, densePaths)
	}
	// Now the measured comparison: Force() runs the multiply alone (no
	// result scan on either side), so the reports are kernel vs kernel.
	s.ResetStats()
	if err := p2.Force(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense  A%%*%%A: %d node pairs linked by 2-hop paths, %s\n", densePaths, s.Report())
	s.ResetStats()
	if err := sp2.Force(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse A%%*%%A: %d node pairs linked by 2-hop paths, %s\n", sparsePaths, s.Report())
	if expl, err := sp2.Explain(); err == nil {
		fmt.Printf("\nsparse plan:\n%s\n", expl)
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	// --- The same script, every backend: sparse() is a storage hint ---
	script := `
y <- runif(36)
y[y < 0.7] <- 0
A <- matrix(y, 6, 6)
S <- sparse(A)
print(nnz(S))
P <- S %*% S
print(nnz(P))
D <- dense(P)
print(nnz(D))
`
	backends := []struct {
		name string
		b    riot.Backend
	}{
		{"plain R", riot.BackendPlainR},
		{"RIOT-DB strawman", riot.BackendStrawman},
		{"RIOT-DB matnamed", riot.BackendMatNamed},
		{"RIOT-DB full", riot.BackendFullDB},
		{"RIOT", riot.BackendRIOT},
	}
	var want string
	for _, be := range backends {
		bs := riot.NewSession(riot.Config{Backend: be.b})
		out, err := bs.RunScript(script)
		if err != nil {
			log.Fatalf("%s: %v", be.name, err)
		}
		fmt.Printf("%-18s %s", be.name, out)
		if want == "" {
			want = out
		} else if out != want {
			log.Fatalf("%s printed different results:\n%s\nvs\n%s", be.name, out, want)
		}
		if err := bs.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// --- Empty-graph edge cases: all-zero and 0×0 adjacency ---
	es := riot.NewSession(riot.Config{MemElems: 1 << 14})
	zero, err := es.NewMatrix(64, 64, func(i, j int64) float64 { return 0 })
	if err != nil {
		log.Fatal(err)
	}
	szero, err := zero.Sparse()
	if err != nil {
		log.Fatal(err)
	}
	zp, err := szero.MatMul(szero)
	if err != nil {
		log.Fatal(err)
	}
	znnz, err := zp.NNZ()
	if err != nil {
		log.Fatal(err)
	}
	vals, err := zp.Values()
	if err != nil {
		log.Fatal(err)
	}
	var zsum float64
	for _, v := range vals {
		zsum += v
	}
	fmt.Printf("\nempty graph: nnz(A%%*%%A)=%d, sum=%g\n", znnz, zsum)

	void, err := es.NewMatrix(0, 0, func(i, j int64) float64 { return 0 })
	if err != nil {
		log.Fatal(err)
	}
	vp, err := void.MatMul(void)
	if err != nil {
		log.Fatal(err)
	}
	vvals, err := vp.Values()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0×0 graph: A%%*%%A has %d elements\n", len(vvals))
	if err := es.Close(); err != nil {
		log.Fatal(err)
	}
}
