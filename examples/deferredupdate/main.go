// Deferredupdate reproduces Figure 2: because RIOT models b[b>100] <- 100
// as a pure operator, the subscript b[1:10] is pushed below the update
// and only ten elements of a are ever touched. Compare the work counters
// against the plain R backend, which computes everything.
package main

import (
	"fmt"
	"log"

	"riot"
)

const script = `
b <- a^2
b[b > 100] <- 100
h <- b[1:10]
print(h)
`

func main() {
	const n = 1 << 18
	for _, be := range []struct {
		name string
		b    riot.Backend
	}{
		{"plain R (eager)", riot.BackendPlainR},
		{"RIOT (deferred)", riot.BackendRIOT},
	} {
		s := riot.NewSession(riot.Config{Backend: be.b})
		in := s.Interp()
		a, err := s.Engine().NewVector(n, func(i int64) float64 { return float64(i) })
		if err != nil {
			log.Fatal(err)
		}
		in.SetVector("a", a)
		s.ResetStats()
		if err := in.Run(script); err != nil {
			log.Fatalf("%s: %v", be.name, err)
		}
		fmt.Printf("%-16s %s\n", be.name, s.Report())
		fmt.Print(in.Out.String())
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
