// Matrixchain demonstrates §5's chain optimization: a skewed three-matrix
// product where the multiplication order chosen by dynamic programming
// beats left-to-right evaluation, both in the analytic cost model (the
// paper's Figure 3) and in measured I/O on the real tiled kernels.
package main

import (
	"fmt"
	"log"

	"riot"
	"riot/internal/costmodel"
)

func main() {
	// Analytic, at paper scale.
	p := costmodel.Params{MemElems: costmodel.GB(2), BlockElems: 1024}
	for _, s := range []float64{2, 4, 8} {
		dims := costmodel.SkewedChainDims(100000, s)
		inOrder := costmodel.InOrder(dims)
		optOrder := costmodel.OptOrder(dims)
		fmt.Printf("s=%g: in-order %s = %.3e blocks, optimal %s = %.3e blocks (%.1fx)\n",
			s, inOrder, inOrder.IO(costmodel.StrategySquare, p),
			optOrder, optOrder.IO(costmodel.StrategySquare, p),
			inOrder.IO(costmodel.StrategySquare, p)/optOrder.IO(costmodel.StrategySquare, p))
	}

	// Executed, at laptop scale: the RIOT backend reorders transparently.
	fmt.Println("\nexecuting A(96x12) %*% B(12x96) %*% C(96x96) on the RIOT backend:")
	sess := riot.NewSession(riot.Config{Backend: riot.BackendRIOT, BlockElems: 64, MemElems: 4096})
	defer sess.Close()
	a, err := sess.NewMatrix(96, 12, func(i, j int64) float64 { return float64((i+j)%5) - 2 })
	if err != nil {
		log.Fatal(err)
	}
	b, err := sess.NewMatrix(12, 96, func(i, j int64) float64 { return float64((i*j)%7) - 3 })
	if err != nil {
		log.Fatal(err)
	}
	c, err := sess.NewMatrix(96, 96, func(i, j int64) float64 { return float64((i-j)%3) + 1 })
	if err != nil {
		log.Fatal(err)
	}
	ab, err := a.MatMul(b)
	if err != nil {
		log.Fatal(err)
	}
	abc, err := ab.MatMul(c)
	if err != nil {
		log.Fatal(err)
	}
	sess.ResetStats()
	v, err := abc.At(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(ABC)[0,0] = %g\n", v)
	fmt.Println("stats:", sess.Report())
}
