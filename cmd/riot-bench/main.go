// riot-bench regenerates the paper's tables and figures. By default it
// runs every experiment at laptop scale; -paper uses the publication
// parameters for Figures 1 and 3 (Figure 1 then takes minutes: the
// strawman materializes a dozen multi-million-row tables, faithfully).
package main

import (
	"flag"
	"fmt"
	"os"

	"riot/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which experiment: 1, 2, 3a, 3b, validate, all")
	paper := flag.Bool("paper", false, "use the paper's full-scale parameters")
	flag.Parse()

	run := func(name string, f func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "riot-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("1", func() error {
		sizes := []int64{1 << 17, 1 << 18, 1 << 19}
		if *paper {
			sizes = []int64{1 << 21, 1 << 22, 1 << 23}
		}
		_, err := bench.Figure1(sizes, 1024, os.Stdout)
		return err
	})
	run("2", func() error {
		_, err := bench.Figure2(1<<16, 1024, os.Stdout)
		return err
	})
	run("3a", func() error {
		bench.Figure3a([]float64{100000, 120000}, []float64{2, 4}, os.Stdout)
		return nil
	})
	run("3b", func() error {
		bench.Figure3b([]float64{2, 4, 6, 8}, os.Stdout)
		return nil
	})
	run("validate", func() error {
		_, err := bench.ValidateModel([]int64{96, 160, 256}, os.Stdout)
		return err
	})
}
