// riot-bench regenerates the paper's tables and figures. By default it
// runs every experiment at laptop scale; -paper uses the publication
// parameters for Figures 1 and 3 (Figure 1 then takes minutes: the
// strawman materializes a dozen multi-million-row tables, faithfully).
//
// Besides the human-readable tables, riot-bench writes one
// machine-readable record per measurement to a JSON file (default
// BENCH_results.json, disable with -json "") so the performance
// trajectory is tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"riot/internal/bench"
)

// Result is one machine-readable benchmark record.
type Result struct {
	// Name identifies the measurement, e.g. "figure1/riot/n=131072".
	Name string `json:"name"`
	// IOMB is the simulated device traffic in mebibytes (0 when the
	// experiment is an analytic calculation with no measured I/O).
	IOMB float64 `json:"io_mb"`
	// SimSec is the simulated wall-clock under the 2009 time model.
	SimSec float64 `json:"sim_sec"`
	// WallNSPerOp is the real wall-clock of the row's own measured
	// operation (0 for analytic rows, which execute nothing).
	WallNSPerOp int64 `json:"wall_ns_per_op"`
	// Workers is the parallelism the measurement ran with.
	Workers int `json:"workers"`
	// RandReads counts random-classified block reads (readahead
	// ablation rows; 0 elsewhere).
	RandReads int64 `json:"rand_reads,omitempty"`
	// PrefetchHitPct is the prefetch hit rate in percent (readahead
	// ablation rows with the scheduler on; 0 elsewhere).
	PrefetchHitPct float64 `json:"prefetch_hit_pct,omitempty"`
	// EstBlocks is the physical plan's estimated device traffic in
	// blocks (planner and sparse ablation rows; 0 elsewhere).
	EstBlocks float64 `json:"est_blocks,omitempty"`
	// ActualBlocks is the measured device traffic in blocks (planner
	// ablation rows; 0 elsewhere).
	ActualBlocks int64 `json:"actual_blocks,omitempty"`
	// Density is the stored nonzero fraction of the sparse-ablation
	// input (0 elsewhere).
	Density float64 `json:"density,omitempty"`
	// BlockReads counts device block reads (sparse ablation rows; 0
	// elsewhere) — the figure's y-axis.
	BlockReads int64 `json:"block_reads,omitempty"`
	// PublishesPerSec is catalog publish throughput against the host
	// filesystem (WAL ablation rows; 0 elsewhere).
	PublishesPerSec float64 `json:"publishes_per_sec,omitempty"`
	// GFlops is arithmetic throughput in 1e9 flop/s (gflops ablation
	// rows; 0 elsewhere).
	GFlops float64 `json:"gflops,omitempty"`
	// CacheHits counts result-cache hits during the measured replays
	// (cache ablation warm rows; 0 elsewhere).
	CacheHits int64 `json:"cache_hits,omitempty"`
	// Nodes is the cluster size the row ran on (cluster ablation rows;
	// 0 elsewhere).
	Nodes int `json:"nodes,omitempty"`
	// NetMB is the coordinator's interconnect traffic in mebibytes
	// (cluster ablation rows; 0 elsewhere and for single-node rows).
	NetMB float64 `json:"net_mb,omitempty"`
	// MaxNodeIOMB is the largest single node's engine I/O in mebibytes
	// (cluster ablation rows; 0 elsewhere) — the per-node load the
	// balance assertion checks against IOMB, the cluster total.
	MaxNodeIOMB float64 `json:"max_node_io_mb,omitempty"`
}

func main() {
	figure := flag.String("figure", "all", "which experiment: 1, 2, 3a, 3b, validate, workers, readahead, planner, sparse, semiring, wal, gflops, cache, cluster, all")
	paper := flag.Bool("paper", false, "use the paper's full-scale parameters")
	jsonPath := flag.String("json", "BENCH_results.json", "write machine-readable results to this file (empty to disable)")
	flag.Parse()

	var results []Result
	var known []string
	matched := false

	run := func(name string, f func() ([]Result, error)) {
		known = append(known, name)
		if *figure != "all" && *figure != name {
			return
		}
		matched = true
		rows, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "riot-bench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		for i := range rows {
			if rows[i].Workers == 0 {
				rows[i].Workers = 1
			}
		}
		results = append(results, rows...)
		fmt.Println()
	}

	run("1", func() ([]Result, error) {
		sizes := []int64{1 << 17, 1 << 18, 1 << 19}
		if *paper {
			sizes = []int64{1 << 21, 1 << 22, 1 << 23}
		}
		rows, err := bench.Figure1(sizes, 1024, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("figure1/%s/n=%d", r.Engine, r.N),
				IOMB:        r.IOMB,
				SimSec:      r.Seconds,
				WallNSPerOp: r.WallNS,
			})
		}
		return out, nil
	})
	run("2", func() ([]Result, error) {
		const blockElems = 1024
		rows, err := bench.Figure2(1<<16, blockElems, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("figure2/%s", r.Config),
				IOMB:        float64(r.IOBlocks) * blockElems * 8 / (1 << 20),
				WallNSPerOp: r.WallNS,
			})
		}
		return out, nil
	})
	run("3a", func() ([]Result, error) {
		rows := bench.Figure3a([]float64{100000, 120000}, []float64{2, 4}, os.Stdout)
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name: fmt.Sprintf("figure3a/%s/n=%g/mem=%gGB", r.Strategy, r.N, r.MemGB),
				IOMB: r.IOBlocks * bench.Fig3BlockElems * 8 / (1 << 20),
			})
		}
		return out, nil
	})
	run("3b", func() ([]Result, error) {
		rows := bench.Figure3b([]float64{2, 4, 6, 8}, os.Stdout)
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name: fmt.Sprintf("figure3b/%s/skew=%g", r.Strategy, r.Skew),
				IOMB: r.IOBlocks * bench.Fig3BlockElems * 8 / (1 << 20),
			})
		}
		return out, nil
	})
	run("validate", func() ([]Result, error) {
		rows, err := bench.ValidateModel([]int64{96, 160, 256}, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("validate/%s/n=%d", r.Kernel, r.N),
				IOMB:        r.Measured * bench.ValidateBlockElems * 8 / (1 << 20),
				WallNSPerOp: r.WallNS,
			})
		}
		return out, nil
	})
	run("workers", func() ([]Result, error) {
		n := int64(512)
		if *paper {
			n = 1024
		}
		if runtime.GOMAXPROCS(0) == 1 {
			// One core: the sweep still verifies correctness and budget
			// behaviour, but wall-clock speedup needs real parallelism.
			fmt.Println("(single CPU: workers ablation measures scheduling overhead, not speedup)")
		}
		rows, err := bench.WorkersAblation(n, []int{1, 2, 4, 8}, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("workers/matmul-tiled/n=%d", n),
				IOMB:        r.IOMB,
				WallNSPerOp: r.WallNS,
				Workers:     r.Workers,
			})
		}
		return out, nil
	})

	run("readahead", func() ([]Result, error) {
		rows, err := bench.ReadaheadAblation(4, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			mode := "off"
			if r.Readahead {
				mode = "on"
			}
			out = append(out, Result{
				Name:           fmt.Sprintf("readahead/%s/%s", r.Workload, mode),
				IOMB:           r.IOMB,
				SimSec:         r.SimSec,
				WallNSPerOp:    r.WallNS,
				Workers:        r.Workers,
				RandReads:      r.RandReads,
				PrefetchHitPct: 100 * safeDiv(float64(r.PrefetchHits), float64(r.Prefetched)),
			})
		}
		return out, nil
	})

	run("planner", func() ([]Result, error) {
		rows, err := bench.PlannerAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:         fmt.Sprintf("planner/%s/%s", r.Workload, r.Strategy),
				IOMB:         r.IOMB,
				SimSec:       r.SimSec,
				WallNSPerOp:  r.WallNS,
				EstBlocks:    r.EstBlocks,
				ActualBlocks: r.ActualBlocks,
			})
		}
		return out, nil
	})

	run("sparse", func() ([]Result, error) {
		rows, err := bench.SparseAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("sparse/matmul/d=%.4f/%s", r.Density, r.Mode),
				IOMB:        r.IOMB,
				SimSec:      r.SimSec,
				WallNSPerOp: r.WallNS,
				Density:     r.Density,
				BlockReads:  r.BlockReads,
				EstBlocks:   r.EstBlocks,
			})
		}
		return out, nil
	})

	run("gflops", func() ([]Result, error) {
		n := int64(1024)
		if *paper {
			n = 2048
		}
		rows, err := bench.GFlopsAblation(n, os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("gflops/%s/%s/n=%d", r.Kernel, r.Pool, r.N),
				IOMB:        r.IOMB,
				WallNSPerOp: r.WallNS,
				GFlops:      r.GFlops,
			})
		}
		return out, nil
	})

	run("cache", func() ([]Result, error) {
		rows, err := bench.CacheAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("cache/%s/sessions=%d", r.Mode, r.Sessions),
				WallNSPerOp: r.WallNS / int64(r.Sessions),
				Workers:     1,
				BlockReads:  r.BlockReads,
				CacheHits:   r.Hits,
			})
		}
		return out, nil
	})

	run("cluster", func() ([]Result, error) {
		rows, err := bench.ClusterAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("cluster/%s/nodes=%d", r.Mode, r.Nodes),
				IOMB:        float64(r.TotalIOBytes) / (1 << 20),
				WallNSPerOp: r.WallNS,
				Workers:     1,
				Nodes:       r.Nodes,
				NetMB:       float64(r.NetBytes) / (1 << 20),
				MaxNodeIOMB: float64(r.MaxNodeIOBytes) / (1 << 20),
			})
		}
		return out, nil
	})

	run("wal", func() ([]Result, error) {
		rows, err := bench.WALAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:            fmt.Sprintf("wal/publish/%s", r.Mode),
				WallNSPerOp:     r.WallNS / int64(r.Publishes),
				Workers:         r.Sessions,
				PublishesPerSec: r.PubPerSec,
			})
		}
		return out, nil
	})

	run("semiring", func() ([]Result, error) {
		rows, err := bench.SemiringAblation(os.Stdout)
		if err != nil {
			return nil, err
		}
		out := make([]Result, 0, len(rows))
		for _, r := range rows {
			out = append(out, Result{
				Name:        fmt.Sprintf("semiring/minplus-closure/d=%.4f/%s", r.Density, r.Mode),
				IOMB:        r.IOMB,
				SimSec:      r.SimSec,
				WallNSPerOp: r.WallNS,
				Density:     r.Density,
				BlockReads:  r.BlockReads,
			})
		}
		return out, nil
	})

	if !matched {
		fmt.Fprintf(os.Stderr, "riot-bench: unknown figure %q (known: %s, all)\n",
			*figure, strings.Join(known, ", "))
		os.Exit(2)
	}

	if *jsonPath != "" && len(results) > 0 {
		merged := mergeResults(*jsonPath, results)
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "riot-bench: marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "riot-bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s (%d from this run)\n", len(merged), *jsonPath, len(results))
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// mergeResults folds this run's records into any existing results file,
// so a partial run (-figure X) refreshes its own rows without discarding
// the rest of the tracked trajectory. Records are keyed by (name,
// workers); fresh records replace stale ones in place, new ones append.
func mergeResults(path string, fresh []Result) []Result {
	data, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var old []Result
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "riot-bench: ignoring unparsable %s: %v\n", path, err)
		return fresh
	}
	type key struct {
		name    string
		workers int
	}
	incoming := make(map[key]Result, len(fresh))
	for _, r := range fresh {
		incoming[key{r.Name, r.Workers}] = r
	}
	merged := make([]Result, 0, len(old)+len(fresh))
	seen := make(map[key]bool)
	for _, r := range old {
		k := key{r.Name, r.Workers}
		if nr, ok := incoming[k]; ok {
			merged = append(merged, nr)
			seen[k] = true
		} else {
			merged = append(merged, r)
		}
	}
	for _, r := range fresh {
		if !seen[key{r.Name, r.Workers}] {
			merged = append(merged, r)
		}
	}
	return merged
}
