// riot-doccheck enforces godoc coverage: it parses the Go packages in
// the directories given on the command line and fails (exit 1) when an
// exported identifier — function, method, type, or a const/var group —
// has no doc comment, or when a package has no package comment. It is
// the CI guard that keeps the documented packages documented, with no
// third-party linter dependency.
//
// Grouped const/var declarations follow the godoc convention: a doc
// comment on the group covers every name in it. Test files are skipped.
//
// Usage: riot-doccheck DIR [DIR...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: riot-doccheck DIR [DIR...]")
		os.Exit(2)
	}
	failures := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riot-doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		failures += n
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "riot-doccheck: %d exported identifiers lack doc comments\n", failures)
		os.Exit(1)
	}
}

// checkDir parses one directory and reports each undocumented exported
// identifier on stdout, returning the count.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	failures := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), what, name)
		failures++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			report(token.NoPos, "package", pkg.Name)
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return failures, nil
}

// checkGenDecl applies the godoc convention to type/const/var
// declarations: a doc comment on the group covers its members; an
// undocumented group needs per-spec comments on every exported name.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, what, name string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "value", name.Name)
				}
			}
		}
	}
}
