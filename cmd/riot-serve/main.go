// riot-serve runs a durable multi-session RIOT database behind a
// line-protocol server: N concurrent riotscript sessions over one
// sharded buffer pool, with per-session frame quotas and a named-array
// catalog in -dir that survives restarts.
//
// Server mode (default) listens on -addr until SIGINT/SIGTERM or a
// client's \shutdown, then checkpoints the catalog and exits. Client
// mode (-send) connects to a running server, sends each line of the
// argument ("-" reads stdin) as one request, prints the payloads, and
// exits non-zero on the first err response.
//
// With -remote ADDR the server additionally speaks the binary
// remote-frame protocol (PROTOCOL.md §Remote frames) on ADDR, joining
// the process to a RIOT cluster as a tile-holding node: coordinators
// push operand tile bands to it, run partial multiplies where the
// tiles live, and fetch the results back.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"riot"
	"riot/internal/cluster"
	"riot/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7227", "listen (or, with -send, connect) address")
	dir := flag.String("dir", "riot-data", "database directory (catalog persists here)")
	mem := flag.Int64("mem", 1<<22, "shared memory budget in float64 elements (M)")
	block := flag.Int("block", 1024, "block size in float64 elements (B)")
	workers := flag.Int("workers", 0, "worker goroutines per session (0 = GOMAXPROCS)")
	quota := flag.Int("quota", 0, "per-session pinned-frame quota (0 = pool/4)")
	maxSessions := flag.Int("max-sessions", 0, "admission bound on concurrent sessions (0 = pool/quota)")
	readahead := flag.Bool("readahead", false, "enable the I/O scheduler under the shared pool")
	walMode := flag.String("wal", "always", "write-ahead-log durability: always (fsync'd group commit), interval (timed fsync), off (checkpoint-only)")
	cache := flag.Bool("cache", false, "enable the shared cross-session result cache")
	cacheQuota := flag.Int64("cache-quota", 0, "result-cache budget in float64 elements (0 = mem/4; needs -cache)")
	send := flag.String("send", "", "client mode: statements to send, one request per line ('-' reads stdin)")
	remote := flag.String("remote", "", "also serve the binary remote-frame protocol (cluster tile push/exec/fetch) on this address")
	nodeID := flag.String("node-id", "", "cluster node identity announced in remote-frame Hellos (default the -remote address)")
	flag.Parse()

	if *send != "" {
		os.Exit(clientMain(*addr, *send))
	}

	var walSync riot.WALSync
	switch *walMode {
	case "always":
		walSync = riot.WALSyncAlways
	case "interval":
		walSync = riot.WALSyncInterval
	case "off":
		walSync = riot.WALSyncOff
	default:
		fmt.Fprintf(os.Stderr, "riot-serve: -wal must be always, interval, or off (got %q)\n", *walMode)
		os.Exit(2)
	}

	db, err := riot.Open(*dir, riot.Config{
		MemElems:         *mem,
		BlockElems:       *block,
		Workers:          *workers,
		Readahead:        *readahead,
		SessionFrames:    *quota,
		MaxSessions:      *maxSessions,
		WALSync:          walSync,
		ResultCache:      *cache,
		ResultCacheQuota: *cacheQuota,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "riot-serve:", err)
		os.Exit(1)
	}
	srv := server.New(db)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riot-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "riot-serve: listening on %s, dir %s, %d names in catalog, quota %d frames, max %d sessions, wal %s\n",
		ln.Addr(), *dir, len(db.Names()), db.SessionQuota(), db.MaxSessions(), *walMode)
	if st, on := db.WALStats(); on && st.Replayed > 0 {
		fmt.Fprintf(os.Stderr, "riot-serve: recovered %d WAL records past the last checkpoint\n", st.Replayed)
	}

	var stopRemote func()
	if *remote != "" {
		id := *nodeID
		if id == "" {
			id = *remote
		}
		// The cluster node occupies one ordinary session slot: its tile
		// work is metered and admission-controlled like any client's.
		nodeSess, err := db.NewSession()
		if err != nil {
			fmt.Fprintln(os.Stderr, "riot-serve: remote session:", err)
			os.Exit(1)
		}
		node := cluster.NewNode(id, nodeSess)
		rln, err := net.Listen("tcp", *remote)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riot-serve: remote listen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "riot-serve: remote frames on %s as node %q\n", rln.Addr(), id)
		go node.ServeListener(rln)
		stopRemote = func() {
			node.Close()
			rln.Close()
			nodeSess.Close()
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "riot-serve: signal received, draining sessions")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "riot-serve:", err)
	}
	if stopRemote != nil {
		stopRemote()
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "riot-serve: close:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "riot-serve: catalog checkpointed, bye")
}

func clientMain(addr, script string) int {
	var lines []string
	if script == "-" {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
	} else {
		lines = strings.Split(script, "\n")
	}
	c, err := server.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riot-serve:", err)
		return 1
	}
	defer c.Close()
	for _, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		out, err := c.Do(line)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riot-serve: %q: %v\n", line, err)
			return 1
		}
	}
	return 0
}
