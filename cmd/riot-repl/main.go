// riot-repl is an interactive riotscript shell over the RIOT engine.
// Each line is a statement; `:stats` prints engine counters, `:quit`
// exits.
package main

import (
	"bufio"
	"fmt"
	"os"

	"riot"
)

func main() {
	s := riot.NewSession(riot.Config{Backend: riot.BackendRIOT})
	defer s.Close()
	in := s.Interp()
	fmt.Println("riot — I/O-efficient numerical computing without SQL (CIDR'09 reproduction)")
	fmt.Println(`type riotscript statements; ":stats" for counters, ":quit" to exit`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		switch line {
		case ":quit", ":q":
			return
		case ":stats":
			fmt.Println(s.Report())
			continue
		case "":
			continue
		}
		before := in.Out.Len()
		if err := in.Run(line); err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(in.Out.String()[before:])
	}
}
