// riot-run executes a riotscript file on a chosen backend and reports
// the engine's I/O statistics, the command-line counterpart of the
// paper's DTrace measurements.
package main

import (
	"flag"
	"fmt"
	"os"

	"riot"
	"riot/internal/engine"
)

func main() {
	backend := flag.String("engine", "riot", "backend: riot, plain-r, strawman, matnamed, full")
	mem := flag.Int64("mem", 1<<22, "memory budget in float64 elements (M)")
	block := flag.Int("block", 1024, "block/page size in float64 elements (B)")
	workers := flag.Int("workers", 1, "worker goroutines for the riot backend (1 = deterministic I/O counts, 0 = GOMAXPROCS)")
	readahead := flag.Bool("readahead", false, "enable the riot backend's I/O scheduler (async readahead + elevator write-back)")
	planner := flag.String("planner", "heuristic", "riot backend physical planner: heuristic or cost")
	explain := flag.Bool("explain", false, "print the physical plan of every forced evaluation before it runs (riot backend)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: riot-run [-engine X] [-mem M] [-block B] script.R")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "riot-run:", err)
		os.Exit(1)
	}
	var b riot.Backend
	switch *backend {
	case "riot":
		b = riot.BackendRIOT
	case "plain-r":
		b = riot.BackendPlainR
	case "strawman":
		b = riot.BackendStrawman
	case "matnamed":
		b = riot.BackendMatNamed
	case "full":
		b = riot.BackendFullDB
	default:
		fmt.Fprintf(os.Stderr, "riot-run: unknown engine %q\n", *backend)
		os.Exit(2)
	}
	var pl riot.Planner
	switch *planner {
	case "heuristic":
		pl = riot.PlannerHeuristic
	case "cost", "cost-based":
		pl = riot.PlannerCostBased
	default:
		fmt.Fprintf(os.Stderr, "riot-run: unknown planner %q\n", *planner)
		os.Exit(2)
	}
	s := riot.NewSession(riot.Config{
		Backend: b, MemElems: *mem, BlockElems: *block,
		Workers: *workers, Readahead: *readahead, Planner: pl,
	})
	if *explain {
		rt, ok := s.Engine().(*engine.RIOT)
		if !ok {
			fmt.Fprintln(os.Stderr, "riot-run: -explain requires the riot backend")
			os.Exit(2)
		}
		rt.SetExplainWriter(os.Stdout)
	}
	out, err := s.RunScript(string(src))
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riot-run:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s] %s\n", s.EngineName(), s.Report())
	// The RIOT backend also exposes buffer-pool counters, including the
	// scheduler's prefetch hit-rate — the numbers readahead ablations
	// compare.
	if rt, ok := s.Engine().(*engine.RIOT); ok {
		fmt.Fprintf(os.Stderr, "[%s] pool: %s\n", s.EngineName(), rt.Executor().Pool().Stats())
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "riot-run: close:", err)
		os.Exit(1)
	}
}
