package riot

import (
	"strings"
	"sync"
	"testing"

	"riot/internal/engine"
)

// cacheCfg is the small simulated machine the result-cache tests run
// on: 256 frames of 64 elements, cache enabled at its default quota
// (MemElems/4).
func cacheCfg() Config {
	return Config{
		BlockElems:  64,
		MemElems:    1 << 14,
		Workers:     1,
		ResultCache: true,
	}
}

// TestResultCacheWarmReplay is the tentpole acceptance check at DB
// scope: a second session replaying the first session's expression over
// a published array is served from the result cache with (near) zero
// device block reads, and identical values.
func TestResultCacheWarmReplay(t *testing.T) {
	db, err := Open(t.TempDir(), cacheCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	pub, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	x, err := pub.NewVector(4000, func(i int64) float64 { return float64(i%97) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("x", x); err != nil {
		t.Fatal(err)
	}
	// Publish a second array bigger than the whole pool so x's frames
	// are evicted: the cold replay below must really hit the device.
	flush, err := pub.NewVector(20000, func(i int64) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("flush", flush); err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}

	// replay runs the shared workload in a fresh session and returns
	// the result plus the device block reads the run cost.
	replay := func() []float64 {
		t.Helper()
		s, err := db.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		xs, err := s.Lookup("x")
		if err != nil {
			t.Fatal(err)
		}
		sq, err := xs.MulV(xs)
		if err != nil {
			t.Fatal(err)
		}
		x3, err := xs.Mul(3)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sq.AddV(x3)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sum.Sqrt()
		if err != nil {
			t.Fatal(err)
		}
		vals, err := d.Values()
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}

	before := db.Pool().Device().Stats().BlocksRead
	cold := replay()
	mid := db.Pool().Device().Stats().BlocksRead
	warm := replay()
	after := db.Pool().Device().Stats().BlocksRead

	coldReads := mid - before
	warmReads := after - mid
	if coldReads == 0 {
		t.Fatal("cold replay read nothing from the device — workload too small to measure")
	}
	// The issue's acceptance bar: warm replay reads at most 10% of the
	// cold run's blocks (in practice zero — the cached temp is resident).
	if warmReads*10 > coldReads {
		t.Errorf("warm replay read %d blocks, cold read %d — want warm <= 10%%", warmReads, coldReads)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("warm value diverged at %d: %g vs %g", i, warm[i], cold[i])
		}
	}
	st, on := db.CacheStats()
	if !on {
		t.Fatal("CacheStats reports cache off")
	}
	if st.Hits == 0 || st.Installs == 0 {
		t.Errorf("expected at least one install and one hit: %+v", st)
	}
}

// TestResultCacheExplainShowsHit: with a warm cache, Explain renders the
// whole expression as a single zero-I/O cached step.
func TestResultCacheExplainShowsHit(t *testing.T) {
	db, err := Open(t.TempDir(), cacheCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x, err := s.NewVector(1000, func(i int64) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish("x", x); err != nil {
		t.Fatal(err)
	}
	xs, err := s.Lookup("x")
	if err != nil {
		t.Fatal(err)
	}
	y, err := xs.Add(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := y.Values(); err != nil { // cold run installs
		t.Fatal(err)
	}
	plan, err := y.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "cached") || !strings.Contains(plan, "result cache hit") {
		t.Errorf("warm Explain does not show the cached step:\n%s", plan)
	}
}

// TestResultCacheInvalidationOnRepublish: republishing a leaf makes the
// old cached result unreachable (the version is part of the key), so a
// replay sees the new data, never the stale cache entry.
func TestResultCacheInvalidationOnRepublish(t *testing.T) {
	db, err := Open(t.TempDir(), cacheCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	eval := func(s *Session) float64 {
		t.Helper()
		xs, err := s.Lookup("x")
		if err != nil {
			t.Fatal(err)
		}
		y, err := xs.Add(1)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := y.Values()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals[1:] {
			if v != vals[0] {
				t.Fatalf("non-uniform result: %g vs %g", v, vals[0])
			}
		}
		return vals[0]
	}

	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pubConst := func(c float64) {
		t.Helper()
		v, err := s.NewVector(600, func(int64) float64 { return c })
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Publish("x", v); err != nil {
			t.Fatal(err)
		}
	}

	pubConst(1)
	if got := eval(s); got != 2 {
		t.Fatalf("v1 eval: got %g want 2", got)
	}
	eval(s) // warm hit on v1
	pubConst(5)
	if got := eval(s); got != 6 {
		t.Fatalf("post-republish eval served stale data: got %g want 6", got)
	}
	st, _ := db.CacheStats()
	if st.Invalidations == 0 {
		t.Errorf("republish did not invalidate: %+v", st)
	}
}

// TestResultCacheConcurrentSessions is the -race satellite: four
// sessions replay a shared workload while a writer keeps publishing new
// versions of the leaf. Every result must be internally consistent with
// exactly one published version (no stale or torn reads), and each
// session's peak pinned frames must stay within its quota — the cache's
// own pins are metered to the cache, not to the sessions reading it.
func TestResultCacheConcurrentSessions(t *testing.T) {
	cfg := cacheCfg()
	cfg.SessionFrames = 24
	cfg.MaxSessions = 6
	db, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	writer, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	pubVersion := func(v int) error {
		vec, err := writer.NewVector(500, func(int64) float64 { return float64(v) })
		if err != nil {
			return err
		}
		return writer.Publish("shared", vec)
	}
	if err := pubVersion(0); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	sessions := make([]*Session, readers)
	for i := range sessions {
		if sessions[i], err = db.NewSession(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= rounds; v++ {
			if err := pubVersion(v); err != nil {
				t.Errorf("publish v%d: %v", v, err)
				return
			}
		}
	}()
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for iter := 0; iter < 2*rounds; iter++ {
				xs, err := s.Lookup("shared")
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				y, err := xs.Mul(2)
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				z, err := y.Add(1)
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				vals, err := z.Values()
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				// Uniform (no torn mix of versions) and equal to
				// 2v+1 for a version actually published.
				for k, x := range vals {
					if x != vals[0] {
						t.Errorf("reader %d: torn result at %d: %g vs %g", i, k, x, vals[0])
						return
					}
				}
				v := (vals[0] - 1) / 2
				if v != float64(int(v)) || v < 0 || v > rounds {
					t.Errorf("reader %d: value %g matches no published version", i, vals[0])
					return
				}
			}
		}(i, s)
	}
	wg.Wait()

	for i, s := range append(sessions, writer) {
		rt := s.Engine().(*engine.RIOT)
		acct := rt.Pool().Account()
		if acct == nil {
			t.Fatalf("session %d has no pin account", i)
		}
		if acct.Peak() > acct.Quota() {
			t.Errorf("session %d peak pinned %d exceeded quota %d", i, acct.Peak(), acct.Quota())
		}
		if err := s.Close(); err != nil {
			t.Errorf("closing session %d: %v", i, err)
		}
	}
	st, _ := db.CacheStats()
	if st.Installs == 0 {
		t.Error("stress run never installed anything — cache not exercised")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close freed the cache: no rescache-owned extents outlive the DB.
	for _, owner := range db.Pool().Device().Owners() {
		if len(owner) >= 8 && owner[:8] == "rescache" {
			t.Errorf("cache-owned extent %q survived DB close", owner)
		}
	}
}
