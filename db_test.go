package riot

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"riot/internal/engine"
)

// TestOpenRestartRoundTrip is the tentpole acceptance test: create and
// publish named arrays through a database session, close everything,
// reopen the directory (a fresh device, as a new process would see it),
// and read identical values back.
func TestOpenRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	db, err := Open(dir, Config{BlockElems: 64, MemElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Publish via the Go API...
	v, err := s.NewVector(1000, func(i int64) float64 { return float64(i) * 1.5 })
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Add(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish("dist", d); err != nil {
		t.Fatal(err)
	}
	m, err := s.NewMatrix(20, 30, func(i, j int64) float64 { return float64(i*1000 + j) })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PublishMatrix("grid", m); err != nil {
		t.Fatal(err)
	}
	// ...and via riotscript assignment (served sessions publish on
	// assignment).
	if _, err := s.RunScript("w <- 1:6\nw <- w * 10"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh DB over the same directory.
	db2, err := Open(dir, Config{BlockElems: 64, MemElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Names(); len(got) != 3 {
		t.Fatalf("Names() after restart = %v, want [dist grid w]", got)
	}
	s2, err := db2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	dist, err := s2.Lookup("dist")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := dist.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1000 {
		t.Fatalf("dist has %d values, want 1000", len(vals))
	}
	for i, got := range vals {
		if want := float64(i)*1.5 + 2; got != want {
			t.Fatalf("dist[%d] = %g, want %g", i, got, want)
		}
	}
	grid, err := s2.LookupMatrix("grid")
	if err != nil {
		t.Fatal(err)
	}
	if r, c := grid.Dims(); r != 20 || c != 30 {
		t.Fatalf("grid dims %dx%d, want 20x30", r, c)
	}
	if got, err := grid.At(7, 13); err != nil || got != 7013 {
		t.Fatalf("grid[7,13] = %g, %v; want 7013", got, err)
	}
	// The riotscript-published vector reads back through a script too.
	out, err := s2.RunScript("print(sum(w))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 210") {
		t.Fatalf("sum(w) printed %q, want 210", out)
	}
}

// TestCrossSessionVisibility: a name published by one session is read by
// another live session, last-writer-wins.
func TestCrossSessionVisibility(t *testing.T) {
	db, err := Open(t.TempDir(), Config{BlockElems: 64, MemElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.RunScript("x <- 1:10"); err != nil {
		t.Fatal(err)
	}
	out, err := b.RunScript("print(sum(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 55") {
		t.Fatalf("b read %q, want sum 55", out)
	}
	if _, err := b.RunScript("x <- x * 0 + 7"); err != nil {
		t.Fatal(err)
	}
	out, err = a.RunScript("print(sum(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 70") {
		t.Fatalf("a read %q after republish, want sum 70", out)
	}
}

// TestConcurrentSessionsQuota is the concurrency acceptance test: at
// least 4 sessions hammer shared named objects and the quota'd pool
// concurrently (run under -race), every session completes a mixed
// workload, and no session's pinned frames ever exceed its quota.
func TestConcurrentSessionsQuota(t *testing.T) {
	const nSessions = 5
	db, err := Open(t.TempDir(), Config{
		BlockElems:    64,
		MemElems:      1 << 14, // 256 frames
		SessionFrames: 24,
		MaxSessions:   nSessions,
	})
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		if sessions[i], err = db.NewSession(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			mine := fmt.Sprintf("mine%d", i)
			for round := 0; round < 6; round++ {
				script := fmt.Sprintf(`
%s <- 1:200 + %d
shared <- %s * 2
y <- sqrt(shared * shared)
print(sum(y))
`, mine, i*round, mine)
				if _, err := s.RunScript(script); err != nil {
					t.Errorf("session %d round %d: %v", i, round, err)
					return
				}
				// Read whatever version of the shared object is current.
				if _, err := s.RunScript("print(length(shared)); print(max(shared))"); err != nil {
					t.Errorf("session %d round %d read: %v", i, round, err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()

	for i, s := range sessions {
		rt := s.Engine().(*engine.RIOT)
		acct := rt.Pool().Account()
		if acct == nil {
			t.Fatalf("session %d has no pin account", i)
		}
		if acct.Peak() > acct.Quota() {
			t.Errorf("session %d peak pinned %d exceeded quota %d", i, acct.Peak(), acct.Quota())
		}
		if acct.Peak() == 0 {
			t.Errorf("session %d never pinned anything — workload did not exercise the pool", i)
		}
		if err := s.Close(); err != nil {
			t.Errorf("closing session %d: %v", i, err)
		}
	}
	// All sessions closed: every session-owned extent is gone, only
	// catalog storage (and nothing pinned) remains.
	if n := db.Pool().Pinned(); n != 0 {
		t.Errorf("%d frames still pinned after all sessions closed", n)
	}
	for _, owner := range db.Pool().Device().Owners() {
		if !strings.HasPrefix(owner, "cat.") {
			t.Errorf("non-catalog owner %q survived session close", owner)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionControl: NewSession blocks while the table is full and
// admits once a session closes; TryNewSession fails fast.
func TestAdmissionControl(t *testing.T) {
	db, err := Open(t.TempDir(), Config{
		BlockElems: 64, MemElems: 1 << 14,
		SessionFrames: 16, MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s1, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.TryNewSession(); err == nil {
		t.Fatal("TryNewSession succeeded with a full table")
	}
	admitted := make(chan *Session)
	go func() {
		s3, err := db.NewSession() // blocks until a slot frees
		if err != nil {
			t.Error(err)
		}
		admitted <- s3
	}()
	select {
	case <-admitted:
		t.Fatal("third session admitted before any closed")
	default:
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := <-admitted
	if db.ActiveSessions() != 2 {
		t.Fatalf("ActiveSessions = %d, want 2", db.ActiveSessions())
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCloseIdempotentAndStandalone: Close works (twice) on both
// standalone and database sessions, and a standalone session's engine
// frees its storage.
func TestSessionCloseIdempotentAndStandalone(t *testing.T) {
	for _, b := range backends() {
		s := NewSession(Config{Backend: b, BlockElems: 64, MemElems: 1 << 14})
		if v, err := s.SeqVector(100); err != nil {
			t.Fatalf("%v: %v", b, err)
		} else if sum, err := v.Sum(); err != nil || sum != 4950 {
			t.Fatalf("%v: sum=%g err=%v", b, sum, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%v: first Close: %v", b, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%v: second Close: %v", b, err)
		}
	}
	// RIOT standalone: storage is actually freed.
	s := NewSession(Config{Backend: BackendRIOT, BlockElems: 64, MemElems: 1 << 14})
	if _, err := s.SeqVector(1000); err != nil {
		t.Fatal(err)
	}
	rt := s.Engine().(*engine.RIOT)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := rt.Pool().Device().LiveBlocks(); n != 0 {
		t.Fatalf("%d blocks still live after standalone Close", n)
	}
}

// TestQuotaRefusesOversizedPin: a single statement that genuinely needs
// more simultaneously pinned frames than the session quota fails with
// the quota error instead of wedging the shared pool.
func TestQuotaRefusesOversizedPin(t *testing.T) {
	db, err := Open(t.TempDir(), Config{
		BlockElems: 64, MemElems: 1 << 14,
		SessionFrames: 3, // the bare minimum
		MaxSessions:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A tiny workload fits in 3 frames...
	if _, err := s.RunScript("a <- 1:64\nprint(sum(a))"); err != nil {
		t.Fatalf("minimal workload should fit in the quota: %v", err)
	}
	acct := s.Engine().(*engine.RIOT).Pool().Account()
	if acct.Peak() > 3 {
		t.Fatalf("peak pinned %d exceeded quota 3", acct.Peak())
	}
	if math.IsNaN(float64(acct.Peak())) {
		t.Fatal("unreachable")
	}
}

// TestRetiredVersionsReclaimed: republishing a name over and over must
// not leak device storage forever — superseded versions are freed once
// every session that could hold a handle has closed, and immediately
// when no other session is active.
func TestRetiredVersionsReclaimed(t *testing.T) {
	db, err := Open(t.TempDir(), Config{BlockElems: 64, MemElems: 1 << 14, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Republish the same name many times from the only session.
	for round := 0; round < 20; round++ {
		if _, err := s.RunScript("x <- 1:500"); err != nil {
			t.Fatal(err)
		}
	}
	liveWhileOpen := db.Pool().Device().LiveBlocks()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// With the publisher gone, everything but the current version (8
	// blocks of 64 elems for 500 floats) is reclaimed.
	live := db.Pool().Device().LiveBlocks()
	if live != 8 {
		t.Errorf("%d blocks live after publisher closed, want 8 (one version); %d while open", live, liveWhileOpen)
	}
	// A fresh session now republishes with no other session active:
	// old versions must be freed on the spot, not deferred to close.
	s2, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for round := 0; round < 20; round++ {
		if _, err := s2.RunScript("x <- 1:500"); err != nil {
			t.Fatal(err)
		}
	}
	// s2 itself is active, so versions retired while it runs are only
	// freeable when it closes — but growth must be bounded by its own
	// republish count plus temps, far below 20 rounds of leakage had
	// nothing been reclaimed... actually each retire stamps with s2's
	// seq, so nothing frees until s2 closes. Verify close reclaims.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if live := db.Pool().Device().LiveBlocks(); live != 8 {
		t.Errorf("%d blocks live after second publisher closed, want 8", live)
	}
}

// TestSparsePublishRestartRoundTrip drives the sparse kind through the
// whole database stack: a riotscript session converts a banded matrix
// with sparse() (the assignment publishes a sparse catalog entry), the
// database restarts, and a new session reads identical values back —
// with the sparse kind, and its density statistics, intact.
func TestSparsePublishRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	db, err := Open(dir, Config{BlockElems: 64, MemElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Publish via the Go API: a banded matrix converted to sparse.
	a, err := s.NewMatrix(48, 48, func(i, j int64) float64 {
		if i == j || i == j+1 {
			return float64(i + 1)
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Sparse()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PublishMatrix("band", sa); err != nil {
		t.Fatal(err)
	}
	// Publish via riotscript: the assignment hook routes the sparse
	// handle to a sparse catalog entry.
	in := s.Interp()
	in.SetVector("A", mustVal(t, sa))
	if err := in.Run("H <- A %*% A"); err != nil {
		t.Fatal(err)
	}
	wantVals, err := sa.Values()
	if err != nil {
		t.Fatal(err)
	}
	wantNNZ, err := sa.NNZ()
	if err != nil {
		t.Fatal(err)
	}
	hop, err := s.LookupMatrix("H")
	if err != nil {
		t.Fatal(err)
	}
	wantHop, err := hop.Values()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Config{BlockElems: 64, MemElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	back, err := s2.LookupMatrix("band")
	if err != nil {
		t.Fatal(err)
	}
	nnz, err := back.NNZ()
	if err != nil {
		t.Fatal(err)
	}
	if nnz != wantNNZ {
		t.Fatalf("restored nnz = %d, want %d", nnz, wantNNZ)
	}
	gotVals, err := back.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotVals) != len(wantVals) {
		t.Fatalf("restored %d values, want %d", len(gotVals), len(wantVals))
	}
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("restored [%d] = %g, want %g", i, gotVals[i], wantVals[i])
		}
	}
	// The script-published sparse×sparse product also survived, as a
	// sparse entry with identical values.
	hop2, err := s2.LookupMatrix("H")
	if err != nil {
		t.Fatal(err)
	}
	gotHop, err := hop2.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantHop {
		if gotHop[i] != wantHop[i] {
			t.Fatalf("H [%d] = %g, want %g", i, gotHop[i], wantHop[i])
		}
	}
}

// mustVal unwraps a matrix handle's engine value for interpreter
// binding.
func mustVal(t *testing.T, m *Matrix) engine.Value {
	t.Helper()
	return m.val
}

// NewSessionCancel aborts a queued admission when the cancel channel
// closes — the primitive the server uses to shed handlers whose client
// vanished while waiting for a slot.
func TestNewSessionCancel(t *testing.T) {
	db, err := Open(t.TempDir(), Config{BlockElems: 64, MemElems: 1 << 14, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	holder, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		s, err := db.NewSessionCancel(cancel)
		if s != nil {
			s.Close()
		}
		got <- err
	}()
	// The waiter must be parked, not failed: nothing arrives yet.
	select {
	case err := <-got:
		t.Fatalf("queued admission returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(cancel)
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("canceled admission returned a session")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled admission never returned")
	}

	// The slot is untouched: closing the holder admits a fresh session,
	// and a nil cancel channel still blocks-then-admits normally.
	holder.Close()
	s2, err := db.NewSessionCancel(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}
