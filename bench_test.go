package riot_test

// Benchmarks that regenerate the paper's figures, one per table/panel,
// plus ablations for the optimizations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmark output reports the figure's metric (I/O MB, blocks, or
// elements) as custom benchmark units so the shape of each result is
// visible straight from the bench log.

import (
	"testing"

	"riot/internal/bench"
	"riot/internal/costmodel"
	"riot/internal/engine"
	"riot/internal/riotdb"
	"riot/internal/rlang"
)

const fig1Script = `
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
`

// benchExample1 runs Example 1 once per iteration on a fresh engine.
func benchExample1(b *testing.B, mk func() engine.Engine, n int64) {
	b.Helper()
	var lastIO float64
	var lastSec float64
	for i := 0; i < b.N; i++ {
		e := mk()
		in := rlang.New(e)
		x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
		if err != nil {
			b.Fatal(err)
		}
		y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
		if err != nil {
			b.Fatal(err)
		}
		in.SetVector("x", x)
		in.SetVector("y", y)
		e.ResetStats()
		if err := in.Run(fig1Script); err != nil {
			b.Fatal(err)
		}
		rep := e.Report()
		lastIO = rep.IOMB()
		lastSec = rep.SimSeconds
	}
	b.ReportMetric(lastIO, "IO-MB")
	b.ReportMetric(lastSec, "sim-sec")
}

// Figure 1: Example 1 per engine at n=2^18 with the paper's memory
// recipe (runtime + two vectors).
func BenchmarkFigure1PlainR(b *testing.B) {
	const n = 1 << 18
	benchExample1(b, func() engine.Engine {
		return engine.NewPlainR(1024, int(n/1024)+24, 24, engine.DefaultTimeModel)
	}, n)
}

func BenchmarkFigure1Strawman(b *testing.B) {
	const n = 1 << 18
	benchExample1(b, func() engine.Engine {
		return engine.NewRIOTDB(riotdb.Strawman, 1024, n, engine.DefaultTimeModel)
	}, n)
}

func BenchmarkFigure1MatNamed(b *testing.B) {
	const n = 1 << 18
	benchExample1(b, func() engine.Engine {
		return engine.NewRIOTDB(riotdb.MatNamed, 1024, n, engine.DefaultTimeModel)
	}, n)
}

func BenchmarkFigure1FullDB(b *testing.B) {
	const n = 1 << 18
	benchExample1(b, func() engine.Engine {
		return engine.NewRIOTDB(riotdb.Full, 1024, n, engine.DefaultTimeModel)
	}, n)
}

func BenchmarkFigure1RIOT(b *testing.B) {
	const n = 1 << 18
	benchExample1(b, func() engine.Engine {
		return engine.NewRIOT(1024, n, engine.DefaultTimeModel)
	}, n)
}

// Figure 2: elements computed with eager vs deferred updates.
func BenchmarkFigure2EagerUpdate(b *testing.B) {
	var elems int64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure2(1<<16, 1024, nil)
		if err != nil {
			b.Fatal(err)
		}
		elems = rows[0].Elements
	}
	b.ReportMetric(float64(elems), "elements")
}

func BenchmarkFigure2DeferredUpdate(b *testing.B) {
	var elems int64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure2(1<<16, 1024, nil)
		if err != nil {
			b.Fatal(err)
		}
		elems = rows[1].Elements
	}
	b.ReportMetric(float64(elems), "elements")
}

// Figure 3(a): calculated chain I/O at the paper's parameters.
func BenchmarkFigure3a(b *testing.B) {
	var rows []bench.Figure3Row
	for i := 0; i < b.N; i++ {
		rows = bench.Figure3a([]float64{100000, 120000}, []float64{2, 4}, nil)
	}
	for _, r := range rows {
		if r.N == 100000 && r.MemGB == 2 {
			b.ReportMetric(r.IOBlocks, r.Strategy+"-blocks")
		}
	}
}

// Figure 3(b): skew sweep.
func BenchmarkFigure3b(b *testing.B) {
	var rows []bench.Figure3Row
	for i := 0; i < b.N; i++ {
		rows = bench.Figure3b([]float64{2, 4, 6, 8}, nil)
	}
	for _, r := range rows {
		if r.Skew == 8 {
			b.ReportMetric(r.IOBlocks, r.Strategy+"-s8-blocks")
		}
	}
}

// E6: measured vs modeled kernel I/O.
func BenchmarkModelValidation(b *testing.B) {
	var rows []bench.ValidateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ValidateModel([]int64{96, 160}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.N == 160 {
			b.ReportMetric(r.Measured/r.Predicted, r.Kernel+"-ratio")
		}
	}
}

// Ablation: the chain-reordering rule (Figure 3's Square/Opt-Order vs
// Square/In-Order) over a range of skews.
func BenchmarkAblationChainReorder(b *testing.B) {
	p := costmodel.Params{MemElems: costmodel.GB(2), BlockElems: 1024}
	var ratio float64
	for i := 0; i < b.N; i++ {
		dims := costmodel.SkewedChainDims(100000, 8)
		ratio = costmodel.InOrder(dims).IO(costmodel.StrategySquare, p) /
			costmodel.OptOrder(dims).IO(costmodel.StrategySquare, p)
	}
	b.ReportMetric(ratio, "inorder/opt")
}

// Ablation: fusion on/off for the Example 1 pipeline on the RIOT engine.
func BenchmarkAblationFusion(b *testing.B) {
	const n = 1 << 18
	run := func(fuse bool) float64 {
		e := engine.NewRIOT(1024, n, engine.DefaultTimeModel)
		e.Executor().FuseElementwise = fuse
		in := rlang.New(e)
		x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
		if err != nil {
			b.Fatal(err)
		}
		y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
		if err != nil {
			b.Fatal(err)
		}
		in.SetVector("x", x)
		in.SetVector("y", y)
		e.ResetStats()
		if err := in.Run("d <- sqrt((x-3)^2+(y-4)^2)\ntotal <- sum(d)\n"); err != nil {
			b.Fatal(err)
		}
		return e.Report().IOMB()
	}
	var fused, unfused float64
	for i := 0; i < b.N; i++ {
		fused = run(true)
		unfused = run(false)
	}
	b.ReportMetric(fused, "fused-IO-MB")
	b.ReportMetric(unfused, "unfused-IO-MB")
}
