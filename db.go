package riot

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"riot/internal/buffer"
	"riot/internal/catalog"
	"riot/internal/disk"
	"riot/internal/engine"
	"riot/internal/rescache"
	"riot/internal/wal"
)

// DB is a durable, multi-session RIOT database: one simulated device and
// sharded buffer pool shared by every session, plus an on-disk catalog
// of named arrays that survives process restarts. Open binds a host
// directory; NewSession admits concurrent sessions against the shared
// memory budget; Checkpoint/Close persist the catalog.
//
// Named arrays published by one session (riotscript assignment in a
// served session, or Session.Publish*) are immediately visible to every
// other session, last-writer-wins. Each session's concurrently pinned
// frames are metered against a per-session quota, so one greedy session
// cannot pin the shared pool shut.
type DB struct {
	cfg   Config
	dev   *disk.Device
	pool  *buffer.Pool // root (unmetered) view
	cat   *catalog.Catalog
	cache *rescache.Cache // shared result cache; nil when disabled

	mu      sync.Mutex
	admit   *sync.Cond
	active  map[int64]struct{} // admitted session seqs
	maxSess int
	quota   int // frames per session
	seq     int64
	closed  bool
	// retired holds catalog versions superseded while sessions were
	// active. A version retired when the newest admitted session was
	// seq S can only be referenced by sessions with seq <= S, so its
	// storage is freed as soon as every such session has closed
	// (epoch-based reclamation; see reclaimLocked).
	retired []retiredVersion
}

// retiredVersion is one superseded catalog entry awaiting reclamation.
type retiredVersion struct {
	e     *catalog.Entry
	stamp int64 // db.seq when retired: no later session can reference it
}

// Open creates or reopens a RIOT database in dir. The catalog file in
// dir (if any) is replayed into a fresh device, so named arrays
// persisted by an earlier process are readable immediately. Only the
// RIOT backend serves databases; cfg.Backend must be BackendRIOT (the
// zero value).
//
// Two Config fields beyond the usual machine sizing matter here:
// SessionFrames is each session's pinned-frame quota, and MaxSessions
// bounds how many sessions may be admitted at once (admission control —
// NewSession blocks while the table is full). Their defaults carve the
// pool into four session shares.
func Open(dir string, cfg Config) (*DB, error) {
	if cfg.Backend != BackendRIOT {
		return nil, fmt.Errorf("riot: Open requires BackendRIOT")
	}
	if cfg.BlockElems == 0 {
		cfg.BlockElems = 1024
	}
	if cfg.MemElems == 0 {
		cfg.MemElems = 1 << 22
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Time == (engine.TimeModel{}) {
		cfg.Time = engine.DefaultTimeModel
	}
	dev := disk.NewDevice(cfg.BlockElems)
	pool := buffer.NewShardedWithMemory(dev, cfg.MemElems, cfg.Workers)
	pool.SetSharedFlush(true)
	if cfg.Readahead {
		pool.SetReadahead(buffer.ReadaheadConfig{Enabled: true})
	}
	quota := cfg.SessionFrames
	if quota <= 0 {
		quota = pool.Capacity() / 4
	}
	if quota < buffer.MinSessionQuota {
		quota = buffer.MinSessionQuota
	}
	if quota > pool.Capacity() {
		quota = pool.Capacity()
	}
	maxSess := cfg.MaxSessions
	if maxSess <= 0 {
		maxSess = pool.Capacity() / quota
		if maxSess < 1 {
			maxSess = 1
		}
	}
	opts := catalog.Options{FlushInterval: cfg.WALFlushInterval}
	switch cfg.WALSync {
	case WALSyncInterval:
		opts.WAL = catalog.WALInterval
	case WALSyncOff:
		opts.WAL = catalog.WALOff
	default:
		opts.WAL = catalog.WALAlways
	}
	cat, err := catalog.OpenWith(dir, pool, opts)
	if err != nil {
		return nil, err
	}
	db := &DB{
		cfg:     cfg,
		dev:     dev,
		pool:    pool,
		cat:     cat,
		active:  make(map[int64]struct{}),
		maxSess: maxSess,
		quota:   quota,
	}
	db.admit = sync.NewCond(&db.mu)
	if cfg.ResultCache {
		cq := cfg.ResultCacheQuota
		if cq <= 0 {
			cq = cfg.MemElems / 4
		}
		db.cache = rescache.New(pool, cq)
	}
	cat.SetOnRetire(db.retireVersion)
	return db, nil
}

// Catalog exposes the underlying catalog for the server and tests.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool exposes the shared pool's root view (stats, capacity).
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Names returns the catalog's current names, sorted.
func (db *DB) Names() []string { return db.cat.List() }

// SessionQuota returns the per-session pinned-frame quota.
func (db *DB) SessionQuota() int { return db.quota }

// MaxSessions returns the admission bound.
func (db *DB) MaxSessions() int { return db.maxSess }

// ActiveSessions returns the number of currently admitted sessions.
func (db *DB) ActiveSessions() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.active)
}

// NewSession admits a new session over the shared pool. When MaxSessions
// sessions are already active it blocks until one closes (admission
// control); it fails only if the database is closed. The session's pins
// are metered against the per-session quota, its storage is namespaced
// so Close frees exactly its own arrays and temporaries, and its
// riotscript interpreter reads and writes the shared catalog.
func (db *DB) NewSession() (*Session, error) { return db.newSession(true, nil) }

// TryNewSession is NewSession without the wait: it errors immediately
// when the session table is full.
func (db *DB) TryNewSession() (*Session, error) { return db.newSession(false, nil) }

// NewSessionCancel is NewSession with an abort signal: if cancel closes
// while the caller is still queued for admission, the wait ends and an
// error returns instead of a session. A server uses this to stop
// camping on the session table when the client behind the wait has
// already vanished — before it, such a client leaked its queue slot
// (and its handler goroutine) until the whole process exited.
func (db *DB) NewSessionCancel(cancel <-chan struct{}) (*Session, error) {
	if cancel != nil {
		// Wake the admission queue when cancel fires; the broadcast is
		// taken under db.mu so a waiter cannot miss it between its
		// cancellation check and re-arming Wait.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cancel:
				db.mu.Lock()
				db.admit.Broadcast()
				db.mu.Unlock()
			case <-stop:
			}
		}()
	}
	return db.newSession(true, cancel)
}

// newSession admits under one lock hold, so TryNewSession's fullness
// check and the admission are atomic.
func (db *DB) newSession(wait bool, cancel <-chan struct{}) (*Session, error) {
	db.mu.Lock()
	for len(db.active) >= db.maxSess && !db.closed {
		if !wait {
			n := len(db.active)
			db.mu.Unlock()
			return nil, fmt.Errorf("riot: session table full (%d active, max %d)", n, db.maxSess)
		}
		select {
		case <-cancel:
			db.mu.Unlock()
			return nil, fmt.Errorf("riot: session admission canceled")
		default:
		}
		db.admit.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return nil, fmt.Errorf("riot: database is closed")
	}
	db.seq++
	seq := db.seq
	db.active[seq] = struct{}{}
	prefix := fmt.Sprintf("s%d.", seq)
	db.mu.Unlock()

	view := db.pool.Session(db.quota)
	eng := engine.NewRIOTWithPool(view, db.cfg.Time, engine.RIOTOptions{
		Workers: db.cfg.Workers,
		Planner: db.cfg.Planner.strategy(),
		Prefix:  prefix,
		Cache:   db.cache,
	})
	return &Session{eng: eng, db: db, seq: seq}, nil
}

// release returns one admission slot and reclaims any retired catalog
// versions the departing session was the last possible reader of;
// called by Session.Close.
func (db *DB) release(s *Session) {
	db.mu.Lock()
	delete(db.active, s.seq)
	db.reclaimLocked()
	db.admit.Signal()
	db.mu.Unlock()
}

// retireVersion is the catalog's onRetire hook (called with the catalog
// lock held): stamp the superseded version with the newest admitted
// session seq and queue it. Retiring also reclaims: with no sessions
// active, a hot publisher's old versions are freed on the spot.
func (db *DB) retireVersion(e *catalog.Entry) {
	// Eagerly reclaim cache entries computed from the superseded
	// version. Correctness never depends on this — the version is part
	// of every cache key, so stale entries can no longer be looked up —
	// but their quota is better spent on live results. The old stores
	// are also unregistered: DAGs still holding them become
	// cache-ineligible instead of hashing to unreachable keys.
	db.unregisterEntry(e)
	if db.cache != nil {
		db.cache.InvalidateName(e.Name)
	}
	db.mu.Lock()
	db.retired = append(db.retired, retiredVersion{e: e, stamp: db.seq})
	db.reclaimLocked()
	db.mu.Unlock()
}

// reclaimLocked frees every retired version whose stamp predates all
// active sessions: only sessions admitted at or before the stamp could
// hold a handle, so once they are gone the storage is unreachable.
// Callers hold db.mu.
func (db *DB) reclaimLocked() {
	minSeq := db.seq + 1
	for s := range db.active {
		if s < minSeq {
			minSeq = s
		}
	}
	keep := db.retired[:0]
	for _, r := range db.retired {
		if r.stamp < minSeq {
			r.e.FreeStorage()
		} else {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(db.retired); i++ {
		db.retired[i] = retiredVersion{}
	}
	db.retired = keep
}

// Checkpoint persists the catalog to the directory (atomic write-then-
// rename, incremental when the WAL is on). Safe to call while sessions
// are running.
func (db *DB) Checkpoint() error { return db.cat.Checkpoint() }

// WALStats returns a snapshot of the write-ahead log's counters and
// whether a WAL is active (false under WALSyncOff).
func (db *DB) WALStats() (wal.Stats, bool) { return db.cat.WALStats() }

// ResultCache exposes the shared result cache, or nil when the database
// was opened without Config.ResultCache. The server uses it for \cache;
// most callers want CacheStats.
func (db *DB) ResultCache() *rescache.Cache { return db.cache }

// CacheStats returns a snapshot of the result cache's counters and
// whether a cache is active (false unless Config.ResultCache was set).
func (db *DB) CacheStats() (rescache.Stats, bool) {
	if db.cache == nil {
		return rescache.Stats{}, false
	}
	return db.cache.Snapshot(), true
}

// registerEntry teaches the result cache the published identity of a
// catalog entry's backing stores, so expression DAGs built over handles
// to this entry hash by (name, version) instead of session-local
// pointers. Idempotent; no-op when the cache is off.
func (db *DB) registerEntry(e *catalog.Entry) {
	if db.cache == nil || e == nil {
		return
	}
	id := rescache.LeafID{Name: e.Name, Version: e.Version}
	if e.Vec != nil {
		db.cache.RegisterLeaf(e.Vec, id)
	}
	if e.Mat != nil {
		db.cache.RegisterLeaf(e.Mat, id)
	}
	if e.SVec != nil {
		db.cache.RegisterLeaf(e.SVec, id)
	}
	if e.SMat != nil {
		db.cache.RegisterLeaf(e.SMat, id)
	}
}

// unregisterEntry forgets a retired entry's stores. DAGs still holding
// the old handles become cache-ineligible rather than hashing to a key
// that can no longer be produced.
func (db *DB) unregisterEntry(e *catalog.Entry) {
	if db.cache == nil || e == nil {
		return
	}
	if e.Vec != nil {
		db.cache.UnregisterLeaf(e.Vec)
	}
	if e.Mat != nil {
		db.cache.UnregisterLeaf(e.Mat)
	}
	if e.SVec != nil {
		db.cache.UnregisterLeaf(e.SVec)
	}
	if e.SMat != nil {
		db.cache.UnregisterLeaf(e.SMat)
	}
}

// Close checkpoints the catalog and shuts the database. Every session
// must be closed first: with sessions still open, Close checkpoints the
// catalog anyway (so published state is not left silently stale) but
// refuses to tear down the shared pool, returning an error that names
// the open-session count — joined with the checkpoint error if that
// failed too. Close is idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	if n := len(db.active); n > 0 {
		db.mu.Unlock()
		return errors.Join(
			fmt.Errorf("riot: Close with %d open sessions", n),
			db.cat.Checkpoint(),
		)
	}
	db.closed = true
	db.admit.Broadcast()
	db.reclaimLocked() // no active sessions: frees everything retired
	db.mu.Unlock()
	if db.cache != nil {
		db.cache.Close() // frees every cached temp's storage
	}
	db.pool.DrainPrefetch()
	return db.cat.Close()
}

// ---- named-object plumbing between sessions and the catalog ----

// riotEngine asserts the session runs the RIOT backend (the only one
// that can share storage with a catalog).
func (s *Session) riotEngine() (*engine.RIOT, error) {
	rt, ok := s.eng.(*engine.RIOT)
	if !ok {
		return nil, fmt.Errorf("riot: named objects require the RIOT backend (engine %q)", s.eng.Name())
	}
	return rt, nil
}

// Publish forces the vector expression and publishes the result in the
// database catalog under name (last-writer-wins). DB sessions only.
func (s *Session) Publish(name string, v *Vector) error {
	if s.db == nil {
		return fmt.Errorf("riot: Publish requires a database session (riot.Open)")
	}
	rt, err := s.riotEngine()
	if err != nil {
		return err
	}
	if sv, ok := rt.SparseVectorOf(v.val); ok {
		e, err := s.db.cat.PutSparseVector(name, sv)
		s.db.registerEntry(e)
		return err
	}
	vec, err := rt.ForceVector(v.val)
	if err != nil {
		return err
	}
	e, err := s.db.cat.PutVector(name, vec)
	s.db.registerEntry(e)
	return err
}

// PublishMatrix forces the matrix expression and publishes the result
// under name (see Publish). Results whose natural kind is sparse — a
// sparse handle, or a sparse×sparse product — publish as sparse catalog
// entries, keeping their tile directories across restart.
func (s *Session) PublishMatrix(name string, m *Matrix) error {
	if s.db == nil {
		return fmt.Errorf("riot: PublishMatrix requires a database session (riot.Open)")
	}
	rt, err := s.riotEngine()
	if err != nil {
		return err
	}
	mat, smat, err := rt.ForceAnyMatrix(m.val)
	if err != nil {
		return err
	}
	if smat != nil {
		e, err := s.db.cat.PutSparseMatrix(name, smat)
		s.db.registerEntry(e)
		return err
	}
	e, err := s.db.cat.PutMatrix(name, mat)
	s.db.registerEntry(e)
	return err
}

// Lookup returns the named catalog vector as a session handle. The
// handle is a stable snapshot: republishing the name elsewhere does not
// change it.
func (s *Session) Lookup(name string) (*Vector, error) {
	if s.db == nil {
		return nil, fmt.Errorf("riot: Lookup requires a database session (riot.Open)")
	}
	rt, err := s.riotEngine()
	if err != nil {
		return nil, err
	}
	e, ok := s.db.cat.Get(name)
	if !ok {
		return nil, fmt.Errorf("riot: object %q not found", name)
	}
	s.db.registerEntry(e)
	switch e.Kind {
	case catalog.KindVector:
		return &Vector{s: s, val: rt.WrapVector(e.Vec)}, nil
	case catalog.KindSparseVector:
		return &Vector{s: s, val: rt.WrapSparseVector(e.SVec)}, nil
	}
	return nil, fmt.Errorf("riot: object %q is a matrix; use LookupMatrix", name)
}

// LookupMatrix returns the named catalog matrix as a session handle
// (see Lookup).
func (s *Session) LookupMatrix(name string) (*Matrix, error) {
	if s.db == nil {
		return nil, fmt.Errorf("riot: LookupMatrix requires a database session (riot.Open)")
	}
	rt, err := s.riotEngine()
	if err != nil {
		return nil, err
	}
	e, ok := s.db.cat.Get(name)
	if !ok {
		return nil, fmt.Errorf("riot: object %q not found", name)
	}
	s.db.registerEntry(e)
	switch e.Kind {
	case catalog.KindMatrix:
		return &Matrix{s: s, val: rt.WrapMatrix(e.Mat)}, nil
	case catalog.KindSparseMatrix:
		return &Matrix{s: s, val: rt.WrapSparseMatrix(e.SMat)}, nil
	}
	return nil, fmt.Errorf("riot: object %q is a vector; use Lookup", name)
}

// sessionGlobals adapts a DB session to the riotscript interpreter's
// global-store hook: variable reads fall through to the shared catalog
// and top-level assignments publish to it, which is what makes named
// objects visible across served sessions.
type sessionGlobals struct{ s *Session }

// GetGlobal implements rlang.GlobalStore.
func (g sessionGlobals) GetGlobal(name string) (engine.Value, bool) {
	rt, err := g.s.riotEngine()
	if err != nil {
		return nil, false
	}
	e, ok := g.s.db.cat.Get(name)
	if !ok {
		return nil, false
	}
	g.s.db.registerEntry(e)
	switch e.Kind {
	case catalog.KindVector:
		return rt.WrapVector(e.Vec), true
	case catalog.KindSparseVector:
		return rt.WrapSparseVector(e.SVec), true
	case catalog.KindSparseMatrix:
		return rt.WrapSparseMatrix(e.SMat), true
	}
	return rt.WrapMatrix(e.Mat), true
}

// SetGlobal implements rlang.GlobalStore: force the expression and
// publish it under name. Sparse handles publish as sparse entries —
// their tile directories (and so their density statistics) survive into
// the catalog and across restarts.
func (g sessionGlobals) SetGlobal(name string, v engine.Value) error {
	rt, err := g.s.riotEngine()
	if err != nil {
		return err
	}
	if sv, ok := rt.SparseVectorOf(v); ok {
		e, err := g.s.db.cat.PutSparseVector(name, sv)
		g.s.db.registerEntry(e)
		return err
	}
	_, _, isVec := rt.Dims(v)
	if isVec {
		vec, err := rt.ForceVector(v)
		if err != nil {
			return err
		}
		e, err := g.s.db.cat.PutVector(name, vec)
		g.s.db.registerEntry(e)
		return err
	}
	mat, smat, err := rt.ForceAnyMatrix(v)
	if err != nil {
		return err
	}
	if smat != nil {
		e, err := g.s.db.cat.PutSparseMatrix(name, smat)
		g.s.db.registerEntry(e)
		return err
	}
	e, err := g.s.db.cat.PutMatrix(name, mat)
	g.s.db.registerEntry(e)
	return err
}
