package costmodel

import (
	"math"
	"testing"
)

// TestCheaperSquareTiledCrossover pins the M crossover where the
// planner flips between the square-tiled and BNLJ-inspired multiply.
// For a skinny product (l=n=1000, m=10, B=1000) the BNLJ algorithm
// becomes a near-single-pass scan once memory holds enough rows of A,
// while the square-tiled cost only shrinks like 1/√M — so small M
// favors square tiling and large M favors BNLJ.
func TestCheaperSquareTiledCrossover(t *testing.T) {
	cases := []struct {
		name       string
		l, m, n    float64
		mem, block float64
		wantSquare bool
	}{
		{"skinny small M", 1000, 10, 1000, 1e4, 1000, true},
		{"skinny large M", 1000, 10, 1000, 1e6, 1000, false},
		{"cube modest M", 4096, 4096, 4096, 3 * 1024 * 1024, 1024, true},
		{"cube small M", 4096, 4096, 4096, 64 * 1024, 1024, true},
	}
	for _, c := range cases {
		p := Params{MemElems: c.mem, BlockElems: c.block}
		got := CheaperSquareTiled(c.l, c.m, c.n, p)
		if got != c.wantSquare {
			t.Errorf("%s: CheaperSquareTiled(%g,%g,%g, M=%g B=%g) = %v, want %v (square=%.0f bnlj=%.0f)",
				c.name, c.l, c.m, c.n, c.mem, c.block, got, c.wantSquare,
				SquareTiled(c.l, c.m, c.n, p), BNLJ(c.l, c.m, c.n, p))
		}
		// The decision must agree with the formulas it claims to compare.
		if want := SquareTiled(c.l, c.m, c.n, p) <= BNLJ(c.l, c.m, c.n, p); got != want {
			t.Errorf("%s: decision disagrees with formulas", c.name)
		}
	}
}

// TestMaterializeWinsCrossover pins the M crossover of the
// pipeline-vs-materialize decision: once one evaluation's inputs fit in
// half of memory (M ≥ 2·perEvalBlocks·B), recomputation is served from
// the buffer pool and pipelining must win; below it, a small shared
// temporary beats rescanning the inputs per consumer.
func TestMaterializeWinsCrossover(t *testing.T) {
	const block = 1024
	cases := []struct {
		name            string
		refs, rows      float64
		perEval, perRnd float64
		mem             float64
		want            bool
	}{
		// Crossover at M = 2·4096·1024 = 8388608 elements.
		{"inputs spill, small temp", 2, 1 << 20, 4096, 0, 8388608 - block, true},
		{"inputs resident", 2, 1 << 20, 4096, 0, 8388608, false},
		{"well above crossover", 2, 1 << 20, 4096, 0, 1 << 24, false},
		// A temporary as large as the recomputation never pays.
		{"temp as big as inputs", 2, 4 << 20, 4096, 0, 1 << 20, false},
		// Random-heavy evaluation (a shared gather): seeks dominate, the
		// one-block temporary wins decisively.
		{"shared gather", 2, 100, 101, 100, 131072, true},
		// A single consumer never materializes.
		{"refs=1", 1, 1 << 20, 1 << 20, 0, 1 << 10, false},
	}
	for _, c := range cases {
		p := Params{MemElems: c.mem, BlockElems: block}
		if got := MaterializeWins(c.refs, c.rows, c.perEval, c.perRnd, p); got != c.want {
			t.Errorf("%s: MaterializeWins(refs=%g rows=%g eval=%g rand=%g, M=%g) = %v, want %v",
				c.name, c.refs, c.rows, c.perEval, c.perRnd, c.mem, got, c.want)
		}
	}
}

// TestSeekBlocks sanity-checks the random-access weight: at B=1024
// (8 KiB blocks) one 8 ms seek costs the same as ~102 sequential block
// transfers at 100 MB/s.
func TestSeekBlocks(t *testing.T) {
	p := Params{MemElems: 1 << 22, BlockElems: 1024}
	got := SeekBlocks(p)
	want := 0.008 * 100 * (1 << 20) / 8192
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SeekBlocks = %g, want %g", got, want)
	}
}

func TestStreamBlocks(t *testing.T) {
	p := Params{BlockElems: 1024}
	for _, c := range []struct{ n, want float64 }{
		{0, 0}, {1, 1}, {1024, 1}, {1025, 2}, {1 << 20, 1024},
	} {
		if got := StreamBlocks(c.n, p); got != c.want {
			t.Errorf("StreamBlocks(%g) = %g, want %g", c.n, got, c.want)
		}
	}
}
