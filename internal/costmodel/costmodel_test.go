package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

var paper = Params{MemElems: GB(2), BlockElems: 1024}

func TestSquareTiledMagnitude(t *testing.T) {
	// Figure 3(a) scale: n=100000, s=2 → in-order chain costs a few 1e8
	// blocks with 2GB memory.
	dims := SkewedChainDims(100000, 2)
	io := InOrder(dims).IO(StrategySquare, paper)
	if io < 1e8 || io > 1e9 {
		t.Fatalf("Square/In-Order = %.3g blocks; expected ~1e8-1e9", io)
	}
}

func TestRIOTDBMagnitude(t *testing.T) {
	dims := SkewedChainDims(100000, 2)
	io := InOrder(dims).IO(StrategyRIOTDB, paper)
	if io < 1e11 || io > 1e14 {
		t.Fatalf("RIOT-DB = %.3g blocks; paper's Figure 3(a) shows ~1e12-1e13", io)
	}
}

func TestFigure3Ordering(t *testing.T) {
	// The paper's progression: RIOT-DB >> BNLJ > Square/In-Order >
	// Square/Opt-Order, "consistent for all parameter settings tested".
	for _, n := range []float64{100000, 120000} {
		for _, mem := range []float64{GB(2), GB(4)} {
			p := Params{MemElems: mem, BlockElems: 1024}
			dims := SkewedChainDims(n, 2)
			riotdb := InOrder(dims).IO(StrategyRIOTDB, p)
			bnlj := InOrder(dims).IO(StrategyBNLJ, p)
			sqIn := InOrder(dims).IO(StrategySquare, p)
			sqOpt := OptOrder(dims).IO(StrategySquare, p)
			if !(riotdb > bnlj && bnlj > sqIn && sqIn > sqOpt) {
				t.Fatalf("n=%g M=%g: ordering violated: %g, %g, %g, %g",
					n, mem, riotdb, bnlj, sqIn, sqOpt)
			}
			if riotdb < 100*bnlj {
				t.Fatalf("RIOT-DB should be orders of magnitude worse: %g vs %g", riotdb, bnlj)
			}
		}
	}
}

func TestFigure3bSkewWidensGap(t *testing.T) {
	// As s grows, Square/Opt-Order pulls away from Square/In-Order.
	p := paper
	prevRatio := 0.0
	for _, s := range []float64{2, 4, 6, 8} {
		dims := SkewedChainDims(100000, s)
		in := InOrder(dims).IO(StrategySquare, p)
		opt := OptOrder(dims).IO(StrategySquare, p)
		ratio := in / opt
		if ratio <= prevRatio {
			t.Fatalf("s=%g: gap ratio %g did not widen (prev %g)", s, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio < 3 {
		t.Fatalf("s=8 gap only %.2fx; paper shows a wide margin", prevRatio)
	}
}

func TestOptOrderPicksABC(t *testing.T) {
	// With skew s>1, A(BC) is optimal (the text calls this out).
	tree := OptOrder(SkewedChainDims(100000, 4))
	if got := tree.String(); got != "(A1 (A2 A3))" {
		t.Fatalf("opt order = %s, want (A1 (A2 A3))", got)
	}
}

func TestMultsMatchTextbookFormulas(t *testing.T) {
	n, s := 100000.0, 2.0
	dims := SkewedChainDims(n, s)
	inOrder := InOrder(dims).Mults()
	wantIn := n*(n/s)*n + n*n*n // (AB) then (AB)C
	if inOrder != wantIn {
		t.Fatalf("in-order mults=%g, want %g", inOrder, wantIn)
	}
	opt := OptOrder(dims).Mults()
	wantOpt := (n/s)*n*n + n*(n/s)*n // (BC) then A(BC)
	if opt != wantOpt {
		t.Fatalf("opt mults=%g, want %g", opt, wantOpt)
	}
}

func TestOptOrderMatchesBruteForceProperty(t *testing.T) {
	// For random 4-chains, DP must equal exhaustive enumeration of the
	// 5 parenthesizations.
	f := func(a, b, c, d, e uint16) bool {
		dims := []float64{float64(a%50 + 1), float64(b%50 + 1), float64(c%50 + 1),
			float64(d%50 + 1), float64(e%50 + 1)}
		best := OptOrder(dims).Mults()
		min := math.Inf(1)
		for _, t := range allTrees(dims, 0, 3) {
			if m := t.Mults(); m < min {
				min = m
			}
		}
		return best == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// allTrees enumerates all parenthesizations of dims[i..j+1].
func allTrees(dims []float64, i, j int) []*Tree {
	if i == j {
		return []*Tree{leaf(i, dims)}
	}
	var out []*Tree
	for s := i; s < j; s++ {
		for _, l := range allTrees(dims, i, s) {
			for _, r := range allTrees(dims, s+1, j) {
				out = append(out, node(l, r))
			}
		}
	}
	return out
}

func TestSquareAboveLowerBound(t *testing.T) {
	// The schedule is within a constant (2√3) of the lower bound.
	l, m, n := 50000.0, 25000.0, 50000.0
	io := SquareTiled(l, m, n, paper)
	lb := LowerBoundMultiply(l, m, n, paper)
	if io < lb {
		t.Fatalf("cost %g below lower bound %g", io, lb)
	}
	if io > 5*lb {
		t.Fatalf("cost %g too far above lower bound %g", io, lb)
	}
}

func TestChainAboveLowerBound(t *testing.T) {
	dims := SkewedChainDims(100000, 4)
	tree := OptOrder(dims)
	io := tree.IO(StrategySquare, paper)
	lb := LowerBoundChain(tree.Mults(), paper)
	if io < lb {
		t.Fatalf("chain cost %g below bound %g", io, lb)
	}
}

func TestMoreMemoryHelps(t *testing.T) {
	dims := SkewedChainDims(100000, 2)
	p2 := Params{MemElems: GB(2), BlockElems: 1024}
	p4 := Params{MemElems: GB(4), BlockElems: 1024}
	for _, s := range []Strategy{StrategyRIOTDB, StrategyBNLJ, StrategySquare} {
		io2 := InOrder(dims).IO(s, p2)
		io4 := InOrder(dims).IO(s, p4)
		if io4 >= io2 {
			t.Fatalf("%v: 4GB (%g) not cheaper than 2GB (%g)", s, io4, io2)
		}
	}
}

func TestBNLJBeatsNaiveColumn(t *testing.T) {
	l, m, n := 10000.0, 10000.0, 10000.0
	if BNLJ(l, m, n, paper) >= NaiveColumn(l, m, n, paper) {
		t.Fatal("BNLJ should beat the naive column-layout algorithm")
	}
}

func TestTreeStringAndInOrderShape(t *testing.T) {
	dims := []float64{2, 3, 4, 5}
	if got := InOrder(dims).String(); got != "((A1 A2) A3)" {
		t.Fatalf("in-order = %s", got)
	}
}

func TestGB(t *testing.T) {
	if GB(2) != 2*(1<<30)/8 {
		t.Fatalf("GB(2)=%g", GB(2))
	}
}
