// Package costmodel implements the paper's analytic I/O cost formulas:
// the Θ(lmn/(B√M)) square-tiled matrix multiply and its lower bound
// (Appendix A), the chain lower bound Θ(N/(B√M)) (Appendix B), the
// block-nested-loop-inspired algorithm of §3, the hash-join + external-
// sort + aggregate plan RIOT-DB bottoms out in (§4.1), and the dynamic
// program that picks the cheapest multiplication order (§5).
//
// All costs are in disk blocks, the unit of Figure 3. Parameters follow
// the paper: M is memory capacity in scalar numbers, B is block capacity
// in scalar numbers.
package costmodel

import (
	"fmt"
	"math"

	"riot/internal/disk"
)

// Params carries the machine model.
type Params struct {
	MemElems   float64 // M: memory capacity in numbers
	BlockElems float64 // B: numbers per disk block
}

// GB returns the number of float64 elements in g gibibytes, for
// paper-style "2GB / 4GB memory" parameters.
func GB(g float64) float64 { return g * (1 << 30) / 8 }

// SquareTiled returns the I/O cost (blocks) of multiplying an l×m matrix
// by an m×n matrix with the Appendix A schedule: square p×p submatrices,
// p = √(M/3), square tiling on disk. Cost = 2√3·lmn/(B√M) + ln/B
// (reads of A and B sub-blocks, plus one write of each result block).
func SquareTiled(l, m, n float64, p Params) float64 {
	read := 2 * math.Sqrt(3) * l * m * n / (p.BlockElems * math.Sqrt(p.MemElems))
	write := l * n / p.BlockElems
	return read + write
}

// LowerBoundMultiply is Appendix A's bound for a single multiply.
func LowerBoundMultiply(l, m, n float64, p Params) float64 {
	return l * m * n / (p.BlockElems * math.Sqrt(p.MemElems))
}

// LowerBoundChain is Appendix B's bound for a chain performing N scalar
// multiplications.
func LowerBoundChain(nMults float64, p Params) float64 {
	return nMults / (p.BlockElems * math.Sqrt(p.MemElems))
}

// BNLJ returns the I/O cost (blocks) of the §3 algorithm inspired by
// block nested-loop join: A in row layout is read once in chunks of r
// rows, where each chunk leaves room for the matching result rows and
// one block of column-major B; B is rescanned once per chunk.
func BNLJ(l, m, n float64, p Params) float64 {
	r := math.Floor((p.MemElems - p.BlockElems) / (m + n))
	if r < 1 {
		r = 1
	}
	passes := math.Ceil(l / r)
	readA := l * m / p.BlockElems
	readB := passes * m * n / p.BlockElems
	writeT := l * n / p.BlockElems
	return readA + readB + writeT
}

// NaiveColumn returns the I/O cost of R's own algorithm from Example 2
// with both matrices in column layout: computing each column of the
// result scans A in row-major order, so nearly every access to A is a
// fault — Θ(lmn) block I/Os.
func NaiveColumn(l, m, n float64, p Params) float64 {
	// One fault per A element access (l·m per result column, n columns),
	// plus a sequential read of B and write of T.
	return l*m*n + m*n/p.BlockElems + l*n/p.BlockElems
}

// RIOTDBMatMul returns the I/O cost (blocks) of the §4.1 SQL plan: hash
// join A⋈B on A.J=B.I (Grace-partitioned when inputs exceed memory),
// whose n1·n2·n3-tuple output is externally sorted for the group-by,
// then aggregated. Following the paper's Figure 3 adjustment, array
// index storage overhead is excluded: tuples are costed at one number
// each.
func RIOTDBMatMul(l, m, n float64, p Params) float64 {
	aBlocks := l * m / p.BlockElems
	bBlocks := m * n / p.BlockElems
	join := aBlocks + bBlocks
	if (l*m+m*n)/2 > p.MemElems {
		// Grace partitioning: write and re-read both inputs.
		join += 2 * (aBlocks + bBlocks)
	}
	// External sort of the join output (T numbers), pipelined in: run
	// generation writes T/B blocks; each merge pass reads and writes all
	// runs; the final pass pipes into the aggregate.
	t := l * m * n
	tBlocks := t / p.BlockElems
	runs := math.Ceil(t / p.MemElems)
	fan := math.Max(2, p.MemElems/p.BlockElems-1)
	passes := 0.0
	if runs > 1 {
		// Fractional passes model partially-filled final merges, so more
		// memory always helps (as in the paper's Figure 3a).
		passes = math.Log(runs) / math.Log(fan)
	}
	sort := tBlocks // write initial runs
	if passes > 0 {
		// Each pass reads everything and writes everything; the final
		// pass's write is replaced by the pipelined aggregate.
		sort += (2*passes - 1) * tBlocks
	}
	writeC := l * n / p.BlockElems
	return join + sort + writeC
}

// Strategy selects a per-multiply cost function for chain evaluation.
type Strategy int

// Chain evaluation strategies compared in Figure 3.
const (
	StrategyRIOTDB Strategy = iota
	StrategyBNLJ
	StrategySquare
)

func (s Strategy) String() string {
	switch s {
	case StrategyRIOTDB:
		return "RIOT-DB"
	case StrategyBNLJ:
		return "BNLJ-Inspired"
	case StrategySquare:
		return "Square"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// multiplyCost dispatches to the per-strategy formula.
func multiplyCost(s Strategy, l, m, n float64, p Params) float64 {
	switch s {
	case StrategyRIOTDB:
		return RIOTDBMatMul(l, m, n, p)
	case StrategyBNLJ:
		return BNLJ(l, m, n, p)
	case StrategySquare:
		return SquareTiled(l, m, n, p)
	}
	panic("costmodel: unknown strategy")
}

// Tree is a parenthesization of a matrix chain. Leaves are input matrix
// indexes; internal nodes are multiplications.
type Tree struct {
	Leaf       int // valid when L == nil
	L, R       *Tree
	rows, cols float64
}

// IsLeaf reports whether the node is an input matrix.
func (t *Tree) IsLeaf() bool { return t.L == nil }

func (t *Tree) String() string {
	if t.IsLeaf() {
		return fmt.Sprintf("A%d", t.Leaf+1)
	}
	return "(" + t.L.String() + " " + t.R.String() + ")"
}

// InOrder builds the left-deep tree (A1 A2) A3 ... — the order R itself
// evaluates a %*% chain.
func InOrder(dims []float64) *Tree {
	k := len(dims) - 1
	t := leaf(0, dims)
	for i := 1; i < k; i++ {
		t = node(t, leaf(i, dims))
	}
	return t
}

func leaf(i int, dims []float64) *Tree {
	return &Tree{Leaf: i, rows: dims[i], cols: dims[i+1]}
}

func node(l, r *Tree) *Tree {
	return &Tree{L: l, R: r, rows: l.rows, cols: r.cols}
}

// Mults returns the number of scalar multiplications the tree performs.
func (t *Tree) Mults() float64 {
	if t.IsLeaf() {
		return 0
	}
	return t.L.Mults() + t.R.Mults() + t.L.rows*t.L.cols*t.R.cols
}

// IO returns the total I/O (blocks) of evaluating the tree, charging
// each multiplication with the strategy's formula. Intermediate results
// are materialized between multiplies, as Appendix B's optimal schedule
// does ("one active matrix multiplication at a time").
func (t *Tree) IO(s Strategy, p Params) float64 {
	if t.IsLeaf() {
		return 0
	}
	return t.L.IO(s, p) + t.R.IO(s, p) +
		multiplyCost(s, t.L.rows, t.L.cols, t.R.cols, p)
}

// OptOrder runs the classic O(k³) dynamic program over multiplication
// counts (the paper's §5 "with dynamic programming, we can find a
// multiplication order that minimizes the total number of
// multiplications") and returns the optimal tree.
func OptOrder(dims []float64) *Tree {
	k := len(dims) - 1
	if k == 0 {
		return nil
	}
	cost := make([][]float64, k)
	split := make([][]int, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		split[i] = make([]int, k)
	}
	for span := 1; span < k; span++ {
		for i := 0; i+span < k; i++ {
			j := i + span
			cost[i][j] = math.Inf(1)
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] + dims[i]*dims[s+1]*dims[j+1]
				if c < cost[i][j] {
					cost[i][j] = c
					split[i][j] = s
				}
			}
		}
	}
	var build func(i, j int) *Tree
	build = func(i, j int) *Tree {
		if i == j {
			return leaf(i, dims)
		}
		s := split[i][j]
		return node(build(i, s), build(s+1, j))
	}
	return build(0, k-1)
}

// SkewedChainDims returns the Figure 3 input: A (n × n/s), B (n/s × n),
// C (n × n).
func SkewedChainDims(n, s float64) []float64 {
	return []float64{n, n / s, n, n}
}

// --- Physical-planner decision functions ---
//
// The planner (internal/plan) makes its plan-time choices by comparing
// the formulas above. The two comparisons it needs — which multiply
// algorithm, and pipeline-vs-materialize for a shared subexpression —
// live here so their crossover points can be unit-tested against the
// formulas directly.

// Disk timing used by the planner's time weighting: taken from the
// simulated device's own cost model (2009 commodity SATA: ~100 MB/s
// sequential, ~8 ms per random positioning), so tuning
// disk.DefaultCostModel retunes plan estimates with it.
var (
	SeqBytesPerSec = disk.DefaultCostModel.SeqBytesPerSec
	RandSeekSec    = disk.DefaultCostModel.RandSeekSec
)

// Network timing for distributed plans, on the same simulated-2009
// scale as the disk model: gigabit Ethernet moves ~125 MB/s and a
// LAN round trip costs ~200 µs. A "network block" is the same B·8
// bytes as a device block, so Explain's net column reads in the same
// unit as its io column.
var (
	NetBytesPerSec = 125e6
	NetRTTSec      = 0.0002
)

// NetSeconds converts shipped blocks plus request round trips into
// estimated interconnect time.
func NetSeconds(blocks, rtts float64, p Params) float64 {
	return blocks*(p.BlockElems*8)/NetBytesPerSec + rtts*NetRTTSec
}

// FlopsPerSec is the sustained scalar arithmetic rate the planner's CPU
// term divides by. The default matches engine.DefaultTimeModel's
// interpreter-grade 2e8 flops/s, so estimated CPU seconds land on the
// same simulated-2009 scale as the I/O seconds; Calibrate retunes it
// from a measured kernel rate (riot-bench -figure gflops measures the
// real one).
var FlopsPerSec = 2e8

// CPUSeconds converts a flop count into estimated seconds under
// FlopsPerSec. It is kept separate from the I/O seconds of plan steps:
// compute overlaps I/O only when the scheduler prefetches well, so the
// planner reports the two terms side by side rather than summing them.
func CPUSeconds(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / FlopsPerSec
}

// Calibrate sets FlopsPerSec from a measured rate (flops per second)
// and returns the previous value, for tests to restore.
func Calibrate(rate float64) float64 {
	prev := FlopsPerSec
	if rate > 0 {
		FlopsPerSec = rate
	}
	return prev
}

// SeekBlocks returns how many sequentially transferred blocks cost the
// same time as one random positioning — the weight a random block
// access carries in planner cost comparisons.
func SeekBlocks(p Params) float64 {
	return RandSeekSec * SeqBytesPerSec / (p.BlockElems * 8)
}

// StreamBlocks returns the blocks occupied by n elements (at least one
// when n > 0), the sequential cost of streaming or storing them once.
func StreamBlocks(n float64, p Params) float64 {
	if n <= 0 {
		return 0
	}
	return math.Ceil(n / p.BlockElems)
}

// CheaperSquareTiled reports whether the Appendix A square-tiled
// schedule is predicted no more expensive than the §3 BNLJ-inspired
// algorithm for an l×m by m×n multiply. The planner flips algorithms
// exactly where the two formulas cross.
func CheaperSquareTiled(l, m, n float64, p Params) bool {
	return SquareTiled(l, m, n, p) <= BNLJ(l, m, n, p)
}

// MaterializeWins decides Pipeline vs Materialize for a shared vector
// subexpression: refs is its number of consumers, rows its length, and
// one full (re)computation of it reads perEvalBlocks blocks of which
// perEvalRand are random positionings.
//
// Materializing pays one evaluation, one write of the temporary, and
// one read of it per consumer; recomputing pays one evaluation per
// consumer. Reads that the buffer pool will serve from memory are free:
// when an evaluation's inputs (or the temporary itself) fit in half the
// memory budget, their re-reads cost nothing, which is what makes the
// decision flip with M.
func MaterializeWins(refs, rows, perEvalBlocks, perEvalRand float64, p Params) bool {
	if refs <= 1 {
		return false
	}
	// Inputs resident: recomputation is pure CPU after the first pass, a
	// temporary could only add I/O.
	if perEvalBlocks*p.BlockElems <= p.MemElems/2 {
		return false
	}
	evalCost := perEvalBlocks + perEvalRand*SeekBlocks(p)
	out := StreamBlocks(rows, p)
	readBack := refs * out
	if out*p.BlockElems <= p.MemElems/2 {
		readBack = 0 // temporary stays resident
	}
	return evalCost+out+readBack < refs*evalCost
}

// --- Sparse kernels (tile-compressed arrays) ---
//
// The sparse kernels in internal/linalg skip every k-step whose sparse
// tile is empty, so their I/O is a function of NON-EMPTY tile counts,
// not of the grid. The planner derives those counts from the operands'
// tile directories (exact for stored arrays) or propagates them through
// nested products with the uniform-tile approximations below. All
// results are in blocks, like every other formula in this package.

// SparseDenseMatMulReads estimates the block reads of the sparse×dense
// multiply: each of the neA non-empty tiles of A is visited once per
// output tile column, paired with one B tile read.
func SparseDenseMatMulReads(neA, outTileCols float64) float64 {
	return 2 * neA * outTileCols
}

// DenseSparseMatMulReads is the mirrored estimate for dense×sparse.
func DenseSparseMatMulReads(neB, outTileRows float64) float64 {
	return 2 * neB * outTileRows
}

// SparseSparseMatMul estimates the sparse×sparse multiply: a k-step of
// output tile (i, j) runs only when tile (i, k) of A and (k, j) of B are
// both non-empty. With pA and pB the operands' non-empty-tile fractions,
// the expected number of executed k-steps is agr·bgc·agc·pA·pB (two
// block reads each), and an output tile is written at all only if at
// least one of its agc k-steps ran.
func SparseSparseMatMul(agr, agc, bgc, neA, neB float64) (reads, writes float64) {
	if agr <= 0 || agc <= 0 || bgc <= 0 {
		return 0, 0
	}
	pA := neA / (agr * agc)
	pB := neB / (agc * bgc)
	steps := agr * bgc * agc * pA * pB
	outNE := agr * bgc * (1 - math.Pow(1-pA*pB, agc))
	return 2 * steps, outNE
}

// EstProductNNZ estimates the nonzero count of an l×m by m×n product
// from its operands' nonzero counts, assuming independent uniform
// placement: an output cell stays zero only if all m of its addend
// pairs miss.
func EstProductNNZ(l, m, n, nnzA, nnzB float64) float64 {
	if l <= 0 || m <= 0 || n <= 0 {
		return 0
	}
	dA := nnzA / (l * m)
	dB := nnzB / (m * n)
	return l * n * (1 - math.Pow(1-dA*dB, m))
}
