// Package server implements riot-serve: a concurrent-session riotscript
// server over one riot.DB. It is the layer that turns the library into a
// system — N clients share one device, one sharded buffer pool, and one
// durable catalog of named arrays, with per-session frame quotas and
// admission control enforced underneath by the DB.
//
// # Protocol
//
// The protocol is line-oriented text over a stream connection. Each
// request is one line: either a riotscript statement (several may be
// packed with ';') or a server command starting with '\'. The server
// answers every request with zero or more payload lines, each prefixed
// "| ", followed by exactly one status line: "ok", or "err <message>".
// On connect, the server sends one greeting block (payload + status)
// before the first request; if admission fails the greeting's status is
// an err and the connection closes.
//
// Commands:
//
//	\stats       engine report, shared-pool and result-cache counters
//	\list        catalog names, one per payload line
//	\checkpoint  persist the catalog now
//	\wal         write-ahead-log mode and counters ("wal: off" if none)
//	\cache       result-cache entries; "\cache clear" drops them all
//	\quit        close this connection (its session's storage is freed)
//	\shutdown    gracefully stop the whole server
//
// Each connection owns one DB session and one riotscript interpreter for
// its whole lifetime, so variables persist across requests, and named
// arrays published by any connection are visible to all (last-writer-
// wins through the shared catalog).
//
// PROTOCOL.md at the repository root is the normative specification of
// the wire format for out-of-tree clients.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"riot"
	"riot/internal/rlang"
)

// Server serves riotscript sessions from a shared riot.DB.
type Server struct {
	db *riot.DB

	mu       sync.Mutex
	ln       net.Listener
	conns    sync.WaitGroup
	stopping atomic.Bool
}

// New creates a server over db. The caller retains ownership of db and
// closes it after Serve returns.
func New(db *riot.DB) *Server { return &Server{db: db} }

// DB returns the served database.
func (s *Server) DB() *riot.DB { return s.db }

// Serve accepts connections on ln until Close (or \shutdown) stops the
// listener, then waits for in-flight connections to finish. It returns
// nil on a clean stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.conns.Wait()
			if s.stopping.Load() {
				return nil
			}
			return err
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for connections to drain. It is
// idempotent and safe to call from any goroutine (including a \shutdown
// handler).
func (s *Server) Close() error {
	if !s.stopping.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return nil
}

// reply writes one response block: the payload (split into lines, each
// prefixed "| ") and the status line.
func reply(w *bufio.Writer, payload string, err error) error {
	if payload != "" {
		for _, line := range strings.Split(strings.TrimRight(payload, "\n"), "\n") {
			if _, werr := w.WriteString("| " + line + "\n"); werr != nil {
				return werr
			}
		}
	}
	status := "ok"
	if err != nil {
		status = "err " + strings.ReplaceAll(err.Error(), "\n", " ")
	}
	if _, werr := w.WriteString(status + "\n"); werr != nil {
		return werr
	}
	return w.Flush()
}

// handle runs one connection: admit a session, loop over requests,
// release the session on the way out.
//
// Admission is cancelable: a watcher peeks at the connection's first
// byte, and if the client vanishes (or sends EOF) while this handler is
// still queued behind MaxSessions, the wait aborts and the goroutine
// exits instead of camping on the session table forever. Clients speak
// only after the greeting, so the peek cannot steal request bytes; the
// scanner below reads from the same buffered reader the peek primed.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	vanished := make(chan struct{})
	peeked := make(chan error, 1)
	go func() {
		_, err := br.Peek(1)
		if err != nil {
			close(vanished)
		}
		peeked <- err
	}()
	sess, err := s.db.NewSessionCancel(vanished)
	if err != nil {
		reply(w, "", fmt.Errorf("admission: %v", err))
		return
	}
	defer sess.Close()
	in := sess.Interp()
	greeting := fmt.Sprintf("riot-serve: engine %s, session quota %d frames, %d/%d sessions",
		sess.EngineName(), s.db.SessionQuota(), s.db.ActiveSessions(), s.db.MaxSessions())
	if err := reply(w, greeting, nil); err != nil {
		return
	}
	// Join the peek before touching br from this goroutine: bufio.Reader
	// is not concurrency-safe, and the watcher is done with it exactly
	// when Peek returns.
	if err := <-peeked; err != nil {
		return
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			if err := reply(w, "", nil); err != nil {
				return
			}
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(line), "\\") {
			if quit := s.command(w, sess, strings.TrimSpace(line)); quit {
				return
			}
			continue
		}
		in.Out.Reset() // bound the builder: connections live a long time
		runErr := s.run(in, line)
		payload := in.Out.String()
		if err := reply(w, payload, runErr); err != nil {
			return
		}
	}
}

// run executes one statement, converting an interpreter panic into an
// error so a malformed statement cannot take the whole server down with
// it — the session and its quota are released normally.
func (s *Server) run(in *rlang.Interp, line string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("statement panicked: %v", r)
		}
	}()
	return in.Run(line)
}

// command executes one '\' request and reports whether the connection
// should close.
func (s *Server) command(w *bufio.Writer, sess *riot.Session, cmd string) (quit bool) {
	// \cache is the one command that takes an argument; match on the
	// first token so "\cache clear" parses.
	if fields := strings.Fields(cmd); fields[0] == "\\cache" {
		s.cacheCmd(w, fields[1:])
		return false
	}
	switch cmd {
	case "\\quit", "\\q":
		reply(w, "bye", nil)
		return true
	case "\\shutdown":
		// Acknowledge first: the client's Do must complete even though
		// the listener is about to die.
		reply(w, "shutting down", nil)
		go s.Close()
		return true
	case "\\checkpoint":
		reply(w, "", s.db.Checkpoint())
		return false
	case "\\list":
		reply(w, strings.Join(s.db.Names(), "\n"), nil)
		return false
	case "\\stats":
		var b strings.Builder
		fmt.Fprintf(&b, "engine: %s\n", sess.Report())
		fmt.Fprintf(&b, "pool:   %s\n", s.db.Pool().Stats())
		fmt.Fprintf(&b, "device: %s\n", s.db.Pool().Device().Stats())
		if st, on := s.db.CacheStats(); on {
			fmt.Fprintf(&b, "cache:  cache_hits=%d cache_misses=%d cache_bytes=%d cache_evictions=%d\n",
				st.Hits, st.Misses, st.Bytes, st.Evictions)
		}
		reply(w, b.String(), nil)
		return false
	case "\\wal":
		st, on := s.db.WALStats()
		if !on {
			reply(w, "wal: off (checkpoint-only durability)", nil)
			return false
		}
		var b strings.Builder
		fmt.Fprintf(&b, "wal: mode=%s\n", st.Mode)
		fmt.Fprintf(&b, "appends: %d (%d bytes), fsyncs: %d, grouped acks: %d\n",
			st.Appends, st.AppendedBytes, st.Fsyncs, st.GroupedAcks)
		fmt.Fprintf(&b, "lsn: last=%d durable=%d\n", st.LastLSN, st.DurableLSN)
		fmt.Fprintf(&b, "rotations: %d, replayed: %d, truncated bytes: %d\n",
			st.Rotations, st.Replayed, st.TruncatedBytes)
		reply(w, b.String(), nil)
		return false
	default:
		reply(w, "", fmt.Errorf("unknown command %q (try \\stats \\list \\checkpoint \\wal \\cache \\quit \\shutdown)", cmd))
		return false
	}
}

// cacheCmd serves \cache: with no argument it lists the result cache's
// counters and resident entries; "clear" drops every unreferenced entry.
func (s *Server) cacheCmd(w *bufio.Writer, args []string) {
	cache := s.db.ResultCache()
	if cache == nil {
		reply(w, "cache: off (enable with -cache)", nil)
		return
	}
	switch {
	case len(args) == 0:
		st := cache.Snapshot()
		var b strings.Builder
		fmt.Fprintf(&b, "cache: entries=%d bytes=%d quota_bytes=%d\n", st.Entries, st.Bytes, st.QuotaBytes)
		fmt.Fprintf(&b, "cache_hits=%d cache_misses=%d cache_bytes=%d cache_evictions=%d\n",
			st.Hits, st.Misses, st.Bytes, st.Evictions)
		fmt.Fprintf(&b, "installs=%d invalidations=%d rejected=%d\n",
			st.Installs, st.Invalidations, st.Rejected)
		for _, line := range cache.Describe() {
			fmt.Fprintf(&b, "%s\n", line)
		}
		reply(w, b.String(), nil)
	case len(args) == 1 && args[0] == "clear":
		before := cache.Snapshot().Entries
		cache.Clear()
		reply(w, fmt.Sprintf("cache cleared (%d entries dropped)", before), nil)
	default:
		reply(w, "", fmt.Errorf("usage: \\cache [clear]"))
	}
}

// ---- client ----

// Client is a minimal protocol client, used by riot-serve's -send mode,
// the CI smoke job, and the tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a riot-serve at addr and consumes the greeting. A
// greeting with err status (admission refused) is returned as an error.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, err := c.readBlock(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Do sends one request line and returns the response payload (without
// the "| " prefixes). A server err status comes back as a Go error.
func (c *Client) Do(line string) (string, error) {
	if strings.ContainsAny(line, "\n\r") {
		return "", fmt.Errorf("client: request must be a single line")
	}
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readBlock()
}

// readBlock consumes payload lines up to and including the status line.
func (c *Client) readBlock() (string, error) {
	var payload strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return payload.String(), fmt.Errorf("client: connection lost: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "ok":
			return payload.String(), nil
		case strings.HasPrefix(line, "err "):
			return payload.String(), fmt.Errorf("%s", line[len("err "):])
		case strings.HasPrefix(line, "| "):
			payload.WriteString(line[2:])
			payload.WriteByte('\n')
		default:
			return payload.String(), fmt.Errorf("client: malformed response line %q", line)
		}
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
