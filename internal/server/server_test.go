package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"riot"
)

// startServer spins up a server over a fresh DB in dir and returns the
// address plus a stop function that drains it and closes the DB.
func startServer(t *testing.T, dir string, cfg riot.Config) (addr string, stop func()) {
	t.Helper()
	db, err := riot.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Errorf("db.Close: %v", err)
		}
	}
}

func smallCfg() riot.Config {
	return riot.Config{BlockElems: 64, MemElems: 1 << 14}
}

// TestProtocolBasics: statements evaluate, output comes back, errors
// come back as err status without killing the connection.
func TestProtocolBasics(t *testing.T) {
	addr, stop := startServer(t, t.TempDir(), smallCfg())
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do("x <- 1:10"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Do("print(sum(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 55") {
		t.Fatalf("sum printed %q", out)
	}
	// An error response keeps the session alive; state survives.
	if _, err := c.Do("print(nope)"); err == nil {
		t.Fatal("undefined variable did not err")
	}
	if _, err := c.Do("x[0]"); err == nil || !strings.Contains(err.Error(), "subscript out of bounds") {
		t.Fatalf("x[0] error = %v, want subscript out of bounds", err)
	}
	out, err = c.Do("print(length(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 10") {
		t.Fatalf("session state lost after error: %q", out)
	}
	// Commands.
	out, err = c.Do("\\list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x") {
		t.Fatalf("\\list = %q, want x", out)
	}
	if _, err := c.Do("\\stats"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("\\bogus"); err == nil {
		t.Fatal("unknown command did not err")
	}
	if _, err := c.Do("\\quit"); err != nil {
		t.Fatal(err)
	}
}

// TestServerRestartRoundTrip drives the CI smoke scenario end to end in
// process: run a script over the protocol, shut down (checkpointing),
// restart over the same directory, and verify the named arrays.
func TestServerRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	addr, stop := startServer(t, dir, smallCfg())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		"base <- 1:100",
		"dist <- sqrt(base * base + 3 * base)",
		"\\checkpoint",
	} {
		if _, err := c.Do(stmt); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
	}
	want, err := c.Do("print(sum(dist))")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	stop() // graceful: drains the session, checkpoints, closes the DB

	// Restart on the same directory.
	addr2, stop2 := startServer(t, dir, smallCfg())
	defer stop2()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	out, err := c2.Do("\\list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "base") || !strings.Contains(out, "dist") {
		t.Fatalf("catalog after restart = %q, want base and dist", out)
	}
	got, err := c2.Do("print(sum(dist))")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum(dist) after restart = %q, want %q", got, want)
	}
}

// TestShutdownCommand: \shutdown stops the listener; Serve returns nil.
func TestShutdownCommand(t *testing.T) {
	db, err := riot.Open(t.TempDir(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("\\shutdown"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after \\shutdown", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The catalog file must exist (Close checkpoints).
	if _, err := riot.Open(db.Catalog().Dir(), smallCfg()); err != nil {
		t.Fatalf("reopening after shutdown: %v", err)
	}
}

// TestConcurrentClients: >= 4 concurrent connections hammer shared names
// over the protocol (run under -race). Every client completes its mixed
// workload and sees *some* coherent version of the shared object.
func TestConcurrentClients(t *testing.T) {
	cfg := smallCfg()
	cfg.SessionFrames = 24
	cfg.MaxSessions = 8
	addr, stop := startServer(t, t.TempDir(), cfg)
	defer stop()

	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer c.Close()
			for round := 0; round < 5; round++ {
				stmts := []string{
					fmt.Sprintf("mine%d <- 1:150 + %d", i, round),
					fmt.Sprintf("shared <- mine%d * 2", i),
					"print(sum(sqrt(shared * shared)))",
					"print(length(shared))",
				}
				for _, stmt := range stmts {
					if _, err := c.Do(stmt); err != nil {
						t.Errorf("client %d round %d %q: %v", i, round, stmt, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestAdmissionOverProtocol: with MaxSessions 1, a second connection
// blocks until the first quits, then gets served.
func TestAdmissionOverProtocol(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxSessions = 1
	addr, stop := startServer(t, t.TempDir(), cfg)
	defer stop()

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() {
		c2, err := Dial(addr) // greeting only arrives once admitted
		if err != nil {
			second <- err
			return
		}
		defer c2.Close()
		_, err = c2.Do("print(1 + 1)")
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("second client served while first held the only slot (err=%v)", err)
	default:
	}
	if _, err := c1.Do("\\quit"); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	if err := <-second; err != nil {
		t.Fatalf("second client after slot freed: %v", err)
	}
}

// TestWALCommand: \wal reports the log's mode and counters when it is
// on, and says so plainly when the database runs checkpoint-only.
func TestWALCommand(t *testing.T) {
	addr, stop := startServer(t, t.TempDir(), smallCfg()) // WALSyncAlways default
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do("x <- 1:100"); err != nil { // one publish, one append
		t.Fatal(err)
	}
	out, err := c.Do("\\wal")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mode=always") {
		t.Fatalf("\\wal = %q, want mode=always", out)
	}
	if !strings.Contains(out, "appends: 1") {
		t.Fatalf("\\wal = %q, want appends: 1 after one publish", out)
	}

	off := smallCfg()
	off.WALSync = riot.WALSyncOff
	addrOff, stopOff := startServer(t, t.TempDir(), off)
	defer stopOff()
	cOff, err := Dial(addrOff)
	if err != nil {
		t.Fatal(err)
	}
	defer cOff.Close()
	out, err = cOff.Do("\\wal")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wal: off") {
		t.Fatalf("\\wal on a WAL-less database = %q, want wal: off", out)
	}
}

// TestCacheCommand: \cache reports off without Config.ResultCache; with
// the cache on, a replayed expression shows up as a hit in \stats and a
// resident entry in \cache, and \cache clear empties it.
func TestCacheCommand(t *testing.T) {
	addr, stop := startServer(t, t.TempDir(), smallCfg())
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Do("\\cache")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache: off") {
		t.Fatalf("\\cache on a cache-less database = %q, want cache: off", out)
	}

	on := smallCfg()
	on.ResultCache = true
	addrOn, stopOn := startServer(t, t.TempDir(), on)
	defer stopOn()
	cOn, err := Dial(addrOn)
	if err != nil {
		t.Fatal(err)
	}
	defer cOn.Close()
	// Publish a leaf, then evaluate the same expression twice: the
	// second run must be served from the cache.
	for _, stmt := range []string{"x <- 1:300", "y <- sqrt(x * x); print(sum(y))", "y <- sqrt(x * x); print(sum(y))"} {
		if _, err := cOn.Do(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	stats, err := cOn.Do("\\stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "cache_hits=") {
		t.Fatalf("\\stats lacks cache counters: %q", stats)
	}
	var hits, misses int
	for _, f := range strings.Fields(stats) {
		fmt.Sscanf(f, "cache_hits=%d", &hits)
		fmt.Sscanf(f, "cache_misses=%d", &misses)
	}
	if hits == 0 {
		t.Fatalf("replay produced no cache hit: %q", stats)
	}
	out, err = cOn.Do("\\cache")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "entries=") || strings.Contains(out, "entries=0") {
		t.Fatalf("\\cache shows no resident entries after install: %q", out)
	}
	if out, err = cOn.Do("\\cache clear"); err != nil || !strings.Contains(out, "cache cleared") {
		t.Fatalf("\\cache clear = %q, %v", out, err)
	}
	if out, err = cOn.Do("\\cache"); err != nil || !strings.Contains(out, "entries=0") {
		t.Fatalf("\\cache after clear = %q, %v (want entries=0)", out, err)
	}
	if _, err := cOn.Do("\\cache bogus"); err == nil {
		t.Fatal("\\cache bogus should be a usage error")
	}
}

// TestCacheConcurrentClients: several connections replay one workload
// over a shared published array while another republished it; the
// server must stay consistent (every print is a sane value) and the
// cache must register cross-connection hits.
func TestCacheConcurrentClients(t *testing.T) {
	cfg := smallCfg()
	cfg.ResultCache = true
	cfg.MaxSessions = 8
	addr, stop := startServer(t, t.TempDir(), cfg)
	defer stop()

	seed, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Do("shared <- 1:200"); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer c.Close()
			for round := 0; round < 10; round++ {
				out, err := c.Do("z <- shared * 2; print(max(z))")
				if err != nil {
					t.Errorf("client %d round %d: %v", i, round, err)
					return
				}
				if !strings.Contains(out, "400") {
					t.Errorf("client %d round %d: unexpected output %q", i, round, out)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	stats, err := seed.Do("\\stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "cache_hits=") {
		t.Fatalf("\\stats lacks cache counters: %q", stats)
	}
	seed.Close()
}

// TestRingOverProtocol: the semi-ring surface — matmul(ring=) and
// closure(ring=) — passes through the line protocol unchanged, and the
// per-ring kernel work shows up in \stats as flops_by_op entries keyed
// by "op[ring]".
func TestRingOverProtocol(t *testing.T) {
	addr, stop := startServer(t, t.TempDir(), smallCfg())
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A 4-node weighted path graph 1 →2→ 2 →3→ 3 →4→ 4 (column-major).
	if _, err := c.Do("w <- c(0,0,0,0, 2,0,0,0, 0,3,0,0, 0,0,4,0); A <- matrix(w, 4, 4)"); err != nil {
		t.Fatal(err)
	}
	out, err := c.Do(`P <- matmul(A, A, ring="minplus"); print(nnz(P))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 2") { // exactly two 2-hop paths
		t.Fatalf("minplus matmul nnz = %q, want 2", out)
	}
	out, err = c.Do(`C <- closure(sparse(A), ring="minplus"); print(nnz(C))`)
	if err != nil {
		t.Fatal(err)
	}
	// The closure is verbatim: 4 zero diagonal entries out of 16, the
	// rest finite distances or +Inf — all nonzero.
	if !strings.Contains(out, "[1] 12") {
		t.Fatalf("minplus closure nnz = %q, want 12", out)
	}
	if out, err = c.Do(`print(min(C))`); err != nil || !strings.Contains(out, "[1] 0") {
		t.Fatalf("min(closure) = %q, %v; want 0", out, err)
	}

	stats, err := c.Do("\\stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{"matmul[minplus]=", "closure[minplus]="} {
		if !strings.Contains(stats, counter) {
			t.Fatalf("\\stats lacks per-ring counter %s: %q", counter, stats)
		}
	}

	// Unknown rings fail with the known-ring list; the session survives.
	if _, err := c.Do(`matmul(A, A, ring="nope")`); err == nil || !strings.Contains(err.Error(), "minplus") {
		t.Fatalf("unknown ring error = %v, want list of known rings", err)
	}
	if _, err := c.Do("print(nnz(A))"); err != nil {
		t.Fatalf("session dead after ring error: %v", err)
	}
}

// A client that vanishes while queued for admission must release its
// place in line: before NewSessionCancel, its handler goroutine camped
// in NewSession forever and \shutdown could never drain connections —
// this test deadlocked on stop().
func TestVanishedQueuedClientReleasesAdmission(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxSessions = 1
	addr, stop := startServer(t, t.TempDir(), cfg)
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Queue a second client behind MaxSessions=1 and vanish without
	// ever speaking. Its handler is blocked in session admission; the
	// close must abort that wait.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// The handler only notices the peer is gone via its first-byte
	// peek; an abrupt close delivers that immediately.
	raw.Close()

	if _, err := holder.Do("\\quit"); err != nil {
		t.Fatal(err)
	}
	holder.Close()
	done := make(chan struct{})
	go func() {
		stop() // waits for every handler goroutine to exit
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown hung: vanished queued client camped on the session table")
	}
}

// A client that vanishes mid-conversation releases its session quota:
// the next client admits promptly instead of queueing behind a ghost.
func TestVanishMidStatementReleasesQuota(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxSessions = 1
	db, err := riot.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
		db.Close()
	}()
	addr := ln.Addr().String()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Fire a statement and vanish without reading the response.
	if _, err := fmt.Fprintf(cRawConn(c), "x <- 1:100; print(sum(x))\n"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	deadline := time.Now().Add(30 * time.Second)
	for db.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session quota never released: %d active", db.ActiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the slot is genuinely reusable.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatalf("slot not reusable after vanish: %v", err)
	}
	if _, err := c2.Do("print(1+1)"); err != nil {
		t.Fatal(err)
	}
	c2.Close()
}

// cRawConn exposes a client's connection for tests that need to vanish
// uncleanly.
func cRawConn(c *Client) net.Conn { return c.conn }
