package disk

import (
	"testing"
	"testing/quick"
)

func TestAllocReadWrite(t *testing.T) {
	d := NewDevice(4)
	id := d.Alloc("t", 2)
	if id != 0 {
		t.Fatalf("first alloc = %d, want 0", id)
	}
	src := []float64{1, 2, 3, 4}
	if err := d.Write(id, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d]=%v, want %v", i, dst[i], src[i])
		}
	}
}

func TestZeroFillOnFirstRead(t *testing.T) {
	d := NewDevice(3)
	id := d.Alloc("t", 1)
	dst := []float64{9, 9, 9}
	if err := d.Read(id, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d]=%v, want 0", i, v)
		}
	}
}

func TestReadUnallocated(t *testing.T) {
	d := NewDevice(2)
	if err := d.Read(5, make([]float64, 2)); err == nil {
		t.Fatal("expected error reading unallocated block")
	}
}

func TestReadFreed(t *testing.T) {
	d := NewDevice(2)
	id := d.Alloc("a", 1)
	d.Free("a")
	if err := d.Read(id, make([]float64, 2)); err == nil {
		t.Fatal("expected error reading freed block")
	}
	if d.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks=%d, want 0", d.LiveBlocks())
	}
}

func TestBadBufferSize(t *testing.T) {
	d := NewDevice(4)
	id := d.Alloc("t", 1)
	if err := d.Read(id, make([]float64, 3)); err == nil {
		t.Fatal("expected size error on read")
	}
	if err := d.Write(id, make([]float64, 5)); err == nil {
		t.Fatal("expected size error on write")
	}
}

func TestSequentialVsRandomClassification(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 10)
	buf := make([]float64, 2)
	// First access is always random (no predecessor).
	mustRead(t, d, 0, buf)
	mustRead(t, d, 1, buf) // sequential
	mustRead(t, d, 2, buf) // sequential
	mustRead(t, d, 7, buf) // random
	mustRead(t, d, 8, buf) // sequential
	mustRead(t, d, 3, buf) // random
	s := d.Stats()
	if s.SeqReads != 3 || s.RandReads != 3 {
		t.Fatalf("seq=%d rand=%d, want 3/3", s.SeqReads, s.RandReads)
	}
	if s.BlocksRead != 6 {
		t.Fatalf("BlocksRead=%d, want 6", s.BlocksRead)
	}
}

func TestWriteClassification(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 4)
	buf := make([]float64, 2)
	mustWrite(t, d, 0, buf)
	mustWrite(t, d, 1, buf)
	mustWrite(t, d, 3, buf)
	s := d.Stats()
	if s.SeqWrites != 1 || s.RandWrites != 2 {
		t.Fatalf("seqW=%d randW=%d, want 1/2", s.SeqWrites, s.RandWrites)
	}
}

func TestStatsBytesAndReset(t *testing.T) {
	d := NewDevice(1024) // 8 KiB blocks
	d.Alloc("t", 2)
	buf := make([]float64, 1024)
	mustWrite(t, d, 0, buf)
	mustRead(t, d, 0, buf)
	s := d.Stats()
	if s.BytesWritten != 8192 || s.BytesRead != 8192 {
		t.Fatalf("bytes=%d/%d, want 8192/8192", s.BytesRead, s.BytesWritten)
	}
	if got := s.TotalMB(); got != 16384.0/(1<<20) {
		t.Fatalf("TotalMB=%v", got)
	}
	d.ResetStats()
	if d.Stats().TotalBlocks() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestOwnersAccounting(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("a", 3)
	d.Alloc("b", 2)
	d.Alloc("a", 1)
	if got := d.OwnedBlocks("a"); got != 4 {
		t.Fatalf("a owns %d, want 4", got)
	}
	owners := d.Owners()
	if len(owners) != 2 || owners[0] != "a" || owners[1] != "b" {
		t.Fatalf("Owners=%v", owners)
	}
	d.Free("a")
	if got := d.OwnedBlocks("a"); got != 0 {
		t.Fatalf("a owns %d after free, want 0", got)
	}
	if d.LiveBlocks() != 2 {
		t.Fatalf("LiveBlocks=%d, want 2", d.LiveBlocks())
	}
}

func TestAllocContiguous(t *testing.T) {
	d := NewDevice(2)
	first := d.Alloc("t", 5)
	second := d.Alloc("t", 5)
	if second != first+5 {
		t.Fatalf("second extent starts at %d, want %d", second, first+5)
	}
}

func TestCostModelSeconds(t *testing.T) {
	s := Stats{BytesRead: 100 << 20, RandReads: 10}
	c := CostModel{SeqBytesPerSec: 100 << 20, RandSeekSec: 0.01}
	got := c.Seconds(s)
	want := 1.0 + 0.1
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Seconds=%v, want %v", got, want)
	}
}

func TestReadBlocksContiguousRunChargesOneSeek(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 10)
	ids := []BlockID{3, 4, 5, 6}
	dsts := make([][]float64, len(ids))
	for i := range dsts {
		dsts[i] = make([]float64, 2)
	}
	n, err := d.ReadBlocks(ids, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("ReadBlocks completed %d, want 4", n)
	}
	s := d.Stats()
	if s.RandReads != 1 || s.SeqReads != 3 {
		t.Fatalf("seq=%d rand=%d, want 3/1", s.SeqReads, s.RandReads)
	}
	if s.BlocksRead != 4 {
		t.Fatalf("BlocksRead=%d, want 4", s.BlocksRead)
	}
}

func TestWriteBlocksSortedRuns(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 20)
	// Two contiguous runs with a gap: 2 seeks, 4 sequential transfers.
	ids := []BlockID{2, 3, 4, 10, 11, 12}
	srcs := make([][]float64, len(ids))
	for i := range srcs {
		srcs[i] = []float64{float64(i), float64(i)}
	}
	if _, err := d.WriteBlocks(ids, srcs); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandWrites != 2 || s.SeqWrites != 4 {
		t.Fatalf("seqW=%d randW=%d, want 4/2", s.SeqWrites, s.RandWrites)
	}
	// Contents must land block by block.
	dst := make([]float64, 2)
	mustRead(t, d, 11, dst)
	if dst[0] != 4 {
		t.Fatalf("block 11 holds %v, want 4", dst[0])
	}
}

func TestReadBlocksLengthMismatch(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 2)
	if _, err := d.ReadBlocks([]BlockID{0, 1}, [][]float64{make([]float64, 2)}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := d.WriteBlocks([]BlockID{0}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestReadBlocksErrorOnFreed(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("a", 4)
	d.Free("a")
	dsts := [][]float64{make([]float64, 2)}
	if _, err := d.ReadBlocks([]BlockID{1}, dsts); err == nil {
		t.Fatal("expected error reading freed block")
	}
}

// TestReadBlocksPartialCompletion checks the completed-count contract:
// blocks before the failing one are read and charged exactly once, and
// the count tells the caller where the batch stopped.
func TestReadBlocksPartialCompletion(t *testing.T) {
	d := NewDevice(2)
	d.Alloc("t", 3) // blocks 0,1,2 allocated; 3 is not
	ids := []BlockID{0, 1, 2, 3}
	dsts := make([][]float64, len(ids))
	for i := range dsts {
		dsts[i] = make([]float64, 2)
	}
	n, err := d.ReadBlocks(ids, dsts)
	if err == nil {
		t.Fatal("expected error on unallocated tail block")
	}
	if n != 3 {
		t.Fatalf("completed %d blocks, want 3", n)
	}
	if s := d.Stats(); s.BlocksRead != 3 {
		t.Fatalf("BlocksRead=%d, want 3 (prefix charged once)", s.BlocksRead)
	}
}

// Property: data written to a block is read back unchanged, regardless of
// content, and counters line up with the number of operations performed.
func TestRoundTripProperty(t *testing.T) {
	d := NewDevice(8)
	d.Alloc("q", 64)
	n := 0
	f := func(raw [8]float64, blk uint8) bool {
		id := BlockID(blk % 64)
		src := raw[:]
		if err := d.Write(id, src); err != nil {
			return false
		}
		dst := make([]float64, 8)
		if err := d.Read(id, dst); err != nil {
			return false
		}
		n++
		for i := range src {
			// NaN-safe comparison: a NaN must read back as NaN.
			if src[i] != dst[i] && (src[i] == src[i] || dst[i] == dst[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.BlocksRead != int64(n) || s.BlocksWritten != int64(n) {
		t.Fatalf("counters %d/%d after %d ops", s.BlocksRead, s.BlocksWritten, n)
	}
}

func mustRead(t *testing.T, d *Device, id BlockID, buf []float64) {
	t.Helper()
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
}

func mustWrite(t *testing.T, d *Device, id BlockID, buf []float64) {
	t.Helper()
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
}
