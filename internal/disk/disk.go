// Package disk provides a simulated block device with detailed I/O
// accounting. Every persistent byte in RIOT — relational heap files,
// B+tree pages, and array tiles — bottoms out here, so all engines are
// measured with the same ruler.
//
// The device stores blocks in memory but charges for them as if they
// lived on a 2009-era disk: a block read or write is classified as
// sequential when it targets the block immediately following the previous
// access, and random otherwise. The distinction matters because the
// paper's Figure 1 discussion hinges on it: MySQL-managed I/O is "mostly
// bulky and sequential", while R's virtual-memory paging is random.
package disk

import (
	"fmt"
	"sort"
	"sync"
)

// ElemSize is the size in bytes of one scalar number (float64).
const ElemSize = 8

// BlockID identifies a block on a device. Blocks are allocated densely
// starting from zero and never freed individually (extents are).
type BlockID int64

// Stats accumulates I/O counters for a device. All counts are in blocks
// unless the field name says otherwise.
type Stats struct {
	BlocksRead        int64 // total block reads
	BlocksWritten     int64 // total block writes
	SeqReads          int64 // reads at prevBlock+1
	RandReads         int64 // reads anywhere else
	SeqWrites         int64 // writes at prevBlock+1
	RandWrites        int64 // writes anywhere else
	BytesRead         int64
	BytesWritten      int64
	AllocatedBlocks   int64 // high-water mark of allocation
	allocatedByOwner  map[string]int64
	transferredByFile map[string]int64
}

// TotalBlocks returns reads plus writes.
func (s Stats) TotalBlocks() int64 { return s.BlocksRead + s.BlocksWritten }

// TotalBytes returns bytes read plus bytes written.
func (s Stats) TotalBytes() int64 { return s.BytesRead + s.BytesWritten }

// TotalMB returns total traffic in mebibytes.
func (s Stats) TotalMB() float64 { return float64(s.TotalBytes()) / (1 << 20) }

// String renders the counters in a compact single line.
func (s Stats) String() string {
	return fmt.Sprintf("read=%d (seq=%d rand=%d) written=%d (seq=%d rand=%d) total=%.1fMB",
		s.BlocksRead, s.SeqReads, s.RandReads,
		s.BlocksWritten, s.SeqWrites, s.RandWrites, s.TotalMB())
}

// CostModel converts counted I/O events into simulated seconds. The
// defaults approximate a 2009 commodity SATA disk: ~100 MB/s sequential
// transfer and ~8 ms per random positioning.
type CostModel struct {
	SeqBytesPerSec float64 // sequential transfer rate
	RandSeekSec    float64 // cost of one random positioning
}

// DefaultCostModel is the disk timing used for simulated wall-clock.
var DefaultCostModel = CostModel{
	SeqBytesPerSec: 100 << 20,
	RandSeekSec:    0.008,
}

// Seconds returns the simulated time to perform the I/O recorded in s,
// given the device block size in bytes.
func (c CostModel) Seconds(s Stats, blockBytes int) float64 {
	transfer := float64(s.TotalBytes()) / c.SeqBytesPerSec
	seeks := float64(s.RandReads+s.RandWrites) * c.RandSeekSec
	return transfer + seeks
}

// Device is a simulated block device. It is safe for concurrent use.
type Device struct {
	mu         sync.Mutex
	blockElems int // block size in float64 elements
	blocks     map[BlockID][]float64
	next       BlockID
	prevAccess BlockID // last block touched, for seq/random classification
	hasPrev    bool
	stats      Stats
	owners     map[string]*extentSet
}

type extentSet struct {
	blocks []BlockID
}

// NewDevice creates a device whose blocks hold blockElems float64 values
// each (the paper's parameter B). blockElems must be positive.
func NewDevice(blockElems int) *Device {
	if blockElems <= 0 {
		panic("disk: block size must be positive")
	}
	return &Device{
		blockElems: blockElems,
		blocks:     make(map[BlockID][]float64),
		owners:     make(map[string]*extentSet),
	}
}

// BlockElems returns the block size in elements.
func (d *Device) BlockElems() int { return d.blockElems }

// BlockBytes returns the block size in bytes.
func (d *Device) BlockBytes() int { return d.blockElems * ElemSize }

// Alloc reserves n fresh blocks for the named owner and returns the ID of
// the first; the blocks are contiguous. Owner names are used only for
// accounting and extent release.
func (d *Device) Alloc(owner string, n int) BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.next
	es := d.owners[owner]
	if es == nil {
		es = &extentSet{}
		d.owners[owner] = es
	}
	for i := 0; i < n; i++ {
		id := d.next
		d.next++
		d.blocks[id] = nil // lazily materialized on first write
		es.blocks = append(es.blocks, id)
	}
	if int64(d.next) > d.stats.AllocatedBlocks {
		d.stats.AllocatedBlocks = int64(d.next)
	}
	return first
}

// Free releases every block owned by owner. Reading a freed block is an
// error; block IDs are never reused.
func (d *Device) Free(owner string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	es := d.owners[owner]
	if es == nil {
		return
	}
	for _, id := range es.blocks {
		delete(d.blocks, id)
	}
	delete(d.owners, owner)
}

// Read copies block id into dst (which must have length BlockElems) and
// charges one block read. Never-written blocks read as zeros.
func (d *Device) Read(id BlockID, dst []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok {
		if id < 0 || id >= d.next {
			return fmt.Errorf("disk: read of unallocated block %d", id)
		}
		return fmt.Errorf("disk: read of freed block %d", id)
	}
	if len(dst) != d.blockElems {
		return fmt.Errorf("disk: read buffer has %d elems, want %d", len(dst), d.blockElems)
	}
	if b == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, b)
	}
	d.charge(id, false)
	return nil
}

// Write copies src (length BlockElems) into block id and charges one
// block write.
func (d *Device) Write(id BlockID, src []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.blocks[id]; !ok {
		if id < 0 || id >= d.next {
			return fmt.Errorf("disk: write of unallocated block %d", id)
		}
		return fmt.Errorf("disk: write of freed block %d", id)
	}
	if len(src) != d.blockElems {
		return fmt.Errorf("disk: write buffer has %d elems, want %d", len(src), d.blockElems)
	}
	b := d.blocks[id]
	if b == nil {
		b = make([]float64, d.blockElems)
		d.blocks[id] = b
	}
	copy(b, src)
	d.charge(id, true)
	return nil
}

// charge records one access to id. Callers hold d.mu.
func (d *Device) charge(id BlockID, write bool) {
	seq := d.hasPrev && id == d.prevAccess+1
	d.prevAccess = id
	d.hasPrev = true
	bytes := int64(d.BlockBytes())
	if write {
		d.stats.BlocksWritten++
		d.stats.BytesWritten += bytes
		if seq {
			d.stats.SeqWrites++
		} else {
			d.stats.RandWrites++
		}
	} else {
		d.stats.BlocksRead++
		d.stats.BytesRead += bytes
		if seq {
			d.stats.SeqReads++
		} else {
			d.stats.RandReads++
		}
	}
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (allocation high-water mark included).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.hasPrev = false
}

// Owners returns the owner names with live extents, sorted.
func (d *Device) Owners() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.owners))
	for n := range d.owners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OwnedBlocks returns how many blocks the named owner currently holds.
func (d *Device) OwnedBlocks(owner string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	es := d.owners[owner]
	if es == nil {
		return 0
	}
	return len(es.blocks)
}

// LiveBlocks returns the number of currently allocated (un-freed) blocks.
func (d *Device) LiveBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}
