// Package disk provides a simulated block device with detailed I/O
// accounting. Every persistent byte in RIOT — relational heap files,
// B+tree pages, and array tiles — bottoms out here, so all engines are
// measured with the same ruler.
//
// The device stores blocks in memory but charges for them as if they
// lived on a 2009-era disk: a block read or write is classified as
// sequential when it targets the block immediately following the previous
// access, and random otherwise. The distinction matters because the
// paper's Figure 1 discussion hinges on it: MySQL-managed I/O is "mostly
// bulky and sequential", while R's virtual-memory paging is random.
package disk

import (
	"fmt"
	"sort"
	"sync"
)

// ElemSize is the size in bytes of one scalar number (float64).
const ElemSize = 8

// BlockID identifies a block on a device. Blocks are allocated densely
// starting from zero and never freed individually (extents are).
type BlockID int64

// Stats accumulates I/O counters for a device. All counts are in blocks
// unless the field name says otherwise.
type Stats struct {
	BlocksRead        int64 // total block reads
	BlocksWritten     int64 // total block writes
	SeqReads          int64 // reads at prevBlock+1
	RandReads         int64 // reads anywhere else
	SeqWrites         int64 // writes at prevBlock+1
	RandWrites        int64 // writes anywhere else
	BytesRead         int64
	BytesWritten      int64
	AllocatedBlocks   int64 // high-water mark of allocation
	allocatedByOwner  map[string]int64
	transferredByFile map[string]int64
}

// TotalBlocks returns reads plus writes.
func (s Stats) TotalBlocks() int64 { return s.BlocksRead + s.BlocksWritten }

// TotalBytes returns bytes read plus bytes written.
func (s Stats) TotalBytes() int64 { return s.BytesRead + s.BytesWritten }

// TotalMB returns total traffic in mebibytes.
func (s Stats) TotalMB() float64 { return float64(s.TotalBytes()) / (1 << 20) }

// String renders the counters in a compact single line.
func (s Stats) String() string {
	return fmt.Sprintf("read=%d (seq=%d rand=%d) written=%d (seq=%d rand=%d) total=%.1fMB",
		s.BlocksRead, s.SeqReads, s.RandReads,
		s.BlocksWritten, s.SeqWrites, s.RandWrites, s.TotalMB())
}

// CostModel converts counted I/O events into simulated seconds. The
// defaults approximate a 2009 commodity SATA disk: ~100 MB/s sequential
// transfer and ~8 ms per random positioning.
type CostModel struct {
	SeqBytesPerSec float64 // sequential transfer rate
	RandSeekSec    float64 // cost of one random positioning
}

// DefaultCostModel is the disk timing used for simulated wall-clock.
var DefaultCostModel = CostModel{
	SeqBytesPerSec: 100 << 20,
	RandSeekSec:    0.008,
}

// Seconds returns the simulated time to perform the I/O recorded in s:
// every byte moves at the sequential transfer rate, and every random
// access additionally pays one positioning. Block size does not appear
// because Stats already counts bytes.
func (c CostModel) Seconds(s Stats) float64 {
	transfer := float64(s.TotalBytes()) / c.SeqBytesPerSec
	seeks := float64(s.RandReads+s.RandWrites) * c.RandSeekSec
	return transfer + seeks
}

// Device is a simulated block device. It is safe for concurrent use.
type Device struct {
	mu         sync.Mutex
	blockElems int // block size in float64 elements
	blocks     map[BlockID][]float64
	next       BlockID
	prevAccess BlockID // last block touched, for seq/random classification
	hasPrev    bool
	stats      Stats
	owners     map[string]*extentSet
}

type extentSet struct {
	blocks []BlockID
}

// NewDevice creates a device whose blocks hold blockElems float64 values
// each (the paper's parameter B). blockElems must be positive.
func NewDevice(blockElems int) *Device {
	if blockElems <= 0 {
		panic("disk: block size must be positive")
	}
	return &Device{
		blockElems: blockElems,
		blocks:     make(map[BlockID][]float64),
		owners:     make(map[string]*extentSet),
	}
}

// BlockElems returns the block size in elements.
func (d *Device) BlockElems() int { return d.blockElems }

// BlockBytes returns the block size in bytes.
func (d *Device) BlockBytes() int { return d.blockElems * ElemSize }

// Alloc reserves n fresh blocks for the named owner and returns the ID of
// the first; the blocks are contiguous. Owner names are used only for
// accounting and extent release.
func (d *Device) Alloc(owner string, n int) BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.next
	es := d.owners[owner]
	if es == nil {
		es = &extentSet{}
		d.owners[owner] = es
	}
	for i := 0; i < n; i++ {
		id := d.next
		d.next++
		d.blocks[id] = nil // lazily materialized on first write
		es.blocks = append(es.blocks, id)
	}
	if int64(d.next) > d.stats.AllocatedBlocks {
		d.stats.AllocatedBlocks = int64(d.next)
	}
	return first
}

// Free releases every block owned by owner. Reading a freed block is an
// error; block IDs are never reused.
func (d *Device) Free(owner string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	es := d.owners[owner]
	if es == nil {
		return
	}
	for _, id := range es.blocks {
		delete(d.blocks, id)
	}
	delete(d.owners, owner)
}

// Read copies block id into dst (which must have length BlockElems) and
// charges one block read. Never-written blocks read as zeros.
func (d *Device) Read(id BlockID, dst []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readLocked(id, dst)
}

func (d *Device) readLocked(id BlockID, dst []float64) error {
	b, ok := d.blocks[id]
	if !ok {
		if id < 0 || id >= d.next {
			return fmt.Errorf("disk: read of unallocated block %d", id)
		}
		return fmt.Errorf("disk: read of freed block %d", id)
	}
	if len(dst) != d.blockElems {
		return fmt.Errorf("disk: read buffer has %d elems, want %d", len(dst), d.blockElems)
	}
	if b == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, b)
	}
	d.charge(id, false)
	return nil
}

// Write copies src (length BlockElems) into block id and charges one
// block write.
func (d *Device) Write(id BlockID, src []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeLocked(id, src)
}

func (d *Device) writeLocked(id BlockID, src []float64) error {
	if _, ok := d.blocks[id]; !ok {
		if id < 0 || id >= d.next {
			return fmt.Errorf("disk: write of unallocated block %d", id)
		}
		return fmt.Errorf("disk: write of freed block %d", id)
	}
	if len(src) != d.blockElems {
		return fmt.Errorf("disk: write buffer has %d elems, want %d", len(src), d.blockElems)
	}
	b := d.blocks[id]
	if b == nil {
		b = make([]float64, d.blockElems)
		d.blocks[id] = b
	}
	copy(b, src)
	d.charge(id, true)
	return nil
}

// ReadBlocks reads ids[k] into dsts[k] for every k as one vectored
// request: the whole batch is classified under a single lock hold, so a
// contiguous ascending run of IDs is charged one seek plus sequential
// transfers for the rest, no matter how many other goroutines are
// hammering the device in between. This is what turns a scheduler's
// batched readahead into the "bulky and sequential" I/O the paper wants.
// It returns how many blocks completed: on error the first n blocks
// have been read and charged, and callers must not re-issue them (the
// device's entire output is its accounting).
func (d *Device) ReadBlocks(ids []BlockID, dsts [][]float64) (int, error) {
	if len(ids) != len(dsts) {
		return 0, fmt.Errorf("disk: ReadBlocks with %d ids but %d buffers", len(ids), len(dsts))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, id := range ids {
		if err := d.readLocked(id, dsts[k]); err != nil {
			return k, err
		}
	}
	return len(ids), nil
}

// WriteBlocks writes srcs[k] to ids[k] for every k as one vectored
// request, with the same single-lock-hold classification as ReadBlocks:
// callers that sort a dirty batch by BlockID (elevator write-back) are
// charged one seek per contiguous run instead of one per block. It
// returns how many blocks completed: on error the first n blocks have
// been written and charged, and callers should treat them as clean.
func (d *Device) WriteBlocks(ids []BlockID, srcs [][]float64) (int, error) {
	if len(ids) != len(srcs) {
		return 0, fmt.Errorf("disk: WriteBlocks with %d ids but %d buffers", len(ids), len(srcs))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, id := range ids {
		if err := d.writeLocked(id, srcs[k]); err != nil {
			return k, err
		}
	}
	return len(ids), nil
}

// charge records one access to id. Callers hold d.mu.
func (d *Device) charge(id BlockID, write bool) {
	seq := d.hasPrev && id == d.prevAccess+1
	d.prevAccess = id
	d.hasPrev = true
	bytes := int64(d.BlockBytes())
	if write {
		d.stats.BlocksWritten++
		d.stats.BytesWritten += bytes
		if seq {
			d.stats.SeqWrites++
		} else {
			d.stats.RandWrites++
		}
	} else {
		d.stats.BlocksRead++
		d.stats.BytesRead += bytes
		if seq {
			d.stats.SeqReads++
		} else {
			d.stats.RandReads++
		}
	}
}

// Export copies block id into dst without charging any I/O. It is the
// checkpoint path: the catalog serializes array blocks to the host
// filesystem, which is a different device from the simulated disk the
// paper's experiments measure, so the copy must not perturb the
// counters or the sequential/random classifier. Never-written blocks
// export as zeros.
func (d *Device) Export(id BlockID, dst []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok {
		return fmt.Errorf("disk: export of unallocated or freed block %d", id)
	}
	if len(dst) != d.blockElems {
		return fmt.Errorf("disk: export buffer has %d elems, want %d", len(dst), d.blockElems)
	}
	if b == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, b)
	}
	return nil
}

// Import copies src into block id without charging any I/O: the restore
// half of Export, used when riot.Open replays a persisted catalog into a
// fresh device before any session has run (restored state is the
// starting condition of a measurement, not part of it).
func (d *Device) Import(id BlockID, src []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.blocks[id]; !ok {
		return fmt.Errorf("disk: import into unallocated or freed block %d", id)
	}
	if len(src) != d.blockElems {
		return fmt.Errorf("disk: import buffer has %d elems, want %d", len(src), d.blockElems)
	}
	b := d.blocks[id]
	if b == nil {
		b = make([]float64, d.blockElems)
		d.blocks[id] = b
	}
	copy(b, src)
	return nil
}

// OwnerExtents returns a copy of the block IDs the named owner holds, in
// allocation order. Session teardown walks it to invalidate resident
// frames before freeing the extent.
func (d *Device) OwnerExtents(owner string) []BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	es := d.owners[owner]
	if es == nil {
		return nil
	}
	out := make([]BlockID, len(es.blocks))
	copy(out, es.blocks)
	return out
}

// Readable reports whether id is currently allocated (and not freed),
// i.e. whether a Read of it would succeed. Prefetchers use it to avoid
// charging doomed reads past the end of an extent.
func (d *Device) Readable(id BlockID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[id]
	return ok
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters (allocation high-water mark included).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.hasPrev = false
}

// Owners returns the owner names with live extents, sorted.
func (d *Device) Owners() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.owners))
	for n := range d.owners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OwnedBlocks returns how many blocks the named owner currently holds.
func (d *Device) OwnedBlocks(owner string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	es := d.owners[owner]
	if es == nil {
		return 0
	}
	return len(es.blocks)
}

// LiveBlocks returns the number of currently allocated (un-freed) blocks.
func (d *Device) LiveBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}
