package buffer

import (
	"sync"
	"testing"

	"riot/internal/disk"
)

func newRAPool(t *testing.T, blockElems, frames, blocks int, cfg ReadaheadConfig) (*Pool, *disk.Device) {
	t.Helper()
	dev := disk.NewDevice(blockElems)
	dev.Alloc("test", blocks)
	p := New(dev, frames)
	cfg.Enabled = true
	p.SetReadahead(cfg)
	return p, dev
}

func TestPrefetchLoadsAndHits(t *testing.T) {
	p, dev := newRAPool(t, 4, 8, 16, ReadaheadConfig{})
	for i := 0; i < 16; i++ {
		if err := dev.Write(disk.BlockID(i), []float64{float64(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	dev.ResetStats()
	p.Prefetch([]disk.BlockID{3, 4, 5})
	p.DrainPrefetch()
	st := p.Stats()
	if st.Prefetched != 3 {
		t.Fatalf("Prefetched=%d, want 3", st.Prefetched)
	}
	// The contiguous run must have been read vectored: one seek, two
	// sequential transfers.
	ds := dev.Stats()
	if ds.RandReads != 1 || ds.SeqReads != 2 {
		t.Fatalf("device seq=%d rand=%d, want 2/1", ds.SeqReads, ds.RandReads)
	}
	for _, id := range []disk.BlockID{3, 4, 5} {
		f, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != float64(id) {
			t.Fatalf("block %d holds %v, want %d", id, f.Data[0], id)
		}
		p.Unpin(f)
	}
	st = p.Stats()
	if st.PrefetchHits != 3 {
		t.Fatalf("PrefetchHits=%d, want 3", st.PrefetchHits)
	}
	if st.Misses != 0 {
		t.Fatalf("Misses=%d, want 0 (all pins served from prefetch)", st.Misses)
	}
	if ds := dev.Stats(); ds.BlocksRead != 3 {
		t.Fatalf("device reads=%d, want 3 (pins must not re-read)", ds.BlocksRead)
	}
}

func TestPrefetchDisabledIsNoop(t *testing.T) {
	p, dev := newPool(t, 4, 4, 8)
	p.Prefetch([]disk.BlockID{0, 1, 2})
	p.DrainPrefetch()
	if st := p.Stats(); st.Prefetched != 0 {
		t.Fatalf("Prefetched=%d with scheduler off, want 0", st.Prefetched)
	}
	if ds := dev.Stats(); ds.BlocksRead != 0 {
		t.Fatalf("device reads=%d with scheduler off, want 0", ds.BlocksRead)
	}
}

func TestAutoReadaheadSequentialScan(t *testing.T) {
	const blocks = 64
	p, dev := newRAPool(t, 4, 16, blocks, ReadaheadConfig{MinWindow: 2, MaxWindow: 8})
	dev.ResetStats()
	for i := 0; i < blocks; i++ {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
		// Drain each step so the scan deterministically consumes what the
		// detector scheduled.
		p.DrainPrefetch()
	}
	st := p.Stats()
	if st.Prefetched == 0 {
		t.Fatal("sequential scan triggered no readahead")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("sequential scan consumed no prefetched frames")
	}
	// Almost all device reads should be sequential: the scan itself is
	// in order and readahead batches extend it.
	ds := dev.Stats()
	if ds.RandReads > 3 {
		t.Fatalf("RandReads=%d on a pure sequential scan with readahead, want <= 3 (seq=%d)",
			ds.RandReads, ds.SeqReads)
	}
}

func TestAutoReadaheadResetsOnRandomAccess(t *testing.T) {
	p, _ := newRAPool(t, 4, 16, 64, ReadaheadConfig{MinWindow: 2, MaxWindow: 8})
	// Random-looking access pattern: no two consecutive IDs.
	for _, id := range []disk.BlockID{0, 7, 2, 9, 4, 11} {
		f, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	p.DrainPrefetch()
	if st := p.Stats(); st.Prefetched != 0 {
		t.Fatalf("Prefetched=%d on a random pattern, want 0", st.Prefetched)
	}
}

func TestPrefetchRespectsBudgetWhenAllPinned(t *testing.T) {
	p, _ := newRAPool(t, 4, 4, 16, ReadaheadConfig{})
	var pinned []*Frame
	// Stride-2 pins: no consecutive IDs, so the automatic detector stays
	// quiet and only the explicit hint below could prefetch.
	for i := 0; i < 8; i += 2 {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, f)
	}
	p.Prefetch([]disk.BlockID{8, 9, 10, 11})
	p.DrainPrefetch()
	if got := p.Resident(); got > 4 {
		t.Fatalf("resident=%d frames exceeds capacity 4", got)
	}
	if st := p.Stats(); st.Prefetched != 0 {
		t.Fatalf("Prefetched=%d with every frame pinned, want 0 (hint dropped)", st.Prefetched)
	}
	for _, f := range pinned {
		p.Unpin(f)
	}
}

// TestPinDrainsInflightPrefetchForBudget pins the whole budget while a
// prefetch is in flight: the Pin must wait out the prefetch (whose
// frames are evictable once landed) rather than fail over budget.
func TestPinDrainsInflightPrefetchForBudget(t *testing.T) {
	p, _ := newRAPool(t, 4, 4, 16, ReadaheadConfig{})
	p.Prefetch([]disk.BlockID{8, 9, 10, 11})
	var pinned []*Frame
	for i := 0; i < 4; i++ {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatalf("pin %d: %v (prefetch must never steal the budget)", i, err)
		}
		pinned = append(pinned, f)
	}
	for _, f := range pinned {
		p.Unpin(f)
	}
}

func TestWastedPrefetchCountedOnEviction(t *testing.T) {
	p, _ := newRAPool(t, 4, 8, 32, ReadaheadConfig{})
	p.Prefetch([]disk.BlockID{16, 17, 18, 19})
	p.DrainPrefetch()
	if st := p.Stats(); st.Prefetched != 4 {
		t.Fatalf("Prefetched=%d, want 4", st.Prefetched)
	}
	// Fill the pool with other blocks (stride 2, so the automatic
	// detector adds no prefetches of its own): every prefetched frame is
	// evicted unused.
	for i := 0; i < 16; i += 2 {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	st := p.Stats()
	if st.WastedPrefetch != 4 {
		t.Fatalf("WastedPrefetch=%d, want 4", st.WastedPrefetch)
	}
	if st.PrefetchHits != 0 {
		t.Fatalf("PrefetchHits=%d, want 0", st.PrefetchHits)
	}
}

func TestElevatorWriteBack(t *testing.T) {
	p, dev := newRAPool(t, 4, 8, 32, ReadaheadConfig{FlushBatch: 8})
	// Dirty the first 8 blocks in a scrambled order, then force evictions:
	// the elevator must write them sorted, i.e. mostly sequentially.
	for _, id := range []disk.BlockID{5, 1, 7, 3, 0, 6, 2, 4} {
		f, err := p.PinNew(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			f.Data[i] = float64(id)
		}
		f.MarkDirty()
		p.Unpin(f)
	}
	dev.ResetStats()
	// One miss evicts one frame; its dirty flush takes the whole batch.
	f, err := p.Pin(16)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	ds := dev.Stats()
	if ds.BlocksWritten != 8 {
		t.Fatalf("BlocksWritten=%d, want 8 (one elevator batch)", ds.BlocksWritten)
	}
	// The victim (block 5, the LRU-oldest) goes first; the elevator then
	// sweeps ascending from it and wraps: 5,6,7,0,1,2,3,4 — one seek for
	// the start, one for the wrap.
	if ds.SeqWrites != 6 || ds.RandWrites != 2 {
		t.Fatalf("seqW=%d randW=%d, want 6/2 (sorted batch with one wrap)", ds.SeqWrites, ds.RandWrites)
	}
	if st := p.Stats(); st.Flushes != 8 {
		t.Fatalf("Flushes=%d, want 8", st.Flushes)
	}
	// Contents must be intact on the device.
	buf := make([]float64, 4)
	for id := disk.BlockID(0); id < 8; id++ {
		if err := dev.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != float64(id) {
			t.Fatalf("block %d holds %v after elevator flush, want %d", id, buf[0], id)
		}
	}
}

// TestInvalidateRacesInflightPrefetch frees extents while prefetches of
// the same blocks are in flight. Run under -race; the pool must neither
// panic nor leak budget.
func TestInvalidateRacesInflightPrefetch(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		dev := disk.NewDevice(4)
		dev.Alloc("v", 32)
		p := New(dev, 16)
		p.SetReadahead(ReadaheadConfig{Enabled: true})
		ids := make([]disk.BlockID, 32)
		for i := range ids {
			ids[i] = disk.BlockID(i)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p.Prefetch(ids[:16])
			p.Prefetch(ids[16:])
		}()
		go func() {
			defer wg.Done()
			for _, id := range ids {
				p.Invalidate(id)
			}
		}()
		wg.Wait()
		p.DrainPrefetch()
		for _, id := range ids {
			p.Invalidate(id)
		}
		if got := p.Resident(); got != 0 {
			t.Fatalf("iter %d: resident=%d after invalidating everything, want 0", iter, got)
		}
	}
}

// TestDropAllRacesInflightPrefetch calls DropAll concurrently with
// prefetch batches; DropAll drains them and must leave an empty pool.
func TestDropAllRacesInflightPrefetch(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		dev := disk.NewDevice(4)
		dev.Alloc("v", 64)
		p := New(dev, 16)
		p.SetReadahead(ReadaheadConfig{Enabled: true})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 4; b++ {
				ids := make([]disk.BlockID, 8)
				for i := range ids {
					ids[i] = disk.BlockID(b*8 + i)
				}
				p.Prefetch(ids)
			}
		}()
		if err := p.DropAll(); err != nil {
			t.Fatalf("iter %d: DropAll: %v", iter, err)
		}
		wg.Wait()
		if err := p.DropAll(); err != nil {
			t.Fatalf("iter %d: final DropAll: %v", iter, err)
		}
		if got := p.Resident(); got != 0 {
			t.Fatalf("iter %d: resident=%d after DropAll, want 0", iter, got)
		}
	}
}

// TestConcurrentScanWithReadahead is the race stress for the full
// scheduler: several goroutines scan overlapping ranges while readahead
// fires, then the pool drains clean.
func TestConcurrentScanWithReadahead(t *testing.T) {
	dev := disk.NewDevice(8)
	dev.Alloc("v", 256)
	p := NewSharded(dev, 32, 4)
	p.SetReadahead(ReadaheadConfig{Enabled: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				f, err := p.Pin(disk.BlockID(i))
				if err != nil {
					t.Error(err)
					return
				}
				p.Unpin(f)
			}
		}(g)
	}
	wg.Wait()
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.Resident(); got != 0 {
		t.Fatalf("resident=%d after DropAll, want 0", got)
	}
}
