package buffer

import (
	"testing"

	"riot/internal/disk"
)

func newPool(t *testing.T, blockElems, frames, blocks int) (*Pool, *disk.Device) {
	t.Helper()
	dev := disk.NewDevice(blockElems)
	dev.Alloc("test", blocks)
	return New(dev, frames), dev
}

func TestPinReadsThrough(t *testing.T) {
	p, dev := newPool(t, 4, 2, 4)
	if err := dev.Write(1, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	f, err := p.Pin(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[2] != 3 {
		t.Fatalf("Data[2]=%v, want 3", f.Data[2])
	}
	p.Unpin(f)
	if got := dev.Stats().BlocksRead; got != 1 {
		t.Fatalf("device reads=%d, want 1", got)
	}
}

func TestHitAvoidsIO(t *testing.T) {
	p, dev := newPool(t, 4, 2, 4)
	f, _ := p.Pin(0)
	p.Unpin(f)
	dev.ResetStats()
	f2, _ := p.Pin(0)
	p.Unpin(f2)
	if got := dev.Stats().BlocksRead; got != 0 {
		t.Fatalf("device reads=%d on hit, want 0", got)
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p, _ := newPool(t, 2, 2, 4)
	a, _ := p.Pin(0)
	p.Unpin(a)
	b, _ := p.Pin(1)
	p.Unpin(b)
	// Touch 0 again so 1 becomes LRU.
	a2, _ := p.Pin(0)
	p.Unpin(a2)
	c, _ := p.Pin(2) // must evict block 1
	p.Unpin(c)
	if _, ok := p.shardOf(1).frames[1]; ok {
		t.Fatal("block 1 should have been evicted")
	}
	if _, ok := p.shardOf(0).frames[0]; !ok {
		t.Fatal("block 0 should still be resident")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", p.Stats().Evictions)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	p, dev := newPool(t, 2, 1, 3)
	f, _ := p.Pin(0)
	f.Data[0] = 42
	f.MarkDirty()
	p.Unpin(f)
	g, _ := p.Pin(1) // evicts 0, flushing it
	p.Unpin(g)
	buf := make([]float64, 2)
	if err := dev.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("flushed value=%v, want 42", buf[0])
	}
	if p.Stats().Flushes != 1 {
		t.Fatalf("flushes=%d, want 1", p.Stats().Flushes)
	}
}

func TestCleanEvictionNoWrite(t *testing.T) {
	p, dev := newPool(t, 2, 1, 3)
	f, _ := p.Pin(0)
	p.Unpin(f)
	dev.ResetStats()
	g, _ := p.Pin(1)
	p.Unpin(g)
	if w := dev.Stats().BlocksWritten; w != 0 {
		t.Fatalf("clean eviction wrote %d blocks", w)
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2, 2, 4)
	a, _ := p.Pin(0)
	b, _ := p.Pin(1)
	if _, err := p.Pin(2); err == nil {
		t.Fatal("expected over-budget error with all frames pinned")
	}
	p.Unpin(a)
	c, err := p.Pin(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(b)
	p.Unpin(c)
}

func TestPinNewSkipsRead(t *testing.T) {
	p, dev := newPool(t, 2, 2, 4)
	dev.ResetStats()
	f, err := p.PinNew(3)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 7
	f.MarkDirty()
	p.Unpin(f)
	if r := dev.Stats().BlocksRead; r != 0 {
		t.Fatalf("PinNew read %d blocks, want 0", r)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if err := dev.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatalf("flushed=%v, want 7", buf[0])
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	p, _ := newPool(t, 2, 3, 32)
	for i := 0; i < 32; i++ {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
		if p.Resident() > 3 {
			t.Fatalf("resident=%d exceeds capacity 3", p.Resident())
		}
	}
}

func TestMultiplePins(t *testing.T) {
	p, _ := newPool(t, 2, 2, 4)
	a, _ := p.Pin(0)
	b, _ := p.Pin(0)
	if a != b {
		t.Fatal("same block pinned twice should share a frame")
	}
	p.Unpin(a)
	if p.Pinned() != 1 {
		t.Fatalf("pinned=%d, want 1 after one unpin", p.Pinned())
	}
	p.Unpin(b)
	if p.Pinned() != 0 {
		t.Fatalf("pinned=%d, want 0", p.Pinned())
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	p, _ := newPool(t, 2, 2, 4)
	f, _ := p.Pin(0)
	p.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double unpin")
		}
	}()
	p.Unpin(f)
}

func TestDropAllFlushes(t *testing.T) {
	p, dev := newPool(t, 2, 4, 4)
	f, _ := p.Pin(0)
	f.Data[1] = 9
	f.MarkDirty()
	p.Unpin(f)
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Fatalf("resident=%d after DropAll", p.Resident())
	}
	buf := make([]float64, 2)
	if err := dev.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[1] != 9 {
		t.Fatalf("flushed=%v, want 9", buf[1])
	}
}

func TestDropAllWithPinnedFails(t *testing.T) {
	p, _ := newPool(t, 2, 2, 4)
	f, _ := p.Pin(0)
	if err := p.DropAll(); err == nil {
		t.Fatal("expected error")
	}
	p.Unpin(f)
}

func TestInvalidateDiscardsDirtyData(t *testing.T) {
	p, dev := newPool(t, 2, 2, 4)
	f, _ := p.Pin(2)
	f.Data[0] = 5
	f.MarkDirty()
	p.Unpin(f)
	p.Invalidate(2)
	buf := make([]float64, 2)
	if err := dev.Read(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatalf("invalidated frame leaked write: %v", buf[0])
	}
}

func TestNewWithMemory(t *testing.T) {
	dev := disk.NewDevice(1024)
	p := NewWithMemory(dev, 1<<20) // 1M elements
	if got := p.Capacity(); got != 1024 {
		t.Fatalf("capacity=%d, want 1024", got)
	}
	if got := p.MemoryElems(); got != 1<<20 {
		t.Fatalf("MemoryElems=%d, want %d", got, 1<<20)
	}
	tiny := NewWithMemory(dev, 100) // under 3 frames -> clamp
	if tiny.Capacity() != 3 {
		t.Fatalf("tiny capacity=%d, want 3", tiny.Capacity())
	}
}

// Pool contents must survive arbitrary interleavings of pin/unpin/evict:
// whatever was last written to a block through a dirty frame is what a
// later pin observes, even after eviction cycles through a tiny pool.
func TestWriteReadConsistencyUnderEviction(t *testing.T) {
	p, _ := newPool(t, 2, 3, 16)
	want := make(map[disk.BlockID]float64)
	seq := []struct {
		id disk.BlockID
		v  float64
	}{
		{0, 1}, {5, 2}, {9, 3}, {0, 4}, {12, 5}, {5, 6}, {7, 7}, {9, 8},
		{15, 9}, {0, 10}, {3, 11}, {5, 12},
	}
	for _, op := range seq {
		f, err := p.Pin(op.id)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := want[op.id]; ok && f.Data[0] != prev {
			t.Fatalf("block %d read %v, want %v", op.id, f.Data[0], prev)
		}
		f.Data[0] = op.v
		f.MarkDirty()
		want[op.id] = op.v
		p.Unpin(f)
	}
	for id, v := range want {
		f, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != v {
			t.Fatalf("final: block %d = %v, want %v", id, f.Data[0], v)
		}
		p.Unpin(f)
	}
}
