package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"riot/internal/disk"
)

// TestShardRoundingAndClamping checks the shard-count normalization.
func TestShardRoundingAndClamping(t *testing.T) {
	dev := disk.NewDevice(4)
	cases := []struct {
		capacity, shards, want int
	}{
		{16, 1, 1},
		{16, 3, 4}, // rounded up to a power of two
		{16, 4, 4},
		{2, 8, 2}, // clamped to capacity
		{1024, 1 << 20, maxShards},
		{16, 0, 1},
	}
	for _, c := range cases {
		p := NewSharded(dev, c.capacity, c.shards)
		if p.Shards() != c.want {
			t.Errorf("NewSharded(cap=%d, shards=%d).Shards()=%d, want %d",
				c.capacity, c.shards, p.Shards(), c.want)
		}
	}
}

// TestPinnedFrameStaysInShard asserts the documented invariant: a frame's
// shard is a pure function of its BlockID, so a pinned frame never moves
// across shards, and re-pinning a resident block always lands on the same
// frame in the same shard.
func TestPinnedFrameStaysInShard(t *testing.T) {
	dev := disk.NewDevice(4)
	dev.Alloc("test", 64)
	p := NewSharded(dev, 32, 8)
	for id := disk.BlockID(0); id < 64; id += 7 {
		f, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		home := p.shardIndex(id)
		if _, ok := p.shards[home].frames[id]; !ok {
			t.Fatalf("block %d not resident in its home shard %d", id, home)
		}
		// Re-pinning while pinned returns the identical frame, still in
		// the home shard.
		g, err := p.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		if g != f {
			t.Fatalf("block %d re-pin returned a different frame", id)
		}
		for si, s := range p.shards {
			_, ok := s.frames[id]
			if ok != (si == home) {
				t.Fatalf("block %d resident in shard %d, home is %d", id, si, home)
			}
		}
		p.Unpin(f)
		p.Unpin(g)
	}
}

// TestConcurrentPinUnpinStress hammers a small sharded pool from many
// goroutines under -race: shared read-only blocks are re-validated on
// every pin, and each goroutine owns one private block it writes through
// eviction cycles. Run with -race to check the locking discipline.
func TestConcurrentPinUnpinStress(t *testing.T) {
	const (
		workers    = 8
		sharedN    = 24
		iterations = 2000
		capacity   = 12 // far below the working set, forcing evictions
	)
	dev := disk.NewDevice(4)
	dev.Alloc("shared", sharedN)
	dev.Alloc("private", workers)
	p := NewSharded(dev, capacity, 4)

	// Seed the shared blocks with a recognizable pattern.
	for i := 0; i < sharedN; i++ {
		if err := dev.Write(disk.BlockID(i), []float64{float64(i), float64(i * 2), 0, 0}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			own := disk.BlockID(sharedN + w)
			counter := 0.0
			for i := 0; i < iterations; i++ {
				if rng.Intn(4) == 0 {
					// Bump the private block; only this goroutine writes it.
					f, err := p.Pin(own)
					if err != nil {
						errs <- err
						return
					}
					if f.Data[0] != counter {
						errs <- fmt.Errorf("worker %d: private block read %v, want %v", w, f.Data[0], counter)
						p.Unpin(f)
						return
					}
					counter++
					f.Data[0] = counter
					f.MarkDirty()
					p.Unpin(f)
				} else {
					id := disk.BlockID(rng.Intn(sharedN))
					f, err := p.Pin(id)
					if err != nil {
						errs <- err
						return
					}
					if f.Data[0] != float64(id) || f.Data[1] != float64(id*2) {
						errs <- fmt.Errorf("worker %d: shared block %d corrupted: %v", w, id, f.Data[:2])
						p.Unpin(f)
						return
					}
					p.Unpin(f)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if p.Pinned() != 0 {
		t.Fatalf("pinned=%d after stress, want 0", p.Pinned())
	}
	if r := p.Resident(); r > capacity {
		t.Fatalf("resident=%d exceeds capacity %d", r, capacity)
	}
	st := p.Stats()
	if st.Hits+st.Misses != int64(workers*iterations) {
		t.Fatalf("hits+misses=%d, want %d pins", st.Hits+st.Misses, workers*iterations)
	}
	// Every private counter must have survived its eviction round-trips.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSameBlockSingleflight checks that concurrent pins of one
// absent block collapse into a single device read.
func TestConcurrentSameBlockSingleflight(t *testing.T) {
	dev := disk.NewDevice(4)
	dev.Alloc("test", 4)
	if err := dev.Write(2, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		p := NewSharded(dev, 8, 4)
		dev.ResetStats()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, err := p.Pin(2)
				if err != nil {
					t.Error(err)
					return
				}
				if f.Data[3] != 4 {
					t.Errorf("stale data %v", f.Data)
				}
				p.Unpin(f)
			}()
		}
		wg.Wait()
		if r := dev.Stats().BlocksRead; r != 1 {
			t.Fatalf("round %d: %d device reads for one block, want 1", round, r)
		}
		st := p.Stats()
		if st.Misses != 1 || st.Hits != 7 {
			t.Fatalf("round %d: hits=%d misses=%d, want 7/1", round, st.Hits, st.Misses)
		}
	}
}

// TestCrossShardEviction: a pool whose budget is exhausted by pins in
// other shards must still be able to evict from any shard rather than
// fail while globally under budget.
func TestCrossShardEviction(t *testing.T) {
	dev := disk.NewDevice(4)
	dev.Alloc("test", 256)
	p := NewSharded(dev, 8, 4)
	// Fill the pool with unpinned frames spread over shards.
	for i := 0; i < 8; i++ {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	// Now pin 8 more blocks: every one needs an eviction, and the victim
	// may live in any shard.
	frames := make([]*Frame, 0, 8)
	for i := 8; i < 16; i++ {
		f, err := p.Pin(disk.BlockID(i))
		if err != nil {
			t.Fatalf("pin %d: %v", i, err)
		}
		frames = append(frames, f)
	}
	if _, err := p.Pin(100); err == nil {
		t.Fatal("expected over-budget error with all frames pinned")
	}
	for _, f := range frames {
		p.Unpin(f)
	}
	if p.Stats().Evictions < 8 {
		t.Fatalf("evictions=%d, want >= 8", p.Stats().Evictions)
	}
}
