// Package buffer implements a pinning buffer pool over a simulated disk
// device. The pool's frame budget is the paper's "available memory M":
// a pool of capacity M/B frames can hold M scalar numbers at once, and
// any access beyond that evicts via LRU, charging real device I/O.
//
// RIOT's out-of-core kernels (internal/linalg), the array store
// (internal/array), and the relational storage layer (internal/rstore)
// all draw frames from a pool, so "how much memory an algorithm uses" is
// an enforced budget rather than an honour system.
package buffer

import (
	"container/list"
	"fmt"

	"riot/internal/disk"
)

// Frame is a pinned in-memory copy of one disk block. The Data slice is
// valid until Unpin; writers must call MarkDirty so the frame is flushed
// on eviction.
type Frame struct {
	id    disk.BlockID
	Data  []float64
	pins  int
	dirty bool
	elem  *list.Element
}

// ID returns the disk block this frame caches.
func (f *Frame) ID() disk.BlockID { return f.id }

// MarkDirty records that Data has been modified and must be written back.
func (f *Frame) MarkDirty() { f.dirty = true }

// Stats counts buffer pool events.
type Stats struct {
	Hits      int64 // requests satisfied without device I/O
	Misses    int64 // requests that read the block from the device
	Evictions int64 // frames dropped to make room
	Flushes   int64 // dirty frames written back
}

// Pool is a fixed-capacity buffer pool with LRU replacement and pinning.
// It is not safe for concurrent use; RIOT's executors are single-threaded
// per pool, like the paper's single-machine setting.
type Pool struct {
	dev      *disk.Device
	capacity int // frames
	frames   map[disk.BlockID]*Frame
	lru      *list.List // unpinned frames, front = least recently used
	stats    Stats
}

// New creates a pool holding at most capacity frames over dev.
func New(dev *disk.Device, capacity int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[disk.BlockID]*Frame),
		lru:      list.New(),
	}
}

// NewWithMemory creates a pool sized so it holds memElems scalar numbers:
// capacity = memElems / blockElems, at least 3 frames (the minimum any
// out-of-core algorithm in this repo needs).
func NewWithMemory(dev *disk.Device, memElems int64) *Pool {
	frames := int(memElems / int64(dev.BlockElems()))
	if frames < 3 {
		frames = 3
	}
	return New(dev, frames)
}

// Capacity returns the frame budget.
func (p *Pool) Capacity() int { return p.capacity }

// MemoryElems returns the budget expressed in scalar numbers (M).
func (p *Pool) MemoryElems() int64 {
	return int64(p.capacity) * int64(p.dev.BlockElems())
}

// Device returns the underlying device.
func (p *Pool) Device() *disk.Device { return p.dev }

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the pool counters (resident frames are kept).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Resident returns the number of frames currently held.
func (p *Pool) Resident() int { return len(p.frames) }

// Pinned returns how many frames are currently pinned.
func (p *Pool) Pinned() int { return len(p.frames) - p.lru.Len() }

// Pin fetches block id into the pool, pins it, and returns its frame.
// A pinned frame is exempt from eviction until Unpin. Pinning more
// frames than the capacity is an error: it means an algorithm is using
// more memory than its budget.
func (p *Pool) Pin(id disk.BlockID) (*Frame, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		if f.pins == 0 && f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	f := &Frame{id: id, Data: make([]float64, p.dev.BlockElems()), pins: 1}
	if err := p.dev.Read(id, f.Data); err != nil {
		return nil, err
	}
	p.stats.Misses++
	p.frames[id] = f
	return f, nil
}

// PinNew pins block id without reading it from the device, for blocks
// about to be fully overwritten. It still counts as a miss for residency
// purposes but performs no read I/O (the paper's write-only traffic for
// result matrices depends on this).
func (p *Pool) PinNew(id disk.BlockID) (*Frame, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		if f.pins == 0 && f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	f := &Frame{id: id, Data: make([]float64, p.dev.BlockElems()), pins: 1}
	p.stats.Misses++
	p.frames[id] = f
	return f, nil
}

// Unpin releases one pin on f. When the pin count reaches zero the frame
// becomes evictable.
func (p *Pool) Unpin(f *Frame) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned frame %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(f)
	}
}

// makeRoom ensures at least one free slot exists, evicting the LRU
// unpinned frame if necessary.
func (p *Pool) makeRoom() error {
	if len(p.frames) < p.capacity {
		return nil
	}
	front := p.lru.Front()
	if front == nil {
		return fmt.Errorf("buffer: pool over budget: all %d frames pinned", p.capacity)
	}
	victim := front.Value.(*Frame)
	p.lru.Remove(front)
	victim.elem = nil
	if victim.dirty {
		if err := p.dev.Write(victim.id, victim.Data); err != nil {
			return err
		}
		p.stats.Flushes++
	}
	delete(p.frames, victim.id)
	p.stats.Evictions++
	return nil
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (p *Pool) FlushAll() error {
	for _, f := range p.frames {
		if f.dirty {
			if err := p.dev.Write(f.id, f.Data); err != nil {
				return err
			}
			f.dirty = false
			p.stats.Flushes++
		}
	}
	return nil
}

// Invalidate drops any resident (unpinned) copy of block id without
// writing it back. Used when an owner's extent is freed.
func (p *Pool) Invalidate(id disk.BlockID) {
	f, ok := p.frames[id]
	if !ok {
		return
	}
	if f.pins > 0 {
		panic(fmt.Sprintf("buffer: invalidate of pinned frame %d", id))
	}
	if f.elem != nil {
		p.lru.Remove(f.elem)
	}
	delete(p.frames, id)
}

// DropAll evicts every unpinned frame, flushing dirty ones. It returns an
// error if any frame is still pinned.
func (p *Pool) DropAll() error {
	if p.Pinned() > 0 {
		return fmt.Errorf("buffer: DropAll with %d pinned frames", p.Pinned())
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.frames = make(map[disk.BlockID]*Frame)
	p.lru.Init()
	return nil
}
