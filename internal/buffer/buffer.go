// Package buffer implements a pinning buffer pool over a simulated disk
// device. The pool's frame budget is the paper's "available memory M":
// a pool of capacity M/B frames can hold M scalar numbers at once, and
// any access beyond that evicts via LRU, charging real device I/O.
//
// RIOT's out-of-core kernels (internal/linalg), the array store
// (internal/array), and the relational storage layer (internal/rstore)
// all draw frames from a pool, so "how much memory an algorithm uses" is
// an enforced budget rather than an honour system.
//
// # Concurrency
//
// The pool is safe for concurrent use. It is partitioned into a power-of
// -two number of lock-striped shards; a block's shard is a pure function
// of its BlockID, so a frame lives in exactly one shard for its whole
// lifetime — in particular, a pinned frame never moves across shards
// (tests assert this invariant). Each shard has its own mutex and LRU
// list; the frame budget is global, enforced with an atomic residency
// counter, so a burst of activity in one shard may evict frames from
// another rather than fail while the pool as a whole is under budget.
// Counters are atomics, so Stats is safe to read concurrently.
//
// Concurrent Pins of the same absent block collapse into a single device
// read: the first pinner inserts a frame and loads it while later
// pinners wait on the frame's ready channel (they count as hits — they
// caused no device I/O).
//
// Callers that write through Frame.Data must coordinate among
// themselves: the pool guarantees that a pinned frame is stable and
// never evicted, but two writers mutating the same frame's payload
// concurrently are a data race in the caller. RIOT's parallel executors
// partition output blocks across workers so each output frame has
// exactly one writer; input frames are shared read-only.
//
// A single-shard pool driven by one goroutine behaves exactly like the
// original sequential pool: same hit/miss/eviction/flush counts in the
// same order. This is what makes Workers=1 runs reproduce the paper's
// deterministic I/O measurements.
//
// # I/O scheduler (readahead, elevator write-back)
//
// SetReadahead enables an I/O scheduler between the pool and the device,
// off by default so the seed's exact I/O counters are preserved:
//
//   - Prefetch(ids) is an explicit hint: the named blocks are loaded
//     asynchronously, off the caller's goroutine, through the same
//     singleflight frame path as Pin, and parked unpinned on the LRU.
//     Contiguous runs are read with one vectored device request, so they
//     charge one seek plus sequential transfers.
//   - Automatic sequential readahead watches the Pin stream; two
//     consecutive block IDs trigger prefetch of the next window blocks,
//     and the window doubles on every further sequential access (up to a
//     clamp), the classic adaptive readahead policy.
//   - Eviction of a dirty frame flushes a batch of dirty frames sorted
//     by BlockID (elevator write-back) via one vectored write, instead of
//     one random write per eviction. FlushAll likewise writes in sorted
//     batches when the scheduler is on.
//
// Prefetched frames never exceed the global frame budget: a prefetch
// that cannot claim a free or evictable frame is dropped (it is a hint),
// and a real Pin that finds the budget exhausted drains in-flight
// prefetches — which are unpinned and evictable the moment they land —
// and retries, so readahead can never fail an algorithm that stays
// within its budget. Stats reports Prefetched / PrefetchHits /
// WastedPrefetch so ablations can see whether readahead paid off.
package buffer

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"riot/internal/disk"
)

// Frame is a pinned in-memory copy of one disk block. The Data slice is
// valid until Unpin; writers must call MarkDirty so the frame is flushed
// on eviction.
type Frame struct {
	id   disk.BlockID
	Data []float64
	// pins and elem are guarded by the owning shard's mutex.
	pins int
	elem *list.Element
	// dirty is atomic: MarkDirty is called by pinners without the shard
	// lock, while eviction and FlushAll read it under the lock.
	dirty atomic.Bool
	// ready is closed once Data holds the block contents. Concurrent
	// pinners of a block being loaded wait on it; loadErr is set before
	// the close if the device read failed.
	ready   chan struct{}
	loadErr error
	// loading marks a frame whose device read is still in flight on a
	// prefetch goroutine; such frames are in the shard map (so Pins
	// collapse onto them) but not on the LRU (so eviction skips them).
	// doomed is set by Invalidate/DropAll racing an in-flight load: the
	// prefetcher discards the frame on completion instead of parking it.
	// prefetched marks a frame loaded by the scheduler and not yet used
	// by any Pin; it feeds the PrefetchHits / WastedPrefetch counters.
	// hinted distinguishes an explicit Prefetch claim from one made by
	// the automatic detector: consuming a detector frame keeps the
	// detector running ahead, consuming a hinted frame does not (the
	// hinter will hint again). All four are guarded by the owning
	// shard's mutex.
	loading    bool
	doomed     bool
	prefetched bool
	hinted     bool
}

// ID returns the disk block this frame caches.
func (f *Frame) ID() disk.BlockID { return f.id }

// MarkDirty records that Data has been modified and must be written back.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Stats counts buffer pool events.
type Stats struct {
	Hits      int64 // requests satisfied without device I/O
	Misses    int64 // requests that read the block from the device
	Evictions int64 // frames dropped to make room
	Flushes   int64 // dirty frames written back

	// Scheduler counters (all zero while readahead is off).
	Prefetched     int64 // blocks loaded by the prefetcher
	PrefetchHits   int64 // pins served from a prefetched frame
	WastedPrefetch int64 // prefetched frames evicted or dropped unused
}

// PrefetchHitRate returns the fraction of prefetched blocks that a Pin
// actually consumed (0 when nothing was prefetched).
func (s Stats) PrefetchHitRate() float64 {
	if s.Prefetched == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.Prefetched)
}

// String renders the counters in one line; scheduler counters appear
// only when the prefetcher did any work.
func (s Stats) String() string {
	out := fmt.Sprintf("hits=%d misses=%d evictions=%d flushes=%d",
		s.Hits, s.Misses, s.Evictions, s.Flushes)
	if s.Prefetched > 0 || s.WastedPrefetch > 0 {
		out += fmt.Sprintf(" prefetched=%d prefetch-hits=%d (%.0f%%) wasted=%d",
			s.Prefetched, s.PrefetchHits, 100*s.PrefetchHitRate(), s.WastedPrefetch)
	}
	return out
}

// shard is one lock stripe of the pool: a map of resident frames plus an
// LRU list of the unpinned ones.
type shard struct {
	mu     sync.Mutex
	frames map[disk.BlockID]*Frame
	lru    *list.List // unpinned frames, front = least recently used
}

// Pool is a handle to a fixed-capacity buffer pool with LRU replacement
// and pinning, sharded for concurrent access (see the package comment).
// A Pool is a view: the root view returned by New/NewSharded owns no
// per-session state, and Session derives quota'd views that share every
// frame, shard, and counter with the root while metering their own pins.
type Pool struct {
	*core
	acct *Account
}

// Account meters one session's pinned frames against a quota. It is
// shared by every array and executor handle the session creates, so the
// session's concurrently pinned frames — inputs, outputs, temporaries —
// are counted as one budget no matter which goroutine pins them.
type Account struct {
	quota  int
	pinned atomic.Int64
	peak   atomic.Int64
}

// Quota returns the session's pin budget in frames.
func (a *Account) Quota() int { return a.quota }

// Pinned returns the session's currently pinned frame count.
func (a *Account) Pinned() int { return int(a.pinned.Load()) }

// Peak returns the high-water mark of concurrently pinned frames —
// the number the quota tests compare against the quota.
func (a *Account) Peak() int { return int(a.peak.Load()) }

// charge reserves one pin against the quota.
func (a *Account) charge() error {
	n := a.pinned.Add(1)
	if int(n) > a.quota {
		a.pinned.Add(-1)
		return fmt.Errorf("buffer: session pin quota exceeded (%d frames)", a.quota)
	}
	for {
		peak := a.peak.Load()
		if n <= peak || a.peak.CompareAndSwap(peak, n) {
			return nil
		}
	}
}

// release returns one pin to the quota.
func (a *Account) release() { a.pinned.Add(-1) }

// MinSessionQuota is the smallest useful session quota: every out-of-core
// algorithm in this repo needs at least three simultaneously pinned
// frames (two inputs and an output).
const MinSessionQuota = 3

// Session derives a quota'd view of the pool: the returned Pool shares
// every frame, shard, and statistic with p, but its Pins are charged
// against a fresh Account and refused beyond quota frames, and its
// Capacity/MemoryElems report the quota so kernels and planners size
// their working sets inside the session's share. The quota is clamped to
// [MinSessionQuota, pool capacity].
func (p *Pool) Session(quota int) *Pool {
	if quota < MinSessionQuota {
		quota = MinSessionQuota
	}
	if quota > p.core.capacity {
		quota = p.core.capacity
	}
	return &Pool{core: p.core, acct: &Account{quota: quota}}
}

// Account returns the view's pin account (nil on the root view).
func (p *Pool) Account() *Account { return p.acct }

// Root returns the unmetered root view of the pool: same shared core, no
// session account. Shared system structures (the catalog) pin through it
// so their residency is not charged to whichever session touched them.
func (p *Pool) Root() *Pool { return &Pool{core: p.core} }

// core is the shared state behind every view of one buffer pool.
type core struct {
	dev      *disk.Device
	capacity int // frames, global across shards
	shards   []*shard
	mask     uint64 // len(shards)-1; len(shards) is a power of two
	resident atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	flushes   atomic.Int64

	// I/O scheduler state (see the package comment). raEnabled gates
	// every scheduler code path so the disabled pool is byte-for-byte
	// the seed pool.
	raEnabled atomic.Bool
	// sharedFlush marks a pool shared by concurrent sessions: FlushAll
	// then skips frames that are pinned at flush time. An unpinned frame
	// is never mutated by callers (the pool contract), so flushing only
	// unpinned frames is race-free no matter how many sessions are mid-
	// operation; the skipped frames stay dirty and are written back on
	// eviction, by a later flush, or captured by a checkpoint Pin. Off
	// (the default) FlushAll writes every dirty frame, which is the
	// seed's deterministic single-session behaviour.
	sharedFlush    atomic.Bool
	raCfg          ReadaheadConfig
	ra             raState
	drain          drainGroup
	inflight       atomic.Int64 // prefetch batches currently running
	prefetched     atomic.Int64
	prefetchHits   atomic.Int64
	wastedPrefetch atomic.Int64
}

// drainGroup tracks in-flight prefetch batches. It is a WaitGroup whose
// Add and Wait may race freely: new batches may start while a drainer is
// waiting (the drainer observes some zero crossing, which is all the
// makeRoom retry needs).
type drainGroup struct {
	mu   sync.Mutex
	cond sync.Cond
	n    int
}

func (g *drainGroup) add() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *drainGroup) done() {
	g.mu.Lock()
	g.n--
	if g.n == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *drainGroup) wait() {
	g.mu.Lock()
	for g.n > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// ReadaheadConfig tunes the I/O scheduler. The zero value of each field
// selects its default.
type ReadaheadConfig struct {
	// Enabled turns the scheduler on: explicit Prefetch hints, automatic
	// sequential readahead, and elevator write-back.
	Enabled bool
	// MinWindow is the readahead window (blocks) when a sequential run
	// is first detected. Default 4.
	MinWindow int
	// MaxWindow clamps the adaptive window. Default 64 divided by the
	// shard count (shards approximate concurrent streams), and never
	// more than capacity/(2·shards), so all streams' readahead together
	// cannot flush the working set.
	MaxWindow int
	// FlushBatch is how many dirty frames one eviction writes back in a
	// sorted batch. Default 8.
	FlushBatch int
}

// raState is the sequential-pattern detector for automatic readahead.
type raState struct {
	mu      sync.Mutex
	last    disk.BlockID // last block in the detected stream
	hasLast bool
	streak  int          // consecutive +1 accesses in the stream
	window  int          // current readahead window, in blocks
	next    disk.BlockID // first block not yet scheduled in this run
}

// raMinStreak is how many consecutive block IDs the detector wants
// before it starts prefetching: short runs (a tiled kernel walking the
// tiles of a super-block row) are not streams, and prefetching past
// them only wastes frames.
const raMinStreak = 5

// maxInflightPrefetch bounds concurrent prefetch batches; beyond this,
// hints are dropped rather than queued (prefetch is advisory).
const maxInflightPrefetch = 64

// SetReadahead configures the I/O scheduler. It must be called before
// the pool is shared between goroutines (it is a setup knob, not a
// runtime toggle). Disabled (the default) the pool behaves exactly like
// the seed pool.
func (p *core) SetReadahead(cfg ReadaheadConfig) {
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = 4
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 64 / len(p.shards)
	}
	if cfg.MaxWindow < cfg.MinWindow {
		cfg.MaxWindow = cfg.MinWindow
	}
	// The working-set clamp is applied last so nothing can override it:
	// with many concurrent streams in a small pool, both windows shrink
	// rather than letting their combined readahead flush the pool.
	if lim := p.capacity / (2 * len(p.shards)); lim >= 1 {
		if cfg.MaxWindow > lim {
			cfg.MaxWindow = lim
		}
		if cfg.MinWindow > lim {
			cfg.MinWindow = lim
		}
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 8
	}
	p.raCfg = cfg
	p.ra.window = cfg.MinWindow
	p.raEnabled.Store(cfg.Enabled)
}

// ReadaheadEnabled reports whether the I/O scheduler is on, so callers
// can skip the work of computing hints when it is not.
func (p *core) ReadaheadEnabled() bool { return p.raEnabled.Load() }

// maxShards bounds lock striping; beyond this the per-shard LRU lists
// become too short to approximate global LRU.
const maxShards = 64

// New creates a single-shard pool holding at most capacity frames over
// dev. Single-shard, single-goroutine use reproduces the original
// sequential pool's behaviour exactly.
func New(dev *disk.Device, capacity int) *Pool {
	return NewSharded(dev, capacity, 1)
}

// NewSharded creates a pool with the given frame capacity striped over
// shards lock shards. The shard count is rounded up to a power of two
// and clamped to [1, maxShards]; it never exceeds the capacity.
func NewSharded(dev *disk.Device, capacity, shards int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	c := &core{
		dev:      dev,
		capacity: capacity,
		shards:   make([]*shard, n),
		mask:     uint64(n - 1),
	}
	for i := range c.shards {
		c.shards[i] = &shard{frames: make(map[disk.BlockID]*Frame), lru: list.New()}
	}
	c.drain.cond.L = &c.drain.mu
	return &Pool{core: c}
}

// NewWithMemory creates a single-shard pool sized so it holds memElems
// scalar numbers: capacity = memElems / blockElems, at least 3 frames
// (the minimum any out-of-core algorithm in this repo needs).
func NewWithMemory(dev *disk.Device, memElems int64) *Pool {
	return NewShardedWithMemory(dev, memElems, 1)
}

// NewShardedWithMemory is NewWithMemory with a shard count, for
// concurrent executors.
func NewShardedWithMemory(dev *disk.Device, memElems int64, shards int) *Pool {
	frames := int(memElems / int64(dev.BlockElems()))
	if frames < 3 {
		frames = 3
	}
	return NewSharded(dev, frames, shards)
}

// shardOf returns the shard owning block id. This is a pure function of
// the id, which is what pins a frame to one shard for its lifetime.
func (p *core) shardOf(id disk.BlockID) *shard {
	return p.shards[p.shardIndex(id)]
}

// shardIndex spreads sequential block IDs across shards with a
// Fibonacci-style multiplicative hash.
func (p *core) shardIndex(id disk.BlockID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15 >> 32) & p.mask)
}

// Capacity returns the frame budget of this view: the pool-wide budget
// on the root view, the session quota on a view made by Session. Kernels
// and planners size their working sets from it, which is what keeps a
// quota'd session's algorithms inside the session's share of memory.
func (p *Pool) Capacity() int {
	if p.acct != nil && p.acct.quota < p.core.capacity {
		return p.acct.quota
	}
	return p.core.capacity
}

// Shards returns the number of lock stripes.
func (p *core) Shards() int { return len(p.shards) }

// MemoryElems returns this view's budget expressed in scalar numbers
// (M): the session quota's worth of elements on a quota'd view.
func (p *Pool) MemoryElems() int64 {
	return int64(p.Capacity()) * int64(p.dev.BlockElems())
}

// Device returns the underlying device.
func (p *core) Device() *disk.Device { return p.dev }

// Stats returns a snapshot of pool counters.
func (p *core) Stats() Stats {
	return Stats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Evictions:      p.evictions.Load(),
		Flushes:        p.flushes.Load(),
		Prefetched:     p.prefetched.Load(),
		PrefetchHits:   p.prefetchHits.Load(),
		WastedPrefetch: p.wastedPrefetch.Load(),
	}
}

// ResetStats zeroes the pool counters (resident frames are kept).
func (p *core) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
	p.flushes.Store(0)
	p.prefetched.Store(0)
	p.prefetchHits.Store(0)
	p.wastedPrefetch.Store(0)
}

// Resident returns the number of frames currently held.
func (p *core) Resident() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// Pinned returns how many frames are currently pinned. Frames whose
// prefetch load is still in flight are not pinned (they hold no caller
// reference and become evictable the moment they land).
func (p *core) Pinned() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Pin fetches block id into the pool, pins it, and returns its frame.
// A pinned frame is exempt from eviction until Unpin. Pinning more
// frames than the capacity is an error: it means an algorithm is using
// more memory than its budget. On a view made by Session, the pin is
// additionally charged against the session's quota and refused when the
// quota is exhausted.
func (p *Pool) Pin(id disk.BlockID) (*Frame, error) {
	return p.viewPin(id, false)
}

// PinNew pins block id without reading it from the device, for blocks
// about to be fully overwritten. It still counts as a miss for residency
// purposes but performs no read I/O (the paper's write-only traffic for
// result matrices depends on this).
func (p *Pool) PinNew(id disk.BlockID) (*Frame, error) {
	return p.viewPin(id, true)
}

// Export copies block id's current contents — the resident frame if one
// exists (dirty frames included), the device otherwise — into dst
// without pinning, without charging any session quota, and without
// recording any simulated I/O. It is the durability capture path: the
// catalog's checkpoint and WAL serialize array blocks to the host
// filesystem, a different device from the simulated disk the paper's
// experiments measure, so the copy must not perturb the counters, the
// pool statistics, or the LRU. Callers must not Export blocks another
// goroutine may still be writing; catalog entries are immutable once
// published, which is what makes this safe there.
func (p *Pool) Export(id disk.BlockID, dst []float64) error {
	if len(dst) != p.core.dev.BlockElems() {
		return fmt.Errorf("buffer: export buffer has %d elems, want %d", len(dst), p.core.dev.BlockElems())
	}
	s := p.core.shardOf(id)
	s.mu.Lock()
	f := s.frames[id]
	s.mu.Unlock()
	if f != nil {
		<-f.ready // an in-flight prefetch load settles first
		if f.loadErr == nil {
			copy(dst, f.Data)
			return nil
		}
	}
	return p.core.dev.Export(id, dst)
}

// viewPin charges the view's account (if any) before delegating to the
// shared core, and refunds the charge when the pin fails.
func (p *Pool) viewPin(id disk.BlockID, fresh bool) (*Frame, error) {
	if a := p.acct; a != nil {
		if err := a.charge(); err != nil {
			return nil, err
		}
		f, err := p.core.pin(id, fresh)
		if err != nil {
			a.release()
		}
		return f, err
	}
	return p.core.pin(id, fresh)
}

func (p *core) pin(id disk.BlockID, fresh bool) (*Frame, error) {
	s := p.shardOf(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if p.pinResident(s, f) == consumedAuto && !fresh {
			// Consuming a detector-prefetched frame: the readahead is
			// paying off, keep it running ahead of this stream (the
			// claims overlap with our wait for the frame's own load).
			// Hinted frames don't feed the detector — their hinter will
			// hint again.
			p.noteAccess(id)
		}
		return p.await(f)
	}
	s.mu.Unlock()

	// Miss: reserve a slot under the global budget, evicting if needed.
	if err := p.makeRoom(id); err != nil {
		return nil, err
	}
	f := &Frame{
		id:    id,
		Data:  make([]float64, p.dev.BlockElems()),
		pins:  1,
		ready: make(chan struct{}),
	}
	s.mu.Lock()
	if existing, ok := s.frames[id]; ok {
		// Another goroutine loaded the block while we were evicting.
		// Give the reserved slot back (before releasing the shard lock,
		// so a concurrent makeRoom never sees an inflated counter with
		// nothing to evict) and share the frame.
		p.resident.Add(-1)
		if p.pinResident(s, existing) == consumedAuto && !fresh {
			p.noteAccess(id)
		}
		return p.await(existing)
	}
	s.frames[id] = f
	s.mu.Unlock()
	p.misses.Add(1)
	if !fresh && p.raEnabled.Load() {
		p.noteAccess(id)
	}
	if !fresh {
		if err := p.dev.Read(id, f.Data); err != nil {
			f.loadErr = err
			close(f.ready)
			s.mu.Lock()
			delete(s.frames, id)
			p.resident.Add(-1)
			s.mu.Unlock()
			return nil, err
		}
	}
	close(f.ready)
	return f, nil
}

// Consumption kinds reported by pinResident.
const (
	consumedNone   = iota // plain hit on a non-prefetched frame
	consumedHinted        // consumed an explicitly hinted frame
	consumedAuto          // consumed a detector-prefetched frame
)

// pinResident bumps the pin count of a frame already in s and counts a
// hit. It takes over (and releases) s.mu, which the caller holds, and
// reports what kind of prefetched frame (if any) this pin consumed —
// the detector's cue to keep readahead running for a stream it started.
func (p *core) pinResident(s *shard, f *Frame) int {
	if f.pins == 0 && f.elem != nil {
		s.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
	consumed := consumedNone
	if f.prefetched {
		consumed = consumedAuto
		if f.hinted {
			consumed = consumedHinted
		}
	}
	f.prefetched = false
	s.mu.Unlock()
	p.hits.Add(1)
	if consumed != consumedNone {
		p.prefetchHits.Add(1)
	}
	return consumed
}

// await blocks until f's contents are loaded (a no-op for frames past
// their first load).
func (p *core) await(f *Frame) (*Frame, error) {
	<-f.ready
	if f.loadErr != nil {
		return nil, f.loadErr
	}
	return f, nil
}

// makeRoom reserves one frame slot in the global budget for a real Pin,
// evicting an unpinned frame if the pool is full. If the scheduler is on
// and every frame looks pinned, in-flight prefetch loads (which hold
// budget but are not yet evictable) are drained and the reservation
// retried, so readahead can never fail an algorithm that stays within
// its budget.
func (p *core) makeRoom(id disk.BlockID) error {
	err := p.tryMakeRoom(id)
	for i := 0; err != nil && p.raEnabled.Load() && i < 3; i++ {
		p.drain.wait()
		err = p.tryMakeRoom(id)
	}
	return err
}

// tryMakeRoom reserves one frame slot in the global budget, evicting an
// unpinned frame if the pool is full. Eviction prefers the shard that
// will receive the new block (preserving exact sequential LRU behaviour
// in the single-shard case) and falls back to scanning the other shards
// so one hot shard cannot fail while the pool is globally under budget.
func (p *core) tryMakeRoom(id disk.BlockID) error {
	if p.resident.Add(1) <= int64(p.capacity) {
		return nil
	}
	start := p.shardIndex(id)
	for i := range p.shards {
		s := p.shards[(start+i)&int(p.mask)]
		s.mu.Lock()
		front := s.lru.Front()
		if front == nil {
			s.mu.Unlock()
			continue
		}
		victim := front.Value.(*Frame)
		s.lru.Remove(front)
		victim.elem = nil
		// Write back before the frame leaves the map: once it is gone a
		// concurrent Pin of the same block re-reads the device, and must
		// see these contents.
		flushedDirty := false
		if victim.dirty.Load() {
			if err := p.dev.Write(victim.id, victim.Data); err != nil {
				s.lru.PushFront(victim)
				victim.elem = s.lru.Front()
				s.mu.Unlock()
				p.resident.Add(-1)
				return err
			}
			victim.dirty.Store(false)
			p.flushes.Add(1)
			flushedDirty = true
		}
		if victim.prefetched {
			p.wastedPrefetch.Add(1)
		}
		delete(s.frames, victim.id)
		s.mu.Unlock()
		p.resident.Add(-1)
		p.evictions.Add(1)
		if flushedDirty && p.raEnabled.Load() && p.raCfg.FlushBatch > 1 {
			p.elevatorSweep(victim.id)
		}
		return nil
	}
	p.resident.Add(-1)
	return fmt.Errorf("buffer: pool over budget: all %d frames pinned", p.capacity)
}

// elevatorSweep is the write half of the I/O scheduler: after an
// eviction pays for one dirty write-back anyway, the sweep flushes up to
// FlushBatch-1 more dirty unpinned frames — across all shards, in
// ascending BlockID order starting at the victim's block and wrapping,
// like a disk elevator — so write-backs leave as one sorted vectored
// request and later evictions find their victims already clean. The
// caller holds no locks; the sweep locks the involved shards in index
// order (the pool's only multi-shard lock site, so the ordering is a
// total one) to keep the frames stable across the vectored write.
func (p *core) elevatorSweep(afterID disk.BlockID) {
	// Collection is bounded so a huge pool does not turn every dirty
	// eviction into a full O(capacity) scan: examine at most
	// sweepScanLimit LRU entries across the shards (oldest first within
	// each, which is where the frames the elevator wants live anyway).
	const sweepScanLimit = 256
	scanned := 0
	var cands []*Frame
	for _, s := range p.shards {
		s.mu.Lock()
		for e := s.lru.Front(); e != nil && scanned < sweepScanLimit; e = e.Next() {
			scanned++
			if f := e.Value.(*Frame); f.dirty.Load() {
				cands = append(cands, f)
			}
		}
		s.mu.Unlock()
		if scanned >= sweepScanLimit {
			break
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		// Ascending from afterID, wrapping: the elevator keeps moving in
		// the direction the eviction write was already heading.
		ai, aj := cands[i].id > afterID, cands[j].id > afterID
		if ai != aj {
			return ai
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > p.raCfg.FlushBatch-1 {
		cands = cands[:p.raCfg.FlushBatch-1]
	}
	// Lock every involved shard in index order, then re-validate: a
	// frame may have been pinned, evicted, or flushed since collection.
	// Unpinned frames are never mutated by callers (the pool contract),
	// so writing them under their shard locks is not torn.
	shardIdx := make([]int, 0, len(cands))
	seen := make(map[int]bool, len(cands))
	for _, f := range cands {
		if i := p.shardIndex(f.id); !seen[i] {
			seen[i] = true
			shardIdx = append(shardIdx, i)
		}
	}
	sort.Ints(shardIdx)
	for _, i := range shardIdx {
		p.shards[i].mu.Lock()
	}
	var ids []disk.BlockID
	var srcs [][]float64
	var valid []*Frame
	for _, f := range cands {
		s := p.shardOf(f.id)
		if f.pins == 0 && s.frames[f.id] == f && f.dirty.Load() {
			ids = append(ids, f.id)
			srcs = append(srcs, f.Data)
			valid = append(valid, f)
		}
	}
	if len(ids) > 0 {
		// On error the unwritten frames stay dirty and are simply
		// written again later; the first n completed and are clean.
		n, _ := p.dev.WriteBlocks(ids, srcs)
		for _, f := range valid[:n] {
			f.dirty.Store(false)
		}
		p.flushes.Add(int64(n))
	}
	for i := len(shardIdx) - 1; i >= 0; i-- {
		p.shards[shardIdx[i]].mu.Unlock()
	}
}

// Prefetch hints that the named blocks will be read soon. When the
// scheduler is enabled, frames for the absent blocks are claimed
// immediately — on the caller's goroutine, so a Pin issued right after
// the hint collapses onto the loading frame via the singleflight path
// instead of racing a duplicate device read — while the device reads
// themselves happen on a background goroutine, one vectored request per
// contiguous run. Claims never exceed the frame budget (a hint that
// finds only pinned frames is dropped) and loaded frames are parked
// unpinned on the LRU. Blocks already resident or loading are skipped;
// when the scheduler is disabled, or too many batches are in flight, the
// hint is dropped. Prefetch never returns an error: it is advisory, and
// a block that cannot be loaded is simply read by the Pin that actually
// needs it.
func (p *core) Prefetch(ids []disk.BlockID) {
	if len(ids) == 0 || !p.raEnabled.Load() {
		return
	}
	if half := p.capacity / 2; len(ids) > half && half >= 1 {
		ids = ids[:half]
	}
	p.schedulePrefetch(ids, true)
}

// schedulePrefetch claims frames synchronously and hands them to a
// background goroutine for loading. hinted records whether the claims
// come from an explicit Prefetch (as opposed to the detector). The
// drain group is entered before the first claim: claimed frames hold
// budget, so a drain.wait must not return between a claim and the
// loader goroutine's registration (a Pin retrying after the wait would
// spuriously report the pool over budget).
func (p *core) schedulePrefetch(ids []disk.BlockID, hinted bool) {
	if p.inflight.Load() >= maxInflightPrefetch {
		return
	}
	p.drain.add()
	frames := make([]*Frame, 0, len(ids))
	for _, id := range ids {
		if f := p.claimForPrefetch(id, hinted); f != nil {
			frames = append(frames, f)
		}
	}
	if len(frames) == 0 {
		p.drain.done()
		return
	}
	p.inflight.Add(1)
	go func() {
		defer p.drain.done()
		defer p.inflight.Add(-1)
		p.loadPrefetched(frames)
	}()
}

// loadPrefetched reads the claimed frames off the hinting goroutine,
// with one vectored request per contiguous run of block IDs.
func (p *core) loadPrefetched(frames []*Frame) {
	sort.Slice(frames, func(i, j int) bool { return frames[i].id < frames[j].id })
	for lo := 0; lo < len(frames); {
		hi := lo + 1
		for hi < len(frames) && frames[hi].id == frames[hi-1].id+1 {
			hi++
		}
		run := frames[lo:hi]
		runIDs := make([]disk.BlockID, len(run))
		dsts := make([][]float64, len(run))
		for i, f := range run {
			runIDs[i] = f.id
			dsts[i] = f.Data
		}
		n, err := p.dev.ReadBlocks(runIDs, dsts)
		// The first n blocks completed and must not be re-charged. A
		// later block vanished (freed between claim and read): retry the
		// rest individually so one bad block cannot poison its whole run
		// — a Pin may be waiting on any of them.
		for i, f := range run {
			switch {
			case i < n:
				p.finishPrefetch(f, nil)
			case err != nil && i == n:
				p.finishPrefetch(f, err)
			default:
				p.finishPrefetch(f, p.dev.Read(f.id, f.Data))
			}
		}
		lo = hi
	}
}

// claimForPrefetch inserts a loading frame for id under the global
// budget. It returns nil when the block is already resident or loading,
// or when no frame can be claimed without touching pinned frames — a
// dropped hint, not an error.
func (p *core) claimForPrefetch(id disk.BlockID, hinted bool) *Frame {
	if !p.dev.Readable(id) {
		// Readahead ran past the end of an extent (or into freed space):
		// not an error, just nothing to fetch.
		return nil
	}
	s := p.shardOf(id)
	s.mu.Lock()
	_, present := s.frames[id]
	s.mu.Unlock()
	if present {
		return nil
	}
	// tryMakeRoom, not makeRoom: the prefetcher must never wait on its
	// own WaitGroup.
	if err := p.tryMakeRoom(id); err != nil {
		return nil
	}
	f := &Frame{
		id:         id,
		Data:       make([]float64, p.dev.BlockElems()),
		ready:      make(chan struct{}),
		loading:    true,
		prefetched: true,
		hinted:     hinted,
	}
	s.mu.Lock()
	if _, ok := s.frames[id]; ok {
		// A Pin loaded the block while we were evicting; give the slot
		// back before releasing the shard lock (same discipline as pin).
		p.resident.Add(-1)
		s.mu.Unlock()
		return nil
	}
	s.frames[id] = f
	s.mu.Unlock()
	p.prefetched.Add(1)
	return f
}

// finishPrefetch publishes a loaded prefetch frame: on success it parks
// the frame on the LRU (unless a Pin grabbed it mid-load), on failure or
// doom (Invalidate/DropAll raced the load) it discards the frame.
func (p *core) finishPrefetch(f *Frame, err error) {
	s := p.shardOf(f.id)
	s.mu.Lock()
	f.loading = false
	f.loadErr = err
	close(f.ready)
	switch {
	case err != nil:
		// Any waiting pinners observe loadErr; the frame leaves the map
		// so the next Pin retries the device read.
		if s.frames[f.id] == f {
			delete(s.frames, f.id)
		}
		p.resident.Add(-1)
	case f.doomed && f.pins == 0:
		delete(s.frames, f.id)
		p.resident.Add(-1)
		p.wastedPrefetch.Add(1)
	case f.pins == 0:
		f.elem = s.lru.PushBack(f)
	}
	// pins > 0: a Pin collapsed onto the loading frame; its Unpin will
	// park the frame on the LRU.
	s.mu.Unlock()
}

// noteAccess is the automatic-readahead detector. raMinStreak
// consecutive block IDs in the miss/consume stream start prefetching
// ahead of the reader; after that the detector refills only when the
// reader comes within half a window of the prefetched frontier (the
// async trigger — refilling on every access would fragment the vectored
// reads), doubling the window on each refill up to the clamp.
func (p *core) noteAccess(id disk.BlockID) {
	ra := &p.ra
	ra.mu.Lock()
	seq := ra.hasLast && id == ra.last+1
	ra.hasLast = true
	ra.last = id
	if !seq {
		ra.streak = 1
		ra.window = p.raCfg.MinWindow
		ra.next = id + 1
		ra.mu.Unlock()
		return
	}
	ra.streak++
	if ra.streak < raMinStreak {
		ra.next = id + 1
		ra.mu.Unlock()
		return
	}
	if ra.next <= id {
		ra.next = id + 1
	}
	if ra.next-id > disk.BlockID(ra.window/2) {
		// Frontier comfortably ahead of the reader: nothing to do yet.
		ra.mu.Unlock()
		return
	}
	target := id + disk.BlockID(ra.window)
	ids := make([]disk.BlockID, 0, target-ra.next+1)
	for b := ra.next; b <= target; b++ {
		ids = append(ids, b)
	}
	ra.next = target + 1
	ra.window *= 2
	if ra.window > p.raCfg.MaxWindow {
		ra.window = p.raCfg.MaxWindow
	}
	ra.mu.Unlock()
	p.schedulePrefetch(ids, false)
}

// DrainPrefetch blocks until every in-flight prefetch batch has
// completed and its frames are resident or discarded. Benchmarks call it
// before reading counters so asynchronous loads do not straddle the
// measurement; DropAll calls it so a quiesced pool really is quiet. The
// caller must not race it with new Pins (which could schedule more
// readahead).
func (p *core) DrainPrefetch() {
	p.drain.wait()
}

// Unpin releases one pin on f. When the pin count reaches zero the frame
// becomes evictable. On a session view the pin is returned to the
// session's quota; pins and unpins must go through the same view, which
// holds naturally because every array handle pins through the pool
// pointer it was created with.
func (p *Pool) Unpin(f *Frame) {
	p.core.unpin(f)
	if p.acct != nil {
		p.acct.release()
	}
}

func (p *core) unpin(f *Frame) {
	s := p.shardOf(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned frame %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.elem = s.lru.PushBack(f)
	}
}

// SetSharedFlush marks the pool as shared by concurrent sessions: see
// the sharedFlush field. riot.Open sets it on the server's shared pool;
// standalone engines leave it off and keep the seed's exact flush
// counters.
func (p *core) SetSharedFlush(on bool) { p.sharedFlush.Store(on) }

// FlushAll writes back dirty frames without evicting. In the default
// (exclusive) mode it writes every dirty frame, pinned or not, and must
// not run concurrently with writers still mutating pinned frames; in
// shared mode (SetSharedFlush) pinned frames are skipped, which makes
// FlushAll safe to call while other sessions are mid-operation. With
// the scheduler enabled each shard's dirty frames go out as one
// vectored write sorted by BlockID, so contiguous dirty runs are
// charged sequentially instead of in map-iteration (random) order.
func (p *core) FlushAll() error {
	if p.raEnabled.Load() {
		return p.flushAllSorted()
	}
	shared := p.sharedFlush.Load()
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if shared && (f.pins > 0 || f.loading) {
				continue
			}
			if f.dirty.Load() {
				if err := p.dev.Write(f.id, f.Data); err != nil {
					s.mu.Unlock()
					return err
				}
				f.dirty.Store(false)
				p.flushes.Add(1)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// flushAllSorted is FlushAll under the scheduler: dirty frames from all
// shards are written in one globally ascending BlockID pass, each under
// its own shard lock, so contiguous dirty regions leave as sequential
// runs regardless of how the shard hash scattered them.
func (p *core) flushAllSorted() error {
	type cand struct {
		f *Frame
		s *shard
	}
	var cands []cand
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty.Load() {
				cands = append(cands, cand{f, s})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].f.id < cands[j].f.id })
	shared := p.sharedFlush.Load()
	for _, c := range cands {
		c.s.mu.Lock()
		f := c.f
		if shared && (f.pins > 0 || f.loading) {
			c.s.mu.Unlock()
			continue
		}
		if c.s.frames[f.id] == f && f.dirty.Load() {
			if err := p.dev.Write(f.id, f.Data); err != nil {
				c.s.mu.Unlock()
				return err
			}
			f.dirty.Store(false)
			p.flushes.Add(1)
		}
		c.s.mu.Unlock()
	}
	return nil
}

// Invalidate drops any resident (unpinned) copy of block id without
// writing it back. Used when an owner's extent is freed. A frame whose
// prefetch load is still in flight is doomed instead of dropped: the
// prefetcher discards it (and its budget reservation) when the load
// completes, so racing a Free against readahead is safe.
func (p *core) Invalidate(id disk.BlockID) {
	s := p.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return
	}
	if f.loading && f.pins == 0 {
		f.doomed = true
		return
	}
	if f.pins > 0 {
		panic(fmt.Sprintf("buffer: invalidate of pinned frame %d", id))
	}
	if f.elem != nil {
		s.lru.Remove(f.elem)
		f.elem = nil
	}
	delete(s.frames, id)
	p.resident.Add(-1)
	if f.prefetched {
		p.wastedPrefetch.Add(1)
	}
}

// DropAll evicts every unpinned frame, flushing dirty ones. It returns an
// error if any frame is still pinned. Like FlushAll it requires a
// quiescent pool: the pinned check and the per-shard clearing are not
// atomic against concurrent Pins, so callers must not race it with
// other pool users (experiments call it between runs). In-flight
// prefetches are drained first, so after DropAll the pool is truly empty
// and the device truly idle.
func (p *core) DropAll() error {
	p.DrainPrefetch()
	if n := p.Pinned(); n > 0 {
		return fmt.Errorf("buffer: DropAll with %d pinned frames", n)
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.prefetched {
				p.wastedPrefetch.Add(1)
			}
		}
		p.resident.Add(-int64(len(s.frames)))
		s.frames = make(map[disk.BlockID]*Frame)
		s.lru.Init()
		s.mu.Unlock()
	}
	return nil
}
