// Package buffer implements a pinning buffer pool over a simulated disk
// device. The pool's frame budget is the paper's "available memory M":
// a pool of capacity M/B frames can hold M scalar numbers at once, and
// any access beyond that evicts via LRU, charging real device I/O.
//
// RIOT's out-of-core kernels (internal/linalg), the array store
// (internal/array), and the relational storage layer (internal/rstore)
// all draw frames from a pool, so "how much memory an algorithm uses" is
// an enforced budget rather than an honour system.
//
// # Concurrency
//
// The pool is safe for concurrent use. It is partitioned into a power-of
// -two number of lock-striped shards; a block's shard is a pure function
// of its BlockID, so a frame lives in exactly one shard for its whole
// lifetime — in particular, a pinned frame never moves across shards
// (tests assert this invariant). Each shard has its own mutex and LRU
// list; the frame budget is global, enforced with an atomic residency
// counter, so a burst of activity in one shard may evict frames from
// another rather than fail while the pool as a whole is under budget.
// Counters are atomics, so Stats is safe to read concurrently.
//
// Concurrent Pins of the same absent block collapse into a single device
// read: the first pinner inserts a frame and loads it while later
// pinners wait on the frame's ready channel (they count as hits — they
// caused no device I/O).
//
// Callers that write through Frame.Data must coordinate among
// themselves: the pool guarantees that a pinned frame is stable and
// never evicted, but two writers mutating the same frame's payload
// concurrently are a data race in the caller. RIOT's parallel executors
// partition output blocks across workers so each output frame has
// exactly one writer; input frames are shared read-only.
//
// A single-shard pool driven by one goroutine behaves exactly like the
// original sequential pool: same hit/miss/eviction/flush counts in the
// same order. This is what makes Workers=1 runs reproduce the paper's
// deterministic I/O measurements.
package buffer

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"riot/internal/disk"
)

// Frame is a pinned in-memory copy of one disk block. The Data slice is
// valid until Unpin; writers must call MarkDirty so the frame is flushed
// on eviction.
type Frame struct {
	id   disk.BlockID
	Data []float64
	// pins and elem are guarded by the owning shard's mutex.
	pins int
	elem *list.Element
	// dirty is atomic: MarkDirty is called by pinners without the shard
	// lock, while eviction and FlushAll read it under the lock.
	dirty atomic.Bool
	// ready is closed once Data holds the block contents. Concurrent
	// pinners of a block being loaded wait on it; loadErr is set before
	// the close if the device read failed.
	ready   chan struct{}
	loadErr error
}

// ID returns the disk block this frame caches.
func (f *Frame) ID() disk.BlockID { return f.id }

// MarkDirty records that Data has been modified and must be written back.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Stats counts buffer pool events.
type Stats struct {
	Hits      int64 // requests satisfied without device I/O
	Misses    int64 // requests that read the block from the device
	Evictions int64 // frames dropped to make room
	Flushes   int64 // dirty frames written back
}

// shard is one lock stripe of the pool: a map of resident frames plus an
// LRU list of the unpinned ones.
type shard struct {
	mu     sync.Mutex
	frames map[disk.BlockID]*Frame
	lru    *list.List // unpinned frames, front = least recently used
}

// Pool is a fixed-capacity buffer pool with LRU replacement and pinning,
// sharded for concurrent access (see the package comment).
type Pool struct {
	dev      *disk.Device
	capacity int // frames, global across shards
	shards   []*shard
	mask     uint64 // len(shards)-1; len(shards) is a power of two
	resident atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	flushes   atomic.Int64
}

// maxShards bounds lock striping; beyond this the per-shard LRU lists
// become too short to approximate global LRU.
const maxShards = 64

// New creates a single-shard pool holding at most capacity frames over
// dev. Single-shard, single-goroutine use reproduces the original
// sequential pool's behaviour exactly.
func New(dev *disk.Device, capacity int) *Pool {
	return NewSharded(dev, capacity, 1)
}

// NewSharded creates a pool with the given frame capacity striped over
// shards lock shards. The shard count is rounded up to a power of two
// and clamped to [1, maxShards]; it never exceeds the capacity.
func NewSharded(dev *disk.Device, capacity, shards int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	p := &Pool{
		dev:      dev,
		capacity: capacity,
		shards:   make([]*shard, n),
		mask:     uint64(n - 1),
	}
	for i := range p.shards {
		p.shards[i] = &shard{frames: make(map[disk.BlockID]*Frame), lru: list.New()}
	}
	return p
}

// NewWithMemory creates a single-shard pool sized so it holds memElems
// scalar numbers: capacity = memElems / blockElems, at least 3 frames
// (the minimum any out-of-core algorithm in this repo needs).
func NewWithMemory(dev *disk.Device, memElems int64) *Pool {
	return NewShardedWithMemory(dev, memElems, 1)
}

// NewShardedWithMemory is NewWithMemory with a shard count, for
// concurrent executors.
func NewShardedWithMemory(dev *disk.Device, memElems int64, shards int) *Pool {
	frames := int(memElems / int64(dev.BlockElems()))
	if frames < 3 {
		frames = 3
	}
	return NewSharded(dev, frames, shards)
}

// shardOf returns the shard owning block id. This is a pure function of
// the id, which is what pins a frame to one shard for its lifetime.
func (p *Pool) shardOf(id disk.BlockID) *shard {
	return p.shards[p.shardIndex(id)]
}

// shardIndex spreads sequential block IDs across shards with a
// Fibonacci-style multiplicative hash.
func (p *Pool) shardIndex(id disk.BlockID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15 >> 32) & p.mask)
}

// Capacity returns the frame budget.
func (p *Pool) Capacity() int { return p.capacity }

// Shards returns the number of lock stripes.
func (p *Pool) Shards() int { return len(p.shards) }

// MemoryElems returns the budget expressed in scalar numbers (M).
func (p *Pool) MemoryElems() int64 {
	return int64(p.capacity) * int64(p.dev.BlockElems())
}

// Device returns the underlying device.
func (p *Pool) Device() *disk.Device { return p.dev }

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Flushes:   p.flushes.Load(),
	}
}

// ResetStats zeroes the pool counters (resident frames are kept).
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.evictions.Store(0)
	p.flushes.Store(0)
}

// Resident returns the number of frames currently held.
func (p *Pool) Resident() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// Pinned returns how many frames are currently pinned.
func (p *Pool) Pinned() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.frames) - s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Pin fetches block id into the pool, pins it, and returns its frame.
// A pinned frame is exempt from eviction until Unpin. Pinning more
// frames than the capacity is an error: it means an algorithm is using
// more memory than its budget.
func (p *Pool) Pin(id disk.BlockID) (*Frame, error) {
	return p.pin(id, false)
}

// PinNew pins block id without reading it from the device, for blocks
// about to be fully overwritten. It still counts as a miss for residency
// purposes but performs no read I/O (the paper's write-only traffic for
// result matrices depends on this).
func (p *Pool) PinNew(id disk.BlockID) (*Frame, error) {
	return p.pin(id, true)
}

func (p *Pool) pin(id disk.BlockID, fresh bool) (*Frame, error) {
	s := p.shardOf(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		p.pinResident(s, f)
		return p.await(f)
	}
	s.mu.Unlock()

	// Miss: reserve a slot under the global budget, evicting if needed.
	if err := p.makeRoom(id); err != nil {
		return nil, err
	}
	f := &Frame{
		id:    id,
		Data:  make([]float64, p.dev.BlockElems()),
		pins:  1,
		ready: make(chan struct{}),
	}
	s.mu.Lock()
	if existing, ok := s.frames[id]; ok {
		// Another goroutine loaded the block while we were evicting.
		// Give the reserved slot back (before releasing the shard lock,
		// so a concurrent makeRoom never sees an inflated counter with
		// nothing to evict) and share the frame.
		p.resident.Add(-1)
		p.pinResident(s, existing)
		return p.await(existing)
	}
	s.frames[id] = f
	s.mu.Unlock()
	p.misses.Add(1)
	if !fresh {
		if err := p.dev.Read(id, f.Data); err != nil {
			f.loadErr = err
			close(f.ready)
			s.mu.Lock()
			delete(s.frames, id)
			p.resident.Add(-1)
			s.mu.Unlock()
			return nil, err
		}
	}
	close(f.ready)
	return f, nil
}

// pinResident bumps the pin count of a frame already in s and counts a
// hit. It takes over (and releases) s.mu, which the caller holds.
func (p *Pool) pinResident(s *shard, f *Frame) {
	if f.pins == 0 && f.elem != nil {
		s.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
	s.mu.Unlock()
	p.hits.Add(1)
}

// await blocks until f's contents are loaded (a no-op for frames past
// their first load).
func (p *Pool) await(f *Frame) (*Frame, error) {
	<-f.ready
	if f.loadErr != nil {
		return nil, f.loadErr
	}
	return f, nil
}

// makeRoom reserves one frame slot in the global budget, evicting an
// unpinned frame if the pool is full. Eviction prefers the shard that
// will receive the new block (preserving exact sequential LRU behaviour
// in the single-shard case) and falls back to scanning the other shards
// so one hot shard cannot fail while the pool is globally under budget.
func (p *Pool) makeRoom(id disk.BlockID) error {
	if p.resident.Add(1) <= int64(p.capacity) {
		return nil
	}
	start := p.shardIndex(id)
	for i := range p.shards {
		s := p.shards[(start+i)&int(p.mask)]
		s.mu.Lock()
		front := s.lru.Front()
		if front == nil {
			s.mu.Unlock()
			continue
		}
		victim := front.Value.(*Frame)
		s.lru.Remove(front)
		victim.elem = nil
		// Write back before the frame leaves the map: once it is gone a
		// concurrent Pin of the same block re-reads the device, and must
		// see these contents.
		if victim.dirty.Load() {
			if err := p.dev.Write(victim.id, victim.Data); err != nil {
				s.lru.PushFront(victim)
				victim.elem = s.lru.Front()
				s.mu.Unlock()
				p.resident.Add(-1)
				return err
			}
			victim.dirty.Store(false)
			p.flushes.Add(1)
		}
		delete(s.frames, victim.id)
		s.mu.Unlock()
		p.resident.Add(-1)
		p.evictions.Add(1)
		return nil
	}
	p.resident.Add(-1)
	return fmt.Errorf("buffer: pool over budget: all %d frames pinned", p.capacity)
}

// Unpin releases one pin on f. When the pin count reaches zero the frame
// becomes evictable.
func (p *Pool) Unpin(f *Frame) {
	s := p.shardOf(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned frame %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.elem = s.lru.PushBack(f)
	}
}

// FlushAll writes back every dirty frame (pinned or not) without
// evicting. It must not run concurrently with writers still mutating
// pinned frames.
func (p *Pool) FlushAll() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.dirty.Load() {
				if err := p.dev.Write(f.id, f.Data); err != nil {
					s.mu.Unlock()
					return err
				}
				f.dirty.Store(false)
				p.flushes.Add(1)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Invalidate drops any resident (unpinned) copy of block id without
// writing it back. Used when an owner's extent is freed.
func (p *Pool) Invalidate(id disk.BlockID) {
	s := p.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return
	}
	if f.pins > 0 {
		panic(fmt.Sprintf("buffer: invalidate of pinned frame %d", id))
	}
	if f.elem != nil {
		s.lru.Remove(f.elem)
		f.elem = nil
	}
	delete(s.frames, id)
	p.resident.Add(-1)
}

// DropAll evicts every unpinned frame, flushing dirty ones. It returns an
// error if any frame is still pinned. Like FlushAll it requires a
// quiescent pool: the pinned check and the per-shard clearing are not
// atomic against concurrent Pins, so callers must not race it with
// other pool users (experiments call it between runs).
func (p *Pool) DropAll() error {
	if n := p.Pinned(); n > 0 {
		return fmt.Errorf("buffer: DropAll with %d pinned frames", n)
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	for _, s := range p.shards {
		s.mu.Lock()
		p.resident.Add(-int64(len(s.frames)))
		s.frames = make(map[disk.BlockID]*Frame)
		s.lru.Init()
		s.mu.Unlock()
	}
	return nil
}
