package rstore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"riot/internal/buffer"
	"riot/internal/disk"
)

func testPool(blockElems, frames int) *buffer.Pool {
	return buffer.New(disk.NewDevice(blockElems), frames)
}

func TestHeapAppendGet(t *testing.T) {
	p := testPool(16, 4)
	h, err := NewHeapFile(p, "h", 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.RecordsPerPage() != 8 {
		t.Fatalf("rpp=%d, want 8", h.RecordsPerPage())
	}
	for i := 0; i < 100; i++ {
		rid, err := h.Append([]float64{float64(i), float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		if rid != RID(i) {
			t.Fatalf("rid=%d, want %d", rid, i)
		}
	}
	if h.NumRecords() != 100 {
		t.Fatalf("nrec=%d", h.NumRecords())
	}
	rec, err := h.Get(57)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != 57 || rec[1] != 570 {
		t.Fatalf("rec=%v", rec)
	}
	if _, err := h.Get(100); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestHeapScanOrderAndValues(t *testing.T) {
	p := testPool(16, 4)
	h, _ := NewHeapFile(p, "h", 3)
	for i := 0; i < 37; i++ {
		if _, err := h.Append([]float64{float64(i), 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	var got []float64
	err := h.Scan(func(rid RID, rec []float64) error {
		if int64(rid) != int64(len(got)) {
			t.Fatalf("rid=%d at position %d", rid, len(got))
		}
		got = append(got, rec[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 {
		t.Fatalf("scanned %d records", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("got[%d]=%v", i, v)
		}
	}
}

func TestHeapScanIsMostlySequential(t *testing.T) {
	dev := disk.NewDevice(128)
	p := buffer.New(dev, 4)
	h, _ := NewHeapFile(p, "h", 2)
	for i := 0; i < 10000; i++ {
		if _, err := h.Append([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	if err := h.Scan(func(rid RID, rec []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.RandReads > 8 { // one random jump per extent boundary at worst
		t.Fatalf("heap scan: %d random reads of %d total", s.RandReads, s.BlocksRead)
	}
}

// TestHeapScanWithReadahead checks that a heap scan under the I/O
// scheduler produces the same records, loads its pages through the
// prefetcher, and stays sequential at the device.
func TestHeapScanWithReadahead(t *testing.T) {
	dev := disk.NewDevice(128)
	// The pool must hold at least two scan windows (2·scanWindow pages)
	// or the Prefetch clamp truncates the scan's hints.
	p := buffer.New(dev, 2*scanWindow)
	p.SetReadahead(buffer.ReadaheadConfig{Enabled: true})
	h, _ := NewHeapFile(p, "h", 2)
	const recs = 10000
	for i := 0; i < recs; i++ {
		if _, err := h.Append([]float64{float64(i), float64(2 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	p.ResetStats()
	next := 0.0
	if err := h.Scan(func(rid RID, rec []float64) error {
		if rec[0] != next || rec[1] != 2*next {
			t.Fatalf("rid %d: got %v, want [%v %v]", rid, rec, next, 2*next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != recs {
		t.Fatalf("scanned %v records, want %d", next, recs)
	}
	p.DrainPrefetch()
	ps := p.Stats()
	if ps.Prefetched == 0 || ps.PrefetchHits == 0 {
		t.Fatalf("readahead scan used no prefetch: %+v", ps)
	}
	s := dev.Stats()
	if s.RandReads > int64(h.Blocks()/scanWindow+8) {
		t.Fatalf("readahead heap scan: %d random reads of %d total", s.RandReads, s.BlocksRead)
	}
}

func TestHeapArityMismatch(t *testing.T) {
	p := testPool(16, 4)
	h, _ := NewHeapFile(p, "h", 2)
	if _, err := h.Append([]float64{1}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestHeapFree(t *testing.T) {
	p := testPool(16, 4)
	h, _ := NewHeapFile(p, "h", 2)
	for i := 0; i < 50; i++ {
		if _, err := h.Append([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	h.Free()
	if h.NumRecords() != 0 || p.Device().OwnedBlocks("h") != 0 {
		t.Fatal("free did not release")
	}
}

func TestBTreeInsertProbe(t *testing.T) {
	p := testPool(32, 8)
	bt, err := NewBTree(p, "idx", 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range perm {
		if err := bt.Insert([]float64{float64(k)}, RID(k*3)); err != nil {
			t.Fatal(err)
		}
	}
	if bt.NumKeys() != n {
		t.Fatalf("nkeys=%d, want %d", bt.NumKeys(), n)
	}
	if bt.Height() < 2 {
		t.Fatalf("height=%d, expected a multi-level tree", bt.Height())
	}
	for k := 0; k < n; k++ {
		rid, ok, err := bt.Probe([]float64{float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || rid != RID(k*3) {
			t.Fatalf("probe(%d)=(%d,%v), want (%d,true)", k, rid, ok, k*3)
		}
	}
	if _, ok, _ := bt.Probe([]float64{float64(n) + 5}); ok {
		t.Fatal("probe of absent key returned ok")
	}
}

func TestBTreeDuplicateInsertOverwrites(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	if err := bt.Insert([]float64{5}, 1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Insert([]float64{5}, 2); err != nil {
		t.Fatal(err)
	}
	if bt.NumKeys() != 1 {
		t.Fatalf("nkeys=%d, want 1", bt.NumKeys())
	}
	rid, ok, _ := bt.Probe([]float64{5})
	if !ok || rid != 2 {
		t.Fatalf("probe=(%d,%v), want (2,true)", rid, ok)
	}
}

func TestBTreeCompositeKeys(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 2)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if err := bt.Insert([]float64{float64(i), float64(j)}, RID(i*20+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rid, ok, _ := bt.Probe([]float64{7, 13})
	if !ok || rid != 7*20+13 {
		t.Fatalf("probe=(%d,%v)", rid, ok)
	}
}

func TestBTreeBulkLoadAndScan(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	const n = 5000
	if err := bt.BulkLoad(n, func(i int64) ([]float64, RID) {
		return []float64{float64(i)}, RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 1, 2499, 4998, 4999} {
		rid, ok, err := bt.Probe([]float64{float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || rid != RID(k) {
			t.Fatalf("probe(%d)=(%d,%v)", k, rid, ok)
		}
	}
	// Range scan from 4000 should see exactly 1000 keys in order.
	var seen []float64
	err := bt.ScanFrom([]float64{4000}, func(key []float64, rid RID) (bool, error) {
		seen = append(seen, key[0])
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1000 {
		t.Fatalf("scan saw %d keys, want 1000", len(seen))
	}
	if !sort.Float64sAreSorted(seen) {
		t.Fatal("scan out of order")
	}
	if seen[0] != 4000 || seen[999] != 4999 {
		t.Fatalf("scan range [%v,%v]", seen[0], seen[999])
	}
}

func TestBTreeScanEarlyStop(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	if err := bt.BulkLoad(100, func(i int64) ([]float64, RID) {
		return []float64{float64(i)}, RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	count := 0
	err := bt.ScanFrom([]float64{10}, func(key []float64, rid RID) (bool, error) {
		count++
		return count < 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count=%d, want 5", count)
	}
}

func TestBTreeEmptyProbe(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	if _, ok, err := bt.Probe([]float64{1}); err != nil || ok {
		t.Fatalf("empty probe=(%v,%v)", ok, err)
	}
	if err := bt.ScanFrom([]float64{0}, func(k []float64, r RID) (bool, error) {
		t.Fatal("scan of empty tree visited a key")
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeInsertAfterBulkLoad(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	if err := bt.BulkLoad(500, func(i int64) ([]float64, RID) {
		return []float64{float64(i * 2)}, RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	// Insert odd keys between existing ones.
	for i := 0; i < 500; i++ {
		if err := bt.Insert([]float64{float64(i*2 + 1)}, RID(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		rid, ok, _ := bt.Probe([]float64{float64(i*2 + 1)})
		if !ok || rid != RID(1000+i) {
			t.Fatalf("probe odd %d=(%d,%v)", i*2+1, rid, ok)
		}
		rid, ok, _ = bt.Probe([]float64{float64(i * 2)})
		if !ok || rid != RID(i) {
			t.Fatalf("probe even %d=(%d,%v)", i*2, rid, ok)
		}
	}
}

// Property: the tree agrees with a map model under random inserts,
// probes, and a final ordered scan.
func TestBTreeModelProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		p := testPool(32, 8)
		bt, err := NewBTree(p, "idx", 1)
		if err != nil {
			return false
		}
		model := make(map[float64]RID)
		for i, kv := range keys {
			k := float64(kv % 512)
			if err := bt.Insert([]float64{k}, RID(i)); err != nil {
				return false
			}
			model[k] = RID(i)
		}
		if bt.NumKeys() != int64(len(model)) {
			return false
		}
		for k, want := range model {
			rid, ok, err := bt.Probe([]float64{k})
			if err != nil || !ok || rid != want {
				return false
			}
		}
		// Full scan must be sorted and complete.
		var prev float64 = -1
		count := 0
		err = bt.ScanFrom([]float64{-1e300}, func(key []float64, rid RID) (bool, error) {
			if key[0] <= prev {
				t.Fatalf("scan out of order: %v after %v", key[0], prev)
			}
			prev = key[0]
			count++
			return true, nil
		})
		return err == nil && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeFree(t *testing.T) {
	p := testPool(32, 8)
	bt, _ := NewBTree(p, "idx", 1)
	if err := bt.BulkLoad(1000, func(i int64) ([]float64, RID) {
		return []float64{float64(i)}, RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	bt.Free()
	if p.Device().OwnedBlocks("idx") != 0 {
		t.Fatal("btree blocks not freed")
	}
}
