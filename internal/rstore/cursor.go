package rstore

// Cursor iterates a heap file record by record, holding a pin on one
// page at a time. It is the pull-based counterpart of HeapFile.Scan,
// needed by Volcano-style operators.
type Cursor struct {
	h    *HeapFile
	rid  int64
	page int
	rec  []float64
}

// NewCursor returns a cursor positioned before the first record.
func (h *HeapFile) NewCursor() *Cursor {
	return &Cursor{h: h, page: -1, rec: make([]float64, h.arity)}
}

// Next returns the next record, or ok=false at end of file. The returned
// slice is reused across calls.
func (c *Cursor) Next() (rec []float64, ok bool, err error) {
	if c.rid >= c.h.nrec {
		return nil, false, nil
	}
	page := int(c.rid / int64(c.h.rpp))
	slot := int(c.rid % int64(c.h.rpp))
	f, err := c.h.pool.Pin(c.h.blocks[page])
	if err != nil {
		return nil, false, err
	}
	copy(c.rec, f.Data[slot*c.h.arity:(slot+1)*c.h.arity])
	c.h.pool.Unpin(f)
	c.rid++
	return c.rec, true, nil
}

// Reset repositions the cursor at the beginning.
func (c *Cursor) Reset() { c.rid = 0 }
