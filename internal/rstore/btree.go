package rstore

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/disk"
)

// BTree is a B+tree mapping composite float64 keys to RIDs. Nodes live
// in disk blocks accessed through the buffer pool, so index probes charge
// real (simulated) I/O — the cost that makes index-nested-loop joins
// cheap for selective queries and expensive for full scans, exactly the
// trade-off RIOT-DB's deferred evaluation exploits (§4.1).
//
// Node layout inside a block of B float64 slots:
//
//	slot 0: kind (0 = leaf, 1 = internal)
//	slot 1: number of keys n
//	leaf:     slot 2: next-leaf block id (-1 if none), then n × (key…, rid)
//	internal: n × key…  separators followed by n+1 child block ids
type BTree struct {
	pool     *buffer.Pool
	name     string
	keyArity int
	root     disk.BlockID
	height   int
	nkeys    int64
	leafCap  int
	intCap   int
	nextIn   int
	nextID   disk.BlockID
	nodes    []disk.BlockID
}

const (
	kindLeaf     = 0.0
	kindInternal = 1.0
)

// NewBTree creates an empty tree over keys of keyArity columns.
func NewBTree(pool *buffer.Pool, name string, keyArity int) (*BTree, error) {
	if keyArity <= 0 {
		return nil, fmt.Errorf("rstore: key arity must be positive")
	}
	b := pool.Device().BlockElems()
	// One entry of headroom is reserved in leaves: the insert path writes
	// the overflowing entry in place before splitting.
	leafCap := (b-3)/(keyArity+1) - 1
	intCap := (b - 3) / (keyArity + 1) // keys + children, conservatively
	if leafCap < 2 || intCap < 3 {
		return nil, fmt.Errorf("rstore: block size %d too small for key arity %d", b, keyArity)
	}
	t := &BTree{pool: pool, name: name, keyArity: keyArity, leafCap: leafCap, intCap: intCap}
	root, err := t.newNode(kindLeaf)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = 1
	return t, nil
}

// Name returns the tree name (disk owner).
func (t *BTree) Name() string { return t.name }

// NumKeys returns the number of entries.
func (t *BTree) NumKeys() int64 { return t.nkeys }

// Height returns the number of levels.
func (t *BTree) Height() int { return t.height }

// Blocks returns an upper bound on the blocks allocated to the tree.
func (t *BTree) Blocks() int { return t.pool.Device().OwnedBlocks(t.name) }

func (t *BTree) grow() disk.BlockID {
	if t.nextIn == 0 {
		t.nextID = t.pool.Device().Alloc(t.name, extentBlocks)
		t.nextIn = extentBlocks
	}
	id := t.nextID
	t.nextID++
	t.nextIn--
	t.nodes = append(t.nodes, id)
	return id
}

func (t *BTree) newNode(kind float64) (disk.BlockID, error) {
	id := t.grow()
	f, err := t.pool.PinNew(id)
	if err != nil {
		return 0, err
	}
	f.Data[0] = kind
	f.Data[1] = 0
	if kind == kindLeaf {
		f.Data[2] = -1
	}
	f.MarkDirty()
	t.pool.Unpin(f)
	return id, nil
}

// compareKeys orders composite keys lexicographically.
func compareKeys(a, b []float64) int {
	for i := range a {
		if a[i] < b[i] {
			return -1
		}
		if a[i] > b[i] {
			return 1
		}
	}
	return 0
}

// leaf accessors; k is the key arity.

func leafKey(data []float64, k, i int) []float64 { return data[3+i*(k+1) : 3+i*(k+1)+k] }
func leafRID(data []float64, k, i int) RID       { return RID(data[3+i*(k+1)+k]) }
func leafSetEntry(data []float64, k, i int, key []float64, rid RID) {
	copy(data[3+i*(k+1):], key)
	data[3+i*(k+1)+k] = float64(rid)
}

// internal node accessors. Keys first (n of them), then n+1 children.

func intKey(data []float64, k, cap, i int) []float64 { return data[2+i*k : 2+i*k+k] }
func intChild(data []float64, k, cap, i int) disk.BlockID {
	return disk.BlockID(data[2+cap*k+i])
}
func intSetKey(data []float64, k, cap, i int, key []float64) { copy(data[2+i*k:], key) }
func intSetChild(data []float64, k, cap, i int, c disk.BlockID) {
	data[2+cap*k+i] = float64(c)
}

// Probe returns the RID stored under key, if present.
func (t *BTree) Probe(key []float64) (RID, bool, error) {
	if len(key) != t.keyArity {
		return 0, false, fmt.Errorf("rstore: probe key arity %d, want %d", len(key), t.keyArity)
	}
	id := t.root
	for {
		f, err := t.pool.Pin(id)
		if err != nil {
			return 0, false, err
		}
		if f.Data[0] == kindLeaf {
			n := int(f.Data[1])
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if compareKeys(leafKey(f.Data, t.keyArity, mid), key) < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < n && compareKeys(leafKey(f.Data, t.keyArity, lo), key) == 0 {
				rid := leafRID(f.Data, t.keyArity, lo)
				t.pool.Unpin(f)
				return rid, true, nil
			}
			t.pool.Unpin(f)
			return 0, false, nil
		}
		n := int(f.Data[1])
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if compareKeys(intKey(f.Data, t.keyArity, t.intCap, mid), key) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		next := intChild(f.Data, t.keyArity, t.intCap, lo)
		t.pool.Unpin(f)
		id = next
	}
}

// Insert adds key → rid. Duplicate keys overwrite the stored RID.
func (t *BTree) Insert(key []float64, rid RID) error {
	if len(key) != t.keyArity {
		return fmt.Errorf("rstore: insert key arity %d, want %d", len(key), t.keyArity)
	}
	sepKey, sepChild, grew, replaced, err := t.insertAt(t.root, key, rid)
	if err != nil {
		return err
	}
	if grew {
		// Root split: make a new internal root.
		newRoot, err := t.newNode(kindInternal)
		if err != nil {
			return err
		}
		f, err := t.pool.Pin(newRoot)
		if err != nil {
			return err
		}
		f.Data[1] = 1
		intSetKey(f.Data, t.keyArity, t.intCap, 0, sepKey)
		intSetChild(f.Data, t.keyArity, t.intCap, 0, t.root)
		intSetChild(f.Data, t.keyArity, t.intCap, 1, sepChild)
		f.MarkDirty()
		t.pool.Unpin(f)
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.nkeys++
	}
	return nil
}

// insertAt inserts into the subtree rooted at id. If the node split, it
// returns the separator key and new right sibling.
func (t *BTree) insertAt(id disk.BlockID, key []float64, rid RID) (sepKey []float64, sepChild disk.BlockID, grew, replaced bool, err error) {
	f, err := t.pool.Pin(id)
	if err != nil {
		return nil, 0, false, false, err
	}
	k := t.keyArity
	if f.Data[0] == kindLeaf {
		n := int(f.Data[1])
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if compareKeys(leafKey(f.Data, k, mid), key) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < n && compareKeys(leafKey(f.Data, k, lo), key) == 0 {
			leafSetEntry(f.Data, k, lo, key, rid)
			f.MarkDirty()
			t.pool.Unpin(f)
			return nil, 0, false, true, nil
		}
		// Shift entries right and insert.
		for i := n; i > lo; i-- {
			copy(f.Data[3+i*(k+1):3+(i+1)*(k+1)], f.Data[3+(i-1)*(k+1):3+i*(k+1)])
		}
		leafSetEntry(f.Data, k, lo, key, rid)
		f.Data[1] = float64(n + 1)
		f.MarkDirty()
		if n+1 <= t.leafCap {
			t.pool.Unpin(f)
			return nil, 0, false, false, nil
		}
		// Split the leaf.
		rightID, err := t.newNode(kindLeaf)
		if err != nil {
			t.pool.Unpin(f)
			return nil, 0, false, false, err
		}
		rf, err := t.pool.Pin(rightID)
		if err != nil {
			t.pool.Unpin(f)
			return nil, 0, false, false, err
		}
		total := n + 1
		left := total / 2
		rightN := total - left
		for i := 0; i < rightN; i++ {
			copy(rf.Data[3+i*(k+1):3+(i+1)*(k+1)], f.Data[3+(left+i)*(k+1):3+(left+i+1)*(k+1)])
		}
		rf.Data[1] = float64(rightN)
		rf.Data[2] = f.Data[2] // next-leaf chain
		f.Data[2] = float64(rightID)
		f.Data[1] = float64(left)
		sep := make([]float64, k)
		copy(sep, leafKey(rf.Data, k, 0))
		rf.MarkDirty()
		f.MarkDirty()
		t.pool.Unpin(rf)
		t.pool.Unpin(f)
		return sep, rightID, true, false, nil
	}

	// Internal node: descend.
	n := int(f.Data[1])
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if compareKeys(intKey(f.Data, k, t.intCap, mid), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	child := intChild(f.Data, k, t.intCap, lo)
	t.pool.Unpin(f) // release during recursion to respect pin budget
	csep, cchild, cgrew, creplaced, err := t.insertAt(child, key, rid)
	if err != nil || !cgrew {
		return nil, 0, false, creplaced, err
	}
	f, err = t.pool.Pin(id)
	if err != nil {
		return nil, 0, false, false, err
	}
	n = int(f.Data[1])
	// Re-find the insertion point (the node cannot have changed, but the
	// code stays correct if it someday can).
	lo, hi = 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if compareKeys(intKey(f.Data, k, t.intCap, mid), csep) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := n; i > lo; i-- {
		intSetKey(f.Data, k, t.intCap, i, intKey(f.Data, k, t.intCap, i-1))
	}
	for i := n + 1; i > lo+1; i-- {
		intSetChild(f.Data, k, t.intCap, i, intChild(f.Data, k, t.intCap, i-1))
	}
	intSetKey(f.Data, k, t.intCap, lo, csep)
	intSetChild(f.Data, k, t.intCap, lo+1, cchild)
	f.Data[1] = float64(n + 1)
	f.MarkDirty()
	n++
	if n <= t.intCap-1 {
		t.pool.Unpin(f)
		return nil, 0, false, creplaced, nil
	}
	// Split internal node: middle key moves up.
	rightID, err := t.newNode(kindInternal)
	if err != nil {
		t.pool.Unpin(f)
		return nil, 0, false, false, err
	}
	rf, err := t.pool.Pin(rightID)
	if err != nil {
		t.pool.Unpin(f)
		return nil, 0, false, false, err
	}
	mid := n / 2
	sep := make([]float64, k)
	copy(sep, intKey(f.Data, k, t.intCap, mid))
	rightN := n - mid - 1
	for i := 0; i < rightN; i++ {
		intSetKey(rf.Data, k, t.intCap, i, intKey(f.Data, k, t.intCap, mid+1+i))
	}
	for i := 0; i <= rightN; i++ {
		intSetChild(rf.Data, k, t.intCap, i, intChild(f.Data, k, t.intCap, mid+1+i))
	}
	rf.Data[1] = float64(rightN)
	f.Data[1] = float64(mid)
	rf.MarkDirty()
	f.MarkDirty()
	t.pool.Unpin(rf)
	t.pool.Unpin(f)
	return sep, rightID, true, creplaced, nil
}

// BulkLoad builds the tree from entries already sorted by key, replacing
// the current contents. This is how RIOT-DB loads vectors: elements
// arrive in index order, so the index is built bottom-up with sequential
// writes only.
func (t *BTree) BulkLoad(n int64, entry func(i int64) (key []float64, rid RID)) error {
	k := t.keyArity
	fill := t.leafCap // pack leaves full: loads are final in this system
	type levelNode struct {
		firstKey []float64
		id       disk.BlockID
	}
	var leaves []levelNode
	var prevLeaf disk.BlockID = -1
	for i := int64(0); i < n; {
		id, err := t.newNode(kindLeaf)
		if err != nil {
			return err
		}
		f, err := t.pool.Pin(id)
		if err != nil {
			return err
		}
		cnt := 0
		var first []float64
		for cnt < fill && i < n {
			key, rid := entry(i)
			if cnt == 0 {
				first = append([]float64(nil), key...)
			}
			leafSetEntry(f.Data, k, cnt, key, rid)
			cnt++
			i++
		}
		f.Data[1] = float64(cnt)
		f.Data[2] = -1
		f.MarkDirty()
		t.pool.Unpin(f)
		if prevLeaf >= 0 {
			pf, err := t.pool.Pin(prevLeaf)
			if err != nil {
				return err
			}
			pf.Data[2] = float64(id)
			pf.MarkDirty()
			t.pool.Unpin(pf)
		}
		prevLeaf = id
		leaves = append(leaves, levelNode{firstKey: first, id: id})
	}
	if len(leaves) == 0 {
		root, err := t.newNode(kindLeaf)
		if err != nil {
			return err
		}
		t.root = root
		t.height = 1
		t.nkeys = 0
		return nil
	}
	level := leaves
	height := 1
	fanout := t.intCap - 1
	for len(level) > 1 {
		var next []levelNode
		for i := 0; i < len(level); {
			id, err := t.newNode(kindInternal)
			if err != nil {
				return err
			}
			f, err := t.pool.Pin(id)
			if err != nil {
				return err
			}
			group := len(level) - i
			if group > fanout+1 {
				group = fanout + 1
			}
			intSetChild(f.Data, k, t.intCap, 0, level[i].id)
			for c := 1; c < group; c++ {
				intSetKey(f.Data, k, t.intCap, c-1, level[i+c].firstKey)
				intSetChild(f.Data, k, t.intCap, c, level[i+c].id)
			}
			f.Data[1] = float64(group - 1)
			f.MarkDirty()
			t.pool.Unpin(f)
			next = append(next, levelNode{firstKey: level[i].firstKey, id: id})
			i += group
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.nkeys = n
	return nil
}

// ScanFrom visits entries with key >= from in key order until f returns
// false or the tree is exhausted.
func (t *BTree) ScanFrom(from []float64, f func(key []float64, rid RID) (bool, error)) error {
	id := t.root
	for {
		fr, err := t.pool.Pin(id)
		if err != nil {
			return err
		}
		if fr.Data[0] == kindLeaf {
			t.pool.Unpin(fr)
			break
		}
		n := int(fr.Data[1])
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if compareKeys(intKey(fr.Data, t.keyArity, t.intCap, mid), from) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		next := intChild(fr.Data, t.keyArity, t.intCap, lo)
		t.pool.Unpin(fr)
		id = next
	}
	key := make([]float64, t.keyArity)
	for id >= 0 {
		fr, err := t.pool.Pin(id)
		if err != nil {
			return err
		}
		n := int(fr.Data[1])
		for i := 0; i < n; i++ {
			copy(key, leafKey(fr.Data, t.keyArity, i))
			if compareKeys(key, from) < 0 {
				continue
			}
			ok, err := f(key, leafRID(fr.Data, t.keyArity, i))
			if err != nil || !ok {
				t.pool.Unpin(fr)
				return err
			}
		}
		next := disk.BlockID(fr.Data[2])
		t.pool.Unpin(fr)
		id = next
	}
	return nil
}

// Free releases the tree's disk space. No node may be pinned.
func (t *BTree) Free() {
	for _, id := range t.nodes {
		t.pool.Invalidate(id)
	}
	t.pool.Device().Free(t.name)
	t.nodes = nil
	t.nkeys = 0
}
