// Package rstore is the record-oriented storage layer backing RIOT-DB's
// relational tables: heap files of fixed-size records plus B+tree
// indexes, in the spirit of MyISAM's data file + index file split.
//
// The paper's strawman analysis (§4) observes that "storing array
// indexes in tables incurs significant storage and processing overhead,
// which grows linearly with the number of dimensions". That overhead is
// real here: a dbvector element costs 2 stored numbers (I, V) and a
// dbmatrix element 3 (I, J, V), versus exactly 1 in the tiled array
// store — which is precisely the gap the next-generation RIOT closes.
package rstore

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/disk"
)

// extentBlocks is the unit of disk allocation for heap files and trees.
// Allocating in extents keeps a file's blocks mostly contiguous even when
// several files grow at once, so sequential scans are charged as
// sequential I/O.
const extentBlocks = 32

// RID locates a record inside a heap file.
type RID int64

// HeapFile stores fixed-arity records of float64 columns, append-only,
// packed into blocks. Records are addressed by dense RIDs in insertion
// order, so a file that is loaded in key order is clustered by key.
type HeapFile struct {
	pool   *buffer.Pool
	name   string
	arity  int
	rpp    int // records per page
	nrec   int64
	blocks []disk.BlockID
	nextIn int // extent slots remaining
	nextID disk.BlockID
}

// NewHeapFile creates an empty heap file of records with arity columns.
func NewHeapFile(pool *buffer.Pool, name string, arity int) (*HeapFile, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("rstore: arity must be positive, got %d", arity)
	}
	b := pool.Device().BlockElems()
	if arity > b {
		return nil, fmt.Errorf("rstore: record arity %d exceeds block capacity %d", arity, b)
	}
	return &HeapFile{pool: pool, name: name, arity: arity, rpp: b / arity}, nil
}

// Name returns the file name (disk owner).
func (h *HeapFile) Name() string { return h.name }

// Arity returns the number of columns per record.
func (h *HeapFile) Arity() int { return h.arity }

// NumRecords returns the record count.
func (h *HeapFile) NumRecords() int64 { return h.nrec }

// Blocks returns the number of blocks holding records.
func (h *HeapFile) Blocks() int { return len(h.blocks) }

// RecordsPerPage returns the packing factor.
func (h *HeapFile) RecordsPerPage() int { return h.rpp }

// grow appends one block to the file, drawing from the current extent.
func (h *HeapFile) grow() disk.BlockID {
	if h.nextIn == 0 {
		h.nextID = h.pool.Device().Alloc(h.name, extentBlocks)
		h.nextIn = extentBlocks
	}
	id := h.nextID
	h.nextID++
	h.nextIn--
	h.blocks = append(h.blocks, id)
	return id
}

// Append adds a record and returns its RID.
func (h *HeapFile) Append(rec []float64) (RID, error) {
	if len(rec) != h.arity {
		return 0, fmt.Errorf("rstore: record arity %d, want %d", len(rec), h.arity)
	}
	slot := int(h.nrec % int64(h.rpp))
	var id disk.BlockID
	var f *buffer.Frame
	var err error
	if slot == 0 {
		id = h.grow()
		f, err = h.pool.PinNew(id)
	} else {
		id = h.blocks[len(h.blocks)-1]
		f, err = h.pool.Pin(id)
	}
	if err != nil {
		return 0, err
	}
	copy(f.Data[slot*h.arity:], rec)
	f.MarkDirty()
	h.pool.Unpin(f)
	rid := RID(h.nrec)
	h.nrec++
	return rid, nil
}

// Get reads the record at rid into a fresh slice.
func (h *HeapFile) Get(rid RID) ([]float64, error) {
	if rid < 0 || int64(rid) >= h.nrec {
		return nil, fmt.Errorf("rstore: rid %d outside file %q of %d records", rid, h.name, h.nrec)
	}
	page := int(int64(rid) / int64(h.rpp))
	slot := int(int64(rid) % int64(h.rpp))
	f, err := h.pool.Pin(h.blocks[page])
	if err != nil {
		return nil, err
	}
	rec := make([]float64, h.arity)
	copy(rec, f.Data[slot*h.arity:(slot+1)*h.arity])
	h.pool.Unpin(f)
	return rec, nil
}

// scanWindow is how many heap pages one Scan readahead hint covers.
// Extent allocation keeps a window's pages mostly contiguous, so each
// hint becomes a handful of vectored sequential reads.
const scanWindow = 16

// Scan visits every record in RID order. The rec slice passed to f is
// reused between calls; copy it to retain. When the pool's I/O
// scheduler is enabled the scan announces upcoming pages a window at a
// time, so the heap is streamed with bulky sequential reads instead of
// one page per request.
func (h *HeapFile) Scan(f func(rid RID, rec []float64) error) error {
	readahead := h.pool.ReadaheadEnabled()
	rec := make([]float64, h.arity)
	var rid RID
	for p, id := range h.blocks {
		if readahead && p%scanWindow == 0 {
			h.pool.Prefetch(h.blocks[p:min(p+scanWindow, len(h.blocks))])
		}
		fr, err := h.pool.Pin(id)
		if err != nil {
			return err
		}
		n := int64(h.rpp)
		if rest := h.nrec - int64(p)*int64(h.rpp); rest < n {
			n = rest
		}
		for s := 0; s < int(n); s++ {
			copy(rec, fr.Data[s*h.arity:(s+1)*h.arity])
			if err := f(rid, rec); err != nil {
				h.pool.Unpin(fr)
				return err
			}
			rid++
		}
		h.pool.Unpin(fr)
	}
	return nil
}

// Flush writes dirty pages back to the device.
func (h *HeapFile) Flush() error { return h.pool.FlushAll() }

// Free drops resident pages and releases the file's disk space.
func (h *HeapFile) Free() {
	for _, id := range h.blocks {
		h.pool.Invalidate(id)
	}
	// Invalidate unused extent tail too: blocks between nextID and the
	// end of the extent were never pinned, so nothing to drop there.
	h.pool.Device().Free(h.name)
	h.blocks = nil
	h.nrec = 0
	h.nextIn = 0
}
