package engine_test

import (
	"testing"

	"riot/internal/engine"
	"riot/internal/rlang"
)

// example1 is the paper's Example 1 in riotscript, the workload whose
// I/O counts the paper (and this repo's bench suite) treat as ground
// truth.
const example1 = `
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
`

func runExample1Workers(t *testing.T, workers int, n int64) (*engine.RIOT, string) {
	t.Helper()
	e := engine.NewRIOTWorkers(1024, n, engine.DefaultTimeModel, workers)
	in := rlang.New(e)
	x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
	if err != nil {
		t.Fatal(err)
	}
	in.SetVector("x", x)
	in.SetVector("y", y)
	e.ResetStats()
	e.Executor().Pool().ResetStats()
	if err := in.Run(example1); err != nil {
		t.Fatal(err)
	}
	return e, in.Out.String()
}

// TestWorkers1ReproducesSeedIOCounts pins the exact buffer-pool counters
// of the original single-threaded engine on Example 1. These golden
// values were captured from the seed implementation before the pool was
// sharded; Workers: 1 must reproduce them forever — it is the
// configuration every paper experiment runs under.
func TestWorkers1ReproducesSeedIOCounts(t *testing.T) {
	golden := []struct {
		n                                int64
		hits, misses, evictions, flushes int64
	}{
		{1 << 17, 78, 131, 131, 1},
		{1 << 18, 84, 125, 125, 1},
	}
	for _, g := range golden {
		e, _ := runExample1Workers(t, 1, g.n)
		st := e.Executor().Pool().Stats()
		if st.Hits != g.hits || st.Misses != g.misses || st.Evictions != g.evictions || st.Flushes != g.flushes {
			t.Errorf("n=%d: hits/misses/evictions/flushes = %d/%d/%d/%d, want %d/%d/%d/%d (seed golden)",
				g.n, st.Hits, st.Misses, st.Evictions, st.Flushes,
				g.hits, g.misses, g.evictions, g.flushes)
		}
		if got := e.Executor().Pool().Shards(); got != 1 {
			t.Errorf("Workers=1 pool has %d shards, want 1", got)
		}
	}
}

// TestReadaheadOffReproducesSeedIOCounters pins the exact device
// counters of Example 1 under the paper configuration — Workers: 1,
// Readahead off (the Config zero values). The I/O scheduler must be
// invisible until it is switched on: these are the numbers the seed
// produced, and they must never drift.
func TestReadaheadOffReproducesSeedIOCounters(t *testing.T) {
	golden := []struct {
		n                   int64
		reads, randReads    int64
		writes, randWrites  int64
		seqReads, seqWrites int64
	}{
		{1 << 17, 128, 128, 1, 1, 0, 0},
		{1 << 18, 122, 122, 1, 1, 0, 0},
	}
	for _, g := range golden {
		e, _ := runExample1Workers(t, 1, g.n)
		st := e.Executor().Pool().Device().Stats()
		if st.BlocksRead != g.reads || st.RandReads != g.randReads ||
			st.SeqReads != g.seqReads || st.BlocksWritten != g.writes ||
			st.RandWrites != g.randWrites || st.SeqWrites != g.seqWrites {
			t.Errorf("n=%d: device counters read=%d (seq=%d rand=%d) written=%d (seq=%d rand=%d), want read=%d (seq=%d rand=%d) written=%d (seq=%d rand=%d) (seed golden)",
				g.n, st.BlocksRead, st.SeqReads, st.RandReads,
				st.BlocksWritten, st.SeqWrites, st.RandWrites,
				g.reads, g.seqReads, g.randReads, g.writes, g.seqWrites, g.randWrites)
		}
		if ps := e.Executor().Pool().Stats(); ps.Prefetched != 0 || ps.PrefetchHits != 0 || ps.WastedPrefetch != 0 {
			t.Errorf("n=%d: scheduler counters %d/%d/%d with readahead off, want 0/0/0",
				g.n, ps.Prefetched, ps.PrefetchHits, ps.WastedPrefetch)
		}
	}
}

// TestReadaheadMatchesSequentialOutput runs Example 1 with the I/O
// scheduler on: values must be identical to the scheduler-off run (the
// scheduler may only move I/O around, never change data).
func TestReadaheadMatchesSequentialOutput(t *testing.T) {
	const n = 1 << 18
	_, want := runExample1Workers(t, 1, n)
	for _, workers := range []int{1, 4} {
		e := engine.NewRIOTConfigured(1024, n, engine.DefaultTimeModel,
			engine.RIOTOptions{Workers: workers, Readahead: true})
		in := rlang.New(e)
		x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
		if err != nil {
			t.Fatal(err)
		}
		y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
		if err != nil {
			t.Fatal(err)
		}
		in.SetVector("x", x)
		in.SetVector("y", y)
		if err := in.Run(example1); err != nil {
			t.Fatal(err)
		}
		if got := in.Out.String(); got != want {
			t.Errorf("workers=%d readahead: output differs\n got: %.120s\nwant: %.120s", workers, got, want)
		}
	}
}

// TestParallelEngineMatchesSequential runs Example 1 with several worker
// counts: the printed result (the gather of 100 sampled distances) must
// be identical to the sequential engine's.
func TestParallelEngineMatchesSequential(t *testing.T) {
	const n = 1 << 18
	_, want := runExample1Workers(t, 1, n)
	for _, w := range []int{2, 4} {
		e, got := runExample1Workers(t, w, n)
		if got != want {
			t.Errorf("workers=%d: output differs from sequential\n got: %.120s\nwant: %.120s", w, got, want)
		}
		if e.Executor().Pool().Shards() < 2 {
			t.Errorf("workers=%d pool has %d shards, want >= 2", w, e.Executor().Pool().Shards())
		}
	}
}

// TestParallelSum checks a full-length parallel reduction end to end
// through the engine interface.
func TestParallelSum(t *testing.T) {
	const n = 1 << 16
	sum := func(workers int) float64 {
		e := engine.NewRIOTWorkers(1024, 1<<14, engine.DefaultTimeModel, workers)
		x, err := e.NewVector(n, func(i int64) float64 { return float64(i) })
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Sum(x)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := float64(n) * float64(n-1) / 2
	if got := sum(1); got != want {
		t.Fatalf("sequential sum=%v, want %v", got, want)
	}
	if got := sum(4); got != want {
		t.Fatalf("parallel sum=%v, want %v", got, want)
	}
}
