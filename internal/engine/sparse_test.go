package engine

import (
	"strings"
	"testing"
)

// bandMatrix generates a pathlengths-style banded adjacency pattern:
// nonzeros within `band` of the diagonal, zero elsewhere — most square
// tiles empty.
func bandMatrix(n, band int64) func(i, j int64) float64 {
	return func(i, j int64) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d != 0 && d <= band {
			return 1
		}
		return 0
	}
}

// TestSparseMatMulEndToEnd runs A %*% A through the engine twice — dense
// operands and sparse() operands — and requires identical values with
// strictly fewer block reads on the sparse path.
func TestSparseMatMulEndToEnd(t *testing.T) {
	const n = 512
	run := func(sparsify bool) ([]float64, int64, *RIOT) {
		r := NewRIOT(1024, 1<<16, DefaultTimeModel)
		a, err := r.NewMatrix(n, n, bandMatrix(n, 2))
		if err != nil {
			t.Fatal(err)
		}
		if sparsify {
			a, err = r.ToSparse(a)
			if err != nil {
				t.Fatal(err)
			}
		}
		p, err := r.MatMul(a, a)
		if err != nil {
			t.Fatal(err)
		}
		r.ResetStats()
		vals, err := r.Fetch(p, -1)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Pool().Device().Stats()
		return vals, st.BlocksRead, r
	}
	dense, denseReads, r1 := run(false)
	sp, sparseReads, r2 := run(true)
	defer r1.Close()
	defer r2.Close()
	if len(dense) != len(sp) {
		t.Fatalf("result sizes differ: %d vs %d", len(dense), len(sp))
	}
	for i := range dense {
		if dense[i] != sp[i] {
			t.Fatalf("[%d] dense=%g sparse=%g", i, dense[i], sp[i])
		}
	}
	if sparseReads*4 > denseReads {
		t.Fatalf("sparse path read %d blocks, dense %d: want at least 4x fewer", sparseReads, denseReads)
	}
}

// TestSparseExplainReportsKernel is the acceptance criterion: Explain on
// a sparse matmul must name the sparse kernel and carry an nnz-based
// block estimate.
func TestSparseExplainReportsKernel(t *testing.T) {
	r := NewRIOT(1024, 1<<16, DefaultTimeModel)
	defer r.Close()
	a, err := r.NewMatrix(256, 256, bandMatrix(256, 2))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := r.ToSparse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.MatMul(sa, sa)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sparse×sparse") {
		t.Fatalf("Explain missing sparse kernel:\n%s", out)
	}
	if !strings.Contains(out, "nnz=") {
		t.Fatalf("Explain missing nnz estimate:\n%s", out)
	}
	// Mixed sparse×dense picks the one-sided kernel.
	q, err := r.MatMul(sa, a)
	if err != nil {
		t.Fatal(err)
	}
	out, err = r.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sparse×dense") {
		t.Fatalf("Explain missing sparse×dense kernel:\n%s", out)
	}
}

// TestSparseVectorFusionSkipsIO pins the union/intersection fusion win:
// multiplying a dense stream by a mostly-empty sparse vector must read
// far fewer blocks than the dense×dense pipeline, and sum() over it must
// agree exactly.
func TestSparseVectorFusionSkipsIO(t *testing.T) {
	const n = 1 << 15
	gen := func(i int64) float64 {
		// Nonzeros only in the first of every 16 blocks of 1024.
		if (i/1024)%16 == 0 {
			return float64(i%7 + 1)
		}
		return 0
	}
	run := func(sparsify bool) (float64, int64, *RIOT) {
		r := NewRIOT(1024, 1<<14, DefaultTimeModel)
		mask, err := r.NewVector(n, gen)
		if err != nil {
			t.Fatal(err)
		}
		x, err := r.NewVector(n, func(i int64) float64 { return float64(i%13 + 1) })
		if err != nil {
			t.Fatal(err)
		}
		if sparsify {
			mask, err = r.ToSparse(mask)
			if err != nil {
				t.Fatal(err)
			}
		}
		prod, err := r.Arith("*", mask, x)
		if err != nil {
			t.Fatal(err)
		}
		r.ResetStats()
		s, err := r.Sum(prod)
		if err != nil {
			t.Fatal(err)
		}
		return s, r.Pool().Device().Stats().BlocksRead, r
	}
	wantSum, denseReads, r1 := run(false)
	gotSum, sparseReads, r2 := run(true)
	defer r1.Close()
	defer r2.Close()
	if gotSum != wantSum {
		t.Fatalf("sum: sparse %g, dense %g", gotSum, wantSum)
	}
	// 15 of 16 mask chunks are empty: the intersection rule skips both
	// the mask's chunks and x's blocks there.
	if sparseReads*4 > denseReads {
		t.Fatalf("sparse pipeline read %d blocks, dense %d: want at least 4x fewer", sparseReads, denseReads)
	}
}

// TestSparseConversionsAndNNZ exercises ToSparse/ToDense/NNZ round trips
// on vectors and matrices, including the all-zero and full cases.
func TestSparseConversionsAndNNZ(t *testing.T) {
	r := NewRIOT(64, 1<<12, DefaultTimeModel)
	defer r.Close()
	v, err := r.NewVector(300, func(i int64) float64 {
		if i%3 == 0 {
			return float64(i + 1)
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := r.NNZ(v)
	if err != nil {
		t.Fatal(err)
	}
	if nv != 100 {
		t.Fatalf("dense vector nnz = %d, want 100", nv)
	}
	sv, err := r.ToSparse(v)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.NNZ(sv); n != 100 {
		t.Fatalf("sparse vector nnz = %d, want 100", n)
	}
	back, err := r.ToDense(sv)
	if err != nil {
		t.Fatal(err)
	}
	wv, err := r.Fetch(v, -1)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := r.Fetch(back, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wv {
		if wv[i] != bv[i] {
			t.Fatalf("vector round trip [%d] = %g, want %g", i, bv[i], wv[i])
		}
	}
	// Matrix: all-zero converts to zero blocks; nnz through a product.
	z, err := r.NewMatrix(32, 32, func(i, j int64) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	sz, err := r.ToSparse(z)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.NNZ(sz); n != 0 {
		t.Fatalf("all-zero matrix nnz = %d", n)
	}
	p, err := r.MatMul(sz, sz)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.NNZ(p); err != nil || n != 0 {
		t.Fatalf("zero product nnz = %d (%v)", n, err)
	}
	vals, err := r.Fetch(p, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range vals {
		if x != 0 {
			t.Fatalf("zero product [%d] = %g", i, x)
		}
	}
}

// TestDensifiedSparseProductFreed pins the resource contract of the
// dense(S %*% S) path: the sparse intermediate behind the densified
// result is a temporary and its extent must be freed, so repeated
// evaluations grow the device by the densified result only (one owner
// per evaluation, not two).
func TestDensifiedSparseProductFreed(t *testing.T) {
	r := NewRIOT(1024, 1<<16, DefaultTimeModel)
	defer r.Close()
	a, err := r.NewMatrix(128, 128, bandMatrix(128, 1))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := r.ToSparse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.MatMul(sa, sa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(p, 1); err != nil { // densifies the sparse product
		t.Fatal(err)
	}
	base := len(r.dev.Owners())
	for i := 0; i < 3; i++ {
		if _, err := r.Fetch(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	grown := len(r.dev.Owners()) - base
	if grown != 3 {
		t.Fatalf("3 evaluations grew the device by %d owners, want 3 (densified results only; sparse temps must be freed)", grown)
	}
}

// TestNNZAndDiscardDoNotGrowDevice pins the measurement APIs' resource
// contract: repeated NNZ and ForceDiscard evaluations of the same
// product free their intermediates, so the device owner set stays flat.
func TestNNZAndDiscardDoNotGrowDevice(t *testing.T) {
	r := NewRIOT(1024, 1<<16, DefaultTimeModel)
	defer r.Close()
	a, err := r.NewMatrix(128, 128, bandMatrix(128, 1))
	if err != nil {
		t.Fatal(err)
	}
	sa, err := r.ToSparse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.MatMul(sa, sa)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := r.MatMul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	warm := func() {
		if _, err := r.NNZ(p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.NNZ(dp); err != nil {
			t.Fatal(err)
		}
		if err := r.ForceDiscard(p); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	base := len(r.dev.Owners())
	for i := 0; i < 3; i++ {
		warm()
	}
	if grown := len(r.dev.Owners()) - base; grown != 0 {
		t.Fatalf("repeated NNZ/ForceDiscard grew the device by %d owners, want 0", grown)
	}
}
