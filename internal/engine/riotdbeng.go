package engine

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/relation"
	"riot/internal/riotdb"
	"riot/internal/sql"
)

// RIOTDB adapts the database-backed prototype (strawman, matnamed, or
// full deferral) to the Engine interface.
type RIOTDB struct {
	eng  *riotdb.Engine
	dev  *disk.Device
	time TimeModel
	name string
}

// NewRIOTDB creates a RIOT-DB engine over a fresh simulated database
// with blocks of blockElems numbers and memElems numbers of memory
// (buffer pool plus operator working memory, like the paper's shared cap
// for R + MySQL).
func NewRIOTDB(mode riotdb.Mode, blockElems int, memElems int64, tm TimeModel) *RIOTDB {
	dev := disk.NewDevice(blockElems)
	pool := buffer.NewWithMemory(dev, memElems)
	db := sql.NewDatabase(relation.NewContext(pool, memElems))
	return &RIOTDB{
		eng:  riotdb.New(db, mode),
		dev:  dev,
		time: tm,
		name: "riot-db/" + mode.String(),
	}
}

// Name implements Engine.
func (r *RIOTDB) Name() string { return r.name }

// Inner exposes the riotdb engine for white-box tests.
func (r *RIOTDB) Inner() *riotdb.Engine { return r.eng }

func (r *RIOTDB) obj(v Value) (*riotdb.Object, error) {
	if o, ok := v.(*riotdb.Object); ok {
		return o, nil
	}
	return nil, fmt.Errorf("%s: not a database object: %T", r.name, v)
}

// NewVector implements Engine.
func (r *RIOTDB) NewVector(n int64, gen func(int64) float64) (Value, error) {
	return r.eng.NewVector(n, gen)
}

// NewMatrix implements Engine.
func (r *RIOTDB) NewMatrix(rows, cols int64, gen func(i, j int64) float64) (Value, error) {
	return r.eng.NewMatrix(rows, cols, gen)
}

// Sample implements Engine.
func (r *RIOTDB) Sample(n, k int64, seed uint64) (Value, error) {
	return r.eng.Sample(n, k, seed)
}

// Arith implements Engine.
func (r *RIOTDB) Arith(op string, a, b Value) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	bo, err := r.obj(b)
	if err != nil {
		return nil, err
	}
	return r.eng.Arith(op, ao, bo)
}

// ArithScalar implements Engine.
func (r *RIOTDB) ArithScalar(op string, a Value, s float64, scalarLeft bool) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	return r.eng.ArithScalar(op, ao, s, scalarLeft)
}

// Map implements Engine.
func (r *RIOTDB) Map(fn string, a Value) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	return r.eng.Map(fn, ao)
}

// MatMul implements Engine.
func (r *RIOTDB) MatMul(a, b Value) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	bo, err := r.obj(b)
	if err != nil {
		return nil, err
	}
	return r.eng.MatMul(ao, bo)
}

// IndexBy implements Engine.
func (r *RIOTDB) IndexBy(d, s Value) (Value, error) {
	do, err := r.obj(d)
	if err != nil {
		return nil, err
	}
	so, err := r.obj(s)
	if err != nil {
		return nil, err
	}
	return r.eng.IndexBy(do, so)
}

// Range implements Engine: a[lo:hi) is IndexBy with a literal index
// vector, mirroring how the SQL backend expresses subscripting.
func (r *RIOTDB) Range(a Value, lo, hi int64) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	idx, err := r.eng.NewVector(hi-lo, func(i int64) float64 { return float64(lo + i) })
	if err != nil {
		return nil, err
	}
	return r.eng.IndexBy(ao, idx)
}

// UpdateWhere implements Engine.
func (r *RIOTDB) UpdateWhere(a Value, cmp string, thresh, val float64) (Value, error) {
	ao, err := r.obj(a)
	if err != nil {
		return nil, err
	}
	return r.eng.UpdateWhere(ao, cmp, thresh, val)
}

// Assign implements Engine.
func (r *RIOTDB) Assign(v Value) (Value, error) {
	o, err := r.obj(v)
	if err != nil {
		return nil, err
	}
	return r.eng.Assign(o)
}

// Release implements Engine.
func (r *RIOTDB) Release(v Value) {
	if o, ok := v.(*riotdb.Object); ok {
		r.eng.Release(o)
	}
}

// Fetch implements Engine.
func (r *RIOTDB) Fetch(v Value, limit int64) ([]float64, error) {
	o, err := r.obj(v)
	if err != nil {
		return nil, err
	}
	rows, err := r.eng.Fetch(o, limit)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = row[len(row)-1] // V is the last column
	}
	return out, nil
}

// Sum implements Engine.
func (r *RIOTDB) Sum(v Value) (float64, error) {
	o, err := r.obj(v)
	if err != nil {
		return 0, err
	}
	return r.eng.Sum(o)
}

// Length implements Engine.
func (r *RIOTDB) Length(v Value) int64 {
	if o, ok := v.(*riotdb.Object); ok {
		rows, cols := o.Dims()
		return rows * cols
	}
	return 0
}

// Dims implements Engine.
func (r *RIOTDB) Dims(v Value) (int64, int64, bool) {
	if o, ok := v.(*riotdb.Object); ok {
		rows, cols := o.Dims()
		return rows, cols, o.Kind() == riotdb.KindVector
	}
	return 0, 0, false
}

// Report implements Engine: device traffic plus per-tuple DBMS overhead
// estimated from the data volume moved (each stored number passes
// through the row-at-a-time executor).
func (r *RIOTDB) Report() Report {
	st := r.dev.Stats()
	tuples := st.TotalBytes() / 16 // (I, V) rows: 16 bytes each
	rep := Report{
		IOBytes: st.TotalBytes(),
		SeqOps:  st.SeqReads + st.SeqWrites,
		RandOps: st.RandReads + st.RandWrites,
		Tuples:  tuples,
	}
	blockBytes := float64(r.dev.BlockBytes())
	seqSec := float64(rep.SeqOps) * blockBytes / (r.time.SeqMBps * (1 << 20))
	randSec := float64(rep.RandOps) * (r.time.RandSeekSec + blockBytes/(r.time.SeqMBps*(1<<20)))
	rep.SimSeconds = seqSec + randSec + float64(tuples)*r.time.DBTupleSec
	return rep
}

// ResetStats implements Engine.
func (r *RIOTDB) ResetStats() { r.dev.ResetStats() }

var _ Engine = (*RIOTDB)(nil)

// Close implements Engine. The embedded database's device and pool are
// private to the engine and die with it; there is nothing shared to
// release.
func (r *RIOTDB) Close() error { return nil }
