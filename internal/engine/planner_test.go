package engine_test

import (
	"strings"
	"testing"

	"riot/internal/engine"
	"riot/internal/plan"
	"riot/internal/rlang"
)

func runExample1Planner(t *testing.T, strat plan.Strategy, workers int, n int64) (*engine.RIOT, string) {
	t.Helper()
	e := engine.NewRIOTConfigured(1024, n, engine.DefaultTimeModel,
		engine.RIOTOptions{Workers: workers, Planner: strat})
	in := rlang.New(e)
	x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9973) })
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 9967) })
	if err != nil {
		t.Fatal(err)
	}
	in.SetVector("x", x)
	in.SetVector("y", y)
	e.ResetStats()
	e.Executor().Pool().ResetStats()
	if err := in.Run(example1); err != nil {
		t.Fatal(err)
	}
	return e, in.Out.String()
}

// TestHeuristicPlannerReproducesSeedCounters pins the acceptance
// criterion directly: Planner heuristic at Workers: 1, Readahead off
// reproduces the seed's exact Example 1 device and pool counters (the
// same goldens TestWorkers1ReproducesSeedIOCounts captured from the
// pre-planner executor).
func TestHeuristicPlannerReproducesSeedCounters(t *testing.T) {
	golden := []struct {
		n                                int64
		hits, misses, evictions, flushes int64
		reads, writes                    int64
	}{
		{1 << 17, 78, 131, 131, 1, 128, 1},
		{1 << 18, 84, 125, 125, 1, 122, 1},
	}
	for _, g := range golden {
		e, _ := runExample1Planner(t, plan.Heuristic, 1, g.n)
		ps := e.Executor().Pool().Stats()
		if ps.Hits != g.hits || ps.Misses != g.misses || ps.Evictions != g.evictions || ps.Flushes != g.flushes {
			t.Errorf("n=%d: pool %d/%d/%d/%d, want %d/%d/%d/%d (seed golden)",
				g.n, ps.Hits, ps.Misses, ps.Evictions, ps.Flushes,
				g.hits, g.misses, g.evictions, g.flushes)
		}
		ds := e.Executor().Pool().Device().Stats()
		if ds.BlocksRead != g.reads || ds.BlocksWritten != g.writes {
			t.Errorf("n=%d: device read=%d written=%d, want %d/%d (seed golden)",
				g.n, ds.BlocksRead, ds.BlocksWritten, g.reads, g.writes)
		}
	}
}

// TestCostBasedPlannerMatchesOutput checks the cost-based strategy is a
// pure plan change: Example 1's printed values are identical to the
// heuristic's at one worker and at four.
func TestCostBasedPlannerMatchesOutput(t *testing.T) {
	const n = 1 << 18
	_, want := runExample1Planner(t, plan.Heuristic, 1, n)
	for _, workers := range []int{1, 4} {
		_, got := runExample1Planner(t, plan.CostBased, workers, n)
		if got != want {
			t.Errorf("cost-based workers=%d: output differs\n got: %.120s\nwant: %.120s", workers, got, want)
		}
	}
}

// TestExplainRendersWithoutExecuting checks Explain returns the plan
// for the deferred Example 1 expression without performing any device
// I/O.
func TestExplainRendersWithoutExecuting(t *testing.T) {
	const n = 1 << 17
	e := engine.NewRIOTConfigured(1024, n, engine.DefaultTimeModel,
		engine.RIOTOptions{Workers: 1, Planner: plan.CostBased})
	x, err := e.NewVector(n, func(i int64) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	sq, err := e.Arith("*", x, x)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	before := e.Executor().Pool().Device().Stats().TotalBlocks()
	out, err := e.Explain(sq)
	if err != nil {
		t.Fatal(err)
	}
	if after := e.Executor().Pool().Device().Stats().TotalBlocks(); after != before {
		t.Errorf("Explain performed I/O: %d -> %d blocks", before, after)
	}
	for _, want := range []string{"physical plan: strategy=cost-based", "output", "total est:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainWriterEmitsPerForce checks the riot-run -explain hook: a
// registered writer receives one rendered plan per forced evaluation.
func TestExplainWriterEmitsPerForce(t *testing.T) {
	const n = 1 << 16
	e := engine.NewRIOTWorkers(1024, n, engine.DefaultTimeModel, 1)
	var sb strings.Builder
	e.SetExplainWriter(&sb)
	x, err := e.NewVector(n, func(i int64) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sum(x); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fetch(x, 4); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "physical plan:"); got != 2 {
		t.Errorf("explain writer saw %d plans, want 2\n%s", got, sb.String())
	}
}
