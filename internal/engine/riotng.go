package engine

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/exec"
	"riot/internal/opt"
	"riot/internal/plan"
	"riot/internal/rescache"
	"riot/internal/riotdb"
)

// RIOT is the next-generation engine of §5: operations build an
// expression DAG over the tiled array store; forcing a result optimizes
// the DAG (pushdown, CSE, chain reordering) and runs the fused,
// selective executor.
type RIOT struct {
	g    *algebra.Graph
	ex   *exec.Executor
	cfg  opt.Config
	dev  *disk.Device
	time TimeModel
	seq  atomic.Int64
	// prefix namespaces every owner name this instance allocates on the
	// device; session-scoped instances over a shared device each get a
	// distinct prefix so Close can free exactly their storage.
	prefix string
	// shared marks an instance created over a caller-owned pool
	// (NewRIOTWithPool): Close then frees only prefix-owned extents
	// instead of the whole device.
	shared bool
	closed atomic.Bool
}

// NewRIOT creates a RIOT engine with blockElems-sized blocks and
// memElems numbers of buffer-pool memory. It runs single-worker — the
// deterministic configuration every paper experiment uses.
func NewRIOT(blockElems int, memElems int64, tm TimeModel) *RIOT {
	return NewRIOTWorkers(blockElems, memElems, tm, 1)
}

// RIOTOptions configures a RIOT engine beyond block and memory sizing.
type RIOTOptions struct {
	// Workers bounds the executor and kernel goroutines; < 1 selects
	// runtime.GOMAXPROCS(0). 1 reproduces the sequential engine's I/O
	// counts exactly (single shard, single goroutine).
	Workers int
	// Readahead enables the buffer pool's I/O scheduler: asynchronous
	// prefetch with adaptive sequential readahead, vectored device
	// reads, and elevator write-back. Off, the I/O counters are
	// identical to the seed engine's.
	Readahead bool
	// Planner selects the physical planner strategy. The zero value,
	// plan.Heuristic, reproduces the seed executor's materialization
	// rules (and I/O counters) exactly; plan.CostBased decides from the
	// analytic cost formulas and the live machine parameters.
	Planner plan.Strategy
	// Prefix namespaces the owner names of everything the engine stores
	// on the device (sources, temporaries, forced results). Instances
	// sharing one device — the server's per-connection sessions — must
	// each use a distinct non-empty prefix; standalone engines leave it
	// empty and reproduce the seed's names exactly.
	Prefix string
	// Cache attaches the shared cross-session result cache to the
	// engine's executor. Nil leaves every code path (and every I/O
	// counter) identical to the cache-free engine.
	Cache *rescache.Cache
}

// NewRIOTWorkers creates a RIOT engine whose executor and kernels use up
// to workers goroutines over a buffer pool sharded to match. workers < 1
// selects runtime.GOMAXPROCS(0). workers == 1 reproduces the sequential
// engine's I/O counts exactly (single shard, single goroutine).
func NewRIOTWorkers(blockElems int, memElems int64, tm TimeModel, workers int) *RIOT {
	return NewRIOTConfigured(blockElems, memElems, tm, RIOTOptions{Workers: workers})
}

// NewRIOTConfigured creates a RIOT engine with full options over its own
// private device and buffer pool.
func NewRIOTConfigured(blockElems int, memElems int64, tm TimeModel, opts RIOTOptions) *RIOT {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	dev := disk.NewDevice(blockElems)
	pool := buffer.NewShardedWithMemory(dev, memElems, workers)
	if opts.Readahead {
		pool.SetReadahead(buffer.ReadaheadConfig{Enabled: true})
	}
	opts.Workers = workers
	r := newRIOTOverPool(pool, tm, opts)
	r.shared = false
	return r
}

// NewRIOTWithPool creates a session-scoped RIOT engine over a pool the
// caller owns — typically a quota'd view of a server's shared pool. The
// device is the pool's; several instances may share it as long as each
// uses a distinct opts.Prefix. Close frees only this instance's storage.
func NewRIOTWithPool(pool *buffer.Pool, tm TimeModel, opts RIOTOptions) *RIOT {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	r := newRIOTOverPool(pool, tm, opts)
	r.shared = true
	return r
}

func newRIOTOverPool(pool *buffer.Pool, tm TimeModel, opts RIOTOptions) *RIOT {
	ex := exec.New(pool)
	ex.Workers = opts.Workers
	ex.Planner = opts.Planner
	ex.Prefix = opts.Prefix
	ex.Cache = opts.Cache
	return &RIOT{
		g:      algebra.NewGraph(),
		ex:     ex,
		cfg:    opt.DefaultConfig(),
		dev:    pool.Device(),
		time:   tm,
		prefix: opts.Prefix,
	}
}

// Close releases everything the instance stored on the device: resident
// frames are invalidated (without write-back — the storage is dying) and
// the extents freed. A standalone engine frees its whole private device;
// an engine made by NewRIOTWithPool frees only owners under its prefix,
// leaving other sessions' storage and the shared catalog untouched.
// Close is idempotent. It must not race in-flight evaluations on the
// same instance: callers finish or abandon their work first.
func (r *RIOT) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	pool := r.ex.Pool()
	pool.DrainPrefetch()
	if acct := pool.Account(); acct != nil {
		if n := acct.Pinned(); n > 0 {
			// A failed Close must stay retryable: clear the flag so a
			// later call (after the pins drain) can still free the
			// engine's storage instead of no-opping forever.
			r.closed.Store(false)
			return fmt.Errorf("engine: Close with %d frames still pinned", n)
		}
	}
	for _, owner := range r.dev.Owners() {
		if r.shared && !strings.HasPrefix(owner, r.prefix) {
			continue
		}
		for _, id := range r.dev.OwnerExtents(owner) {
			pool.Invalidate(id)
		}
		r.dev.Free(owner)
	}
	return nil
}

// Name implements Engine.
func (r *RIOT) Name() string { return "riot" }

// Config returns a pointer to the optimizer configuration so ablation
// benchmarks can toggle rules.
func (r *RIOT) Config() *opt.Config { return &r.cfg }

// Executor exposes the executor for ablations (fusion, eager updates).
func (r *RIOT) Executor() *exec.Executor { return r.ex }

func (r *RIOT) fresh(prefix string) string {
	return fmt.Sprintf("%s%s%d", r.prefix, prefix, r.seq.Add(1))
}

func (r *RIOT) node(v Value) (*algebra.Node, error) {
	if n, ok := v.(*algebra.Node); ok {
		return n, nil
	}
	return nil, fmt.Errorf("riot: not a DAG node: %T", v)
}

// NewVector implements Engine.
func (r *RIOT) NewVector(n int64, gen func(int64) float64) (Value, error) {
	v, err := array.NewVector(r.ex.Pool(), r.fresh("x"), n)
	if err != nil {
		return nil, err
	}
	if err := v.Fill(gen); err != nil {
		return nil, err
	}
	return r.g.SourceVec(v), nil
}

// NewMatrix implements Engine: stored with square tiles, the layout the
// optimizer's multiply kernel wants.
func (r *RIOT) NewMatrix(rows, cols int64, gen func(i, j int64) float64) (Value, error) {
	m, err := array.NewMatrix(r.ex.Pool(), r.fresh("m"), rows, cols, array.Options{Shape: array.SquareTiles})
	if err != nil {
		return nil, err
	}
	if err := m.Fill(gen); err != nil {
		return nil, err
	}
	return r.g.SourceMat(m), nil
}

// Sample implements Engine.
func (r *RIOT) Sample(n, k int64, seed uint64) (Value, error) {
	idx := riotdb.SampleIndices(n, k, seed)
	return r.NewVector(int64(len(idx)), func(i int64) float64 { return float64(idx[i]) })
}

// Arith implements Engine.
func (r *RIOT) Arith(op string, a, b Value) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	bn, err := r.node(b)
	if err != nil {
		return nil, err
	}
	return r.g.ElemBinary(op, an, bn)
}

// ArithScalar implements Engine.
func (r *RIOT) ArithScalar(op string, a Value, s float64, scalarLeft bool) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	return r.g.ScalarOp(op, an, s, scalarLeft)
}

// Map implements Engine.
func (r *RIOT) Map(fn string, a Value) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	return r.g.ElemUnary(fn, an)
}

// MatMul implements Engine.
func (r *RIOT) MatMul(a, b Value) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	bn, err := r.node(b)
	if err != nil {
		return nil, err
	}
	return r.g.MatMul(an, bn)
}

// IndexBy implements Engine.
func (r *RIOT) IndexBy(d, s Value) (Value, error) {
	dn, err := r.node(d)
	if err != nil {
		return nil, err
	}
	sn, err := r.node(s)
	if err != nil {
		return nil, err
	}
	return r.g.Gather(dn, sn)
}

// Range implements Engine.
func (r *RIOT) Range(a Value, lo, hi int64) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	return r.g.Range(an, lo, hi)
}

// UpdateWhere implements Engine: the functional []<- operator.
func (r *RIOT) UpdateWhere(a Value, cmp string, thresh, val float64) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	return r.g.UpdateMask(an, cmp, thresh, val)
}

// Assign implements Engine: deferral crosses assignments, so this is a
// no-op.
func (r *RIOT) Assign(v Value) (Value, error) { return v, nil }

// Release implements Engine. Stored sources are freed when the host
// drops them; derived nodes own no storage.
func (r *RIOT) Release(v Value) {
	n, ok := v.(*algebra.Node)
	if !ok {
		return
	}
	// Sources referenced by other live expressions must not be freed;
	// the engine is conservative and never frees shared sources. (A
	// production system would track liveness; experiments reset the
	// whole engine between runs.)
	_ = n
}

// optimize runs the rewrite rules on a root.
func (r *RIOT) optimize(n *algebra.Node) (*algebra.Node, error) {
	return opt.New(r.g, r.cfg).Optimize(n)
}

// SetExplainWriter makes every subsequent forced evaluation emit its
// rendered physical plan to w before executing (nil disables). The
// plan written is the one the executor interprets — built once, in the
// Force call itself.
func (r *RIOT) SetExplainWriter(w io.Writer) { r.ex.ExplainTo = w }

// Plan returns the physical plan for v as a structured object (the
// benchmarks compare its estimates against measured device counters).
// Nothing is executed.
func (r *RIOT) Plan(v Value) (*plan.Plan, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	return r.ex.BuildPlan(root), nil
}

// Explain returns the rendered physical plan for v — the optimized
// DAG's per-node decisions, materialization and multiply schedule, and
// per-step I/O estimates — without executing anything.
func (r *RIOT) Explain(v Value) (string, error) {
	p, err := r.Plan(v)
	if err != nil {
		return "", err
	}
	return p.Render(), nil
}

// Fetch implements Engine.
func (r *RIOT) Fetch(v Value, limit int64) ([]float64, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	if !n.Shape.Vector {
		if n.Op == algebra.OpSourceMat && n.SMat != nil {
			return fetchSparseMatrix(n.SMat, limit)
		}
		m, err := r.forceMat(n)
		if err != nil {
			return nil, err
		}
		count := m.Rows() * m.Cols()
		if limit >= 0 && limit < count {
			count = limit
		}
		out := make([]float64, count)
		for k := int64(0); k < count; k++ {
			val, err := m.At(k/m.Cols(), k%m.Cols())
			if err != nil {
				return nil, err
			}
			out[k] = val
		}
		return out, nil
	}
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	return r.ex.Fetch(root, limit)
}

// Sum implements Engine.
func (r *RIOT) Sum(v Value) (float64, error) {
	n, err := r.node(v)
	if err != nil {
		return 0, err
	}
	root, err := r.optimize(n)
	if err != nil {
		return 0, err
	}
	return r.ex.Reduce("sum", root)
}

func (r *RIOT) forceMat(n *algebra.Node) (*array.Matrix, error) {
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	return r.ex.ForceMatrix(root, r.fresh("res"))
}

// ForceMatrix materializes a matrix-valued expression (for examples and
// tests that need the stored result).
func (r *RIOT) ForceMatrix(v Value) (*array.Matrix, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	return r.forceMat(n)
}

// ForceVector materializes a vector-valued expression into a stored
// vector (the catalog's publish path).
func (r *RIOT) ForceVector(v Value) (*array.Vector, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	if !n.Shape.Vector {
		return nil, fmt.Errorf("riot: ForceVector of matrix value")
	}
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	return r.ex.ForceVector(root, r.fresh("res"))
}

// WrapVector lifts a stored vector into the instance's DAG (the
// catalog's read path). Wrapping the same vector twice returns the same
// node, so repeated reads share evaluation.
func (r *RIOT) WrapVector(v *array.Vector) Value { return r.g.SourceVec(v) }

// WrapMatrix lifts a stored matrix into the instance's DAG.
func (r *RIOT) WrapMatrix(m *array.Matrix) Value { return r.g.SourceMat(m) }

// Pool returns the buffer-pool view the instance evaluates through.
func (r *RIOT) Pool() *buffer.Pool { return r.ex.Pool() }

// Length implements Engine.
func (r *RIOT) Length(v Value) int64 {
	if n, ok := v.(*algebra.Node); ok {
		return n.Shape.Len()
	}
	return 0
}

// Dims implements Engine.
func (r *RIOT) Dims(v Value) (int64, int64, bool) {
	if n, ok := v.(*algebra.Node); ok {
		return n.Shape.Rows, n.Shape.Cols, n.Shape.Vector
	}
	return 0, 0, false
}

// Report implements Engine. In-flight prefetches are drained first so
// asynchronous loads never straddle a measurement.
func (r *RIOT) Report() Report {
	r.ex.Pool().DrainPrefetch()
	st := r.dev.Stats()
	exStats := r.ex.Stats()
	rep := Report{
		IOBytes:   st.TotalBytes(),
		SeqOps:    st.SeqReads + st.SeqWrites,
		RandOps:   st.RandReads + st.RandWrites,
		Flops:     exStats.Flops,
		FlopsByOp: exStats.FlopsByOp,
	}
	blockBytes := float64(r.dev.BlockBytes())
	seqSec := float64(rep.SeqOps) * blockBytes / (r.time.SeqMBps * (1 << 20))
	randSec := float64(rep.RandOps) * (r.time.RandSeekSec + blockBytes/(r.time.SeqMBps*(1<<20)))
	rep.SimSeconds = seqSec + randSec + float64(rep.Flops)/r.time.FlopsPerSec
	return rep
}

// ResetStats implements Engine.
func (r *RIOT) ResetStats() {
	r.ex.Pool().DrainPrefetch()
	r.dev.ResetStats()
	r.ex.ResetStats()
}

var _ Engine = (*RIOT)(nil)
