package engine

import (
	"fmt"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/sparse"
)

// The RIOT engine's sparse capability (engine.SparseEngine): explicit
// kind conversions and the nnz statistic. Conversions are storage
// operations, not algebra — they force the expression and wrap the
// result as a new source of the requested kind, so everything downstream
// (kernels, planner, catalog publishing) sees the kind in the node.

// ToSparse implements SparseEngine: force the value and return a handle
// backed by tile-compressed storage. Sparse handles pass through
// unchanged; a sparse×sparse product is captured without densifying.
func (r *RIOT) ToSparse(v Value) (Value, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	if n.Shape.Vector {
		if n.Op == algebra.OpSourceVec && n.SVec != nil {
			return v, nil
		}
		vec, err := r.ForceVector(v)
		if err != nil {
			return nil, err
		}
		sv, err := sparse.FromDenseVector(r.ex.Pool(), r.fresh("sv"), vec)
		if err != nil {
			return nil, err
		}
		return r.g.SourceSparseVec(sv), nil
	}
	if n.Op == algebra.OpSourceMat && n.SMat != nil {
		return v, nil
	}
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	d, s, temp, err := r.ex.ForceMatrixOwned(root, r.fresh("res"))
	if err != nil {
		return nil, err
	}
	if s != nil {
		// A naturally sparse result becomes the new source directly.
		return r.g.SourceSparseMat(s), nil
	}
	sm, ferr := sparse.FromDense(r.ex.Pool(), r.fresh("sm"), d)
	if temp {
		// The dense intermediate was only the conversion's input.
		d.Free()
	}
	if ferr != nil {
		return nil, ferr
	}
	return r.g.SourceSparseMat(sm), nil
}

// ToDense implements SparseEngine. Dense-kind values pass through
// without forcing (deferral is preserved); sparse-kind values are
// forced into dense tiles.
func (r *RIOT) ToDense(v Value) (Value, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	if n.Shape.Vector {
		if n.Op != algebra.OpSourceVec || n.SVec == nil {
			return v, nil
		}
		dv, err := n.SVec.ToDense(r.ex.Pool(), r.fresh("dv"))
		if err != nil {
			return nil, err
		}
		return r.g.SourceVec(dv), nil
	}
	if n.MatKind() != array.Sparse {
		return v, nil
	}
	m, err := r.forceMat(n)
	if err != nil {
		return nil, err
	}
	return r.g.SourceMat(m), nil
}

// NNZ implements SparseEngine. Sparse handles answer from their
// directory with no I/O; dense values are forced and scanned.
func (r *RIOT) NNZ(v Value) (int64, error) {
	n, err := r.node(v)
	if err != nil {
		return 0, err
	}
	if n.Shape.Vector {
		if n.Op == algebra.OpSourceVec && n.SVec != nil {
			return n.SVec.NNZ(), nil
		}
		vals, err := r.Fetch(v, -1)
		if err != nil {
			return 0, err
		}
		return countNonzero(vals), nil
	}
	if n.Op == algebra.OpSourceMat && n.SMat != nil {
		return n.SMat.NNZ(), nil
	}
	root, err := r.optimize(n)
	if err != nil {
		return 0, err
	}
	// The forced result only backs this count: free intermediates so
	// repeated nnz() calls don't grow the device until session close.
	d, s, temp, err := r.ex.ForceMatrixOwned(root, r.fresh("res"))
	if err != nil {
		return 0, err
	}
	if s != nil {
		nnz := s.NNZ()
		if temp {
			s.Free()
		}
		return nnz, nil
	}
	var nnz int64
	gr, gc := d.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			t, err := d.PinTile(ti, tj)
			if err != nil {
				return 0, err
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				for j := t.ColLo; j < t.ColHi; j++ {
					if t.At(i, j) != 0 {
						nnz++
					}
				}
			}
			t.Release()
		}
	}
	if temp {
		d.Free()
	}
	return nnz, nil
}

// fetchSparseMatrix reads up to limit elements of a sparse matrix in
// row-major order, decoding tile-wise: each tile is pinned and decoded
// once (empty tiles cost nothing) instead of once per element.
func fetchSparseMatrix(m *sparse.Matrix, limit int64) ([]float64, error) {
	cols := m.Cols()
	count := m.Rows() * cols
	if limit >= 0 && limit < count {
		count = limit
	}
	out := make([]float64, count)
	tr, tc := m.TileDims()
	gr, gc := m.GridDims()
	scratch := make([]float64, tr*tc)
	for ti := 0; ti < gr; ti++ {
		if int64(ti)*int64(tr)*cols >= count {
			break // every element of this tile row is past the limit
		}
		for tj := 0; tj < gc; tj++ {
			rowLo, rowHi, colLo, colHi := m.TileBounds(ti, tj)
			if rowLo*cols+colLo >= count {
				break
			}
			if m.TileEmpty(ti, tj) {
				continue // out is zero-initialized
			}
			if err := m.ReadTile(ti, tj, scratch); err != nil {
				return nil, err
			}
			for i := rowLo; i < rowHi; i++ {
				for j := colLo; j < colHi; j++ {
					if k := i*cols + j; k < count {
						out[k] = scratch[(i-rowLo)*int64(tc)+(j-colLo)]
					}
				}
			}
		}
	}
	return out, nil
}

func countNonzero(vals []float64) int64 {
	var n int64
	for _, v := range vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// WrapSparseVector lifts a stored sparse vector into the instance's DAG
// (the catalog's read path for sparse entries).
func (r *RIOT) WrapSparseVector(v *sparse.Vector) Value { return r.g.SourceSparseVec(v) }

// WrapSparseMatrix lifts a stored sparse matrix into the instance's DAG.
func (r *RIOT) WrapSparseMatrix(m *sparse.Matrix) Value { return r.g.SourceSparseMat(m) }

// SparseVectorOf returns the sparse store behind a value, if the value
// is a sparse vector source (the catalog's publish path asks before
// deciding which entry kind to write).
func (r *RIOT) SparseVectorOf(v Value) (*sparse.Vector, bool) {
	n, ok := v.(*algebra.Node)
	if !ok || n.Op != algebra.OpSourceVec || n.SVec == nil {
		return nil, false
	}
	return n.SVec, true
}

// SparseMatrixOf returns the sparse store behind a value, if the value
// is a sparse matrix source.
func (r *RIOT) SparseMatrixOf(v Value) (*sparse.Matrix, bool) {
	n, ok := v.(*algebra.Node)
	if !ok || n.Op != algebra.OpSourceMat || n.SMat == nil {
		return nil, false
	}
	return n.SMat, true
}

// ForceSparseMatrix forces a matrix-valued expression all the way into a
// stored sparse matrix (densifying results whose natural kind is dense,
// then compressing them). The catalog's publish path for sparse names.
func (r *RIOT) ForceSparseMatrix(v Value) (*sparse.Matrix, error) {
	sv, err := r.ToSparse(v)
	if err != nil {
		return nil, err
	}
	n, ok := sv.(*algebra.Node)
	if !ok || n.SMat == nil {
		return nil, fmt.Errorf("riot: ToSparse produced no sparse matrix")
	}
	return n.SMat, nil
}

// ForceAnyMatrix forces a matrix-valued expression into stored form,
// preserving its natural kind: exactly one of the returns is non-nil. A
// sparse×sparse product stays compressed all the way into the catalog's
// publish path. The caller owns the result (it lives until the engine
// closes); evaluate-and-discard callers should use ForceDiscard.
func (r *RIOT) ForceAnyMatrix(v Value) (*array.Matrix, *sparse.Matrix, error) {
	n, err := r.node(v)
	if err != nil {
		return nil, nil, err
	}
	if n.Shape.Vector {
		return nil, nil, fmt.Errorf("riot: ForceAnyMatrix of vector value")
	}
	root, err := r.optimize(n)
	if err != nil {
		return nil, nil, err
	}
	return r.ex.ForceMatrixAny(root, r.fresh("res"))
}

// ForceDiscard evaluates a matrix expression end to end — in its
// natural kind, with all the kernel I/O that implies — and immediately
// releases the result if it was an intermediate. It is the measurement
// hook behind riot.Matrix.Force: repeated calls do not grow the device.
func (r *RIOT) ForceDiscard(v Value) error {
	n, err := r.node(v)
	if err != nil {
		return err
	}
	if n.Shape.Vector {
		return fmt.Errorf("riot: ForceDiscard of vector value")
	}
	root, err := r.optimize(n)
	if err != nil {
		return err
	}
	d, s, temp, err := r.ex.ForceMatrixOwned(root, r.fresh("res"))
	if err != nil {
		return err
	}
	if temp {
		if d != nil {
			d.Free()
		}
		if s != nil {
			s.Free()
		}
	}
	return nil
}

var _ SparseEngine = (*RIOT)(nil)
