package engine

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/linalg"
	"riot/internal/scalarop"
	"riot/internal/sparse"
)

// The RIOT engine's semi-ring capability (engine.RingEngine): ring
// matrix products stay lazy DAG nodes (the ring travels in the node and
// selects the kernel at force time), while the closure is an eager
// composite — a data-dependent loop of kernel calls has no fixed DAG.

// MatMulRing implements RingEngine: a lazy matrix product over the
// named semi-ring. ring "" or "standard" interns onto the same node a
// plain MatMul would.
func (r *RIOT) MatMulRing(a, b Value, ring string) (Value, error) {
	an, err := r.node(a)
	if err != nil {
		return nil, err
	}
	bn, err := r.node(b)
	if err != nil {
		return nil, err
	}
	return r.g.MatMulRing(an, bn, ring)
}

// Closure implements RingEngine: the reflexive-transitive closure of a
// square matrix under the named ring, by repeated squaring. Both kinds
// iterate X ← X ⊕ (X ⊗ X) in the storage domain (stored 0 = absent =
// ring.Zero, diagonal implicit) — a sparse operand through the sparse
// ring kernels, where paths only ever cross tiles the adjacency
// structure reaches, so block I/O follows the graph's shape, not the
// grid — and finalize once at the end into verbatim ring values
// (absent → ring.Zero, diagonal ⊕ One; for minplus, unreachable pairs
// read +Inf and the diagonal 0). The diagonal stays implicit during
// iteration because the tropical One is float64 0, which storage-domain
// kernels would read back as absent. The per-iteration kernel work is
// charged to flops_by_op under "closure[ring]".
func (r *RIOT) Closure(v Value, ring string) (Value, error) {
	sr, err := scalarop.Ring(ring)
	if err != nil {
		return nil, err
	}
	n, err := r.node(v)
	if err != nil {
		return nil, err
	}
	if n.Shape.Vector {
		return nil, fmt.Errorf("riot: closure requires a matrix")
	}
	if n.Shape.Rows != n.Shape.Cols {
		return nil, fmt.Errorf("riot: closure requires a square matrix, got %dx%d", n.Shape.Rows, n.Shape.Cols)
	}
	rows := n.Shape.Rows
	root, err := r.optimize(n)
	if err != nil {
		return nil, err
	}
	d, s, temp, err := r.ex.ForceMatrixOwned(root, r.fresh("cl_in"))
	if err != nil {
		return nil, err
	}
	op := "closure[" + sr.Name + "]"
	if s != nil {
		m, err := r.closureSparse(s, temp, rows, sr, op)
		if err != nil {
			return nil, err
		}
		return r.g.SourceMat(m), nil
	}
	m, err := r.closureDense(d, temp, rows, sr, op)
	if err != nil {
		return nil, err
	}
	return r.g.SourceMat(m), nil
}

func (r *RIOT) closureSparse(s *sparse.Matrix, temp bool, rows int64, ring *scalarop.Semiring, op string) (*array.Matrix, error) {
	pool := r.ex.Pool()
	c, own := s, temp
	for span := int64(1); span < rows-1; span *= 2 {
		sq, err := linalg.MatMulSparseSparseRing(pool, r.fresh("cl_sq"), c, c, ring)
		if err != nil {
			if own {
				c.Free()
			}
			return nil, err
		}
		if m := c.Cols(); m > 0 {
			r.ex.ChargeFlops(op, c.NNZ()*c.NNZ()/m)
		}
		merged, err := linalg.AddSparseRing(pool, r.fresh("cl_acc"), c, sq, ring)
		r.ex.ChargeFlops(op, c.NNZ()+sq.NNZ())
		sq.Free()
		if own {
			c.Free()
		}
		if err != nil {
			return nil, err
		}
		c, own = merged, true
	}
	out, err := linalg.DensifyRing(pool, r.fresh("closure"), c, ring, true)
	if own {
		c.Free()
	}
	return out, err
}

func (r *RIOT) closureDense(d *array.Matrix, temp bool, rows int64, ring *scalarop.Semiring, op string) (*array.Matrix, error) {
	pool := r.ex.Pool()
	x, own := d, temp
	// The tiled square and the ⊕-merge both need square, mutually
	// aligned tiles; re-lay a row/col-tiled operand once up front.
	if tr, tc := x.TileDims(); tr != tc {
		sq, err := retileSquare(pool, r.fresh("cl_rt"), x)
		if own {
			x.Free()
		}
		if err != nil {
			return nil, err
		}
		x, own = sq, true
	}
	for span := int64(1); span < rows-1; span *= 2 {
		y, err := linalg.MatMulTiledRing(pool, r.fresh("cl_sq"), x, x, r.ex.Workers, ring)
		if err != nil {
			if own {
				x.Free()
			}
			return nil, err
		}
		r.ex.ChargeFlops(op, rows*rows*rows)
		merged, err := linalg.AddDenseRing(pool, r.fresh("cl_acc"), x, y, ring)
		r.ex.ChargeFlops(op, rows*rows)
		y.Free()
		if own {
			x.Free()
		}
		if err != nil {
			return nil, err
		}
		x, own = merged, true
	}
	out, err := linalg.FinalizeClosure(pool, r.fresh("closure"), x, ring)
	if own {
		x.Free()
	}
	return out, err
}

// retileSquare copies a matrix into the default square-tile layout.
func retileSquare(pool *buffer.Pool, name string, a *array.Matrix) (*array.Matrix, error) {
	t, err := array.NewMatrix(pool, name, a.Rows(), a.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < a.Rows(); i++ {
		for j := int64(0); j < a.Cols(); j++ {
			v, err := a.At(i, j)
			if err != nil {
				return nil, err
			}
			if err := t.Set(i, j, v); err != nil {
				return nil, err
			}
		}
	}
	return t, pool.FlushAll()
}

var _ RingEngine = (*RIOT)(nil)
