package engine

import (
	"math"
	"testing"
)

// TestDenseGoldenCounters pins the dense execution path against the
// pre-sparse seed, byte for byte: at Workers:1 with Readahead off, a
// mixed workload (Example 1's fused distance pipeline reduced to a sum,
// plus a square-tiled matmul fetch) must produce exactly the device and
// pool counters the engine produced before the sparse array kind was
// added. Dense sources never enter the zero-propagation rules and dense
// multiplies never touch the sparse kernels, so any drift here means
// the sparse subsystem leaked into the dense path.
//
// The expected values were captured from the engine at the commit
// preceding the sparse subsystem.
func TestDenseGoldenCounters(t *testing.T) {
	r := NewRIOT(1024, 1<<16, DefaultTimeModel)
	defer r.Close()
	n := int64(1 << 15)
	x, err := r.NewVector(n, func(i int64) float64 { return float64(i % 997) })
	if err != nil {
		t.Fatal(err)
	}
	y, err := r.NewVector(n, func(i int64) float64 { return float64(i % 991) })
	if err != nil {
		t.Fatal(err)
	}
	xm, _ := r.ArithScalar("-", x, 3, false)
	ym, _ := r.ArithScalar("-", y, 4, false)
	xs, _ := r.Arith("*", xm, xm)
	ys, _ := r.Arith("*", ym, ym)
	spl, _ := r.Arith("+", xs, ys)
	d, _ := r.Map("sqrt", spl)
	a, err := r.NewMatrix(96, 96, func(i, j int64) float64 { return float64((i*96 + j) % 13) })
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.MatMul(a, a)
	r.ResetStats()
	sum, err := r.Sum(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-2.371498764872644e+07) > 1e-6 {
		t.Errorf("sum = %v, want 2.371498764872644e+07", sum)
	}
	vals, err := r.Fetch(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3608, 3709, 3355, 3703, 3622}
	for i, w := range want {
		if vals[i] != w {
			t.Errorf("fetch[%d] = %v, want %v", i, vals[i], w)
		}
	}
	st := r.dev.Stats()
	// The write seq/rand split is not pinned: with the scheduler off,
	// FlushAll visits dirty frames in shard-map order, which Go
	// randomizes per process — the split wobbled in the seed too. Reads
	// and total writes are fully deterministic.
	if st.BlocksRead != 53 || st.SeqReads != 47 || st.RandReads != 6 ||
		st.BlocksWritten != 9 {
		t.Errorf("device counters read=%d (seq=%d rand=%d) written=%d, want read=53 (seq=47 rand=6) written=9",
			st.BlocksRead, st.SeqReads, st.RandReads, st.BlocksWritten)
	}
	ps := r.Pool().Stats()
	if ps.Hits != 98 || ps.Misses != 135 || ps.Evictions != 71 || ps.Flushes != 82 {
		t.Errorf("pool counters hits/misses/evictions/flushes = %d/%d/%d/%d, want 98/135/71/82",
			ps.Hits, ps.Misses, ps.Evictions, ps.Flushes)
	}
}
