package engine

import (
	"fmt"

	"riot/internal/riotdb"
	"riot/internal/rvec"
)

// PlainR is the paper's baseline: eager vectorized evaluation in paged
// virtual memory.
type PlainR struct {
	eng  *rvec.Engine
	time TimeModel
}

// NewPlainR creates a Plain R engine. Memory geometry is in elements:
// pages of pageElems, capacityPages physical frames, runtimePages locked
// by the interpreter itself.
func NewPlainR(pageElems, capacityPages, runtimePages int, tm TimeModel) *PlainR {
	return &PlainR{eng: rvec.New(pageElems, capacityPages, runtimePages), time: tm}
}

// Name implements Engine.
func (p *PlainR) Name() string { return "plain-r" }

// Inner exposes the underlying evaluator for white-box tests.
func (p *PlainR) Inner() *rvec.Engine { return p.eng }

func (p *PlainR) vec(v Value) (*rvec.Vector, error) {
	if x, ok := v.(*rvec.Vector); ok {
		return x, nil
	}
	return nil, fmt.Errorf("plain-r: not a vector: %T", v)
}

func (p *PlainR) mat(v Value) (*rvec.Matrix, error) {
	if x, ok := v.(*rvec.Matrix); ok {
		return x, nil
	}
	return nil, fmt.Errorf("plain-r: not a matrix: %T", v)
}

// NewVector implements Engine.
func (p *PlainR) NewVector(n int64, gen func(int64) float64) (Value, error) {
	return p.eng.NewVector(n, gen), nil
}

// NewMatrix implements Engine.
func (p *PlainR) NewMatrix(rows, cols int64, gen func(i, j int64) float64) (Value, error) {
	return p.eng.NewMatrix(rows, cols, gen), nil
}

// Sample implements Engine.
func (p *PlainR) Sample(n, k int64, seed uint64) (Value, error) {
	idx := riotdb.SampleIndices(n, k, seed)
	return p.eng.NewVector(int64(len(idx)), func(i int64) float64 { return float64(idx[i]) }), nil
}

// Arith implements Engine.
func (p *PlainR) Arith(op string, a, b Value) (Value, error) {
	av, err := p.vec(a)
	if err != nil {
		return nil, err
	}
	bv, err := p.vec(b)
	if err != nil {
		return nil, err
	}
	return p.eng.Arith(op, av, bv)
}

// ArithScalar implements Engine.
func (p *PlainR) ArithScalar(op string, a Value, s float64, scalarLeft bool) (Value, error) {
	av, err := p.vec(a)
	if err != nil {
		return nil, err
	}
	return p.eng.ArithScalar(op, av, s, scalarLeft)
}

// Map implements Engine.
func (p *PlainR) Map(fn string, a Value) (Value, error) {
	av, err := p.vec(a)
	if err != nil {
		return nil, err
	}
	return p.eng.Map(fn, av)
}

// MatMul implements Engine.
func (p *PlainR) MatMul(a, b Value) (Value, error) {
	am, err := p.mat(a)
	if err != nil {
		return nil, err
	}
	bm, err := p.mat(b)
	if err != nil {
		return nil, err
	}
	return p.eng.MatMul(am, bm)
}

// IndexBy implements Engine.
func (p *PlainR) IndexBy(d, s Value) (Value, error) {
	dv, err := p.vec(d)
	if err != nil {
		return nil, err
	}
	sv, err := p.vec(s)
	if err != nil {
		return nil, err
	}
	return p.eng.IndexBy(dv, sv)
}

// Range implements Engine: eager copy, as R's subsetting does.
func (p *PlainR) Range(a Value, lo, hi int64) (Value, error) {
	av, err := p.vec(a)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > av.Len() || lo > hi {
		return nil, fmt.Errorf("plain-r: range [%d,%d) outside vector of %d", lo, hi, av.Len())
	}
	return p.eng.NewVector(hi-lo, func(i int64) float64 { return av.At(lo + i) }), nil
}

// UpdateWhere implements Engine. R updates in place on unshared values;
// we copy first to keep Value semantics uniform across engines.
func (p *PlainR) UpdateWhere(a Value, cmp string, thresh, val float64) (Value, error) {
	av, err := p.vec(a)
	if err != nil {
		return nil, err
	}
	cp := p.eng.NewVector(av.Len(), av.At)
	if err := p.eng.UpdateWhere(cp, cmp, thresh, val); err != nil {
		return nil, err
	}
	return cp, nil
}

// Assign implements Engine (no-op: R binds eagerly computed values).
func (p *PlainR) Assign(v Value) (Value, error) { return v, nil }

// Release implements Engine: frees the object's pages, like R's GC.
func (p *PlainR) Release(v Value) {
	switch x := v.(type) {
	case *rvec.Vector:
		p.eng.Free(x)
	case *rvec.Matrix:
		p.eng.FreeMatrix(x)
	}
}

// Fetch implements Engine. Matrices fetch row-major, matching the RIOT
// engine's element order, even though plain R stores them column-major
// (the paper's §3 layout) — Fetch is an interface contract, not a
// storage detail.
func (p *PlainR) Fetch(v Value, limit int64) ([]float64, error) {
	if m, ok := v.(*rvec.Matrix); ok {
		rows, cols := m.Dims()
		count := rows * cols
		if limit >= 0 && limit < count {
			count = limit
		}
		out := make([]float64, count)
		for k := int64(0); k < count; k++ {
			out[k] = m.At(k/cols, k%cols)
		}
		return out, nil
	}
	av, err := p.vec(v)
	if err != nil {
		return nil, err
	}
	return p.eng.Fetch(av, limit), nil
}

// Sum implements Engine.
func (p *PlainR) Sum(v Value) (float64, error) {
	av, err := p.vec(v)
	if err != nil {
		return 0, err
	}
	return p.eng.Sum(av), nil
}

// Length implements Engine.
func (p *PlainR) Length(v Value) int64 {
	switch x := v.(type) {
	case *rvec.Vector:
		return x.Len()
	case *rvec.Matrix:
		r, c := x.Dims()
		return r * c
	}
	return 0
}

// Dims implements Engine.
func (p *PlainR) Dims(v Value) (int64, int64, bool) {
	switch x := v.(type) {
	case *rvec.Vector:
		return x.Len(), 1, true
	case *rvec.Matrix:
		r, c := x.Dims()
		return r, c, false
	}
	return 0, 0, false
}

// Report implements Engine: swap traffic plus CPU time.
func (p *PlainR) Report() Report {
	st := p.eng.Stats()
	pageBytes := p.eng.Space().PageBytes()
	r := Report{
		IOBytes: st.IOBytes(),
		SeqOps:  st.SeqIO,
		RandOps: st.RandIO,
		Flops:   p.eng.Flops(),
	}
	seqSec := float64(st.SeqIO) * float64(pageBytes) / (p.time.SeqMBps * (1 << 20))
	randSec := float64(st.RandIO) * (p.time.RandSeekSec + float64(pageBytes)/(p.time.SeqMBps*(1<<20)))
	r.SimSeconds = seqSec + randSec + float64(r.Flops)/p.time.FlopsPerSec
	return r
}

// ResetStats implements Engine.
func (p *PlainR) ResetStats() { p.eng.ResetStats() }

var _ Engine = (*PlainR)(nil)

// Close implements Engine. Plain R's paged virtual memory is private to
// the engine and dies with it; there is nothing shared to release.
func (p *PlainR) Close() error { return nil }
