// Package engine defines the common evaluation interface implemented by
// the four systems the paper compares (§4.2) — Plain R, RIOT-DB/Strawman,
// RIOT-DB/MatNamed, RIOT-DB (full) — plus the next-generation RIOT engine
// of §5. The riotscript interpreter dispatches host-language operations
// through this interface, which is the repo's version of R's generics
// mechanism: the same program runs unchanged on every engine
// (transparency), and only the backend determines the I/O behaviour.
package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Value is an engine-specific object handle (dbvector, DAG node, eager
// vector, ...). Engines type-assert their own values.
type Value interface{}

// TimeModel converts counted events into simulated 2009-era seconds.
type TimeModel struct {
	SeqMBps     float64 // sequential disk transfer MB/s
	RandSeekSec float64 // one random disk positioning
	FlopsPerSec float64 // interpreter-grade vector arithmetic rate
	DBTupleSec  float64 // per-tuple DBMS processing overhead
}

// DefaultTimeModel approximates the paper's testbed-era hardware.
var DefaultTimeModel = TimeModel{
	SeqMBps:     100,
	RandSeekSec: 0.008,
	FlopsPerSec: 2e8,
	DBTupleSec:  2.5e-6,
}

// Report summarizes an engine's resource usage since the last reset.
type Report struct {
	IOBytes    int64   // total bytes moved between memory and disk/swap
	SeqOps     int64   // sequential block/page transfers
	RandOps    int64   // random block/page transfers
	Flops      int64   // scalar arithmetic operations
	Tuples     int64   // tuples processed by a DBMS backend (0 otherwise)
	SimSeconds float64 // simulated wall-clock under the time model
	// FlopsByOp splits Flops by operator spelling (backends that don't
	// track the split leave it nil). Rendered by String, and so by the
	// server's \stats.
	FlopsByOp map[string]int64
}

// IOMB returns the traffic in mebibytes (Figure 1a's unit).
func (r Report) IOMB() float64 { return float64(r.IOBytes) / (1 << 20) }

func (r Report) String() string {
	s := fmt.Sprintf("io=%.1fMB (seq=%d rand=%d) flops=%d sim=%.2fs",
		r.IOMB(), r.SeqOps, r.RandOps, r.Flops, r.SimSeconds)
	if len(r.FlopsByOp) > 0 {
		ops := make([]string, 0, len(r.FlopsByOp))
		for op := range r.FlopsByOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		parts := make([]string, 0, len(ops))
		for _, op := range ops {
			parts = append(parts, fmt.Sprintf("%s=%d", op, r.FlopsByOp[op]))
		}
		s += " flops_by_op{" + strings.Join(parts, " ") + "}"
	}
	return s
}

// Engine is the evaluation backend interface. All indices are 0-based;
// ranges are half-open. Operations may defer arbitrarily: only Fetch,
// Sum, and Materialize are required to produce results.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string

	// NewVector creates a stored vector of length n with values gen(i).
	NewVector(n int64, gen func(i int64) float64) (Value, error)
	// NewMatrix creates a stored rows×cols matrix with values gen(i, j).
	NewMatrix(rows, cols int64, gen func(i, j int64) float64) (Value, error)
	// Sample creates the index vector sample(n, k) with a fixed seed.
	Sample(n, k int64, seed uint64) (Value, error)

	// Arith applies a vectorized binary operator elementwise.
	Arith(op string, a, b Value) (Value, error)
	// ArithScalar applies op with a scalar operand on the given side.
	ArithScalar(op string, a Value, s float64, scalarLeft bool) (Value, error)
	// Map applies a unary function (sqrt, abs, exp, log, ...) elementwise.
	Map(fn string, a Value) (Value, error)
	// MatMul multiplies two matrices.
	MatMul(a, b Value) (Value, error)
	// IndexBy gathers d[s] for an index vector s.
	IndexBy(d, s Value) (Value, error)
	// Range slices a[lo:hi).
	Range(a Value, lo, hi int64) (Value, error)
	// UpdateWhere performs a[a cmp thresh] <- val, returning the new state.
	UpdateWhere(a Value, cmp string, thresh, val float64) (Value, error)

	// Assign is the named-binding hook (MatNamed materializes here).
	Assign(v Value) (Value, error)
	// Release drops a binding (the dependency hook of §4.1).
	Release(v Value)

	// Fetch forces evaluation and returns up to limit elements in index
	// order (limit < 0 for all).
	Fetch(v Value, limit int64) ([]float64, error)
	// Sum forces evaluation of the sum of all elements.
	Sum(v Value) (float64, error)
	// Length returns the element count (vectors) or rows*cols.
	Length(v Value) int64
	// Dims returns the shape; vector reports (n, 1, true).
	Dims(v Value) (rows, cols int64, isVector bool)

	// Report returns resource usage since the last ResetStats.
	Report() Report
	// ResetStats zeroes the usage counters.
	ResetStats()

	// Close releases the engine's resources: resident buffer-pool
	// frames, in-flight prefetches, and storage the engine allocated on
	// its device. Engines over a shared device free only their own
	// storage. Close is idempotent; using the engine afterwards is an
	// error.
	Close() error
}

// SparseEngine is the optional capability interface of engines with a
// tile-compressed sparse array kind. The riotscript builtins sparse(),
// dense(), and nnz() dispatch through it when the backend offers it and
// fall back to kind-free semantics otherwise (sparse and dense become
// identity, nnz counts fetched values) — the same script still runs on
// every backend, sparsity being a storage property, not a semantic one.
// RingEngine is the optional capability interface of engines whose
// matrix product generalizes over a semi-ring (⊕, ⊗). The riotscript
// builtins matmul(a, b, ring=...) and closure(a, ring=...) dispatch
// through it when the backend offers it; other backends get in-memory
// fallback semantics from the interpreter, so the same script runs
// everywhere. Ring names are the scalarop registry's ("standard",
// "minplus", "maxplus", "boolean"); "" means standard.
type RingEngine interface {
	// MatMulRing is Engine.MatMul over the named semi-ring.
	MatMulRing(a, b Value, ring string) (Value, error)
	// Closure computes the reflexive-transitive ⊗-closure of a square
	// matrix by repeated squaring — over minplus, all-pairs shortest
	// path distances (diagonal 0). The result is dense: the closure of
	// anything connected is.
	Closure(a Value, ring string) (Value, error)
}

type SparseEngine interface {
	// ToSparse forces the value and returns a handle backed by
	// tile-compressed storage (a no-op on already-sparse handles).
	ToSparse(v Value) (Value, error)
	// ToDense is the inverse conversion: the result is backed by dense
	// tiles. Values whose natural kind is already dense pass through
	// unforced.
	ToDense(v Value) (Value, error)
	// NNZ forces the value and returns its stored nonzero count
	// (answered from the directory, without I/O, for sparse handles).
	NNZ(v Value) (int64, error)
}
