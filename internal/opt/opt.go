// Package opt is RIOT's rule-based optimizer over the expression DAG
// (§5): subscript pushdown (Figure 2's transformation, where b[1:10] of
// a modified b ends up touching 10 elements of a instead of all of
// them), matrix-chain reordering by dynamic programming, and the
// algorithm-selection hook for matrix multiplication. Each rule can be
// toggled independently, which is how the ablation benchmarks isolate
// each optimization's contribution.
package opt

import (
	"riot/internal/algebra"
	"riot/internal/costmodel"
)

// Config toggles individual rewrite rules.
type Config struct {
	PushdownRange  bool // push x[lo:hi] below elementwise ops and updates
	PushdownGather bool // push x[s] below elementwise ops and updates
	ChainReorder   bool // reorder %*% chains with the DP of §5
}

// DefaultConfig enables every rule.
func DefaultConfig() Config {
	return Config{PushdownRange: true, PushdownGather: true, ChainReorder: true}
}

// Optimizer rewrites DAGs.
type Optimizer struct {
	g   *algebra.Graph
	cfg Config
}

// New creates an optimizer that builds rewritten nodes in g.
func New(g *algebra.Graph, cfg Config) *Optimizer {
	return &Optimizer{g: g, cfg: cfg}
}

// Optimize rewrites the DAG rooted at n, preserving sharing.
func (o *Optimizer) Optimize(n *algebra.Node) (*algebra.Node, error) {
	memo := make(map[*algebra.Node]*algebra.Node)
	return o.rewrite(n, memo)
}

func (o *Optimizer) rewrite(n *algebra.Node, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	if r, ok := memo[n]; ok {
		return r, nil
	}
	var out *algebra.Node
	var err error
	switch {
	case n.Op == algebra.OpRange && o.cfg.PushdownRange:
		out, err = o.pushRange(n.Kids[0], n.Lo, n.Hi, memo)
	case n.Op == algebra.OpGather && o.cfg.PushdownGather:
		out, err = o.pushGather(n.Kids[0], n.Kids[1], memo)
	case n.Op == algebra.OpMatMul && o.cfg.ChainReorder:
		out, err = o.reorderChain(n, memo)
	default:
		out, err = o.rebuild(n, memo)
	}
	if err != nil {
		return nil, err
	}
	memo[n] = out
	return out, nil
}

// rebuild rewrites children and re-interns the node.
func (o *Optimizer) rebuild(n *algebra.Node, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	kids := make([]*algebra.Node, len(n.Kids))
	changed := false
	for i, k := range n.Kids {
		nk, err := o.rewrite(k, memo)
		if err != nil {
			return nil, err
		}
		kids[i] = nk
		if nk != k {
			changed = true
		}
	}
	if !changed {
		return n, nil
	}
	return o.clone(n, kids)
}

// clone re-creates n over new children through the graph builder (so
// hash-consing still applies).
func (o *Optimizer) clone(n *algebra.Node, kids []*algebra.Node) (*algebra.Node, error) {
	switch n.Op {
	case algebra.OpSourceVec, algebra.OpSourceMat:
		return n, nil
	case algebra.OpElemBinary:
		return o.g.ElemBinary(n.BinOp, kids[0], kids[1])
	case algebra.OpElemUnary:
		return o.g.ElemUnary(n.Fn, kids[0])
	case algebra.OpScalarOp:
		return o.g.ScalarOp(n.BinOp, kids[0], n.Scalar, n.ScalarLeft)
	case algebra.OpUpdateMask:
		return o.g.UpdateMask(kids[0], n.BinOp, n.Scalar, n.Scalar2)
	case algebra.OpGather:
		return o.g.Gather(kids[0], kids[1])
	case algebra.OpRange:
		return o.g.Range(kids[0], n.Lo, n.Hi)
	case algebra.OpMatMul:
		return o.g.MatMulRing(kids[0], kids[1], n.Ring)
	case algebra.OpReduce:
		return o.g.Reduce(n.Fn, kids[0])
	}
	return n, nil
}

// pushRange rewrites take(x, lo, hi) by pushing the subscript toward the
// sources: Figure 2(a) → 2(b).
func (o *Optimizer) pushRange(x *algebra.Node, lo, hi int64, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	switch x.Op {
	case algebra.OpElemUnary:
		k, err := o.pushRange(x.Kids[0], lo, hi, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ElemUnary(x.Fn, k)
	case algebra.OpScalarOp:
		k, err := o.pushRange(x.Kids[0], lo, hi, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ScalarOp(x.BinOp, k, x.Scalar, x.ScalarLeft)
	case algebra.OpUpdateMask:
		// The crux of Figure 2: the selection moves below the update, so
		// the modification executes on hi-lo elements only.
		k, err := o.pushRange(x.Kids[0], lo, hi, memo)
		if err != nil {
			return nil, err
		}
		return o.g.UpdateMask(k, x.BinOp, x.Scalar, x.Scalar2)
	case algebra.OpElemBinary:
		l, err := o.pushRange(x.Kids[0], lo, hi, memo)
		if err != nil {
			return nil, err
		}
		r, err := o.pushRange(x.Kids[1], lo, hi, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ElemBinary(x.BinOp, l, r)
	case algebra.OpRange:
		// take(take(x, a, b), lo, hi) = take(x, a+lo, a+hi).
		return o.pushRange(x.Kids[0], x.Lo+lo, x.Lo+hi, memo)
	default:
		// Source (or a barrier like gather/matmul): optimize below, then
		// subscript the result.
		nx, err := o.rewrite(x, memo)
		if err != nil {
			return nil, err
		}
		return o.g.Range(nx, lo, hi)
	}
}

// pushGather rewrites x[s] by pushing the gather toward the sources, so
// only the selected elements are ever computed (Example 1's deferred and
// selective evaluation).
func (o *Optimizer) pushGather(x, idx *algebra.Node, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	nidx, err := o.rewrite(idx, memo)
	if err != nil {
		return nil, err
	}
	return o.pushGatherIdx(x, nidx, memo)
}

func (o *Optimizer) pushGatherIdx(x, idx *algebra.Node, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	switch x.Op {
	case algebra.OpElemUnary:
		k, err := o.pushGatherIdx(x.Kids[0], idx, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ElemUnary(x.Fn, k)
	case algebra.OpScalarOp:
		k, err := o.pushGatherIdx(x.Kids[0], idx, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ScalarOp(x.BinOp, k, x.Scalar, x.ScalarLeft)
	case algebra.OpUpdateMask:
		k, err := o.pushGatherIdx(x.Kids[0], idx, memo)
		if err != nil {
			return nil, err
		}
		return o.g.UpdateMask(k, x.BinOp, x.Scalar, x.Scalar2)
	case algebra.OpElemBinary:
		l, err := o.pushGatherIdx(x.Kids[0], idx, memo)
		if err != nil {
			return nil, err
		}
		r, err := o.pushGatherIdx(x.Kids[1], idx, memo)
		if err != nil {
			return nil, err
		}
		return o.g.ElemBinary(x.BinOp, l, r)
	default:
		nx, err := o.rewrite(x, memo)
		if err != nil {
			return nil, err
		}
		return o.g.Gather(nx, idx)
	}
}

// reorderChain flattens a tree of MatMul nodes into a chain and rebuilds
// it in the order the DP of §5 picks.
func (o *Optimizer) reorderChain(n *algebra.Node, memo map[*algebra.Node]*algebra.Node) (*algebra.Node, error) {
	leaves := flattenChain(n)
	if len(leaves) < 3 {
		return o.rebuild(n, memo)
	}
	// Optimize the leaves themselves first.
	opt := make([]*algebra.Node, len(leaves))
	for i, l := range leaves {
		nl, err := o.rewrite(l, memo)
		if err != nil {
			return nil, err
		}
		opt[i] = nl
	}
	dims := make([]float64, len(opt)+1)
	dims[0] = float64(opt[0].Shape.Rows)
	for i, l := range opt {
		dims[i+1] = float64(l.Shape.Cols)
	}
	tree := costmodel.OptOrder(dims)
	return o.buildTree(tree, opt, n.Ring)
}

func (o *Optimizer) buildTree(t *costmodel.Tree, leaves []*algebra.Node, ring string) (*algebra.Node, error) {
	if t.IsLeaf() {
		return leaves[t.Leaf], nil
	}
	l, err := o.buildTree(t.L, leaves, ring)
	if err != nil {
		return nil, err
	}
	r, err := o.buildTree(t.R, leaves, ring)
	if err != nil {
		return nil, err
	}
	return o.g.MatMulRing(l, r, ring)
}

// flattenChain returns the in-order leaves of a maximal MatMul tree.
// Reordering leans only on ⊗-associativity, which every semi-ring has,
// so a chain may be flattened exactly as far as its ring is uniform: a
// MatMul kid over a different ring stays a leaf (and is optimized as
// its own chain when the rewriter reaches it).
func flattenChain(n *algebra.Node) []*algebra.Node {
	return flattenChainRing(n, n.Ring)
}

func flattenChainRing(n *algebra.Node, ring string) []*algebra.Node {
	if n.Op != algebra.OpMatMul || n.Ring != ring {
		return []*algebra.Node{n}
	}
	return append(flattenChainRing(n.Kids[0], ring), flattenChainRing(n.Kids[1], ring)...)
}
