package opt

import (
	"testing"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

func vec(t *testing.T, pool *buffer.Pool, name string, n int64) *array.Vector {
	t.Helper()
	v, err := array.NewVector(pool, name, n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mat(t *testing.T, pool *buffer.Pool, name string, r, c int64) *array.Matrix {
	t.Helper()
	m, err := array.NewMatrix(pool, name, r, c, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRangePushesThroughElementwise(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 8)
	g := algebra.NewGraph()
	x := g.SourceVec(vec(t, pool, "x", 1000))
	a, _ := g.ScalarOp("^", x, 2, false)
	u, _ := g.UpdateMask(a, ">", 100, 100)
	r, _ := g.Range(u, 0, 10)
	root, err := New(g, DefaultConfig()).Optimize(r)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: update(scalar^2(range(x))) — range at the bottom.
	if root.Op != algebra.OpUpdateMask {
		t.Fatalf("root is %s, want update", root.Op)
	}
	inner := root.Kids[0]
	if inner.Op != algebra.OpScalarOp {
		t.Fatalf("inner is %s, want scalar op", inner.Op)
	}
	leaf := inner.Kids[0]
	if leaf.Op != algebra.OpRange || leaf.Kids[0].Op != algebra.OpSourceVec {
		t.Fatalf("range not pushed to source: %s", root)
	}
	if root.Shape.Rows != 10 {
		t.Fatalf("shape %v after pushdown", root.Shape)
	}
}

func TestGatherPushesThroughBinary(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 8)
	g := algebra.NewGraph()
	x := g.SourceVec(vec(t, pool, "x", 1000))
	y := g.SourceVec(vec(t, pool, "y", 1000))
	sum, _ := g.ElemBinary("+", x, y)
	idx := g.SourceVec(vec(t, pool, "s", 5))
	gt, _ := g.Gather(sum, idx)
	root, err := New(g, DefaultConfig()).Optimize(gt)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != algebra.OpElemBinary {
		t.Fatalf("root %s, want binary over gathers", root.Op)
	}
	for _, k := range root.Kids {
		if k.Op != algebra.OpGather || k.Kids[0].Op != algebra.OpSourceVec {
			t.Fatalf("gather not pushed to sources: %s", root)
		}
	}
}

func TestPushdownDisabled(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 8)
	g := algebra.NewGraph()
	x := g.SourceVec(vec(t, pool, "x", 100))
	a, _ := g.ScalarOp("+", x, 1, false)
	r, _ := g.Range(a, 0, 10)
	cfg := DefaultConfig()
	cfg.PushdownRange = false
	root, err := New(g, cfg).Optimize(r)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != algebra.OpRange {
		t.Fatalf("range moved despite disabled rule: %s", root)
	}
}

func TestChainReorderPicksDPOrder(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 64)
	g := algebra.NewGraph()
	// Skewed: (A·B)·C is 100·10·100 + 100·100·100 mults; A·(B·C) is
	// 10·100·100 + 100·10·100 — the DP must choose the latter.
	a := g.SourceMat(mat(t, pool, "a", 100, 10))
	b := g.SourceMat(mat(t, pool, "b", 10, 100))
	c := g.SourceMat(mat(t, pool, "c", 100, 100))
	ab, _ := g.MatMul(a, b)
	abc, _ := g.MatMul(ab, c)
	root, err := New(g, DefaultConfig()).Optimize(abc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Kids[0] != a || root.Kids[1].Op != algebra.OpMatMul {
		t.Fatalf("chain not reordered to A(BC): %s", root)
	}
	if root.Shape.Rows != 100 || root.Shape.Cols != 100 {
		t.Fatalf("reordered shape %v", root.Shape)
	}
}

func TestChainReorderDisabled(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 64)
	g := algebra.NewGraph()
	a := g.SourceMat(mat(t, pool, "a", 100, 10))
	b := g.SourceMat(mat(t, pool, "b", 10, 100))
	c := g.SourceMat(mat(t, pool, "c", 100, 100))
	ab, _ := g.MatMul(a, b)
	abc, _ := g.MatMul(ab, c)
	cfg := DefaultConfig()
	cfg.ChainReorder = false
	root, err := New(g, cfg).Optimize(abc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Kids[0].Op != algebra.OpMatMul {
		t.Fatalf("chain reordered despite disabled rule: %s", root)
	}
}

func TestTwoMatrixChainUntouched(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 64)
	g := algebra.NewGraph()
	a := g.SourceMat(mat(t, pool, "a", 10, 10))
	b := g.SourceMat(mat(t, pool, "b", 10, 10))
	ab, _ := g.MatMul(a, b)
	root, err := New(g, DefaultConfig()).Optimize(ab)
	if err != nil {
		t.Fatal(err)
	}
	if root != ab {
		t.Fatalf("two-matrix product rewritten: %s", root)
	}
}

func TestSharingPreservedAcrossRewrite(t *testing.T) {
	pool := buffer.New(disk.NewDevice(16), 8)
	g := algebra.NewGraph()
	x := g.SourceVec(vec(t, pool, "x", 100))
	shared, _ := g.ScalarOp("+", x, 1, false)
	l, _ := g.ElemUnary("sqrt", shared)
	r, _ := g.ScalarOp("*", shared, 2, false)
	both, _ := g.ElemBinary("+", l, r)
	root, err := New(g, DefaultConfig()).Optimize(both)
	if err != nil {
		t.Fatal(err)
	}
	// The shared node must still be shared after the (identity) rewrite.
	if root.Kids[0].Kids[0] != root.Kids[1].Kids[0] {
		t.Fatal("sharing lost across rewrite")
	}
}

func TestRangeOverGatherBarrier(t *testing.T) {
	// Range over gather: the gather is a barrier, the range stays above
	// it (it would reorder the selected elements otherwise).
	pool := buffer.New(disk.NewDevice(16), 8)
	g := algebra.NewGraph()
	x := g.SourceVec(vec(t, pool, "x", 100))
	idx := g.SourceVec(vec(t, pool, "s", 50))
	gt, _ := g.Gather(x, idx)
	r, _ := g.Range(gt, 0, 5)
	root, err := New(g, DefaultConfig()).Optimize(r)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != algebra.OpRange || root.Kids[0].Op != algebra.OpGather {
		t.Fatalf("range crossed a gather barrier: %s", root)
	}
}
