// Package sql implements the SQL subset RIOT-DB generates: CREATE TABLE
// (optionally AS SELECT), CREATE VIEW, INSERT, DROP, and SELECT with
// joins expressed in the WHERE clause, GROUP BY, ORDER BY, and LIMIT.
//
// The paper's RIOT-DB never shows users SQL, but it speaks SQL to its
// backend: every R operation becomes a view definition, and forcing a
// result optimizes and executes the accumulated view expansion (§4.1).
// This package is that backend: parsing, view expansion, logical
// planning, and a small cost-based physical optimizer that chooses among
// merge join, index-nested-loop join, and (Grace) hash join.
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "CREATE": true, "TABLE": true, "VIEW": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DROP": true, "PRIMARY": true, "KEY": true,
	"ASC": true, "DESC": true, "DOUBLE": true, "IF": true, "EXISTS": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It is strict: any unexpected byte is an error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentCont(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '#' }

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
		} else if c == '.' && !seenDot && !seenExp {
			seenDot = true
			l.pos++
		} else if (c == 'e' || c == 'E') && !seenExp && l.pos > start {
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		} else {
			break
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return fmt.Errorf("sql: bad number %q at %d", text, start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: v, pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		t := two
		if t == "!=" {
			t = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: t, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '+', '-', '/', '=', '<', '>', ';', '^', '%':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
