package sql

import (
	"fmt"
	"strings"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

// ParseSelect parses a SELECT statement only.
func ParseSelect(src string) (*SelectStmt, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", st)
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.cur().kind == kind && (text == "" || p.cur().text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.cur().kind == kind && (text == "" || p.cur().text == text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, got %q", want, p.cur().text)
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.cur().kind == tokKeyword && p.cur().text == "SELECT":
		return p.parseSelect()
	case p.cur().kind == tokKeyword && p.cur().text == "CREATE":
		return p.parseCreate()
	case p.cur().kind == tokKeyword && p.cur().text == "INSERT":
		return p.parseInsert()
	case p.cur().kind == tokKeyword && p.cur().text == "DROP":
		return p.parseDrop()
	}
	return nil, p.errf("expected statement, got %q", p.cur().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	for {
		if p.accept(tokSymbol, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				id, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = id.text
			} else if p.cur().kind == tokIdent {
				// Implicit alias: SELECT a.I I
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: id.text}
		if p.cur().kind == tokIdent {
			ref.Alias = p.next().text
		}
		sel.From = append(sel.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		sel.Limit = int64(n.num)
	}
	return sel, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "VIEW") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		v := &CreateViewStmt{Name: id.text}
		if p.accept(tokSymbol, "(") {
			for {
				c, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				v.Cols = append(v.Cols, c.text)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		v.As = sel
		return v, nil
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Name: id.text}
	if p.accept(tokKeyword, "AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ct.As = sel
		return ct, nil
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, c.text)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, c.text)
			p.accept(tokKeyword, "DOUBLE") // optional type annotation
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: id.text}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []float64
		for {
			neg := p.accept(tokSymbol, "-")
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			v := n.num
			if neg {
				v = -v
			}
			row = append(row, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if _, err := p.expect(tokKeyword, "DROP"); err != nil {
		return nil, err
	}
	d := &DropStmt{}
	if p.accept(tokKeyword, "VIEW") {
		d.View = true
	} else if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d.Name = id.text
	return d, nil
}

// Expression grammar, lowest to highest precedence:
// OR, AND, NOT, comparison, additive, multiplicative, power, unary, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol {
		op := p.cur().text
		if op != "=" && op != "<" && op != ">" && op != "<=" && op != ">=" && op != "<>" {
			break
		}
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.next().text
		r, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePow() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	// Right-associative.
	if p.cur().kind == tokSymbol && p.cur().text == "^" {
		p.next()
		r, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: "^", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", X: x}, nil
	}
	if p.cur().kind == tokSymbol && p.cur().text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return NumLit{V: t.num}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		// Function call?
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.next()
			f := FuncExpr{Name: strings.ToUpper(t.text)}
			if p.accept(tokSymbol, "*") {
				f.Star = true
			} else if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.text, Name: col.text}, nil
		}
		return ColRef{Name: t.text}, nil
	}
	return nil, p.errf("expected expression, got %q", t.text)
}
