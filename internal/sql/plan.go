package sql

import (
	"fmt"
	"strings"

	"riot/internal/relation"
)

// colInfo is one output column of a plan: its binding qualifier (table
// alias) and column name.
type colInfo struct {
	qual string
	name string
}

// plan is a physical plan fragment with the properties the optimizer
// tracks: output schema, interesting order (sorted prefix), uniqueness of
// that prefix, and a cardinality estimate.
type plan struct {
	it     relation.Iterator
	schema []colInfo
	sorted []int // positions of the prefix the output is ordered by
	unique bool  // the sorted prefix is a unique key
	rows   int64
	desc   string
}

func (p *plan) arity() int { return len(p.schema) }

// find resolves a column reference against the plan's schema.
// Unqualified names must be unambiguous.
func (p *plan) find(qual, name string) (int, error) {
	found := -1
	for i, c := range p.schema {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, nil
}

// sortedCovers reports whether the plan's sorted prefix covers cols in
// order (so a merge join / group-by on cols needs no sort).
func (p *plan) sortedCovers(cols []int) bool {
	if len(p.sorted) < len(cols) {
		return false
	}
	for i, c := range cols {
		if p.sorted[i] != c {
			return false
		}
	}
	return true
}

// planSelect turns a SELECT into a physical plan. Views referenced in
// FROM are merged into the query when possible (no GROUP BY / ORDER BY /
// LIMIT in the view), exactly the expansion the paper relies on to
// optimize across R operations; non-mergeable views become subplan
// barriers, which is how the two hash-join-sort-aggregate steps of the
// RIOT-DB matrix chain arise.
func (db *Database) planSelect(sel *SelectStmt) (*plan, error) {
	sel, err := db.expandViews(sel, 0)
	if err != nil {
		return nil, err
	}

	// Plan each FROM item.
	items := make([]*plan, len(sel.From))
	for i, ref := range sel.From {
		p, err := db.planFrom(ref)
		if err != nil {
			return nil, err
		}
		items[i] = p
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("sql: SELECT without FROM")
	}

	// Classify WHERE conjuncts.
	var joins []joinEdge
	var residual []Expr
	locate := func(c ColRef) (int, int, error) {
		for i, p := range items {
			if pos, err := p.find(c.Table, c.Name); err == nil {
				// Check for cross-item ambiguity of unqualified names.
				if c.Table == "" {
					for k := i + 1; k < len(items); k++ {
						if _, err2 := items[k].find("", c.Name); err2 == nil {
							return 0, 0, fmt.Errorf("sql: ambiguous column %q", c.Name)
						}
					}
				}
				return i, pos, nil
			}
		}
		return 0, 0, fmt.Errorf("sql: unknown column %s", c)
	}
	// itemOf returns the single item an expression's references live in,
	// or -1 when the expression is constant or spans items.
	itemOf := func(e Expr) (int, error) {
		var refs []ColRef
		colRefsIn(e, &refs)
		item := -1
		for _, rf := range refs {
			i, _, err := locate(rf)
			if err != nil {
				return 0, err
			}
			if item == -1 {
				item = i
			} else if item != i {
				return -1, nil
			}
		}
		return item, nil
	}
	// sideCol resolves one side of an equijoin to a column position in
	// its item, appending a computed column when the side is a non-
	// trivial expression (e.g. the paper's D.I = S.V - 1 after an index
	// shift).
	sideCol := func(item int, e Expr) (int, error) {
		if c, ok := e.(ColRef); ok {
			return items[item].find(c.Table, c.Name)
		}
		pe, err := db.toPhysExpr(e, items[item])
		if err != nil {
			return 0, err
		}
		p := items[item]
		exprs := make([]relation.Expr, 0, p.arity()+1)
		schema := make([]colInfo, 0, p.arity()+1)
		for i, ci := range p.schema {
			exprs = append(exprs, relation.Col{Idx: i})
			schema = append(schema, ci)
		}
		exprs = append(exprs, pe)
		schema = append(schema, colInfo{})
		items[item] = &plan{
			it:     &relation.Project{Input: p.it, Exprs: exprs},
			schema: schema,
			sorted: p.sorted,
			unique: p.unique,
			rows:   p.rows,
			desc:   p.desc, // computed columns don't change the plan shape
		}
		return p.arity(), nil
	}
	if sel.Where != nil {
		for _, c := range conjuncts(sel.Where) {
			if b, ok := c.(BinExpr); ok && b.Op == "=" {
				li, err := itemOf(b.L)
				if err != nil {
					return nil, err
				}
				ri, err := itemOf(b.R)
				if err != nil {
					return nil, err
				}
				if li >= 0 && ri >= 0 && li != ri {
					lpos, err := sideCol(li, b.L)
					if err != nil {
						return nil, err
					}
					rpos, err := sideCol(ri, b.R)
					if err != nil {
						return nil, err
					}
					joins = append(joins, joinEdge{a: li, acol: lpos, b: ri, bcol: rpos})
					continue
				}
			}
			// Single-item predicate? Push it down; else keep residual.
			var refs []ColRef
			colRefsIn(c, &refs)
			item := -1
			single := true
			for _, r := range refs {
				i, _, err := locate(r)
				if err != nil {
					return nil, err
				}
				if item == -1 {
					item = i
				} else if item != i {
					single = false
					break
				}
			}
			if single && item >= 0 {
				pred, err := db.toPhysExpr(c, items[item])
				if err != nil {
					return nil, err
				}
				items[item] = &plan{
					it:     &relation.Filter{Input: items[item].it, Pred: pred},
					schema: items[item].schema,
					sorted: items[item].sorted,
					unique: items[item].unique,
					rows:   items[item].rows/3 + 1,
					desc:   fmt.Sprintf("Filter(%s)", items[item].desc),
				}
			} else {
				residual = append(residual, c)
			}
		}
	}

	// Join the items greedily, cheapest estimated result first.
	joined, err := db.joinItems(sel, items, joins)
	if err != nil {
		return nil, err
	}
	cur := joined

	// Residual predicates.
	for _, c := range residual {
		pred, err := db.toPhysExpr(c, cur)
		if err != nil {
			return nil, err
		}
		cur = &plan{
			it:     &relation.Filter{Input: cur.it, Pred: pred},
			schema: cur.schema,
			sorted: cur.sorted,
			unique: cur.unique,
			rows:   cur.rows/3 + 1,
			desc:   fmt.Sprintf("Filter(%s)", cur.desc),
		}
	}

	// Star expansion.
	itemsOut := sel.Items
	if len(itemsOut) == 1 && itemsOut[0].Star {
		itemsOut = nil
		for _, c := range cur.schema {
			itemsOut = append(itemsOut, SelectItem{Expr: ColRef{Table: c.qual, Name: c.name}, Alias: c.name})
		}
	}

	grouped := len(sel.GroupBy) > 0
	if !grouped {
		for _, it := range itemsOut {
			if !it.Star && hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
		if grouped && len(sel.GroupBy) == 0 {
			return db.planScalarAgg(sel, cur, itemsOut)
		}
	}
	if grouped {
		return db.planGroupBy(sel, cur, itemsOut)
	}

	// Plain projection.
	exprs := make([]relation.Expr, len(itemsOut))
	outSchema := make([]colInfo, len(itemsOut))
	var outSorted []int
	for i, item := range itemsOut {
		e, err := db.toPhysExpr(item.Expr, cur)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		outSchema[i] = colInfo{name: db.itemName(item, i)}
		if c, ok := item.Expr.(ColRef); ok {
			outSchema[i].qual = c.Table
		}
	}
	// Order preservation: if the projection keeps the sorted prefix
	// columns (as bare references, in some positions), the output stays
	// ordered by them.
	if len(cur.sorted) > 0 {
		posOf := make(map[int]int) // input position -> output position
		for outPos, item := range itemsOut {
			if c, ok := item.Expr.(ColRef); ok {
				if inPos, err := cur.find(c.Table, c.Name); err == nil {
					if _, dup := posOf[inPos]; !dup {
						posOf[inPos] = outPos
					}
				}
			}
		}
		for _, inPos := range cur.sorted {
			op, ok := posOf[inPos]
			if !ok {
				break
			}
			outSorted = append(outSorted, op)
		}
	}
	out := &plan{
		it:     &relation.Project{Input: cur.it, Exprs: exprs},
		schema: outSchema,
		sorted: outSorted,
		unique: cur.unique && len(outSorted) > 0,
		rows:   cur.rows,
		desc:   fmt.Sprintf("Project(%s)", cur.desc),
	}
	return db.finishOrderLimit(sel, out)
}

// finishOrderLimit applies ORDER BY and LIMIT on top of a plan whose
// schema is the final output schema.
func (db *Database) finishOrderLimit(sel *SelectStmt, p *plan) (*plan, error) {
	if len(sel.OrderBy) > 0 {
		cols := make([]int, len(sel.OrderBy))
		desc := make([]bool, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			c, ok := o.Expr.(ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: ORDER BY supports column references only, got %s", o.Expr)
			}
			pos, err := p.find(c.Table, c.Name)
			if err != nil {
				return nil, err
			}
			cols[i] = pos
			desc[i] = o.Desc
		}
		needSort := true
		if !anyDesc(desc) && p.sortedCovers(cols) {
			needSort = false
		}
		if needSort {
			p = &plan{
				it:     &relation.Sort{Input: p.it, Arity: p.arity(), Cols: cols, Desc: desc, Ctx: db.ctx},
				schema: p.schema,
				sorted: cols,
				rows:   p.rows,
				desc:   fmt.Sprintf("Sort(%s)", p.desc),
			}
		}
	}
	if sel.Limit >= 0 {
		p = &plan{
			it:     &relation.Limit{Input: p.it, N: sel.Limit},
			schema: p.schema,
			sorted: p.sorted,
			rows:   min64(p.rows, sel.Limit),
			desc:   fmt.Sprintf("Limit(%d, %s)", sel.Limit, p.desc),
		}
	}
	return p, nil
}

func anyDesc(d []bool) bool {
	for _, v := range d {
		if v {
			return true
		}
	}
	return false
}

// planGroupBy lowers GROUP BY + aggregates: project group keys and
// aggregate arguments, sort on the keys unless already ordered, stream-
// aggregate, and project the final select list.
func (db *Database) planGroupBy(sel *SelectStmt, cur *plan, items []SelectItem) (*plan, error) {
	// Columns for group keys.
	groupCols := make([]int, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		c, ok := g.(ColRef)
		if !ok {
			return nil, fmt.Errorf("sql: GROUP BY supports column references only, got %s", g)
		}
		pos, err := cur.find(c.Table, c.Name)
		if err != nil {
			return nil, err
		}
		groupCols[i] = pos
	}
	// Classify select items: group column or single aggregate.
	type outCol struct {
		isAgg    bool
		groupIdx int // index into groupCols
		aggIdx   int // index into aggs
	}
	var aggs []relation.AggSpec
	outs := make([]outCol, len(items))
	outSchema := make([]colInfo, len(items))
	for i, item := range items {
		outSchema[i] = colInfo{name: db.itemName(item, i)}
		if c, ok := item.Expr.(ColRef); ok && !hasAggregate(item.Expr) {
			pos, err := cur.find(c.Table, c.Name)
			if err != nil {
				return nil, err
			}
			gi := -1
			for k, gc := range groupCols {
				if gc == pos {
					gi = k
					break
				}
			}
			if gi < 0 {
				return nil, fmt.Errorf("sql: column %s not in GROUP BY", c)
			}
			outs[i] = outCol{groupIdx: gi}
			outSchema[i].qual = c.Table
			continue
		}
		f, ok := item.Expr.(FuncExpr)
		if !ok || !aggFuncs[f.Name] {
			return nil, fmt.Errorf("sql: select item %s must be a group column or aggregate", item.Expr)
		}
		fn, _ := relation.AggFnByName(f.Name)
		var arg relation.Expr = relation.Const{V: 1}
		if !f.Star {
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("sql: aggregate %s takes one argument", f.Name)
			}
			a, err := db.toPhysExpr(f.Args[0], cur)
			if err != nil {
				return nil, err
			}
			arg = a
		}
		outs[i] = outCol{isAgg: true, aggIdx: len(aggs)}
		aggs = append(aggs, relation.AggSpec{Fn: fn, Arg: arg})
	}

	input := cur.it
	descStr := cur.desc
	if !cur.sortedCovers(groupCols) {
		// Project to (groups..., agg args...) then sort: sorting narrow
		// tuples is what the paper's RIOT-DB plan does after the join.
		pre := make([]relation.Expr, 0, len(groupCols)+len(aggs))
		for _, gc := range groupCols {
			pre = append(pre, relation.Col{Idx: gc})
		}
		for _, a := range aggs {
			pre = append(pre, a.Arg)
		}
		narrow := &relation.Project{Input: input, Exprs: pre}
		sortCols := make([]int, len(groupCols))
		for i := range sortCols {
			sortCols[i] = i
		}
		srt := &relation.Sort{Input: narrow, Arity: len(pre), Cols: sortCols, Ctx: db.ctx}
		// After narrowing, group cols are 0..k-1 and args k..k+n-1.
		for i := range aggs {
			aggs[i].Arg = relation.Col{Idx: len(groupCols) + i}
		}
		input = srt
		for i := range sortCols {
			groupCols[i] = i
		}
		descStr = fmt.Sprintf("Sort(Project(%s))", descStr)
	}
	agg := &relation.SortedGroupAgg{Input: input, GroupCols: groupCols, Aggs: aggs}
	// Aggregate output: group values then agg values; map to select order.
	finalExprs := make([]relation.Expr, len(items))
	for i, oc := range outs {
		if oc.isAgg {
			finalExprs[i] = relation.Col{Idx: len(groupCols) + oc.aggIdx}
		} else {
			finalExprs[i] = relation.Col{Idx: oc.groupIdx}
		}
	}
	var outSorted []int
	for gi := range groupCols {
		// Output ordered by group keys; find where each lands.
		for i, oc := range outs {
			if !oc.isAgg && oc.groupIdx == gi {
				outSorted = append(outSorted, i)
				break
			}
		}
	}
	if len(outSorted) != len(groupCols) {
		outSorted = nil
	}
	p := &plan{
		it:     &relation.Project{Input: agg, Exprs: finalExprs},
		schema: outSchema,
		sorted: outSorted,
		unique: len(outSorted) == len(groupCols),
		rows:   cur.rows/4 + 1,
		desc:   fmt.Sprintf("GroupAgg(%s)", descStr),
	}
	return db.finishOrderLimit(sel, p)
}

// planScalarAgg lowers aggregates without GROUP BY.
func (db *Database) planScalarAgg(sel *SelectStmt, cur *plan, items []SelectItem) (*plan, error) {
	var aggs []relation.AggSpec
	outSchema := make([]colInfo, len(items))
	for i, item := range items {
		f, ok := item.Expr.(FuncExpr)
		if !ok || !aggFuncs[f.Name] {
			return nil, fmt.Errorf("sql: select item %s must be an aggregate", item.Expr)
		}
		fn, _ := relation.AggFnByName(f.Name)
		var arg relation.Expr = relation.Const{V: 1}
		if !f.Star {
			a, err := db.toPhysExpr(f.Args[0], cur)
			if err != nil {
				return nil, err
			}
			arg = a
		}
		aggs = append(aggs, relation.AggSpec{Fn: fn, Arg: arg})
		outSchema[i] = colInfo{name: db.itemName(item, i)}
	}
	p := &plan{
		it:     &relation.ScalarAgg{Input: cur.it, Aggs: aggs},
		schema: outSchema,
		rows:   1,
		desc:   fmt.Sprintf("ScalarAgg(%s)", cur.desc),
	}
	return db.finishOrderLimit(sel, p)
}

// itemName picks the output column name for a select item.
func (db *Database) itemName(item SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := item.Expr.(ColRef); ok {
		return c.Name
	}
	return fmt.Sprintf("c%d", i+1)
}

// toPhysExpr translates an AST expression into a physical expression
// bound to p's schema.
func (db *Database) toPhysExpr(e Expr, p *plan) (relation.Expr, error) {
	switch t := e.(type) {
	case NumLit:
		return relation.Const{V: t.V}, nil
	case ColRef:
		pos, err := p.find(t.Table, t.Name)
		if err != nil {
			return nil, err
		}
		return relation.Col{Idx: pos, Name: t.String()}, nil
	case UnaryExpr:
		x, err := db.toPhysExpr(t.X, p)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return relation.Not{X: x}, nil
		}
		return relation.Neg{X: x}, nil
	case BinExpr:
		l, err := db.toPhysExpr(t.L, p)
		if err != nil {
			return nil, err
		}
		r, err := db.toPhysExpr(t.R, p)
		if err != nil {
			return nil, err
		}
		op, ok := sqlBinOps[t.Op]
		if !ok {
			return nil, fmt.Errorf("sql: unknown operator %q", t.Op)
		}
		return relation.Binary{Op: op, L: l, R: r}, nil
	case FuncExpr:
		if aggFuncs[t.Name] {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", t.Name)
		}
		fn, nargs, ok := relation.KnownFunc(t.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %q", t.Name)
		}
		if len(t.Args) != nargs {
			return nil, fmt.Errorf("sql: %s takes %d arguments, got %d", t.Name, nargs, len(t.Args))
		}
		args := make([]relation.Expr, len(t.Args))
		for i, a := range t.Args {
			x, err := db.toPhysExpr(a, p)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return relation.Call{Fn: fn, Args: args}, nil
	}
	return nil, fmt.Errorf("sql: cannot translate %T", e)
}

var sqlBinOps = map[string]relation.BinOp{
	"+": relation.OpAdd, "-": relation.OpSub, "*": relation.OpMul,
	"/": relation.OpDiv, "^": relation.OpPow, "%": relation.OpMod,
	"=": relation.OpEq, "<>": relation.OpNe, "<": relation.OpLt,
	"<=": relation.OpLe, ">": relation.OpGt, ">=": relation.OpGe,
	"AND": relation.OpAnd, "OR": relation.OpOr,
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
