package sql

import (
	"fmt"
	"strings"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil if absent
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64 // -1 if absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one output expression with an optional alias. A bare
// `*` is represented by Star=true.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef names a table or view in FROM, with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Bind returns the effective name the reference is known by.
func (t TableRef) Bind() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt creates a table, either from a column list or from a
// query (CREATE TABLE name AS SELECT...). PK lists primary-key columns;
// empty means the first column (RIOT-DB's convention: array index first).
type CreateTableStmt struct {
	Name string
	Cols []string
	PK   []string
	As   *SelectStmt
}

func (*CreateTableStmt) stmt() {}

// CreateViewStmt records a view definition without evaluating it.
type CreateViewStmt struct {
	Name string
	Cols []string // optional output column names
	As   *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]float64
}

func (*InsertStmt) stmt() {}

// DropStmt drops a table or view.
type DropStmt struct {
	Name     string
	View     bool
	IfExists bool
}

func (*DropStmt) stmt() {}

// Expr is a parsed scalar (or aggregate) expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// NumLit is a numeric literal.
type NumLit struct{ V float64 }

func (NumLit) expr()            {}
func (n NumLit) String() string { return fmt.Sprintf("%g", n.V) }

// ColRef references a column, optionally qualified by table alias.
type ColRef struct {
	Table string // "" if unqualified
	Name  string
}

func (ColRef) expr() {}
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// BinExpr is a binary operation; Op is the SQL token ("+", "AND", "<=").
type BinExpr struct {
	Op   string
	L, R Expr
}

func (BinExpr) expr() {}
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnaryExpr is negation or NOT.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	X  Expr
}

func (UnaryExpr) expr() {}
func (u UnaryExpr) String() string {
	return fmt.Sprintf("(%s %s)", u.Op, u.X)
}

// FuncExpr is a function call: scalar (SQRT, POW, …) or aggregate
// (SUM, COUNT, AVG, MIN, MAX). Star marks COUNT(*).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
	Star bool
}

func (FuncExpr) expr() {}
func (f FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// aggFuncs are the aggregate function names.
var aggFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether e contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch t := e.(type) {
	case NumLit, ColRef:
		return false
	case BinExpr:
		return hasAggregate(t.L) || hasAggregate(t.R)
	case UnaryExpr:
		return hasAggregate(t.X)
	case FuncExpr:
		if aggFuncs[t.Name] {
			return true
		}
		for _, a := range t.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("sql: hasAggregate of %T", e))
}

// substituteCols rewrites column references using sub; references not in
// sub are kept. Used for view expansion.
func substituteCols(e Expr, sub func(c ColRef) (Expr, bool)) Expr {
	switch t := e.(type) {
	case NumLit:
		return t
	case ColRef:
		if r, ok := sub(t); ok {
			return r
		}
		return t
	case BinExpr:
		return BinExpr{Op: t.Op, L: substituteCols(t.L, sub), R: substituteCols(t.R, sub)}
	case UnaryExpr:
		return UnaryExpr{Op: t.Op, X: substituteCols(t.X, sub)}
	case FuncExpr:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = substituteCols(a, sub)
		}
		return FuncExpr{Name: t.Name, Args: args, Star: t.Star}
	}
	panic(fmt.Sprintf("sql: substituteCols of %T", e))
}

// conjuncts splits a predicate on AND.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(BinExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// andAll joins conjuncts back with AND; nil for an empty list.
func andAll(cs []Expr) Expr {
	var out Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = BinExpr{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// colRefsIn collects every ColRef in e.
func colRefsIn(e Expr, out *[]ColRef) {
	switch t := e.(type) {
	case NumLit:
	case ColRef:
		*out = append(*out, t)
	case BinExpr:
		colRefsIn(t.L, out)
		colRefsIn(t.R, out)
	case UnaryExpr:
		colRefsIn(t.X, out)
	case FuncExpr:
		for _, a := range t.Args {
			colRefsIn(a, out)
		}
	default:
		panic(fmt.Sprintf("sql: colRefsIn of %T", e))
	}
}
