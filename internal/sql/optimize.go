package sql

import (
	"fmt"
	"strings"

	"riot/internal/relation"
)

const maxViewDepth = 64

// expandViews merges view references in FROM into the statement itself,
// recursively. A view is mergeable when its definition is a plain
// select-project-join (no GROUP BY / ORDER BY / LIMIT / aggregates);
// merging rewrites outer references through the view's select items —
// the query expansion step the paper attributes to the database's view
// facility. Non-mergeable views are left in place and planned as
// subquery barriers by planFrom.
func (db *Database) expandViews(sel *SelectStmt, depth int) (*SelectStmt, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("sql: view nesting exceeds %d (cycle?)", maxViewDepth)
	}
	out := &SelectStmt{
		Items:   append([]SelectItem(nil), sel.Items...),
		Where:   sel.Where,
		GroupBy: append([]Expr(nil), sel.GroupBy...),
		OrderBy: append([]OrderItem(nil), sel.OrderBy...),
		Limit:   sel.Limit,
	}
	// `*` must be expanded against the FROM list as written, before any
	// view merging widens it to the views' base tables.
	if len(out.Items) == 1 && out.Items[0].Star {
		var items []SelectItem
		for _, ref := range sel.From {
			cols, err := db.relationCols(ref.Name)
			if err != nil {
				return nil, err
			}
			for _, c := range cols {
				items = append(items, SelectItem{Expr: ColRef{Table: ref.Bind(), Name: c}, Alias: c})
			}
		}
		out.Items = items
	}
	changed := false
	for _, ref := range sel.From {
		v, isView := db.ViewDef(ref.Name)
		if !isView || !mergeable(v.Def) {
			out.From = append(out.From, ref)
			continue
		}
		changed = true
		bind := ref.Bind()
		// Recursively expand the view body first.
		body, err := db.expandViews(v.Def, depth+1)
		if err != nil {
			return nil, err
		}
		// Fresh aliases for the view's FROM items.
		rename := make(map[string]string)
		for _, inner := range body.From {
			fresh := db.tempName(bind + "$" + inner.Bind())
			rename[strings.ToLower(inner.Bind())] = fresh
			out.From = append(out.From, TableRef{Name: inner.Name, Alias: fresh})
		}
		requal := func(c ColRef) (Expr, bool) {
			if c.Table == "" {
				// Unqualified inside the view body: resolvable iff the
				// body has a single FROM item.
				if len(body.From) == 1 {
					for _, fresh := range rename {
						return ColRef{Table: fresh, Name: c.Name}, true
					}
				}
				return nil, false
			}
			if fresh, ok := rename[strings.ToLower(c.Table)]; ok {
				return ColRef{Table: fresh, Name: c.Name}, true
			}
			return nil, false
		}
		// Column substitution: bind.col -> view item expr (requalified).
		subs := make(map[string]Expr)
		for i, item := range body.Items {
			if i >= len(v.Cols) {
				break
			}
			subs[strings.ToLower(v.Cols[i])] = substituteCols(item.Expr, requal)
		}
		replace := func(c ColRef) (Expr, bool) {
			if !strings.EqualFold(c.Table, bind) {
				return nil, false
			}
			e, ok := subs[strings.ToLower(c.Name)]
			if !ok {
				return nil, false
			}
			return e, true
		}
		// Rewrite outer expressions.
		for i := range out.Items {
			if !out.Items[i].Star {
				if out.Items[i].Alias == "" {
					// Preserve the user-visible name through expansion.
					if c, ok := out.Items[i].Expr.(ColRef); ok && strings.EqualFold(c.Table, bind) {
						out.Items[i].Alias = c.Name
					}
				}
				out.Items[i].Expr = substituteCols(out.Items[i].Expr, replace)
			}
		}
		if out.Where != nil {
			out.Where = substituteCols(out.Where, replace)
		}
		for i := range out.GroupBy {
			out.GroupBy[i] = substituteCols(out.GroupBy[i], replace)
		}
		for i := range out.OrderBy {
			out.OrderBy[i].Expr = substituteCols(out.OrderBy[i].Expr, replace)
		}
		// The view's own WHERE joins the outer one.
		if body.Where != nil {
			w := substituteCols(body.Where, requal)
			if out.Where == nil {
				out.Where = w
			} else {
				out.Where = BinExpr{Op: "AND", L: out.Where, R: w}
			}
		}
	}
	if changed {
		// New view references may have been pulled in.
		return db.expandViews(out, depth+1)
	}
	return out, nil
}

// relationCols returns the visible column names of a table or view.
func (db *Database) relationCols(name string) ([]string, error) {
	if t, ok := db.Table(name); ok {
		return t.Schema.Cols, nil
	}
	if v, ok := db.ViewDef(name); ok {
		return v.Cols, nil
	}
	return nil, fmt.Errorf("sql: unknown relation %q", name)
}

// mergeable reports whether a view body can be inlined.
func mergeable(s *SelectStmt) bool {
	if len(s.GroupBy) > 0 || len(s.OrderBy) > 0 || s.Limit >= 0 {
		return false
	}
	for _, item := range s.Items {
		if item.Star || hasAggregate(item.Expr) {
			return false
		}
	}
	return true
}

// planFrom plans a single FROM reference: a base-table scan or a view
// subplan barrier.
func (db *Database) planFrom(ref TableRef) (*plan, error) {
	bind := ref.Bind()
	if t, ok := db.Table(ref.Name); ok {
		schema := make([]colInfo, t.Schema.Arity())
		for i, c := range t.Schema.Cols {
			schema[i] = colInfo{qual: bind, name: c}
		}
		return &plan{
			it:     relation.NewSeqScan(t.Heap),
			schema: schema,
			sorted: append([]int(nil), t.PK...),
			unique: len(t.PK) > 0,
			rows:   t.Rows(),
			desc:   fmt.Sprintf("Scan(%s)", t.Name),
		}, nil
	}
	if v, ok := db.ViewDef(ref.Name); ok {
		sub, err := db.planSelect(v.Def)
		if err != nil {
			return nil, err
		}
		schema := make([]colInfo, len(sub.schema))
		for i := range sub.schema {
			name := sub.schema[i].name
			if i < len(v.Cols) {
				name = v.Cols[i]
			}
			schema[i] = colInfo{qual: bind, name: name}
		}
		return &plan{
			it:     sub.it,
			schema: schema,
			sorted: sub.sorted,
			unique: sub.unique,
			rows:   sub.rows,
			desc:   fmt.Sprintf("View(%s, %s)", v.Name, sub.desc),
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown relation %q", ref.Name)
}

// joinItems combines the FROM item plans using the classified equijoin
// conditions, greedily picking the cheapest next join and the best
// physical operator for it (merge join when both inputs arrive ordered,
// index-nested-loop when the inner is a base table probed on its full
// primary key and the outer is small, hash join otherwise).
func (db *Database) joinItems(sel *SelectStmt, items []*plan, joins []joinEdge) (*plan, error) {
	n := len(items)
	if n == 1 {
		return items[0], nil
	}
	// Track, for each original item, its plan and whether it has been
	// absorbed into the current join tree; column offsets of absorbed
	// items within the current output.
	absorbed := make([]bool, n)
	offsets := make([]int, n)

	// Start with the smallest item.
	start := 0
	for i := 1; i < n; i++ {
		if items[i].rows < items[start].rows {
			start = i
		}
	}
	cur := items[start]
	absorbed[start] = true
	offsets[start] = 0
	remaining := n - 1

	for remaining > 0 {
		// Gather candidate items connected to the current tree.
		type cand struct {
			item  int
			lcols []int // positions in cur
			rcols []int // positions in items[item]
		}
		cands := make(map[int]*cand)
		for _, j := range joins {
			var inIdx, outIdx, inCol, outCol int
			switch {
			case absorbed[j.a] && !absorbed[j.b]:
				inIdx, inCol, outIdx, outCol = j.a, j.acol, j.b, j.bcol
			case absorbed[j.b] && !absorbed[j.a]:
				inIdx, inCol, outIdx, outCol = j.b, j.bcol, j.a, j.acol
			default:
				continue
			}
			c := cands[outIdx]
			if c == nil {
				c = &cand{item: outIdx}
				cands[outIdx] = c
			}
			c.lcols = append(c.lcols, offsets[inIdx]+inCol)
			c.rcols = append(c.rcols, outCol)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("sql: query requires a cross product; unsupported")
		}
		// Pick the candidate with the smallest estimated join result.
		var best *cand
		var bestEst int64
		for _, c := range cands {
			est := estimateJoin(cur, items[c.item], c.rcols)
			if best == nil || est < bestEst {
				best, bestEst = c, est
			}
		}
		t := items[best.item]
		// Canonicalize composite conditions in the inner's PK order when
		// possible (merge join and index probes need consistent order).
		lcols, rcols := best.lcols, best.rcols
		if perm := pkPermutation(t, rcols); perm != nil {
			nl := make([]int, len(lcols))
			nr := make([]int, len(rcols))
			for i, p := range perm {
				nl[i], nr[i] = lcols[p], rcols[p]
			}
			lcols, rcols = nl, nr
		}

		joined, err := db.physicalJoin(cur, t, lcols, rcols, bestEst)
		if err != nil {
			return nil, err
		}
		offsets[best.item] = cur.arity()
		absorbed[best.item] = true
		cur = joined
		remaining--
	}
	return cur, nil
}

// joinEdge is an equijoin condition between two FROM items.
type joinEdge struct {
	a, b       int
	acol, bcol int
}

// pkPermutation returns the permutation that reorders cols to the plan's
// sorted-prefix (PK) order, or nil if cols don't cover that prefix.
func pkPermutation(t *plan, cols []int) []int {
	if len(t.sorted) == 0 || len(cols) != len(t.sorted) {
		return nil
	}
	perm := make([]int, len(cols))
	for i, want := range t.sorted {
		found := -1
		for k, c := range cols {
			if c == want {
				found = k
				break
			}
		}
		if found < 0 {
			return nil
		}
		perm[i] = found
	}
	return perm
}

// estimateJoin estimates the output cardinality of joining cur with t.
func estimateJoin(cur, t *plan, rcols []int) int64 {
	if t.sortedCovers(rcols) && t.unique {
		return cur.rows
	}
	if cur.rows == 0 || t.rows == 0 {
		return 0
	}
	// Without key information, assume a 1/10 selectivity of the cross
	// product, capped to avoid overflow.
	est := cur.rows * t.rows / 10
	if est < cur.rows {
		est = cur.rows
	}
	return est
}

// physicalJoin picks and builds the physical join operator.
func (db *Database) physicalJoin(cur, t *plan, lcols, rcols []int, est int64) (*plan, error) {
	schema := append(append([]colInfo(nil), cur.schema...), t.schema...)
	blockElems := int64(db.ctx.Pool.Device().BlockElems())

	// Merge join: both ordered on the join columns.
	if cur.sortedCovers(lcols) && t.sortedCovers(rcols) {
		return &plan{
			it:     &relation.MergeJoin{Left: cur.it, Right: t.it, LeftCols: lcols, RightCols: rcols},
			schema: schema,
			sorted: lcols,
			unique: cur.unique && t.unique,
			rows:   est,
			desc:   fmt.Sprintf("MergeJoin(%s, %s)", cur.desc, t.desc),
		}, nil
	}

	// Index nested loop: t is a base table probed on its full PK.
	// Costs are in sequential-block units: a random block access (index
	// probe) is worth randPenalty sequential ones on 2009-era disks; the
	// index's upper levels are assumed cached, so one probe costs about
	// two random reads (leaf + heap page). A hash join scans both sides
	// sequentially and, if the build side exceeds working memory, spills
	// and re-reads both (Grace), tripling the traffic.
	if bt := db.baseTableOf(t); bt != nil && bt.Index != nil && coversPK(bt, t, rcols) {
		const randPenalty = 50
		probeCost := cur.rows * 2 * randPenalty
		spill := int64(1)
		if t.rows*int64(t.arity()) > db.ctx.WorkMem {
			spill = 3
		}
		hashCost := spill*(t.rows*int64(t.arity())/blockElems+1) +
			cur.rows*int64(cur.arity())/blockElems + 1
		if probeCost < hashCost {
			return &plan{
				it:     &relation.INLJoin{Outer: cur.it, Inner: &relation.IndexedTable{Heap: bt.Heap, Index: bt.Index}, OuterCols: lcols},
				schema: schema,
				sorted: cur.sorted, // outer order preserved
				unique: cur.unique && t.unique,
				rows:   est,
				desc:   fmt.Sprintf("INLJoin(%s, %s)", cur.desc, bt.Name),
			}, nil
		}
	}

	// Hash join, building the smaller side. Output must stay cur ++ t.
	if t.rows <= cur.rows {
		return &plan{
			it: &relation.HashJoin{
				Left: cur.it, Right: t.it,
				LeftCols: lcols, RightCols: rcols,
				LeftArity: cur.arity(), RightArity: t.arity(), Ctx: db.ctx,
			},
			schema: schema,
			rows:   est,
			desc:   fmt.Sprintf("HashJoin(%s, build=%s)", cur.desc, t.desc),
		}, nil
	}
	// Build on cur (smaller): swap inputs, then reorder columns back.
	inner := &relation.HashJoin{
		Left: t.it, Right: cur.it,
		LeftCols: rcols, RightCols: lcols,
		LeftArity: t.arity(), RightArity: cur.arity(), Ctx: db.ctx,
	}
	exprs := make([]relation.Expr, 0, len(schema))
	for i := 0; i < cur.arity(); i++ {
		exprs = append(exprs, relation.Col{Idx: t.arity() + i})
	}
	for i := 0; i < t.arity(); i++ {
		exprs = append(exprs, relation.Col{Idx: i})
	}
	return &plan{
		it:     &relation.Project{Input: inner, Exprs: exprs},
		schema: schema,
		rows:   est,
		desc:   fmt.Sprintf("HashJoin(%s, build=%s)", cur.desc, t.desc),
	}, nil
}

// baseTableOf returns the catalog table behind a plan if it is a plain
// unfiltered scan, else nil. A filtered scan cannot be replaced by index
// probes: the probe would skip the filter.
func (db *Database) baseTableOf(p *plan) *Table {
	d := p.desc
	if !strings.HasPrefix(d, "Scan(") || !strings.HasSuffix(d, ")") {
		return nil
	}
	name := strings.TrimSuffix(strings.TrimPrefix(d, "Scan("), ")")
	t, _ := db.Table(name)
	return t
}

// coversPK reports whether rcols (positions within p's schema) are
// exactly the base table's PK columns.
func coversPK(bt *Table, p *plan, rcols []int) bool {
	if len(rcols) != len(bt.PK) {
		return false
	}
	used := make(map[int]bool)
	for _, c := range rcols {
		used[c] = true
	}
	for _, c := range bt.PK {
		if !used[c] {
			return false
		}
	}
	return true
}
