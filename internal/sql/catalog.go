package sql

import (
	"fmt"
	"strings"

	"riot/internal/relation"
	"riot/internal/rstore"
)

// Table is a base table: a heap file clustered by primary key plus a
// B+tree primary index (MyISAM-style data file + index file).
type Table struct {
	Name   string
	Schema relation.Schema
	PK     []int // primary-key column positions
	Heap   *rstore.HeapFile
	Index  *rstore.BTree // may be nil for index-less temporaries
}

// Rows returns the table cardinality.
func (t *Table) Rows() int64 { return t.Heap.NumRecords() }

// View is a recorded query, unevaluated until referenced — the deferral
// mechanism the paper builds RIOT-DB on.
type View struct {
	Name string
	Cols []string // output column names (defaults to the select aliases)
	Def  *SelectStmt
}

// Database is a catalog of tables and views plus an execution context.
type Database struct {
	ctx    *relation.Context
	tables map[string]*Table
	views  map[string]*View
	seq    int
}

// NewDatabase creates an empty database over ctx.
func NewDatabase(ctx *relation.Context) *Database {
	return &Database{
		ctx:    ctx,
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

// Context exposes the execution context (pool, working memory).
func (db *Database) Context() *relation.Context { return db.ctx }

// Table looks up a base table.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// ViewDef looks up a view.
func (db *Database) ViewDef(name string) (*View, bool) {
	v, ok := db.views[strings.ToLower(name)]
	return v, ok
}

// HasRelation reports whether name is a table or view.
func (db *Database) HasRelation(name string) bool {
	key := strings.ToLower(name)
	_, t := db.tables[key]
	_, v := db.views[key]
	return t || v
}

// CreateTable registers an empty table with the given columns and
// primary key (nil pk means no index).
func (db *Database) CreateTable(name string, cols []string, pk []string) (*Table, error) {
	key := strings.ToLower(name)
	if db.HasRelation(name) {
		return nil, fmt.Errorf("sql: relation %q already exists", name)
	}
	heap, err := rstore.NewHeapFile(db.ctx.Pool, "tbl:"+key, len(cols))
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: relation.NewSchema(cols...), Heap: heap}
	for _, p := range pk {
		i := t.Schema.ColIndex(p)
		if i < 0 {
			return nil, fmt.Errorf("sql: primary key column %q not in table %q", p, name)
		}
		t.PK = append(t.PK, i)
	}
	if len(t.PK) > 0 {
		idx, err := rstore.NewBTree(db.ctx.Pool, "idx:"+key, len(t.PK))
		if err != nil {
			return nil, err
		}
		t.Index = idx
	}
	db.tables[key] = t
	return t, nil
}

// BulkLoad appends rows already sorted by primary key and rebuilds the
// index bottom-up. It is the fast path RIOT-DB uses to store vectors and
// matrices, whose elements arrive in index order.
func (db *Database) BulkLoad(t *Table, n int64, row func(i int64) []float64) error {
	start := t.Heap.NumRecords()
	for i := int64(0); i < n; i++ {
		if _, err := t.Heap.Append(row(i)); err != nil {
			return err
		}
	}
	if err := t.Heap.Flush(); err != nil {
		return err
	}
	if t.Index != nil {
		total := t.Heap.NumRecords()
		if start != 0 {
			return fmt.Errorf("sql: bulk load into non-empty table %q", t.Name)
		}
		key := make([]float64, len(t.PK))
		err := t.Index.BulkLoad(total, func(i int64) ([]float64, rstore.RID) {
			rec, err := t.Heap.Get(rstore.RID(i))
			if err != nil {
				panic(err) // heap read of just-written record cannot fail
			}
			for k, c := range t.PK {
				key[k] = rec[c]
			}
			return key, rstore.RID(i)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert appends rows one by one, maintaining the index. Rows need not
// be sorted; the heap stays in insertion order (so clustering is only
// guaranteed for sorted loads).
func (db *Database) Insert(t *Table, rows [][]float64) error {
	for _, r := range rows {
		if len(r) != t.Schema.Arity() {
			return fmt.Errorf("sql: insert arity %d into table %q of arity %d", len(r), t.Name, t.Schema.Arity())
		}
		rid, err := t.Heap.Append(r)
		if err != nil {
			return err
		}
		if t.Index != nil {
			key := make([]float64, len(t.PK))
			for k, c := range t.PK {
				key[k] = r[c]
			}
			if err := t.Index.Insert(key, rid); err != nil {
				return err
			}
		}
	}
	return t.Heap.Flush()
}

// CreateView registers a view definition; nothing is evaluated.
func (db *Database) CreateView(name string, cols []string, def *SelectStmt) error {
	if db.HasRelation(name) {
		return fmt.Errorf("sql: relation %q already exists", name)
	}
	if len(cols) == 0 {
		for i, item := range def.Items {
			if item.Alias != "" {
				cols = append(cols, item.Alias)
			} else if c, ok := item.Expr.(ColRef); ok {
				cols = append(cols, c.Name)
			} else {
				cols = append(cols, fmt.Sprintf("c%d", i+1))
			}
		}
	}
	if len(cols) != len(def.Items) {
		return fmt.Errorf("sql: view %q has %d columns for %d select items", name, len(cols), len(def.Items))
	}
	db.views[strings.ToLower(name)] = &View{Name: name, Cols: cols, Def: def}
	return nil
}

// Drop removes a table or view and frees its storage.
func (db *Database) Drop(name string, isView, ifExists bool) error {
	key := strings.ToLower(name)
	if isView {
		if _, ok := db.views[key]; !ok {
			if ifExists {
				return nil
			}
			return fmt.Errorf("sql: view %q does not exist", name)
		}
		delete(db.views, key)
		return nil
	}
	t, ok := db.tables[key]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("sql: table %q does not exist", name)
	}
	t.Heap.Free()
	if t.Index != nil {
		t.Index.Free()
	}
	delete(db.tables, key)
	return nil
}

// Exec parses and executes a DDL/DML statement. SELECT is rejected —
// use Query.
func (db *Database) Exec(src string) error {
	st, err := Parse(src)
	if err != nil {
		return err
	}
	switch s := st.(type) {
	case *CreateTableStmt:
		if s.As != nil {
			_, err := db.CreateTableAs(s.Name, s.As, nil)
			return err
		}
		pk := s.PK
		if len(pk) == 0 && len(s.Cols) > 0 {
			// RIOT-DB convention: the leading column(s) up to V form the key.
			pk = []string{s.Cols[0]}
		}
		_, err := db.CreateTable(s.Name, s.Cols, pk)
		return err
	case *CreateViewStmt:
		return db.CreateView(s.Name, s.Cols, s.As)
	case *InsertStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return fmt.Errorf("sql: table %q does not exist", s.Table)
		}
		return db.Insert(t, s.Rows)
	case *DropStmt:
		return db.Drop(s.Name, s.View, s.IfExists)
	case *SelectStmt:
		return fmt.Errorf("sql: use Query for SELECT")
	}
	return fmt.Errorf("sql: unhandled statement %T", st)
}

// CreateTableAs materializes a query into a new table. pk names the
// primary-key columns of the result; nil means the first column.
func (db *Database) CreateTableAs(name string, sel *SelectStmt, pk []string) (*Table, error) {
	p, err := db.planSelect(sel)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(p.schema))
	for i, c := range p.schema {
		cols[i] = c.name
	}
	if pk == nil && len(cols) > 0 {
		pk = []string{cols[0]}
	}
	t, err := db.CreateTable(name, cols, pk)
	if err != nil {
		return nil, err
	}
	// The heap must be clustered by primary key: if the plan does not
	// already deliver PK order, sort before materializing (MySQL's
	// clustered bulk load does the same).
	if len(t.PK) > 0 && !p.sortedCovers(t.PK) {
		p = &plan{
			it:     &relation.Sort{Input: p.it, Arity: p.arity(), Cols: append([]int(nil), t.PK...), Ctx: db.ctx},
			schema: p.schema,
			sorted: append([]int(nil), t.PK...),
			rows:   p.rows,
			desc:   fmt.Sprintf("Sort(%s)", p.desc),
		}
	}
	if err := p.it.Open(); err != nil {
		return nil, err
	}
	defer p.it.Close()
	for {
		row, ok, err := p.it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if _, err := t.Heap.Append(row); err != nil {
			return nil, err
		}
	}
	if err := t.Heap.Flush(); err != nil {
		return nil, err
	}
	if t.Index != nil {
		key := make([]float64, len(t.PK))
		if err := t.Index.BulkLoad(t.Heap.NumRecords(), func(i int64) ([]float64, rstore.RID) {
			rec, err := t.Heap.Get(rstore.RID(i))
			if err != nil {
				panic(err)
			}
			for k, c := range t.PK {
				key[k] = rec[c]
			}
			return key, rstore.RID(i)
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Query plans a SELECT and returns the iterator, output schema, and the
// plan description (for EXPLAIN-style assertions).
func (db *Database) Query(src string) (relation.Iterator, relation.Schema, string, error) {
	sel, err := ParseSelect(src)
	if err != nil {
		return nil, relation.Schema{}, "", err
	}
	return db.QueryStmt(sel)
}

// QueryStmt plans an already-parsed SELECT.
func (db *Database) QueryStmt(sel *SelectStmt) (relation.Iterator, relation.Schema, string, error) {
	p, err := db.planSelect(sel)
	if err != nil {
		return nil, relation.Schema{}, "", err
	}
	cols := make([]string, len(p.schema))
	for i, c := range p.schema {
		cols[i] = c.name
	}
	return p.it, relation.NewSchema(cols...), p.desc, nil
}

// QueryAll runs a SELECT and drains the result into memory.
func (db *Database) QueryAll(src string) ([]relation.Tuple, relation.Schema, error) {
	it, schema, _, err := db.Query(src)
	if err != nil {
		return nil, relation.Schema{}, err
	}
	rows, err := relation.Drain(it)
	return rows, schema, err
}

// Explain returns the physical plan chosen for a SELECT.
func (db *Database) Explain(src string) (string, error) {
	sel, err := ParseSelect(src)
	if err != nil {
		return "", err
	}
	p, err := db.planSelect(sel)
	if err != nil {
		return "", err
	}
	return p.desc, nil
}

func (db *Database) tempName(prefix string) string {
	db.seq++
	return fmt.Sprintf("%s_%d", prefix, db.seq)
}
