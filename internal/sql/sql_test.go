package sql

import (
	"math"
	"strings"
	"testing"

	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/relation"
)

func testDB(blockElems, frames int, workMem int64) *Database {
	dev := disk.NewDevice(blockElems)
	pool := buffer.New(dev, frames)
	return NewDatabase(relation.NewContext(pool, workMem))
}

// loadVector creates table name(I, V) clustered by I with values f(i).
func loadVector(t *testing.T, db *Database, name string, n int64, f func(i int64) float64) *Table {
	t.Helper()
	tbl, err := db.CreateTable(name, []string{"I", "V"}, []string{"I"})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 2)
	if err := db.BulkLoad(tbl, n, func(i int64) []float64 {
		row[0], row[1] = float64(i), f(i)
		return row
	}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.I, SQRT(V) FROM t WHERE x <= 3.5e2 -- comment\nAND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
	// Spot checks.
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Fatalf("tok0=%v", toks[0])
	}
	if toks[1].kind != tokIdent || toks[1].text != "a" {
		t.Fatalf("tok1=%v", toks[1])
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("expected error for @")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestParseSelectShape(t *testing.T) {
	sel, err := ParseSelect(`SELECT E1.I, E1.V+E2.V AS V FROM E1, E2 WHERE E1.I=E2.I`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 2 || sel.Items[1].Alias != "V" {
		t.Fatalf("items=%+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].Name != "E1" {
		t.Fatalf("from=%+v", sel.From)
	}
	if sel.Where == nil {
		t.Fatal("missing where")
	}
}

func TestParsePrecedence(t *testing.T) {
	sel, err := ParseSelect(`SELECT 1+2*3^2 FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Items[0].Expr.String(); got != "(1 + (2 * (3 ^ 2)))" {
		t.Fatalf("precedence: %s", got)
	}
	sel, err = ParseSelect(`SELECT a FROM t WHERE x > 1 AND y < 2 OR NOT z = 3`)
	if err != nil {
		t.Fatal(err)
	}
	want := "(((x > 1) AND (y < 2)) OR (NOT (z = 3)))"
	if got := sel.Where.String(); got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	sel, err := ParseSelect(`SELECT A.I, SUM(A.V*B.V) AS V FROM A, B WHERE A.J=B.I GROUP BY A.I, B.J ORDER BY A.I DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.GroupBy) != 2 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 10 {
		t.Fatalf("parsed: %+v", sel)
	}
}

func TestParseCreateInsertDrop(t *testing.T) {
	st, err := Parse(`CREATE TABLE v (I, V, PRIMARY KEY (I))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if len(ct.Cols) != 2 || len(ct.PK) != 1 || ct.PK[0] != "I" {
		t.Fatalf("create: %+v", ct)
	}
	st, err = Parse(`INSERT INTO v VALUES (1, 2.5), (2, -3)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 2 || ins.Rows[1][1] != -3 {
		t.Fatalf("insert: %+v", ins)
	}
	st, err = Parse(`DROP VIEW IF EXISTS foo`)
	if err != nil {
		t.Fatal(err)
	}
	dr := st.(*DropStmt)
	if !dr.View || !dr.IfExists || dr.Name != "foo" {
		t.Fatalf("drop: %+v", dr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"CREATE TABLE",
		"INSERT INTO t VALUES 1",
		"SELECT a FROM t GROUP",
		"banana",
		"SELECT a FROM t; SELECT b FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEndToEndVectorAdd(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E1", 100, func(i int64) float64 { return float64(i) })
	loadVector(t, db, "E2", 100, func(i int64) float64 { return float64(i * 10) })
	rows, _, err := db.QueryAll(`SELECT E1.I, E1.V+E2.V AS V FROM E1, E2 WHERE E1.I=E2.I`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r[1] != r[0]*11 {
			t.Fatalf("row %v", r)
		}
	}
}

func TestVectorJoinUsesMergeJoin(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E1", 50, func(i int64) float64 { return 1 })
	loadVector(t, db, "E2", 50, func(i int64) float64 { return 2 })
	desc, err := db.Explain(`SELECT E1.I, E1.V+E2.V AS V FROM E1, E2 WHERE E1.I=E2.I`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "MergeJoin") {
		t.Fatalf("expected MergeJoin in plan, got %s", desc)
	}
}

func TestSmallOuterUsesINLJoin(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "X", 10000, func(i int64) float64 { return float64(i) })
	s, err := db.CreateTable("S", []string{"I", "V"}, []string{"I"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkLoad(s, 5, func(i int64) []float64 {
		return []float64{float64(i), float64(i * 1000)}
	}); err != nil {
		t.Fatal(err)
	}
	desc, err := db.Explain(`SELECT S.I, X.V FROM X, S WHERE X.I=S.V`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "INLJoin") {
		t.Fatalf("expected INLJoin in plan, got %s", desc)
	}
	rows, _, err := db.QueryAll(`SELECT S.I, X.V FROM X, S WHERE X.I=S.V`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r[1] != r[0]*1000 {
			t.Fatalf("row %v", r)
		}
	}
}

func TestViewExpansionPipelines(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "X", 200, func(i int64) float64 { return float64(i) })
	loadVector(t, db, "Y", 200, func(i int64) float64 { return float64(i) * 2 })
	// Build the paper's nested view structure, one op at a time.
	must(t, db.Exec(`CREATE VIEW T1(I, V) AS SELECT X.I, X.V*X.V AS V FROM X`))
	must(t, db.Exec(`CREATE VIEW T2(I, V) AS SELECT Y.I, Y.V*Y.V AS V FROM Y`))
	must(t, db.Exec(`CREATE VIEW D(I, V) AS SELECT T1.I, SQRT(T1.V+T2.V) AS V FROM T1, T2 WHERE T1.I=T2.I`))
	desc, err := db.Explain(`SELECT D.I, D.V FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	// The nested views must flatten into a single merge join over the
	// base tables — no view materialization barrier.
	if !strings.Contains(desc, "MergeJoin") || strings.Contains(desc, "View(") {
		t.Fatalf("plan not flattened: %s", desc)
	}
	rows, _, err := db.QueryAll(`SELECT D.I, D.V FROM D`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		i := r[0]
		want := math.Sqrt(i*i + 4*i*i)
		if math.Abs(r[1]-want) > 1e-12 {
			t.Fatalf("D[%v]=%v, want %v", i, r[1], want)
		}
	}
}

func TestViewOverViewSelectiveProbe(t *testing.T) {
	// The headline RIOT-DB optimization (§4.1): after expansion, probing
	// D with a tiny S uses index nested loops into the base tables and
	// touches almost nothing.
	db := testDB(64, 64, 0)
	loadVector(t, db, "X", 20000, func(i int64) float64 { return float64(i) })
	loadVector(t, db, "Y", 20000, func(i int64) float64 { return float64(i) })
	must(t, db.Exec(`CREATE VIEW D(I, V) AS SELECT X.I, SQRT(X.V)+SQRT(Y.V) AS V FROM X, Y WHERE X.I=Y.I`))
	s, err := db.CreateTable("S", []string{"I", "V"}, []string{"I"})
	must(t, err)
	must(t, db.BulkLoad(s, 10, func(i int64) []float64 { return []float64{float64(i), float64(i * 777)} }))

	if err := db.Context().Pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	db.Context().Pool.Device().ResetStats()
	rows, _, err := db.QueryAll(`SELECT S.I, D.V FROM D, S WHERE D.I=S.V`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		want := 2 * math.Sqrt(r[0]*777)
		if math.Abs(r[1]-want) > 1e-9 {
			t.Fatalf("row %v want %v", r, want)
		}
	}
	reads := db.Context().Pool.Device().Stats().BlocksRead
	xTbl, _ := db.Table("X")
	if int(reads) >= xTbl.Heap.Blocks() {
		t.Fatalf("selective probe read %d blocks; full scan of X alone is %d", reads, xTbl.Heap.Blocks())
	}
}

func TestMatMulViaSQL(t *testing.T) {
	db := testDB(64, 32, 2048)
	const n = 6
	a, err := db.CreateTable("A", []string{"I", "J", "V"}, []string{"I", "J"})
	must(t, err)
	must(t, db.BulkLoad(a, n*n, func(k int64) []float64 {
		i, j := k/n, k%n
		return []float64{float64(i), float64(j), float64(i + 2*j)}
	}))
	b, err := db.CreateTable("B", []string{"I", "J", "V"}, []string{"I", "J"})
	must(t, err)
	must(t, db.BulkLoad(b, n*n, func(k int64) []float64 {
		i, j := k/n, k%n
		return []float64{float64(i), float64(j), float64(i*j - 3)}
	}))
	rows, _, err := db.QueryAll(
		`SELECT A.I, B.J, SUM(A.V*B.V) AS V FROM A, B WHERE A.J=B.I GROUP BY A.I, B.J`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n*n {
		t.Fatalf("%d cells", len(rows))
	}
	for _, r := range rows {
		i, j := r[0], r[1]
		want := 0.0
		for k := 0.0; k < n; k++ {
			want += (i + 2*k) * (k*j - 3)
		}
		if math.Abs(r[2]-want) > 1e-9 {
			t.Fatalf("C[%v,%v]=%v, want %v", i, j, r[2], want)
		}
	}
}

func TestMatrixElementwiseCompositeMergeJoin(t *testing.T) {
	db := testDB(64, 16, 0)
	const n = 5
	mk := func(name string, f func(i, j int64) float64) {
		tb, err := db.CreateTable(name, []string{"I", "J", "V"}, []string{"I", "J"})
		must(t, err)
		must(t, db.BulkLoad(tb, n*n, func(k int64) []float64 {
			i, j := k/n, k%n
			return []float64{float64(i), float64(j), f(i, j)}
		}))
	}
	mk("MA", func(i, j int64) float64 { return float64(i + j) })
	mk("MB", func(i, j int64) float64 { return float64(i * j) })
	q := `SELECT MA.I, MA.J, MA.V+MB.V AS V FROM MA, MB WHERE MA.I=MB.I AND MA.J=MB.J`
	desc, err := db.Explain(q)
	must(t, err)
	if !strings.Contains(desc, "MergeJoin") {
		t.Fatalf("expected composite merge join: %s", desc)
	}
	rows, _, err := db.QueryAll(q)
	must(t, err)
	if len(rows) != n*n {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r[2] != r[0]+r[1]+r[0]*r[1] {
			t.Fatalf("row %v", r)
		}
	}
}

func TestScalarAggQuery(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 100, func(i int64) float64 { return float64(i) })
	rows, _, err := db.QueryAll(`SELECT SUM(E.V) AS S, COUNT(*) AS N, MIN(E.V) AS LO, MAX(E.V) AS HI FROM E`)
	must(t, err)
	r := rows[0]
	if r[0] != 4950 || r[1] != 100 || r[2] != 0 || r[3] != 99 {
		t.Fatalf("agg row %v", r)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 50, func(i int64) float64 { return float64((i * 37) % 50) })
	rows, _, err := db.QueryAll(`SELECT E.I, E.V FROM E ORDER BY V DESC LIMIT 3`)
	must(t, err)
	if len(rows) != 3 || rows[0][1] != 49 || rows[1][1] != 48 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestOrderByOnClusteredKeyIsFree(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 50, func(i int64) float64 { return 1 })
	desc, err := db.Explain(`SELECT E.I, E.V FROM E ORDER BY I`)
	must(t, err)
	if strings.Contains(desc, "Sort(") {
		t.Fatalf("redundant sort on clustered key: %s", desc)
	}
}

func TestInsertAndQuery(t *testing.T) {
	db := testDB(64, 16, 0)
	must(t, db.Exec(`CREATE TABLE pts (I, V, PRIMARY KEY (I))`))
	must(t, db.Exec(`INSERT INTO pts VALUES (0, 5), (1, 6), (2, 7)`))
	rows, _, err := db.QueryAll(`SELECT pts.I, pts.V FROM pts WHERE V > 5.5`)
	must(t, err)
	if len(rows) != 2 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestCreateTableAs(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 100, func(i int64) float64 { return float64(i) })
	must(t, db.Exec(`CREATE TABLE sq AS SELECT E.I, E.V*E.V AS V FROM E`))
	tbl, ok := db.Table("sq")
	if !ok {
		t.Fatal("table not created")
	}
	if tbl.Rows() != 100 || tbl.Index == nil {
		t.Fatalf("rows=%d index=%v", tbl.Rows(), tbl.Index != nil)
	}
	rows, _, err := db.QueryAll(`SELECT sq.I, sq.V FROM sq WHERE sq.I = 7`)
	must(t, err)
	if len(rows) != 1 || rows[0][1] != 49 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestDropViewAndTable(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 10, func(i int64) float64 { return 0 })
	must(t, db.Exec(`CREATE VIEW W(I, V) AS SELECT E.I, E.V FROM E`))
	must(t, db.Exec(`DROP VIEW W`))
	if _, ok := db.ViewDef("W"); ok {
		t.Fatal("view not dropped")
	}
	must(t, db.Exec(`DROP TABLE E`))
	if db.HasRelation("E") {
		t.Fatal("table not dropped")
	}
	if err := db.Exec(`DROP TABLE E`); err == nil {
		t.Fatal("expected error dropping missing table")
	}
	must(t, db.Exec(`DROP TABLE IF EXISTS E`))
}

func TestStarSelect(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E", 5, func(i int64) float64 { return float64(i) })
	rows, schema, err := db.QueryAll(`SELECT * FROM E`)
	must(t, err)
	if len(rows) != 5 || schema.Arity() != 2 || schema.Cols[0] != "I" {
		t.Fatalf("rows=%d schema=%v", len(rows), schema)
	}
}

func TestUnknownRelationAndColumn(t *testing.T) {
	db := testDB(64, 16, 0)
	if _, _, err := db.QueryAll(`SELECT a.I FROM nope a`); err == nil {
		t.Fatal("expected unknown relation error")
	}
	loadVector(t, db, "E", 5, func(i int64) float64 { return 0 })
	if _, _, err := db.QueryAll(`SELECT E.nope FROM E`); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(64, 16, 0)
	loadVector(t, db, "E1", 5, func(i int64) float64 { return 0 })
	loadVector(t, db, "E2", 5, func(i int64) float64 { return 0 })
	if _, _, err := db.QueryAll(`SELECT V FROM E1, E2 WHERE E1.I=E2.I`); err == nil {
		t.Fatal("expected ambiguity error")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
