package rlang

import (
	"math"
	"strings"
	"testing"

	"riot/internal/engine"
	"riot/internal/riotdb"
)

func engines() []engine.Engine {
	tm := engine.DefaultTimeModel
	return []engine.Engine{
		engine.NewPlainR(1024, 1<<14, 0, tm),
		engine.NewRIOTDB(riotdb.Full, 1024, 1<<22, tm),
		engine.NewRIOT(1024, 1<<22, tm),
	}
}

func fetchVar(t *testing.T, in *Interp, name string) []float64 {
	t.Helper()
	v, ok := in.Get(name)
	if !ok || v.IsScalar {
		t.Fatalf("variable %q missing or scalar", name)
	}
	vals, err := in.Engine().Fetch(v.Obj, -1)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestScalarArithmetic(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	if err := in.Run("a <- 2 + 3 * 4 ^ 2\nb = a %% 7\n"); err != nil {
		t.Fatal(err)
	}
	a, _ := in.Get("a")
	if !a.IsScalar || a.Scalar != 50 {
		t.Fatalf("a=%v", a)
	}
	b, _ := in.Get("b")
	if b.Scalar != 1 {
		t.Fatalf("b=%v", b)
	}
}

func TestVectorizedOpsAllEngines(t *testing.T) {
	src := `
x <- 1:10
y <- x * 2
z <- sqrt(y + x*x)   # element-wise
total <- sum(z)
`
	for _, e := range engines() {
		in := New(e)
		if err := in.Run(src); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		want := 0.0
		for i := 1.0; i <= 10; i++ {
			want += math.Sqrt(2*i + i*i)
		}
		got, _ := in.Get("total")
		if math.Abs(got.Scalar-want) > 1e-9 {
			t.Fatalf("%s: total=%v want %v", e.Name(), got.Scalar, want)
		}
	}
}

func TestExample1Script(t *testing.T) {
	// The paper's Example 1, almost verbatim (R's sample() is seeded
	// deterministically here).
	src := `
xs <- 3; ys <- 4
xe <- 100; ye <- 200
d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
s <- sample(length(x), 100)
z <- d[s]
print(z)
`
	const n = 20000
	idx := riotdb.SampleIndices(n, 100, 42)
	for _, e := range engines() {
		in := New(e)
		x, err := e.NewVector(n, func(i int64) float64 { return float64(i % 997) })
		if err != nil {
			t.Fatal(err)
		}
		y, err := e.NewVector(n, func(i int64) float64 { return float64(i % 991) })
		if err != nil {
			t.Fatal(err)
		}
		in.SetVector("x", x)
		in.SetVector("y", y)
		if err := in.Run(src); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		z := fetchVar(t, in, "z")
		if len(z) != 100 {
			t.Fatalf("%s: %d elements", e.Name(), len(z))
		}
		for p, i := range idx {
			xi, yi := float64(i%997), float64(i%991)
			want := math.Sqrt((xi-3)*(xi-3)+(yi-4)*(yi-4)) +
				math.Sqrt((xi-100)*(xi-100)+(yi-200)*(yi-200))
			if math.Abs(z[p]-want) > 1e-9 {
				t.Fatalf("%s: z[%d]=%v want %v", e.Name(), p, z[p], want)
			}
		}
		if !strings.Contains(in.Out.String(), "[1]") {
			t.Fatalf("%s: print produced no output", e.Name())
		}
	}
}

func TestFigure2Script(t *testing.T) {
	src := `
b <- a^2
b[b > 100] <- 100
h <- b[1:10]
`
	for _, e := range engines() {
		in := New(e)
		a, err := e.NewVector(1000, func(i int64) float64 { return float64(i) })
		if err != nil {
			t.Fatal(err)
		}
		in.SetVector("a", a)
		if err := in.Run(src); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		h := fetchVar(t, in, "h")
		if len(h) != 10 {
			t.Fatalf("%s: %d elements", e.Name(), len(h))
		}
		for i, v := range h {
			want := math.Min(float64(i*i), 100)
			if v != want {
				t.Fatalf("%s: h[%d]=%v want %v", e.Name(), i, v, want)
			}
		}
	}
}

func TestMatrixScript(t *testing.T) {
	src := `
A <- matrix(1:6, 2, 3)
B <- matrix(1:6, 3, 2)
C <- A %*% B
`
	e := engine.NewRIOT(64, 1<<18, engine.DefaultTimeModel)
	in := New(e)
	if err := in.Run(src); err != nil {
		t.Fatal(err)
	}
	c, _ := in.Get("C")
	r, cc, _ := e.Dims(c.Obj)
	if r != 2 || cc != 2 {
		t.Fatalf("C is %dx%d", r, cc)
	}
	vals, err := e.Fetch(c.Obj, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Column-major fill: A = [1 3 5; 2 4 6], B = [1 4; 2 5; 3 6].
	want := []float64{22, 49, 28, 64} // row-major C
	for i, v := range vals {
		if v != want[i] {
			t.Fatalf("C[%d]=%v want %v (all %v)", i, v, want[i], vals)
		}
	}
}

func TestIndexingSemantics(t *testing.T) {
	for _, e := range engines() {
		in := New(e)
		if err := in.Run("v <- 10:20\nfirst <- v[1]\nmid <- v[3:5]\n"); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		first, _ := in.Get("first")
		if !first.IsScalar || first.Scalar != 10 {
			t.Fatalf("%s: v[1]=%v, want 10 (1-based)", e.Name(), first)
		}
		mid := fetchVar(t, in, "mid")
		if len(mid) != 3 || mid[0] != 12 || mid[2] != 14 {
			t.Fatalf("%s: v[3:5]=%v", e.Name(), mid)
		}
	}
}

func TestCFunctionAndMinMax(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	if err := in.Run("v <- c(3, 1, 4, 1, 5)\nlo <- min(v)\nhi <- max(v)\nn <- length(v)\n"); err != nil {
		t.Fatal(err)
	}
	lo, _ := in.Get("lo")
	hi, _ := in.Get("hi")
	n, _ := in.Get("n")
	if lo.Scalar != 1 || hi.Scalar != 5 || n.Scalar != 5 {
		t.Fatalf("lo=%v hi=%v n=%v", lo.Scalar, hi.Scalar, n.Scalar)
	}
}

func TestParseErrors(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	for _, src := range []string{
		"x <- (1 + ",
		"x <- [3]",
		"x <- foo(1,",
		"v <- 1:5\nv[2",
	} {
		if err := in.Run(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	if err := in.Run("y <- nope + 1"); err == nil {
		t.Error("expected undefined-variable error")
	}
	if err := in.Run("z <- unknownfn(1)"); err == nil {
		t.Error("expected unknown-function error")
	}
}

func TestCommentsAndSemicolons(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	if err := in.Run("# setup\na <- 1; b <- 2 # trailing\nc <- a + b\n"); err != nil {
		t.Fatal(err)
	}
	c, _ := in.Get("c")
	if c.Scalar != 3 {
		t.Fatalf("c=%v", c.Scalar)
	}
}

func TestRunifDeterministicPerInterp(t *testing.T) {
	e := engine.NewRIOT(64, 1<<18, engine.DefaultTimeModel)
	in1 := New(e)
	if err := in1.Run("u <- runif(100)\ns <- sum(u)\n"); err != nil {
		t.Fatal(err)
	}
	s1, _ := in1.Get("s")
	in2 := New(engine.NewRIOT(64, 1<<18, engine.DefaultTimeModel))
	if err := in2.Run("u <- runif(100)\ns <- sum(u)\n"); err != nil {
		t.Fatal(err)
	}
	s2, _ := in2.Get("s")
	if s1.Scalar != s2.Scalar {
		t.Fatalf("runif not deterministic: %v vs %v", s1.Scalar, s2.Scalar)
	}
	if s1.Scalar <= 0 || s1.Scalar >= 100 {
		t.Fatalf("runif sum out of range: %v", s1.Scalar)
	}
}

// TestScalarIndexOutOfBounds: x[0], x[-1], and x[n+1] must be subscript
// errors on every backend, not a panic from an empty fetch.
func TestScalarIndexOutOfBounds(t *testing.T) {
	for _, e := range engines() {
		in := New(e)
		if err := in.Run("x <- 1:8"); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for _, src := range []string{"x[0]", "x[-1]", "x[9]", "x[100]"} {
			err := in.Run(src)
			if err == nil {
				t.Errorf("%s: %q did not error", e.Name(), src)
				continue
			}
			if !strings.Contains(err.Error(), "subscript out of bounds") {
				t.Errorf("%s: %q error = %v, want subscript out of bounds", e.Name(), src, err)
			}
		}
		// In-bounds edges still work.
		out, err := in.Run2("print(x[1]); print(x[8])")
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !strings.Contains(out, "[1] 1\n") || !strings.Contains(out, "[1] 8\n") {
			t.Errorf("%s: edge reads printed %q", e.Name(), out)
		}
	}
}

// Run2 runs src and returns the output appended since the call started.
func (in *Interp) Run2(src string) (string, error) {
	before := in.Out.Len()
	err := in.Run(src)
	return in.Out.String()[before:], err
}

// TestScalarOpErrorsPropagate: unknown operators and functions surface
// as interpreter errors rather than silent NaN results.
func TestScalarOpErrorsPropagate(t *testing.T) {
	if _, err := scalarBin("@@", 1, 2); err == nil {
		t.Error("scalarBin(@@) did not error")
	}
	if v, err := scalarBin("+", 2, 3); err != nil || v != 5 {
		t.Errorf("scalarBin(+) = %g, %v", v, err)
	}
	if _, err := scalarFn("frobnicate", 1); err == nil {
		t.Error("scalarFn(frobnicate) did not error")
	}
	if v, err := scalarFn("sqrt", 9); err != nil || v != 3 {
		t.Errorf("scalarFn(sqrt) = %g, %v", v, err)
	}
}

// fakeGlobals is an in-memory GlobalStore for interpreter tests.
type fakeGlobals struct {
	vals map[string]engine.Value
}

func (f *fakeGlobals) GetGlobal(name string) (engine.Value, bool) {
	v, ok := f.vals[name]
	return v, ok
}

func (f *fakeGlobals) SetGlobal(name string, v engine.Value) error {
	f.vals[name] = v
	return nil
}

// TestGlobalsPublishAndShadow: with a GlobalStore bound, top-level array
// assignments publish, republished names win over stale local bindings,
// and local scalars shadow globals.
func TestGlobalsPublishAndShadow(t *testing.T) {
	e := engine.NewRIOT(1024, 1<<22, engine.DefaultTimeModel)
	g := &fakeGlobals{vals: make(map[string]engine.Value)}

	a := New(e)
	a.Globals = g
	if err := a.Run("x <- 1:4"); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.vals["x"]; !ok {
		t.Fatal("assignment did not publish x")
	}

	// A second interpreter over the same store sees x.
	b := New(e)
	b.Globals = g
	out, err := b.Run2("print(sum(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 10") {
		t.Fatalf("b saw %q, want sum 10", out)
	}

	// b republishes; a reads the new version (last-writer-wins).
	if err := b.Run("x <- 1:3"); err != nil {
		t.Fatal(err)
	}
	out, err = a.Run2("print(sum(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 6") {
		t.Fatalf("a saw %q after republish, want sum 6", out)
	}

	// A local scalar shadows the global array.
	if err := a.Run("x <- 42"); err != nil {
		t.Fatal(err)
	}
	out, err = a.Run2("print(x)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 42") {
		t.Fatalf("a saw %q, want shadowing scalar 42", out)
	}
	// b still sees the published array.
	out, err = b.Run2("print(length(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[1] 3") {
		t.Fatalf("b saw %q, want published length 3", out)
	}
}

// TestSparseBuiltinsEveryBackend runs the sparse()/dense()/nnz() script
// on every backend: engines with the sparse capability convert, the
// rest treat the conversions as identities — either way the printed
// values must be identical (sparsity is storage, not semantics).
func TestSparseBuiltinsEveryBackend(t *testing.T) {
	const script = `
y <- seq_len(30)
y[y < 25] <- 0
A <- matrix(y, 5, 6)
S <- sparse(A)
print(nnz(S))
D <- dense(S)
print(nnz(D))
v <- sparse(y)
print(nnz(v))
print(sum(v))
`
	var want string
	for _, e := range engines() {
		in := New(e)
		if err := in.Run(script); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got := in.Out.String()
		if want == "" {
			want = got
			// 6 of 30 values survive the mask; their sum is 25+...+30.
			if !strings.Contains(want, "[1] 6\n") || !strings.Contains(want, "[1] 165\n") {
				t.Fatalf("unexpected reference output:\n%s", want)
			}
		} else if got != want {
			t.Fatalf("%s diverged:\n%s\nvs\n%s", e.Name(), got, want)
		}
	}
}

// TestSparseBuiltinErrors pins the builtin's argument contract.
func TestSparseBuiltinErrors(t *testing.T) {
	in := New(engine.NewRIOT(64, 1<<16, engine.DefaultTimeModel))
	if err := in.Run("sparse(3)"); err == nil {
		t.Fatal("sparse(scalar) did not error")
	}
	if err := in.Run("x <- nnz(7); y <- nnz(0)"); err != nil {
		t.Fatal(err)
	}
	x, _ := in.Get("x")
	y, _ := in.Get("y")
	if x.Scalar != 1 || y.Scalar != 0 {
		t.Fatalf("nnz(7)=%g nnz(0)=%g, want 1 and 0", x.Scalar, y.Scalar)
	}
}
