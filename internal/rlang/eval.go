package rlang

import (
	"fmt"
	"strings"

	"riot/internal/engine"
	"riot/internal/scalarop"
)

// exec executes one statement.
func (in *Interp) exec(s stmt) error {
	switch t := s.(type) {
	case assignStmt:
		v, err := in.eval(t.expr)
		if err != nil {
			return err
		}
		if old, ok := in.env[t.name]; ok && !old.IsScalar {
			// Rebinding drops the old object (the assignment hook of §4.1).
			if old.Obj != v.Obj {
				in.eng.Release(old.Obj)
			}
		}
		if !v.IsScalar {
			nv, err := in.eng.Assign(v.Obj)
			if err != nil {
				return err
			}
			v.Obj = nv
			if in.Globals != nil {
				// Top-level array assignment publishes to the shared
				// namespace (and a scalar rebinding below un-shadows it).
				if err := in.Globals.SetGlobal(t.name, v.Obj); err != nil {
					return err
				}
			}
		}
		in.env[t.name] = v
		return nil
	case maskAssign:
		cur, ok := in.lookup(t.name)
		if !ok || cur.IsScalar {
			return fmt.Errorf("rlang: %s is not a vector", t.name)
		}
		thresh, err := in.evalScalar(t.thresh)
		if err != nil {
			return err
		}
		val, err := in.evalScalar(t.value)
		if err != nil {
			return err
		}
		nv, err := in.eng.UpdateWhere(cur.Obj, t.cmpOp, thresh, val)
		if err != nil {
			return err
		}
		if in.Globals != nil {
			if err := in.Globals.SetGlobal(t.name, nv); err != nil {
				return err
			}
		}
		in.env[t.name] = Value{Obj: nv}
		return nil
	case exprStmt:
		_, err := in.eval(t.e)
		return err
	}
	return fmt.Errorf("rlang: unknown statement %T", s)
}

func (in *Interp) evalScalar(e expr) (float64, error) {
	v, err := in.eval(e)
	if err != nil {
		return 0, err
	}
	if !v.IsScalar {
		return 0, fmt.Errorf("rlang: expected a scalar")
	}
	return v.Scalar, nil
}

// eval evaluates an expression to a Value.
func (in *Interp) eval(e expr) (Value, error) {
	switch t := e.(type) {
	case numExpr:
		return scalar(t.v), nil
	case strExpr:
		return Value{}, fmt.Errorf("rlang: string %q is only valid as a named argument (e.g. ring=%q)", t.v, t.v)
	case varExpr:
		v, ok := in.lookup(t.name)
		if !ok {
			return Value{}, fmt.Errorf("rlang: object %q not found", t.name)
		}
		return v, nil
	case unaryExpr:
		v, err := in.eval(t.x)
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return scalar(-v.Scalar), nil
		}
		obj, err := in.eng.ArithScalar("*", v.Obj, -1, false)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case rangeExpr:
		lo, err := in.evalScalar(t.lo)
		if err != nil {
			return Value{}, err
		}
		hi, err := in.evalScalar(t.hi)
		if err != nil {
			return Value{}, err
		}
		if hi < lo {
			return Value{}, fmt.Errorf("rlang: descending ranges unsupported (%g:%g)", lo, hi)
		}
		n := int64(hi-lo) + 1
		obj, err := in.eng.NewVector(n, func(i int64) float64 { return lo + float64(i) })
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case binExpr:
		return in.evalBin(t)
	case indexExpr:
		return in.evalIndex(t)
	case callExpr:
		return in.evalCall(t)
	}
	return Value{}, fmt.Errorf("rlang: unknown expression %T", e)
}

func (in *Interp) evalBin(t binExpr) (Value, error) {
	l, err := in.eval(t.l)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(t.r)
	if err != nil {
		return Value{}, err
	}
	if t.op == "%*%" {
		if l.IsScalar || r.IsScalar {
			return Value{}, fmt.Errorf("rlang: %%*%% requires matrices")
		}
		obj, err := in.eng.MatMul(l.Obj, r.Obj)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	}
	switch {
	case l.IsScalar && r.IsScalar:
		v, err := scalarBin(t.op, l.Scalar, r.Scalar)
		if err != nil {
			return Value{}, err
		}
		return scalar(v), nil
	case l.IsScalar:
		obj, err := in.eng.ArithScalar(t.op, r.Obj, l.Scalar, true)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case r.IsScalar:
		obj, err := in.eng.ArithScalar(t.op, l.Obj, r.Scalar, false)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	default:
		obj, err := in.eng.Arith(t.op, l.Obj, r.Obj)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	}
}

// scalarBin folds a binary operator over two scalar constants via the
// shared scalar-op table. An unknown operator is the script author's
// bug, so it surfaces as an interpreter error instead of a silent NaN.
func scalarBin(op string, a, b float64) (float64, error) {
	f, err := scalarop.Bin(op)
	if err != nil {
		return 0, fmt.Errorf("rlang: %v", err)
	}
	return f(a, b), nil
}

// evalIndex handles x[s] and x[a:b] with R's 1-based conventions.
func (in *Interp) evalIndex(t indexExpr) (Value, error) {
	x, err := in.eval(t.x)
	if err != nil {
		return Value{}, err
	}
	if x.IsScalar {
		return Value{}, fmt.Errorf("rlang: cannot index a scalar")
	}
	// x[a:b]: translate to a 0-based half-open range.
	if r, ok := t.sub.(rangeExpr); ok {
		lo, err := in.evalScalar(r.lo)
		if err != nil {
			return Value{}, err
		}
		hi, err := in.evalScalar(r.hi)
		if err != nil {
			return Value{}, err
		}
		obj, err := in.eng.Range(x.Obj, int64(lo)-1, int64(hi))
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	}
	sub, err := in.eval(t.sub)
	if err != nil {
		return Value{}, err
	}
	if sub.IsScalar {
		// Single-element access, validated against R's 1-based bounds
		// before anything touches the engine: x[0], x[-1], and x[n+1]
		// are subscript errors, not a short fetch whose missing element
		// would panic below.
		idx := int64(sub.Scalar)
		n := in.eng.Length(x.Obj)
		if idx < 1 || idx > n {
			return Value{}, fmt.Errorf("rlang: subscript out of bounds: %d (object of length %d)", idx, n)
		}
		obj, err := in.eng.Range(x.Obj, idx-1, idx)
		if err != nil {
			return Value{}, err
		}
		vals, err := in.eng.Fetch(obj, 1)
		if err != nil {
			return Value{}, err
		}
		if len(vals) == 0 {
			// The engine returned an empty fetch for an in-bounds
			// subscript; report it rather than indexing into nothing.
			return Value{}, fmt.Errorf("rlang: subscript %d: empty fetch from backend", idx)
		}
		return scalar(vals[0]), nil
	}
	// Index vector holds 1-based positions: shift before gathering.
	zeroBased, err := in.eng.ArithScalar("-", sub.Obj, 1, false)
	if err != nil {
		return Value{}, err
	}
	obj, err := in.eng.IndexBy(x.Obj, zeroBased)
	if err != nil {
		return Value{}, err
	}
	return Value{Obj: obj}, nil
}

func (in *Interp) evalCall(t callExpr) (Value, error) {
	switch t.fn {
	case "c":
		vals := make([]float64, len(t.args))
		for i, a := range t.args {
			v, err := in.evalScalar(a)
			if err != nil {
				return Value{}, fmt.Errorf("rlang: c() supports scalar arguments only")
			}
			vals[i] = v
		}
		obj, err := in.eng.NewVector(int64(len(vals)), func(i int64) float64 { return vals[i] })
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case "sqrt", "abs", "exp", "log", "sin", "cos", "floor", "ceiling":
		if len(t.args) != 1 {
			return Value{}, fmt.Errorf("rlang: %s takes one argument", t.fn)
		}
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			out, err := scalarFn(t.fn, v.Scalar)
			if err != nil {
				return Value{}, err
			}
			return scalar(out), nil
		}
		obj, err := in.eng.Map(t.fn, v.Obj)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case "length":
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return scalar(1), nil
		}
		return scalar(float64(in.eng.Length(v.Obj))), nil
	case "nrow", "ncol":
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		r, c, _ := in.eng.Dims(v.Obj)
		if t.fn == "nrow" {
			return scalar(float64(r)), nil
		}
		return scalar(float64(c)), nil
	case "sum", "min", "max":
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return v, nil
		}
		if t.fn == "sum" {
			s, err := in.eng.Sum(v.Obj)
			if err != nil {
				return Value{}, err
			}
			return scalar(s), nil
		}
		vals, err := in.eng.Fetch(v.Obj, -1)
		if err != nil {
			return Value{}, err
		}
		acc := vals[0]
		for _, x := range vals[1:] {
			if (t.fn == "min" && x < acc) || (t.fn == "max" && x > acc) {
				acc = x
			}
		}
		return scalar(acc), nil
	case "sample":
		if len(t.args) != 2 {
			return Value{}, fmt.Errorf("rlang: sample(n, k) takes two arguments")
		}
		n, err := in.evalScalar(t.args[0])
		if err != nil {
			return Value{}, err
		}
		k, err := in.evalScalar(t.args[1])
		if err != nil {
			return Value{}, err
		}
		obj, err := in.eng.Sample(int64(n), int64(k), in.seed)
		if err != nil {
			return Value{}, err
		}
		// Engine samples are 0-based; R's are 1-based.
		shifted, err := in.eng.ArithScalar("+", obj, 1, false)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: shifted}, nil
	case "runif":
		n, err := in.evalScalar(t.args[0])
		if err != nil {
			return Value{}, err
		}
		state := in.seed*2654435761 + 1
		obj, err := in.eng.NewVector(int64(n), func(i int64) float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%1000003) / 1000003
		})
		if err != nil {
			return Value{}, err
		}
		in.seed++
		return Value{Obj: obj}, nil
	case "seq_len":
		n, err := in.evalScalar(t.args[0])
		if err != nil {
			return Value{}, err
		}
		obj, err := in.eng.NewVector(int64(n), func(i int64) float64 { return float64(i + 1) })
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case "matrix":
		if len(t.args) != 3 {
			return Value{}, fmt.Errorf("rlang: matrix(data, nrow, ncol) takes three arguments")
		}
		data, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		r, err := in.evalScalar(t.args[1])
		if err != nil {
			return Value{}, err
		}
		c, err := in.evalScalar(t.args[2])
		if err != nil {
			return Value{}, err
		}
		rows, cols := int64(r), int64(c)
		if data.IsScalar {
			v := data.Scalar
			obj, err := in.eng.NewMatrix(rows, cols, func(i, j int64) float64 { return v })
			if err != nil {
				return Value{}, err
			}
			return Value{Obj: obj}, nil
		}
		vals, err := in.eng.Fetch(data.Obj, -1)
		if err != nil {
			return Value{}, err
		}
		if int64(len(vals)) != rows*cols {
			return Value{}, fmt.Errorf("rlang: matrix data length %d != %d*%d", len(vals), rows, cols)
		}
		// R fills column-major.
		obj, err := in.eng.NewMatrix(rows, cols, func(i, j int64) float64 { return vals[j*rows+i] })
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case "sparse", "dense":
		// Storage-kind conversions. On a backend with a sparse array
		// kind (engine.SparseEngine) they convert; on every other
		// backend they are identities, so the same script still runs
		// everywhere — sparsity is a storage property, not a semantic
		// one.
		if len(t.args) != 1 {
			return Value{}, fmt.Errorf("rlang: %s takes one argument", t.fn)
		}
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return Value{}, fmt.Errorf("rlang: %s() requires an array", t.fn)
		}
		se, ok := in.eng.(engine.SparseEngine)
		if !ok {
			return v, nil
		}
		var obj engine.Value
		if t.fn == "sparse" {
			obj, err = se.ToSparse(v.Obj)
		} else {
			obj, err = se.ToDense(v.Obj)
		}
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	case "nnz":
		if len(t.args) != 1 {
			return Value{}, fmt.Errorf("rlang: nnz takes one argument")
		}
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			if v.Scalar != 0 {
				return scalar(1), nil
			}
			return scalar(0), nil
		}
		if se, ok := in.eng.(engine.SparseEngine); ok {
			n, err := se.NNZ(v.Obj)
			if err != nil {
				return Value{}, err
			}
			return scalar(float64(n)), nil
		}
		// Kind-free backend: force and count.
		vals, err := in.eng.Fetch(v.Obj, -1)
		if err != nil {
			return Value{}, err
		}
		n := 0
		for _, x := range vals {
			if x != 0 {
				n++
			}
		}
		return scalar(float64(n)), nil
	case "matmul", "closure":
		return in.evalRingCall(t)
	case "print":
		v, err := in.eval(t.args[0])
		if err != nil {
			return Value{}, err
		}
		return v, in.print(v)
	}
	return Value{}, fmt.Errorf("rlang: unknown function %q", t.fn)
}

// evalRingCall handles matmul(a, b, ring="...") and closure(a,
// ring="..."). On a backend with semi-ring kernels (engine.RingEngine)
// the ring travels into the engine; on every other backend the
// interpreter computes the ring product in memory and hands the result
// back as a stored matrix, so the same script runs everywhere.
func (in *Interp) evalRingCall(t callExpr) (Value, error) {
	ring := ""
	var pos []expr
	for i, a := range t.args {
		name := ""
		if i < len(t.names) {
			name = t.names[i]
		}
		switch name {
		case "":
			pos = append(pos, a)
		case "ring":
			s, ok := a.(strExpr)
			if !ok {
				return Value{}, fmt.Errorf("rlang: %s: ring= takes a string literal", t.fn)
			}
			ring = s.v
		default:
			return Value{}, fmt.Errorf("rlang: %s: unknown argument %q", t.fn, name)
		}
	}
	sr, err := scalarop.Ring(ring)
	if err != nil {
		return Value{}, fmt.Errorf("rlang: %s: %v", t.fn, err)
	}
	want := 2
	if t.fn == "closure" {
		want = 1
	}
	if len(pos) != want {
		return Value{}, fmt.Errorf("rlang: %s takes %d matrix argument(s) plus optional ring=", t.fn, want)
	}
	vals := make([]Value, len(pos))
	for i, a := range pos {
		v, err := in.eval(a)
		if err != nil {
			return Value{}, err
		}
		if v.IsScalar {
			return Value{}, fmt.Errorf("rlang: %s requires matrices", t.fn)
		}
		vals[i] = v
	}
	re, hasRing := in.eng.(engine.RingEngine)
	if t.fn == "matmul" {
		if sr.IsStandard() && !hasRing {
			obj, err := in.eng.MatMul(vals[0].Obj, vals[1].Obj)
			if err != nil {
				return Value{}, err
			}
			return Value{Obj: obj}, nil
		}
		if hasRing {
			obj, err := re.MatMulRing(vals[0].Obj, vals[1].Obj, ring)
			if err != nil {
				return Value{}, err
			}
			return Value{Obj: obj}, nil
		}
		return in.memRingMatMul(vals[0], vals[1], sr)
	}
	if hasRing {
		obj, err := re.Closure(vals[0].Obj, ring)
		if err != nil {
			return Value{}, err
		}
		return Value{Obj: obj}, nil
	}
	return in.memRingClosure(vals[0], sr)
}

// fetchMat reads a matrix value into memory (row-major, the Fetch
// contract) along with its dims.
func (in *Interp) fetchMat(v Value) ([]float64, int64, int64, error) {
	r, c, vec := in.eng.Dims(v.Obj)
	if vec {
		return nil, 0, 0, fmt.Errorf("rlang: expected a matrix, got a vector")
	}
	vals, err := in.eng.Fetch(v.Obj, -1)
	if err != nil {
		return nil, 0, 0, err
	}
	if int64(len(vals)) != r*c {
		return nil, 0, 0, fmt.Errorf("rlang: short matrix fetch: %d of %d", len(vals), r*c)
	}
	return vals, r, c, nil
}

// memRingMatMul is the kind-free fallback ring product. Stored zeros
// denote the ring's Zero (the same convention the sparse kernels use),
// so a minplus product of an adjacency matrix means what it does on the
// RIOT backend.
func (in *Interp) memRingMatMul(a, b Value, ring *scalarop.Semiring) (Value, error) {
	av, l, m, err := in.fetchMat(a)
	if err != nil {
		return Value{}, err
	}
	bv, m2, n, err := in.fetchMat(b)
	if err != nil {
		return Value{}, err
	}
	if m != m2 {
		return Value{}, fmt.Errorf("rlang: dimension mismatch %dx%d %%*%% %dx%d", l, m, m2, n)
	}
	conv := func(x float64) float64 {
		if x == 0 {
			return ring.Zero
		}
		return x
	}
	out := make([]float64, l*n)
	for i := int64(0); i < l; i++ {
		for j := int64(0); j < n; j++ {
			acc := ring.Zero
			for k := int64(0); k < m; k++ {
				acc = ring.Add(acc, ring.Mul(conv(av[i*m+k]), conv(bv[k*n+j])))
			}
			if acc == ring.Zero {
				acc = 0 // store Zero as absent, matching the kernels
			}
			out[i*n+j] = acc
		}
	}
	obj, err := in.eng.NewMatrix(l, n, func(i, j int64) float64 { return out[i*n+j] })
	if err != nil {
		return Value{}, err
	}
	return Value{Obj: obj}, nil
}

// memRingClosure is the kind-free fallback closure: repeated squaring
// of the reflexive seed, entirely in memory.
func (in *Interp) memRingClosure(a Value, ring *scalarop.Semiring) (Value, error) {
	av, r, c, err := in.fetchMat(a)
	if err != nil {
		return Value{}, err
	}
	if r != c {
		return Value{}, fmt.Errorf("rlang: closure requires a square matrix, got %dx%d", r, c)
	}
	n := r
	x := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			v := av[i*n+j]
			if v == 0 {
				v = ring.Zero
			}
			if i == j {
				v = ring.Add(v, ring.One)
			}
			x[i*n+j] = v
		}
	}
	y := make([]float64, n*n)
	for span := int64(1); span < n-1; span *= 2 {
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				acc := ring.Zero
				for k := int64(0); k < n; k++ {
					acc = ring.Add(acc, ring.Mul(x[i*n+k], x[k*n+j]))
				}
				y[i*n+j] = acc
			}
		}
		x, y = y, x
	}
	out := x
	obj, err := in.eng.NewMatrix(n, n, func(i, j int64) float64 { return out[i*n+j] })
	if err != nil {
		return Value{}, err
	}
	return Value{Obj: obj}, nil
}

// scalarFn folds a unary math function over a scalar constant via the
// shared scalar-op table. Unknown functions are reported, not NaN'd
// (see scalarBin).
func scalarFn(fn string, v float64) (float64, error) {
	f, err := scalarop.Unary(fn)
	if err != nil {
		return 0, fmt.Errorf("rlang: %v", err)
	}
	return f(v), nil
}

// print forces evaluation (the paper's trigger for computing z) and
// renders up to 20 elements.
func (in *Interp) print(v Value) error {
	if in.Out == nil {
		in.Out = &strings.Builder{}
	}
	if v.IsScalar {
		fmt.Fprintf(in.Out, "[1] %g\n", v.Scalar)
		return nil
	}
	const headLimit = 20
	vals, err := in.eng.Fetch(v.Obj, headLimit+1)
	if err != nil {
		return err
	}
	trunc := false
	if len(vals) > headLimit {
		vals = vals[:headLimit]
		trunc = true
	}
	fmt.Fprintf(in.Out, "[1]")
	for _, x := range vals {
		fmt.Fprintf(in.Out, " %g", x)
	}
	if trunc {
		fmt.Fprintf(in.Out, " ...")
	}
	fmt.Fprintln(in.Out)
	return nil
}
