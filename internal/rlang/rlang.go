// Package rlang implements riotscript, the R-subset front end that makes
// the transparency claim concrete: the same script — Example 1 verbatim,
// up to R's 1-based indexing — runs unchanged on plain R, any RIOT-DB
// variant, or the next-generation RIOT engine. The interpreter performs
// no computation itself; every vectorized operation dispatches through
// engine.Engine, exactly as R's generics mechanism dispatches dbvector
// operations to RIOT-DB (§4).
//
// Supported forms: numeric literals; variables; `<-`/`=` assignment;
// vectorized + - * / ^ %% and comparisons; unary minus; a:b ranges
// (1-based, inclusive, as values and as subscripts); x[s], x[a:b],
// x[x > k] <- v; %*%; and the builtins c, sqrt, abs, exp, log, sin, cos,
// floor, ceiling, length, sum, min, max, sample, runif, seq_len, matrix,
// nrow, ncol, print, and the storage-kind trio sparse, dense, nnz
// (conversions on backends with a sparse array kind, identities and a
// nonzero count elsewhere).
package rlang

import (
	"fmt"
	"strconv"
	"strings"

	"riot/internal/engine"
)

// Value is a riotscript value: a scalar or an engine object.
type Value struct {
	Scalar   float64
	IsScalar bool
	Obj      engine.Value
}

func scalar(v float64) Value { return Value{Scalar: v, IsScalar: true} }

// GlobalStore is the interpreter's hook into a shared named-object
// table (riot-serve's durable catalog). GetGlobal resolves a name to an
// engine value; SetGlobal publishes a top-level assignment. Both may be
// called from many interpreters concurrently; implementations
// synchronize internally.
type GlobalStore interface {
	GetGlobal(name string) (engine.Value, bool)
	SetGlobal(name string, v engine.Value) error
}

// Interp interprets riotscript over a backend engine.
type Interp struct {
	eng  engine.Engine
	env  map[string]Value
	Out  *strings.Builder // print output (nil: discarded)
	seed uint64
	// Globals, when set, makes the interpreter a window onto a shared
	// namespace: every top-level assignment of an array publishes it,
	// and variable reads prefer the shared table over the local
	// environment, so another session's republish is seen immediately
	// (last-writer-wins). Scalars stay session-local — only arrays are
	// catalog objects.
	Globals GlobalStore
}

// New creates an interpreter over e.
func New(e engine.Engine) *Interp {
	return &Interp{eng: e, env: make(map[string]Value), Out: &strings.Builder{}, seed: 42}
}

// Engine returns the backend.
func (in *Interp) Engine() engine.Engine { return in.eng }

// Get returns a variable's value.
func (in *Interp) Get(name string) (Value, bool) {
	v, ok := in.env[name]
	return v, ok
}

// lookup resolves a name for evaluation. A locally bound scalar wins
// (scalars are session-local and may shadow a published array of the
// same name); otherwise the shared global table, if any, is consulted
// before the local environment, so republished arrays are seen with
// last-writer-wins semantics.
func (in *Interp) lookup(name string) (Value, bool) {
	if v, ok := in.env[name]; ok && v.IsScalar {
		return v, true
	}
	if in.Globals != nil {
		if obj, ok := in.Globals.GetGlobal(name); ok {
			return Value{Obj: obj}, true
		}
	}
	v, ok := in.env[name]
	return v, ok
}

// SetVector binds a pre-built engine vector (for benchmarks that load
// inputs out-of-band).
func (in *Interp) SetVector(name string, obj engine.Value) {
	in.env[name] = Value{Obj: obj}
}

// SetScalar binds a scalar variable.
func (in *Interp) SetScalar(name string, v float64) {
	in.env[name] = scalar(v)
}

// Run executes a whole script (statements separated by newlines or ;).
func (in *Interp) Run(src string) error {
	p := &rparser{src: src}
	stmts, err := p.parseProgram()
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := in.exec(s); err != nil {
			return err
		}
	}
	return nil
}

// ---- AST ----

type stmt interface{ stmt() }

type assignStmt struct {
	name string
	expr expr
}

type maskAssign struct { // x[x > k] <- v
	name   string
	cmpVar string
	cmpOp  string
	thresh expr
	value  expr
}

type exprStmt struct{ e expr }

func (assignStmt) stmt() {}
func (maskAssign) stmt() {}
func (exprStmt) stmt()   {}

type expr interface{ expr() }

type numExpr struct{ v float64 }
type strExpr struct{ v string }
type varExpr struct{ name string }
type binExpr struct {
	op   string
	l, r expr
}
type unaryExpr struct{ x expr }
type callExpr struct {
	fn   string
	args []expr
	// names[i] labels args[i] when the call site wrote name=value
	// (R-style named arguments); "" marks a positional argument.
	names []string
}
type indexExpr struct {
	x   expr
	sub expr // subscript expression (vector of 1-based indices)
}
type rangeExpr struct{ lo, hi expr } // a:b inclusive

func (numExpr) expr()   {}
func (strExpr) expr()   {}
func (varExpr) expr()   {}
func (binExpr) expr()   {}
func (unaryExpr) expr() {}
func (callExpr) expr()  {}
func (indexExpr) expr() {}
func (rangeExpr) expr() {}

// ---- parser ----

type rparser struct {
	src string
	pos int
}

func (p *rparser) ws() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			p.pos++
		} else if c == '#' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		} else {
			break
		}
	}
}

func (p *rparser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *rparser) parseProgram() ([]stmt, error) {
	var out []stmt
	for {
		p.ws()
		for p.pos < len(p.src) && (p.src[p.pos] == '\n' || p.src[p.pos] == ';') {
			p.pos++
			p.ws()
		}
		if p.pos >= len(p.src) {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] != '\n' && p.src[p.pos] != ';' {
			return nil, fmt.Errorf("rlang: unexpected %q at %d", p.src[p.pos], p.pos)
		}
	}
}

func (p *rparser) parseStmt() (stmt, error) {
	start := p.pos
	if name, ok := p.tryIdent(); ok {
		p.ws()
		// x[...] <- value  (masked update)
		if p.peek() == '[' {
			save := p.pos
			p.pos++
			if ma, ok := p.tryMaskAssign(name); ok {
				return ma, nil
			}
			p.pos = save
		}
		if p.eat("<-") || p.eatAssignEq() {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return assignStmt{name: name, expr: e}, nil
		}
	}
	p.pos = start
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return exprStmt{e: e}, nil
}

// tryMaskAssign parses `var cmp expr ] <- expr` after `name[`.
func (p *rparser) tryMaskAssign(name string) (stmt, bool) {
	save := p.pos
	p.ws()
	inner, ok := p.tryIdent()
	if !ok || inner != name {
		p.pos = save
		return nil, false
	}
	p.ws()
	var op string
	for _, cand := range []string{">=", "<=", "==", "!=", ">", "<"} {
		if p.eat(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		p.pos = save
		return nil, false
	}
	thresh, err := p.parseExpr()
	if err != nil {
		p.pos = save
		return nil, false
	}
	p.ws()
	if !p.eat("]") {
		p.pos = save
		return nil, false
	}
	p.ws()
	if !p.eat("<-") && !p.eatAssignEq() {
		p.pos = save
		return nil, false
	}
	val, err := p.parseExpr()
	if err != nil {
		p.pos = save
		return nil, false
	}
	return maskAssign{name: name, cmpVar: inner, cmpOp: op, thresh: thresh, value: val}, true
}

func (p *rparser) eat(tok string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// eatAssignEq accepts `=` but not `==`.
func (p *rparser) eatAssignEq() bool {
	p.ws()
	if p.peek() == '=' && !(p.pos+1 < len(p.src) && p.src[p.pos+1] == '=') {
		p.pos++
		return true
	}
	return false
}

func (p *rparser) tryIdent() (string, bool) {
	p.ws()
	start := p.pos
	if p.pos < len(p.src) && (isAlpha(p.src[p.pos]) || p.src[p.pos] == '.') {
		p.pos++
		for p.pos < len(p.src) && (isAlpha(p.src[p.pos]) || isDig(p.src[p.pos]) || p.src[p.pos] == '.' || p.src[p.pos] == '_') {
			p.pos++
		}
		return p.src[start:p.pos], true
	}
	return "", false
}

func isAlpha(c byte) bool { return c|0x20 >= 'a' && c|0x20 <= 'z' }
func isDig(c byte) bool   { return c >= '0' && c <= '9' }

// Precedence: compare < range(:) is handled inside, R's actual order is
// ^ > unary- > : > %% %*% * / > + - > comparisons.
func (p *rparser) parseExpr() (expr, error) { return p.parseCmp() }

func (p *rparser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		var op string
		for _, cand := range []string{">=", "<=", "==", "!=", ">", "<"} {
			if strings.HasPrefix(p.src[p.pos:], cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return l, nil
		}
		p.pos += len(op)
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: op, l: l, r: r}
	}
}

func (p *rparser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		c := p.peek()
		if c == '+' || (c == '-' && !strings.HasPrefix(p.src[p.pos:], "<-")) {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: string(c), l: l, r: r}
		} else {
			return l, nil
		}
	}
}

func (p *rparser) parseMul() (expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "%*%"):
			p.pos += 3
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "%*%", l: l, r: r}
		case strings.HasPrefix(p.src[p.pos:], "%%"):
			p.pos += 2
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: "%%", l: l, r: r}
		case p.peek() == '*' || p.peek() == '/':
			op := string(p.src[p.pos])
			p.pos++
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: op, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *rparser) parseRange() (expr, error) {
	l, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.peek() == ':' {
		p.pos++
		r, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		return rangeExpr{lo: l, hi: r}, nil
	}
	return l, nil
}

func (p *rparser) parsePow() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.peek() == '^' {
		p.pos++
		r, err := p.parsePow() // right associative
		if err != nil {
			return nil, err
		}
		return binExpr{op: "^", l: l, r: r}, nil
	}
	return l, nil
}

func (p *rparser) parseUnary() (expr, error) {
	p.ws()
	if p.peek() == '-' {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{x: x}, nil
	}
	if p.peek() == '+' {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *rparser) parsePostfix() (expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if p.peek() == '[' {
			p.pos++
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.ws()
			if !p.eat("]") {
				return nil, fmt.Errorf("rlang: missing ] at %d", p.pos)
			}
			e = indexExpr{x: e, sub: sub}
		} else {
			return e, nil
		}
	}
}

func (p *rparser) parsePrimary() (expr, error) {
	p.ws()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, fmt.Errorf("rlang: missing ) at %d", p.pos)
		}
		return e, nil
	case isDig(c) || c == '.':
		start := p.pos
		for p.pos < len(p.src) && (isDig(p.src[p.pos]) || p.src[p.pos] == '.' ||
			p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
			((p.src[p.pos] == '+' || p.src[p.pos] == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E'))) {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("rlang: bad number %q", p.src[start:p.pos])
		}
		return numExpr{v: v}, nil
	case c == '"':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' && p.src[p.pos] != '\n' {
			p.pos++
		}
		if p.pos >= len(p.src) || p.src[p.pos] != '"' {
			return nil, fmt.Errorf("rlang: unterminated string at %d", start-1)
		}
		s := p.src[start:p.pos]
		p.pos++
		return strExpr{v: s}, nil
	case isAlpha(c) || c == '.':
		name, _ := p.tryIdent()
		p.ws()
		if p.peek() == '(' {
			p.pos++
			var args []expr
			var names []string
			p.ws()
			if p.peek() != ')' {
				for {
					// An ident followed by a single '=' labels the
					// argument R-style; '==' is a comparison, rewind.
					argName := ""
					save := p.pos
					if id, ok := p.tryIdent(); ok {
						p.ws()
						if p.peek() == '=' && !(p.pos+1 < len(p.src) && p.src[p.pos+1] == '=') {
							p.pos++
							argName = id
						} else {
							p.pos = save
						}
					}
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					names = append(names, argName)
					p.ws()
					if !p.eat(",") {
						break
					}
				}
			}
			if !p.eat(")") {
				return nil, fmt.Errorf("rlang: missing ) after %s(", name)
			}
			return callExpr{fn: name, args: args, names: names}, nil
		}
		return varExpr{name: name}, nil
	}
	return nil, fmt.Errorf("rlang: unexpected %q at %d", c, p.pos)
}
