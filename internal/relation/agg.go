package relation

import (
	"fmt"
	"math"
)

// AggFn enumerates aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggFn(%d)", int(f))
}

// AggFnByName resolves an aggregate name.
func AggFnByName(name string) (AggFn, bool) {
	switch name {
	case "SUM", "sum":
		return AggSum, true
	case "COUNT", "count":
		return AggCount, true
	case "AVG", "avg":
		return AggAvg, true
	case "MIN", "min":
		return AggMin, true
	case "MAX", "max":
		return AggMax, true
	}
	return 0, false
}

// AggSpec is one aggregate in a GROUP BY's select list.
type AggSpec struct {
	Fn  AggFn
	Arg Expr // ignored for COUNT(*), which may pass Const{1}
}

type aggState struct {
	sum   float64
	count int64
	min   float64
	max   float64
}

func newAggState() aggState {
	return aggState{min: math.Inf(1), max: math.Inf(-1)}
}

func (s *aggState) add(v float64) {
	s.sum += v
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *aggState) result(fn AggFn) float64 {
	switch fn {
	case AggSum:
		return s.sum
	case AggCount:
		return float64(s.count)
	case AggAvg:
		if s.count == 0 {
			return math.NaN()
		}
		return s.sum / float64(s.count)
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	}
	panic(fmt.Sprintf("relation: unknown aggregate %d", fn))
}

// SortedGroupAgg aggregates an input that is already sorted on the group
// columns, emitting one tuple per group: group values followed by
// aggregate results. Combined with Sort this is the classic sort-group
// plan the paper's RIOT-DB matrix multiply bottoms out in.
type SortedGroupAgg struct {
	Input     Iterator
	GroupCols []int
	Aggs      []AggSpec

	cur    Tuple // pending input row not yet consumed
	curOK  bool
	done   bool
	out    Tuple
	opened bool
}

// Open opens the input and primes the first row.
func (g *SortedGroupAgg) Open() error {
	if err := g.Input.Open(); err != nil {
		return err
	}
	g.done = false
	g.out = make(Tuple, len(g.GroupCols)+len(g.Aggs))
	t, ok, err := g.Input.Next()
	if err != nil {
		return err
	}
	g.curOK = ok
	if ok {
		g.cur = make(Tuple, len(t))
		copy(g.cur, t)
	}
	g.opened = true
	return nil
}

// Next returns the aggregate row for the next group.
func (g *SortedGroupAgg) Next() (Tuple, bool, error) {
	if !g.curOK || g.done {
		return nil, false, nil
	}
	states := make([]aggState, len(g.Aggs))
	for i := range states {
		states[i] = newAggState()
	}
	for i, c := range g.GroupCols {
		g.out[i] = g.cur[c]
	}
	for {
		for i, a := range g.Aggs {
			states[i].add(a.Arg.Eval(g.cur))
		}
		t, ok, err := g.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.curOK = false
			break
		}
		same := true
		for _, c := range g.GroupCols {
			if t[c] != g.out[indexOf(g.GroupCols, c)] {
				same = false
				break
			}
		}
		copy(g.cur, t)
		if !same {
			break
		}
	}
	for i, a := range g.Aggs {
		g.out[len(g.GroupCols)+i] = states[i].result(a.Fn)
	}
	return g.out, true, nil
}

func indexOf(cols []int, c int) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}

// Close closes the input.
func (g *SortedGroupAgg) Close() error { return g.Input.Close() }

// ScalarAgg aggregates the whole input into a single tuple (one column
// per aggregate), for queries like SELECT SUM(V) FROM T.
type ScalarAgg struct {
	Input Iterator
	Aggs  []AggSpec
	done  bool
}

// Open opens the input.
func (g *ScalarAgg) Open() error {
	g.done = false
	return g.Input.Open()
}

// Next computes all aggregates in one pass.
func (g *ScalarAgg) Next() (Tuple, bool, error) {
	if g.done {
		return nil, false, nil
	}
	states := make([]aggState, len(g.Aggs))
	for i := range states {
		states[i] = newAggState()
	}
	for {
		t, ok, err := g.Input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for i, a := range g.Aggs {
			states[i].add(a.Arg.Eval(t))
		}
	}
	out := make(Tuple, len(g.Aggs))
	for i, a := range g.Aggs {
		out[i] = states[i].result(a.Fn)
	}
	g.done = true
	return out, true, nil
}

// Close closes the input.
func (g *ScalarAgg) Close() error { return g.Input.Close() }
