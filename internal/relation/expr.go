package relation

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a scalar expression over a tuple. Comparisons and logical
// operators produce 1 (true) or 0 (false), SQL-style three-valued logic
// being unnecessary because this engine has no NULLs.
type Expr interface {
	Eval(row Tuple) float64
	String() string
}

// Col references a tuple column by position.
type Col struct {
	Idx  int
	Name string
}

// Eval returns the column value.
func (c Col) Eval(row Tuple) float64 { return row[c.Idx] }

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct{ V float64 }

// Eval returns the literal.
func (c Const) Eval(Tuple) float64 { return c.V }

func (c Const) String() string { return fmt.Sprintf("%g", c.V) }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpPow: "^", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

func (op BinOp) String() string { return binOpNames[op] }

// Binary applies a binary operator to two subexpressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Eval evaluates the operation.
func (b Binary) Eval(row Tuple) float64 {
	l := b.L.Eval(row)
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd:
		if l == 0 {
			return 0
		}
		return b1(b.R.Eval(row) != 0)
	case OpOr:
		if l != 0 {
			return 1
		}
		return b1(b.R.Eval(row) != 0)
	}
	r := b.R.Eval(row)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		return l / r
	case OpPow:
		return math.Pow(l, r)
	case OpMod:
		return math.Mod(l, r)
	case OpEq:
		return b1(l == r)
	case OpNe:
		return b1(l != r)
	case OpLt:
		return b1(l < r)
	case OpLe:
		return b1(l <= r)
	case OpGt:
		return b1(l > r)
	case OpGe:
		return b1(l >= r)
	}
	panic(fmt.Sprintf("relation: unknown binary op %d", b.Op))
}

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func b1(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Neg negates its operand.
type Neg struct{ X Expr }

// Eval returns -X.
func (n Neg) Eval(row Tuple) float64 { return -n.X.Eval(row) }

func (n Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Not logically negates its operand.
type Not struct{ X Expr }

// Eval returns 1 if X is zero, else 0.
func (n Not) Eval(row Tuple) float64 { return b1(n.X.Eval(row) == 0) }

func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Func names a built-in scalar function.
type Func string

// Built-in scalar functions mirroring the ones RIOT-DB's SQL generator
// emits (SQRT, POW, …).
const (
	FnSqrt  Func = "SQRT"
	FnPow   Func = "POW"
	FnAbs   Func = "ABS"
	FnExp   Func = "EXP"
	FnLog   Func = "LOG"
	FnSin   Func = "SIN"
	FnCos   Func = "COS"
	FnFloor Func = "FLOOR"
	FnCeil  Func = "CEIL"
	FnMin   Func = "LEAST"
	FnMax   Func = "GREATEST"
)

// Call applies a scalar function to its arguments.
type Call struct {
	Fn   Func
	Args []Expr
}

// Eval evaluates the call.
func (c Call) Eval(row Tuple) float64 {
	switch c.Fn {
	case FnSqrt:
		return math.Sqrt(c.Args[0].Eval(row))
	case FnPow:
		return math.Pow(c.Args[0].Eval(row), c.Args[1].Eval(row))
	case FnAbs:
		return math.Abs(c.Args[0].Eval(row))
	case FnExp:
		return math.Exp(c.Args[0].Eval(row))
	case FnLog:
		return math.Log(c.Args[0].Eval(row))
	case FnSin:
		return math.Sin(c.Args[0].Eval(row))
	case FnCos:
		return math.Cos(c.Args[0].Eval(row))
	case FnFloor:
		return math.Floor(c.Args[0].Eval(row))
	case FnCeil:
		return math.Ceil(c.Args[0].Eval(row))
	case FnMin:
		return math.Min(c.Args[0].Eval(row), c.Args[1].Eval(row))
	case FnMax:
		return math.Max(c.Args[0].Eval(row), c.Args[1].Eval(row))
	}
	panic(fmt.Sprintf("relation: unknown function %q", c.Fn))
}

func (c Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(args, ", "))
}

// KnownFunc reports whether name is a supported scalar function and how
// many arguments it takes.
func KnownFunc(name string) (Func, int, bool) {
	switch Func(strings.ToUpper(name)) {
	case FnSqrt, FnAbs, FnExp, FnLog, FnSin, FnCos, FnFloor, FnCeil:
		return Func(strings.ToUpper(name)), 1, true
	case FnPow, FnMin, FnMax:
		return Func(strings.ToUpper(name)), 2, true
	}
	return "", 0, false
}

// RemapCols rewrites column references through idx (old position → new
// position). It returns a new expression; the input is not modified.
func RemapCols(e Expr, idx map[int]int) Expr {
	switch t := e.(type) {
	case Col:
		if n, ok := idx[t.Idx]; ok {
			return Col{Idx: n, Name: t.Name}
		}
		return t
	case Const:
		return t
	case Neg:
		return Neg{X: RemapCols(t.X, idx)}
	case Not:
		return Not{X: RemapCols(t.X, idx)}
	case Binary:
		return Binary{Op: t.Op, L: RemapCols(t.L, idx), R: RemapCols(t.R, idx)}
	case Call:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = RemapCols(a, idx)
		}
		return Call{Fn: t.Fn, Args: args}
	}
	panic(fmt.Sprintf("relation: RemapCols of unknown expr %T", e))
}

// ColsUsed collects the column indexes referenced by e.
func ColsUsed(e Expr, set map[int]bool) {
	switch t := e.(type) {
	case Col:
		set[t.Idx] = true
	case Const:
	case Neg:
		ColsUsed(t.X, set)
	case Not:
		ColsUsed(t.X, set)
	case Binary:
		ColsUsed(t.L, set)
		ColsUsed(t.R, set)
	case Call:
		for _, a := range t.Args {
			ColsUsed(a, set)
		}
	default:
		panic(fmt.Sprintf("relation: ColsUsed of unknown expr %T", e))
	}
}
