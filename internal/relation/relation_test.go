package relation

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/rstore"
)

func ctx(blockElems, frames int, workMem int64) *Context {
	dev := disk.NewDevice(blockElems)
	pool := buffer.New(dev, frames)
	return NewContext(pool, workMem)
}

func loadHeap(t *testing.T, c *Context, name string, rows []Tuple) *rstore.HeapFile {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("loadHeap: empty input")
	}
	h, err := rstore.NewHeapFile(c.Pool, name, len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := h.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	return h
}

func vecRows(n int, f func(i int) float64) []Tuple {
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{float64(i), f(i)}
	}
	return rows
}

func TestSeqScanFilterProject(t *testing.T) {
	c := ctx(16, 4, 0)
	h := loadHeap(t, c, "x", vecRows(100, func(i int) float64 { return float64(i * i) }))
	var it Iterator = NewSeqScan(h)
	it = &Filter{Input: it, Pred: Binary{Op: OpGt, L: Col{Idx: 1}, R: Const{V: 9000}}}
	it = &Project{Input: it, Exprs: []Expr{Col{Idx: 0}, Call{Fn: FnSqrt, Args: []Expr{Col{Idx: 1}}}}}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	// i*i > 9000 for i >= 95.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if rows[0][0] != 95 || rows[0][1] != 95 {
		t.Fatalf("rows[0]=%v", rows[0])
	}
}

func TestExprEval(t *testing.T) {
	row := Tuple{3, 4}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Binary{Op: OpAdd, L: Col{Idx: 0}, R: Col{Idx: 1}}, 7},
		{Binary{Op: OpSub, L: Col{Idx: 0}, R: Col{Idx: 1}}, -1},
		{Binary{Op: OpMul, L: Col{Idx: 0}, R: Col{Idx: 1}}, 12},
		{Binary{Op: OpDiv, L: Col{Idx: 1}, R: Const{2}}, 2},
		{Binary{Op: OpPow, L: Col{Idx: 0}, R: Const{2}}, 9},
		{Binary{Op: OpMod, L: Const{7}, R: Const{3}}, 1},
		{Binary{Op: OpLt, L: Col{Idx: 0}, R: Col{Idx: 1}}, 1},
		{Binary{Op: OpGe, L: Col{Idx: 0}, R: Col{Idx: 1}}, 0},
		{Binary{Op: OpEq, L: Col{Idx: 0}, R: Const{3}}, 1},
		{Binary{Op: OpNe, L: Col{Idx: 0}, R: Const{3}}, 0},
		{Binary{Op: OpAnd, L: Const{1}, R: Const{0}}, 0},
		{Binary{Op: OpOr, L: Const{0}, R: Const{2}}, 1},
		{Not{Const{0}}, 1},
		{Neg{Col{Idx: 0}}, -3},
		{Call{Fn: FnSqrt, Args: []Expr{Const{16}}}, 4},
		{Call{Fn: FnPow, Args: []Expr{Const{2}, Const{10}}}, 1024},
		{Call{Fn: FnAbs, Args: []Expr{Const{-5}}}, 5},
		{Call{Fn: FnMin, Args: []Expr{Const{2}, Const{-1}}}, -1},
		{Call{Fn: FnMax, Args: []Expr{Const{2}, Const{-1}}}, 2},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(row); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// The right side of AND/OR must not be evaluated when unnecessary;
	// division by zero would produce Inf which we can detect.
	e := Binary{Op: OpAnd, L: Const{0}, R: Binary{Op: OpDiv, L: Const{1}, R: Const{0}}}
	if got := e.Eval(nil); got != 0 {
		t.Fatalf("AND: got %v", got)
	}
}

func TestRemapColsAndColsUsed(t *testing.T) {
	e := Binary{Op: OpAdd, L: Col{Idx: 0}, R: Call{Fn: FnSqrt, Args: []Expr{Col{Idx: 2}}}}
	r := RemapCols(e, map[int]int{0: 5, 2: 7})
	used := map[int]bool{}
	ColsUsed(r, used)
	if !used[5] || !used[7] || len(used) != 2 {
		t.Fatalf("used=%v", used)
	}
	if got := r.Eval(Tuple{0, 0, 0, 0, 0, 3, 0, 16}); got != 7 {
		t.Fatalf("remapped eval=%v, want 7", got)
	}
}

func TestLimit(t *testing.T) {
	it := &Limit{Input: NewSliceIter(vecRows(10, func(i int) float64 { return 0 })), N: 3}
	rows, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
}

func TestSortInMemory(t *testing.T) {
	c := ctx(16, 4, 1<<20)
	rows := []Tuple{{3, 1}, {1, 2}, {2, 3}}
	s := &Sort{Input: NewSliceIter(rows), Arity: 2, Cols: []int{0}, Ctx: c}
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Fatalf("sorted=%v", got)
	}
	// No spill expected: budget is huge.
	if c.Pool.Device().Stats().BlocksWritten != 0 {
		t.Fatal("in-memory sort wrote to disk")
	}
}

func TestSortExternalSpills(t *testing.T) {
	c := ctx(16, 8, 64) // tiny budget: 32 rows of arity 2
	n := 2000
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{float64((i * 7919) % n), float64(i)}
	}
	s := &Sort{Input: NewSliceIter(rows), Arity: 2, Cols: []int{0}, Ctx: c}
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("sorted %d rows, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i][0] < got[i-1][0] {
			t.Fatalf("out of order at %d: %v < %v", i, got[i][0], got[i-1][0])
		}
	}
	if c.Pool.Device().Stats().BlocksWritten == 0 {
		t.Fatal("external sort did not spill despite tiny budget")
	}
	// Temp runs must be freed after Close (Drain closes).
	for _, owner := range c.Pool.Device().Owners() {
		t.Fatalf("leaked temp file %q", owner)
	}
}

func TestSortStabilityAndDuplicates(t *testing.T) {
	c := ctx(16, 8, 1<<20)
	rows := []Tuple{{1, 10}, {1, 20}, {0, 30}, {1, 40}}
	s := &Sort{Input: NewSliceIter(rows), Arity: 2, Cols: []int{0}, Ctx: c}
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][1] != 30 || got[1][1] != 10 || got[2][1] != 20 || got[3][1] != 40 {
		t.Fatalf("stability violated: %v", got)
	}
}

// Property: external sort output equals sort.Slice on the same data for
// any input and any (tiny) memory budget.
func TestSortMatchesModelProperty(t *testing.T) {
	f := func(vals []uint16, budget uint8) bool {
		if len(vals) == 0 {
			return true
		}
		c := ctx(16, 8, int64(budget%100)+8)
		rows := make([]Tuple, len(vals))
		model := make([]float64, len(vals))
		for i, v := range vals {
			rows[i] = Tuple{float64(v % 97), float64(i)}
			model[i] = float64(v % 97)
		}
		s := &Sort{Input: NewSliceIter(rows), Arity: 2, Cols: []int{0}, Ctx: c}
		got, err := Drain(s)
		if err != nil || len(got) != len(model) {
			return false
		}
		sort.Float64s(model)
		for i := range model {
			if got[i][0] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeJoinOneToOne(t *testing.T) {
	left := vecRows(50, func(i int) float64 { return float64(i) })
	right := vecRows(50, func(i int) float64 { return float64(i * 2) })
	j := &MergeJoin{
		Left: NewSliceIter(left), Right: NewSliceIter(right),
		LeftCols: []int{0}, RightCols: []int{0},
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("joined %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if r[0] != r[2] || r[3] != 2*r[0] {
			t.Fatalf("bad join row %v", r)
		}
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	left := []Tuple{{1, 0}, {1, 1}, {2, 2}, {4, 3}}
	right := []Tuple{{1, 10}, {1, 11}, {3, 12}, {4, 13}}
	j := &MergeJoin{Left: NewSliceIter(left), Right: NewSliceIter(right), LeftCols: []int{0}, RightCols: []int{0}}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// key 1: 2x2=4 matches; key 4: 1. Total 5.
	if len(rows) != 5 {
		t.Fatalf("joined %d rows, want 5: %v", len(rows), rows)
	}
}

func TestMergeJoinDisjointKeys(t *testing.T) {
	left := []Tuple{{1, 0}, {3, 1}}
	right := []Tuple{{2, 0}, {4, 1}}
	j := &MergeJoin{Left: NewSliceIter(left), Right: NewSliceIter(right), LeftCols: []int{0}, RightCols: []int{0}}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("joined %d rows, want 0", len(rows))
	}
}

func TestHashJoinInMemory(t *testing.T) {
	c := ctx(16, 8, 1<<20)
	left := vecRows(100, func(i int) float64 { return float64(i) })
	right := vecRows(100, func(i int) float64 { return float64(i * 3) })
	j := &HashJoin{
		Left: NewSliceIter(left), Right: NewSliceIter(right),
		LeftCols: []int{0}, RightCols: []int{0}, LeftArity: 2, RightArity: 2, Ctx: c,
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("joined %d rows", len(rows))
	}
	if c.Pool.Device().Stats().BlocksWritten != 0 {
		t.Fatal("in-memory hash join spilled")
	}
}

func TestHashJoinGraceSpill(t *testing.T) {
	c := ctx(16, 8, 64) // force spill
	n := 3000
	left := vecRows(n, func(i int) float64 { return float64(i) })
	right := vecRows(n, func(i int) float64 { return float64(i * 3) })
	j := &HashJoin{
		Left: NewSliceIter(left), Right: NewSliceIter(right),
		LeftCols: []int{0}, RightCols: []int{0}, LeftArity: 2, RightArity: 2, Ctx: c,
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("joined %d rows, want %d", len(rows), n)
	}
	sum := 0.0
	for _, r := range rows {
		if r[0] != r[2] {
			t.Fatalf("key mismatch %v", r)
		}
		sum += r[3] - 3*r[1]
	}
	if sum != 0 {
		t.Fatalf("payload mismatch, sum=%v", sum)
	}
	if c.Pool.Device().Stats().BlocksWritten == 0 {
		t.Fatal("grace join did not write partitions")
	}
	for _, owner := range c.Pool.Device().Owners() {
		t.Fatalf("leaked partition file %q", owner)
	}
}

// Property: hash join row multiplicity equals the product of per-key
// multiplicities, spill or not.
func TestHashJoinMultiplicityProperty(t *testing.T) {
	f := func(lkeys, rkeys []uint8, budget uint16) bool {
		c := ctx(16, 8, int64(budget%256)+16)
		var left, right []Tuple
		lcount := map[float64]int{}
		rcount := map[float64]int{}
		for i, k := range lkeys {
			v := float64(k % 8)
			left = append(left, Tuple{v, float64(i)})
			lcount[v]++
		}
		for i, k := range rkeys {
			v := float64(k % 8)
			right = append(right, Tuple{v, float64(i)})
			rcount[v]++
		}
		want := 0
		for k, lc := range lcount {
			want += lc * rcount[k]
		}
		j := &HashJoin{Left: NewSliceIter(left), Right: NewSliceIter(right),
			LeftCols: []int{0}, RightCols: []int{0}, LeftArity: 2, RightArity: 2, Ctx: c}
		rows, err := Drain(j)
		return err == nil && len(rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestINLJoin(t *testing.T) {
	c := ctx(32, 8, 0)
	// Inner table: 1000 rows keyed 0..999.
	heap := loadHeap(t, c, "inner", vecRows(1000, func(i int) float64 { return float64(i) + 0.5 }))
	idx, err := rstore.NewBTree(c.Pool, "inner_pk", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.BulkLoad(1000, func(i int64) ([]float64, rstore.RID) {
		return []float64{float64(i)}, rstore.RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	outer := []Tuple{{0, 17}, {1, 999}, {2, 500}, {3, 1234}} // last probe misses
	j := &INLJoin{
		Outer:     NewSliceIter(outer),
		Inner:     &IndexedTable{Heap: heap, Index: idx},
		OuterCols: []int{1},
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("joined %d rows, want 3", len(rows))
	}
	if rows[0][3] != 17.5 || rows[1][3] != 999.5 || rows[2][3] != 500.5 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestINLJoinIsSelective(t *testing.T) {
	// Probing 10 of 100000 rows must touch far fewer blocks than a scan.
	c := ctx(128, 32, 0)
	n := 100000
	heap := loadHeap(t, c, "inner", vecRows(n, func(i int) float64 { return float64(i) }))
	idx, _ := rstore.NewBTree(c.Pool, "pk", 1)
	if err := idx.BulkLoad(int64(n), func(i int64) ([]float64, rstore.RID) {
		return []float64{float64(i)}, rstore.RID(i)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	c.Pool.Device().ResetStats()
	rng := rand.New(rand.NewSource(42))
	outer := make([]Tuple, 10)
	for i := range outer {
		outer[i] = Tuple{float64(i), float64(rng.Intn(n))}
	}
	j := &INLJoin{Outer: NewSliceIter(outer), Inner: &IndexedTable{Heap: heap, Index: idx}, OuterCols: []int{1}}
	if _, err := Drain(j); err != nil {
		t.Fatal(err)
	}
	reads := c.Pool.Device().Stats().BlocksRead
	if reads > 100 {
		t.Fatalf("INL join read %d blocks for 10 probes", reads)
	}
	if int(reads) >= heap.Blocks() {
		t.Fatalf("INL join read %d blocks, scan would be %d", reads, heap.Blocks())
	}
}

func TestSortedGroupAgg(t *testing.T) {
	rows := []Tuple{
		{1, 10}, {1, 20}, {2, 5}, {3, 7}, {3, 7}, {3, 1},
	}
	g := &SortedGroupAgg{
		Input:     NewSliceIter(rows),
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Fn: AggSum, Arg: Col{Idx: 1}},
			{Fn: AggCount, Arg: Col{Idx: 1}},
			{Fn: AggMin, Arg: Col{Idx: 1}},
			{Fn: AggMax, Arg: Col{Idx: 1}},
			{Fn: AggAvg, Arg: Col{Idx: 1}},
		},
	}
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{
		{1, 30, 2, 10, 20, 15},
		{2, 5, 1, 5, 5, 5},
		{3, 15, 3, 1, 7, 5},
	}
	if len(got) != len(want) {
		t.Fatalf("groups=%d, want %d", len(got), len(want))
	}
	for i := range want {
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("group %d col %d: got %v want %v", i, k, got[i][k], want[i][k])
			}
		}
	}
}

func TestScalarAgg(t *testing.T) {
	rows := vecRows(100, func(i int) float64 { return float64(i) })
	g := &ScalarAgg{Input: NewSliceIter(rows), Aggs: []AggSpec{
		{Fn: AggSum, Arg: Col{Idx: 1}},
		{Fn: AggCount, Arg: Const{1}},
	}}
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != 4950 || got[0][1] != 100 {
		t.Fatalf("got=%v", got)
	}
}

func TestScalarAggEmptyInput(t *testing.T) {
	g := &ScalarAgg{Input: NewSliceIter(nil), Aggs: []AggSpec{{Fn: AggAvg, Arg: Col{Idx: 0}}}}
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !math.IsNaN(got[0][0]) {
		t.Fatalf("avg of empty = %v, want NaN", got)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	c := ctx(16, 4, 0)
	rows := vecRows(200, func(i int) float64 { return float64(i) * 1.5 })
	h, err := Materialize(c, NewSliceIter(rows), 2, "mat")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRecords() != 200 {
		t.Fatalf("materialized %d records", h.NumRecords())
	}
	got, err := Drain(NewSeqScan(h))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r[0] != float64(i) || r[1] != float64(i)*1.5 {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

// The matmul query plan end-to-end at small scale: hash join A.J=B.I,
// project, sort by (I,J), group-aggregate — RIOT-DB's plan from §4.1.
func TestMatMulPlanSmall(t *testing.T) {
	c := ctx(64, 16, 4096)
	const n = 8 // 8×8 matrices
	var arows, brows []Tuple
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			arows = append(arows, Tuple{float64(i), float64(j), float64(i + j)})
			brows = append(brows, Tuple{float64(i), float64(j), float64(i - j)})
		}
	}
	// A: (I, J, V); B: (I, J, V). Join A.J = B.I.
	join := &HashJoin{
		Left: NewSliceIter(arows), Right: NewSliceIter(brows),
		LeftCols: []int{1}, RightCols: []int{0}, LeftArity: 3, RightArity: 3, Ctx: c,
	}
	// Project (A.I, B.J, A.V*B.V).
	proj := &Project{Input: join, Exprs: []Expr{
		Col{Idx: 0}, Col{Idx: 4},
		Binary{Op: OpMul, L: Col{Idx: 2}, R: Col{Idx: 5}},
	}}
	srt := &Sort{Input: proj, Arity: 3, Cols: []int{0, 1}, Ctx: c}
	agg := &SortedGroupAgg{Input: srt, GroupCols: []int{0, 1}, Aggs: []AggSpec{{Fn: AggSum, Arg: Col{Idx: 2}}}}
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n*n {
		t.Fatalf("result has %d cells, want %d", len(got), n*n)
	}
	for _, r := range got {
		i, j := int(r[0]), int(r[1])
		want := 0.0
		for k := 0; k < n; k++ {
			want += float64(i+k) * float64(k-j)
		}
		if math.Abs(r[2]-want) > 1e-9 {
			t.Fatalf("C[%d,%d]=%v, want %v", i, j, r[2], want)
		}
	}
}
