package relation

import (
	"container/heap"
	"sort"

	"riot/internal/rstore"
)

// compareOn orders tuples lexicographically on the given columns.
func compareOn(a, b Tuple, cols []int) int {
	for _, c := range cols {
		if a[c] < b[c] {
			return -1
		}
		if a[c] > b[c] {
			return 1
		}
	}
	return 0
}

// compareOnDir is compareOn with a per-column descending flag; desc may
// be nil (all ascending) or match cols in length.
func compareOnDir(a, b Tuple, cols []int, desc []bool) int {
	for i, c := range cols {
		cmp := 0
		if a[c] < b[c] {
			cmp = -1
		} else if a[c] > b[c] {
			cmp = 1
		}
		if cmp != 0 {
			if desc != nil && desc[i] {
				return -cmp
			}
			return cmp
		}
	}
	return 0
}

// Sort is an external merge sort: runs of WorkMem elements are sorted in
// memory and spilled to temporary heap files, then merged. This is the
// operator that dominates RIOT-DB's matrix-multiply plan — the paper's
// "hash join ... then sorts the result by (A.I, B.J)" — and the reason
// that plan is "far from the optimum" (§4.1).
type Sort struct {
	Input Iterator
	Arity int
	Cols  []int  // sort key columns, compared lexicographically
	Desc  []bool // optional per-column descending flags
	Ctx   *Context

	mem   []Tuple // in-memory result when everything fits
	pos   int
	runs  []*rstore.HeapFile
	merge *mergeState
}

// Open drains the input, forms runs, and prepares the merge.
func (s *Sort) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()
	s.mem = nil
	s.pos = 0
	s.runs = nil
	s.merge = nil

	budgetRows := s.Ctx.WorkMem / int64(s.Arity)
	if budgetRows < 2 {
		budgetRows = 2
	}
	var buf []Tuple
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return compareOnDir(buf[i], buf[j], s.Cols, s.Desc) < 0 })
		run, err := rstore.NewHeapFile(s.Ctx.Pool, s.Ctx.TempName("sortrun"), s.Arity)
		if err != nil {
			return err
		}
		for _, t := range buf {
			if _, err := run.Append(t); err != nil {
				return err
			}
		}
		if err := run.Flush(); err != nil {
			return err
		}
		s.runs = append(s.runs, run)
		buf = buf[:0]
		return nil
	}
	for {
		t, ok, err := s.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		cp := make(Tuple, len(t))
		copy(cp, t)
		buf = append(buf, cp)
		if int64(len(buf)) >= budgetRows {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if len(s.runs) == 0 {
		// Everything fit: sort in memory, no I/O at all.
		sort.SliceStable(buf, func(i, j int) bool { return compareOnDir(buf[i], buf[j], s.Cols, s.Desc) < 0 })
		s.mem = buf
		return nil
	}
	if err := flush(); err != nil {
		return err
	}
	// Multi-pass merge down to a fan-in the budget can stream.
	fan := int(s.Ctx.WorkMem / int64(s.Ctx.Pool.Device().BlockElems()))
	if fan < 2 {
		fan = 2
	}
	if fan > 64 {
		fan = 64
	}
	for len(s.runs) > fan {
		var next []*rstore.HeapFile
		for i := 0; i < len(s.runs); i += fan {
			group := s.runs[i:min(i+fan, len(s.runs))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			merged, err := s.mergeRuns(group)
			if err != nil {
				return err
			}
			next = append(next, merged)
		}
		s.runs = next
	}
	m, err := newMergeState(s.runs, s.Cols, s.Desc)
	if err != nil {
		return err
	}
	s.merge = m
	return nil
}

// mergeRuns merges a group of runs into a single new run and frees the
// inputs.
func (s *Sort) mergeRuns(group []*rstore.HeapFile) (*rstore.HeapFile, error) {
	m, err := newMergeState(group, s.Cols, s.Desc)
	if err != nil {
		return nil, err
	}
	out, err := rstore.NewHeapFile(s.Ctx.Pool, s.Ctx.TempName("sortrun"), s.Arity)
	if err != nil {
		return nil, err
	}
	for {
		t, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if _, err := out.Append(t); err != nil {
			return nil, err
		}
	}
	if err := out.Flush(); err != nil {
		return nil, err
	}
	for _, r := range group {
		r.Free()
	}
	return out, nil
}

// Next returns tuples in sorted order.
func (s *Sort) Next() (Tuple, bool, error) {
	if s.merge != nil {
		return s.merge.next()
	}
	if s.pos >= len(s.mem) {
		return nil, false, nil
	}
	t := s.mem[s.pos]
	s.pos++
	return t, true, nil
}

// Close frees any remaining spill files.
func (s *Sort) Close() error {
	for _, r := range s.runs {
		r.Free()
	}
	s.runs = nil
	s.mem = nil
	s.merge = nil
	return nil
}

// mergeState is a k-way merge over sorted runs.
type mergeState struct {
	cols []int
	h    mergeHeap
}

type mergeEntry struct {
	cur *rstore.Cursor
	row Tuple
}

type mergeHeap struct {
	entries []*mergeEntry
	cols    []int
	desc    []bool
}

func (m mergeHeap) Len() int { return len(m.entries) }
func (m mergeHeap) Less(i, j int) bool {
	return compareOnDir(m.entries[i].row, m.entries[j].row, m.cols, m.desc) < 0
}
func (m mergeHeap) Swap(i, j int) { m.entries[i], m.entries[j] = m.entries[j], m.entries[i] }
func (m *mergeHeap) Push(x any)   { m.entries = append(m.entries, x.(*mergeEntry)) }
func (m *mergeHeap) Pop() any {
	e := m.entries[len(m.entries)-1]
	m.entries = m.entries[:len(m.entries)-1]
	return e
}

func newMergeState(runs []*rstore.HeapFile, cols []int, desc []bool) (*mergeState, error) {
	m := &mergeState{cols: cols}
	m.h.cols = cols
	m.h.desc = desc
	for _, r := range runs {
		cur := r.NewCursor()
		row, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		cp := make(Tuple, len(row))
		copy(cp, row)
		m.h.entries = append(m.h.entries, &mergeEntry{cur: cur, row: cp})
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeState) next() (Tuple, bool, error) {
	if m.h.Len() == 0 {
		return nil, false, nil
	}
	e := m.h.entries[0]
	out := e.row
	row, ok, err := e.cur.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		cp := make(Tuple, len(row))
		copy(cp, row)
		e.row = cp
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return out, true, nil
}
