package relation

import (
	"encoding/binary"
	"math"

	"riot/internal/rstore"
)

// compareAcross compares a[acols] with b[bcols] lexicographically.
func compareAcross(a Tuple, acols []int, b Tuple, bcols []int) int {
	for i := range acols {
		av, bv := a[acols[i]], b[bcols[i]]
		if av < bv {
			return -1
		}
		if av > bv {
			return 1
		}
	}
	return 0
}

// hashKey encodes the key columns of t into a map key.
func hashKey(t Tuple, cols []int) string {
	buf := make([]byte, 8*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(t[c]))
	}
	return string(buf)
}

// MergeJoin equijoins two inputs already sorted on their join columns
// (composite keys compared lexicographically). When RIOT-DB joins two
// vectors on their index columns — the SQL its elementwise operators
// generate — both sides arrive clustered by I, and the join is a single
// synchronized pass with no working memory: this is the pipelined plan
// behind RIOT-DB/MatNamed's "single pass over x and y" (§4.1).
type MergeJoin struct {
	Left, Right         Iterator
	LeftCols, RightCols []int

	lrow, rrow Tuple
	lok, rok   bool
	group      []Tuple // buffered right group with equal key
	gpos       int
	gkey       Tuple // left-side image of the group key (by LeftCols order)
	inGroup    bool
	out        Tuple
	started    bool
}

// Open opens both inputs.
func (j *MergeJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.started = false
	j.inGroup = false
	j.group = nil
	return nil
}

func (j *MergeJoin) advanceLeft() error {
	t, ok, err := j.Left.Next()
	if err != nil {
		return err
	}
	j.lok = ok
	if ok {
		if j.lrow == nil {
			j.lrow = make(Tuple, len(t))
		}
		copy(j.lrow, t)
	}
	return nil
}

func (j *MergeJoin) advanceRight() error {
	t, ok, err := j.Right.Next()
	if err != nil {
		return err
	}
	j.rok = ok
	if ok {
		if j.rrow == nil {
			j.rrow = make(Tuple, len(t))
		}
		copy(j.rrow, t)
	}
	return nil
}

// leftMatchesGroup reports whether the current left row has the group key.
func (j *MergeJoin) leftMatchesGroup() bool {
	for i, c := range j.LeftCols {
		if j.lrow[c] != j.gkey[i] {
			return false
		}
	}
	return true
}

// Next produces the next joined tuple (left columns then right columns).
func (j *MergeJoin) Next() (Tuple, bool, error) {
	if !j.started {
		j.started = true
		if err := j.advanceLeft(); err != nil {
			return nil, false, err
		}
		if err := j.advanceRight(); err != nil {
			return nil, false, err
		}
	}
	for {
		if j.inGroup && j.lok && j.leftMatchesGroup() {
			if j.gpos < len(j.group) {
				r := j.group[j.gpos]
				j.gpos++
				return j.emit(j.lrow, r), true, nil
			}
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			j.gpos = 0
			continue
		}
		j.inGroup = false
		if !j.lok || !j.rok {
			return nil, false, nil
		}
		switch cmp := compareAcross(j.lrow, j.LeftCols, j.rrow, j.RightCols); {
		case cmp < 0:
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
		case cmp > 0:
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			// Buffer the right group sharing this key.
			if j.gkey == nil {
				j.gkey = make(Tuple, len(j.LeftCols))
			}
			for i, c := range j.LeftCols {
				j.gkey[i] = j.lrow[c]
			}
			j.group = j.group[:0]
			for j.rok && compareAcross(j.lrow, j.LeftCols, j.rrow, j.RightCols) == 0 {
				cp := make(Tuple, len(j.rrow))
				copy(cp, j.rrow)
				j.group = append(j.group, cp)
				if err := j.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			j.gpos = 0
			j.inGroup = true
		}
	}
}

func (j *MergeJoin) emit(l, r Tuple) Tuple {
	if j.out == nil {
		j.out = make(Tuple, len(l)+len(r))
	}
	copy(j.out, l)
	copy(j.out[len(l):], r)
	return j.out
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// HashJoin equijoins by building a hash table on the right input. If the
// build side exceeds the working-memory budget it degrades to a Grace
// hash join: both inputs are hash-partitioned to temporary files and each
// partition pair is joined in memory. Output is left ++ right.
type HashJoin struct {
	Left, Right         Iterator
	LeftCols, RightCols []int
	LeftArity           int
	RightArity          int
	Ctx                 *Context

	table    map[string][]Tuple
	lrow     Tuple
	matches  []Tuple
	mpos     int
	out      Tuple
	lparts   []*rstore.HeapFile
	rparts   []*rstore.HeapFile
	curPart  int
	lcur     *rstore.Cursor
	spilling bool
}

const hashPartitions = 16

// Open builds the hash table (or partitions on overflow).
func (j *HashJoin) Open() error {
	j.table = make(map[string][]Tuple)
	j.matches = nil
	j.mpos = 0
	j.spilling = false
	j.curPart = 0
	if err := j.Right.Open(); err != nil {
		return err
	}
	budgetRows := j.Ctx.WorkMem / int64(j.RightArity)
	if budgetRows < 16 {
		budgetRows = 16
	}
	var rows int64
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		cp := make(Tuple, len(t))
		copy(cp, t)
		k := hashKey(cp, j.RightCols)
		j.table[k] = append(j.table[k], cp)
		rows++
		if rows > budgetRows {
			if err := j.spill(); err != nil {
				return err
			}
			break
		}
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	if j.spilling {
		return j.partitionLeft()
	}
	return j.Left.Open()
}

// spill switches to Grace mode: dump the in-memory table and the rest of
// the right input into hash partitions.
func (j *HashJoin) spill() error {
	j.spilling = true
	j.rparts = make([]*rstore.HeapFile, hashPartitions)
	for i := range j.rparts {
		h, err := rstore.NewHeapFile(j.Ctx.Pool, j.Ctx.TempName("hjR"), j.RightArity)
		if err != nil {
			return err
		}
		j.rparts[i] = h
	}
	for _, bucket := range j.table {
		for _, t := range bucket {
			if _, err := j.rparts[partOf(t, j.RightCols)].Append(t); err != nil {
				return err
			}
		}
	}
	j.table = nil
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if _, err := j.rparts[partOf(t, j.RightCols)].Append(t); err != nil {
			return err
		}
	}
	for _, h := range j.rparts {
		if err := h.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (j *HashJoin) partitionLeft() error {
	j.lparts = make([]*rstore.HeapFile, hashPartitions)
	for i := range j.lparts {
		h, err := rstore.NewHeapFile(j.Ctx.Pool, j.Ctx.TempName("hjL"), j.LeftArity)
		if err != nil {
			return err
		}
		j.lparts[i] = h
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	defer j.Left.Close()
	for {
		t, ok, err := j.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if _, err := j.lparts[partOf(t, j.LeftCols)].Append(t); err != nil {
			return err
		}
	}
	for _, h := range j.lparts {
		if err := h.Flush(); err != nil {
			return err
		}
	}
	j.curPart = -1
	return j.nextPartition()
}

// nextPartition loads the hash table for the next partition pair.
func (j *HashJoin) nextPartition() error {
	for {
		j.curPart++
		if j.curPart >= hashPartitions {
			j.lcur = nil
			return nil
		}
		if j.lparts[j.curPart].NumRecords() == 0 {
			continue
		}
		j.table = make(map[string][]Tuple)
		cur := j.rparts[j.curPart].NewCursor()
		for {
			t, ok, err := cur.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			cp := make(Tuple, len(t))
			copy(cp, t)
			k := hashKey(cp, j.RightCols)
			j.table[k] = append(j.table[k], cp)
		}
		j.lcur = j.lparts[j.curPart].NewCursor()
		return nil
	}
}

func partOf(t Tuple, cols []int) int {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, c := range cols {
		b := math.Float64bits(t[c])
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= 1099511628211
			b >>= 8
		}
	}
	return int(h % hashPartitions)
}

// Next returns the next joined tuple.
func (j *HashJoin) Next() (Tuple, bool, error) {
	for {
		if j.mpos < len(j.matches) {
			r := j.matches[j.mpos]
			j.mpos++
			return j.emit(j.lrow, r), true, nil
		}
		var t Tuple
		var ok bool
		var err error
		if j.spilling {
			if j.lcur == nil {
				return nil, false, nil
			}
			t, ok, err = j.lcur.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if err := j.nextPartition(); err != nil {
					return nil, false, err
				}
				if j.lcur == nil {
					return nil, false, nil
				}
				continue
			}
		} else {
			t, ok, err = j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
		}
		if j.lrow == nil {
			j.lrow = make(Tuple, len(t))
		}
		copy(j.lrow, t)
		j.matches = j.table[hashKey(t, j.LeftCols)]
		j.mpos = 0
	}
}

func (j *HashJoin) emit(l, r Tuple) Tuple {
	if j.out == nil {
		j.out = make(Tuple, len(l)+len(r))
	}
	copy(j.out, l)
	copy(j.out[len(l):], r)
	return j.out
}

// Close releases inputs and spill files.
func (j *HashJoin) Close() error {
	var first error
	if !j.spilling {
		first = j.Left.Close()
	}
	for _, h := range j.lparts {
		if h != nil {
			h.Free()
		}
	}
	for _, h := range j.rparts {
		if h != nil {
			h.Free()
		}
	}
	j.lparts, j.rparts, j.table = nil, nil, nil
	return first
}

// IndexedTable pairs a heap file with a B+tree primary index, the
// MyISAM-style "data file + index file" unit RIOT-DB tables are made of.
type IndexedTable struct {
	Heap  *rstore.HeapFile
	Index *rstore.BTree
}

// INLJoin is an index-nested-loop join: for each outer tuple it probes
// the inner table's primary index. This is the plan a "reasonable
// database query optimizer" picks for RIOT-DB's selective queries — the
// 100-element sample probing two 2^23-element vectors (§4.1).
type INLJoin struct {
	Outer     Iterator
	Inner     *IndexedTable
	OuterCols []int // outer columns forming the probe key

	key []float64
	out Tuple
}

// Open opens the outer input.
func (j *INLJoin) Open() error {
	j.key = make([]float64, len(j.OuterCols))
	return j.Outer.Open()
}

// Next probes the inner index with the next outer tuple. Outer tuples
// with no match are dropped (inner join).
func (j *INLJoin) Next() (Tuple, bool, error) {
	for {
		t, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		for i, c := range j.OuterCols {
			j.key[i] = t[c]
		}
		rid, found, err := j.Inner.Index.Probe(j.key)
		if err != nil {
			return nil, false, err
		}
		if !found {
			continue
		}
		inner, err := j.Inner.Heap.Get(rid)
		if err != nil {
			return nil, false, err
		}
		if j.out == nil {
			j.out = make(Tuple, len(t)+len(inner))
		}
		copy(j.out, t)
		copy(j.out[len(t):], inner)
		return j.out, true, nil
	}
}

// Close closes the outer input.
func (j *INLJoin) Close() error { return j.Outer.Close() }
