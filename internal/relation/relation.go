// Package relation implements the query-execution layer of RIOT-DB's
// database backend: tuples, scalar expressions, and pipelined Volcano
// iterators (scan, filter, project, joins, external sort, aggregation).
//
// The executor is deliberately shaped like the engine the paper ran on:
// hash join + external sort + group aggregation is the plan MySQL-class
// optimizers produce for RIOT-DB's matrix multiply (§4.1), merge joins
// over clustered (I, V) tables give the single-pass pipelined behaviour
// that makes RIOT-DB/MatNamed fast, and index-nested-loop joins give the
// selective-evaluation win of full RIOT-DB. Every operator draws its
// working memory from an explicit budget and spills to temporary heap
// files, so exceeding memory is visible as measured disk I/O.
package relation

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/rstore"
)

// Tuple is one row: a fixed-arity slice of float64 values. Integer data
// (array indexes) is stored in float64, exact up to 2^53 — far beyond
// any array dimension in this system.
type Tuple = []float64

// Schema names the columns of a relation.
type Schema struct {
	Cols []string
}

// NewSchema builds a schema from column names.
func NewSchema(cols ...string) Schema { return Schema{Cols: cols} }

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Cols) }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Concat returns the schema of a join result.
func (s Schema) Concat(o Schema) Schema {
	cols := make([]string, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return Schema{Cols: cols}
}

func (s Schema) String() string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out + ")"
}

// Iterator is the Volcano pull interface. Next returns the next tuple;
// the returned slice may be reused by the operator, so callers that
// retain a tuple must copy it. ok=false signals exhaustion.
type Iterator interface {
	Open() error
	Next() (t Tuple, ok bool, err error)
	Close() error
}

// Context carries execution resources: the buffer pool (and through it
// the device being charged) and the operator working-memory budget in
// scalar elements, the paper's M.
type Context struct {
	Pool    *buffer.Pool
	WorkMem int64 // elements available to sorts, hash tables, run buffers
	tempSeq int
}

// NewContext builds an execution context. workMem <= 0 defaults to the
// pool's full budget.
func NewContext(pool *buffer.Pool, workMem int64) *Context {
	if workMem <= 0 {
		workMem = pool.MemoryElems()
	}
	return &Context{Pool: pool, WorkMem: workMem}
}

// TempName returns a fresh name for a temporary disk object.
func (c *Context) TempName(prefix string) string {
	c.tempSeq++
	return fmt.Sprintf("%s#%d", prefix, c.tempSeq)
}

// SliceIter iterates over in-memory tuples; used for literal relations
// and tests.
type SliceIter struct {
	Rows []Tuple
	pos  int
}

// NewSliceIter wraps rows in an iterator.
func NewSliceIter(rows []Tuple) *SliceIter { return &SliceIter{Rows: rows} }

// Open resets the iterator.
func (s *SliceIter) Open() error { s.pos = 0; return nil }

// Next returns the next row.
func (s *SliceIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	t := s.Rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close releases nothing.
func (s *SliceIter) Close() error { return nil }

// SeqScan streams a heap file in RID order: the pipelined, mostly
// sequential access pattern the paper credits for MySQL's "bulky and
// sequential" I/O profile.
type SeqScan struct {
	File *rstore.HeapFile
	cur  *rstore.Cursor
}

// NewSeqScan creates a sequential scan of file.
func NewSeqScan(file *rstore.HeapFile) *SeqScan { return &SeqScan{File: file} }

// Open positions the scan before the first record.
func (s *SeqScan) Open() error {
	s.cur = s.File.NewCursor()
	return nil
}

// Next returns the next record.
func (s *SeqScan) Next() (Tuple, bool, error) { return s.cur.Next() }

// Close releases nothing; the cursor pins pages only inside Next.
func (s *SeqScan) Close() error { return nil }

// Filter passes through tuples for which Pred evaluates non-zero.
type Filter struct {
	Input Iterator
	Pred  Expr
}

// Open opens the input.
func (f *Filter) Open() error { return f.Input.Open() }

// Next pulls until the predicate holds.
func (f *Filter) Next() (Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Eval(t) != 0 {
			return t, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes one output column per expression.
type Project struct {
	Input Iterator
	Exprs []Expr
	out   []float64
}

// Open opens the input.
func (p *Project) Open() error {
	p.out = make([]float64, len(p.Exprs))
	return p.Input.Open()
}

// Next evaluates the projection over the next input tuple.
func (p *Project) Next() (Tuple, bool, error) {
	t, ok, err := p.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, e := range p.Exprs {
		p.out[i] = e.Eval(t)
	}
	return p.out, true, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// Limit stops after N tuples.
type Limit struct {
	Input Iterator
	N     int64
	seen  int64
}

// Open opens the input.
func (l *Limit) Open() error { l.seen = 0; return l.Input.Open() }

// Next forwards up to N tuples.
func (l *Limit) Next() (Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close closes the input.
func (l *Limit) Close() error { return l.Input.Close() }

// Materialize drains it into a fresh heap file with the given arity.
func Materialize(ctx *Context, it Iterator, arity int, name string) (*rstore.HeapFile, error) {
	h, err := rstore.NewHeapFile(ctx.Pool, name, arity)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(t) != arity {
			return nil, fmt.Errorf("relation: materialize arity %d, want %d", len(t), arity)
		}
		if _, err := h.Append(t); err != nil {
			return nil, err
		}
	}
	if err := h.Flush(); err != nil {
		return nil, err
	}
	return h, nil
}

// Drain runs it to completion, returning all tuples copied into memory.
// Intended for tests and tiny results (e.g. print of a 10-element slice).
func Drain(it Iterator) ([]Tuple, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		cp := make([]float64, len(t))
		copy(cp, t)
		out = append(out, cp)
	}
}
