package scalarop

import (
	"fmt"
	"math"
	"sort"
)

// Semi-ring algebra. A semi-ring (⊕, ⊗) generalizes the (+, ×) pair the
// kernels were written against: ⊕ is associative and commutative with
// identity Zero, ⊗ is associative with identity One, ⊗ distributes over
// ⊕, and Zero annihilates under ⊗ (Zero ⊗ x = Zero). Those are exactly
// the laws the engine's sparse machinery already leans on — an absent
// tile contributes nothing to a product because its values annihilate,
// and skipping a k-step is sound because ⊕-ing Zero changes nothing —
// so any registered ring rides the same I/O schedules the standard ring
// does. Matrix multiplication over minplus is all-pairs shortest paths;
// over boolean it is reachability.
//
// Convention for sparse storage under a non-standard ring: an absent
// (implicitly zero) element denotes the ring's Zero, not 0.0 — for
// minplus a missing edge reads as +Inf. Stored values are taken
// verbatim, so kernels must never produce a stored element equal to
// float64 0 that means anything other than the ring's Zero (the
// closure kernels keep the ⊗-identity diagonal implicit for exactly
// this reason).

// Semiring is one (⊕, ⊗) algebra: Add is ⊕ with identity Zero, Mul is
// ⊗ with identity One and annihilator Zero.
type Semiring struct {
	Name string
	Zero float64 // ⊕-identity and ⊗-annihilator
	One  float64 // ⊗-identity
	Add  BinFunc // ⊕
	Mul  BinFunc // ⊗
}

// IsStandard reports whether this is the (+, ×) ring the legacy kernels
// hard-code — the fast paths (packed microkernel, fused slice loops)
// apply only to it.
func (r *Semiring) IsStandard() bool { return r.Name == "standard" }

// ringMin and ringMax fold with the same NaN discipline as the
// MinSlice/MaxSlice kernels: a NaN never displaces the accumulator, so
// seeding with the ring identity (±Inf) behaves like the executor's
// reductions.
func ringMin(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

func ringMax(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// rings is the registry of built-in semi-rings. Registration is static:
// the set of rings is part of the engine's semantics (it appears in
// plan provenance, cache hashes, and the wire protocol), so it is not
// extensible at runtime.
var rings = map[string]*Semiring{
	"standard": {
		Name: "standard", Zero: 0, One: 1,
		Add: func(a, b float64) float64 { return a + b },
		Mul: func(a, b float64) float64 { return a * b },
	},
	"minplus": {
		Name: "minplus", Zero: math.Inf(1), One: 0,
		Add: ringMin,
		Mul: func(a, b float64) float64 { return a + b },
	},
	"maxplus": {
		Name: "maxplus", Zero: math.Inf(-1), One: 0,
		Add: ringMax,
		Mul: func(a, b float64) float64 { return a + b },
	},
	"boolean": {
		Name: "boolean", Zero: 0, One: 1,
		Add: func(a, b float64) float64 { return FromBool(a != 0 || b != 0) },
		Mul: func(a, b float64) float64 { return FromBool(a != 0 && b != 0) },
	},
}

// Standard is the (+, ×) ring every legacy code path assumes.
var Standard = rings["standard"]

// Ring resolves a semi-ring by name. The empty string is the standard
// ring, so callers can thread a zero-value ring name end to end without
// special cases.
func Ring(name string) (*Semiring, error) {
	if name == "" {
		return Standard, nil
	}
	if r, ok := rings[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("scalarop: unknown semi-ring %q (known: %v)", name, RingNames())
}

// RingNames returns the registered ring names, sorted.
func RingNames() []string {
	out := make([]string, 0, len(rings))
	for name := range rings {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddSlices is the ring's vectorized ⊕: dst[i] = a[i] ⊕ b[i]. The
// standard ring takes the fused AddSlices loop; other rings map the
// ring's Add.
func (r *Semiring) AddSlices(dst, a, b []float64) {
	if r.IsStandard() {
		AddSlices(dst, a, b)
		return
	}
	ZipSlices(dst, a, b, r.Add)
}

// AXPY is the ring's fused multiply-accumulate: y[i] = y[i] ⊕ (a ⊗
// x[i]) — for minplus, relaxation of y by the shifted x. The standard
// ring takes the fused AXPY loop.
func (r *Semiring) AXPY(y, x []float64, a float64) {
	if r.IsStandard() {
		AXPY(y, x, a)
		return
	}
	_ = x[len(y)-1]
	for i := range y {
		y[i] = r.Add(y[i], r.Mul(a, x[i]))
	}
}

// FoldAdd folds xs into acc under ⊕, left to right. Seed acc with Zero
// for a whole-slice reduction: the standard ring reduces to SumSlice,
// minplus to MinSlice seeded +Inf, maxplus to MaxSlice seeded -Inf —
// the identities the fold kernels were already written to respect.
func (r *Semiring) FoldAdd(acc float64, xs []float64) float64 {
	switch r.Name {
	case "standard":
		return SumSlice(acc, xs)
	case "minplus":
		return MinSlice(acc, xs)
	case "maxplus":
		return MaxSlice(acc, xs)
	}
	for _, v := range xs {
		acc = r.Add(acc, v)
	}
	return acc
}

// FillZero sets every element of dst to the ring's Zero — the seed a
// fresh ⊕-accumulator needs (fresh dense tiles arrive zeroed, which is
// only correct for rings whose Zero is float64 0).
func (r *Semiring) FillZero(dst []float64) {
	for i := range dst {
		dst[i] = r.Zero
	}
}
