package scalarop

import (
	"math"
	"math/rand"
	"testing"
)

// binOps is the full binary operator table Bin supports; the slice
// kernels must agree with the scalar functions on every one of them.
var binOps = []string{"+", "-", "*", "/", "^", "%%", "==", "!=", "<", "<=", ">", ">=", "&", "|"}

// unaryNames covers every unary function plus the SQL-style aliases the
// RIOT-DB translation emits.
var unaryNames = []string{
	"sqrt", "SQRT", "abs", "ABS", "exp", "EXP", "log", "LOG",
	"sin", "SIN", "cos", "COS", "floor", "FLOOR", "ceiling", "ceil", "CEIL",
}

// testVec builds a deterministic vector mixing magnitudes, signs, exact
// zeros, and the special values the kernels must pass through untouched.
func testVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		switch i % 7 {
		case 0:
			out[i] = 0
		case 1:
			out[i] = -float64(rng.Intn(100))
		case 2:
			out[i] = math.Inf(1)
		case 3:
			out[i] = math.NaN()
		default:
			out[i] = rng.NormFloat64() * 100
		}
	}
	return out
}

// eqBits compares slices bit-for-bit (NaN == NaN, -0 != +0).
func eqBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v (%#x), want %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestBinSlicesMatchScalar(t *testing.T) {
	a := testVec(257, 1) // odd length: exercises any unrolled tail
	b := testVec(257, 2)
	for _, op := range binOps {
		f, err := BinSlices(op)
		if err != nil {
			t.Fatalf("BinSlices(%q): %v", op, err)
		}
		g, err := Bin(op)
		if err != nil {
			t.Fatalf("Bin(%q): %v", op, err)
		}
		want := make([]float64, len(a))
		for i := range a {
			want[i] = g(a[i], b[i])
		}
		got := make([]float64, len(a))
		f(got, a, b)
		eqBits(t, "binary "+op, got, want)

		// In-place aliasing, the executor's actual call shape:
		// f(buf, buf, rhs).
		inPlace := append([]float64(nil), a...)
		f(inPlace, inPlace, b)
		eqBits(t, "binary-inplace "+op, inPlace, want)
	}
}

func TestBinSliceScalarMatchesScalar(t *testing.T) {
	src := testVec(193, 3)
	for _, op := range binOps {
		for _, scalarLeft := range []bool{false, true} {
			for _, s := range []float64{2.5, 0, -3, math.NaN()} {
				f, err := BinSliceScalar(op, scalarLeft)
				if err != nil {
					t.Fatalf("BinSliceScalar(%q, %v): %v", op, scalarLeft, err)
				}
				g, err := Bin(op)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]float64, len(src))
				for i, v := range src {
					if scalarLeft {
						want[i] = g(s, v)
					} else {
						want[i] = g(v, s)
					}
				}
				got := append([]float64(nil), src...)
				f(got, got, s)
				eqBits(t, "scalar "+op, got, want)
			}
		}
	}
}

func TestUnarySliceMatchesScalar(t *testing.T) {
	src := testVec(171, 4)
	for _, name := range unaryNames {
		f, err := UnarySlice(name)
		if err != nil {
			t.Fatalf("UnarySlice(%q): %v", name, err)
		}
		g, err := Unary(name)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(src))
		for i, v := range src {
			want[i] = g(v)
		}
		got := append([]float64(nil), src...)
		f(got, got)
		eqBits(t, "unary "+name, got, want)
	}
}

// TestReductionSlicesMatchScalarOrder pins the reduction kernels to the
// executor's original element-order folds: same bits for sum, and the
// same NaN and seeding behavior for min/max (a NaN input never displaces
// the accumulator; the identity seeds pass through untouched).
func TestReductionSlicesMatchScalarOrder(t *testing.T) {
	for seed := int64(5); seed < 9; seed++ {
		xs := testVec(211, seed)

		var sum float64
		for _, v := range xs {
			sum += v
		}
		if got := SumSlice(0, xs); math.Float64bits(got) != math.Float64bits(sum) {
			t.Fatalf("SumSlice: %v != %v", got, sum)
		}
		// Split folds must chain exactly like one fold.
		half := SumSlice(SumSlice(0, xs[:100]), xs[100:])
		if math.Float64bits(half) != math.Float64bits(sum) {
			t.Fatalf("SumSlice split: %v != %v", half, sum)
		}

		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range xs {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if got := MinSlice(math.Inf(1), xs); math.Float64bits(got) != math.Float64bits(mn) {
			t.Fatalf("MinSlice: %v != %v", got, mn)
		}
		if got := MaxSlice(math.Inf(-1), xs); math.Float64bits(got) != math.Float64bits(mx) {
			t.Fatalf("MaxSlice: %v != %v", got, mx)
		}
	}
	// All-NaN input: the identity seeds survive, as in the scalar loops.
	nans := []float64{math.NaN(), math.NaN()}
	if got := MinSlice(math.Inf(1), nans); !math.IsInf(got, 1) {
		t.Fatalf("MinSlice over NaNs: %v, want +Inf", got)
	}
	if got := MaxSlice(math.Inf(-1), nans); !math.IsInf(got, -1) {
		t.Fatalf("MaxSlice over NaNs: %v, want -Inf", got)
	}
}

func TestAXPY(t *testing.T) {
	x := testVec(129, 6)
	y0 := testVec(129, 7)
	for _, a := range []float64{0, 1, -2.5} {
		want := append([]float64(nil), y0...)
		for i := range want {
			want[i] += a * x[i]
		}
		got := append([]float64(nil), y0...)
		AXPY(got, x, a)
		eqBits(t, "axpy", got, want)
	}
}

// benchSlice reports elementwise throughput in GFLOP/s (one flop per
// element) for a kernel against the buffer-pool chunk size.
func benchSlice(b *testing.B, f func(dst, a, bb []float64)) {
	const n = 4096
	x := testVec(n, 8)
	y := testVec(n, 9)
	dst := make([]float64, n)
	b.SetBytes(3 * 8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, x, y)
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkAddSlices(b *testing.B) { benchSlice(b, AddSlices) }

func BenchmarkMulSlices(b *testing.B) {
	f, err := BinSlices("*")
	if err != nil {
		b.Fatal(err)
	}
	benchSlice(b, f)
}

func BenchmarkZipFallback(b *testing.B) {
	g, err := Bin("*")
	if err != nil {
		b.Fatal(err)
	}
	benchSlice(b, func(dst, x, y []float64) { ZipSlices(dst, x, y, g) })
}

func BenchmarkSumSlice(b *testing.B) {
	const n = 4096
	x := testVec(n, 10)
	// NaNs poison a sum benchmark's usefulness but not its timing;
	// replace them so the metric reflects the arithmetic.
	for i := range x {
		if math.IsNaN(x[i]) {
			x[i] = 1
		}
	}
	b.SetBytes(8 * n)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = SumSlice(acc, x)
	}
	_ = acc
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
