package scalarop

import (
	"math"
	"testing"
)

func TestBinOperators(t *testing.T) {
	cases := []struct {
		op   string
		a, b float64
		want float64
	}{
		{"+", 2, 3, 5},
		{"-", 2, 3, -1},
		{"*", 2, 3, 6},
		{"/", 6, 3, 2},
		{"^", 2, 10, 1024},
		{"%%", 7, 3, 1},
		{"==", 3, 3, 1},
		{"!=", 3, 3, 0},
		{"<", 2, 3, 1},
		{"<=", 3, 3, 1},
		{">", 2, 3, 0},
		{">=", 3, 3, 1},
		{"&", 1, 0, 0},
		{"|", 1, 0, 1},
	}
	for _, c := range cases {
		f, err := Bin(c.op)
		if err != nil {
			t.Fatalf("Bin(%q): %v", c.op, err)
		}
		if got := f(c.a, c.b); got != c.want {
			t.Errorf("%g %s %g = %g, want %g", c.a, c.op, c.b, got, c.want)
		}
	}
	if _, err := Bin("@"); err == nil {
		t.Error("Bin(@) should fail")
	}
}

func TestUnaryAliases(t *testing.T) {
	for _, name := range []string{"sqrt", "SQRT"} {
		f, err := Unary(name)
		if err != nil {
			t.Fatalf("Unary(%q): %v", name, err)
		}
		if got := f(9); got != 3 {
			t.Errorf("%s(9) = %g, want 3", name, got)
		}
	}
	for _, name := range []string{"ceiling", "ceil", "CEIL"} {
		f, err := Unary(name)
		if err != nil {
			t.Fatalf("Unary(%q): %v", name, err)
		}
		if got := f(1.2); got != 2 {
			t.Errorf("%s(1.2) = %g, want 2", name, got)
		}
	}
	if _, err := Unary("tanhh"); err == nil {
		t.Error("Unary(tanhh) should fail")
	}
	f, _ := Unary("log")
	if got := f(math.E); math.Abs(got-1) > 1e-12 {
		t.Errorf("log(e) = %g, want 1", got)
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != 1 || FromBool(false) != 0 {
		t.Error("FromBool must map true→1, false→0")
	}
}
