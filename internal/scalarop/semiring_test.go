package scalarop

import (
	"math"
	"testing"
)

// ringSamples are the float64s the law tests quantify over. They avoid
// NaN (no ring law survives NaN) and mix signs, magnitudes, and the
// infinities the tropical rings use as their Zero.
func ringSamples(r *Semiring) []float64 {
	xs := []float64{0, 1, -1, 0.5, 2, 3.25, -7, 100, 1e6, r.Zero, r.One}
	// A deterministic pseudo-random tail widens coverage without
	// test-order flakiness.
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 24; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v := float64(int64(state%2001)-1000) / 8
		xs = append(xs, v)
	}
	return xs
}

// eq compares ring elements: exact, except both-NaN never occurs by
// construction and -0 equals 0 under ==, which is what the kernels use.
func eq(a, b float64) bool { return a == b }

// TestSemiringLaws holds every registered ring to the semi-ring axioms
// on sampled floats: ⊕ associativity and commutativity with identity
// Zero, ⊗ associativity with identity One, Zero annihilation under ⊗,
// and distributivity of ⊗ over ⊕.
func TestSemiringLaws(t *testing.T) {
	for _, name := range RingNames() {
		r, err := Ring(name)
		if err != nil {
			t.Fatalf("Ring(%q): %v", name, err)
		}
		xs := ringSamples(r)
		// The standard ring satisfies distributivity and associativity
		// only up to floating-point rounding; restrict its samples to
		// modest integers where + and × are exact. The tropical rings'
		// min/max and + are exact on every sample.
		if r.IsStandard() {
			xs = []float64{0, 1, -1, 2, -3, 5, 8, -13, 21, 64}
		}
		// The boolean ring's carrier is {0, 1}: its operators collapse
		// every nonzero input to 1, so the laws are stated there.
		if r.Name == "boolean" {
			xs = []float64{0, 1}
		}
		for _, a := range xs {
			if !eq(r.Add(r.Zero, a), a) || !eq(r.Add(a, r.Zero), a) {
				t.Errorf("%s: Zero is not the ⊕ identity at %g", name, a)
			}
			one := r.Mul(r.One, a)
			if r.Name == "boolean" {
				// Boolean collapses every nonzero to 1; identity holds in
				// the ring's value domain {0, 1}.
				if !eq(one, FromBool(a != 0)) {
					t.Errorf("boolean: One ⊗ %g = %g", a, one)
				}
			} else if !eq(one, a) || !eq(r.Mul(a, r.One), a) {
				t.Errorf("%s: One is not the ⊗ identity at %g", name, a)
			}
			if !eq(r.Mul(r.Zero, a), r.Zero) || !eq(r.Mul(a, r.Zero), r.Zero) {
				t.Errorf("%s: Zero does not annihilate at %g", name, a)
			}
			for _, b := range xs {
				if !eq(r.Add(a, b), r.Add(b, a)) {
					t.Errorf("%s: ⊕ not commutative at (%g, %g)", name, a, b)
				}
				for _, c := range xs {
					if !eq(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
						t.Errorf("%s: ⊕ not associative at (%g, %g, %g)", name, a, b, c)
					}
					if !eq(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
						t.Errorf("%s: ⊗ not associative at (%g, %g, %g)", name, a, b, c)
					}
					if !eq(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c))) {
						t.Errorf("%s: ⊗ does not distribute over ⊕ at (%g, %g, %g)", name, a, b, c)
					}
				}
			}
		}
	}
}

func TestRingLookup(t *testing.T) {
	if r, err := Ring(""); err != nil || !r.IsStandard() {
		t.Fatalf("Ring(\"\") = %v, %v; want the standard ring", r, err)
	}
	if _, err := Ring("tropical-deluxe"); err == nil {
		t.Fatal("Ring of an unknown name should fail")
	}
	want := []string{"boolean", "maxplus", "minplus", "standard"}
	got := RingNames()
	if len(got) != len(want) {
		t.Fatalf("RingNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RingNames() = %v, want %v", got, want)
		}
	}
}

// TestRingKernels checks the ring slice kernels against elementwise
// application of the ring's scalar operators, and that the standard
// ring's fused fast paths stay bit-identical to the generic loops.
func TestRingKernels(t *testing.T) {
	xs := []float64{3, 0, -2, 7.5, math.Inf(1), 1, -0.25, 4}
	ys := []float64{1, 5, -1, 0, 2, math.Inf(1), 8, -3}
	for _, name := range RingNames() {
		r, _ := Ring(name)
		dst := make([]float64, len(xs))
		r.AddSlices(dst, xs, ys)
		for i := range dst {
			if want := r.Add(xs[i], ys[i]); dst[i] != want && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Errorf("%s AddSlices[%d] = %g, want %g", name, i, dst[i], want)
			}
		}
		y := append([]float64(nil), ys...)
		r.AXPY(y, xs, 2)
		for i := range y {
			if want := r.Add(ys[i], r.Mul(2, xs[i])); y[i] != want && !(math.IsNaN(y[i]) && math.IsNaN(want)) {
				t.Errorf("%s AXPY[%d] = %g, want %g", name, i, y[i], want)
			}
		}
		acc := r.FoldAdd(r.Zero, xs)
		want := r.Zero
		for _, v := range xs {
			want = r.Add(want, v)
		}
		if acc != want {
			t.Errorf("%s FoldAdd = %g, want %g", name, acc, want)
		}
	}
}

// TestFoldIdentitySeeds pins the fold kernels' behavior against the
// tropical identities: folding from ±Inf must behave as folding from
// the ring's ⊕-identity, with values of the same infinity never
// displacing it incorrectly, and NaN never displacing the accumulator.
func TestFoldIdentitySeeds(t *testing.T) {
	if got := MinSlice(math.Inf(1), []float64{math.Inf(1), 5, math.Inf(1)}); got != 5 {
		t.Errorf("MinSlice seeded +Inf over {+Inf, 5, +Inf} = %g, want 5", got)
	}
	if got := MinSlice(math.Inf(1), []float64{math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("MinSlice seeded +Inf over {+Inf} = %g, want +Inf", got)
	}
	if got := MaxSlice(math.Inf(-1), []float64{math.Inf(-1), -5}); got != -5 {
		t.Errorf("MaxSlice seeded -Inf over {-Inf, -5} = %g, want -5", got)
	}
	if got := MinSlice(math.Inf(1), []float64{math.NaN(), 3}); got != 3 {
		t.Errorf("MinSlice with a NaN = %g, want 3 (NaN never displaces)", got)
	}
	if got := MaxSlice(math.Inf(-1), []float64{math.NaN()}); !math.IsInf(got, -1) {
		t.Errorf("MaxSlice over {NaN} = %g, want the -Inf seed", got)
	}
	// The ring folds inherit those semantics through FoldAdd.
	mp, _ := Ring("minplus")
	if got := mp.FoldAdd(mp.Zero, []float64{math.Inf(1), 2}); got != 2 {
		t.Errorf("minplus FoldAdd over {+Inf, 2} = %g, want 2", got)
	}
}

// TestZeroPredicateEdges pins the zero-classification predicates on the
// NaN/Inf scalar edges that become load-bearing once identities come
// from a ring: a NaN or Inf scalar must never let a zero-range proof
// through an operator that would produce NaN there.
func TestZeroPredicateEdges(t *testing.T) {
	cases := []struct {
		op         string
		s          float64
		scalarLeft bool
		want       bool
	}{
		{"*", 3, false, true},
		{"*", math.NaN(), false, false},  // 0 · NaN = NaN
		{"*", math.Inf(1), false, false}, // 0 · Inf = NaN
		{"*", math.Inf(-1), true, false},
		{"+", 0, false, true},
		{"+", math.NaN(), false, false},
		{"-", 0, true, true}, // 0 - x at x = 0
		{"/", math.Inf(1), false, true},  // 0 / Inf = 0
		{"/", 0, false, false},           // 0 / 0 = NaN
		{"/", math.NaN(), false, false},
		{"&", math.NaN(), true, true}, // NaN & 0: != 0 short-circuits to 0
		{"^", math.NaN(), true, false},
	}
	for _, c := range cases {
		if got := BinZeroWithScalar(c.op, c.s, c.scalarLeft); got != c.want {
			t.Errorf("BinZeroWithScalar(%q, %g, left=%v) = %v, want %v", c.op, c.s, c.scalarLeft, got, c.want)
		}
	}
}

// TestBinZeroEitherDerived checks the probe-derived annihilator
// classification: multiplication and logical-and have intersection
// semantics, and nothing else in the operator table does.
func TestBinZeroEitherDerived(t *testing.T) {
	want := map[string]bool{
		"*": true, "&": true,
		"+": false, "-": false, "/": false, "^": false, "%%": false,
		"==": false, "!=": false, "<": false, "<=": false, ">": false, ">=": false,
		"|": false,
	}
	for op, w := range want {
		if got := BinZeroEither(op); got != w {
			t.Errorf("BinZeroEither(%q) = %v, want %v", op, got, w)
		}
	}
	if BinZeroEither("no-such-op") {
		t.Error("BinZeroEither of an unknown op must be false")
	}
}
