// Package scalarop is the single home of the scalar arithmetic kernels
// every evaluator shares: the vectorized binary operators (arithmetic,
// comparisons, logic), the unary math functions, and the R convention
// that booleans are the floats 0 and 1. The fused DAG executor
// (internal/exec), the eager plain-R evaluator (internal/rvec, reached
// through the engine's vmem-backed backend), and the riotscript
// interpreter's scalar folding (internal/rlang) all resolve operators
// here, so the operator set cannot drift between backends.
package scalarop

import (
	"fmt"
	"math"
)

// BinFunc is a vectorizable binary operator over float64.
type BinFunc func(a, b float64) float64

// UnaryFunc is a vectorizable unary function over float64.
type UnaryFunc func(x float64) float64

// FromBool converts a comparison result to R's numeric truth values.
func FromBool(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Bin resolves a binary operator by its R spelling. Comparisons and
// logical operators return 0/1 per FromBool.
func Bin(op string) (BinFunc, error) {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }, nil
	case "-":
		return func(a, b float64) float64 { return a - b }, nil
	case "*":
		return func(a, b float64) float64 { return a * b }, nil
	case "/":
		return func(a, b float64) float64 { return a / b }, nil
	case "^":
		return math.Pow, nil
	case "%%":
		return math.Mod, nil
	case "==":
		return func(a, b float64) float64 { return FromBool(a == b) }, nil
	case "!=":
		return func(a, b float64) float64 { return FromBool(a != b) }, nil
	case "<":
		return func(a, b float64) float64 { return FromBool(a < b) }, nil
	case "<=":
		return func(a, b float64) float64 { return FromBool(a <= b) }, nil
	case ">":
		return func(a, b float64) float64 { return FromBool(a > b) }, nil
	case ">=":
		return func(a, b float64) float64 { return FromBool(a >= b) }, nil
	case "&":
		return func(a, b float64) float64 { return FromBool(a != 0 && b != 0) }, nil
	case "|":
		return func(a, b float64) float64 { return FromBool(a != 0 || b != 0) }, nil
	}
	return nil, fmt.Errorf("scalarop: unknown operator %q", op)
}

// Unary resolves a unary math function. Both the R spellings and the
// SQL-style uppercase aliases the RIOT-DB translation emits are
// accepted.
func Unary(name string) (UnaryFunc, error) {
	switch name {
	case "sqrt", "SQRT":
		return math.Sqrt, nil
	case "abs", "ABS":
		return math.Abs, nil
	case "exp", "EXP":
		return math.Exp, nil
	case "log", "LOG":
		return math.Log, nil
	case "sin", "SIN":
		return math.Sin, nil
	case "cos", "COS":
		return math.Cos, nil
	case "floor", "FLOOR":
		return math.Floor, nil
	case "ceiling", "ceil", "CEIL":
		return math.Ceil, nil
	}
	return nil, fmt.Errorf("scalarop: unknown function %q", name)
}
