package scalarop

import "math"

// This file holds the slice kernels: whole-chunk loops over raw
// []float64 that the hot paths (exec's fused evaluator, linalg's
// factorizations) call once per chunk instead of making one indirect
// BinFunc/UnaryFunc call per element. Every kernel is observationally
// identical to mapping its scalar counterpart — the property tests in
// slices_test.go hold each one to that across the full op table — and
// rare ops fall back to exactly that mapping, so adding an operator to
// Bin/Unary never leaves the slice path behind.

// BinSliceFunc applies a binary operator elementwise over equal-length
// slices: dst[i] = op(a[i], b[i]). dst may alias a or b.
type BinSliceFunc func(dst, a, b []float64)

// BinSliceScalarFunc applies a binary operator between a slice and a
// broadcast scalar: dst[i] = op(src[i], s) (or op(s, src[i]) for the
// scalar-left variant). dst may alias src.
type BinSliceScalarFunc func(dst, src []float64, s float64)

// UnarySliceFunc applies a unary function elementwise: dst[i] =
// f(src[i]). dst may alias src.
type UnarySliceFunc func(dst, src []float64)

// AddSlices is the vectorized "+": dst[i] = a[i] + b[i].
func AddSlices(dst, a, b []float64) {
	_ = b[len(dst)-1]
	for i, av := range a {
		dst[i] = av + b[i]
	}
}

// ScaleSlice is the vectorized scalar "*": dst[i] = src[i] * s.
func ScaleSlice(dst, src []float64, s float64) {
	for i, v := range src {
		dst[i] = v * s
	}
}

// AXPY accumulates y[i] += a * x[i] — the building block the LU update
// loops share with any future semi-ring kernels.
func AXPY(y, x []float64, a float64) {
	_ = x[len(y)-1]
	for i := range y {
		y[i] += a * x[i]
	}
}

// MapSlice is the generic unary fallback: dst[i] = f(src[i]).
func MapSlice(dst, src []float64, f UnaryFunc) {
	for i, v := range src {
		dst[i] = f(v)
	}
}

// ZipSlices is the generic binary fallback: dst[i] = f(a[i], b[i]).
func ZipSlices(dst, a, b []float64, f BinFunc) {
	_ = b[len(dst)-1]
	for i, av := range a {
		dst[i] = f(av, b[i])
	}
}

// BinSlices resolves the slice kernel for a binary operator. The
// common arithmetic, comparison, and logical operators get direct
// loops the compiler can keep branch-free; rare ops (^, %%) fall back
// to a ZipSlices over the scalar function, so the kernel table can
// never disagree with Bin.
func BinSlices(op string) (BinSliceFunc, error) {
	switch op {
	case "+":
		return AddSlices, nil
	case "-":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = av - b[i]
			}
		}, nil
	case "*":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = av * b[i]
			}
		}, nil
	case "/":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = av / b[i]
			}
		}, nil
	case "==":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av == b[i])
			}
		}, nil
	case "!=":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av != b[i])
			}
		}, nil
	case "<":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av < b[i])
			}
		}, nil
	case "<=":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av <= b[i])
			}
		}, nil
	case ">":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av > b[i])
			}
		}, nil
	case ">=":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av >= b[i])
			}
		}, nil
	case "&":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av != 0 && b[i] != 0)
			}
		}, nil
	case "|":
		return func(dst, a, b []float64) {
			_ = b[len(dst)-1]
			for i, av := range a {
				dst[i] = FromBool(av != 0 || b[i] != 0)
			}
		}, nil
	}
	f, err := Bin(op)
	if err != nil {
		return nil, err
	}
	return func(dst, a, b []float64) { ZipSlices(dst, a, b, f) }, nil
}

// BinSliceScalar resolves the slice kernel for a binary operator with
// one broadcast scalar operand. scalarLeft selects op(s, src[i]) over
// op(src[i], s) — the distinction matters for every non-commutative
// operator. Rare ops fall back to the scalar function.
func BinSliceScalar(op string, scalarLeft bool) (BinSliceScalarFunc, error) {
	if !scalarLeft {
		switch op {
		case "+":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = v + s
				}
			}, nil
		case "-":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = v - s
				}
			}, nil
		case "*":
			return ScaleSlice, nil
		case "/":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = v / s
				}
			}, nil
		}
	} else {
		switch op {
		case "+":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = s + v
				}
			}, nil
		case "-":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = s - v
				}
			}, nil
		case "*":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = s * v
				}
			}, nil
		case "/":
			return func(dst, src []float64, s float64) {
				for i, v := range src {
					dst[i] = s / v
				}
			}, nil
		}
	}
	f, err := Bin(op)
	if err != nil {
		return nil, err
	}
	if scalarLeft {
		return func(dst, src []float64, s float64) {
			for i, v := range src {
				dst[i] = f(s, v)
			}
		}, nil
	}
	return func(dst, src []float64, s float64) {
		for i, v := range src {
			dst[i] = f(v, s)
		}
	}, nil
}

// UnarySlice resolves the slice kernel for a unary function. sqrt and
// abs get direct loops (both lower to single instructions); the rest
// fall back to MapSlice over the scalar function — their per-element
// cost is dominated by the math call itself.
func UnarySlice(name string) (UnarySliceFunc, error) {
	switch name {
	case "sqrt", "SQRT":
		return SqrtSlice, nil
	case "abs", "ABS":
		return AbsSlice, nil
	}
	f, err := Unary(name)
	if err != nil {
		return nil, err
	}
	return func(dst, src []float64) { MapSlice(dst, src, f) }, nil
}

// SumSlice folds xs into acc left to right — the same accumulation
// order as the scalar reduction loop it replaces, so chunked reductions
// stay bit-identical to the sequential sweep.
func SumSlice(acc float64, xs []float64) float64 {
	for _, v := range xs {
		acc += v
	}
	return acc
}

// MinSlice folds xs into acc under strict < — seeding with +Inf gives
// the executor's min semantics, including its NaN handling (NaN never
// displaces the accumulator).
func MinSlice(acc float64, xs []float64) float64 {
	for _, v := range xs {
		if v < acc {
			acc = v
		}
	}
	return acc
}

// MaxSlice folds xs into acc under strict >; see MinSlice.
func MaxSlice(acc float64, xs []float64) float64 {
	for _, v := range xs {
		if v > acc {
			acc = v
		}
	}
	return acc
}

// SqrtSlice is the vectorized sqrt: dst[i] = math.Sqrt(src[i]).
func SqrtSlice(dst, src []float64) {
	for i, v := range src {
		dst[i] = math.Sqrt(v)
	}
}

// AbsSlice is the vectorized abs: dst[i] = math.Abs(src[i]).
func AbsSlice(dst, src []float64) {
	for i, v := range src {
		dst[i] = math.Abs(v)
	}
}
