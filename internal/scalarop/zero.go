package scalarop

// Zero-preservation classification.
//
// The sparse executor (internal/exec over internal/sparse sources) skips
// whole output ranges when it can prove they are zero without reading
// anything. The proofs bottom out in the three predicates below, which
// classify each operator by what it does to zero operands:
//
//   - union semantics (+, -, and any op with f(0,0) == 0): a range is
//     zero only when BOTH operands are zero there;
//   - intersection semantics (*): a range is zero when EITHER operand is
//     zero there;
//   - unary/scalar ops preserve zero iff f(0) == 0 (sqrt, abs, sin, ...)
//     respectively f(0, s) == 0 for the bound scalar s.
//
// The predicates evaluate the operator itself at zero rather than
// keeping a parallel table, so a new operator can never silently
// misclassify. Like the dense kernels' `if v == 0 { continue }` hot-path
// skips, the classification treats 0·x as 0: an Inf or NaN hiding in a
// sparse array's implicit zeros region is outside the contract.

// UnaryZero reports whether the unary function maps 0 to 0, i.e. whether
// an all-zero input range yields an all-zero output range.
func UnaryZero(name string) bool {
	f, err := Unary(name)
	if err != nil {
		return false
	}
	return f(0) == 0
}

// BinZeroBoth reports whether op maps (0, 0) to 0 — union semantics: the
// output range is zero wherever both operands are zero.
func BinZeroBoth(op string) bool {
	f, err := Bin(op)
	if err != nil {
		return false
	}
	return f(0, 0) == 0
}

// annihilatorProbes are the sample operands BinZeroEither evaluates an
// operator against: zero itself (an op that maps (0,0) away from 0,
// like ==, can never have intersection semantics), both signs, a
// fraction, and large magnitudes. Inf and NaN are deliberately absent —
// like the dense kernels' `if v == 0 { continue }` skips, the
// classification treats 0·x as 0, and 0·Inf = NaN is outside the
// contract (see the package comment above).
var annihilatorProbes = [...]float64{0, 1, -1, 0.5, 2, 1e300, -1e300}

// BinZeroEither reports whether zero annihilates under op — op maps
// (0, y) and (x, 0) to 0 for every finite x and y — i.e. intersection
// semantics: the output range is zero wherever either operand is. The
// answer is derived by evaluating the operator against the probe set
// rather than from a hard-coded list, the same way a semi-ring's Zero
// is defined by annihilating under its ⊗: multiplication qualifies, and
// so does "&" (0 & x is 0 whatever x is), while 0/y, 0^y, and 0%%y all
// depend on the other operand's value.
func BinZeroEither(op string) bool {
	f, err := Bin(op)
	if err != nil {
		return false
	}
	for _, p := range annihilatorProbes {
		if f(0, p) != 0 || f(p, 0) != 0 {
			return false
		}
	}
	return true
}

// BinZeroWithScalar reports whether op with the bound scalar s (on the
// side given by scalarLeft) maps a zero vector element to 0. The answer
// is exact for the actual s — x*0 preserves zero, x+0 does too, x+1 does
// not — because it evaluates the operator.
func BinZeroWithScalar(op string, s float64, scalarLeft bool) bool {
	f, err := Bin(op)
	if err != nil {
		return false
	}
	if scalarLeft {
		return f(s, 0) == 0
	}
	return f(0, s) == 0
}
