package array

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/disk"
)

// Vector is a dense one-dimensional array stored as consecutive blocks of
// B elements, in index order. Vectors are always linearized sequentially:
// the paper's vector workloads (Example 1) are streaming scans, for which
// index-order storage is optimal.
type Vector struct {
	pool *buffer.Pool
	name string
	n    int64
	base disk.BlockID
}

// NewVector allocates an n-element vector owned by name.
func NewVector(pool *buffer.Pool, name string, n int64) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("array: negative vector length %d", n)
	}
	b := int64(pool.Device().BlockElems())
	nb := int((n + b - 1) / b)
	if nb == 0 {
		nb = 1
	}
	return &Vector{
		pool: pool,
		name: name,
		n:    n,
		base: pool.Device().Alloc(name, nb),
	}, nil
}

// Len returns the number of elements.
func (v *Vector) Len() int64 { return v.n }

// Name returns the owner name used for disk accounting.
func (v *Vector) Name() string { return v.name }

// Pool returns the vector's buffer pool.
func (v *Vector) Pool() *buffer.Pool { return v.pool }

// BaseBlock returns the first block of the vector's extent; the vector
// occupies Blocks() contiguous blocks from it, in index order. The
// catalog serializes and clones vectors at this level.
func (v *Vector) BaseBlock() disk.BlockID { return v.base }

// Blocks returns the number of blocks the vector occupies.
func (v *Vector) Blocks() int {
	b := int64(v.pool.Device().BlockElems())
	nb := int((v.n + b - 1) / b)
	if nb == 0 {
		nb = 1
	}
	return nb
}

// Chunk is a pinned run of vector elements.
type Chunk struct {
	frame *buffer.Frame
	v     *Vector
	// Lo and Hi delimit the global element range [Lo, Hi) in the chunk.
	Lo, Hi int64
}

// PinChunk pins the k-th block of the vector.
func (v *Vector) PinChunk(k int) (*Chunk, error) {
	return v.pinChunk(k, false)
}

// PinChunkNew pins the k-th block without read I/O (it will be fully
// overwritten).
func (v *Vector) PinChunkNew(k int) (*Chunk, error) {
	return v.pinChunk(k, true)
}

func (v *Vector) pinChunk(k int, fresh bool) (*Chunk, error) {
	if k < 0 || k >= v.Blocks() {
		return nil, fmt.Errorf("array: chunk %d outside vector %q (%d blocks)", k, v.name, v.Blocks())
	}
	var f *buffer.Frame
	var err error
	if fresh {
		f, err = v.pool.PinNew(v.base + disk.BlockID(k))
	} else {
		f, err = v.pool.Pin(v.base + disk.BlockID(k))
	}
	if err != nil {
		return nil, err
	}
	b := int64(v.pool.Device().BlockElems())
	c := &Chunk{frame: f, v: v, Lo: int64(k) * b}
	c.Hi = min(c.Lo+b, v.n)
	return c, nil
}

// Release unpins the chunk.
func (c *Chunk) Release() { c.v.pool.Unpin(c.frame) }

// MarkDirty flags the chunk for write-back.
func (c *Chunk) MarkDirty() { c.frame.MarkDirty() }

// Data returns the chunk's elements for global indices [Lo, Hi).
func (c *Chunk) Data() []float64 { return c.frame.Data[:c.Hi-c.Lo] }

// At reads element i, which must lie in [Lo, Hi).
func (c *Chunk) At(i int64) float64 { return c.frame.Data[i-c.Lo] }

// Set writes element i and marks the chunk dirty.
func (c *Chunk) Set(i int64, x float64) {
	c.frame.Data[i-c.Lo] = x
	c.frame.MarkDirty()
}

// At reads one element through the buffer pool.
func (v *Vector) At(i int64) (float64, error) {
	if i < 0 || i >= v.n {
		return 0, fmt.Errorf("array: index %d outside vector %q of length %d", i, v.name, v.n)
	}
	b := int64(v.pool.Device().BlockElems())
	c, err := v.PinChunk(int(i / b))
	if err != nil {
		return 0, err
	}
	x := c.At(i)
	c.Release()
	return x, nil
}

// Set writes one element through the buffer pool.
func (v *Vector) Set(i int64, x float64) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("array: index %d outside vector %q of length %d", i, v.name, v.n)
	}
	b := int64(v.pool.Device().BlockElems())
	c, err := v.PinChunk(int(i / b))
	if err != nil {
		return err
	}
	c.Set(i, x)
	c.Release()
	return nil
}

// Fill streams f(i) into the vector, writing each block exactly once.
func (v *Vector) Fill(f func(i int64) float64) error {
	for k := 0; k < v.Blocks(); k++ {
		c, err := v.PinChunkNew(k)
		if err != nil {
			return err
		}
		for i := c.Lo; i < c.Hi; i++ {
			c.Set(i, f(i))
		}
		c.Release()
	}
	return v.pool.FlushAll()
}

// PrefetchRange hints to the pool's I/O scheduler that elements
// [lo, hi) will be read soon: the blocks holding them are loaded
// asynchronously, as vectored sequential reads. A no-op when the
// scheduler is disabled; the range is clipped to the vector.
func (v *Vector) PrefetchRange(lo, hi int64) {
	if !v.pool.ReadaheadEnabled() {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo >= hi {
		return
	}
	b := int64(v.pool.Device().BlockElems())
	k0, k1 := lo/b, (hi-1)/b
	ids := make([]disk.BlockID, 0, k1-k0+1)
	for k := k0; k <= k1; k++ {
		ids = append(ids, v.base+disk.BlockID(k))
	}
	v.pool.Prefetch(ids)
}

// Scan streams the vector in index order, calling f once per chunk.
// It is the I/O pattern of every fused elementwise pipeline.
func (v *Vector) Scan(f func(lo int64, data []float64) error) error {
	for k := 0; k < v.Blocks(); k++ {
		c, err := v.PinChunk(k)
		if err != nil {
			return err
		}
		err = f(c.Lo, c.Data())
		c.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// Free drops resident chunks and releases the vector's disk extent.
func (v *Vector) Free() {
	for k := 0; k < v.Blocks(); k++ {
		v.pool.Invalidate(v.base + disk.BlockID(k))
	}
	v.pool.Device().Free(v.name)
}
