// Space-filling curves used to linearize tiles on disk.
//
// The paper (§5): "RIOT also provides advanced linearization options for
// controlling the order in which tiles are stored on disk. ... RIOT plans
// to support linearizations based on space-filling curves, for arrays
// whose access patterns are not known in advance."

package array

// mortonEncode interleaves the bits of x and y (x in the even positions),
// producing the Z-order index of cell (x, y). Inputs must fit in 31 bits.
func mortonEncode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// mortonDecode is the inverse of mortonEncode.
func mortonDecode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit above every bit of v.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact drops every other bit of v, inverting spread.
func compact(v uint64) uint32 {
	x := v & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// hilbertEncode returns the distance along a Hilbert curve of order k
// (a 2^k × 2^k grid) at cell (x, y).
func hilbertEncode(k uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (k - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// hilbertDecode is the inverse of hilbertEncode.
func hilbertDecode(k uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<k; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry uint32) (nx, ny uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// log2ceil returns the smallest k with 2^k >= n.
func log2ceil(n uint32) uint {
	var k uint
	for (uint32(1) << k) < n {
		k++
	}
	return k
}
