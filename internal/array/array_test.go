package array

import (
	"testing"
	"testing/quick"

	"riot/internal/buffer"
	"riot/internal/disk"
)

func pool16(frames int) *buffer.Pool {
	dev := disk.NewDevice(16) // tiny blocks: 16 elems, square tile 4×4
	return buffer.New(dev, frames)
}

func TestMatrixFillAndReadBack(t *testing.T) {
	for _, shape := range []TileShape{RowTiles, ColTiles, SquareTiles} {
		for _, lin := range []Linearization{RowOrder, ColOrder, ZOrder, HilbertOrder} {
			p := pool16(4)
			m, err := NewMatrix(p, "m", 10, 7, Options{Shape: shape, Lin: lin})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Fill(func(i, j int64) float64 { return float64(i*100 + j) }); err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 10; i++ {
				for j := int64(0); j < 7; j++ {
					got, err := m.At(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if got != float64(i*100+j) {
						t.Fatalf("%v/%v: m[%d,%d]=%v, want %v", shape, lin, i, j, got, i*100+j)
					}
				}
			}
		}
	}
}

func TestOrderIsPermutation(t *testing.T) {
	for _, lin := range []Linearization{RowOrder, ColOrder, ZOrder, HilbertOrder} {
		for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {7, 2}, {16, 9}} {
			order := buildOrder(dims[0], dims[1], lin)
			seen := make([]bool, len(order))
			for _, o := range order {
				if o < 0 || int(o) >= len(order) {
					t.Fatalf("%v %v: offset %d out of range", lin, dims, o)
				}
				if seen[o] {
					t.Fatalf("%v %v: offset %d duplicated", lin, dims, o)
				}
				seen[o] = true
			}
		}
	}
}

func TestOrderPermutationProperty(t *testing.T) {
	f := func(gr, gc uint8, which uint8) bool {
		r := int(gr%12) + 1
		c := int(gc%12) + 1
		lin := Linearization(which % 4)
		order := buildOrder(r, c, lin)
		seen := make(map[int32]bool, len(order))
		for _, o := range order {
			if o < 0 || int(o) >= len(order) || seen[o] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquareTileGeometry(t *testing.T) {
	p := pool16(4)
	m, err := NewMatrix(p, "m", 9, 9, Options{Shape: SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	tr, tc := m.TileDims()
	if tr != 4 || tc != 4 {
		t.Fatalf("tile dims %d×%d, want 4×4 for B=16", tr, tc)
	}
	gr, gc := m.GridDims()
	if gr != 3 || gc != 3 {
		t.Fatalf("grid %d×%d, want 3×3", gr, gc)
	}
	if m.Blocks() != 9 {
		t.Fatalf("blocks=%d, want 9", m.Blocks())
	}
}

func TestRowColTileGeometry(t *testing.T) {
	p := pool16(4)
	r, _ := NewMatrix(p, "r", 5, 40, Options{Shape: RowTiles})
	if tr, tc := r.TileDims(); tr != 1 || tc != 16 {
		t.Fatalf("row tile %d×%d, want 1×16", tr, tc)
	}
	if gr, gc := r.GridDims(); gr != 5 || gc != 3 {
		t.Fatalf("row grid %d×%d, want 5×3", gr, gc)
	}
	c, _ := NewMatrix(p, "c", 40, 5, Options{Shape: ColTiles})
	if tr, tc := c.TileDims(); tr != 16 || tc != 1 {
		t.Fatalf("col tile %d×%d, want 16×1", tr, tc)
	}
	if gr, gc := c.GridDims(); gr != 3 || gc != 5 {
		t.Fatalf("col grid %d×%d, want 3×5", gr, gc)
	}
}

func TestEdgeTileClipping(t *testing.T) {
	p := pool16(4)
	m, _ := NewMatrix(p, "m", 6, 6, Options{Shape: SquareTiles})
	tile, err := m.PinTile(1, 1) // covers rows 4..6, cols 4..6 (clipped)
	if err != nil {
		t.Fatal(err)
	}
	defer tile.Release()
	if tile.RowLo != 4 || tile.RowHi != 6 || tile.ColLo != 4 || tile.ColHi != 6 {
		t.Fatalf("tile span rows[%d,%d) cols[%d,%d), want [4,6)[4,6)",
			tile.RowLo, tile.RowHi, tile.ColLo, tile.ColHi)
	}
}

func TestTileOutOfRange(t *testing.T) {
	p := pool16(4)
	m, _ := NewMatrix(p, "m", 6, 6, Options{Shape: SquareTiles})
	if _, err := m.PinTile(2, 0); err == nil {
		t.Fatal("expected out-of-range tile error")
	}
	if _, err := m.At(6, 0); err == nil {
		t.Fatal("expected out-of-range At error")
	}
	if err := m.Set(0, -1, 1); err == nil {
		t.Fatal("expected out-of-range Set error")
	}
}

func TestFillWritesEachBlockOnce(t *testing.T) {
	p := pool16(3)
	m, _ := NewMatrix(p, "m", 12, 12, Options{Shape: SquareTiles})
	dev := p.Device()
	dev.ResetStats()
	if err := m.Fill(func(i, j int64) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.BlocksRead != 0 {
		t.Fatalf("fill read %d blocks, want 0", s.BlocksRead)
	}
	if s.BlocksWritten != int64(m.Blocks()) {
		t.Fatalf("fill wrote %d blocks, want %d", s.BlocksWritten, m.Blocks())
	}
}

func TestLinearizationAffectsDiskOrder(t *testing.T) {
	// Column-order linearization must make a column-wise tile walk
	// sequential on disk, and a row-wise walk scattered.
	dev := disk.NewDevice(16)
	p := buffer.New(dev, 3)
	m, _ := NewMatrix(p, "m", 16, 16, Options{Shape: SquareTiles, Lin: ColOrder})
	if err := m.Fill(func(i, j int64) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	gr, gc := m.GridDims()
	for tj := 0; tj < gc; tj++ {
		for ti := 0; ti < gr; ti++ {
			tile, err := m.PinTile(ti, tj)
			if err != nil {
				t.Fatal(err)
			}
			tile.Release()
		}
	}
	s := dev.Stats()
	if s.SeqReads < s.RandReads {
		t.Fatalf("column walk under ColOrder: seq=%d rand=%d, want mostly sequential", s.SeqReads, s.RandReads)
	}
}

func TestMatrixFreeReleasesDisk(t *testing.T) {
	p := pool16(4)
	m, _ := NewMatrix(p, "m", 8, 8, Options{Shape: SquareTiles})
	if err := m.Fill(func(i, j int64) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	m.Free()
	if p.Device().OwnedBlocks("m") != 0 {
		t.Fatal("matrix blocks not freed")
	}
}

func TestVectorFillScan(t *testing.T) {
	p := pool16(3)
	v, err := NewVector(p, "v", 50)
	if err != nil {
		t.Fatal(err)
	}
	if v.Blocks() != 4 {
		t.Fatalf("blocks=%d, want 4", v.Blocks())
	}
	if err := v.Fill(func(i int64) float64 { return float64(i) * 2 }); err != nil {
		t.Fatal(err)
	}
	var sum float64
	err = v.Scan(func(lo int64, data []float64) error {
		for _, x := range data {
			sum += x
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != float64(49*50) { // 2 * sum(0..49)
		t.Fatalf("sum=%v, want %v", sum, 49*50)
	}
}

func TestVectorAtSet(t *testing.T) {
	p := pool16(3)
	v, _ := NewVector(p, "v", 20)
	if err := v.Set(17, 3.5); err != nil {
		t.Fatal(err)
	}
	got, err := v.At(17)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 {
		t.Fatalf("v[17]=%v, want 3.5", got)
	}
	if _, err := v.At(20); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestVectorScanIsSequential(t *testing.T) {
	dev := disk.NewDevice(16)
	p := buffer.New(dev, 3)
	v, _ := NewVector(p, "v", 160)
	if err := v.Fill(func(i int64) float64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	if err := v.Scan(func(lo int64, data []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.RandReads > 1 { // only the first block may be classified random
		t.Fatalf("vector scan had %d random reads", s.RandReads)
	}
	if s.BlocksRead != int64(v.Blocks()) {
		t.Fatalf("read %d blocks, want %d", s.BlocksRead, v.Blocks())
	}
}

func TestZeroLengthVector(t *testing.T) {
	p := pool16(3)
	v, err := NewVector(p, "v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Scan(func(lo int64, data []float64) error {
		if len(data) != 0 {
			t.Fatalf("zero-length vector scanned %d elems", len(data))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix writes followed by reads behave like an in-memory
// [][]float64, whatever the tile shape/linearization.
func TestMatrixModelProperty(t *testing.T) {
	f := func(writes []uint16, shape, lin uint8) bool {
		p := pool16(3)
		m, err := NewMatrix(p, "m", 9, 11,
			Options{Shape: TileShape(shape % 3), Lin: Linearization(lin % 4)})
		if err != nil {
			return false
		}
		model := make(map[[2]int64]float64)
		for k, w := range writes {
			i := int64(w) % 9
			j := int64(w>>4) % 11
			v := float64(k + 1)
			if err := m.Set(i, j, v); err != nil {
				return false
			}
			model[[2]int64{i, j}] = v
		}
		for ij, want := range model {
			got, err := m.At(ij[0], ij[1])
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
