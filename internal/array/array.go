// Package array implements RIOT's tiled array store, the storage design
// the paper derives from ChunkyStore (§5): array indexes are never stored
// explicitly, arrays are partitioned into (hyper)rectangular tiles with a
// controllable aspect ratio, each tile occupies one disk block, and the
// order of tiles on disk (the linearization) is itself an option — row
// order, column order, or a space-filling curve for arrays whose access
// pattern is unknown in advance.
//
// Matrices here are the substrate for the out-of-core kernels in
// internal/linalg and for the RIOT engine's executor. All I/O goes
// through a buffer.Pool, so an algorithm's memory budget is enforced.
package array

import (
	"fmt"

	"riot/internal/buffer"
	"riot/internal/disk"
)

// TileShape selects the aspect ratio of matrix tiles.
type TileShape int

const (
	// RowTiles are 1×B runs: the matrix is effectively stored row-major.
	RowTiles TileShape = iota
	// ColTiles are B×1 runs: column-major storage, R's default layout.
	ColTiles
	// SquareTiles are √B×√B blocks, the shape that makes the paper's
	// Θ(n³/(B√M)) matrix-multiply schedule achievable.
	SquareTiles
)

// String names the tile shape for diagnostics and bench tables.
func (t TileShape) String() string {
	switch t {
	case RowTiles:
		return "row"
	case ColTiles:
		return "col"
	case SquareTiles:
		return "square"
	}
	return fmt.Sprintf("TileShape(%d)", int(t))
}

// Linearization selects the on-disk ordering of tiles.
type Linearization int

const (
	// RowOrder stores tiles in tile-row-major order.
	RowOrder Linearization = iota
	// ColOrder stores tiles in tile-column-major order.
	ColOrder
	// ZOrder stores tiles along a Morton (Z) curve.
	ZOrder
	// HilbertOrder stores tiles along a Hilbert curve.
	HilbertOrder
)

// String names the linearization for diagnostics and bench tables.
func (l Linearization) String() string {
	switch l {
	case RowOrder:
		return "roworder"
	case ColOrder:
		return "colorder"
	case ZOrder:
		return "zorder"
	case HilbertOrder:
		return "hilbert"
	}
	return fmt.Sprintf("Linearization(%d)", int(l))
}

// Matrix is a dense rows×cols float64 matrix stored as tiles on a
// simulated disk, one tile per block.
type Matrix struct {
	pool  *buffer.Pool
	name  string
	rows  int64
	cols  int64
	tileR int // tile height in elements
	tileC int // tile width in elements
	gridR int // tiles per column of the grid
	gridC int // tiles per row of the grid
	lin   Linearization
	base  disk.BlockID
	order []int32 // row-major tile index -> block offset
}

// Options configures matrix creation.
type Options struct {
	Shape TileShape
	Lin   Linearization
}

// NewMatrix allocates a rows×cols matrix from pool's device under the
// given owner name. The tile dimensions are derived from the device
// block size and opts.Shape.
// Degenerate 0×n / n×0 / 0×0 matrices are legal: they occupy no blocks,
// and every tile loop over their (empty) grid is vacuous — the shape
// algebra of expressions over empty inputs still has to hold.
func NewMatrix(pool *buffer.Pool, name string, rows, cols int64, opts Options) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("array: invalid dimensions %d×%d", rows, cols)
	}
	b := pool.Device().BlockElems()
	tr, tc, err := TileDimsFor(b, opts.Shape)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		pool:  pool,
		name:  name,
		rows:  rows,
		cols:  cols,
		tileR: tr,
		tileC: tc,
		gridR: int((rows + int64(tr) - 1) / int64(tr)),
		gridC: int((cols + int64(tc) - 1) / int64(tc)),
		lin:   opts.Lin,
	}
	nt := m.gridR * m.gridC
	m.base = pool.Device().Alloc(name, nt)
	m.order = buildOrder(m.gridR, m.gridC, opts.Lin)
	return m, nil
}

// buildOrder computes the row-major-tile-index -> block-offset permutation
// for the requested linearization. Non-power-of-two grids are handled by
// ranking curve keys, so the block file stays dense.
func buildOrder(gr, gc int, lin Linearization) []int32 {
	n := gr * gc
	order := make([]int32, n)
	switch lin {
	case RowOrder:
		for i := range order {
			order[i] = int32(i)
		}
	case ColOrder:
		k := int32(0)
		for tj := 0; tj < gc; tj++ {
			for ti := 0; ti < gr; ti++ {
				order[ti*gc+tj] = k
				k++
			}
		}
	case ZOrder, HilbertOrder:
		keys := make([]uint64, n)
		kbits := log2ceil(uint32(max(gr, gc)))
		for ti := 0; ti < gr; ti++ {
			for tj := 0; tj < gc; tj++ {
				if lin == ZOrder {
					keys[ti*gc+tj] = mortonEncode(uint32(tj), uint32(ti))
				} else {
					keys[ti*gc+tj] = hilbertEncode(max(kbits, 1), uint32(tj), uint32(ti))
				}
			}
		}
		order = rankByKey(keys)
	}
	return order
}

// rankByKey returns, for each position, the rank of its key (keys are
// distinct by construction of the curves).
func rankByKey(keys []uint64) []int32 {
	idx := make([]int32, len(keys))
	for i := range idx {
		idx[i] = int32(i)
	}
	// Sort positions by key using a simple in-place heapsort to avoid
	// allocating closures in hot paths; n is the tile count, small.
	sortByKey(idx, keys)
	order := make([]int32, len(keys))
	for rank, pos := range idx {
		order[pos] = int32(rank)
	}
	return order
}

func sortByKey(idx []int32, keys []uint64) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(idx, keys, i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftDown(idx, keys, 0, i)
	}
}

func siftDown(idx []int32, keys []uint64, lo, hi int) {
	root := lo
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && keys[idx[child]] < keys[idx[child+1]] {
			child++
		}
		if keys[idx[root]] >= keys[idx[child]] {
			return
		}
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}

// Rows returns the row count.
func (m *Matrix) Rows() int64 { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int64 { return m.cols }

// Name returns the owner name used for disk accounting.
func (m *Matrix) Name() string { return m.name }

// Pool returns the buffer pool the matrix is accessed through.
func (m *Matrix) Pool() *buffer.Pool { return m.pool }

// TileDims returns the tile height and width in elements.
func (m *Matrix) TileDims() (tr, tc int) { return m.tileR, m.tileC }

// GridDims returns the tile-grid dimensions.
func (m *Matrix) GridDims() (gr, gc int) { return m.gridR, m.gridC }

// Lin returns the matrix's linearization.
func (m *Matrix) Lin() Linearization { return m.lin }

// Shape returns the tile shape, recovered from the tile dimensions.
func (m *Matrix) Shape() TileShape {
	switch {
	case m.tileR == 1 && m.tileC != 1:
		return RowTiles
	case m.tileC == 1 && m.tileR != 1:
		return ColTiles
	}
	return SquareTiles
}

// BaseBlock returns the first block of the matrix's extent; the matrix
// occupies Blocks() contiguous blocks from it, in linearization order.
// Two matrices with equal dimensions, tile shape, and linearization have
// identical geometry, so a block-level copy between their extents is a
// value-level copy — the catalog's publish and checkpoint paths rely on
// this.
func (m *Matrix) BaseBlock() disk.BlockID { return m.base }

// Blocks returns the total number of blocks the matrix occupies.
func (m *Matrix) Blocks() int { return m.gridR * m.gridC }

// tileBlock returns the disk block holding tile (ti, tj).
func (m *Matrix) tileBlock(ti, tj int) disk.BlockID {
	return m.base + disk.BlockID(m.order[ti*m.gridC+tj])
}

// Tile is a pinned tile plus the geometry needed to address elements.
type Tile struct {
	frame *buffer.Frame
	m     *Matrix
	ti    int
	tj    int
	// RowLo/ColLo are the global coordinates of the tile's top-left
	// element; RowHi/ColHi are exclusive upper bounds (clipped to the
	// matrix edge).
	RowLo, RowHi int64
	ColLo, ColHi int64
}

// PinTile pins tile (ti, tj) for reading and returns it.
func (m *Matrix) PinTile(ti, tj int) (*Tile, error) {
	return m.pin(ti, tj, false)
}

// PinTileNew pins tile (ti, tj) assuming it will be fully overwritten:
// no read I/O is charged.
func (m *Matrix) PinTileNew(ti, tj int) (*Tile, error) {
	return m.pin(ti, tj, true)
}

func (m *Matrix) pin(ti, tj int, fresh bool) (*Tile, error) {
	if ti < 0 || ti >= m.gridR || tj < 0 || tj >= m.gridC {
		return nil, fmt.Errorf("array: tile (%d,%d) outside %d×%d grid of %q", ti, tj, m.gridR, m.gridC, m.name)
	}
	var f *buffer.Frame
	var err error
	if fresh {
		f, err = m.pool.PinNew(m.tileBlock(ti, tj))
	} else {
		f, err = m.pool.Pin(m.tileBlock(ti, tj))
	}
	if err != nil {
		return nil, err
	}
	t := &Tile{
		frame: f, m: m, ti: ti, tj: tj,
		RowLo: int64(ti) * int64(m.tileR),
		ColLo: int64(tj) * int64(m.tileC),
	}
	t.RowHi = min(t.RowLo+int64(m.tileR), m.rows)
	t.ColHi = min(t.ColLo+int64(m.tileC), m.cols)
	return t, nil
}

// Release unpins the tile.
func (t *Tile) Release() { t.m.pool.Unpin(t.frame) }

// MarkDirty flags the tile for write-back.
func (t *Tile) MarkDirty() { t.frame.MarkDirty() }

// At returns the element at global coordinates (i, j), which must lie
// inside the tile.
func (t *Tile) At(i, j int64) float64 {
	return t.frame.Data[(i-t.RowLo)*int64(t.m.tileC)+(j-t.ColLo)]
}

// Set stores v at global coordinates (i, j) and marks the tile dirty.
func (t *Tile) Set(i, j int64, v float64) {
	t.frame.Data[(i-t.RowLo)*int64(t.m.tileC)+(j-t.ColLo)] = v
	t.frame.MarkDirty()
}

// Data exposes the raw tile payload in tile-row-major order.
func (t *Tile) Data() []float64 { return t.frame.Data }

// Pitch returns the row stride of the raw tile payload in elements —
// the tile's full (unclipped) width. Rows of an edge-clipped tile are
// shorter than the pitch; Row returns only the valid prefix.
func (t *Tile) Pitch() int { return t.m.tileC }

// Row returns the raw payload slice of the tile's row at global row
// index i (which must lie inside the tile), spanning the tile's clipped
// column range [ColLo, ColHi). Mutating it writes the tile; callers
// that do must MarkDirty once per tile instead of paying Set's
// per-element dirty marking.
func (t *Tile) Row(i int64) []float64 {
	off := (i - t.RowLo) * int64(t.m.tileC)
	return t.frame.Data[off : off+(t.ColHi-t.ColLo)]
}

// PrefetchTiles hints to the pool's I/O scheduler that the tile
// rectangle [ti0,ti1)×[tj0,tj1) will be read soon. The tiles' blocks are
// loaded asynchronously; the scheduler sorts them by BlockID, so
// whatever runs the linearization makes contiguous are read with one
// seek each. A no-op when the scheduler is disabled; the rectangle is
// clipped to the grid.
func (m *Matrix) PrefetchTiles(ti0, ti1, tj0, tj1 int) {
	if !m.pool.ReadaheadEnabled() {
		return
	}
	ti0, tj0 = max(ti0, 0), max(tj0, 0)
	ti1, tj1 = min(ti1, m.gridR), min(tj1, m.gridC)
	if ti0 >= ti1 || tj0 >= tj1 {
		return
	}
	ids := make([]disk.BlockID, 0, (ti1-ti0)*(tj1-tj0))
	for ti := ti0; ti < ti1; ti++ {
		for tj := tj0; tj < tj1; tj++ {
			ids = append(ids, m.tileBlock(ti, tj))
		}
	}
	m.pool.Prefetch(ids)
}

// At reads a single element through the buffer pool.
func (m *Matrix) At(i, j int64) (float64, error) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return 0, fmt.Errorf("array: index (%d,%d) outside %d×%d matrix %q", i, j, m.rows, m.cols, m.name)
	}
	t, err := m.PinTile(int(i)/m.tileR, int(j)/m.tileC)
	if err != nil {
		return 0, err
	}
	v := t.At(i, j)
	t.Release()
	return v, nil
}

// Set writes a single element through the buffer pool.
func (m *Matrix) Set(i, j int64, v float64) error {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return fmt.Errorf("array: index (%d,%d) outside %d×%d matrix %q", i, j, m.rows, m.cols, m.name)
	}
	t, err := m.PinTile(int(i)/m.tileR, int(j)/m.tileC)
	if err != nil {
		return err
	}
	t.Set(i, j, v)
	t.Release()
	return nil
}

// Fill sets every element to f(i, j), streaming tile by tile in disk
// order (each tile is written exactly once, with no read I/O).
func (m *Matrix) Fill(f func(i, j int64) float64) error {
	for ti := 0; ti < m.gridR; ti++ {
		for tj := 0; tj < m.gridC; tj++ {
			t, err := m.PinTileNew(ti, tj)
			if err != nil {
				return err
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				for j := t.ColLo; j < t.ColHi; j++ {
					t.Set(i, j, f(i, j))
				}
			}
			t.Release()
		}
	}
	return m.pool.FlushAll()
}

// Free drops the matrix's resident tiles and releases its disk extent.
func (m *Matrix) Free() {
	for ti := 0; ti < m.gridR; ti++ {
		for tj := 0; tj < m.gridC; tj++ {
			m.pool.Invalidate(m.tileBlock(ti, tj))
		}
	}
	m.pool.Device().Free(m.name)
}
