package array

import "fmt"

// Kind distinguishes the physical payload format of a stored array. It
// is a first-class property of the array (not of the access path): every
// layer from the planner to the catalog branches on it, so a sparse
// array stays sparse through kernels, publishing, and restart.
type Kind int

const (
	// Dense arrays materialize every element; each tile occupies one
	// block regardless of its contents.
	Dense Kind = iota
	// Sparse arrays store tiles compressed as (count, index[], value[])
	// pairs and allocate no block at all for all-zero tiles (see
	// internal/sparse).
	Sparse
)

// String names the payload kind for plans and diagnostics.
func (k Kind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kind reports the matrix's payload format: always Dense for this type.
func (m *Matrix) Kind() Kind { return Dense }

// Kind reports the vector's payload format: always Dense for this type.
func (v *Vector) Kind() Kind { return Dense }

// TileDimsFor returns the tile height and width (in elements) that shape
// produces at the given block size — the same geometry NewMatrix derives,
// exposed so other payload formats (internal/sparse) tile identically.
func TileDimsFor(blockElems int, shape TileShape) (tr, tc int, err error) {
	switch shape {
	case RowTiles:
		return 1, blockElems, nil
	case ColTiles:
		return blockElems, 1, nil
	case SquareTiles:
		side := isqrt(blockElems)
		return side, side, nil
	}
	return 0, 0, fmt.Errorf("array: unknown tile shape %v", shape)
}

// isqrt returns floor(sqrt(n)), at least 1 for n >= 0.
func isqrt(n int) int {
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	return side
}
