package array

import (
	"testing"
	"testing/quick"
)

func TestMortonKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {3, 0, 5}, {2, 1, 6}, {3, 1, 7},
		{0, 2, 8}, {7, 7, 63},
	}
	for _, c := range cases {
		if got := mortonEncode(c.x, c.y); got != c.z {
			t.Errorf("mortonEncode(%d,%d)=%d, want %d", c.x, c.y, got, c.z)
		}
	}
}

func TestMortonRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 0x7fffffff
		y &= 0x7fffffff
		gx, gy := mortonDecode(mortonEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertRoundTripProperty(t *testing.T) {
	const k = 10 // 1024×1024 grid
	f := func(x, y uint16) bool {
		gx := uint32(x) & 1023
		gy := uint32(y) & 1023
		dx, dy := hilbertDecode(k, hilbertEncode(k, gx, gy))
		return dx == gx && dy == gy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertIsBijective(t *testing.T) {
	const k = 4 // 16×16
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := hilbertEncode(k, x, y)
			if d >= 256 {
				t.Fatalf("hilbert(%d,%d)=%d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("hilbert(%d,%d)=%d is a duplicate", x, y, d)
			}
			seen[d] = true
		}
	}
}

// The defining property of a Hilbert curve: consecutive distances map to
// grid cells that are orthogonal neighbours (Manhattan distance exactly 1).
func TestHilbertAdjacency(t *testing.T) {
	const k = 5 // 32×32
	px, py := hilbertDecode(k, 0)
	for d := uint64(1); d < 32*32; d++ {
		x, y := hilbertDecode(k, d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("step %d: (%d,%d)->(%d,%d) manhattan=%d", d, px, py, x, y, dist)
		}
		px, py = x, y
	}
}

func TestZOrderLocality(t *testing.T) {
	// Z-order should keep 2×2 blocks of cells in 4 consecutive slots.
	base := mortonEncode(4, 6)
	if base%4 != 0 {
		t.Skipf("cell (4,6) not 4-aligned: %d", base)
	}
	got := map[uint64]bool{
		mortonEncode(4, 6): true, mortonEncode(5, 6): true,
		mortonEncode(4, 7): true, mortonEncode(5, 7): true,
	}
	for d := base; d < base+4; d++ {
		if !got[d] {
			t.Fatalf("z-order 2x2 block not contiguous at %d", d)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[uint32]uint{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d)=%d, want %d", n, got, want)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}
