package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

func testVec(t *testing.T, n int64) *array.Vector {
	t.Helper()
	pool := buffer.New(disk.NewDevice(16), 8)
	v, err := array.NewVector(pool, "v", n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestShapesPropagate(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 100))
	a, err := g.ScalarOp("+", x, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shape.Rows != 100 || !a.Shape.Vector {
		t.Fatalf("shape %v", a.Shape)
	}
	r, err := g.Range(a, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shape.Rows != 10 {
		t.Fatalf("range shape %v", r.Shape)
	}
	idx := g.SourceVec(testVec(t, 7))
	gt, err := g.Gather(a, idx)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Shape.Rows != 7 {
		t.Fatalf("gather shape %v", gt.Shape)
	}
	red, err := g.Reduce("sum", a)
	if err != nil {
		t.Fatal(err)
	}
	if red.Shape.Rows != 1 {
		t.Fatalf("reduce shape %v", red.Shape)
	}
}

func TestMatMulShape(t *testing.T) {
	g := NewGraph()
	pool := buffer.New(disk.NewDevice(16), 8)
	a, _ := array.NewMatrix(pool, "a", 5, 7, array.Options{Shape: array.SquareTiles})
	b, _ := array.NewMatrix(pool, "b", 7, 3, array.Options{Shape: array.SquareTiles})
	an, bn := g.SourceMat(a), g.SourceMat(b)
	mm, err := g.MatMul(an, bn)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Shape.Rows != 5 || mm.Shape.Cols != 3 || mm.Shape.Vector {
		t.Fatalf("matmul shape %v", mm.Shape)
	}
}

func TestCSESharesAndDistinguishes(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 10))
	a1, _ := g.ScalarOp("+", x, 2, false)
	a2, _ := g.ScalarOp("+", x, 2, false)
	if a1 != a2 {
		t.Fatal("identical nodes not shared")
	}
	b, _ := g.ScalarOp("+", x, 3, false)
	if a1 == b {
		t.Fatal("different scalars shared")
	}
	c, _ := g.ScalarOp("+", x, 2, true)
	if a1 == c {
		t.Fatal("scalar side ignored in hash")
	}
	u1, _ := g.UpdateMask(x, ">", 5, 0)
	u2, _ := g.UpdateMask(x, ">", 5, 1)
	if u1 == u2 {
		t.Fatal("update value ignored in hash")
	}
}

func TestCountRefs(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 10))
	a, _ := g.ScalarOp("-", x, 1, false)
	sq, _ := g.ElemBinary("*", a, a)
	refs := CountRefs(sq)
	if refs[a] != 2 {
		t.Fatalf("refs[a]=%d, want 2 (used twice by the square)", refs[a])
	}
	if refs[x] != 1 {
		t.Fatalf("refs[x]=%d, want 1 (CSE collapses the two uses)", refs[x])
	}
}

func TestNodesWalk(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 10))
	a, _ := g.ScalarOp("-", x, 1, false)
	b, _ := g.ElemUnary("sqrt", a)
	all := Nodes(b)
	if len(all) != 3 {
		t.Fatalf("walk found %d nodes, want 3", len(all))
	}
}

func TestStringRendering(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 10))
	a, _ := g.ScalarOp("^", x, 2, false)
	u, _ := g.UpdateMask(a, ">", 100, 100)
	r, _ := g.Range(u, 0, 10)
	out := r.String()
	for _, frag := range []string{"update", "^ 2", "[0:10]"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render %q missing %q", out, frag)
		}
	}
}

func TestErrorCases(t *testing.T) {
	g := NewGraph()
	x := g.SourceVec(testVec(t, 10))
	y := g.SourceVec(testVec(t, 20))
	if _, err := g.ElemBinary("+", x, y); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := g.Range(x, -1, 5); err == nil {
		t.Error("negative range accepted")
	}
	if _, err := g.Range(x, 5, 30); err == nil {
		t.Error("overlong range accepted")
	}
	if _, err := g.Reduce("median", x); err == nil {
		t.Error("unknown reduction accepted")
	}
	pool := buffer.New(disk.NewDevice(16), 8)
	m, _ := array.NewMatrix(pool, "m", 4, 4, array.Options{Shape: array.SquareTiles})
	mn := g.SourceMat(m)
	if _, err := g.Gather(mn, x); err == nil {
		t.Error("gather over matrix accepted")
	}
}

// Property: CSE never merges nodes with different structure — rebuilding
// a random chain twice yields the same node, and any parameter tweak
// yields a different one.
func TestCSESoundnessProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 10 {
			ops = ops[:10]
		}
		g := NewGraph()
		x := g.SourceVec(testVec(t, 16))
		build := func(delta float64) *Node {
			n := x
			for _, op := range ops {
				var err error
				n, err = g.ScalarOp("+", n, float64(op)+delta, false)
				if err != nil {
					return nil
				}
			}
			return n
		}
		a, b := build(0), build(0)
		if a != b {
			return false
		}
		if len(ops) > 0 {
			c := build(1)
			if c == a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
