// Package algebra implements RIOT's expression algebra (§5): every host-
// language operation appends a node to an expression DAG instead of
// computing anything. Named objects are just references to DAG nodes, so
// deferral crosses statement boundaries; modifications are modeled by a
// side-effect-free Update operator ("[]<-") that takes the old state and
// produces the new one — the representation that makes Figure 2's
// subscript pushdown possible.
//
// The DAG is hash-consed: structurally identical subexpressions share one
// node (common-subexpression elimination), which is what lets the
// executor evaluate x appearing four times in Example 1's distance
// formula with a single scan.
package algebra

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/scalarop"
	"riot/internal/sparse"
)

// Op enumerates DAG node kinds.
type Op int

// Node kinds.
const (
	OpSourceVec  Op = iota // stored vector
	OpSourceMat            // stored matrix
	OpElemBinary           // elementwise vector ⊕ vector
	OpElemUnary            // elementwise fn(vector)
	OpScalarOp             // elementwise vector ⊕ scalar (either side)
	OpUpdateMask           // functional x[x ⊕ thresh] <- val
	OpGather               // x[s] for an index vector s
	OpRange                // x[lo:hi)
	OpMatMul               // matrix product
	OpReduce               // sum/min/max over a vector
)

func (o Op) String() string {
	switch o {
	case OpSourceVec:
		return "vec"
	case OpSourceMat:
		return "mat"
	case OpElemBinary:
		return "ebin"
	case OpElemUnary:
		return "emap"
	case OpScalarOp:
		return "escl"
	case OpUpdateMask:
		return "update"
	case OpGather:
		return "gather"
	case OpRange:
		return "range"
	case OpMatMul:
		return "matmul"
	case OpReduce:
		return "reduce"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Shape describes a node's result.
type Shape struct {
	Rows, Cols int64
	Vector     bool
}

// Len returns the element count.
func (s Shape) Len() int64 { return s.Rows * s.Cols }

func (s Shape) String() string {
	if s.Vector {
		return fmt.Sprintf("[%d]", s.Rows)
	}
	return fmt.Sprintf("[%dx%d]", s.Rows, s.Cols)
}

// Node is one operator in the DAG. Nodes are immutable once created.
type Node struct {
	ID    int
	Op    Op
	Kids  []*Node
	Shape Shape

	Fn         string  // OpElemUnary function, OpReduce kind
	BinOp      string  // OpElemBinary / OpScalarOp / OpUpdateMask operator
	Scalar     float64 // OpScalarOp operand, OpUpdateMask threshold
	Scalar2    float64 // OpUpdateMask replacement value
	ScalarLeft bool    // OpScalarOp: scalar is the left operand
	Lo, Hi     int64   // OpRange bounds [Lo, Hi)
	Ring       string  // OpMatMul semi-ring name; "" is the standard ring

	// Exactly one backing store is non-nil on a source node; the array
	// Kind (dense vs tile-compressed sparse) is a property of the store,
	// and flows from here through planning, execution, and publishing.
	Vec  *array.Vector  // OpSourceVec dense backing store
	Mat  *array.Matrix  // OpSourceMat dense backing store
	SVec *sparse.Vector // OpSourceVec sparse backing store
	SMat *sparse.Matrix // OpSourceMat sparse backing store
}

// MatKind reports the payload kind of a matrix node: the stored kind
// for sources, and for multiplies the kind their planned kernel
// produces (sparse only when both operands are sparse — the
// sparse×sparse kernel is the one whose output stays compressed).
func (n *Node) MatKind() array.Kind {
	switch n.Op {
	case OpSourceMat:
		if n.SMat != nil {
			return array.Sparse
		}
		return array.Dense
	case OpMatMul:
		if n.Kids[0].MatKind() == array.Sparse && n.Kids[1].MatKind() == array.Sparse {
			return array.Sparse
		}
	}
	return array.Dense
}

// VecKind reports the payload kind of a vector source (Dense for every
// derived node: fused pipelines materialize densely).
func (n *Node) VecKind() array.Kind {
	if n.Op == OpSourceVec && n.SVec != nil {
		return array.Sparse
	}
	return array.Dense
}

// String renders the subexpression rooted at the node.
func (n *Node) String() string {
	switch n.Op {
	case OpSourceVec:
		if n.SVec != nil {
			return n.SVec.Name()
		}
		return n.Vec.Name()
	case OpSourceMat:
		if n.SMat != nil {
			return n.SMat.Name()
		}
		return n.Mat.Name()
	case OpElemBinary:
		return fmt.Sprintf("(%s %s %s)", n.Kids[0], n.BinOp, n.Kids[1])
	case OpElemUnary:
		return fmt.Sprintf("%s(%s)", n.Fn, n.Kids[0])
	case OpScalarOp:
		if n.ScalarLeft {
			return fmt.Sprintf("(%g %s %s)", n.Scalar, n.BinOp, n.Kids[0])
		}
		return fmt.Sprintf("(%s %s %g)", n.Kids[0], n.BinOp, n.Scalar)
	case OpUpdateMask:
		return fmt.Sprintf("update(%s, v %s %g -> %g)", n.Kids[0], n.BinOp, n.Scalar, n.Scalar2)
	case OpGather:
		return fmt.Sprintf("%s[%s]", n.Kids[0], n.Kids[1])
	case OpRange:
		return fmt.Sprintf("%s[%d:%d]", n.Kids[0], n.Lo, n.Hi)
	case OpMatMul:
		if n.Ring != "" {
			return fmt.Sprintf("(%s %%*%%[%s] %s)", n.Kids[0], n.Ring, n.Kids[1])
		}
		return fmt.Sprintf("(%s %%*%% %s)", n.Kids[0], n.Kids[1])
	case OpReduce:
		return fmt.Sprintf("%s(%s)", n.Fn, n.Kids[0])
	}
	return "?"
}

// Graph builds and hash-conses nodes.
type Graph struct {
	nextID int
	cse    map[string]*Node
	// EnableCSE controls hash-consing; disabling it is the ablation knob
	// for the sharing optimization.
	EnableCSE bool
}

// NewGraph creates an empty DAG builder with CSE enabled.
func NewGraph() *Graph {
	return &Graph{cse: make(map[string]*Node), EnableCSE: true}
}

func (g *Graph) intern(key string, mk func() *Node) *Node {
	if g.EnableCSE {
		if n, ok := g.cse[key]; ok {
			return n
		}
	}
	n := mk()
	g.nextID++
	n.ID = g.nextID
	if g.EnableCSE {
		g.cse[key] = n
	}
	return n
}

// SourceVec wraps a stored vector. Sources are interned by object
// identity, not name: two distinct stores may share a name.
func (g *Graph) SourceVec(v *array.Vector) *Node {
	return g.intern(fmt.Sprintf("v:%p", v), func() *Node {
		return &Node{Op: OpSourceVec, Vec: v, Shape: Shape{Rows: v.Len(), Cols: 1, Vector: true}}
	})
}

// SourceMat wraps a stored matrix.
func (g *Graph) SourceMat(m *array.Matrix) *Node {
	return g.intern(fmt.Sprintf("m:%p", m), func() *Node {
		return &Node{Op: OpSourceMat, Mat: m, Shape: Shape{Rows: m.Rows(), Cols: m.Cols()}}
	})
}

// SourceSparseVec wraps a stored sparse vector. It is an OpSourceVec
// like its dense twin — every rewrite rule treats sources opaquely — but
// carries the sparse store, which the executor and planner branch on.
func (g *Graph) SourceSparseVec(v *sparse.Vector) *Node {
	return g.intern(fmt.Sprintf("sv:%p", v), func() *Node {
		return &Node{Op: OpSourceVec, SVec: v, Shape: Shape{Rows: v.Len(), Cols: 1, Vector: true}}
	})
}

// SourceSparseMat wraps a stored sparse matrix.
func (g *Graph) SourceSparseMat(m *sparse.Matrix) *Node {
	return g.intern(fmt.Sprintf("sm:%p", m), func() *Node {
		return &Node{Op: OpSourceMat, SMat: m, Shape: Shape{Rows: m.Rows(), Cols: m.Cols()}}
	})
}

// ElemBinary applies a vectorized binary operator.
func (g *Graph) ElemBinary(op string, x, y *Node) (*Node, error) {
	if !x.Shape.Vector || !y.Shape.Vector {
		return nil, fmt.Errorf("algebra: elementwise %s requires vectors", op)
	}
	if x.Shape.Rows != y.Shape.Rows {
		return nil, fmt.Errorf("algebra: length mismatch %d vs %d", x.Shape.Rows, y.Shape.Rows)
	}
	key := fmt.Sprintf("b:%s:%d:%d", op, x.ID, y.ID)
	return g.intern(key, func() *Node {
		return &Node{Op: OpElemBinary, BinOp: op, Kids: []*Node{x, y}, Shape: x.Shape}
	}), nil
}

// ElemUnary applies a vectorized function.
func (g *Graph) ElemUnary(fn string, x *Node) (*Node, error) {
	if !x.Shape.Vector {
		return nil, fmt.Errorf("algebra: %s requires a vector", fn)
	}
	key := fmt.Sprintf("u:%s:%d", fn, x.ID)
	return g.intern(key, func() *Node {
		return &Node{Op: OpElemUnary, Fn: fn, Kids: []*Node{x}, Shape: x.Shape}
	}), nil
}

// ScalarOp applies a vector-scalar operation.
func (g *Graph) ScalarOp(op string, x *Node, s float64, scalarLeft bool) (*Node, error) {
	if !x.Shape.Vector {
		return nil, fmt.Errorf("algebra: scalar %s requires a vector", op)
	}
	key := fmt.Sprintf("s:%s:%d:%g:%v", op, x.ID, s, scalarLeft)
	return g.intern(key, func() *Node {
		return &Node{Op: OpScalarOp, BinOp: op, Scalar: s, ScalarLeft: scalarLeft,
			Kids: []*Node{x}, Shape: x.Shape}
	}), nil
}

// UpdateMask models x[x ⊕ thresh] <- val without side effects: it
// returns the new state of x.
func (g *Graph) UpdateMask(x *Node, cmpOp string, thresh, val float64) (*Node, error) {
	if !x.Shape.Vector {
		return nil, fmt.Errorf("algebra: masked update requires a vector")
	}
	key := fmt.Sprintf("um:%s:%d:%g:%g", cmpOp, x.ID, thresh, val)
	return g.intern(key, func() *Node {
		return &Node{Op: OpUpdateMask, BinOp: cmpOp, Scalar: thresh, Scalar2: val,
			Kids: []*Node{x}, Shape: x.Shape}
	}), nil
}

// Gather models x[s].
func (g *Graph) Gather(x, idx *Node) (*Node, error) {
	if !x.Shape.Vector || !idx.Shape.Vector {
		return nil, fmt.Errorf("algebra: gather requires vectors")
	}
	key := fmt.Sprintf("g:%d:%d", x.ID, idx.ID)
	return g.intern(key, func() *Node {
		return &Node{Op: OpGather, Kids: []*Node{x, idx},
			Shape: Shape{Rows: idx.Shape.Rows, Cols: 1, Vector: true}}
	}), nil
}

// Range models x[lo:hi) (0-based, half-open).
func (g *Graph) Range(x *Node, lo, hi int64) (*Node, error) {
	if !x.Shape.Vector {
		return nil, fmt.Errorf("algebra: range requires a vector")
	}
	if lo < 0 || hi > x.Shape.Rows || lo > hi {
		return nil, fmt.Errorf("algebra: range [%d,%d) outside vector of %d", lo, hi, x.Shape.Rows)
	}
	key := fmt.Sprintf("r:%d:%d:%d", x.ID, lo, hi)
	return g.intern(key, func() *Node {
		return &Node{Op: OpRange, Lo: lo, Hi: hi, Kids: []*Node{x},
			Shape: Shape{Rows: hi - lo, Cols: 1, Vector: true}}
	}), nil
}

// MatMul models a %*% b over the standard (+, ×) ring.
func (g *Graph) MatMul(x, y *Node) (*Node, error) {
	return g.MatMulRing(x, y, "")
}

// MatMulRing models a %*% b over the named semi-ring; "" and "standard"
// intern onto the same node, so the default ring's DAG (and every key
// derived from it) is unchanged.
func (g *Graph) MatMulRing(x, y *Node, ring string) (*Node, error) {
	if x.Shape.Vector || y.Shape.Vector {
		return nil, fmt.Errorf("algebra: %%*%% requires matrices")
	}
	if x.Shape.Cols != y.Shape.Rows {
		return nil, fmt.Errorf("algebra: dimension mismatch %dx%d %%*%% %dx%d",
			x.Shape.Rows, x.Shape.Cols, y.Shape.Rows, y.Shape.Cols)
	}
	if ring == "standard" {
		ring = ""
	}
	if _, err := scalarop.Ring(ring); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("mm:%d:%d", x.ID, y.ID)
	if ring != "" {
		key = fmt.Sprintf("mm[%s]:%d:%d", ring, x.ID, y.ID)
	}
	return g.intern(key, func() *Node {
		return &Node{Op: OpMatMul, Kids: []*Node{x, y}, Ring: ring,
			Shape: Shape{Rows: x.Shape.Rows, Cols: y.Shape.Cols}}
	}), nil
}

// Reduce models sum/min/max over a vector, producing a length-1 vector.
func (g *Graph) Reduce(fn string, x *Node) (*Node, error) {
	if !x.Shape.Vector {
		return nil, fmt.Errorf("algebra: %s requires a vector", fn)
	}
	switch fn {
	case "sum", "min", "max":
	default:
		return nil, fmt.Errorf("algebra: unknown reduction %q", fn)
	}
	key := fmt.Sprintf("red:%s:%d", fn, x.ID)
	return g.intern(key, func() *Node {
		return &Node{Op: OpReduce, Fn: fn, Kids: []*Node{x},
			Shape: Shape{Rows: 1, Cols: 1, Vector: true}}
	}), nil
}

// CountRefs returns, for every node reachable from roots, its number of
// distinct consumers — the statistic the executor's materialization
// policy is based on.
func CountRefs(roots ...*Node) map[*Node]int {
	refs := make(map[*Node]int)
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, k := range n.Kids {
			refs[k]++
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return refs
}

// Nodes returns every node reachable from roots (each once).
func Nodes(roots ...*Node) []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, k := range n.Kids {
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}
