// Package harness spins up an N-node in-process RIOT cluster for
// tests: one coordinator and N cluster nodes, each over its own
// riot.Session, wired by net.Pipe — no sockets, no cluster
// infrastructure, fully deterministic placement from a seed, and a
// fault Injector per node that can drop frames, delay a peer, or kill
// it mid-query. Every distributed code path runs under `go test -race`
// this way.
package harness

import (
	"fmt"
	"net"
	"sync"
	"time"

	"riot"
	"riot/internal/cluster"
)

// Options configures an in-process cluster.
type Options struct {
	// Nodes is the cluster size (default 1).
	Nodes int
	// Config is the session configuration shared by the coordinator and
	// every node. Tests asserting bit-identical results set Workers: 1
	// and leave Readahead off, the deterministic execution mode.
	Config riot.Config
	// Seed salts the placement ring: same seed + same node count =
	// same placement, in any process.
	Seed string
	// Replicas is the ring's virtual-node count (0 = default).
	Replicas int
	// Timeout bounds each coordinator round trip (default 5s — short
	// enough that a killed peer surfaces quickly in tests).
	Timeout time.Duration
	// Retries is how many times the coordinator re-places a failed
	// shard onto survivors (default 0: fail fast).
	Retries int
}

// Cluster is a running in-process cluster.
type Cluster struct {
	// Coord scatters and gathers; Sess is its local session, which holds
	// gathered results.
	Coord *cluster.Coordinator
	Sess  *riot.Session

	nodes     []*cluster.Node
	nodeSess  []*riot.Session
	injectors []*Injector
	serving   sync.WaitGroup
}

// Start builds the cluster: N nodes over net.Pipe, handshaken and
// joined to the coordinator's placement ring as "node0".."nodeN-1".
func Start(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	blockElems := opts.Config.BlockElems
	if blockElems <= 0 {
		blockElems = 1024
	}
	coordSess := riot.NewSession(opts.Config)
	c := &Cluster{
		Sess: coordSess,
		Coord: cluster.NewCoordinator(coordSess, cluster.Options{
			ID:         "coordinator",
			Seed:       opts.Seed,
			Replicas:   opts.Replicas,
			BlockElems: blockElems,
			Timeout:    opts.Timeout,
			Retries:    opts.Retries,
		}),
	}
	for i := 0; i < opts.Nodes; i++ {
		id := fmt.Sprintf("node%d", i)
		sess := riot.NewSession(opts.Config)
		node := cluster.NewNode(id, sess)
		coordEnd, nodeEnd := net.Pipe()
		inj := &Injector{conn: nodeEnd}
		c.nodes = append(c.nodes, node)
		c.nodeSess = append(c.nodeSess, sess)
		c.injectors = append(c.injectors, inj)
		c.serving.Add(1)
		go func() {
			defer c.serving.Done()
			node.ServeConn(&faultConn{Conn: nodeEnd, inj: inj})
		}()
		if err := c.Coord.AddPeer(id, coordEnd); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Node returns the i-th node (for Held/ID inspection).
func (c *Cluster) Node(i int) *cluster.Node { return c.nodes[i] }

// NodeSession returns the i-th node's session (for Report counters).
func (c *Cluster) NodeSession(i int) *riot.Session { return c.nodeSess[i] }

// Injector returns the i-th node's fault injector.
func (c *Cluster) Injector(i int) *Injector { return c.injectors[i] }

// Close tears the cluster down: coordinator connections, node serving
// loops, and every session.
func (c *Cluster) Close() {
	c.Coord.Close()
	for _, inj := range c.injectors {
		inj.Kill()
	}
	for _, n := range c.nodes {
		n.Close()
	}
	c.serving.Wait()
	for _, s := range c.nodeSess {
		s.Close()
	}
	c.Sess.Close()
}

// Injector injects faults into one node's connection: delay every
// transfer, silently drop written response frames, or kill the
// connection outright — immediately or after a counted number of reads
// (to land the kill mid-scatter or mid-gather deterministically).
type Injector struct {
	mu         sync.Mutex
	conn       net.Conn
	delay      time.Duration
	dropWrites int
	killAfter  int // reads remaining before the kill; 0 = disarmed
	killed     bool
}

// Kill severs the node's connection now. Both ends fail their next
// transfer; the coordinator sees a dead peer.
func (j *Injector) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.killLocked()
}

func (j *Injector) killLocked() {
	if !j.killed {
		j.killed = true
		j.conn.Close()
	}
}

// KillAfterReads arms a deferred kill: the connection is severed before
// the node's n-th subsequent Read — counted from now, so tests arm it
// after the handshake and land the kill mid-query.
func (j *Injector) KillAfterReads(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.killAfter = n
}

// Delay makes every subsequent transfer on the node's connection wait d
// first — a slow peer, not a dead one.
func (j *Injector) Delay(d time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.delay = d
}

// DropNextWrites silently discards the node's next n written frames:
// the node believes it answered; the coordinator waits until its
// deadline and treats the peer as dead.
func (j *Injector) DropNextWrites(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropWrites = n
}

// faultConn applies an Injector's faults to a net.Conn.
type faultConn struct {
	net.Conn
	inj *Injector
}

// Read counts down an armed deferred kill, applies the configured
// delay, then reads from the underlying connection.
func (f *faultConn) Read(b []byte) (int, error) {
	j := f.inj
	j.mu.Lock()
	if j.killAfter > 0 {
		j.killAfter--
		if j.killAfter == 0 {
			j.killLocked()
		}
	}
	d := j.delay
	j.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return f.Conn.Read(b)
}

// Write applies the configured delay, then either forwards the bytes or
// silently discards them when a drop is armed.
func (f *faultConn) Write(b []byte) (int, error) {
	j := f.inj
	j.mu.Lock()
	drop := j.dropWrites > 0
	if drop {
		j.dropWrites--
	}
	d := j.delay
	j.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if drop {
		return len(b), nil
	}
	return f.Conn.Write(b)
}
