package harness

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"riot"
)

// lcg is a deterministic value generator so coordinator, nodes, and the
// single-node reference all build the same operands.
func lcg(tag, i, j int64) uint64 {
	x := uint64(tag)*0x9e3779b97f4a7c15 + uint64(i)*0x2545f4914f6cdd1d + uint64(j) + 1
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// denseGen fills every element with a small deterministic value.
func denseGen(tag int64) func(i, j int64) float64 {
	return func(i, j int64) float64 {
		return float64(lcg(tag, i, j)%1000)/8 - 60
	}
}

// sparseGen keeps ~10% of elements; the stored-zero convention means a
// zero is "no entry" under every ring.
func sparseGen(tag int64) func(i, j int64) float64 {
	return func(i, j int64) float64 {
		x := lcg(tag, i, j)
		if x%10 != 0 {
			return 0
		}
		return float64(x%500)/4 + 1
	}
}

func deterministicCfg() riot.Config {
	// Workers:1 + Readahead off is the engine's deterministic execution
	// mode: the single-node result is byte-for-byte reproducible, so
	// bit-identity across the cluster is a meaningful assertion.
	return riot.Config{Workers: 1}
}

// buildPair builds A (l×m) and B (m×k) in one session.
func buildPair(t *testing.T, s *riot.Session, l, m, k int64, sparse bool, ring string) (*riot.Matrix, *riot.Matrix) {
	t.Helper()
	gen := denseGen
	if sparse {
		gen = sparseGen
	}
	a, err := s.NewMatrix(l, m, gen(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewMatrix(m, k, gen(2))
	if err != nil {
		t.Fatal(err)
	}
	if sparse {
		if a, err = a.Sparse(); err != nil {
			t.Fatal(err)
		}
		if b, err = b.Sparse(); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

// singleNodeRef computes the reference product in a fresh single
// session under the same deterministic config.
func singleNodeRef(t *testing.T, l, m, k int64, sparse bool, ring string) []float64 {
	t.Helper()
	s := riot.NewSession(deterministicCfg())
	defer s.Close()
	a, b := buildPair(t, s, l, m, k, sparse, ring)
	c, err := a.MatMulRing(b, ring)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.Values()
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// The tentpole property: distributed MatMul over dense, sparse, and
// minplus operands is bit-identical to the single-node result at
// Workers:1, for 1-, 2-, and 3-node clusters — including shapes that
// cross tile boundaries (side 32 at the default B=1024), leave most
// nodes with empty shards, or shard the right operand.
func TestDistributedMatMulBitIdentical(t *testing.T) {
	shapes := []struct {
		name    string
		l, m, k int64
	}{
		{"one-elem", 1, 1, 1},          // single band; N-1 nodes idle
		{"in-tile", 7, 5, 9},           // everything inside one tile
		{"tile-cross", 65, 33, 40},     // bands straddle the 32-side tiles
		{"square", 96, 96, 96},         // 3 bands
		{"ship-right", 3, 40, 100},     // B larger: shard B's columns
		{"skewed", 128, 9, 17},         // tall-thin A, 4 bands
	}
	kinds := []struct {
		name   string
		sparse bool
		ring   string
	}{
		{"dense", false, ""},
		{"sparse", true, ""},
		{"minplus", false, "minplus"},
		{"sparse-minplus", true, "minplus"},
	}
	for _, kind := range kinds {
		for _, sh := range shapes {
			want := singleNodeRef(t, sh.l, sh.m, sh.k, kind.sparse, kind.ring)
			for nodes := 1; nodes <= 3; nodes++ {
				c, err := Start(Options{Nodes: nodes, Config: deterministicCfg(), Seed: "pr10"})
				if err != nil {
					t.Fatal(err)
				}
				a, b := buildPair(t, c.Sess, sh.l, sh.m, sh.k, kind.sparse, kind.ring)
				got, err := c.Coord.MatMulRing(a, b, kind.ring)
				if err != nil {
					c.Close()
					t.Fatalf("%s/%s N=%d: %v", kind.name, sh.name, nodes, err)
				}
				gv, err := got.Values()
				if err != nil {
					c.Close()
					t.Fatal(err)
				}
				if len(gv) != len(want) {
					c.Close()
					t.Fatalf("%s/%s N=%d: %d values, want %d", kind.name, sh.name, nodes, len(gv), len(want))
				}
				for i := range gv {
					if math.Float64bits(gv[i]) != math.Float64bits(want[i]) {
						c.Close()
						t.Fatalf("%s/%s N=%d: value[%d] = %v, want %v (not bit-identical)",
							kind.name, sh.name, nodes, i, gv[i], want[i])
					}
				}
				c.Close()
			}
		}
	}
}

// Shards and broadcasts are cleaned up after a query: the coordinator
// drops its whole query namespace once the result is assembled.
func TestQueryNamespaceDropped(t *testing.T) {
	c, err := Start(Options{Nodes: 2, Config: deterministicCfg(), Seed: "pr10"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := buildPair(t, c.Sess, 96, 96, 96, false, "")
	if _, err := c.Coord.MatMul(a, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if held := c.Node(i).Held(); len(held) != 0 {
			t.Fatalf("node%d still holds %v after the query", i, held)
		}
	}
}

// Explain renders the distributed plan without executing: scatter,
// remote-exec, and gather steps per site, with network blocks beside
// the io and cpu estimates.
func TestExplainRendersNetworkEstimates(t *testing.T) {
	c, err := Start(Options{Nodes: 3, Config: deterministicCfg(), Seed: "pr10"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := buildPair(t, c.Sess, 96, 96, 96, false, "")
	out, err := c.Coord.Explain(a, b, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scatter", "remote-exec", "gather", "net ", "@node", "io ", "cpu "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
	// Explain must not have executed anything remotely.
	for i := 0; i < 3; i++ {
		if held := c.Node(i).Held(); len(held) != 0 {
			t.Fatalf("Explain pushed state to node%d: %v", i, held)
		}
	}
}

// A peer killed mid-scatter yields a descriptive error naming the peer
// — promptly (no hang) and with nothing published.
func TestKillMidScatter(t *testing.T) {
	c, err := Start(Options{Nodes: 3, Config: deterministicCfg(), Seed: "pr10", Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := buildPair(t, c.Sess, 96, 96, 96, false, "")
	// Arm the kill on every node so whichever owns the first band dies
	// while its scatter frames are in flight (the handshake is already
	// done; the next reads are query frames).
	for i := 0; i < 3; i++ {
		c.Injector(i).KillAfterReads(2)
	}
	type res struct {
		m   *riot.Matrix
		err error
	}
	done := make(chan res, 1)
	go func() {
		m, err := c.Coord.MatMul(a, b)
		done <- res{m, err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatalf("killed peers, but the query succeeded")
		}
		if r.m != nil {
			t.Fatalf("error return still published a result")
		}
		msg := r.err.Error()
		if !strings.Contains(msg, "cluster: peer node") {
			t.Fatalf("error does not name the dead peer: %v", r.err)
		}
		if !strings.Contains(msg, "result not published") {
			t.Fatalf("error does not state publish was withheld: %v", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator hung after peer kill")
	}
}

// With Retries > 0, a dead peer's bands are re-placed onto the
// survivors and the query still returns the bit-identical result.
func TestRetryOnPeerDeath(t *testing.T) {
	want := singleNodeRef(t, 96, 96, 96, false, "")
	c, err := Start(Options{Nodes: 3, Config: deterministicCfg(), Seed: "pr10",
		Timeout: 2 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := buildPair(t, c.Sess, 96, 96, 96, false, "")
	// Kill one peer outright before the query: its shard placement is
	// discovered dead on first contact and retried on the survivors.
	c.Injector(1).Kill()
	got, err := c.Coord.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gv, err := got.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range gv {
		if math.Float64bits(gv[i]) != math.Float64bits(want[i]) {
			t.Fatalf("retried result diverged at [%d]: %v vs %v", i, gv[i], want[i])
		}
	}
	if peers := c.Coord.Peers(); len(peers) != 2 {
		t.Fatalf("dead peer not removed: %v", peers)
	}
}

// A delayed peer slows its own query down but must not deadlock
// group-commit: publishes on a WAL-backed database proceed while the
// coordinator waits on the slow peer, and the query still completes.
func TestDelayedPeerNoGroupCommitDeadlock(t *testing.T) {
	c, err := Start(Options{Nodes: 2, Config: deterministicCfg(), Seed: "pr10", Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := buildPair(t, c.Sess, 96, 96, 96, false, "")
	c.Injector(0).Delay(5 * time.Millisecond)
	c.Injector(1).Delay(5 * time.Millisecond)

	db, err := riot.Open(t.TempDir(), riot.Config{Workers: 1, WALSync: riot.WALSyncAlways, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var wg sync.WaitGroup
	queryDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Coord.MatMul(a, b)
		queryDone <- err
	}()
	// Two sessions group-committing against the WAL while the slow
	// distributed query is in flight.
	pubErr := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := db.NewSession()
			if err != nil {
				pubErr <- err
				return
			}
			defer sess.Close()
			for i := 0; i < 5; i++ {
				m, err := sess.NewMatrix(8, 8, denseGen(int64(w*10+i)))
				if err != nil {
					pubErr <- err
					return
				}
				if err := sess.PublishMatrix(names[w*5+i], m); err != nil {
					pubErr <- err
					return
				}
			}
			pubErr <- nil
		}(w)
	}
	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	select {
	case <-waitCh:
	case <-time.After(60 * time.Second):
		t.Fatalf("delayed peer deadlocked the group: query or publishes never finished")
	}
	if err := <-queryDone; err != nil {
		t.Fatalf("delayed query failed: %v", err)
	}
	for w := 0; w < 2; w++ {
		if err := <-pubErr; err != nil {
			t.Fatalf("publish under delay failed: %v", err)
		}
	}
}

// names for the group-commit publishes (catalog names must be simple
// identifiers).
var names = []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"}
