package cluster

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"riot"
)

// Operand kinds on the wire (FrameTilePush).
const (
	kindDense  = 0
	kindSparse = 1
)

// Node is the serving side of the remote-frame protocol: one riot-serve
// session plus the tile shards coordinators have pushed to it. A Node
// serves any number of connections (ServeConn per conn, or
// ServeListener); engine work is serialized per node, mirroring how a
// riot-serve session executes one statement at a time.
type Node struct {
	id   string
	sess *riot.Session

	mu     sync.Mutex
	held   map[string]*heldArray
	closed atomic.Bool
}

// heldArray is one array a coordinator pushed or produced on this node:
// an operand handle (mat) or a computed result's values (vals).
type heldArray struct {
	mat        *riot.Matrix
	vals       []float64
	rows, cols int64
}

// NewNode wraps a session as a cluster peer. The caller keeps ownership
// of the session and closes it after the node stops serving.
func NewNode(id string, sess *riot.Session) *Node {
	return &Node{id: id, sess: sess, held: make(map[string]*heldArray)}
}

// ID returns the node's identity, as sent in its Hello frame.
func (n *Node) ID() string { return n.id }

// Held returns the names of the arrays the node currently holds, for
// tests and diagnostics.
func (n *Node) Held() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.held))
	for name := range n.held {
		out = append(out, name)
	}
	return out
}

// Close marks the node stopped: serving loops exit on their next frame
// and held shards are dropped. The wrapped session is the caller's to
// close.
func (n *Node) Close() {
	n.closed.Store(true)
	n.mu.Lock()
	n.held = make(map[string]*heldArray)
	n.mu.Unlock()
}

// ServeListener accepts connections until the listener closes, serving
// each with ServeConn.
func (n *Node) ServeListener(ln net.Listener) error {
	var conns sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			conns.Wait()
			if n.closed.Load() {
				return nil
			}
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			n.ServeConn(conn)
		}()
	}
}

// ServeConn performs the handshake and serves frames until the
// connection closes or the node is closed. Request-level failures are
// answered with FrameErr and the connection stays usable; transport
// errors end the loop.
func (n *Node) ServeConn(conn net.Conn) error {
	defer conn.Close()
	if err := n.handshake(conn); err != nil {
		return err
	}
	for !n.closed.Load() {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			return err
		}
		resp, body, err := n.dispatch(t, payload)
		if err != nil {
			var e wbuf
			e.str(err.Error())
			resp, body = FrameErr, e.b
		}
		if err := WriteFrame(conn, resp, body); err != nil {
			return err
		}
	}
	return nil
}

// handshake exchanges magic preambles and Hello frames; the node speaks
// second.
func (n *Node) handshake(conn net.Conn) error {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		return fmt.Errorf("cluster: node %s: read magic: %w", n.id, err)
	}
	if string(magic) != Magic {
		return fmt.Errorf("cluster: node %s: bad magic %q", n.id, magic)
	}
	t, payload, err := ReadFrame(conn)
	if err != nil || t != FrameHello {
		return fmt.Errorf("cluster: node %s: expected Hello, got type %#x (%v)", n.id, t, err)
	}
	_ = payload // the coordinator's ID; informational
	if _, err := conn.Write([]byte(Magic)); err != nil {
		return err
	}
	var w wbuf
	w.str(n.id)
	return WriteFrame(conn, FrameHello, w.b)
}

// dispatch executes one request frame and returns the response.
func (n *Node) dispatch(t FrameType, payload []byte) (FrameType, []byte, error) {
	switch t {
	case FramePing:
		return FramePong, nil, nil
	case FrameTilePush:
		return n.tilePush(payload)
	case FrameExec:
		return n.exec(payload)
	case FrameFetch:
		return n.fetch(payload)
	case FrameDrop:
		return n.drop(payload)
	case FrameStats:
		return n.stats()
	}
	return 0, nil, fmt.Errorf("node %s: unknown frame type %#x", n.id, t)
}

// tilePush installs one operand band: name, kind, dims, row offset (for
// diagnostics), and row-major values. Sparse bands are re-compressed
// into tile-compressed storage on arrival, so the node's kernels see
// the same kind the coordinator held.
func (n *Node) tilePush(payload []byte) (FrameType, []byte, error) {
	var r rbuf
	r.b = payload
	name := r.str()
	kind := r.u8()
	rows := int64(r.u64())
	cols := int64(r.u64())
	_ = r.u64() // row offset within the logical array
	vals := r.f64s(int(rows * cols))
	if r.fail() {
		return 0, nil, fmt.Errorf("node %s: tile-push: %w", n.id, r.err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, err := n.sess.NewMatrix(rows, cols, func(i, j int64) float64 { return vals[i*cols+j] })
	if err != nil {
		return 0, nil, fmt.Errorf("node %s: tile-push %s: %w", n.id, name, err)
	}
	if kind == kindSparse {
		if m, err = m.Sparse(); err != nil {
			return 0, nil, fmt.Errorf("node %s: tile-push %s: to sparse: %w", n.id, name, err)
		}
	}
	n.held[name] = &heldArray{mat: m, rows: rows, cols: cols}
	return FrameOK, nil, nil
}

// exec runs one partial multiply out = a ⊗ b over the named ring and
// holds the result's values for a later FrameFetch. The k dimension is
// whole on every node, so this is the complete local reduction of the
// band's partial products — nothing accumulates across nodes.
func (n *Node) exec(payload []byte) (FrameType, []byte, error) {
	var r rbuf
	r.b = payload
	out, aName, bName, ring := r.str(), r.str(), r.str(), r.str()
	if r.fail() {
		return 0, nil, fmt.Errorf("node %s: exec: %w", n.id, r.err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	a, okA := n.held[aName]
	b, okB := n.held[bName]
	if !okA || !okB || a.mat == nil || b.mat == nil {
		return 0, nil, fmt.Errorf("node %s: exec %s: operand not held (a=%v b=%v)", n.id, out, okA, okB)
	}
	prod, err := a.mat.MatMulRing(b.mat, ring)
	if err != nil {
		return 0, nil, fmt.Errorf("node %s: exec %s: %w", n.id, out, err)
	}
	vals, err := prod.Values()
	if err != nil {
		return 0, nil, fmt.Errorf("node %s: exec %s: force: %w", n.id, out, err)
	}
	rows, cols := prod.Dims()
	n.held[out] = &heldArray{vals: vals, rows: rows, cols: cols}
	return FrameOK, nil, nil
}

// fetch returns a held array's dims and row-major values.
func (n *Node) fetch(payload []byte) (FrameType, []byte, error) {
	var r rbuf
	r.b = payload
	name := r.str()
	if r.fail() {
		return 0, nil, fmt.Errorf("node %s: fetch: %w", n.id, r.err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.held[name]
	if !ok {
		return 0, nil, fmt.Errorf("node %s: fetch %s: not held", n.id, name)
	}
	vals := h.vals
	if vals == nil {
		var err error
		if vals, err = h.mat.Values(); err != nil {
			return 0, nil, fmt.Errorf("node %s: fetch %s: %w", n.id, name, err)
		}
	}
	var w wbuf
	w.u64(uint64(h.rows))
	w.u64(uint64(h.cols))
	w.f64s(vals)
	return FrameTileData, w.b, nil
}

// drop frees every held array whose name starts with the given prefix
// (coordinators drop their whole query namespace in one frame).
func (n *Node) drop(payload []byte) (FrameType, []byte, error) {
	var r rbuf
	r.b = payload
	prefix := r.str()
	if r.fail() {
		return 0, nil, fmt.Errorf("node %s: drop: %w", n.id, r.err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.held {
		if strings.HasPrefix(name, prefix) {
			delete(n.held, name)
		}
	}
	return FrameOK, nil, nil
}

// stats answers with the node session's cumulative I/O counters, the
// numbers the cluster ablation sums per node.
func (n *Node) stats() (FrameType, []byte, error) {
	rep := n.sess.Report()
	var w wbuf
	w.u64(uint64(rep.IOBytes))
	w.u64(uint64(rep.SeqOps))
	w.u64(uint64(rep.RandOps))
	w.u64(uint64(rep.Flops))
	return FrameStatsData, w.b, nil
}
