package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"riot"
	"riot/internal/array"
	"riot/internal/plan"
)

// Options configures a Coordinator.
type Options struct {
	// ID names the coordinator in its Hello frames.
	ID string
	// Seed salts the placement ring; coordinators sharing a seed and a
	// peer list derive identical placements in different processes.
	Seed string
	// Replicas is the ring's virtual-node count (0 = DefaultReplicas).
	Replicas int
	// BlockElems is the tile block size (B) used to derive band
	// geometry and network-block estimates; it should match the peer
	// sessions' configuration. Default 1024.
	BlockElems int
	// MemElems is the per-node memory budget (M) used for remote-exec
	// cost estimates in Explain. Default 1<<22.
	MemElems int64
	// Timeout bounds each remote round trip; a peer that neither
	// answers nor fails within it is treated as dead. Default 30s.
	Timeout time.Duration
	// Retries is how many times a failed shard is re-placed onto the
	// surviving peers before the query aborts. Default 0: fail fast
	// with a descriptive error (the harness fault tests pin both
	// behaviours).
	Retries int
}

// NetStats counts the coordinator's interconnect traffic.
type NetStats struct {
	BytesSent int64 // frame payload + header bytes shipped to peers
	BytesRecv int64 // frame payload + header bytes gathered back
	Frames    int64 // request/response round trips
}

// Coordinator owns a peer list and a placement ring, and executes
// distributed tiled matrix multiplies: the larger operand's tile bands
// are scattered to their ring owners, the smaller operand is shipped to
// every participating node ("ship the smaller operand to where the
// larger one lives"), each node reduces its partial products locally
// over the whole k dimension, and the result bands are gathered and
// assembled here. Results are bit-identical to the single-node kernels
// because k is never sharded and every band runs the same tiled
// schedule. Safe for concurrent queries; each peer connection serves
// one round trip at a time.
type Coordinator struct {
	sess *riot.Session
	opts Options
	ring *Ring

	mu    sync.Mutex
	peers map[string]*Peer
	seq   atomic.Int64

	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	frames    atomic.Int64
}

// Peer is one live connection to a cluster node.
type Peer struct {
	id   string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	mu   sync.Mutex
	c    *Coordinator
}

// NewCoordinator builds a coordinator over the session that will hold
// gathered results. The caller keeps ownership of the session.
func NewCoordinator(sess *riot.Session, opts Options) *Coordinator {
	if opts.ID == "" {
		opts.ID = "coordinator"
	}
	if opts.BlockElems <= 0 {
		opts.BlockElems = 1024
	}
	if opts.MemElems <= 0 {
		opts.MemElems = 1 << 22
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	return &Coordinator{
		sess:  sess,
		opts:  opts,
		ring:  NewRing(opts.Seed, opts.Replicas),
		peers: make(map[string]*Peer),
	}
}

// Ring exposes the placement ring (tests inspect ownership through it).
func (c *Coordinator) Ring() *Ring { return c.ring }

// NetStats returns the cumulative interconnect counters.
func (c *Coordinator) NetStats() NetStats {
	return NetStats{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		Frames:    c.frames.Load(),
	}
}

// AddPeer performs the handshake over conn and joins the node to the
// placement ring. The node's Hello must match the expected id: placement
// is derived from ids, so a mismatched peer would silently own the
// wrong tiles.
func (c *Coordinator) AddPeer(id string, conn net.Conn) error {
	p := &Peer{id: id, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), c: c}
	if err := p.handshake(c.opts.ID, c.opts.Timeout); err != nil {
		conn.Close()
		return fmt.Errorf("cluster: add peer %s: %w", id, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.peers[id]; ok {
		conn.Close()
		return fmt.Errorf("cluster: peer %s already joined", id)
	}
	c.peers[id] = p
	c.ring.Add(id)
	return nil
}

// RemovePeer drops a node from the ring and closes its connection;
// subsequent placements land on the survivors.
func (c *Coordinator) RemovePeer(id string) {
	c.mu.Lock()
	p := c.peers[id]
	delete(c.peers, id)
	c.mu.Unlock()
	c.ring.Remove(id)
	if p != nil {
		p.conn.Close()
	}
}

// Peers returns the live peer ids, sorted.
func (c *Coordinator) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for id := range c.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Close closes every peer connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	peers := c.peers
	c.peers = make(map[string]*Peer)
	c.mu.Unlock()
	for id, p := range peers {
		p.conn.Close()
		c.ring.Remove(id)
	}
	return nil
}

// handshake speaks the coordinator side: magic + Hello, then the
// node's magic + Hello back.
func (p *Peer) handshake(coordID string, timeout time.Duration) error {
	p.conn.SetDeadline(time.Now().Add(timeout))
	defer p.conn.SetDeadline(time.Time{})
	if _, err := p.w.WriteString(Magic); err != nil {
		return err
	}
	var h wbuf
	h.str(coordID)
	if err := WriteFrame(p.w, FrameHello, h.b); err != nil {
		return err
	}
	if err := p.w.Flush(); err != nil {
		return err
	}
	magic := make([]byte, len(Magic))
	if _, err := ioReadFull(p.r, magic); err != nil {
		return fmt.Errorf("read magic: %w", err)
	}
	if string(magic) != Magic {
		return fmt.Errorf("bad magic %q", magic)
	}
	t, payload, err := ReadFrame(p.r)
	if err != nil || t != FrameHello {
		return fmt.Errorf("expected Hello, got type %#x (%v)", t, err)
	}
	var r rbuf
	r.b = payload
	if got := r.str(); got != p.id {
		return fmt.Errorf("node identifies as %q, expected %q", got, p.id)
	}
	return nil
}

// rpc runs one framed round trip under the peer's deadline. A FrameErr
// answer comes back as a Go error; transport failures mean the peer is
// dead for this query.
func (p *Peer) rpc(t FrameType, payload []byte) (FrameType, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetDeadline(time.Now().Add(p.c.opts.Timeout))
	defer p.conn.SetDeadline(time.Time{})
	if err := WriteFrame(p.w, t, payload); err != nil {
		return 0, nil, err
	}
	if err := p.w.Flush(); err != nil {
		return 0, nil, err
	}
	p.c.bytesSent.Add(int64(len(payload) + 5))
	rt, body, err := ReadFrame(p.r)
	if err != nil {
		return 0, nil, err
	}
	p.c.bytesRecv.Add(int64(len(body) + 5))
	p.c.frames.Add(1)
	if rt == FrameErr {
		var r rbuf
		r.b = body
		return 0, nil, fmt.Errorf("%s", r.str())
	}
	return rt, body, nil
}

// Ping round-trips a liveness probe to the named peer.
func (c *Coordinator) Ping(id string) error {
	c.mu.Lock()
	p := c.peers[id]
	c.mu.Unlock()
	if p == nil {
		return fmt.Errorf("cluster: no peer %s", id)
	}
	t, _, err := p.rpc(FramePing, nil)
	if err != nil {
		return fmt.Errorf("cluster: peer %s: ping: %w", id, err)
	}
	if t != FramePong {
		return fmt.Errorf("cluster: peer %s: ping answered %#x", id, t)
	}
	return nil
}

// bandSpec is one tile band of the sharded operand: rows of A under
// shard-left, columns of B under shard-right.
type bandSpec struct {
	idx    int
	lo, hi int64
}

// MatMul runs a distributed multiply over the standard ring.
func (c *Coordinator) MatMul(a, b *riot.Matrix) (*riot.Matrix, error) {
	return c.MatMulRing(a, b, "")
}

// MatMulRing runs C = A ⊗ B across the cluster over the named semi-ring
// ("" means standard). The larger operand is sharded by tile band onto
// the ring, the smaller shipped to every participating node; partial
// products reduce locally (k is whole on every node) and the result is
// gathered and assembled in the coordinator's session. On a peer
// failure the shard is re-placed onto the survivors up to Options.
// Retries times; the result is never published partially — either every
// band arrived or an error names the dead peer and the failed step.
func (c *Coordinator) MatMulRing(a, b *riot.Matrix, ring string) (*riot.Matrix, error) {
	l, m := a.Dims()
	m2, k := b.Dims()
	if m != m2 {
		return nil, fmt.Errorf("cluster: matmul dims %dx%d · %dx%d", l, m, m2, k)
	}
	if c.ring.Len() == 0 {
		return nil, fmt.Errorf("cluster: no peers joined")
	}
	shipLeft := l*m >= m*k // shard the larger operand, broadcast the smaller
	av, err := a.Values()
	if err != nil {
		return nil, fmt.Errorf("cluster: force left operand: %w", err)
	}
	bv, err := b.Values()
	if err != nil {
		return nil, fmt.Errorf("cluster: force right operand: %w", err)
	}
	aKind, err := a.Kind()
	if err != nil {
		return nil, err
	}
	bKind, err := b.Kind()
	if err != nil {
		return nil, err
	}
	q := fmt.Sprintf("q%d", c.seq.Add(1))
	out := make([]float64, l*k)
	bands, label := c.bands(l, k, m, shipLeft)
	if len(bands) > 0 {
		if err := c.scatterGather(q, label, bands, shipLeft, ring,
			av, bv, aKind, bKind, l, m, k, out); err != nil {
			return nil, err
		}
	}
	res, err := c.sess.NewMatrix(l, k, func(i, j int64) float64 { return out[i*k+j] })
	if err != nil {
		return nil, fmt.Errorf("cluster: assemble result: %w", err)
	}
	return res, nil
}

// bands splits the sharded dimension into tile bands of the session's
// square-tile side and returns the placement label hashing keys use.
func (c *Coordinator) bands(l, k, m int64, shipLeft bool) ([]bandSpec, string) {
	side, _, err := array.TileDimsFor(c.opts.BlockElems, array.SquareTiles)
	if err != nil || side < 1 {
		side = 1
	}
	span := l
	tag := "L"
	if !shipLeft {
		span = k
		tag = "R"
	}
	var bands []bandSpec
	for lo := int64(0); lo < span; lo += int64(side) {
		hi := lo + int64(side)
		if hi > span {
			hi = span
		}
		bands = append(bands, bandSpec{idx: len(bands), lo: lo, hi: hi})
	}
	label := fmt.Sprintf("matmul/%s/%dx%dx%d", tag, l, m, k)
	return bands, label
}

// place groups bands by ring owner. Owners must exist in the peer
// table; a band whose owner has no live connection is an error (the
// ring and peer list are kept in sync by Add/RemovePeer).
func (c *Coordinator) place(label string, bands []bandSpec) (map[string][]bandSpec, error) {
	assign := make(map[string][]bandSpec)
	for _, band := range bands {
		owner, ok := c.ring.Owner(label, band.idx)
		if !ok {
			return nil, fmt.Errorf("cluster: placement ring is empty")
		}
		assign[owner] = append(assign[owner], band)
	}
	return assign, nil
}

// scatterGather is one distributed multiply attempt loop: scatter the
// bands and the broadcast operand, exec and fetch each band, fill the
// result buffer. Failed peers are removed and their bands re-placed
// until Retries is exhausted.
func (c *Coordinator) scatterGather(q, label string, bands []bandSpec, shipLeft bool,
	ring string, av, bv []float64, aKind, bKind string, l, m, k int64, out []float64) error {
	pending := bands
	pushedBcast := make(map[string]bool)
	for attempt := 0; ; attempt++ {
		assign, err := c.place(label, pending)
		if err != nil {
			return err
		}
		type peerErr struct {
			id    string
			bands []bandSpec
			err   error
		}
		var wg sync.WaitGroup
		errCh := make(chan peerErr, len(assign))
		for id, share := range assign {
			c.mu.Lock()
			p := c.peers[id]
			c.mu.Unlock()
			if p == nil {
				errCh <- peerErr{id, share, fmt.Errorf("no live connection")}
				continue
			}
			wg.Add(1)
			go func(p *Peer, share []bandSpec) {
				defer wg.Done()
				if err := c.runShare(p, q, share, shipLeft, ring, av, bv, aKind, bKind,
					l, m, k, out, pushedBcast); err != nil {
					errCh <- peerErr{p.id, share, err}
				}
			}(p, share)
		}
		wg.Wait()
		close(errCh)
		var failed []bandSpec
		var firstErr error
		for pe := range errCh {
			failed = append(failed, pe.bands...)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %s: %w", pe.id, pe.err)
			}
			c.RemovePeer(pe.id)
			delete(pushedBcast, pe.id)
		}
		if firstErr == nil {
			c.dropQuery(q)
			return nil
		}
		if attempt >= c.opts.Retries {
			c.dropQuery(q)
			return fmt.Errorf("%w (after %d attempt(s); result not published)", firstErr, attempt+1)
		}
		if c.ring.Len() == 0 {
			return fmt.Errorf("cluster: no live peers remain: %w", firstErr)
		}
		pending = failed
	}
}

// runShare executes one peer's share of a query: push the broadcast
// operand once, then push, exec, and fetch each band. Bands write into
// disjoint regions of out, so shares fill it concurrently without
// synchronization.
func (c *Coordinator) runShare(p *Peer, q string, share []bandSpec, shipLeft bool,
	ring string, av, bv []float64, aKind, bKind string, l, m, k int64, out []float64,
	pushedBcast map[string]bool) error {
	bcName := q + ".bc"
	c.mu.Lock()
	pushed := pushedBcast[p.id]
	pushedBcast[p.id] = true
	c.mu.Unlock()
	if !pushed {
		var vals []float64
		var rows, cols int64
		var kind string
		if shipLeft {
			vals, rows, cols, kind = bv, m, k, bKind // broadcast B
		} else {
			vals, rows, cols, kind = av, l, m, aKind // broadcast A
		}
		if err := c.push(p, bcName, kind, rows, cols, 0, vals); err != nil {
			return fmt.Errorf("broadcast %s: %w", bcName, err)
		}
	}
	for _, band := range share {
		shName := fmt.Sprintf("%s.sh.%d", q, band.idx)
		outName := fmt.Sprintf("%s.out.%d", q, band.idx)
		n := band.hi - band.lo
		var vals []float64
		var rows, cols int64
		var kind string
		var aName, bName string
		if shipLeft {
			vals, rows, cols, kind = av[band.lo*m:band.hi*m], n, m, aKind
			aName, bName = shName, bcName
		} else {
			// Column band of B: strided copy out of the row-major buffer.
			vals = make([]float64, m*n)
			for i := int64(0); i < m; i++ {
				copy(vals[i*n:(i+1)*n], bv[i*k+band.lo:i*k+band.hi])
			}
			rows, cols, kind = m, n, bKind
			aName, bName = bcName, shName
		}
		if err := c.push(p, shName, kind, rows, cols, band.lo, vals); err != nil {
			return fmt.Errorf("scatter %s: %w", shName, err)
		}
		var e wbuf
		e.str(outName)
		e.str(aName)
		e.str(bName)
		e.str(ring)
		if _, _, err := p.rpc(FrameExec, e.b); err != nil {
			return fmt.Errorf("exec %s: %w", outName, err)
		}
		var f wbuf
		f.str(outName)
		t, body, err := p.rpc(FrameFetch, f.b)
		if err != nil {
			return fmt.Errorf("gather %s: %w", outName, err)
		}
		if t != FrameTileData {
			return fmt.Errorf("gather %s: unexpected frame %#x", outName, t)
		}
		var r rbuf
		r.b = body
		gr, gc := int64(r.u64()), int64(r.u64())
		got := r.f64s(int(gr * gc))
		if r.fail() {
			return fmt.Errorf("gather %s: %w", outName, r.err)
		}
		if shipLeft {
			if gr != n || gc != k {
				return fmt.Errorf("gather %s: got %dx%d, want %dx%d", outName, gr, gc, n, k)
			}
			copy(out[band.lo*k:band.hi*k], got)
		} else {
			if gr != l || gc != n {
				return fmt.Errorf("gather %s: got %dx%d, want %dx%d", outName, gr, gc, l, n)
			}
			for i := int64(0); i < l; i++ {
				copy(out[i*k+band.lo:i*k+band.hi], got[i*n:(i+1)*n])
			}
		}
	}
	return nil
}

// push ships one operand band in a FrameTilePush.
func (c *Coordinator) push(p *Peer, name, kind string, rows, cols, off int64, vals []float64) error {
	var w wbuf
	w.str(name)
	if kind == "sparse" {
		w.u8(kindSparse)
	} else {
		w.u8(kindDense)
	}
	w.u64(uint64(rows))
	w.u64(uint64(cols))
	w.u64(uint64(off))
	w.f64s(vals)
	_, _, err := p.rpc(FrameTilePush, w.b)
	return err
}

// dropQuery frees the query's namespace on every live peer,
// best-effort: a peer that died keeps nothing we can reach anyway.
func (c *Coordinator) dropQuery(q string) {
	c.mu.Lock()
	peers := make([]*Peer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	for _, p := range peers {
		var w wbuf
		w.str(q + ".")
		p.rpc(FrameDrop, w.b)
	}
}

// PeerStats fetches the named peer session's cumulative I/O counters.
func (c *Coordinator) PeerStats(id string) (ioBytes, seqOps, randOps, flops int64, err error) {
	c.mu.Lock()
	p := c.peers[id]
	c.mu.Unlock()
	if p == nil {
		return 0, 0, 0, 0, fmt.Errorf("cluster: no peer %s", id)
	}
	t, body, err := p.rpc(FrameStats, nil)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("cluster: peer %s: stats: %w", id, err)
	}
	if t != FrameStatsData {
		return 0, 0, 0, 0, fmt.Errorf("cluster: peer %s: stats answered %#x", id, t)
	}
	var r rbuf
	r.b = body
	ioBytes, seqOps = int64(r.u64()), int64(r.u64())
	randOps, flops = int64(r.u64()), int64(r.u64())
	return ioBytes, seqOps, randOps, flops, r.err
}

// Explain renders the distributed physical plan for C = A ⊗ B under the
// current ring, without executing anything: the per-site scatter,
// remote-exec, and gather steps with io, cpu, and network-block
// estimates (plan.DistMatMul).
func (c *Coordinator) Explain(a, b *riot.Matrix, ring string) (string, error) {
	l, m := a.Dims()
	m2, k := b.Dims()
	if m != m2 {
		return "", fmt.Errorf("cluster: matmul dims %dx%d · %dx%d", l, m, m2, k)
	}
	shipLeft := l*m >= m*k
	bands, label := c.bands(l, k, m, shipLeft)
	assign, err := c.place(label, bands)
	if err != nil {
		return "", err
	}
	sites := make([]string, 0, len(assign))
	for id := range assign {
		sites = append(sites, id)
	}
	sort.Strings(sites)
	shards := make([]plan.DistShard, 0, len(sites))
	for _, id := range sites {
		var span int64
		for _, band := range assign[id] {
			span += band.hi - band.lo
		}
		shards = append(shards, plan.DistShard{Site: id, Bands: len(assign[id]), Span: span})
	}
	mach := plan.Machine{
		MemElems:   c.opts.MemElems,
		BlockElems: c.opts.BlockElems,
		Frames:     int(c.opts.MemElems) / c.opts.BlockElems,
		Workers:    1,
	}
	return plan.DistMatMul(l, m, k, shards, shipLeft, mach, ring).Render(), nil
}

// ioReadFull is io.ReadFull, aliased so the import list stays tidy in
// this file's hot section.
func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
