package cluster

import (
	"bytes"
	"fmt"
	"testing"
)

// ringKeys is the table the placement tests sweep: a few arrays, many
// tiles each.
func ringKeys(arrays, tiles int) [][2]interface{} {
	var keys [][2]interface{}
	for a := 0; a < arrays; a++ {
		for t := 0; t < tiles; t++ {
			keys = append(keys, [2]interface{}{fmt.Sprintf("arr%d", a), t})
		}
	}
	return keys
}

func owners(r *Ring, keys [][2]interface{}) map[[2]interface{}]string {
	out := make(map[[2]interface{}]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k[0].(string), k[1].(int))
		if !ok {
			continue
		}
		out[k] = o
	}
	return out
}

// Placement must be a pure function of (seed, replicas, members): two
// independently built rings — as a coordinator and a remote peer would
// build them in different processes — agree on every owner, and a
// changed seed disagrees somewhere.
func TestRingDeterministic(t *testing.T) {
	keys := ringKeys(3, 64)
	a := NewRing("pr10", 64, "node0", "node1", "node2")
	b := NewRing("pr10", 64, "node2", "node0", "node1") // join order must not matter
	oa, ob := owners(a, keys), owners(b, keys)
	for _, k := range keys {
		if oa[k] != ob[k] {
			t.Fatalf("owner(%v): %q vs %q across instances", k, oa[k], ob[k])
		}
	}
	c := NewRing("other-seed", 64, "node0", "node1", "node2")
	oc := owners(c, keys)
	same := 0
	for _, k := range keys {
		if oa[k] == oc[k] {
			same++
		}
	}
	if same == len(keys) {
		t.Fatalf("placement ignored the seed: all %d owners identical", len(keys))
	}
}

// Pinned owners: FNV-1a placement is deterministic forever, so these
// constants hold in any process on any platform — the cross-process
// determinism the coordinator relies on.
func TestRingPinnedOwners(t *testing.T) {
	r := NewRing("pr10", 64, "node0", "node1", "node2")
	for _, tc := range []struct {
		array string
		tile  int
		want  string
	}{
		{"matmul/L/96x96x96", 0, "node1"},
		{"matmul/L/96x96x96", 1, "node0"},
		{"matmul/L/96x96x96", 2, "node1"},
		{"arr0", 7, "node1"},
	} {
		got, ok := r.Owner(tc.array, tc.tile)
		if !ok || got != tc.want {
			t.Errorf("Owner(%q, %d) = %q, want %q", tc.array, tc.tile, got, tc.want)
		}
	}
}

// A joining node takes over at most its fair share — and only ever
// keys it now owns: nothing moves between surviving nodes.
func TestRingRebalanceOnJoin(t *testing.T) {
	keys := ringKeys(4, 48) // 192 keys
	r := NewRing("placement", 64, "node0", "node1")
	before := owners(r, keys)
	r.Add("node2")
	after := owners(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "node2" {
				t.Fatalf("key %v moved %q -> %q, not to the joining node", k, before[k], after[k])
			}
		}
	}
	// ceil(192/3) = 64 is the fair-share bound: a join may move at most
	// the joining node's fair share of the keys (movement ≈ keys/N in
	// expectation; this seed's deterministic placement moves 54, and the
	// hash never changes, so the bound holds forever).
	if limit := (len(keys) + 2) / 3; moved > limit {
		t.Fatalf("join moved %d of %d keys, limit %d", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatalf("join moved nothing: new node owns no keys")
	}
}

// After a member is removed, no key maps to it, and keys the dead node
// never owned keep their owners.
func TestRingRemoveDeadNode(t *testing.T) {
	keys := ringKeys(4, 48)
	r := NewRing("pr10", 64, "node0", "node1", "node2")
	before := owners(r, keys)
	r.Remove("node1")
	after := owners(r, keys)
	for _, k := range keys {
		if after[k] == "node1" {
			t.Fatalf("key %v still maps to the removed node", k)
		}
		if before[k] != "node1" && before[k] != after[k] {
			t.Fatalf("key %v moved %q -> %q though its owner survived", k, before[k], after[k])
		}
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "node0" || got[1] != "node2" {
		t.Fatalf("Nodes() = %v after removal", got)
	}
	r.Remove("node0")
	r.Remove("node2")
	if _, ok := r.Owner("arr0", 0); ok {
		t.Fatalf("empty ring still claims an owner")
	}
}

// Frame encoding round-trips every payload primitive, and a truncated
// payload fails decode instead of panicking.
func TestFrameRoundTrip(t *testing.T) {
	var w wbuf
	w.str("q1.sh.0")
	w.u8(kindSparse)
	w.u64(12345678901234)
	w.f64s([]float64{0, 1.5, -2.25, 3e300})

	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameTilePush, w.b); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(&buf)
	if err != nil || ft != FrameTilePush {
		t.Fatalf("ReadFrame: type %#x err %v", ft, err)
	}
	var r rbuf
	r.b = payload
	if s := r.str(); s != "q1.sh.0" {
		t.Fatalf("str = %q", s)
	}
	if k := r.u8(); k != kindSparse {
		t.Fatalf("u8 = %d", k)
	}
	if v := r.u64(); v != 12345678901234 {
		t.Fatalf("u64 = %d", v)
	}
	vals := r.f64s(4)
	if r.fail() || len(vals) != 4 || vals[3] != 3e300 {
		t.Fatalf("f64s = %v (err %v)", vals, r.err)
	}

	var tr rbuf
	tr.b = payload[:5] // truncated mid-string
	_ = tr.str()
	if !tr.fail() {
		t.Fatalf("truncated payload decoded without error")
	}
}
