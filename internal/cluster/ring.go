// Package cluster shards RIOT's tiled arrays across riot-serve nodes
// and executes matrix work where the tiles live: a consistent-hash Ring
// places (array, tile) extents onto node IDs, a Node serves the binary
// remote-frame protocol (PROTOCOL.md §Remote frames) over any net.Conn,
// and a Coordinator scatters operand tile bands to their owners, runs
// the partial multiplies remotely, and gathers the result — the
// scatter-gather execution the ROADMAP's horizontal-scale item calls
// for. The k dimension of a multiply is never sharded, so every partial
// product reduces locally on its node and the distributed result is
// bit-identical to the single-node kernels (asserted by the harness
// tests in internal/cluster/harness).
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-node count per physical node on the
// ring. More vnodes smooth the tile distribution; the default keeps a
// join's movement close to the ideal tiles/N.
const DefaultReplicas = 64

// Ring is a consistent-hash ring placing (array, tile) keys onto node
// IDs. Placement is a pure function of (seed, replicas, member IDs):
// two rings built with the same parameters in different processes agree
// on every owner, which is what lets a coordinator and its peers derive
// the same placement without talking. Safe for concurrent use.
type Ring struct {
	seed     string
	replicas int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with the given placement seed and virtual-node
// count (replicas <= 0 uses DefaultReplicas) over the initial members.
func NewRing(seed string, replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{seed: seed, replicas: replicas, nodes: make(map[string]struct{})}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hash64 is FNV-1a over the seed and the given parts, separated by NUL
// so distinct part boundaries cannot collide into the same preimage.
// The sum is passed through a 64-bit avalanche finalizer: raw FNV-1a
// places keys that differ only in their final bytes — adjacent tile
// indices — at nearby ring positions, which collapses a whole band
// range onto one owner; the finalizer disperses them uniformly.
func (r *Ring) hash64(parts ...string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.seed))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit flips each output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec86
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual points. Adding a member twice is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{r.hash64("vnode", node, strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and all its virtual points; keys it owned move
// to their clockwise successors. Removing a non-member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Nodes returns the current members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner places one tile extent of the named array: the first virtual
// point clockwise of the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(array string, tile int) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := r.hash64("tile", array, strconv.Itoa(tile))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}
