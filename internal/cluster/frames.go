package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic is the remote-frame handshake preamble both sides send before
// their Hello frame (PROTOCOL.md §Remote frames).
const Magic = "RIOTRMT1"

// maxFramePayload bounds one frame's payload so a corrupt length prefix
// cannot ask a node to allocate unbounded memory.
const maxFramePayload = 1 << 30

// FrameType tags a remote frame.
type FrameType uint8

// Remote frame types. Requests are < 0x40; responses are >= 0x40.
const (
	// FrameHello carries the sender's node ID; both sides send one
	// after the magic preamble.
	FrameHello FrameType = 0x01
	// FramePing requests a FramePong liveness reply.
	FramePing FrameType = 0x02
	// FramePong answers FramePing.
	FramePong FrameType = 0x03
	// FrameTilePush ships one tile band of an operand to a node.
	FrameTilePush FrameType = 0x10
	// FrameExec runs one partial multiply over operands the node holds.
	FrameExec FrameType = 0x11
	// FrameFetch requests a held array's values back.
	FrameFetch FrameType = 0x12
	// FrameDrop frees every held array whose name has a given prefix.
	FrameDrop FrameType = 0x13
	// FrameStats requests the node session's I/O counters.
	FrameStats FrameType = 0x14
	// FrameOK acknowledges a request with no payload to return.
	FrameOK FrameType = 0x40
	// FrameTileData answers FrameFetch with dims + row-major values.
	FrameTileData FrameType = 0x41
	// FrameStatsData answers FrameStats.
	FrameStatsData FrameType = 0x42
	// FrameErr reports a request-level failure; the connection stays up.
	FrameErr FrameType = 0x7F
)

// WriteFrame writes one frame: a 1-byte type, a 4-byte big-endian
// payload length, and the payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(t)
	if len(payload) > maxFramePayload {
		return fmt.Errorf("cluster: frame payload %d exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Never issue a zero-length write: net.Pipe blocks empty writes
		// until a reader arrives, which deadlocks against a peer that
		// has already consumed the header and moved on.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// wbuf builds a frame payload. Strings are a 4-byte big-endian length
// plus UTF-8 bytes; integers are 8-byte big-endian; float64 values are
// 8-byte little-endian IEEE 754 bits (the host layout of the tiles).
type wbuf struct{ b []byte }

func (w *wbuf) str(s string) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	w.b = append(w.b, n[:]...)
	w.b = append(w.b, s...)
}

func (w *wbuf) u8(v uint8) { w.b = append(w.b, v) }

func (w *wbuf) u64(v uint64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	w.b = append(w.b, n[:]...)
}

func (w *wbuf) f64s(vals []float64) {
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(vals))...)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], math.Float64bits(v))
	}
}

// rbuf parses a frame payload; the first decode error sticks.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail() bool { return r.err != nil }

func (r *rbuf) need(n int) bool {
	if r.err == nil && len(r.b) < n {
		r.err = fmt.Errorf("cluster: truncated frame payload")
	}
	return r.err == nil
}

func (r *rbuf) str() string {
	if !r.need(4) {
		return ""
	}
	n := int(binary.BigEndian.Uint32(r.b))
	r.b = r.b[4:]
	if !r.need(n) {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *rbuf) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *rbuf) f64s(n int) []float64 {
	if n < 0 || !r.need(8*n) {
		if r.err == nil {
			r.err = fmt.Errorf("cluster: negative value count")
		}
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:]))
	}
	r.b = r.b[8*n:]
	return vals
}
