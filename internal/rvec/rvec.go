// Package rvec is the "plain R" baseline: an eager, vectorized evaluator
// whose every object — inputs and all intermediate results — lives in
// simulated virtual memory (internal/vmem). It reproduces the behaviour
// the paper measures for R in Figure 1: each operation in a compound
// expression materializes a full-length temporary, temporaries crowd out
// the working set, and once physical memory is exceeded the page
// replacement policy starts thrashing.
//
// Like R itself, evaluation here is best-case in one respect: a
// temporary is freed as soon as its consumer has read it ("even with a
// smart garbage collector that immediately reclaims memory ... there can
// be multiple intermediate results alive at the same time", §3).
package rvec

import (
	"fmt"

	"riot/internal/scalarop"
	"riot/internal/vmem"
)

// Engine evaluates vector programs eagerly over a vmem.Space.
type Engine struct {
	space *vmem.Space
	flops int64
	seq   int
}

// New creates an engine with pages of pageElems elements, a physical
// budget of capacityPages, of which runtimePages are locked by the
// language runtime itself (the paper's "R runtime" share of the 84 MB
// cap).
func New(pageElems, capacityPages, runtimePages int) *Engine {
	s := vmem.NewSpace(pageElems, capacityPages)
	if runtimePages > 0 {
		s.ReserveLocked(runtimePages)
	}
	return &Engine{space: s}
}

// Space exposes the underlying virtual memory (for stats).
func (e *Engine) Space() *vmem.Space { return e.space }

// Flops returns the number of element operations performed so far; the
// simulated-time model converts it to CPU seconds.
func (e *Engine) Flops() int64 { return e.flops }

// ResetStats zeroes paging counters and the flop count.
func (e *Engine) ResetStats() {
	e.space.ResetStats()
	e.flops = 0
}

// Stats returns the paging counters (Figure 1's I/O for plain R).
func (e *Engine) Stats() vmem.Stats { return e.space.Stats() }

// Vector is an eager in-memory vector.
type Vector struct {
	eng *Engine
	arr *vmem.Array
	n   int64
}

// Len returns the vector length.
func (v *Vector) Len() int64 { return v.n }

func (e *Engine) alloc(n int64) *Vector {
	e.seq++
	return &Vector{eng: e, arr: e.space.Alloc(fmt.Sprintf("obj%d", e.seq), n), n: n}
}

// Free releases the vector's pages, as R's collector does once an object
// is unreachable.
func (e *Engine) Free(v *Vector) {
	if v != nil && v.arr != nil {
		e.space.Free(v.arr)
		v.arr = nil
	}
}

// NewVector materializes gen(i) for i in [0, n).
func (e *Engine) NewVector(n int64, gen func(i int64) float64) *Vector {
	v := e.alloc(n)
	for p := 0; p < v.arr.NumPages(); p++ {
		lo, _ := v.arr.PageSpan(p)
		data := v.arr.WritePage(p)
		for k := range data {
			data[k] = gen(lo + int64(k))
		}
	}
	return v
}

// At reads one element (faulting its page if needed).
func (v *Vector) At(i int64) float64 { return v.arr.At(i) }

// binOp resolves R's vectorized arithmetic and comparisons in the
// shared scalar-op table.
func binOp(op string) (scalarop.BinFunc, error) { return scalarop.Bin(op) }

// Arith eagerly computes a op b into a fresh full-length temporary —
// exactly what R does, and the root of its memory pressure.
func (e *Engine) Arith(op string, a, b *Vector) (*Vector, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("rvec: length mismatch %d vs %d", a.n, b.n)
	}
	f, err := binOp(op)
	if err != nil {
		return nil, err
	}
	out := e.alloc(a.n)
	for p := 0; p < out.arr.NumPages(); p++ {
		pa := a.arr.ReadPage(p)
		pb := b.arr.ReadPage(p)
		po := out.arr.WritePage(p)
		for k := range po {
			po[k] = f(pa[k], pb[k])
		}
	}
	e.flops += a.n
	return out, nil
}

// ArithScalar computes a op s (or s op a if scalarLeft).
func (e *Engine) ArithScalar(op string, a *Vector, s float64, scalarLeft bool) (*Vector, error) {
	f, err := binOp(op)
	if err != nil {
		return nil, err
	}
	out := e.alloc(a.n)
	for p := 0; p < out.arr.NumPages(); p++ {
		pa := a.arr.ReadPage(p)
		po := out.arr.WritePage(p)
		for k := range po {
			if scalarLeft {
				po[k] = f(s, pa[k])
			} else {
				po[k] = f(pa[k], s)
			}
		}
	}
	e.flops += a.n
	return out, nil
}

// unaryFn resolves the vectorized math functions (R spellings and the
// SQL-style uppercase aliases) in the shared scalar-op table.
func unaryFn(name string) (scalarop.UnaryFunc, error) { return scalarop.Unary(name) }

// Map applies a unary function elementwise into a fresh temporary.
func (e *Engine) Map(name string, a *Vector) (*Vector, error) {
	f, err := unaryFn(name)
	if err != nil {
		return nil, err
	}
	out := e.alloc(a.n)
	for p := 0; p < out.arr.NumPages(); p++ {
		pa := a.arr.ReadPage(p)
		po := out.arr.WritePage(p)
		for k := range po {
			po[k] = f(pa[k])
		}
	}
	e.flops += a.n
	return out, nil
}

// IndexBy gathers d[s]: one random access into d per element of s.
func (e *Engine) IndexBy(d, s *Vector) (*Vector, error) {
	out := e.alloc(s.n)
	for p := 0; p < out.arr.NumPages(); p++ {
		ps := s.arr.ReadPage(p)
		po := out.arr.WritePage(p)
		for k := range po {
			idx := int64(ps[k])
			if idx < 0 || idx >= d.n {
				return nil, fmt.Errorf("rvec: index %d out of range [0,%d)", idx, d.n)
			}
			po[k] = d.arr.At(idx)
		}
	}
	e.flops += s.n
	return out, nil
}

// UpdateWhere implements b[b > k] <- val in place, as R's `[<-` does on
// an unshared object: a full pass over b.
func (e *Engine) UpdateWhere(a *Vector, cmpOp string, threshold, val float64) error {
	f, err := binOp(cmpOp)
	if err != nil {
		return err
	}
	for p := 0; p < a.arr.NumPages(); p++ {
		pa := a.arr.WritePage(p)
		for k := range pa {
			if f(pa[k], threshold) != 0 {
				pa[k] = val
			}
		}
	}
	e.flops += a.n
	return nil
}

// Sum reduces the vector (used to force full evaluation in benchmarks).
func (e *Engine) Sum(a *Vector) float64 {
	var s float64
	for p := 0; p < a.arr.NumPages(); p++ {
		for _, x := range a.arr.ReadPage(p) {
			s += x
		}
	}
	e.flops += a.n
	return s
}

// Fetch copies up to limit elements (limit < 0: all) out of the vector.
func (e *Engine) Fetch(a *Vector, limit int64) []float64 {
	n := a.n
	if limit >= 0 && limit < n {
		n = limit
	}
	out := make([]float64, n)
	for i := int64(0); i < n; i++ {
		out[i] = a.arr.At(i)
	}
	return out
}

// Sample returns k distinct indices in [0, n) as a vector, matching
// riotdb.SampleIndices for cross-engine comparability.
func (e *Engine) Sample(n, k int64, seed uint64, indices []int64) *Vector {
	return e.NewVector(int64(len(indices)), func(i int64) float64 {
		return float64(indices[i])
	})
}

// Matrix is an eager column-major matrix, R's default layout (§3).
type Matrix struct {
	eng  *Engine
	arr  *vmem.Array
	r, c int64
}

// NewMatrix materializes gen(i, j) in column-major order.
func (e *Engine) NewMatrix(rows, cols int64, gen func(i, j int64) float64) *Matrix {
	e.seq++
	m := &Matrix{eng: e, arr: e.space.Alloc(fmt.Sprintf("mat%d", e.seq), rows*cols), r: rows, c: cols}
	for p := 0; p < m.arr.NumPages(); p++ {
		lo, _ := m.arr.PageSpan(p)
		data := m.arr.WritePage(p)
		for k := range data {
			off := lo + int64(k)
			data[k] = gen(off%rows, off/rows)
		}
	}
	return m
}

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int64, int64) { return m.r, m.c }

// At reads element (i, j), faulting the containing page.
func (m *Matrix) At(i, j int64) float64 { return m.arr.At(j*m.r + i) }

// FreeMatrix releases the matrix's pages.
func (e *Engine) FreeMatrix(m *Matrix) {
	if m != nil && m.arr != nil {
		e.space.Free(m.arr)
		m.arr = nil
	}
}

// MatMul is R's built-in matrix multiply from Example 2: the textbook
// triple loop over column-major operands. For each column of the result
// it walks A in row-major order — the worst case for column layout, and
// the paper's motivating example for layout-aware algorithms.
func (e *Engine) MatMul(a, b *Matrix) (*Matrix, error) {
	if a.c != b.r {
		return nil, fmt.Errorf("rvec: dimension mismatch %dx%d %%*%% %dx%d", a.r, a.c, b.r, b.c)
	}
	e.seq++
	t := &Matrix{eng: e, arr: e.space.Alloc(fmt.Sprintf("mat%d", e.seq), a.r*b.c), r: a.r, c: b.c}
	for j := int64(0); j < b.c; j++ {
		for i := int64(0); i < a.r; i++ {
			var sum float64
			for k := int64(0); k < a.c; k++ {
				sum += a.arr.At(k*a.r+i) * b.arr.At(j*b.r+k)
			}
			t.arr.Set(j*t.r+i, sum)
		}
	}
	e.flops += a.r * a.c * b.c
	return t, nil
}
