package rvec

import (
	"math"
	"testing"

	"riot/internal/riotdb"
)

func TestArithCorrectness(t *testing.T) {
	e := New(64, 1024, 0)
	a := e.NewVector(100, func(i int64) float64 { return float64(i) })
	b := e.NewVector(100, func(i int64) float64 { return 3 })
	ops := map[string]func(x, y float64) float64{
		"+": func(x, y float64) float64 { return x + y },
		"-": func(x, y float64) float64 { return x - y },
		"*": func(x, y float64) float64 { return x * y },
		"/": func(x, y float64) float64 { return x / y },
		"^": math.Pow,
	}
	for op, f := range ops {
		out, err := e.Arith(op, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 100; i += 17 {
			if got, want := out.At(i), f(float64(i), 3); got != want {
				t.Fatalf("%s: [%d]=%v want %v", op, i, got, want)
			}
		}
		e.Free(out)
	}
}

func TestComparisonAndLogical(t *testing.T) {
	e := New(64, 1024, 0)
	a := e.NewVector(10, func(i int64) float64 { return float64(i) })
	gt, err := e.ArithScalar(">", a, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		want := 0.0
		if i > 4 {
			want = 1
		}
		if gt.At(i) != want {
			t.Fatalf("gt[%d]=%v", i, gt.At(i))
		}
	}
}

func TestScalarLeft(t *testing.T) {
	e := New(64, 1024, 0)
	a := e.NewVector(5, func(i int64) float64 { return float64(i) })
	out, err := e.ArithScalar("-", a, 10, true) // 10 - a
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 7 {
		t.Fatalf("10-3=%v", out.At(3))
	}
}

func TestMapAndSum(t *testing.T) {
	e := New(64, 1024, 0)
	a := e.NewVector(100, func(i int64) float64 { return float64(i * i) })
	s, err := e.Map("sqrt", a)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Sum(s); got != 4950 {
		t.Fatalf("sum=%v", got)
	}
}

func TestIndexByGather(t *testing.T) {
	e := New(64, 1024, 0)
	d := e.NewVector(1000, func(i int64) float64 { return float64(i) * 2 })
	s := e.NewVector(5, func(i int64) float64 { return float64(i * 100) })
	z, err := e.IndexBy(d, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if z.At(i) != float64(i*100*2) {
			t.Fatalf("z[%d]=%v", i, z.At(i))
		}
	}
	s2 := e.NewVector(1, func(int64) float64 { return 5000 })
	if _, err := e.IndexBy(d, s2); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestUpdateWhere(t *testing.T) {
	e := New(64, 1024, 0)
	b := e.NewVector(20, func(i int64) float64 { return float64(i * i) })
	if err := e.UpdateWhere(b, ">", 100, 100); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		want := float64(i * i)
		if want > 100 {
			want = 100
		}
		if b.At(i) != want {
			t.Fatalf("b[%d]=%v want %v", i, b.At(i), want)
		}
	}
}

func TestThrashingWhenTemporariesExceedMemory(t *testing.T) {
	// Physical memory holds ~2 vectors; Example 1's line (1) needs ~5
	// alive at once, so plain R must page heavily while a run that fits
	// must not page at all.
	pageElems := 64
	n := int64(64 * 64) // 64 pages per vector
	run := func(capacityPages int) (int64, float64) {
		e := New(pageElems, capacityPages, 0)
		x := e.NewVector(n, func(i int64) float64 { return float64(i % 91) })
		y := e.NewVector(n, func(i int64) float64 { return float64(i % 83) })
		d := example1Distance(t, e, x, y)
		sum := e.Sum(d)
		return e.Stats().SwapOps(), sum
	}
	ioSmall, sumSmall := run(2*64 + 40) // ~2 vectors + slack: must thrash
	ioBig, sumBig := run(64 * 64)       // plenty: no paging at all
	if sumSmall != sumBig {
		t.Fatalf("results differ under memory pressure: %v vs %v", sumSmall, sumBig)
	}
	if ioBig != 0 {
		t.Fatalf("ample-memory run paged %d times", ioBig)
	}
	if ioSmall == 0 {
		t.Fatal("constrained run did not page")
	}
}

// example1Distance computes line (1) of Example 1 the way R does,
// freeing each temporary as soon as its consumer is done.
func example1Distance(t *testing.T, e *Engine, x, y *Vector) *Vector {
	t.Helper()
	sq := func(v *Vector, c float64) *Vector {
		d, err := e.ArithScalar("-", v, c, false)
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.Arith("*", d, d)
		if err != nil {
			t.Fatal(err)
		}
		e.Free(d)
		return s
	}
	a1, b1 := sq(x, 3), sq(y, 4)
	s1, err := e.Arith("+", a1, b1)
	if err != nil {
		t.Fatal(err)
	}
	e.Free(a1)
	e.Free(b1)
	r1, err := e.Map("sqrt", s1)
	if err != nil {
		t.Fatal(err)
	}
	e.Free(s1)
	a2, b2 := sq(x, 100), sq(y, 200)
	s2, err := e.Arith("+", a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	e.Free(a2)
	e.Free(b2)
	r2, err := e.Map("sqrt", s2)
	if err != nil {
		t.Fatal(err)
	}
	e.Free(s2)
	d, err := e.Arith("+", r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	e.Free(r1)
	e.Free(r2)
	return d
}

func TestAgreesWithRIOTDBOnExample1(t *testing.T) {
	// Cross-engine check: plain R and RIOT-DB compute identical d[s].
	n := int64(5000)
	e := New(64, 1<<16, 0)
	x := e.NewVector(n, func(i int64) float64 { return float64(i % 997) })
	y := e.NewVector(n, func(i int64) float64 { return float64(i % 991) })
	d := example1Distance(t, e, x, y)
	idx := riotdb.SampleIndices(n, 50, 42)
	s := e.NewVector(int64(len(idx)), func(i int64) float64 { return float64(idx[i]) })
	z, err := e.IndexBy(d, s)
	if err != nil {
		t.Fatal(err)
	}
	for k := range idx {
		i := idx[k]
		xi, yi := float64(i%997), float64(i%991)
		want := math.Sqrt((xi-3)*(xi-3)+(yi-4)*(yi-4)) +
			math.Sqrt((xi-100)*(xi-100)+(yi-200)*(yi-200))
		if math.Abs(z.At(int64(k))-want) > 1e-9 {
			t.Fatalf("z[%d]=%v want %v", k, z.At(int64(k)), want)
		}
	}
}

func TestFlopAccounting(t *testing.T) {
	e := New(64, 1024, 0)
	a := e.NewVector(100, func(i int64) float64 { return 1 })
	b := e.NewVector(100, func(i int64) float64 { return 2 })
	if _, err := e.Arith("+", a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Map("sqrt", a); err != nil {
		t.Fatal(err)
	}
	if e.Flops() != 200 {
		t.Fatalf("flops=%d, want 200", e.Flops())
	}
	e.ResetStats()
	if e.Flops() != 0 {
		t.Fatal("reset did not clear flops")
	}
}

func TestMatrixColumnMajorAndMatMul(t *testing.T) {
	e := New(64, 1<<16, 0)
	a := e.NewMatrix(3, 4, func(i, j int64) float64 { return float64(i*10 + j) })
	if a.At(2, 3) != 23 {
		t.Fatalf("a[2,3]=%v", a.At(2, 3))
	}
	b := e.NewMatrix(4, 2, func(i, j int64) float64 { return float64(i + j) })
	c, err := e.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, cc := c.Dims()
	if r != 3 || cc != 2 {
		t.Fatalf("dims %dx%d", r, cc)
	}
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			var want float64
			for k := int64(0); k < 4; k++ {
				want += float64(i*10+k) * float64(k+j)
			}
			if c.At(i, j) != want {
				t.Fatalf("c[%d,%d]=%v want %v", i, j, c.At(i, j), want)
			}
		}
	}
	if _, err := e.MatMul(b, a); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMatMulColumnLayoutPagesMoreThanRowFriendly(t *testing.T) {
	// Example 2's point: with column-major A and a tight memory budget,
	// the naive multiply faults heavily because it reads A row-wise.
	pageElems := 16
	n := int64(48)
	run := func(capacityPages int) int64 {
		e := New(pageElems, capacityPages, 0)
		a := e.NewMatrix(n, n, func(i, j int64) float64 { return 1 })
		b := e.NewMatrix(n, n, func(i, j int64) float64 { return 1 })
		e.ResetStats()
		if _, err := e.MatMul(a, b); err != nil {
			t.Fatal(err)
		}
		return e.Stats().SwapOps()
	}
	tight := run(int(3*n*n/int64(pageElems)/2 + 4)) // half the data fits
	ample := run(1 << 12)
	if ample != 0 {
		t.Fatalf("ample run paged %d", ample)
	}
	if tight == 0 {
		t.Fatal("tight run did not page")
	}
}
