package plan

import (
	"fmt"

	"riot/internal/costmodel"
)

// DistShard is one remote site's share of a distributed multiply: how
// many tile bands of the sharded operand it owns and the total rows
// (shard-left) or columns (shard-right) those bands span.
type DistShard struct {
	Site  string
	Bands int
	Span  int64
}

// DistMatMul builds the physical plan for a distributed tiled multiply
// C(l×k) = A(l×m) ⊗ B(m×k) over the given placement: per site, a
// scatter step shipping the broadcast operand plus the site's bands, a
// remote-exec step costed as that site's local tiled multiply, and a
// gather step pulling the partial result back. shipLeft means A is
// sharded by tile-row band (B broadcast); otherwise B is sharded by
// tile-col band (A broadcast). The k dimension is never sharded, so no
// cross-site reduction step exists — partials reduce entirely locally.
//
// Network traffic is costed in device-sized blocks (B·8 bytes) at
// costmodel.NetBytesPerSec with one round trip per frame, rendered in
// Explain's net column alongside each step's io and cpu estimates.
func DistMatMul(l, m, k int64, shards []DistShard, shipLeft bool, mach Machine, ring string) *Plan {
	p := &Plan{
		Strategy: CostBased,
		Machine:  mach,
		Steps:    make([]Step, 0, 3*len(shards)),
	}
	cp := mach.params()
	ringName := ring
	if ringName == "" {
		ringName = "standard"
	}
	var bcastElems, bcastDesc = int64(0), ""
	if shipLeft {
		bcastElems = m * k
		bcastDesc = fmt.Sprintf("B %dx%d", m, k)
	} else {
		bcastElems = l * m
		bcastDesc = fmt.Sprintf("A %dx%d", l, m)
	}
	bcastBlocks := costmodel.StreamBlocks(float64(bcastElems), cp)
	for _, sh := range shards {
		var shardElems, outElems int64
		var shardDesc, execDesc string
		var el, em, ek float64 // the site's local multiply dims
		if shipLeft {
			shardElems = sh.Span * m
			outElems = sh.Span * k
			shardDesc = fmt.Sprintf("A rows [%d bands, %d rows]", sh.Bands, sh.Span)
			el, em, ek = float64(sh.Span), float64(m), float64(k)
		} else {
			shardElems = m * sh.Span
			outElems = l * sh.Span
			shardDesc = fmt.Sprintf("B cols [%d bands, %d cols]", sh.Bands, sh.Span)
			el, em, ek = float64(l), float64(m), float64(sh.Span)
		}
		execDesc = fmt.Sprintf("partial %s multiply %.0fx%.0f · %.0fx%.0f", ringName, el, em, em, ek)
		shardBlocks := costmodel.StreamBlocks(float64(shardElems), cp)
		outBlocks := costmodel.StreamBlocks(float64(outElems), cp)

		scatterNet := bcastBlocks + shardBlocks
		p.Steps = append(p.Steps, Step{
			Kind:          StepScatter,
			Site:          sh.Site,
			Desc:          fmt.Sprintf("ship %s + %s", bcastDesc, shardDesc),
			EstNetBlocks:  scatterNet,
			EstNetSeconds: costmodel.NetSeconds(scatterNet, float64(sh.Bands+1), cp),
			Provenance:    "broadcast the smaller operand to where the larger one's tiles live",
		})

		execRead := costmodel.SquareTiled(el, em, ek, cp)
		flops := el * em * ek
		p.Steps = append(p.Steps, Step{
			Kind:           StepRemoteExec,
			Site:           sh.Site,
			Desc:           execDesc,
			EstReadBlocks:  execRead,
			EstWriteBlocks: outBlocks,
			EstSeconds:     mach.seconds(execRead+outBlocks, 0),
			EstFlops:       flops,
			EstCPUSeconds:  costmodel.CPUSeconds(flops),
			Provenance:     "k is whole on every site: partial products reduce locally, no cross-site combine",
		})

		p.Steps = append(p.Steps, Step{
			Kind:          StepGather,
			Site:          sh.Site,
			Desc:          fmt.Sprintf("collect C band [%d elems]", outElems),
			EstNetBlocks:  outBlocks,
			EstNetSeconds: costmodel.NetSeconds(outBlocks, float64(sh.Bands), cp),
			Provenance:    "assemble the result at the coordinator",
		})
	}
	for _, s := range p.Steps {
		p.EstBlocks += s.EstReadBlocks + s.EstWriteBlocks
		p.EstSeconds += s.EstSeconds
		p.EstCPUSeconds += s.EstCPUSeconds
		p.EstNetBlocks += s.EstNetBlocks
		p.EstNetSeconds += s.EstNetSeconds
	}
	return p
}
