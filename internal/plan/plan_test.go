package plan_test

import (
	"strings"
	"testing"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/plan"
	"riot/internal/sparse"
)

// harness builds a graph over a real pool so sources are honest.
type harness struct {
	t    *testing.T
	g    *algebra.Graph
	pool *buffer.Pool
}

func newHarness(t *testing.T, blockElems, frames int) *harness {
	t.Helper()
	dev := disk.NewDevice(blockElems)
	return &harness{t: t, g: algebra.NewGraph(), pool: buffer.New(dev, frames)}
}

func (h *harness) machine() plan.Machine {
	return plan.Machine{
		MemElems:   h.pool.MemoryElems(),
		BlockElems: h.pool.Device().BlockElems(),
		Frames:     h.pool.Capacity(),
		Workers:    1,
	}
}

func (h *harness) opts(s plan.Strategy) plan.Options {
	return plan.Options{Strategy: s, Machine: h.machine(), FuseElementwise: true}
}

func (h *harness) vec(name string, n int64) *algebra.Node {
	h.t.Helper()
	v, err := array.NewVector(h.pool, name, n)
	if err != nil {
		h.t.Fatal(err)
	}
	return h.g.SourceVec(v)
}

func (h *harness) must(n *algebra.Node, err error) *algebra.Node {
	h.t.Helper()
	if err != nil {
		h.t.Fatal(err)
	}
	return n
}

// sharedGatherRoot builds (x[s]-3)*(x[s]-3) + (x[s]-100)*(x[s]-100):
// a gather with two consumers under a fused elementwise crown.
func sharedGatherRoot(h *harness, n, k int64) (*algebra.Node, *algebra.Node) {
	x := h.vec("x", n)
	s := h.vec("s", k)
	g := h.must(h.g.Gather(x, s))
	a := h.must(h.g.ScalarOp("-", g, 3, false))
	aq := h.must(h.g.ElemBinary("*", a, a))
	b := h.must(h.g.ScalarOp("-", g, 100, false))
	bq := h.must(h.g.ElemBinary("*", b, b))
	return h.must(h.g.ElemBinary("+", aq, bq)), g
}

// TestHeuristicMatchesSeedPolicy checks the Heuristic strategy encodes
// the seed executor's exact rules: shared subtrees containing a gather
// are materialized, shared cheap elementwise subtrees are not, sources
// stream.
func TestHeuristicMatchesSeedPolicy(t *testing.T) {
	h := newHarness(t, 1024, 64)
	root, g := sharedGatherRoot(h, 16384, 2048)
	p := plan.Build(root, h.opts(plan.Heuristic))

	if !p.ShouldMaterialize(g) {
		t.Error("shared gather must materialize under the heuristic")
	}
	if d, _ := p.Decision(root); d != plan.Pipeline {
		t.Errorf("root decision = %v, want pipeline", d)
	}

	// A shared cheap elementwise node (no gather/reduce/matmul below)
	// must stay pipelined.
	x := h.vec("y", 16384)
	xs := h.must(h.g.ScalarOp("-", x, 3, false))
	sq := h.must(h.g.ElemBinary("*", xs, xs))
	p2 := plan.Build(sq, h.opts(plan.Heuristic))
	if p2.ShouldMaterialize(xs) {
		t.Error("shared cheap elementwise subtree must pipeline under the heuristic")
	}
	if d, _ := p2.Decision(x); d != plan.Stream {
		t.Error("source must stream")
	}
	if p2.Refs(xs) != 2 {
		t.Errorf("refs(xs) = %d, want 2", p2.Refs(xs))
	}
}

// TestCostBasedPipelinesResidentShared checks the M-sensitivity the
// heuristic lacks: with the gather's data resident in memory, the
// cost-based strategy recomputes the shared gather instead of storing a
// temporary; when the data spills, it materializes like the heuristic.
func TestCostBasedPipelinesResidentShared(t *testing.T) {
	// 16 data blocks in a 64-frame pool: resident.
	h := newHarness(t, 1024, 64)
	root, g := sharedGatherRoot(h, 16384, 2048)
	p := plan.Build(root, h.opts(plan.CostBased))
	if p.ShouldMaterialize(g) {
		t.Error("cost-based planner must pipeline a gather over resident data")
	}

	// 512 data blocks in an 8-frame pool: spills, temp wins.
	h2 := newHarness(t, 1024, 8)
	root2, g2 := sharedGatherRoot(h2, 512*1024, 2048)
	p2 := plan.Build(root2, h2.opts(plan.CostBased))
	if !p2.ShouldMaterialize(g2) {
		t.Error("cost-based planner must materialize a shared gather over spilled data")
	}
}

// TestPrepareStepsOrder checks the materialization schedule is in
// dependency order and reachability-filtered.
func TestPrepareStepsOrder(t *testing.T) {
	h := newHarness(t, 1024, 8)
	// inner = x[s] (shared), outer = inner[s2] (shared) — nested gathers
	// force two materialize steps where inner must precede outer.
	x := h.vec("x", 512*1024)
	s := h.vec("s", 4096)
	s2 := h.vec("s2", 4096)
	inner := h.must(h.g.Gather(x, s))
	outer := h.must(h.g.Gather(inner, s2))
	oa := h.must(h.g.ScalarOp("-", outer, 1, false))
	ob := h.must(h.g.ScalarOp("-", outer, 2, false))
	sum := h.must(h.g.ElemBinary("+", h.must(h.g.ElemBinary("*", oa, oa)), h.must(h.g.ElemBinary("*", ob, ob))))

	p := plan.Build(sum, h.opts(plan.Heuristic))
	steps := p.PrepareSteps(sum)
	var idxInner, idxOuter = -1, -1
	for i, st := range steps {
		switch st.Node {
		case inner:
			idxInner = i
		case outer:
			idxOuter = i
		}
	}
	if idxInner == -1 || idxOuter == -1 {
		t.Fatalf("missing steps: inner=%d outer=%d (steps=%d)", idxInner, idxOuter, len(steps))
	}
	if idxInner > idxOuter {
		t.Errorf("inner gather scheduled at %d after outer at %d", idxInner, idxOuter)
	}
	// Reachability filter: preparing only oa's subtree keeps both (outer
	// is below oa), but preparing s2 alone needs nothing.
	if got := p.PrepareSteps(s2); len(got) != 0 {
		t.Errorf("PrepareSteps(source) = %d steps, want 0", len(got))
	}
}

// TestGatherSourceStep checks a gather over a non-source data child
// schedules a gather-source materialization for the parallel prep pass
// without marking the node Materialize for the fused pipeline.
func TestGatherSourceStep(t *testing.T) {
	h := newHarness(t, 1024, 64)
	x := h.vec("x", 16384)
	s := h.vec("s", 128)
	half := h.must(h.g.ScalarOp("/", x, 2, false))
	gathered := h.must(h.g.Gather(half, s))
	p := plan.Build(gathered, h.opts(plan.Heuristic))

	var found bool
	for _, st := range p.PrepareSteps(gathered) {
		if st.Node == half && st.Kind == plan.StepGatherSource {
			found = true
		}
	}
	if !found {
		t.Error("missing gather-source step for non-source data child")
	}
	if p.ShouldMaterialize(half) {
		t.Error("gather data child must not be marked Materialize for the pipeline")
	}
}

// TestMatMulAlgoSelection checks kernel selection per operand layout:
// square-tiled operands pick the cheaper of the two formulas, mixed
// layouts fall back to row-tile BNLJ.
func TestMatMulAlgoSelection(t *testing.T) {
	h := newHarness(t, 1024, 48)
	mk := func(name string, r, c int64, shape array.TileShape) *algebra.Node {
		m, err := array.NewMatrix(h.pool, name, r, c, array.Options{Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		return h.g.SourceMat(m)
	}
	a := mk("a", 256, 256, array.SquareTiles)
	b := mk("b", 256, 256, array.SquareTiles)
	ab := h.must(h.g.MatMul(a, b))
	p := plan.Build(ab, h.opts(plan.Heuristic))
	if got := p.Algo(ab); got != plan.AlgoSquareTiled {
		t.Errorf("square operands at tight memory: algo = %v, want square-tiled", got)
	}

	c := mk("c", 256, 256, array.RowTiles)
	ac := h.must(h.g.MatMul(a, c))
	p2 := plan.Build(ac, h.opts(plan.Heuristic))
	if got := p2.Algo(ac); got != plan.AlgoBNLJRow {
		t.Errorf("mixed layouts: algo = %v, want bnlj(row)", got)
	}

	// A chained multiply's intermediate inherits the square layout, so
	// the outer node must still be eligible for square tiling.
	d := mk("d", 256, 256, array.SquareTiles)
	abd := h.must(h.g.MatMul(ab, d))
	p3 := plan.Build(abd, h.opts(plan.Heuristic))
	if got := p3.Algo(abd); got == plan.AlgoBNLJRow {
		t.Errorf("square intermediate: algo = %v, want a square-tile kernel", got)
	}
	// Both multiplies appear as steps, children first.
	var order []plan.MatMulAlgo
	for _, st := range p3.Steps {
		if st.Kind == plan.StepMatMul {
			order = append(order, st.Algo)
			if st.EstReadBlocks <= 0 || st.EstWriteBlocks <= 0 {
				t.Errorf("matmul step missing cost estimate: %+v", st)
			}
		}
	}
	if len(order) != 2 {
		t.Fatalf("want 2 matmul steps, got %d", len(order))
	}
}

// TestAblationKnobs checks the no-fusion and eager-update modes force
// materialization under both strategies.
func TestAblationKnobs(t *testing.T) {
	h := newHarness(t, 1024, 64)
	x := h.vec("x", 16384)
	xs := h.must(h.g.ScalarOp("-", x, 3, false))
	up := h.must(h.g.UpdateMask(xs, ">", 100, 100))

	for _, s := range []plan.Strategy{plan.Heuristic, plan.CostBased} {
		o := h.opts(s)
		o.FuseElementwise = false
		p := plan.Build(up, o)
		if !p.ShouldMaterialize(xs) || !p.ShouldMaterialize(up) {
			t.Errorf("%s: no-fusion must materialize every interior node", s)
		}

		o = h.opts(s)
		o.EagerUpdates = true
		p = plan.Build(up, o)
		if !p.ShouldMaterialize(up) {
			t.Errorf("%s: eager updates must materialize the UpdateMask", s)
		}
		if p.ShouldMaterialize(xs) {
			t.Errorf("%s: eager updates must not materialize below the update", s)
		}
	}
}

// TestRender spot-checks the Explain rendering: header, steps, totals,
// and the decision table.
func TestRender(t *testing.T) {
	h := newHarness(t, 1024, 64)
	root, _ := sharedGatherRoot(h, 16384, 2048)
	p := plan.Build(root, h.opts(plan.Heuristic))
	out := p.Render()
	for _, want := range []string{
		"physical plan: strategy=heuristic",
		"frames=64",
		"materialize",
		"output",
		"total est:",
		"decisions:",
		"stream",
		"pipeline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if p.EstBlocks <= 0 || p.EstSeconds <= 0 {
		t.Errorf("plan totals not populated: blocks=%g sec=%g", p.EstBlocks, p.EstSeconds)
	}
}

// TestWorthMemoization builds a deep shared chain (the shape that made
// the unmemoized worthMaterializing quadratic) and checks Build stays
// linear-ish — it completes instantly even at depth 2000 with every
// node shared twice.
func TestWorthMemoization(t *testing.T) {
	h := newHarness(t, 1024, 64)
	x := h.vec("x", 1024)
	s := h.vec("s", 64)
	n := h.must(h.g.Gather(x, s)) // worth=true at the bottom
	for i := 0; i < 2000; i++ {
		n = h.must(h.g.ElemBinary("+", n, n)) // every level shares its child twice
	}
	root := h.must(h.g.ElemBinary("+", n, n))
	p := plan.Build(root, h.opts(plan.Heuristic))
	if !p.ShouldMaterialize(n) {
		t.Error("deep shared chain over a gather must materialize")
	}
}

// TestSparseAlgoSelection checks the planner reads operand kinds and
// tile directories: sparse operands get tile-skipping kernels with
// nnz-based block estimates, and the rendered plan names the kernel.
func TestSparseAlgoSelection(t *testing.T) {
	h := newHarness(t, 64, 64) // 8×8 square tiles
	dense, err := array.NewMatrix(h.pool, "d", 64, 64, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	band, err := sparse.New(h.pool, "s", 64, 64, array.Options{Shape: array.SquareTiles},
		func(i, j int64) float64 {
			if i == j {
				return 1
			}
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	dn := h.g.SourceMat(dense)
	sn := h.g.SourceSparseMat(band)

	cases := []struct {
		name string
		l, r *algebra.Node
		want plan.MatMulAlgo
	}{
		{"sparse×sparse", sn, sn, plan.AlgoSparseSparse},
		{"sparse×dense", sn, dn, plan.AlgoSparseDense},
		{"dense×sparse", dn, sn, plan.AlgoDenseSparse},
	}
	for _, c := range cases {
		root := h.must(h.g.MatMul(c.l, c.r))
		p := plan.Build(root, h.opts(plan.CostBased))
		if got := p.Algo(root); got != c.want {
			t.Errorf("%s: algo = %v, want %v", c.name, got, c.want)
		}
		var step *plan.Step
		for i := range p.Steps {
			if p.Steps[i].Kind == plan.StepMatMul && p.Steps[i].Node == root {
				step = &p.Steps[i]
			}
		}
		if step == nil {
			t.Fatalf("%s: no matmul step", c.name)
		}
		if step.EstNNZ <= 0 {
			t.Errorf("%s: EstNNZ = %g, want > 0", c.name, step.EstNNZ)
		}
		if !strings.Contains(p.Render(), c.want.String()) {
			t.Errorf("%s: rendered plan missing %q:\n%s", c.name, c.want.String(), p.Render())
		}
		if !strings.Contains(p.Render(), "nnz=") {
			t.Errorf("%s: rendered plan missing nnz estimate", c.name)
		}
	}
	// The sparse operand's directory bounds the estimate: the diagonal
	// sparse matrix stores 8 of 64 tiles, so the sparse×dense read
	// estimate must undercut the dense square-tiled formula's for the
	// same shape.
	sroot := h.must(h.g.MatMul(sn, dn))
	droot := h.must(h.g.MatMul(dn, dn))
	sp := plan.Build(sroot, h.opts(plan.CostBased))
	dp := plan.Build(droot, h.opts(plan.CostBased))
	if sp.EstBlocks >= dp.EstBlocks {
		t.Errorf("sparse×dense est %g blocks, dense %g: sparse must be cheaper", sp.EstBlocks, dp.EstBlocks)
	}
}
