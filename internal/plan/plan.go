// Package plan is RIOT's physical planner (§5): it takes the
// opt-rewritten expression DAG plus the live machine parameters (buffer
// pool frames M/B, block size B) and fixes, before execution begins,
// every decision the executor used to make on the fly:
//
//   - per-node evaluation mode — Pipeline (computed inline by the fused
//     streaming pass), Materialize (stored once into a temporary and
//     reused by every consumer), or Stream (a stored source read
//     directly);
//   - the schedule of materialization steps, in dependency order (the
//     order the parallel preparation pass runs them in);
//   - the multiply algorithm for every MatMul node (square-tiled vs the
//     BNLJ-inspired kernel, by the analytic formulas in
//     internal/costmodel);
//   - per-step estimated I/O in blocks and simulated seconds.
//
// Two strategies exist. Heuristic reproduces the seed executor's
// hard-coded rules exactly (shared subtrees containing a gather, reduce
// or multiply are materialized), in a single memoized pass; it is the
// deterministic configuration whose I/O counters the golden tests pin.
// CostBased makes the same choices from the cost formulas, so the
// decision adapts to the machine: a shared subexpression whose inputs
// fit in memory is recomputed from the buffer pool instead of written
// to disk.
//
// The executor (internal/exec) is a plan interpreter: it builds a Plan
// per Force call and reads its decision table instead of re-deriving
// policy. Explain — plumbed through internal/engine to the public riot
// API and riot-run — renders the same Plan as text.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/costmodel"
)

// Strategy selects how plan-time decisions are made.
type Strategy int

// Planner strategies.
const (
	// Heuristic reproduces the seed executor's materialization rules
	// (worth-materializing subtree test) and is the default.
	Heuristic Strategy = iota
	// CostBased decides Pipeline vs Materialize from the analytic I/O
	// formulas and the live machine parameters.
	CostBased
)

// String names the strategy for Explain headers and logs.
func (s Strategy) String() string {
	switch s {
	case Heuristic:
		return "heuristic"
	case CostBased:
		return "cost-based"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Machine carries the live machine parameters the planner costs
// against: the same M and B the buffer pool enforces at run time.
type Machine struct {
	MemElems   int64 // M: buffer-pool memory in float64 elements
	BlockElems int   // B: block size in float64 elements
	Frames     int   // frame budget M/B
	Workers    int   // executor parallelism (display only)
	Readahead  bool  // I/O scheduler on: streams count as sequential
}

func (m Machine) params() costmodel.Params {
	return costmodel.Params{MemElems: float64(m.MemElems), BlockElems: float64(m.BlockElems)}
}

// seconds converts estimated block traffic into simulated seconds under
// the planner's disk timing (costmodel.SeqBytesPerSec/RandSeekSec).
func (m Machine) seconds(blocks, rand float64) float64 {
	blockBytes := float64(m.BlockElems) * 8
	return blocks*blockBytes/costmodel.SeqBytesPerSec + rand*costmodel.RandSeekSec
}

// Options configures a Build.
type Options struct {
	Strategy Strategy
	Machine  Machine
	// FuseElementwise=false is the ablation that materializes every
	// interior vector node (plain R's evaluation inside RIOT); the
	// planner honors it under both strategies.
	FuseElementwise bool
	// EagerUpdates forces materialization of UpdateMask nodes (R /
	// RIOT-DB update semantics).
	EagerUpdates bool
	// Cache is the planner's view of the cross-session result cache for
	// this Force call. Nil when the cache is off — in which case every
	// decision below is byte-identical to the cache-free planner.
	Cache *CacheView
}

// CacheView is what the planner needs to know about the result cache:
// which nodes the executor already holds a cached materialization for
// (the probe happened before planning, so plan and execution agree
// exactly), and which nodes would be installed on a miss. The planner
// turns hits into zero-I/O cached steps and prunes their subtrees;
// install candidacy only steers the root decision and the provenance
// annotations.
type CacheView struct {
	// Hit reports whether n's result is already acquired from the cache.
	Hit func(n *algebra.Node) bool
	// Installable reports whether n's result would be installed into the
	// cache when materialized (the DAG is hashable and n is not a hit).
	Installable func(n *algebra.Node) bool
	// Describe renders n's cache key for Explain (short hex), empty if
	// the node has none.
	Describe func(n *algebra.Node) string
}

func (cv *CacheView) hit(n *algebra.Node) bool {
	return cv != nil && cv.Hit != nil && cv.Hit(n)
}

func (cv *CacheView) installable(n *algebra.Node) bool {
	return cv != nil && cv.Installable != nil && cv.Installable(n)
}

func (cv *CacheView) describe(n *algebra.Node) string {
	if cv == nil || cv.Describe == nil {
		return ""
	}
	return cv.Describe(n)
}

// Decision is a node's planned evaluation mode.
type Decision int

// Node decisions.
const (
	// Pipeline: computed inline by the fused streaming pass, no storage.
	Pipeline Decision = iota
	// Materialize: evaluated once into a temporary; all consumers reuse
	// the memo entry.
	Materialize
	// Stream: a stored source, read directly.
	Stream
	// Cached: served from the cross-session result cache — the subtree
	// below is never executed at all.
	Cached
)

// String names the decision for Explain's per-node table.
func (d Decision) String() string {
	switch d {
	case Pipeline:
		return "pipeline"
	case Materialize:
		return "materialize"
	case Stream:
		return "stream"
	case Cached:
		return "cached"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// MatMulAlgo is the planned kernel for a MatMul node.
type MatMulAlgo int

// Multiply algorithms.
const (
	AlgoNone MatMulAlgo = iota
	// AlgoSquareTiled is the Appendix A schedule over square tiles.
	AlgoSquareTiled
	// AlgoBNLJSquare is the §3 BNLJ-inspired algorithm on square-tiled
	// operands (chosen when it is cheaper at this size).
	AlgoBNLJSquare
	// AlgoBNLJRow is the BNLJ-inspired algorithm over row tiles, the
	// fallback for mixed operand layouts.
	AlgoBNLJRow
	// AlgoSparseDense is the tile-skipping kernel for a sparse left
	// operand: k-steps whose A tile is empty cost nothing.
	AlgoSparseDense
	// AlgoDenseSparse is its mirror for a sparse right operand.
	AlgoDenseSparse
	// AlgoSparseSparse multiplies two sparse operands into a sparse
	// result, skipping k-steps unless both tiles are non-empty and
	// writing no block for all-zero output tiles.
	AlgoSparseSparse
)

// String names the kernel for Explain's multiply schedule.
func (a MatMulAlgo) String() string {
	switch a {
	case AlgoNone:
		return "none"
	case AlgoSquareTiled:
		return "square-tiled"
	case AlgoBNLJSquare:
		return "bnlj(square)"
	case AlgoBNLJRow:
		return "bnlj(row)"
	case AlgoSparseDense:
		return "sparse×dense"
	case AlgoDenseSparse:
		return "dense×sparse"
	case AlgoSparseSparse:
		return "sparse×sparse"
	}
	return fmt.Sprintf("MatMulAlgo(%d)", int(a))
}

// Sparse reports whether the algorithm is one of the tile-skipping
// sparse kernels (whose cost estimates are nnz-based).
func (a MatMulAlgo) Sparse() bool {
	return a == AlgoSparseDense || a == AlgoDenseSparse || a == AlgoSparseSparse
}

// StepKind classifies a plan step.
type StepKind int

// Step kinds.
const (
	// StepMaterialize stores a shared vector subexpression once.
	StepMaterialize StepKind = iota
	// StepGatherSource stores a gather's non-source data child so the
	// gather has random access to it (scheduled before the gather runs;
	// the sequential executor performs it lazily at first access).
	StepGatherSource
	// StepMatMul runs one out-of-core multiply.
	StepMatMul
	// StepOutput is the final fused pass that produces the root.
	StepOutput
	// StepCached serves a node from the cross-session result cache: the
	// node's whole subtree is pruned from the schedule and its result
	// read back with zero device I/O for production.
	StepCached
	// StepScatter ships operand tile bands to a remote site (distributed
	// plans only; its traffic is network blocks, not device blocks).
	StepScatter
	// StepRemoteExec runs a partial multiply on a remote site; its io and
	// cpu estimates are that site's local work.
	StepRemoteExec
	// StepGather pulls a remote site's partial result back to the
	// coordinator over the network.
	StepGather
)

// Step is one scheduled unit of work with its cost estimate.
type Step struct {
	Node *algebra.Node
	Kind StepKind
	Algo MatMulAlgo // StepMatMul only
	Refs int        // consumers (StepMaterialize only)
	// Estimated device traffic for the step, in blocks; EstRandOps of
	// the reads are random positionings.
	EstReadBlocks  float64
	EstWriteBlocks float64
	EstRandOps     float64
	// EstSeconds is the step's simulated I/O time.
	EstSeconds float64
	// EstFlops counts the step's scalar arithmetic (one op per element
	// per fused compute node; l·m·n for a dense multiply, nnz-scaled for
	// sparse ones); EstCPUSeconds converts it at costmodel.FlopsPerSec.
	// CPU time is reported beside EstSeconds, not added to it: with
	// prefetching the two overlap, so the larger term dominates.
	EstFlops      float64
	EstCPUSeconds float64
	// EstNNZ is the nonzero estimate behind a sparse step's block
	// numbers: the sparse operand's stored nnz for sparse×dense and
	// dense×sparse, the estimated product nnz for sparse×sparse. Zero
	// for dense steps.
	EstNNZ float64
	// Site names the remote node a distributed step runs against; empty
	// for local steps. EstNetBlocks/EstNetSeconds estimate the step's
	// interconnect traffic in device-sized blocks (B·8 bytes each) and
	// simulated seconds under costmodel.NetBytesPerSec — rendered in
	// Explain's net column alongside io and cpu.
	Site          string
	EstNetBlocks  float64
	EstNetSeconds float64
	// Desc describes steps with no algebra node behind them (distributed
	// scatter/exec/gather); describe() uses it when Node is nil.
	Desc string
	// Provenance says why the step exists in this form — why a node was
	// not pipelined from memory (shared consumers, ablation knobs,
	// gather's random access), whether its result installs into the
	// result cache, or which cache key a cached step was served from.
	// Rendered as the step's "why:" line in Explain.
	Provenance string
}

// Plan is the physical plan for one root: the decision table the
// executor interprets, plus the inspectable schedule Explain renders.
type Plan struct {
	Root     *algebra.Node
	Strategy Strategy
	Machine  Machine
	// CacheOn records whether the result cache participated in this
	// plan (shown in the Explain header).
	CacheOn bool
	Steps   []Step
	// EstBlocks is the total estimated device traffic (reads + writes);
	// EstSeconds the total simulated I/O time; EstCPUSeconds the total
	// estimated compute time (reported separately — see Step.EstFlops).
	EstBlocks     float64
	EstSeconds    float64
	EstCPUSeconds float64
	// EstNetBlocks/EstNetSeconds total the distributed steps' estimated
	// interconnect traffic; zero for single-node plans, whose Explain
	// output is unchanged by their existence.
	EstNetBlocks  float64
	EstNetSeconds float64

	decisions map[*algebra.Node]Decision
	algos     map[*algebra.Node]MatMulAlgo
	refs      map[*algebra.Node]int
}

// ShouldMaterialize reports the plan's decision for n. Nodes outside
// the planned DAG (and sources, and matrix nodes) report false.
func (p *Plan) ShouldMaterialize(n *algebra.Node) bool {
	return p.decisions[n] == Materialize
}

// Decision returns the planned evaluation mode for a vector node.
func (p *Plan) Decision(n *algebra.Node) (Decision, bool) {
	d, ok := p.decisions[n]
	return d, ok
}

// Algo returns the planned kernel for a MatMul node (AlgoNone for
// anything else).
func (p *Plan) Algo(n *algebra.Node) MatMulAlgo {
	return p.algos[n]
}

// Refs returns the consumer count the planner saw for n.
func (p *Plan) Refs(n *algebra.Node) int { return p.refs[n] }

// PrepareSteps returns the materialization steps (StepMaterialize and
// StepGatherSource) needed by the subtree rooted at n, in dependency
// order — the schedule the parallel preparation pass runs before
// workers start.
func (p *Plan) PrepareSteps(n *algebra.Node) []Step {
	reach := make(map[*algebra.Node]bool)
	var walk func(m *algebra.Node)
	walk = func(m *algebra.Node) {
		if reach[m] {
			return
		}
		reach[m] = true
		for _, k := range m.Kids {
			walk(k)
		}
	}
	walk(n)
	var out []Step
	for _, s := range p.Steps {
		if (s.Kind == StepMaterialize || s.Kind == StepGatherSource) && reach[s.Node] {
			out = append(out, s)
		}
	}
	return out
}

// Build plans the DAG rooted at root.
func Build(root *algebra.Node, opts Options) *Plan {
	b := &builder{
		opts:      opts,
		root:      root,
		p:         opts.Machine.params(),
		refs:      algebra.CountRefs(root),
		decisions: make(map[*algebra.Node]Decision),
		algos:     make(map[*algebra.Node]MatMulAlgo),
		reasons:   make(map[*algebra.Node]string),
		worthMemo: make(map[*algebra.Node]bool),
		costMemo:  make(map[*algebra.Node]pipeCost),
		matMemo:   make(map[*algebra.Node]matInfo),
		stepped:   make(map[*algebra.Node]bool),
	}
	b.decide(root, make(map[*algebra.Node]bool))
	b.schedule(root, make(map[*algebra.Node]bool))
	pl := &Plan{
		Root:      root,
		Strategy:  opts.Strategy,
		Machine:   opts.Machine,
		CacheOn:   opts.Cache != nil,
		Steps:     b.steps,
		decisions: b.decisions,
		algos:     b.algos,
		refs:      b.refs,
	}
	if root.Shape.Vector {
		var c pipeCost
		var flops float64
		why := "fused streaming pass produces the root"
		switch b.decisions[root] {
		case Cached:
			// Production is free; the output pass just reads the cached
			// result back.
			c = pipeCost{blocks: costmodel.StreamBlocks(float64(root.Shape.Rows), b.p), streams: 1}
			why = "streams the cached result"
		case Materialize:
			// The root's own materialize step produced the temporary;
			// the output pass streams it.
			c = pipeCost{blocks: costmodel.StreamBlocks(float64(root.Shape.Rows), b.p), streams: 1}
			why = "streams the root's own temporary"
		default:
			c = b.pipelineCost(root)
			flops = b.pipelineFlops(root)
		}
		rand := c.rand
		if c.streams > 1 && !opts.Machine.Readahead {
			// Interleaved streams: the device classifies nearly every
			// block of a multi-stream pipeline as a random positioning.
			rand = c.blocks
		}
		pl.Steps = append(pl.Steps, Step{
			Node: root, Kind: StepOutput,
			EstReadBlocks: c.blocks, EstRandOps: rand,
			EstSeconds:    opts.Machine.seconds(c.blocks, rand),
			EstFlops:      flops,
			EstCPUSeconds: costmodel.CPUSeconds(flops),
			Provenance:    why,
		})
	}
	for _, s := range pl.Steps {
		pl.EstBlocks += s.EstReadBlocks + s.EstWriteBlocks
		pl.EstSeconds += s.EstSeconds
		pl.EstCPUSeconds += s.EstCPUSeconds
	}
	return pl
}

type builder struct {
	opts      Options
	root      *algebra.Node
	p         costmodel.Params
	refs      map[*algebra.Node]int
	decisions map[*algebra.Node]Decision
	algos     map[*algebra.Node]MatMulAlgo
	reasons   map[*algebra.Node]string
	worthMemo map[*algebra.Node]bool
	costMemo  map[*algebra.Node]pipeCost
	matMemo   map[*algebra.Node]matInfo
	stepped   map[*algebra.Node]bool
	steps     []Step
}

// worth is the seed's worthMaterializing gate, memoized: one pass over
// the DAG instead of the unmemoized recursive descent that was O(n²) on
// shared subtrees.
func (b *builder) worth(n *algebra.Node) bool {
	if v, ok := b.worthMemo[n]; ok {
		return v
	}
	var v bool
	switch n.Op {
	case algebra.OpSourceVec, algebra.OpSourceMat:
		v = false
	case algebra.OpGather, algebra.OpReduce, algebra.OpMatMul:
		v = true
	default:
		for _, k := range n.Kids {
			if b.worth(k) {
				v = true
				break
			}
		}
	}
	b.worthMemo[n] = v
	return v
}

// decide fills the decision table in post-order, so a node's children
// are decided (and their pipeline costs final) before its own choice.
// A cache hit prunes the descent: the subtree below it never executes,
// so it gets no decisions and no steps.
func (b *builder) decide(n *algebra.Node, seen map[*algebra.Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	if b.opts.Cache.hit(n) && n.Op != algebra.OpSourceVec && n.Op != algebra.OpSourceMat {
		if n.Shape.Vector {
			b.decisions[n] = Cached
		}
		return
	}
	for _, k := range n.Kids {
		b.decide(k, seen)
	}
	if !n.Shape.Vector {
		if n.Op == algebra.OpMatMul {
			b.algos[n] = b.algo(n)
		}
		return
	}
	b.decisions[n] = b.decideVector(n)
}

func (b *builder) decideVector(n *algebra.Node) Decision {
	if n.Op == algebra.OpSourceVec {
		return Stream
	}
	// The ablation knobs force materialization under both strategies:
	// they emulate other systems' semantics, not a cost choice.
	if !b.opts.FuseElementwise && n.Op != algebra.OpReduce {
		b.reasons[n] = "fusion disabled (ablation)"
		return Materialize
	}
	if b.opts.EagerUpdates && n.Op == algebra.OpUpdateMask {
		b.reasons[n] = "eager update semantics force the new state to storage"
		return Materialize
	}
	refs := b.refs[n]
	if refs <= 1 {
		if n == b.root && b.opts.Cache.installable(n) {
			// A cacheable root is materialized so the result can be
			// installed for other sessions; the one extra write/read
			// pass is the cold cost of every future warm replay.
			b.reasons[n] = "root materialized to install into the result cache"
			return Materialize
		}
		return Pipeline
	}
	switch b.opts.Strategy {
	case CostBased:
		c := b.pipelineCost(n)
		if costmodel.MaterializeWins(float64(refs), float64(n.Shape.Rows), c.blocks, c.rand, b.p) {
			b.reasons[n] = fmt.Sprintf("storing once beats %d pipelined recomputations (cost model)", refs)
			return Materialize
		}
	default: // Heuristic
		if b.worth(n) {
			b.reasons[n] = fmt.Sprintf("shared by %d consumers and subtree contains a gather/reduce/multiply", refs)
			return Materialize
		}
	}
	return Pipeline
}

// pipeCost estimates one full streaming evaluation of a node: blocks
// read, how many of them are random positionings, and how many distinct
// linear streams the pipeline interleaves.
type pipeCost struct {
	blocks  float64
	rand    float64
	streams int
}

func (a pipeCost) plus(o pipeCost) pipeCost {
	return pipeCost{a.blocks + o.blocks, a.rand + o.rand, a.streams + o.streams}
}

// pipelineCost estimates the cost of evaluating n once, given the
// decisions already made for its descendants. Distinct sources and
// materialized temporaries are charged once per evaluation (repeat
// visits within one pipeline hit the buffer pool).
func (b *builder) pipelineCost(n *algebra.Node) pipeCost {
	if c, ok := b.costMemo[n]; ok {
		return c
	}
	c := b.cost(n, make(map[*algebra.Node]bool), true)
	b.costMemo[n] = c
	return c
}

func (b *builder) cost(n *algebra.Node, seen map[*algebra.Node]bool, isRoot bool) pipeCost {
	if seen[n] {
		return pipeCost{}
	}
	seen[n] = true
	stream := func(rows int64) pipeCost {
		return pipeCost{blocks: costmodel.StreamBlocks(float64(rows), b.p), streams: 1}
	}
	if b.decisions[n] == Cached {
		// A cached node is never produced, only read back — the read is
		// the whole cost, even when the node is the root.
		return stream(n.Shape.Rows)
	}
	if !isRoot && b.decisions[n] == Materialize {
		// Consumers read the temporary sequentially.
		return stream(n.Shape.Rows)
	}
	switch n.Op {
	case algebra.OpSourceVec:
		return stream(n.Shape.Rows)
	case algebra.OpRange:
		// After pushdown ranges sit on sources or barriers; only the
		// selected window is touched.
		k := n.Kids[0]
		if k.Op == algebra.OpSourceVec || b.decisions[k] == Materialize || b.decisions[k] == Cached {
			return stream(n.Shape.Rows)
		}
		sub := b.cost(k, make(map[*algebra.Node]bool), false)
		frac := 1.0
		if k.Shape.Rows > 0 {
			frac = float64(n.Shape.Rows) / float64(k.Shape.Rows)
		}
		return pipeCost{blocks: sub.blocks*frac + 1, rand: sub.rand * frac, streams: sub.streams}
	case algebra.OpGather:
		idx := b.cost(n.Kids[1], seen, false)
		data := n.Kids[0]
		db := costmodel.StreamBlocks(float64(data.Shape.Rows), b.p)
		touched := expectedDistinct(db, float64(n.Shape.Rows))
		return pipeCost{blocks: idx.blocks + touched, rand: idx.rand + touched, streams: idx.streams}
	case algebra.OpReduce:
		// A separate full pass over the child per evaluation.
		return b.cost(n.Kids[0], make(map[*algebra.Node]bool), false)
	case algebra.OpMatMul, algebra.OpSourceMat:
		// Matrix work is costed as explicit steps, not in pipelines.
		return pipeCost{}
	}
	var c pipeCost
	for _, k := range n.Kids {
		c = c.plus(b.cost(k, seen, false))
	}
	return c
}

// expectedDistinct returns the expected number of distinct blocks (of
// db total) touched by k uniform random accesses.
func expectedDistinct(db, k float64) float64 {
	if db <= 0 || k <= 0 {
		return 0
	}
	d := db * (1 - math.Pow(1-1/db, k))
	return math.Min(math.Max(d, 1), math.Min(db, k))
}

// matInfo is the planner's view of a matrix operand: payload kind, tile
// geometry, and the density statistics the sparse cost formulas need.
// For stored arrays the non-empty tile count and nnz come straight from
// the array's directory (exact); for nested products they are
// propagated estimates.
type matInfo struct {
	kind   array.Kind
	tr, tc int
	gr, gc int
	ne     float64 // non-empty tiles (gr·gc for dense)
	nnz    float64
}

// matInfo computes (memoized) the plan-time description of a matrix
// node, mirroring the runtime kernels' output kinds and layouts so the
// inference matches what the executor will actually see.
func (b *builder) matInfo(n *algebra.Node) matInfo {
	if mi, ok := b.matMemo[n]; ok {
		return mi
	}
	bElems := b.opts.Machine.BlockElems
	// Derive the square side through the same helper array and sparse
	// use, so the planner's alignment test can never diverge from the
	// executor's (sparseTilesAligned) on the same geometry.
	side, _, err := array.TileDimsFor(bElems, array.SquareTiles)
	if err != nil {
		side = 1
	}
	l := float64(n.Shape.Rows)
	k := float64(n.Shape.Cols)
	grid := func(tr, tc int) (int, int) {
		return int(math.Ceil(l / float64(tr))), int(math.Ceil(k / float64(tc)))
	}
	mi := matInfo{kind: array.Dense, tr: side, tc: side}
	switch n.Op {
	case algebra.OpSourceMat:
		if n.SMat != nil {
			mi.kind = array.Sparse
			mi.tr, mi.tc = n.SMat.TileDims()
			mi.gr, mi.gc = n.SMat.GridDims()
			mi.ne = float64(n.SMat.Blocks())
			mi.nnz = float64(n.SMat.NNZ())
			b.matMemo[n] = mi
			return mi
		}
		mi.tr, mi.tc = n.Mat.TileDims()
		mi.gr, mi.gc = n.Mat.GridDims()
	case algebra.OpMatMul:
		switch algo := b.algo(n); {
		case algo == AlgoSparseSparse:
			ai := b.matInfo(n.Kids[0])
			bi := b.matInfo(n.Kids[1])
			mi.kind = array.Sparse
			mi.tr, mi.tc = ai.tr, ai.tc
			mi.gr, mi.gc = grid(mi.tr, mi.tc)
			m := float64(n.Kids[0].Shape.Cols)
			_, mi.ne = costmodel.SparseSparseMatMul(
				float64(ai.gr), float64(ai.gc), float64(bi.gc), ai.ne, bi.ne)
			mi.nnz = costmodel.EstProductNNZ(l, m, k, ai.nnz, bi.nnz)
			b.matMemo[n] = mi
			return mi
		case algo == AlgoBNLJRow:
			rtr, rtc, rerr := array.TileDimsFor(bElems, array.RowTiles)
			if rerr == nil {
				mi.tr, mi.tc = rtr, rtc
			}
		}
		mi.gr, mi.gc = grid(mi.tr, mi.tc)
	default:
		mi.gr, mi.gc = grid(mi.tr, mi.tc)
	}
	mi.ne = float64(mi.gr * mi.gc)
	mi.nnz = l * k
	b.matMemo[n] = mi
	return mi
}

// algo selects the multiply kernel for a MatMul node from plan-time
// operand kinds and layouts. Sparse operands take a tile-skipping
// kernel whenever the tile geometries align (the kernels' square-tile
// precondition — the executor densifies and falls back otherwise,
// mirrored by the alignment test here); dense pairs choose between the
// square-tiled and BNLJ kernels by the analytic formulas.
func (b *builder) algo(n *algebra.Node) MatMulAlgo {
	if a, ok := b.algos[n]; ok {
		return a
	}
	ai := b.matInfo(n.Kids[0])
	bi := b.matInfo(n.Kids[1])
	l := float64(n.Kids[0].Shape.Rows)
	m := float64(n.Kids[0].Shape.Cols)
	k := float64(n.Kids[1].Shape.Cols)
	aligned := ai.tr == ai.tc && bi.tr == bi.tc && ai.tr == bi.tr
	var a MatMulAlgo
	switch {
	case aligned && ai.kind == array.Sparse && bi.kind == array.Sparse:
		a = AlgoSparseSparse
	case aligned && ai.kind == array.Sparse:
		a = AlgoSparseDense
	case aligned && bi.kind == array.Sparse:
		a = AlgoDenseSparse
	case aligned && costmodel.CheaperSquareTiled(l, m, k, b.p):
		a = AlgoSquareTiled
	case aligned:
		a = AlgoBNLJSquare
	default:
		a = AlgoBNLJRow
	}
	b.algos[n] = a
	return a
}

// schedule collects the plan's steps in dependency order: children
// before parents, gather sources before the materialization of the
// gather's own subtree — the order the preparation pass executes. A
// cache hit becomes a zero-I/O cached step and its subtree is pruned:
// nothing below it is scheduled.
func (b *builder) schedule(n *algebra.Node, seen map[*algebra.Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	if b.decisions[n] == Cached || (!n.Shape.Vector && b.opts.Cache.hit(n)) {
		if !b.stepped[n] {
			b.stepped[n] = true
			why := "result cache hit: subtree pruned, zero I/O"
			if k := b.opts.Cache.describe(n); k != "" {
				why = fmt.Sprintf("result cache hit %s: subtree pruned, zero I/O", k)
			}
			b.steps = append(b.steps, Step{Node: n, Kind: StepCached, Provenance: why})
		}
		return
	}
	for _, k := range n.Kids {
		b.schedule(k, seen)
	}
	if !n.Shape.Vector {
		if n.Op == algebra.OpMatMul && !b.stepped[n] {
			b.stepped[n] = true
			b.steps = append(b.steps, b.matmulStep(n))
		}
		return
	}
	if n.Op == algebra.OpGather {
		if d := n.Kids[0]; d.Op != algebra.OpSourceVec && b.decisions[d] != Materialize &&
			b.decisions[d] != Cached && !b.stepped[d] {
			b.stepped[d] = true
			b.reasons[d] = "gather needs random access to its data child"
			b.steps = append(b.steps, b.materializeStep(d, StepGatherSource))
		}
	}
	if b.decisions[n] == Materialize && !b.stepped[n] {
		b.stepped[n] = true
		b.steps = append(b.steps, b.materializeStep(n, StepMaterialize))
	}
}

func (b *builder) materializeStep(n *algebra.Node, kind StepKind) Step {
	c := b.pipelineCost(n)
	rand := c.rand
	if c.streams > 1 && !b.opts.Machine.Readahead {
		rand = c.blocks
	}
	writes := costmodel.StreamBlocks(float64(n.Shape.Rows), b.p)
	flops := b.pipelineFlops(n)
	why := b.reasons[n]
	if b.opts.Cache.installable(n) && !strings.Contains(why, "result cache") {
		if why != "" {
			why += "; installs into the result cache"
		} else {
			why = "installs into the result cache"
		}
	}
	return Step{
		Node: n, Kind: kind, Refs: b.refs[n],
		EstReadBlocks: c.blocks, EstWriteBlocks: writes, EstRandOps: rand,
		EstSeconds:    b.opts.Machine.seconds(c.blocks+writes, rand),
		EstFlops:      flops,
		EstCPUSeconds: costmodel.CPUSeconds(flops),
		Provenance:    why,
	}
}

// pipelineFlops estimates the scalar arithmetic of the fused pass that
// produces n: every compute node the pass evaluates inline (not served
// from a temporary or its own scheduled step) charges one operation per
// element, mirroring the executor's flop counters.
func (b *builder) pipelineFlops(n *algebra.Node) float64 {
	var total float64
	seen := make(map[*algebra.Node]bool)
	elems := func(m *algebra.Node) float64 {
		if m.Shape.Vector {
			return float64(m.Shape.Rows)
		}
		return float64(m.Shape.Rows) * float64(m.Shape.Cols)
	}
	var walk func(m *algebra.Node, root bool)
	walk = func(m *algebra.Node, root bool) {
		if seen[m] {
			return
		}
		seen[m] = true
		if b.decisions[m] == Cached {
			return // served from the result cache: no arithmetic at all
		}
		if !root && b.decisions[m] == Materialize {
			return // served from its own step's temporary
		}
		switch m.Op {
		case algebra.OpSourceVec, algebra.OpSourceMat, algebra.OpMatMul:
			// Sources carry no arithmetic; multiplies are their own steps.
			return
		case algebra.OpGather:
			// The data child is random-accessed (its work is a
			// gather-source step); only the index child runs in-pipeline.
			walk(m.Kids[1], false)
			return
		case algebra.OpReduce:
			// The reduction streams its kid once and folds each element.
			walk(m.Kids[0], false)
			total += elems(m.Kids[0])
			return
		case algebra.OpElemUnary, algebra.OpScalarOp, algebra.OpElemBinary, algebra.OpUpdateMask:
			total += elems(m)
		}
		for _, k := range m.Kids {
			walk(k, false)
		}
	}
	walk(n, true)
	return total
}

func (b *builder) matmulStep(n *algebra.Node) Step {
	l := float64(n.Kids[0].Shape.Rows)
	m := float64(n.Kids[0].Shape.Cols)
	k := float64(n.Kids[1].Shape.Cols)
	algo := b.algo(n)
	var reads, writes, nnz float64
	switch algo {
	case AlgoSparseDense:
		ai, bi := b.matInfo(n.Kids[0]), b.matInfo(n.Kids[1])
		reads = costmodel.SparseDenseMatMulReads(ai.ne, float64(bi.gc))
		writes = costmodel.StreamBlocks(l*k, b.p)
		nnz = ai.nnz
	case AlgoDenseSparse:
		ai, bi := b.matInfo(n.Kids[0]), b.matInfo(n.Kids[1])
		reads = costmodel.DenseSparseMatMulReads(bi.ne, float64(ai.gr))
		writes = costmodel.StreamBlocks(l*k, b.p)
		nnz = bi.nnz
	case AlgoSparseSparse:
		ai, bi := b.matInfo(n.Kids[0]), b.matInfo(n.Kids[1])
		reads, writes = costmodel.SparseSparseMatMul(
			float64(ai.gr), float64(ai.gc), float64(bi.gc), ai.ne, bi.ne)
		nnz = costmodel.EstProductNNZ(l, m, k, ai.nnz, bi.nnz)
	default:
		var total float64
		if algo == AlgoSquareTiled {
			total = costmodel.SquareTiled(l, m, k, b.p)
		} else {
			total = costmodel.BNLJ(l, m, k, b.p)
		}
		writes = costmodel.StreamBlocks(l*k, b.p)
		reads = total - writes
		if reads < 0 {
			reads = 0
		}
	}
	rand := reads
	if b.opts.Machine.Readahead {
		rand = 0
	}
	// Flop estimate mirrors the executor's counters: l·m·n for the dense
	// kernels, nnz-scaled for the sparse ones.
	var flops float64
	switch algo {
	case AlgoSparseDense:
		flops = b.matInfo(n.Kids[0]).nnz * k
	case AlgoDenseSparse:
		flops = b.matInfo(n.Kids[1]).nnz * l
	case AlgoSparseSparse:
		ai, bi := b.matInfo(n.Kids[0]), b.matInfo(n.Kids[1])
		if m > 0 {
			flops = ai.nnz * bi.nnz / m
		}
	default:
		flops = l * m * k
	}
	why := "multiply is its own out-of-core pipeline, never fused"
	if n.Ring != "" {
		why += "; ring=" + n.Ring + " semi-ring kernel (⊕/⊗ swapped in, same schedule)"
	}
	if b.opts.Cache.installable(n) {
		why += "; installs into the result cache"
	}
	return Step{
		Node: n, Kind: StepMatMul, Algo: algo, EstNNZ: nnz,
		EstReadBlocks: reads, EstWriteBlocks: writes, EstRandOps: rand,
		EstSeconds:    b.opts.Machine.seconds(reads+writes, rand),
		EstFlops:      flops,
		EstCPUSeconds: costmodel.CPUSeconds(flops),
		Provenance:    why,
	}
}

// --- Rendering ---

// describe renders a node for Explain output: id, op, shape, and a
// truncated expression string.
func describe(n *algebra.Node) string {
	return fmt.Sprintf("#%d %s %s %s", n.ID, n.Op, n.Shape, truncate(n.String(), 48))
}

func truncate(s string, max int) string {
	r := []rune(s)
	if len(r) <= max {
		return s
	}
	return string(r[:max-1]) + "…"
}

func (k StepKind) label() string {
	switch k {
	case StepMaterialize:
		return "materialize"
	case StepGatherSource:
		return "gather-source"
	case StepMatMul:
		return "matmul"
	case StepOutput:
		return "output"
	case StepCached:
		return "cached"
	case StepScatter:
		return "scatter"
	case StepRemoteExec:
		return "remote-exec"
	case StepGather:
		return "gather"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Render formats the plan for Explain: machine header, the scheduled
// steps with per-step cost estimates, the totals, and the per-node
// decision table.
func (p *Plan) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "physical plan: strategy=%s M=%d B=%d frames=%d workers=%d readahead=%v cache=%v\n",
		p.Strategy, p.Machine.MemElems, p.Machine.BlockElems, p.Machine.Frames,
		p.Machine.Workers, p.Machine.Readahead, p.CacheOn)
	if p.Root != nil {
		fmt.Fprintf(&sb, "root: %s\n", describe(p.Root))
	}
	fmt.Fprintf(&sb, "steps:\n")
	for i, s := range p.Steps {
		desc := s.Desc
		if s.Node != nil {
			desc = describe(s.Node)
		}
		fmt.Fprintf(&sb, "  %2d. %-13s %s", i+1, s.Kind.label(), desc)
		if s.Site != "" {
			fmt.Fprintf(&sb, "  @%s", s.Site)
		}
		if s.Kind == StepMatMul {
			fmt.Fprintf(&sb, "  algo=%s", s.Algo)
			if s.Algo.Sparse() {
				// Sparse kernels are costed from the operands' tile
				// directories; surface the nnz behind the block numbers.
				fmt.Fprintf(&sb, " nnz=%.0f", s.EstNNZ)
			}
		}
		if s.Kind == StepMaterialize {
			fmt.Fprintf(&sb, "  refs=%d", s.Refs)
		}
		fmt.Fprintf(&sb, "  est: read %.0f blk (%.0f rand), write %.0f blk, io %.3fs, cpu %.3fs",
			s.EstReadBlocks, s.EstRandOps, s.EstWriteBlocks, s.EstSeconds, s.EstCPUSeconds)
		if s.EstNetBlocks > 0 {
			fmt.Fprintf(&sb, ", net %.0f blk %.3fs", s.EstNetBlocks, s.EstNetSeconds)
		}
		fmt.Fprintln(&sb)
		if s.Provenance != "" {
			fmt.Fprintf(&sb, "      why: %s\n", s.Provenance)
		}
	}
	mb := p.EstBlocks * float64(p.Machine.BlockElems) * 8 / (1 << 20)
	fmt.Fprintf(&sb, "total est: %.0f blocks (%.2f MB), io %.3fs, cpu %.3fs",
		p.EstBlocks, mb, p.EstSeconds, p.EstCPUSeconds)
	if p.EstNetBlocks > 0 {
		fmt.Fprintf(&sb, ", net %.0f blk %.3fs", p.EstNetBlocks, p.EstNetSeconds)
	}
	fmt.Fprintln(&sb)
	if p.Root == nil {
		// Distributed plans have no algebra DAG behind them: no decision
		// table to render.
		return sb.String()
	}

	nodes := make([]*algebra.Node, 0, len(p.decisions))
	for n := range p.decisions {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	fmt.Fprintf(&sb, "decisions:\n")
	for _, n := range nodes {
		fmt.Fprintf(&sb, "  %-11s %s", p.decisions[n], describe(n))
		if r := p.refs[n]; r > 1 {
			fmt.Fprintf(&sb, "  refs=%d", r)
		}
		fmt.Fprintln(&sb)
	}
	mats := make([]*algebra.Node, 0, len(p.algos))
	for n := range p.algos {
		mats = append(mats, n)
	}
	if len(mats) > 0 {
		sort.Slice(mats, func(i, j int) bool { return mats[i].ID < mats[j].ID })
		fmt.Fprintf(&sb, "multiplies:\n")
		for _, n := range mats {
			fmt.Fprintf(&sb, "  %-13s %s\n", p.algos[n], describe(n))
		}
	}
	return sb.String()
}
