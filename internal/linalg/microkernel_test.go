package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// TestMicroMatchesNaiveBitIdentical is the microkernel's correctness
// contract: for every shape — including clipped edge tiles, non-square
// remainders, and degenerate 1×n / n×1 operands — the packed 4×4
// microkernel must produce the exact same bits as the naive
// tile-at-a-time triple loop, because both accumulate each element in
// the same k order. Tolerance-free: any reordering shows up here.
func TestMicroMatchesNaiveBitIdentical(t *testing.T) {
	shapes := [][3]int64{
		{20, 20, 20},  // multiple of the tile side
		{33, 17, 25},  // every dimension clips its edge tiles
		{5, 40, 9},    // wide inner dimension
		{1, 17, 1},    // scalar-shaped result
		{1, 5, 40},    // single row
		{40, 5, 1},    // single column
		{3, 3, 3},     // smaller than one tile
		{19, 1, 23},   // k=1: one fused multiply per element
		{64, 64, 64},  // several super-blocks under the small pool
	}
	// Randomized shapes on top of the fixed edge cases.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		shapes = append(shapes, [3]int64{
			1 + rng.Int63n(48), 1 + rng.Int63n(48), 1 + rng.Int63n(48),
		})
	}
	for _, blockElems := range []int{16, 64} { // 4×4 and 8×8 tiles
		for _, dims := range shapes {
			t.Run(fmt.Sprintf("B%d_%dx%dx%d", blockElems, dims[0], dims[1], dims[2]), func(t *testing.T) {
				dev := disk.NewDevice(blockElems)
				pool := buffer.New(dev, 48)
				a, err := array.NewMatrix(pool, "a", dims[0], dims[1], array.Options{Shape: array.SquareTiles})
				if err != nil {
					t.Fatal(err)
				}
				b, err := array.NewMatrix(pool, "b", dims[1], dims[2], array.Options{Shape: array.SquareTiles})
				if err != nil {
					t.Fatal(err)
				}
				fillRand(t, a, dims[0]^dims[1]<<8)
				fillRand(t, b, dims[2]^dims[1]<<16)
				cn, err := MatMulTiledKernel(pool, "cn", a, b, 1, KernelNaive)
				if err != nil {
					t.Fatal(err)
				}
				cm, err := MatMulTiledKernel(pool, "cm", a, b, 1, KernelMicro)
				if err != nil {
					t.Fatal(err)
				}
				for i := int64(0); i < dims[0]; i++ {
					for j := int64(0); j < dims[2]; j++ {
						vn, err := cn.At(i, j)
						if err != nil {
							t.Fatal(err)
						}
						vm, err := cm.At(i, j)
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(vn) != math.Float64bits(vm) {
							t.Fatalf("C[%d,%d]: naive %v (%#x) != micro %v (%#x)",
								i, j, vn, math.Float64bits(vn), vm, math.Float64bits(vm))
						}
					}
				}
			})
		}
	}
}

// TestMicroParallelMatchesSequential pins the worker path: the packed
// panels are per-worker scratch, and concurrent super-blocks must not
// perturb each other's pads.
func TestMicroParallelMatchesSequential(t *testing.T) {
	const r, k, c = 50, 37, 44
	dev := disk.NewDevice(16)
	pool := buffer.NewSharded(dev, 64, 4)
	a, err := array.NewMatrix(pool, "a", r, k, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	b, err := array.NewMatrix(pool, "b", k, c, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	fillRand(t, a, 91)
	fillRand(t, b, 92)
	seq, err := MatMulTiledKernel(pool, "seq", a, b, 1, KernelMicro)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MatMulTiledKernel(pool, "par", a, b, 4, KernelMicro)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < r; i++ {
		for j := int64(0); j < c; j++ {
			vs, _ := seq.At(i, j)
			vp, _ := par.At(i, j)
			if math.Float64bits(vs) != math.Float64bits(vp) {
				t.Fatalf("C[%d,%d]: sequential %v != parallel %v", i, j, vs, vp)
			}
		}
	}
}

// benchMatMul reports arithmetic throughput of one kernel over a fresh
// warm pool per iteration, so the timed region is compute plus the
// schedule's pin bookkeeping, not device traffic.
func benchMatMul(b *testing.B, kern Kernel) {
	const n = int64(256)
	const blockElems = 4096 // 64×64 tiles
	grid := int(n) / 64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := disk.NewDevice(blockElems)
		pool := buffer.New(dev, 4*grid*grid)
		a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			b.Fatal(err)
		}
		m, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Fill(func(i, j int64) float64 { return float64((i + j) % 13) }); err != nil {
			b.Fatal(err)
		}
		if err := m.Fill(func(i, j int64) float64 { return float64((i * j) % 11) }); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := MatMulTiledKernel(pool, "c", a, m, 1, kern); err != nil {
			b.Fatal(err)
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMulNaive(b *testing.B) { benchMatMul(b, KernelNaive) }
func BenchmarkMatMulMicro(b *testing.B) { benchMatMul(b, KernelMicro) }
