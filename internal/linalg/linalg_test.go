package linalg

import (
	"math"
	"math/rand"
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/costmodel"
	"riot/internal/disk"
)

// fillRand loads m with deterministic position-based pseudo-random
// values: the value at (i, j) depends only on (i, j, seed), not on the
// tile iteration order, so differently-tiled copies hold the same data.
func fillRand(t *testing.T, m *array.Matrix, seed int64) {
	t.Helper()
	if err := m.Fill(func(i, j int64) float64 { return posRand(i, j, seed) }); err != nil {
		t.Fatal(err)
	}
}

func posRand(i, j, seed int64) float64 {
	h := uint64(i*1000003+j*7919) ^ uint64(seed*2654435761)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h%2000)/1000 - 1
}

// refMatMul computes the product in plain memory.
func refMatMul(t *testing.T, a, b *array.Matrix) [][]float64 {
	t.Helper()
	l, m, n := a.Rows(), a.Cols(), b.Cols()
	out := make([][]float64, l)
	av := dump(t, a)
	bv := dump(t, b)
	for i := int64(0); i < l; i++ {
		out[i] = make([]float64, n)
		for j := int64(0); j < n; j++ {
			var s float64
			for k := int64(0); k < m; k++ {
				s += av[i][k] * bv[k][j]
			}
			out[i][j] = s
		}
	}
	return out
}

func dump(t *testing.T, m *array.Matrix) [][]float64 {
	t.Helper()
	out := make([][]float64, m.Rows())
	for i := int64(0); i < m.Rows(); i++ {
		out[i] = make([]float64, m.Cols())
		for j := int64(0); j < m.Cols(); j++ {
			v, err := m.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			out[i][j] = v
		}
	}
	return out
}

func checkClose(t *testing.T, got *array.Matrix, want [][]float64, tol float64) {
	t.Helper()
	for i := int64(0); i < got.Rows(); i++ {
		for j := int64(0); j < got.Cols(); j++ {
			v, err := got.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(v-want[i][j]) > tol {
				t.Fatalf("C[%d,%d]=%v, want %v", i, j, v, want[i][j])
			}
		}
	}
}

func TestMatMulTiledCorrectness(t *testing.T) {
	for _, dims := range [][3]int64{{20, 20, 20}, {33, 17, 25}, {5, 40, 9}, {16, 16, 16}} {
		dev := disk.NewDevice(16) // 4×4 tiles
		pool := buffer.New(dev, 48)
		a, _ := array.NewMatrix(pool, "a", dims[0], dims[1], array.Options{Shape: array.SquareTiles})
		b, _ := array.NewMatrix(pool, "b", dims[1], dims[2], array.Options{Shape: array.SquareTiles})
		fillRand(t, a, 1)
		fillRand(t, b, 2)
		want := refMatMul(t, a, b)
		c, err := MatMulTiled(pool, "c", a, b)
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, c, want, 1e-9)
	}
}

func TestMatMulBNLJCorrectness(t *testing.T) {
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 64)
	a, _ := array.NewMatrix(pool, "a", 23, 31, array.Options{Shape: array.RowTiles})
	b, _ := array.NewMatrix(pool, "b", 31, 19, array.Options{Shape: array.ColTiles})
	fillRand(t, a, 3)
	fillRand(t, b, 4)
	want := refMatMul(t, a, b)
	c, err := MatMulBNLJ(pool, "c", a, b, array.Options{Shape: array.RowTiles})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, c, want, 1e-9)
}

func TestMatMulNaiveCorrectness(t *testing.T) {
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 32)
	a, _ := array.NewMatrix(pool, "a", 9, 12, array.Options{Shape: array.ColTiles})
	b, _ := array.NewMatrix(pool, "b", 12, 7, array.Options{Shape: array.ColTiles})
	fillRand(t, a, 5)
	fillRand(t, b, 6)
	want := refMatMul(t, a, b)
	c, err := MatMulNaive(pool, "c", a, b, array.Options{Shape: array.ColTiles})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, c, want, 1e-9)
}

func TestKernelsAgree(t *testing.T) {
	// All three kernels must produce the same product.
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 64)
	mk := func(name string, r, c int64, shape array.TileShape, seed int64) *array.Matrix {
		m, err := array.NewMatrix(pool, name, r, c, array.Options{Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		fillRand(t, m, seed)
		return m
	}
	aSq := mk("aSq", 18, 14, array.SquareTiles, 7)
	bSq := mk("bSq", 14, 22, array.SquareTiles, 8)
	aRow := mk("aRow", 18, 14, array.RowTiles, 7)
	bCol := mk("bCol", 14, 22, array.ColTiles, 8)
	cTiled, err := MatMulTiled(pool, "c1", aSq, bSq)
	if err != nil {
		t.Fatal(err)
	}
	cBNLJ, err := MatMulBNLJ(pool, "c2", aRow, bCol, array.Options{Shape: array.RowTiles})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 18; i++ {
		for j := int64(0); j < 22; j++ {
			v1, _ := cTiled.At(i, j)
			v2, _ := cBNLJ.At(i, j)
			if math.Abs(v1-v2) > 1e-9 {
				t.Fatalf("kernels disagree at (%d,%d): %v vs %v", i, j, v1, v2)
			}
		}
	}
}

// E6: measured block I/O of the tiled kernel must track the analytic
// model within a small constant factor.
func TestTiledMatMulMatchesCostModel(t *testing.T) {
	const blockElems = 64 // 8×8 tiles
	const frames = 48     // M = 3072 elements
	for _, n := range []int64{96, 160} {
		dev := disk.NewDevice(blockElems)
		pool := buffer.New(dev, frames)
		a, _ := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		b, _ := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		fillRand(t, a, 1)
		fillRand(t, b, 2)
		if err := pool.DropAll(); err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		if _, err := MatMulTiled(pool, "c", a, b); err != nil {
			t.Fatal(err)
		}
		measured := float64(dev.Stats().TotalBlocks())
		params := costmodel.Params{MemElems: float64(pool.MemoryElems()), BlockElems: float64(blockElems)}
		predicted := costmodel.SquareTiled(float64(n), float64(n), float64(n), params)
		ratio := measured / predicted
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("n=%d: measured %v blocks vs model %v (ratio %.2f)", n, measured, predicted, ratio)
		}
	}
}

// The paper's §3/§5 claim: with little memory, the square-tiled schedule
// beats the BNLJ-inspired one on large matrices.
func TestTiledBeatsBNLJUnderTightMemory(t *testing.T) {
	const blockElems = 64
	const frames = 27 // tiny memory: M = 1728 elements
	const n = 144
	run := func(kernel string) int64 {
		dev := disk.NewDevice(blockElems)
		pool := buffer.New(dev, frames)
		var a, b *array.Matrix
		if kernel == "tiled" {
			a, _ = array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
			b, _ = array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		} else {
			a, _ = array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.RowTiles})
			b, _ = array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.ColTiles})
		}
		fillRand(t, a, 1)
		fillRand(t, b, 2)
		if err := pool.DropAll(); err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		var err error
		if kernel == "tiled" {
			_, err = MatMulTiled(pool, "c", a, b)
		} else {
			_, err = MatMulBNLJ(pool, "c", a, b, array.Options{Shape: array.RowTiles})
		}
		if err != nil {
			t.Fatal(err)
		}
		return dev.Stats().TotalBlocks()
	}
	tiled := run("tiled")
	bnlj := run("bnlj")
	if tiled >= bnlj {
		t.Fatalf("tiled (%d blocks) should beat BNLJ (%d blocks) under tight memory", tiled, bnlj)
	}
}

func TestDimensionMismatch(t *testing.T) {
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 16)
	a, _ := array.NewMatrix(pool, "a", 4, 5, array.Options{Shape: array.SquareTiles})
	b, _ := array.NewMatrix(pool, "b", 6, 4, array.Options{Shape: array.SquareTiles})
	if _, err := MatMulTiled(pool, "c", a, b); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := MatMulBNLJ(pool, "c", a, b, array.Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := LU(pool, "lu", a); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestTranspose(t *testing.T) {
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 16)
	a, _ := array.NewMatrix(pool, "a", 7, 11, array.Options{Shape: array.SquareTiles})
	fillRand(t, a, 9)
	at, err := Transpose(pool, "at", a)
	if err != nil {
		t.Fatal(err)
	}
	if at.Rows() != 11 || at.Cols() != 7 {
		t.Fatalf("transpose dims %dx%d", at.Rows(), at.Cols())
	}
	for i := int64(0); i < 7; i++ {
		for j := int64(0); j < 11; j++ {
			v1, _ := a.At(i, j)
			v2, _ := at.At(j, i)
			if v1 != v2 {
				t.Fatalf("at[%d,%d]=%v want %v", j, i, v2, v1)
			}
		}
	}
}

// diagDominant fills m with a random diagonally dominant matrix, safe
// for unpivoted LU.
func diagDominant(t *testing.T, m *array.Matrix, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := float64(m.Rows())
	if err := m.Fill(func(i, j int64) float64 {
		if i == j {
			return n + rng.Float64()*4
		}
		return rng.Float64()*2 - 1
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLUReconstructsA(t *testing.T) {
	for _, n := range []int64{8, 20, 33} {
		dev := disk.NewDevice(16)
		pool := buffer.New(dev, 32)
		a, _ := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		diagDominant(t, a, n)
		orig := dump(t, a)
		lu, err := LU(pool, "lu", a)
		if err != nil {
			t.Fatal(err)
		}
		f := dump(t, lu)
		// Reconstruct L·U and compare with A.
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				var s float64
				for k := int64(0); k <= min64(i, j); k++ {
					l := f[i][k]
					if k == i {
						l = 1
					}
					s += l * f[k][j] * boolTo(k <= j)
				}
				if math.Abs(s-orig[i][j]) > 1e-8 {
					t.Fatalf("n=%d: (LU)[%d,%d]=%v, want %v", n, i, j, s, orig[i][j])
				}
			}
		}
	}
}

func TestLUSolve(t *testing.T) {
	const n = 24
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 32)
	a, _ := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
	diagDominant(t, a, 5)
	av := dump(t, a)
	// Want x = [1, 2, ..., n]; b = A x.
	want := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = float64(i + 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += av[i][j] * want[j]
		}
	}
	lu, err := LU(pool, "lu", a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveLU(lu, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUZeroPivotFails(t *testing.T) {
	dev := disk.NewDevice(16)
	pool := buffer.New(dev, 16)
	a, _ := array.NewMatrix(pool, "a", 4, 4, array.Options{Shape: array.SquareTiles})
	if err := a.Fill(func(i, j int64) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := LU(pool, "lu", a); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TestSolveLUPinCounters is the regression test for the tile-blocked
// substitution sweeps: the solve must cost O(tiles) pool requests — one
// pin per triangle tile per sweep — not the O(n²) element-at-a-time
// pins the Matrix.At path used to charge.
func TestSolveLUPinCounters(t *testing.T) {
	const n = 48
	dev := disk.NewDevice(16) // 4x4 tiles -> a 12x12 tile grid
	pool := buffer.New(dev, 256)
	a, _ := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
	diagDominant(t, a, 7)
	av := dump(t, a)
	want := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = float64(2*i - 3)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += av[i][j] * want[j]
		}
	}
	lu, err := LU(pool, "lu", a)
	if err != nil {
		t.Fatal(err)
	}
	before := pool.Stats()
	x, err := SolveLU(lu, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v, want %v", i, x[i], want[i])
		}
	}
	after := pool.Stats()
	pins := (after.Hits + after.Misses) - (before.Hits + before.Misses)
	gr, _ := lu.GridDims()
	wantPins := int64(gr * (gr + 1)) // both triangular sweeps, diagonal twice
	if pins != wantPins {
		t.Errorf("solve issued %d pool requests, want exactly %d (grid %dx%d)", pins, wantPins, gr, gr)
	}
	// The old element-wise path cost ~n² pins; make the asymptotic claim
	// explicit too.
	if pins >= int64(n*n) {
		t.Errorf("solve pool requests %d not sublinear in elements (%d)", pins, n*n)
	}
}
