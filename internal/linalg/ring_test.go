package linalg

import (
	"math"
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/scalarop"
	"riot/internal/sparse"
)

// ringRef computes the semi-ring product of two in-memory matrices in
// the same row-major ascending-k order the kernels use, so agreement is
// exact.
func ringRef(a, b [][]float64, ring *scalarop.Semiring) [][]float64 {
	l, m, n := len(a), len(b), len(b[0])
	out := make([][]float64, l)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			acc := ring.Zero
			for k := 0; k < m; k++ {
				acc = ring.Add(acc, ring.Mul(a[i][k], b[k][j]))
			}
			out[i][j] = acc
		}
	}
	return out
}

// toMem reads a dense matrix into memory.
func toMem(t *testing.T, m *array.Matrix) [][]float64 {
	t.Helper()
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = make([]float64, m.Cols())
		for j := range out[i] {
			v, err := m.At(int64(i), int64(j))
			if err != nil {
				t.Fatal(err)
			}
			out[i][j] = v
		}
	}
	return out
}

// TestRingMatMulSparseVsDense is the tentpole's agreement property: the
// min-plus product computed by every kernel variant — tiled dense,
// sparse×dense, dense×sparse, sparse×sparse — matches an in-memory
// reference elementwise at densities {0, .01, .1, 1}. Operands are fed
// both verbatim (absent = explicit +Inf via DensifyRing) and raw (the
// storage-domain convention: stored 0 = absent); results are read back
// under absent ⇔ ring.Zero regardless of kind.
func TestRingMatMulSparseVsDense(t *testing.T) {
	ring, err := scalarop.Ring("minplus")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, 0.01, 0.1, 1.0} {
		pool := buffer.New(disk.NewDevice(64), 64) // 8×8 tiles
		a := genDense(t, pool, "a", 37, 29, d, 1)
		b := genDense(t, pool, "b", 29, 41, d, 2)
		sa, err := sparse.FromDense(pool, "sa", a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := sparse.FromDense(pool, "sb", b)
		if err != nil {
			t.Fatal(err)
		}
		// Ring-convention dense operands: absent elements become +Inf.
		da, err := DensifyRing(pool, "da", sa, ring, false)
		if err != nil {
			t.Fatal(err)
		}
		db, err := DensifyRing(pool, "db", sb, ring, false)
		if err != nil {
			t.Fatal(err)
		}
		want := ringRef(toMem(t, da), toMem(t, db), ring)

		// storageAt reads a storage-domain result: stored 0 is absent,
		// i.e. the ring's Zero.
		storageAt := func(at func(i, j int64) (float64, error)) func(i, j int64) (float64, error) {
			return func(i, j int64) (float64, error) {
				v, err := at(i, j)
				if err != nil || v != 0 {
					return v, err
				}
				return ring.Zero, nil
			}
		}

		check := func(ctx string, at func(i, j int64) (float64, error)) {
			t.Helper()
			for i := range want {
				for j := range want[i] {
					g, err := at(int64(i), int64(j))
					if err != nil {
						t.Fatal(err)
					}
					if g != want[i][j] {
						t.Fatalf("d=%g %s: (%d,%d) = %g, want %g", d, ctx, i, j, g, want[i][j])
					}
				}
			}
		}

		dd, err := MatMulTiledRing(pool, "dd", da, db, 1, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("dense×dense tiled", storageAt(dd.At))

		ddw, err := MatMulTiledRing(pool, "ddw", da, db, 4, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("dense×dense tiled 4 workers", storageAt(ddw.At))

		// Raw operands (0 = absent) must multiply exactly like their
		// verbatim densifications — the kind/storage-agnostic contract.
		ddr, err := MatMulTiledRing(pool, "ddr", a, b, 1, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("dense×dense raw operands", storageAt(ddr.At))

		nv, err := MatMulNaiveRing(pool, "nv", da, db, array.Options{Shape: array.SquareTiles}, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("dense×dense naive", storageAt(nv.At))

		sd, err := MatMulSparseDenseRing(pool, "sd", sa, db, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("sparse×dense", storageAt(sd.At))

		ds, err := MatMulDenseSparseRing(pool, "ds", da, sb, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("dense×sparse", storageAt(ds.At))

		ss, err := MatMulSparseSparseRing(pool, "ss", sa, sb, ring)
		if err != nil {
			t.Fatal(err)
		}
		check("sparse×sparse", storageAt(ss.At))
	}
}

// genIntDense is genDense with small integer weights, so multi-hop
// min-plus path sums are exact in float64 no matter how the additions
// associate — repeated squaring and Floyd–Warshall accumulate the same
// path in different orders.
func genIntDense(t *testing.T, pool *buffer.Pool, name string, n int64, density float64, seed uint64) *array.Matrix {
	t.Helper()
	rng := xorshift(seed*2654435761 + 1)
	m, err := array.NewMatrix(pool, name, n, n, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fill(func(i, j int64) float64 {
		if i != j && rng.next() < density {
			return 1 + math.Floor(rng.next()*8)
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRingClosureMatchesFloydWarshall drives the full sparse closure —
// repeated squaring C ← C ⊕ (C ⊗ C), then DensifyRing with the One
// diagonal — against an in-memory Floyd–Warshall on a random digraph.
func TestRingClosureMatchesFloydWarshall(t *testing.T) {
	ring, err := scalarop.Ring("minplus")
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	pool := buffer.New(disk.NewDevice(64), 64)
	adj := genIntDense(t, pool, "adj", n, 0.08, 7) // integer weights in [1, 8]
	sa, err := sparse.FromDense(pool, "sadj", adj)
	if err != nil {
		t.Fatal(err)
	}

	// Floyd–Warshall reference over the densified (+Inf for absent)
	// weights with a zero diagonal.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			v, err := adj.At(int64(i), int64(j))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case i == j:
				dist[i][j] = 0
			case v != 0:
				dist[i][j] = v
			default:
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}

	// Sparse closure: k = ⌈log₂(n-1)⌉ squarings cover every simple path.
	c := sa
	for span := int64(1); span < int64(n-1); span *= 2 {
		sq, err := MatMulSparseSparseRing(pool, "sq", c, c, ring)
		if err != nil {
			t.Fatal(err)
		}
		c, err = AddSparseRing(pool, "acc", c, sq, ring)
		if err != nil {
			t.Fatal(err)
		}
	}
	closed, err := DensifyRing(pool, "closed", c, ring, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g, err := closed.At(int64(i), int64(j))
			if err != nil {
				t.Fatal(err)
			}
			if g != dist[i][j] {
				t.Fatalf("closure (%d,%d) = %g, want %g", i, j, g, dist[i][j])
			}
		}
	}
}

// TestRingClosureDenseMatchesFloydWarshall drives the dense-kind
// closure iteration — X ← X ⊕ (X ⊗ X) in the storage domain, then
// FinalizeClosure (absent → ring.Zero, diagonal ⊕ One) — against the
// same Floyd–Warshall reference. The diagonal stays implicit during the
// iteration because the minplus One is float64 0, which storage-domain
// kernels read as absent.
func TestRingClosureDenseMatchesFloydWarshall(t *testing.T) {
	ring, err := scalarop.Ring("minplus")
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	pool := buffer.New(disk.NewDevice(64), 64)
	adj := genIntDense(t, pool, "adj", n, 0.08, 7)

	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			v, err := adj.At(int64(i), int64(j))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case i == j:
				dist[i][j] = 0
			case v != 0:
				dist[i][j] = v
			default:
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}

	x := adj
	for span := int64(1); span < int64(n-1); span *= 2 {
		y, err := MatMulTiledRing(pool, "sq", x, x, 2, ring)
		if err != nil {
			t.Fatal(err)
		}
		x, err = AddDenseRing(pool, "acc", x, y, ring)
		if err != nil {
			t.Fatal(err)
		}
	}
	closed, err := FinalizeClosure(pool, "closed", x, ring)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g, err := closed.At(int64(i), int64(j))
			if err != nil {
				t.Fatal(err)
			}
			if g != dist[i][j] {
				t.Fatalf("dense closure (%d,%d) = %g, want %g", i, j, g, dist[i][j])
			}
		}
	}
}
