package linalg

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/scalarop"
)

// Ring-generic dense kernels. The tiled schedule (super-block sizing,
// pin/prefetch/flush order, worker clamping) is shared with the
// standard kernels in linalg.go — a semi-ring changes which arithmetic
// runs between pin and release, never which blocks move. The packed
// 4×4 microkernel stays a standard-ring fast path: its FMA accumulation
// order is part of the bit-identical contract and has no analogue for
// min/max folds, so non-standard rings take the tile-pair loop.
//
// Storage convention, shared with the sparse ring kernels: under a
// non-standard ring a stored float64 0 denotes the ring's Zero, for
// dense tiles exactly as for absent sparse elements. That makes the
// array kind a pure storage property — a dense and a sparse operand
// holding the same values multiply to the same result — and it is the
// only convention a kind-free backend (where sparse() is the identity)
// can agree with. The caveat: a COMPUTED ring value equal to exact 0
// collapses to Zero when stored. For the standard and boolean rings 0
// is the Zero, so nothing changes; for the tropical rings it means
// mixed-sign weights can lose an exact-0 path sum, and the closure
// kernels keep their ⊗-identity diagonal (minplus One = 0) implicit
// until the final verbatim densify for exactly this reason.

// MatMulTiledRing multiplies a by b over the given semi-ring with the
// Appendix A tiled schedule. The standard ring takes MatMulTiledWorkers
// (packed microkernel and all) verbatim.
func MatMulTiledRing(pool *buffer.Pool, name string, a, b *array.Matrix, workers int, ring *scalarop.Semiring) (*array.Matrix, error) {
	if ring.IsStandard() {
		return MatMulTiledWorkers(pool, name, a, b, workers)
	}
	return matMulTiledRing(pool, name, a, b, workers, KernelNaive, ring)
}

// MatMulNaiveRing is the triple-loop fallback over an arbitrary
// semi-ring, for operands whose tiling the tiled schedule rejects.
func MatMulNaiveRing(pool *buffer.Pool, name string, a, b *array.Matrix, opts array.Options, ring *scalarop.Semiring) (*array.Matrix, error) {
	if ring.IsStandard() {
		return MatMulNaive(pool, name, a, b, opts)
	}
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), opts)
	if err != nil {
		return nil, err
	}
	for j := int64(0); j < b.Cols(); j++ {
		for i := int64(0); i < a.Rows(); i++ {
			acc := ring.Zero
			for k := int64(0); k < a.Cols(); k++ {
				av, err := a.At(i, k)
				if err != nil {
					return nil, err
				}
				if av == 0 || av == ring.Zero {
					continue
				}
				bv, err := b.At(k, j)
				if err != nil {
					return nil, err
				}
				if bv == 0 || bv == ring.Zero {
					continue
				}
				acc = ring.Add(acc, ring.Mul(av, bv))
			}
			if acc == ring.Zero {
				acc = 0 // store Zero as absent
			}
			if err := t.Set(i, j, acc); err != nil {
				return nil, err
			}
		}
	}
	return t, pool.FlushAll()
}

// multiplyTilePairRing is multiplyTilePair over a semi-ring in the
// storage domain: an element reading 0 (or the ring's Zero itself) is
// absent and annihilates — the same work-skip the standard kernel's
// `av == 0` performs, justified by the same annihilation law. The
// output tile accumulates in the storage domain too (fresh tiles arrive
// zeroed = all-absent), so no identity seeding pass is needed.
func multiplyTilePairRing(at, bt, ct *array.Tile, ring *scalarop.Semiring) {
	for i := ct.RowLo; i < ct.RowHi; i++ {
		for k := at.ColLo; k < at.ColHi; k++ {
			av := at.At(i, k)
			if av == 0 || av == ring.Zero {
				continue
			}
			for j := ct.ColLo; j < ct.ColHi; j++ {
				bv := bt.At(k, j)
				if bv == 0 || bv == ring.Zero {
					continue
				}
				m := ring.Mul(av, bv)
				if m == ring.Zero {
					continue
				}
				if cur := ct.At(i, j); cur == 0 {
					ct.Set(i, j, m)
				} else {
					ct.Set(i, j, ring.Add(cur, m))
				}
			}
		}
	}
}

// fillTilesZero sets the valid region of pinned tiles to the ring's
// ⊕-identity — used when materializing VERBATIM ring values (DensifyRing,
// closure finalization), where absence must become an explicit Zero.
func fillTilesZero(tiles []*array.Tile, ring *scalarop.Semiring) {
	for _, t := range tiles {
		for i := t.RowLo; i < t.RowHi; i++ {
			for j := t.ColLo; j < t.ColHi; j++ {
				t.Set(i, j, ring.Zero)
			}
		}
	}
}

// AddDenseRing ⊕-merges two aligned dense matrices elementwise in the
// storage domain: absent (0) on one side takes the other's value,
// present on both sides ⊕-combines. The closure iteration's merge step
// for the dense kind.
func AddDenseRing(pool *buffer.Pool, name string, a, b *array.Matrix, ring *scalarop.Semiring) (*array.Matrix, error) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if atr != btr || atc != btc {
		return nil, fmt.Errorf("linalg: tile mismatch %dx%d vs %dx%d", atr, atc, btr, btc)
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), a.Cols(), array.Options{Shape: a.Shape(), Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := a.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			at, err := a.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			bt, err := b.PinTile(ti, tj)
			if err != nil {
				at.Release()
				return nil, err
			}
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				at.Release()
				bt.Release()
				return nil, err
			}
			for i := ct.RowLo; i < ct.RowHi; i++ {
				for j := ct.ColLo; j < ct.ColHi; j++ {
					av, bv := at.At(i, j), bt.At(i, j)
					switch {
					case av == 0:
						ct.Set(i, j, bv)
					case bv == 0:
						ct.Set(i, j, av)
					default:
						ct.Set(i, j, ring.Add(av, bv))
					}
				}
			}
			ct.MarkDirty()
			ct.Release()
			at.Release()
			bt.Release()
		}
	}
	return t, pool.FlushAll()
}

// FinalizeClosure converts a storage-domain closure iterate into the
// verbatim result the caller reads: absent (0) becomes an explicit
// ring.Zero, and the implicit ⊗-identity diagonal is ⊕-merged in (for
// minplus, unreached pairs read +Inf and the diagonal reads 0).
func FinalizeClosure(pool *buffer.Pool, name string, x *array.Matrix, ring *scalarop.Semiring) (*array.Matrix, error) {
	t, err := array.NewMatrix(pool, name, x.Rows(), x.Cols(), array.Options{Shape: x.Shape(), Lin: x.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := x.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			xt, err := x.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				xt.Release()
				return nil, err
			}
			for i := ct.RowLo; i < ct.RowHi; i++ {
				for j := ct.ColLo; j < ct.ColHi; j++ {
					v := xt.At(i, j)
					if v == 0 {
						v = ring.Zero
					}
					if i == j {
						v = ring.Add(v, ring.One)
					}
					ct.Set(i, j, v)
				}
			}
			ct.MarkDirty()
			ct.Release()
			xt.Release()
		}
	}
	return t, pool.FlushAll()
}
