package linalg

import (
	"riot/internal/array"
)

// Kernel selects the arithmetic inner loop of the tiled multiply. The
// I/O schedule (which tiles are pinned, prefetched, and released, and
// in what order) is identical for every kernel; only the work done
// between pin and release differs, which is what lets the golden I/O
// counter tests pin the schedule while the gflops ablation compares the
// kernels.
type Kernel int

const (
	// KernelMicro packs each pinned super-block pair into contiguous
	// zero-padded panels and accumulates with the register-blocked 4×4
	// microkernel below. This is the default.
	KernelMicro Kernel = iota
	// KernelNaive is the per-element accessor triple loop the
	// microkernel replaced, kept reachable for the gflops ablation and
	// the kernel-equivalence property tests.
	KernelNaive
)

// String names the kernel for bench tables.
func (k Kernel) String() string {
	if k == KernelNaive {
		return "naive"
	}
	return "micro"
}

// mr and nr are the microkernel's register block: each invocation
// produces a 4×4 block of C, streaming 4 A lanes and 4 B lanes per k.
// Panels are zero-padded up to multiples of mr/nr, so the microkernel
// never branches on bounds — edge work costs a few wasted lanes instead
// of a scalar cleanup loop.
const (
	mr = 4
	nr = 4
)

// mulScratch holds one worker's packing buffers, grown on demand and
// reused across k-steps and super-blocks. The buffers are transient
// host-side scratch (like MatMulBNLJ's row chunks), bounded by the
// sizes of the three pinned super-blocks; they are not pool frames and
// carry no I/O.
type mulScratch struct {
	apack []float64 // A panel: row blocks of mr lanes, k-major
	bpack []float64 // B panel: column blocks of nr lanes, k-major
	cpack []float64 // C panel: row-major Mp×Np accumulator
}

// grow returns buf with at least n elements, reallocating if needed.
// Contents are unspecified; callers overwrite or clear what they use.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// roundUp returns n rounded up to a multiple of block.
func roundUp(n, block int) int {
	return (n + block - 1) / block * block
}

// packA packs the pinned A tile block (tile rows [ti0,ti1), tile cols
// [tk0,tk1), row-major in atiles) into the panel format the microkernel
// streams: rows grouped in blocks of mr, k-major within a block, the mr
// lanes of one k adjacent. Element (m, k) of the logical M×K panel
// lands at apack[((m/mr)*K+k)*mr + m%mr]. Rows M..Mp-1 are zero pad.
func packA(apack []float64, atiles []*array.Tile, ti0, ti1, tk0, tk1, side, K int) {
	for ti := ti0; ti < ti1; ti++ {
		for tk := tk0; tk < tk1; tk++ {
			at := atiles[(ti-ti0)*(tk1-tk0)+(tk-tk0)]
			rbase := (ti - ti0) * side
			kbase := (tk - tk0) * side
			for i := at.RowLo; i < at.RowHi; i++ {
				m := rbase + int(i-at.RowLo)
				row := at.Row(i)
				base := (m/mr)*K*mr + m%mr
				for lk, v := range row {
					apack[base+(kbase+lk)*mr] = v
				}
			}
		}
	}
}

// packB packs the pinned B tile block (tile rows [tk0,tk1), tile cols
// [tj0,tj1)) into column blocks of nr lanes, k-major: element (k, n) of
// the logical K×N panel lands at bpack[((n/nr)*K+k)*nr + n%nr].
// Columns N..Np-1 are zero pad.
func packB(bpack []float64, btiles []*array.Tile, tk0, tk1, tj0, tj1, side, K int) {
	for tk := tk0; tk < tk1; tk++ {
		for tj := tj0; tj < tj1; tj++ {
			bt := btiles[(tk-tk0)*(tj1-tj0)+(tj-tj0)]
			kbase := (tk - tk0) * side
			nbase := (tj - tj0) * side
			for i := bt.RowLo; i < bt.RowHi; i++ {
				k := kbase + int(i-bt.RowLo)
				row := bt.Row(i)
				for ln, v := range row {
					n := nbase + ln
					bpack[((n/nr)*K+k)*nr+n%nr] = v
				}
			}
		}
	}
}

// microKernel4x4 accumulates a 4×4 block of C over K steps:
// c[r][s] += Σ_k a[k*4+r] · b[k*4+s], k ascending. The k-innermost
// order makes each output element's accumulation sequence identical to
// the naive per-element loop, so the result is bit-identical on finite
// inputs (zero-padded lanes add exact zeros). The sixteen accumulators
// live in registers across the whole K loop; a and b stream
// sequentially.
func microKernel4x4(a, b []float64, K int, c []float64, ldc int) {
	c00, c01, c02, c03 := c[0], c[1], c[2], c[3]
	c10, c11, c12, c13 := c[ldc], c[ldc+1], c[ldc+2], c[ldc+3]
	c20, c21, c22, c23 := c[2*ldc], c[2*ldc+1], c[2*ldc+2], c[2*ldc+3]
	c30, c31, c32, c33 := c[3*ldc], c[3*ldc+1], c[3*ldc+2], c[3*ldc+3]
	for k := 0; k < K; k++ {
		a0, a1, a2, a3 := a[4*k], a[4*k+1], a[4*k+2], a[4*k+3]
		b0, b1, b2, b3 := b[4*k], b[4*k+1], b[4*k+2], b[4*k+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	c[0], c[1], c[2], c[3] = c00, c01, c02, c03
	c[ldc], c[ldc+1], c[ldc+2], c[ldc+3] = c10, c11, c12, c13
	c[2*ldc], c[2*ldc+1], c[2*ldc+2], c[2*ldc+3] = c20, c21, c22, c23
	c[3*ldc], c[3*ldc+1], c[3*ldc+2], c[3*ldc+3] = c30, c31, c32, c33
}

// multiplyPanels runs one k-step of a super-block through the packed
// microkernel: pack the pinned A and B tile blocks into zero-padded
// panels, then accumulate every 4×4 block of the C panel. M, N are the
// super-block's element extents, K this k-step's; Mp/Np the padded C
// panel dims. Pad lanes multiply zeros into discarded C rows/columns.
func multiplyPanels(sc *mulScratch, atiles, btiles []*array.Tile, ti0, ti1, tk0, tk1, tj0, tj1, side, M, N, K int) {
	Mp, Np := roundUp(M, mr), roundUp(N, nr)
	sc.apack = grow(sc.apack, Mp*K)
	sc.bpack = grow(sc.bpack, Np*K)
	// Pad lanes live only in the last row/column block; clear just those
	// (valid lanes are fully overwritten by the packers, pad lanes must
	// not inherit stale data from a previous, differently-shaped panel).
	if M < Mp {
		clear(sc.apack[(Mp/mr-1)*K*mr:])
	}
	if N < Np {
		clear(sc.bpack[(Np/nr-1)*K*nr:])
	}
	packA(sc.apack, atiles, ti0, ti1, tk0, tk1, side, K)
	packB(sc.bpack, btiles, tk0, tk1, tj0, tj1, side, K)
	for rb := 0; rb < Mp/mr; rb++ {
		arow := sc.apack[rb*K*mr:]
		for cb := 0; cb < Np/nr; cb++ {
			microKernel4x4(arow, sc.bpack[cb*K*nr:], K, sc.cpack[rb*mr*Np+cb*nr:], Np)
		}
	}
}

// unpackC copies the valid region of the C panel into the pinned
// output tiles with raw row copies. Dirty marking stays with the
// caller, which marks every C tile once per super-block.
func unpackC(cpack []float64, ctiles []*array.Tile, ti0, ti1, tj0, tj1, side, Np int) {
	for ti := ti0; ti < ti1; ti++ {
		for tj := tj0; tj < tj1; tj++ {
			ct := ctiles[(ti-ti0)*(tj1-tj0)+(tj-tj0)]
			rbase := (ti - ti0) * side
			cbase := (tj - tj0) * side
			for i := ct.RowLo; i < ct.RowHi; i++ {
				m := rbase + int(i-ct.RowLo)
				copy(ct.Row(i), cpack[m*Np+cbase:])
			}
		}
	}
}
