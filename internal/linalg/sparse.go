package linalg

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/sparse"
)

// Sparse kernels. All three multiply variants share one schedule — loop
// output tiles, accumulate across the shared dimension — but the tile
// directory of a sparse operand lets them skip k-steps outright: an
// all-zero tile contributes nothing, costs no block read, and (for the
// sparse×sparse kernel) produces no output block either. Block reads
// therefore scale with the number of NON-EMPTY tiles rather than with
// the grid, which is the whole point of the sparse kind: a banded
// adjacency matrix at 1% density multiplies with a few percent of the
// dense kernel's I/O.
//
// The kernels are sequential and accumulate in row-major, ascending-k
// order, so their results and I/O counts are deterministic.

// checkSquareAligned verifies the operands use equal square tiles (the
// same precondition MatMulTiled imposes) and conformable shapes.
func checkSquareAligned(aRows, aCols, bRows, bCols int64, atr, atc, btr, btc int) error {
	if aCols != bRows {
		return fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", aRows, aCols, bRows, bCols)
	}
	if atr != atc || btr != btc || atr != btr {
		return fmt.Errorf("linalg: sparse matmul requires matching square tiles (got %dx%d and %dx%d)", atr, atc, btr, btc)
	}
	return nil
}

// MatMulSparseDense multiplies a sparse l×m matrix by a dense m×n matrix
// into a fresh dense matrix. For each output tile it pins the result and
// one b tile while iterating the nonzeros of the matching a tile;
// k-steps whose a tile is empty are skipped before any block is touched.
func MatMulSparseDense(pool *buffer.Pool, name string, a *sparse.Matrix, b *array.Matrix) (*array.Matrix, error) {
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: b.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			for tk := 0; tk < agc; tk++ {
				if a.TileEmpty(ti, tk) {
					continue
				}
				bt, err := b.PinTile(tk, tj)
				if err != nil {
					ct.Release()
					return nil, err
				}
				rowLo, _, colLo, _ := a.TileBounds(ti, tk)
				err = a.IterTile(ti, tk, func(r, c int, v float64) error {
					i := rowLo + int64(r)
					k := colLo + int64(c)
					for j := ct.ColLo; j < ct.ColHi; j++ {
						ct.Set(i, j, ct.At(i, j)+v*bt.At(k, j))
					}
					return nil
				})
				bt.Release()
				if err != nil {
					ct.Release()
					return nil, err
				}
			}
			ct.MarkDirty()
			ct.Release()
		}
	}
	return t, pool.FlushAll()
}

// MatMulDenseSparse multiplies a dense l×m matrix by a sparse m×n matrix
// into a fresh dense matrix, skipping k-steps whose b tile is empty.
func MatMulDenseSparse(pool *buffer.Pool, name string, a *array.Matrix, b *sparse.Matrix) (*array.Matrix, error) {
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			for tk := 0; tk < agc; tk++ {
				if b.TileEmpty(tk, tj) {
					continue
				}
				at, err := a.PinTile(ti, tk)
				if err != nil {
					ct.Release()
					return nil, err
				}
				rowLo, _, colLo, _ := b.TileBounds(tk, tj)
				err = b.IterTile(tk, tj, func(r, c int, v float64) error {
					k := rowLo + int64(r)
					j := colLo + int64(c)
					for i := ct.RowLo; i < ct.RowHi; i++ {
						ct.Set(i, j, ct.At(i, j)+at.At(i, k)*v)
					}
					return nil
				})
				at.Release()
				if err != nil {
					ct.Release()
					return nil, err
				}
			}
			ct.MarkDirty()
			ct.Release()
		}
	}
	return t, pool.FlushAll()
}

// MatMulSparseSparse multiplies two sparse matrices into a fresh sparse
// matrix. A k-step runs only when BOTH operand tiles are non-empty
// (tile-level intersection), and output tiles that stay all-zero are
// never written — path-length style products of banded or clustered
// adjacency matrices read and write a small multiple of the band's
// tiles. Each output tile accumulates in a block-sized host buffer, so
// at most one frame is pinned at a time.
func MatMulSparseSparse(pool *buffer.Pool, name string, a, b *sparse.Matrix) (*sparse.Matrix, error) {
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	bld, err := sparse.NewBuilder(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	side := atr
	scratch := make([]float64, side*side) // output tile accumulator
	bscr := make([]float64, side*side)    // decoded b tile
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			for i := range scratch {
				scratch[i] = 0
			}
			touched := false
			for tk := 0; tk < agc; tk++ {
				if a.TileEmpty(ti, tk) || b.TileEmpty(tk, tj) {
					continue
				}
				touched = true
				if err := b.ReadTile(tk, tj, bscr); err != nil {
					bld.Abandon()
					return nil, err
				}
				err := a.IterTile(ti, tk, func(r, c int, v float64) error {
					brow := bscr[c*side : (c+1)*side]
					out := scratch[r*side : (r+1)*side]
					for jj, bv := range brow {
						if bv != 0 {
							out[jj] += v * bv
						}
					}
					return nil
				})
				if err != nil {
					bld.Abandon()
					return nil, err
				}
			}
			if !touched {
				continue // provably all-zero: no SetTile, no block
			}
			if err := bld.SetTile(ti, tj, scratch); err != nil {
				bld.Abandon()
				return nil, err
			}
		}
	}
	return bld.Finish()
}

// transposeShape flips row tiles to column tiles and vice versa; square
// tiles transpose onto themselves.
func transposeShape(s array.TileShape) array.TileShape {
	switch s {
	case array.RowTiles:
		return array.ColTiles
	case array.ColTiles:
		return array.RowTiles
	}
	return array.SquareTiles
}

// TransposeSparse produces the sparse transpose of a. The tile grid
// transposes tile-for-tile (output tile (i, j) is the transpose of input
// tile (j, i)), so empty input tiles become empty output tiles without
// any I/O at all — transposing an adjacency matrix touches exactly its
// non-empty tiles once.
func TransposeSparse(pool *buffer.Pool, name string, a *sparse.Matrix) (*sparse.Matrix, error) {
	bld, err := sparse.NewBuilder(pool, name, a.Cols(), a.Rows(),
		array.Options{Shape: transposeShape(a.Shape()), Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	// Output tile dims are the input's swapped; the scratch is indexed
	// with the output's column stride (= the input tile height).
	atr, atc := a.TileDims()
	otr, otc := atc, atr
	out := make([]float64, otr*otc)
	for oi := 0; oi < agc; oi++ { // output tile rows == input tile cols
		for oj := 0; oj < agr; oj++ {
			for i := range out {
				out[i] = 0
			}
			if a.TileEmpty(oj, oi) {
				continue
			}
			err := a.IterTile(oj, oi, func(r, c int, v float64) error {
				out[c*otc+r] = v
				return nil
			})
			if err != nil {
				bld.Abandon()
				return nil, err
			}
			if err := bld.SetTile(oi, oj, out); err != nil {
				bld.Abandon()
				return nil, err
			}
		}
	}
	return bld.Finish()
}
