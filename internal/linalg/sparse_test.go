package linalg

import (
	"testing"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/sparse"
)

type xorshift uint64

func (x *xorshift) next() float64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return float64(*x%1000003) / 1000003
}

func genDense(t *testing.T, pool *buffer.Pool, name string, rows, cols int64, density float64, seed uint64) *array.Matrix {
	t.Helper()
	rng := xorshift(seed*2654435761 + 1)
	m, err := array.NewMatrix(pool, name, rows, cols, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fill(func(i, j int64) float64 {
		if rng.next() < density {
			return 1 + rng.next()
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func matEqual(t *testing.T, ctx string, got interface {
	At(i, j int64) (float64, error)
}, want *array.Matrix) {
	t.Helper()
	for i := int64(0); i < want.Rows(); i++ {
		for j := int64(0); j < want.Cols(); j++ {
			w, err := want.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			g, err := got.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if g != w {
				t.Fatalf("%s: (%d,%d) = %g, want %g", ctx, i, j, g, w)
			}
		}
	}
}

// TestSparseKernelsAgreeWithDense is the property test of the sparse
// subsystem: every sparse kernel must agree elementwise with its dense
// counterpart on random matrices at densities {0, 0.01, 0.1, 1.0}.
// Accumulation orders match the dense tiled kernel's (row-major,
// ascending k), so agreement is exact, not approximate.
func TestSparseKernelsAgreeWithDense(t *testing.T) {
	for _, d := range []float64{0, 0.01, 0.1, 1.0} {
		pool := buffer.New(disk.NewDevice(64), 64) // 8×8 tiles
		a := genDense(t, pool, "a", 37, 29, d, 1)
		b := genDense(t, pool, "b", 29, 41, d, 2)
		sa, err := sparse.FromDense(pool, "sa", a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := sparse.FromDense(pool, "sb", b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MatMulTiled(pool, "want", a, b)
		if err != nil {
			t.Fatal(err)
		}

		sd, err := MatMulSparseDense(pool, "sd", sa, b)
		if err != nil {
			t.Fatal(err)
		}
		matEqual(t, "sparse×dense", sd, want)

		ds, err := MatMulDenseSparse(pool, "ds", a, sb)
		if err != nil {
			t.Fatal(err)
		}
		matEqual(t, "dense×sparse", ds, want)

		ss, err := MatMulSparseSparse(pool, "ss", sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		matEqual(t, "sparse×sparse", ss, want)

		wt, err := Transpose(pool, "wt", a)
		if err != nil {
			t.Fatal(err)
		}
		st, err := TransposeSparse(pool, "st", sa)
		if err != nil {
			t.Fatal(err)
		}
		matEqual(t, "transpose", st, wt)
	}
}

// TestSparseMatMulZeroAndDegenerate drives the empty-matrix edge cases
// through the sparse kernels: all-zero operands and 0×0 / 0×n shapes.
func TestSparseMatMulZeroAndDegenerate(t *testing.T) {
	pool := buffer.New(disk.NewDevice(64), 64)
	zero := genDense(t, pool, "z", 20, 20, 0, 1)
	sz, err := sparse.FromDense(pool, "sz", zero)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := MatMulSparseSparse(pool, "ss", sz, sz)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NNZ() != 0 || ss.Blocks() != 0 {
		t.Fatalf("zero × zero: nnz=%d blocks=%d", ss.NNZ(), ss.Blocks())
	}
	// 0×n shapes flow through the builder and the kernels.
	e1, err := sparse.New(pool, "e1", 0, 16, array.Options{Shape: array.SquareTiles}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sparse.New(pool, "e2", 16, 0, array.Options{Shape: array.SquareTiles}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = e2
	full := genDense(t, pool, "f", 16, 16, 1, 5)
	sf, err := sparse.FromDense(pool, "sf", full)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := MatMulSparseSparse(pool, "p", e1, sf)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows() != 0 || prod.Cols() != 16 || prod.NNZ() != 0 {
		t.Fatalf("0×16 product: %d×%d nnz=%d", prod.Rows(), prod.Cols(), prod.NNZ())
	}
	pd, err := MatMulSparseDense(pool, "pd", e1, full)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Rows() != 0 || pd.Cols() != 16 {
		t.Fatalf("0×16 dense product: %d×%d", pd.Rows(), pd.Cols())
	}
}

// TestSparseMatMulSkipsEmptyTiles pins the I/O claim: multiplying a
// banded (pathlengths-style) adjacency matrix with the sparse×sparse
// kernel reads a small fraction of what the dense tiled kernel reads on
// the same shape.
func TestSparseMatMulSkipsEmptyTiles(t *testing.T) {
	const n, band = 256, 2 // ~2% density, banded: most 8×8 tiles empty
	mk := func() (*buffer.Pool, *array.Matrix) {
		pool := buffer.New(disk.NewDevice(64), 48)
		adj, err := array.NewMatrix(pool, "adj", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			t.Fatal(err)
		}
		if err := adj.Fill(func(i, j int64) float64 {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d != 0 && d <= band {
				return 1
			}
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		return pool, adj
	}

	pool1, adj1 := mk()
	pool1.Device().ResetStats()
	if _, err := MatMulTiled(pool1, "dd", adj1, adj1); err != nil {
		t.Fatal(err)
	}
	denseReads := pool1.Device().Stats().BlocksRead

	pool2, adj2 := mk()
	sadj, err := sparse.FromDense(pool2, "sadj", adj2)
	if err != nil {
		t.Fatal(err)
	}
	pool2.Device().ResetStats()
	if _, err := MatMulSparseSparse(pool2, "ss", sadj, sadj); err != nil {
		t.Fatal(err)
	}
	sparseReads := pool2.Device().Stats().BlocksRead

	if sparseReads*4 > denseReads {
		t.Fatalf("sparse matmul read %d blocks, dense %d: want at least 4× fewer", sparseReads, denseReads)
	}
}
