// Package linalg implements RIOT's out-of-core linear algebra kernels
// over the tiled array store, under an enforced buffer-pool budget:
//
//   - MatMulTiled: the Appendix A schedule — square p×p submatrices with
//     p ≈ √(M/3), three submatrices pinned at a time, achieving
//     Θ(lmn/(B√M)) block I/Os with square tiling.
//   - MatMulBNLJ: the §3 algorithm inspired by block nested-loop join —
//     as many rows of A as fit, re-scanning B once per chunk.
//   - MatMulNaive: R's own Example 2 triple loop, honoring whatever
//     layout the operands have (the baseline that melts down with
//     column-major A).
//   - LU: blocked right-looking LU decomposition (the algebra's direct
//     solver), Transpose, and triangular solves.
//
// Every kernel works tile-by-tile through the pool, so its measured I/O
// can be compared against internal/costmodel's formulas (experiment E6).
package linalg

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/scalarop"
)

// MatMulNaive multiplies a (l×m) by b (m×n) into a fresh matrix with
// opts layout, using the element-at-a-time loop of Example 2. Intended
// for small inputs and layout experiments; its I/O profile depends
// entirely on the operand layouts.
func MatMulNaive(pool *buffer.Pool, name string, a, b *array.Matrix, opts array.Options) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), opts)
	if err != nil {
		return nil, err
	}
	for j := int64(0); j < b.Cols(); j++ {
		for i := int64(0); i < a.Rows(); i++ {
			var sum float64
			for k := int64(0); k < a.Cols(); k++ {
				av, err := a.At(i, k)
				if err != nil {
					return nil, err
				}
				bv, err := b.At(k, j)
				if err != nil {
					return nil, err
				}
				sum += av * bv
			}
			if err := t.Set(i, j, sum); err != nil {
				return nil, err
			}
		}
	}
	return t, pool.FlushAll()
}

// MatMulBNLJ multiplies with the block-nested-loop-join-inspired
// schedule: chunks of rows of A stay pinned while B streams by column.
// A should be row-tiled and B column-tiled for the intended I/O profile.
func MatMulBNLJ(pool *buffer.Pool, name string, a, b *array.Matrix, opts array.Options) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	l, m, n := a.Rows(), a.Cols(), b.Cols()
	t, err := array.NewMatrix(pool, name, l, n, opts)
	if err != nil {
		return nil, err
	}
	// How many rows of A fit: the chunk's A rows and T rows stay in
	// host buffers (counted against M), plus one block for streaming B.
	// Degenerate 0-width shapes (m+n == 0) take any chunk size — the
	// loops below are vacuous either way.
	memElems := pool.MemoryElems()
	rows := int64(1)
	if m+n > 0 {
		rows = (memElems - int64(pool.Device().BlockElems())) / (m + n)
	}
	if rows < 1 {
		rows = 1
	}
	achunk := make([]float64, 0)
	tchunk := make([]float64, 0)
	for r0 := int64(0); r0 < l; r0 += rows {
		r1 := min(r0+rows, l)
		h := r1 - r0
		// Load A rows [r0, r1) into a host-side chunk (charged as reads
		// of A's tiles).
		achunk = achunk[:0]
		if cap(achunk) < int(h*m) {
			achunk = make([]float64, 0, h*m)
		}
		for i := r0; i < r1; i++ {
			for k := int64(0); k < m; k++ {
				v, err := a.At(i, k)
				if err != nil {
					return nil, err
				}
				achunk = append(achunk, v)
			}
		}
		tchunk = tchunk[:0]
		if cap(tchunk) < int(h*n) {
			tchunk = make([]float64, 0, h*n)
		}
		tchunk = append(tchunk, make([]float64, h*n)...)
		// Stream B column by column.
		for j := int64(0); j < n; j++ {
			for k := int64(0); k < m; k++ {
				bv, err := b.At(k, j)
				if err != nil {
					return nil, err
				}
				if bv == 0 {
					continue
				}
				for i := int64(0); i < h; i++ {
					tchunk[i*n+j] += achunk[i*m+k] * bv
				}
			}
		}
		for i := int64(0); i < h; i++ {
			for j := int64(0); j < n; j++ {
				if err := t.Set(r0+i, j, tchunk[i*n+j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, pool.FlushAll()
}

// MatMulTiled multiplies square-tiled matrices with the Appendix A
// schedule. Memory is split three ways; each part holds a q×q block of
// tiles (q = √(frames/3)), i.e. a p×p submatrix with p = q·√B ≈ √(M/3).
func MatMulTiled(pool *buffer.Pool, name string, a, b *array.Matrix) (*array.Matrix, error) {
	return MatMulTiledWorkers(pool, name, a, b, 1)
}

// MatMulTiledWorkers is MatMulTiled with the output super-blocks
// dispatched to up to workers goroutines. Each in-flight worker pins
// three q×q tile blocks at once, so the super-block side is shrunk to
// q = √(capacity/(3·W)) and the in-flight worker count is capped at
// capacity / (3·q²): the kernel never holds more pinned frames than the
// pool's budget no matter how many workers are requested. Workers
// produce disjoint output super-blocks (input tiles are shared
// read-only), and each output tile accumulates its k-products in the
// same order as the sequential schedule, so the result is bit-identical
// for any worker count. workers <= 1 runs the exact sequential schedule.
func MatMulTiledWorkers(pool *buffer.Pool, name string, a, b *array.Matrix, workers int) (*array.Matrix, error) {
	return MatMulTiledKernel(pool, name, a, b, workers, KernelMicro)
}

// MatMulTiledKernel is MatMulTiledWorkers with an explicit choice of
// inner kernel. Both kernels run the identical pin/prefetch/flush
// schedule; the choice only selects the arithmetic between pin and
// release, which is what the gflops ablation measures.
func MatMulTiledKernel(pool *buffer.Pool, name string, a, b *array.Matrix, workers int, kern Kernel) (*array.Matrix, error) {
	return matMulTiledRing(pool, name, a, b, workers, kern, scalarop.Standard)
}

// matMulTiledRing runs the tiled schedule over an arbitrary semi-ring.
// The schedule — super-block sizing, pin/prefetch/flush order, worker
// clamping — is ring-independent; the ring only selects the arithmetic
// between pin and release, exactly like the Kernel choice. The standard
// ring takes the legacy code paths verbatim.
func matMulTiledRing(pool *buffer.Pool, name string, a, b *array.Matrix, workers int, kern Kernel, ring *scalarop.Semiring) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if atr != atc || btr != btc || atr != btr {
		return nil, fmt.Errorf("linalg: MatMulTiled requires square tiles (got %dx%d and %dx%d)", atr, atc, btr, btc)
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()

	w := workers
	if w < 1 {
		w = 1
	}
	// Split the frame budget across in-flight workers, three ways each.
	// When the task count (which depends on q) clamps w down, recompute
	// q from the smaller w so the remaining workers use the freed
	// budget: fewer, larger super-blocks mean fewer k-passes and less
	// I/O. The loop converges because w only ever shrinks.
	var q, superCols, tasks int
	for {
		q = int(math.Sqrt(float64(pool.Capacity()) / float64(3*w)))
		if q < 1 {
			q = 1
		}
		if inFlight := pool.Capacity() / (3 * q * q); w > inFlight && inFlight >= 1 {
			w = inFlight
		}
		superRows := (agr + q - 1) / q
		superCols = (bgc + q - 1) / q
		tasks = superRows * superCols
		if w <= tasks {
			break
		}
		w = tasks
	}
	if w <= 1 {
		// Sequential: use the full budget for one worker. This is the
		// configuration where the I/O scheduler hints pay off — the
		// prefetched super-blocks are consumed by the same goroutine
		// that announced them.
		q = int(math.Sqrt(float64(pool.Capacity()) / 3))
		if q < 1 {
			q = 1
		}
		var sc mulScratch
		for ti0 := 0; ti0 < agr; ti0 += q {
			for tj0 := 0; tj0 < bgc; tj0 += q {
				if err := multiplySuperBlock(t, a, b, ti0, tj0, q, agr, agc, bgc, true, kern, &sc, ring); err != nil {
					return nil, err
				}
			}
		}
		return t, pool.FlushAll()
	}

	// Parallel: workers pull output super-blocks from a shared queue.
	// Each worker owns one scratch set of packing buffers, reused across
	// every super-block it processes.
	scratches := make([]mulScratch, w)
	var next atomic.Int64
	var failed atomic.Bool
	err = runWorkers(w, func(j int) error {
		for !failed.Load() {
			task := int(next.Add(1)) - 1
			if task >= tasks {
				return nil
			}
			ti0 := (task / superCols) * q
			tj0 := (task % superCols) * q
			// Prefetch hints are disabled in parallel mode: with every
			// worker's three super-blocks pinned the budget has no slack,
			// and on oversubscribed CPUs one worker's claims evict
			// another's prefetched tiles before they are consumed.
			if err := multiplySuperBlock(t, a, b, ti0, tj0, q, agr, agc, bgc, false, kern, &scratches[j], ring); err != nil {
				failed.Store(true)
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, pool.FlushAll()
}

// runWorkers spawns w goroutines running fn(j) and returns the first
// error any of them produced.
func runWorkers(w int, fn func(j int) error) error {
	errs := make([]error, w)
	var wg sync.WaitGroup
	for j := 0; j < w; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = fn(j)
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// multiplySuperBlock computes the q×q-tile output super-block anchored at
// (ti0, tj0): it pins the result super-block once and accumulates across
// the k dimension, pinning one a and one b super-block at a time. With
// the I/O scheduler enabled, the next k-step's input super-blocks are
// announced the moment the current step's tiles are released: the
// prefetch claims recycle exactly those just-released frames (the
// schedule and its budget are unchanged) and the next pins collapse onto
// two sorted vectored reads instead of issuing 2q² single-tile requests
// interleaved with write-backs.
func multiplySuperBlock(t, a, b *array.Matrix, ti0, tj0, q, agr, agc, bgc int, prefetch bool, kern Kernel, sc *mulScratch, ring *scalarop.Semiring) error {
	ti1 := min(ti0+q, agr)
	tj1 := min(tj0+q, bgc)
	if prefetch {
		// Announce the first k-step before pinning the (read-free)
		// result tiles, so its inputs stream in as vectored batches too.
		k1 := min(q, agc)
		a.PrefetchTiles(ti0, ti1, 0, k1)
		b.PrefetchTiles(0, k1, tj0, tj1)
	}
	ctiles, err := pinBlock(t, ti0, ti1, tj0, tj1, true)
	if err != nil {
		return err
	}
	defer releaseBlock(ctiles)
	// Element extents of this super-block. Tiles are square (side×side);
	// only the last tile row/column of the grid is clipped, so the
	// super-block's elements are contiguous ranges.
	side, _ := t.TileDims()
	var M, N, Np int
	if kern == KernelMicro {
		M = int(min(int64(ti1)*int64(side), t.Rows()) - int64(ti0)*int64(side))
		N = int(min(int64(tj1)*int64(side), t.Cols()) - int64(tj0)*int64(side))
		Np = roundUp(N, nr)
		// One C panel accumulates across every k-step, then unpacks once.
		// Fresh C tiles start zeroed, so panel accumulation performs the
		// same additions in the same order as accumulating in the tiles.
		sc.cpack = grow(sc.cpack, roundUp(M, mr)*Np)
		clear(sc.cpack)
	}
	for tk0 := 0; tk0 < agc; tk0 += q {
		tk1 := min(tk0+q, agc)
		atiles, err := pinBlock(a, ti0, ti1, tk0, tk1, false)
		if err != nil {
			return err
		}
		btiles, err := pinBlock(b, tk0, tk1, tj0, tj1, false)
		if err != nil {
			releaseBlock(atiles)
			return err
		}
		if kern == KernelMicro {
			K := int(min(int64(tk1)*int64(side), a.Cols()) - int64(tk0)*int64(side))
			multiplyPanels(sc, atiles, btiles, ti0, ti1, tk0, tk1, tj0, tj1, side, M, N, K)
		} else {
			// Naive: multiply the pinned super-blocks tile by tile
			// through the per-element accessors.
			for ti := ti0; ti < ti1; ti++ {
				for tj := tj0; tj < tj1; tj++ {
					ct := ctiles[(ti-ti0)*(tj1-tj0)+(tj-tj0)]
					for tk := tk0; tk < tk1; tk++ {
						at := atiles[(ti-ti0)*(tk1-tk0)+(tk-tk0)]
						bt := btiles[(tk-tk0)*(tj1-tj0)+(tj-tj0)]
						if ring.IsStandard() {
							multiplyTilePair(at, bt, ct)
						} else {
							multiplyTilePairRing(at, bt, ct, ring)
						}
					}
				}
			}
		}
		releaseBlock(atiles)
		releaseBlock(btiles)
		if prefetch && tk1 < agc {
			nk1 := min(tk1+q, agc)
			a.PrefetchTiles(ti0, ti1, tk1, nk1)
			b.PrefetchTiles(tk1, nk1, tj0, tj1)
		}
	}
	if kern == KernelMicro {
		unpackC(sc.cpack, ctiles, ti0, ti1, tj0, tj1, side, Np)
	}
	for _, ct := range ctiles {
		ct.MarkDirty()
	}
	return nil
}

// pinBlock pins the tile rectangle [ti0,ti1)×[tj0,tj1) of m, row-major.
func pinBlock(m *array.Matrix, ti0, ti1, tj0, tj1 int, fresh bool) ([]*array.Tile, error) {
	tiles := make([]*array.Tile, 0, (ti1-ti0)*(tj1-tj0))
	for ti := ti0; ti < ti1; ti++ {
		for tj := tj0; tj < tj1; tj++ {
			var t *array.Tile
			var err error
			if fresh {
				t, err = m.PinTileNew(ti, tj)
			} else {
				t, err = m.PinTile(ti, tj)
			}
			if err != nil {
				releaseBlock(tiles)
				return nil, err
			}
			tiles = append(tiles, t)
		}
	}
	return tiles, nil
}

func releaseBlock(tiles []*array.Tile) {
	for _, t := range tiles {
		t.Release()
	}
}

// multiplyTilePair accumulates at×bt into ct, respecting edge clipping.
func multiplyTilePair(at, bt, ct *array.Tile) {
	for i := ct.RowLo; i < ct.RowHi; i++ {
		for k := at.ColLo; k < at.ColHi; k++ {
			av := at.At(i, k)
			if av == 0 {
				continue
			}
			for j := ct.ColLo; j < ct.ColHi; j++ {
				ct.Set(i, j, ct.At(i, j)+av*bt.At(k, j))
			}
		}
	}
}

// Transpose produces the transpose of a with the same tiling options.
func Transpose(pool *buffer.Pool, name string, a *array.Matrix) (*array.Matrix, error) {
	return TransposeWorkers(pool, name, a, 1)
}

// TransposeWorkers is Transpose with the source tile columns partitioned
// across up to workers goroutines. Every source element lives in exactly
// one tile, so workers handling disjoint column stripes write disjoint
// output elements; when two stripes share an output tile, the writes
// land on different offsets of the (pinned, never-moving) frame and the
// dirty write-back on eviction keeps partial updates ordered. Each
// worker holds at most two pinned frames (one source tile, one
// overlapping output tile), so the in-flight worker count is capped at
// capacity/2. workers <= 1 runs the exact sequential loop.
//
// Instead of one Matrix.Set per element (a pool request, a grid lookup,
// and a dirty mark each), every source tile is scattered through raw
// row slices: each overlapping output tile is pinned once, filled with
// strided copies out of the source tile's rows, and dirty-marked once.
func TransposeWorkers(pool *buffer.Pool, name string, a *array.Matrix, workers int) (*array.Matrix, error) {
	t, err := array.NewMatrix(pool, name, a.Cols(), a.Rows(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := a.GridDims()
	dside, _ := t.TileDims()
	transposeCols := func(tjLo, tjHi int) error {
		var srows [][]float64
		for ti := 0; ti < gr; ti++ {
			for tj := tjLo; tj < tjHi; tj++ {
				src, err := a.PinTile(ti, tj)
				if err != nil {
					return err
				}
				srows = srows[:0]
				for i := src.RowLo; i < src.RowHi; i++ {
					srows = append(srows, src.Row(i))
				}
				// The source tile lands in the output at rows
				// [ColLo,ColHi) × cols [RowLo,RowHi); the source may be
				// row/col/square-tiled, so that region can overlap
				// several square output tiles.
				for dti := int(src.ColLo) / dside; dti <= int(src.ColHi-1)/dside; dti++ {
					for dtj := int(src.RowLo) / dside; dtj <= int(src.RowHi-1)/dside; dtj++ {
						dst, err := t.PinTile(dti, dtj)
						if err != nil {
							src.Release()
							return err
						}
						jLo, jHi := max(dst.RowLo, src.ColLo), min(dst.RowHi, src.ColHi)
						iLo, iHi := max(dst.ColLo, src.RowLo), min(dst.ColHi, src.RowHi)
						for j := jLo; j < jHi; j++ {
							drow := dst.Row(j)
							for i := iLo; i < iHi; i++ {
								drow[i-dst.ColLo] = srows[i-src.RowLo][j-src.ColLo]
							}
						}
						dst.MarkDirty()
						dst.Release()
					}
				}
				src.Release()
			}
		}
		return nil
	}
	w := workers
	if w > gc {
		w = gc
	}
	if inFlight := pool.Capacity() / 2; w > inFlight && inFlight >= 1 {
		w = inFlight
	}
	if w <= 1 {
		if err := transposeCols(0, gc); err != nil {
			return nil, err
		}
		return t, pool.FlushAll()
	}
	if err := runWorkers(w, func(j int) error {
		return transposeCols(gc*j/w, gc*(j+1)/w)
	}); err != nil {
		return nil, err
	}
	return t, pool.FlushAll()
}
