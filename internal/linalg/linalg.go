// Package linalg implements RIOT's out-of-core linear algebra kernels
// over the tiled array store, under an enforced buffer-pool budget:
//
//   - MatMulTiled: the Appendix A schedule — square p×p submatrices with
//     p ≈ √(M/3), three submatrices pinned at a time, achieving
//     Θ(lmn/(B√M)) block I/Os with square tiling.
//   - MatMulBNLJ: the §3 algorithm inspired by block nested-loop join —
//     as many rows of A as fit, re-scanning B once per chunk.
//   - MatMulNaive: R's own Example 2 triple loop, honoring whatever
//     layout the operands have (the baseline that melts down with
//     column-major A).
//   - LU: blocked right-looking LU decomposition (the algebra's direct
//     solver), Transpose, and triangular solves.
//
// Every kernel works tile-by-tile through the pool, so its measured I/O
// can be compared against internal/costmodel's formulas (experiment E6).
package linalg

import (
	"fmt"
	"math"

	"riot/internal/array"
	"riot/internal/buffer"
)

// MatMulNaive multiplies a (l×m) by b (m×n) into a fresh matrix with
// opts layout, using the element-at-a-time loop of Example 2. Intended
// for small inputs and layout experiments; its I/O profile depends
// entirely on the operand layouts.
func MatMulNaive(pool *buffer.Pool, name string, a, b *array.Matrix, opts array.Options) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), opts)
	if err != nil {
		return nil, err
	}
	for j := int64(0); j < b.Cols(); j++ {
		for i := int64(0); i < a.Rows(); i++ {
			var sum float64
			for k := int64(0); k < a.Cols(); k++ {
				av, err := a.At(i, k)
				if err != nil {
					return nil, err
				}
				bv, err := b.At(k, j)
				if err != nil {
					return nil, err
				}
				sum += av * bv
			}
			if err := t.Set(i, j, sum); err != nil {
				return nil, err
			}
		}
	}
	return t, pool.FlushAll()
}

// MatMulBNLJ multiplies with the block-nested-loop-join-inspired
// schedule: chunks of rows of A stay pinned while B streams by column.
// A should be row-tiled and B column-tiled for the intended I/O profile.
func MatMulBNLJ(pool *buffer.Pool, name string, a, b *array.Matrix, opts array.Options) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	l, m, n := a.Rows(), a.Cols(), b.Cols()
	t, err := array.NewMatrix(pool, name, l, n, opts)
	if err != nil {
		return nil, err
	}
	// How many rows of A fit: the chunk's A rows and T rows stay in
	// host buffers (counted against M), plus one block for streaming B.
	memElems := pool.MemoryElems()
	rows := (memElems - int64(pool.Device().BlockElems())) / (m + n)
	if rows < 1 {
		rows = 1
	}
	achunk := make([]float64, 0)
	tchunk := make([]float64, 0)
	for r0 := int64(0); r0 < l; r0 += rows {
		r1 := min(r0+rows, l)
		h := r1 - r0
		// Load A rows [r0, r1) into a host-side chunk (charged as reads
		// of A's tiles).
		achunk = achunk[:0]
		if cap(achunk) < int(h*m) {
			achunk = make([]float64, 0, h*m)
		}
		for i := r0; i < r1; i++ {
			for k := int64(0); k < m; k++ {
				v, err := a.At(i, k)
				if err != nil {
					return nil, err
				}
				achunk = append(achunk, v)
			}
		}
		tchunk = tchunk[:0]
		if cap(tchunk) < int(h*n) {
			tchunk = make([]float64, 0, h*n)
		}
		tchunk = append(tchunk, make([]float64, h*n)...)
		// Stream B column by column.
		for j := int64(0); j < n; j++ {
			for k := int64(0); k < m; k++ {
				bv, err := b.At(k, j)
				if err != nil {
					return nil, err
				}
				if bv == 0 {
					continue
				}
				for i := int64(0); i < h; i++ {
					tchunk[i*n+j] += achunk[i*m+k] * bv
				}
			}
		}
		for i := int64(0); i < h; i++ {
			for j := int64(0); j < n; j++ {
				if err := t.Set(r0+i, j, tchunk[i*n+j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, pool.FlushAll()
}

// MatMulTiled multiplies square-tiled matrices with the Appendix A
// schedule. Memory is split three ways; each part holds a q×q block of
// tiles (q = √(frames/3)), i.e. a p×p submatrix with p = q·√B ≈ √(M/3).
func MatMulTiled(pool *buffer.Pool, name string, a, b *array.Matrix) (*array.Matrix, error) {
	if a.Cols() != b.Rows() {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if atr != atc || btr != btc || atr != btr {
		return nil, fmt.Errorf("linalg: MatMulTiled requires square tiles (got %dx%d and %dx%d)", atr, atc, btr, btc)
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	q := int(math.Sqrt(float64(pool.Capacity()) / 3))
	if q < 1 {
		q = 1
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	// Loop over q×q super-blocks of the result.
	for ti0 := 0; ti0 < agr; ti0 += q {
		ti1 := minInt(ti0+q, agr)
		for tj0 := 0; tj0 < bgc; tj0 += q {
			tj1 := minInt(tj0+q, bgc)
			// Pin the result super-block once; accumulate across k.
			ctiles, err := pinBlock(t, ti0, ti1, tj0, tj1, true)
			if err != nil {
				return nil, err
			}
			for tk0 := 0; tk0 < agc; tk0 += q {
				tk1 := minInt(tk0+q, agc)
				atiles, err := pinBlock(a, ti0, ti1, tk0, tk1, false)
				if err != nil {
					return nil, err
				}
				btiles, err := pinBlock(b, tk0, tk1, tj0, tj1, false)
				if err != nil {
					return nil, err
				}
				// Multiply the pinned super-blocks tile by tile.
				for ti := ti0; ti < ti1; ti++ {
					for tj := tj0; tj < tj1; tj++ {
						ct := ctiles[(ti-ti0)*(tj1-tj0)+(tj-tj0)]
						for tk := tk0; tk < tk1; tk++ {
							at := atiles[(ti-ti0)*(tk1-tk0)+(tk-tk0)]
							bt := btiles[(tk-tk0)*(tj1-tj0)+(tj-tj0)]
							multiplyTilePair(at, bt, ct)
						}
					}
				}
				releaseBlock(atiles)
				releaseBlock(btiles)
			}
			for _, ct := range ctiles {
				ct.MarkDirty()
			}
			releaseBlock(ctiles)
		}
	}
	return t, pool.FlushAll()
}

// pinBlock pins the tile rectangle [ti0,ti1)×[tj0,tj1) of m, row-major.
func pinBlock(m *array.Matrix, ti0, ti1, tj0, tj1 int, fresh bool) ([]*array.Tile, error) {
	tiles := make([]*array.Tile, 0, (ti1-ti0)*(tj1-tj0))
	for ti := ti0; ti < ti1; ti++ {
		for tj := tj0; tj < tj1; tj++ {
			var t *array.Tile
			var err error
			if fresh {
				t, err = m.PinTileNew(ti, tj)
			} else {
				t, err = m.PinTile(ti, tj)
			}
			if err != nil {
				releaseBlock(tiles)
				return nil, err
			}
			tiles = append(tiles, t)
		}
	}
	return tiles, nil
}

func releaseBlock(tiles []*array.Tile) {
	for _, t := range tiles {
		t.Release()
	}
}

// multiplyTilePair accumulates at×bt into ct, respecting edge clipping.
func multiplyTilePair(at, bt, ct *array.Tile) {
	for i := ct.RowLo; i < ct.RowHi; i++ {
		for k := at.ColLo; k < at.ColHi; k++ {
			av := at.At(i, k)
			if av == 0 {
				continue
			}
			for j := ct.ColLo; j < ct.ColHi; j++ {
				ct.Set(i, j, ct.At(i, j)+av*bt.At(k, j))
			}
		}
	}
}

// Transpose produces the transpose of a with the same tiling options.
func Transpose(pool *buffer.Pool, name string, a *array.Matrix) (*array.Matrix, error) {
	t, err := array.NewMatrix(pool, name, a.Cols(), a.Rows(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := a.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			src, err := a.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			for i := src.RowLo; i < src.RowHi; i++ {
				for j := src.ColLo; j < src.ColHi; j++ {
					if err := t.Set(j, i, src.At(i, j)); err != nil {
						src.Release()
						return nil, err
					}
				}
			}
			src.Release()
		}
	}
	return t, pool.FlushAll()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
