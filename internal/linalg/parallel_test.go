package linalg

import (
	"runtime"
	"testing"
	"time"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// newParallelPool builds a sharded pool whose budget the test matrices
// comfortably exceed, forcing real out-of-core behaviour.
func newParallelPool(blockElems, frames, shards int) *buffer.Pool {
	return buffer.NewSharded(disk.NewDevice(blockElems), frames, shards)
}

func matValues(t *testing.T, m *array.Matrix) []float64 {
	t.Helper()
	out := make([]float64, m.Rows()*m.Cols())
	for i := int64(0); i < m.Rows(); i++ {
		for j := int64(0); j < m.Cols(); j++ {
			v, err := m.At(i, j)
			if err != nil {
				t.Fatal(err)
			}
			out[i*m.Cols()+j] = v
		}
	}
	return out
}

// TestMatMulTiledWorkersMatchesSequential checks that every worker count
// produces a bit-identical product: parallelism only changes which
// goroutine computes an output super-block, never the accumulation order
// within an output tile.
func TestMatMulTiledWorkersMatchesSequential(t *testing.T) {
	const blockElems = 64 // 8x8 tiles
	const n = 96          // 12x12 tile grid, 144 tiles per matrix
	mk := func(workers, shards int) []float64 {
		pool := newParallelPool(blockElems, 27, shards)
		a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			t.Fatal(err)
		}
		b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			t.Fatal(err)
		}
		fillRand(t, a, 1)
		fillRand(t, b, 2)
		c, err := MatMulTiledWorkers(pool, "c", a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		return matValues(t, c)
	}
	want := mk(1, 1)
	for _, w := range []int{2, 3, 4, 8} {
		got := mk(w, 4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %v, want %v (must be bit-identical)", w, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulTiledWorkersRespectsBudget asks for far more workers than the
// pool can host; the kernel must clamp in-flight workers instead of
// blowing the frame budget.
func TestMatMulTiledWorkersRespectsBudget(t *testing.T) {
	const blockElems = 64
	const n = 64                              // 8x8 grid
	pool := newParallelPool(blockElems, 6, 2) // only two workers' worth of frames at q=1
	a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
	if err != nil {
		t.Fatal(err)
	}
	fillRand(t, a, 3)
	fillRand(t, b, 4)
	c, err := MatMulTiledWorkers(pool, "c", a, b, 64)
	if err != nil {
		t.Fatalf("budget-clamped parallel multiply failed: %v", err)
	}
	pool2 := newParallelPool(blockElems, 48, 1)
	a2, _ := array.NewMatrix(pool2, "a", n, n, array.Options{Shape: array.SquareTiles})
	b2, _ := array.NewMatrix(pool2, "b", n, n, array.Options{Shape: array.SquareTiles})
	fillRand(t, a2, 3)
	fillRand(t, b2, 4)
	want, err := MatMulTiled(pool2, "c", a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	gotV, wantV := matValues(t, c), matValues(t, want)
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("element %d = %v, want %v", i, gotV[i], wantV[i])
		}
	}
}

// TestTransposeWorkersMatchesSequential covers all three source tilings,
// including the column-tiled case where two workers' stripes share
// output tiles (but never output elements).
func TestTransposeWorkersMatchesSequential(t *testing.T) {
	const blockElems = 64
	for _, shape := range []array.TileShape{array.RowTiles, array.ColTiles, array.SquareTiles} {
		mk := func(workers, shards int) []float64 {
			pool := newParallelPool(blockElems, 12, shards)
			a, err := array.NewMatrix(pool, "a", 40, 56, array.Options{Shape: shape})
			if err != nil {
				t.Fatal(err)
			}
			fillRand(t, a, 7)
			tr, err := TransposeWorkers(pool, "t", a, workers)
			if err != nil {
				t.Fatal(err)
			}
			return matValues(t, tr)
		}
		want := mk(1, 1)
		for _, w := range []int{2, 4} {
			got := mk(w, 4)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape=%v workers=%d: element %d = %v, want %v", shape, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelMatMulSpeedup measures wall-clock speedup of the parallel
// kernel on a matrix that exceeds the pool budget. It needs real cores
// to mean anything, so it skips on small machines.
func TestParallelMatMulSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup test, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const blockElems = 4096 // 64x64 tiles
	const n = 768           // 12x12 grid, 144 tiles; budget is 48
	run := func(workers, shards int) time.Duration {
		pool := newParallelPool(blockElems, 48, shards)
		a, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			t.Fatal(err)
		}
		b, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			t.Fatal(err)
		}
		fillRand(t, a, 1)
		fillRand(t, b, 2)
		start := time.Now()
		if _, err := MatMulTiledWorkers(pool, "c", a, b, workers); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(1, 1) // warm up allocator and caches
	seq := run(1, 1)
	par := run(4, 4)
	t.Logf("sequential %v, 4 workers %v (%.2fx)", seq, par, float64(seq)/float64(par))
	if float64(seq)/float64(par) < 1.5 {
		t.Errorf("4-worker speedup %.2fx, want >= 1.5x", float64(seq)/float64(par))
	}
}

func benchMatMulWorkers(b *testing.B, workers int) {
	const blockElems = 4096
	const n = 768
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool := newParallelPool(blockElems, 48, workers)
		am, err := array.NewMatrix(pool, "a", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			b.Fatal(err)
		}
		bm, err := array.NewMatrix(pool, "b", n, n, array.Options{Shape: array.SquareTiles})
		if err != nil {
			b.Fatal(err)
		}
		if err := am.Fill(func(i, j int64) float64 { return float64((i + j) % 13) }); err != nil {
			b.Fatal(err)
		}
		if err := bm.Fill(func(i, j int64) float64 { return float64((i * j) % 11) }); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := MatMulTiledWorkers(pool, "c", am, bm, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulTiledWorkers shows the wall-clock effect of the worker
// count on an out-of-core multiply (the workers ablation in the bench
// log tracks the same numbers).
func BenchmarkMatMulTiledWorkers1(b *testing.B) { benchMatMulWorkers(b, 1) }
func BenchmarkMatMulTiledWorkers2(b *testing.B) { benchMatMulWorkers(b, 2) }
func BenchmarkMatMulTiledWorkers4(b *testing.B) { benchMatMulWorkers(b, 4) }
