package linalg

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/scalarop"
	"riot/internal/sparse"
)

// Ring-generic sparse kernels. The sparse format's zero-skipping is the
// semi-ring annihilation law in I/O form, so the same tile-directory
// schedules carry over with one convention change: under a non-standard
// ring an ABSENT element denotes the ring's Zero (for minplus, a missing
// edge reads as +Inf), and stored values are ring elements taken
// verbatim. The storage cannot represent a STORED element equal to
// float64 0 (the builder drops exact zeros), so a computed ring value of
// exactly 0 collapses to absent/Zero — harmless for the standard and
// boolean rings where 0 IS the Zero, and avoided for the tropical rings
// by keeping the ⊗-identity diagonal implicit until the final densify
// (off-diagonal exact-0 values only arise from mixed-sign edge weights).

// MatMulSparseDenseRing is MatMulSparseDense over a semi-ring: skipped
// k-steps are justified by ring annihilation (an absent a tile is all
// ring.Zero), and the output accumulates in the storage domain (0 =
// absent = ring.Zero), so fresh zeroed tiles need no identity seeding.
func MatMulSparseDenseRing(pool *buffer.Pool, name string, a *sparse.Matrix, b *array.Matrix, ring *scalarop.Semiring) (*array.Matrix, error) {
	if ring.IsStandard() {
		return MatMulSparseDense(pool, name, a, b)
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: b.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			for tk := 0; tk < agc; tk++ {
				if a.TileEmpty(ti, tk) {
					continue
				}
				bt, err := b.PinTile(tk, tj)
				if err != nil {
					ct.Release()
					return nil, err
				}
				rowLo, _, colLo, _ := a.TileBounds(ti, tk)
				err = a.IterTile(ti, tk, func(r, c int, v float64) error {
					if v == ring.Zero {
						return nil
					}
					i := rowLo + int64(r)
					k := colLo + int64(c)
					for j := ct.ColLo; j < ct.ColHi; j++ {
						bv := bt.At(k, j)
						if bv == 0 || bv == ring.Zero {
							continue
						}
						m := ring.Mul(v, bv)
						if m == ring.Zero {
							continue
						}
						if cur := ct.At(i, j); cur == 0 {
							ct.Set(i, j, m)
						} else {
							ct.Set(i, j, ring.Add(cur, m))
						}
					}
					return nil
				})
				bt.Release()
				if err != nil {
					ct.Release()
					return nil, err
				}
			}
			ct.MarkDirty()
			ct.Release()
		}
	}
	return t, pool.FlushAll()
}

// MatMulDenseSparseRing is MatMulDenseSparse over a semi-ring.
func MatMulDenseSparseRing(pool *buffer.Pool, name string, a *array.Matrix, b *sparse.Matrix, ring *scalarop.Semiring) (*array.Matrix, error) {
	if ring.IsStandard() {
		return MatMulDenseSparse(pool, name, a, b)
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	t, err := array.NewMatrix(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			for tk := 0; tk < agc; tk++ {
				if b.TileEmpty(tk, tj) {
					continue
				}
				at, err := a.PinTile(ti, tk)
				if err != nil {
					ct.Release()
					return nil, err
				}
				rowLo, _, colLo, _ := b.TileBounds(tk, tj)
				err = b.IterTile(tk, tj, func(r, c int, v float64) error {
					if v == ring.Zero {
						return nil
					}
					k := rowLo + int64(r)
					j := colLo + int64(c)
					for i := ct.RowLo; i < ct.RowHi; i++ {
						av := at.At(i, k)
						if av == 0 || av == ring.Zero {
							continue
						}
						m := ring.Mul(av, v)
						if m == ring.Zero {
							continue
						}
						if cur := ct.At(i, j); cur == 0 {
							ct.Set(i, j, m)
						} else {
							ct.Set(i, j, ring.Add(cur, m))
						}
					}
					return nil
				})
				at.Release()
				if err != nil {
					ct.Release()
					return nil, err
				}
			}
			ct.MarkDirty()
			ct.Release()
		}
	}
	return t, pool.FlushAll()
}

// MatMulSparseSparseRing is MatMulSparseSparse over a semi-ring. The
// accumulator works in the storage domain — float64 0 means absent,
// i.e. ring.Zero — so a slot holds either 0 (no path contributes) or a
// genuine ring value that later contributions ⊕-merge into.
func MatMulSparseSparseRing(pool *buffer.Pool, name string, a, b *sparse.Matrix, ring *scalarop.Semiring) (*sparse.Matrix, error) {
	if ring.IsStandard() {
		return MatMulSparseSparse(pool, name, a, b)
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if err := checkSquareAligned(a.Rows(), a.Cols(), b.Rows(), b.Cols(), atr, atc, btr, btc); err != nil {
		return nil, err
	}
	bld, err := sparse.NewBuilder(pool, name, a.Rows(), b.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	_, bgc := b.GridDims()
	side := atr
	scratch := make([]float64, side*side) // output tile accumulator, 0 = absent
	bscr := make([]float64, side*side)    // decoded b tile, 0 = absent
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < bgc; tj++ {
			for i := range scratch {
				scratch[i] = 0
			}
			touched := false
			for tk := 0; tk < agc; tk++ {
				if a.TileEmpty(ti, tk) || b.TileEmpty(tk, tj) {
					continue
				}
				touched = true
				if err := b.ReadTile(tk, tj, bscr); err != nil {
					bld.Abandon()
					return nil, err
				}
				err := a.IterTile(ti, tk, func(r, c int, v float64) error {
					if v == ring.Zero {
						return nil
					}
					brow := bscr[c*side : (c+1)*side]
					out := scratch[r*side : (r+1)*side]
					for jj, bv := range brow {
						if bv == 0 {
							continue // absent ⇒ ring.Zero ⇒ product annihilates
						}
						m := ring.Mul(v, bv)
						if m == ring.Zero {
							continue
						}
						if out[jj] == 0 {
							out[jj] = m
						} else {
							out[jj] = ring.Add(out[jj], m)
						}
					}
					return nil
				})
				if err != nil {
					bld.Abandon()
					return nil, err
				}
			}
			if !touched {
				continue // provably all-Zero: no SetTile, no block
			}
			if err := bld.SetTile(ti, tj, scratch); err != nil {
				bld.Abandon()
				return nil, err
			}
		}
	}
	return bld.Finish()
}

// AddSparseRing ⊕-merges two aligned sparse matrices tile by tile: an
// element absent from one side takes the other's value (x ⊕ Zero = x),
// present in both sides ⊕-combines. Output tiles empty on both sides
// cost no I/O and produce no block — the union of the operands' tile
// directories bounds the work.
func AddSparseRing(pool *buffer.Pool, name string, a, b *sparse.Matrix, ring *scalarop.Semiring) (*sparse.Matrix, error) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return nil, fmt.Errorf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	atr, atc := a.TileDims()
	btr, btc := b.TileDims()
	if atr != btr || atc != btc {
		return nil, fmt.Errorf("linalg: tile mismatch %dx%d vs %dx%d", atr, atc, btr, btc)
	}
	bld, err := sparse.NewBuilder(pool, name, a.Rows(), a.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	out := make([]float64, atr*atc)
	bscr := make([]float64, atr*atc)
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < agc; tj++ {
			ae, be := a.TileEmpty(ti, tj), b.TileEmpty(ti, tj)
			if ae && be {
				continue
			}
			for i := range out {
				out[i] = 0
			}
			if !ae {
				if err := a.ReadTile(ti, tj, out); err != nil {
					bld.Abandon()
					return nil, err
				}
			}
			if !be {
				if err := b.ReadTile(ti, tj, bscr); err != nil {
					bld.Abandon()
					return nil, err
				}
				for i, bv := range bscr {
					if bv == 0 {
						continue
					}
					if out[i] == 0 {
						out[i] = bv
					} else {
						out[i] = ring.Add(out[i], bv)
					}
				}
			}
			if err := bld.SetTile(ti, tj, out); err != nil {
				bld.Abandon()
				return nil, err
			}
		}
	}
	return bld.Finish()
}

// DensifyRing materializes a sparse matrix as dense under the ring's
// storage convention: absent elements become ring.Zero. With oneDiag
// set it also ⊕-merges the ring's One onto the diagonal — the final
// step of the sparse closure, where the implicit "every vertex reaches
// itself" diagonal becomes explicit.
func DensifyRing(pool *buffer.Pool, name string, a *sparse.Matrix, ring *scalarop.Semiring, oneDiag bool) (*array.Matrix, error) {
	t, err := array.NewMatrix(pool, name, a.Rows(), a.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	agr, agc := a.GridDims()
	for ti := 0; ti < agr; ti++ {
		for tj := 0; tj < agc; tj++ {
			ct, err := t.PinTileNew(ti, tj)
			if err != nil {
				return nil, err
			}
			if ring.Zero != 0 {
				fillTilesZero([]*array.Tile{ct}, ring)
			}
			if !a.TileEmpty(ti, tj) {
				rowLo, _, colLo, _ := a.TileBounds(ti, tj)
				err = a.IterTile(ti, tj, func(r, c int, v float64) error {
					ct.Set(rowLo+int64(r), colLo+int64(c), v)
					return nil
				})
				if err != nil {
					ct.Release()
					return nil, err
				}
			}
			if oneDiag {
				lo := max(ct.RowLo, ct.ColLo)
				hi := min(ct.RowHi, ct.ColHi)
				for d := lo; d < hi; d++ {
					ct.Set(d, d, ring.Add(ct.At(d, d), ring.One))
				}
			}
			ct.MarkDirty()
			ct.Release()
		}
	}
	return t, pool.FlushAll()
}
