package linalg

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/scalarop"
)

// LU computes a blocked right-looking LU decomposition of the square
// matrix a, returning a new matrix holding L (unit lower triangle,
// diagonal implicit) and U (upper triangle) packed together, as LAPACK
// does. No pivoting is performed — callers must supply matrices with
// nonzero leading minors (e.g. diagonally dominant systems); this
// restriction is documented in DESIGN.md and matches the paper's scope,
// which names LU as an algebra operator without specifying pivoting.
//
// The schedule is tile-blocked: factor the diagonal tile, solve the
// panel tiles against it, then apply a rank-q update to the trailing
// submatrix — the standard out-of-core pattern from Toledo's survey
// [17], which the paper builds on.
func LU(pool *buffer.Pool, name string, a *array.Matrix) (*array.Matrix, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	tr, tc := a.TileDims()
	if tr != tc {
		return nil, fmt.Errorf("linalg: LU requires square tiles, got %dx%d", tr, tc)
	}
	// Work on a copy: factorization is destructive.
	lu, err := array.NewMatrix(pool, name, a.Rows(), a.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := a.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			src, err := a.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			dst, err := lu.PinTileNew(ti, tj)
			if err != nil {
				src.Release()
				return nil, err
			}
			copy(dst.Data(), src.Data())
			dst.MarkDirty()
			src.Release()
			dst.Release()
		}
	}

	g, _ := lu.GridDims()
	for k := 0; k < g; k++ {
		// 1. Factor the diagonal tile in place.
		dk, err := lu.PinTile(k, k)
		if err != nil {
			return nil, err
		}
		if err := factorTile(dk); err != nil {
			dk.Release()
			return nil, err
		}
		dk.MarkDirty()
		// 2. Column panel: L[i][k] = A[i][k] · U(kk)^-1.
		for i := k + 1; i < g; i++ {
			t, err := lu.PinTile(i, k)
			if err != nil {
				dk.Release()
				return nil, err
			}
			solveRightUpper(dk, t)
			t.MarkDirty()
			t.Release()
		}
		// 3. Row panel: U[k][j] = L(kk)^-1 · A[k][j].
		for j := k + 1; j < g; j++ {
			t, err := lu.PinTile(k, j)
			if err != nil {
				dk.Release()
				return nil, err
			}
			solveLeftUnitLower(dk, t)
			t.MarkDirty()
			t.Release()
		}
		dk.Release()
		// 4. Trailing update: A[i][j] -= L[i][k] · U[k][j].
		for i := k + 1; i < g; i++ {
			lt, err := lu.PinTile(i, k)
			if err != nil {
				return nil, err
			}
			for j := k + 1; j < g; j++ {
				ut, err := lu.PinTile(k, j)
				if err != nil {
					lt.Release()
					return nil, err
				}
				ct, err := lu.PinTile(i, j)
				if err != nil {
					ut.Release()
					lt.Release()
					return nil, err
				}
				subtractProduct(lt, ut, ct)
				ct.MarkDirty()
				ct.Release()
				ut.Release()
			}
			lt.Release()
		}
	}
	return lu, pool.FlushAll()
}

// factorTile performs dense, unpivoted LU inside the diagonal tile,
// working on the tile's raw row slices (the caller marks it dirty).
// Per-element subtraction order matches the accessor loop it replaced.
func factorTile(t *array.Tile) error {
	for p := t.RowLo; p < t.RowHi; p++ {
		prow := t.Row(p)
		d := p - t.ColLo // diagonal tiles have RowLo == ColLo
		piv := prow[d]
		if piv == 0 {
			return fmt.Errorf("linalg: zero pivot at %d (LU is unpivoted)", p)
		}
		for i := p + 1; i < t.RowHi; i++ {
			irow := t.Row(i)
			l := irow[d] / piv
			irow[d] = l
			// y += (-l)·x is bit-identical to y -= l·x under IEEE 754.
			scalarop.AXPY(irow[d+1:], prow[d+1:], -l)
		}
	}
	return nil
}

// solveRightUpper solves X · U = T for X in place of T, where U is the
// upper triangle of the diagonal tile dk. T's rows are mutated through
// raw slices; dk's rows are gathered once per call.
func solveRightUpper(dk, t *array.Tile) {
	w := int(dk.ColHi - dk.ColLo)
	drows := make([][]float64, w)
	for r := range drows {
		drows[r] = dk.Row(dk.RowLo + int64(r))
	}
	for i := t.RowLo; i < t.RowHi; i++ {
		trow := t.Row(i)
		for j := 0; j < w; j++ {
			sum := trow[j]
			for p := 0; p < j; p++ {
				sum -= trow[p] * drows[p][j]
			}
			trow[j] = sum / drows[j][j]
		}
	}
}

// solveLeftUnitLower solves L · X = T for X in place of T, where L is
// the unit lower triangle of dk. Rewritten row-wise over raw slices:
// row r of T receives its p<r subtractions in ascending p, the same
// per-element order as the accessor loop (rows below the current one
// are only read after they are final).
func solveLeftUnitLower(dk, t *array.Tile) {
	h := int(dk.RowHi - dk.RowLo)
	for r := 1; r < h; r++ {
		trow := t.Row(t.RowLo + int64(r))
		drow := dk.Row(dk.RowLo + int64(r))
		for p := 0; p < r; p++ {
			scalarop.AXPY(trow, t.Row(t.RowLo+int64(p)), -drow[p])
		}
	}
}

// subtractProduct computes C -= L·U over one tile triple with raw row
// slices, skipping zero L entries like the accessor loop it replaced.
func subtractProduct(lt, ut, ct *array.Tile) {
	pmax := min(int(ut.RowHi-ut.RowLo), int(lt.ColHi-lt.ColLo))
	for i := ct.RowLo; i < ct.RowHi; i++ {
		crow := ct.Row(i)
		lrow := lt.Row(i)
		for p := 0; p < pmax; p++ {
			lv := lrow[p]
			if lv == 0 {
				continue
			}
			scalarop.AXPY(crow, ut.Row(ut.RowLo+int64(p)), -lv)
		}
	}
}

// SolveLU solves A·x = b given the packed LU factors, by forward then
// backward substitution. b has length n; the result is a fresh slice.
//
// The substitution sweeps are tile-blocked: each triangular sweep pins
// every tile of the relevant triangle exactly once and consumes all of
// its elements while it is pinned, so the solve costs O(tiles) pool
// requests instead of the O(n²) element-at-a-time pins that Matrix.At
// would charge. The regression test on the pool counters holds this
// bound in place.
func SolveLU(lu *array.Matrix, b []float64) ([]float64, error) {
	n := lu.Rows()
	if int64(len(b)) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	gr, gc := lu.GridDims()
	// Ly = b (unit diagonal): walk tile rows top-down; within a tile row
	// the off-diagonal tiles subtract contributions from already-final
	// prefix elements, and the diagonal tile — visited last — finalizes
	// its elements in ascending order, so every y[j] it reads is final.
	y := make([]float64, n)
	copy(y, b)
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj <= ti && tj < gc; tj++ {
			t, err := lu.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				hi := min(t.ColHi, i) // strictly below the diagonal
				sum := 0.0
				row := t.Row(i)[:hi-t.ColLo]
				ys := y[t.ColLo:hi]
				for j, v := range row {
					sum += v * ys[j]
				}
				y[i] -= sum
			}
			t.Release()
		}
	}
	// Ux = y: tile rows bottom-up, tiles right-to-left, so the diagonal
	// tile again comes last in its row; it finalizes elements in
	// descending order, dividing by the diagonal only after every
	// above-diagonal contribution (in-tile and off-tile) is subtracted.
	x := y
	for ti := gr - 1; ti >= 0; ti-- {
		for tj := gc - 1; tj >= ti; tj-- {
			t, err := lu.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			if tj > ti {
				xs := x[t.ColLo:t.ColHi]
				for i := t.RowLo; i < t.RowHi; i++ {
					sum := 0.0
					for j, v := range t.Row(i) {
						sum += v * xs[j]
					}
					x[i] -= sum
				}
			} else {
				for i := t.RowHi - 1; i >= t.RowLo; i-- {
					row := t.Row(i)
					sum := 0.0
					xs := x[i+1 : t.ColHi]
					for j, v := range row[i+1-t.ColLo:] {
						sum += v * xs[j]
					}
					x[i] = (x[i] - sum) / row[i-t.ColLo]
				}
			}
			t.Release()
		}
	}
	return x, nil
}
