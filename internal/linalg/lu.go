package linalg

import (
	"fmt"

	"riot/internal/array"
	"riot/internal/buffer"
)

// LU computes a blocked right-looking LU decomposition of the square
// matrix a, returning a new matrix holding L (unit lower triangle,
// diagonal implicit) and U (upper triangle) packed together, as LAPACK
// does. No pivoting is performed — callers must supply matrices with
// nonzero leading minors (e.g. diagonally dominant systems); this
// restriction is documented in DESIGN.md and matches the paper's scope,
// which names LU as an algebra operator without specifying pivoting.
//
// The schedule is tile-blocked: factor the diagonal tile, solve the
// panel tiles against it, then apply a rank-q update to the trailing
// submatrix — the standard out-of-core pattern from Toledo's survey
// [17], which the paper builds on.
func LU(pool *buffer.Pool, name string, a *array.Matrix) (*array.Matrix, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	tr, tc := a.TileDims()
	if tr != tc {
		return nil, fmt.Errorf("linalg: LU requires square tiles, got %dx%d", tr, tc)
	}
	// Work on a copy: factorization is destructive.
	lu, err := array.NewMatrix(pool, name, a.Rows(), a.Cols(), array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := a.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			src, err := a.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			dst, err := lu.PinTileNew(ti, tj)
			if err != nil {
				src.Release()
				return nil, err
			}
			copy(dst.Data(), src.Data())
			dst.MarkDirty()
			src.Release()
			dst.Release()
		}
	}

	g, _ := lu.GridDims()
	for k := 0; k < g; k++ {
		// 1. Factor the diagonal tile in place.
		dk, err := lu.PinTile(k, k)
		if err != nil {
			return nil, err
		}
		if err := factorTile(dk); err != nil {
			dk.Release()
			return nil, err
		}
		dk.MarkDirty()
		// 2. Column panel: L[i][k] = A[i][k] · U(kk)^-1.
		for i := k + 1; i < g; i++ {
			t, err := lu.PinTile(i, k)
			if err != nil {
				dk.Release()
				return nil, err
			}
			solveRightUpper(dk, t)
			t.MarkDirty()
			t.Release()
		}
		// 3. Row panel: U[k][j] = L(kk)^-1 · A[k][j].
		for j := k + 1; j < g; j++ {
			t, err := lu.PinTile(k, j)
			if err != nil {
				dk.Release()
				return nil, err
			}
			solveLeftUnitLower(dk, t)
			t.MarkDirty()
			t.Release()
		}
		dk.Release()
		// 4. Trailing update: A[i][j] -= L[i][k] · U[k][j].
		for i := k + 1; i < g; i++ {
			lt, err := lu.PinTile(i, k)
			if err != nil {
				return nil, err
			}
			for j := k + 1; j < g; j++ {
				ut, err := lu.PinTile(k, j)
				if err != nil {
					lt.Release()
					return nil, err
				}
				ct, err := lu.PinTile(i, j)
				if err != nil {
					ut.Release()
					lt.Release()
					return nil, err
				}
				subtractProduct(lt, ut, ct)
				ct.MarkDirty()
				ct.Release()
				ut.Release()
			}
			lt.Release()
		}
	}
	return lu, pool.FlushAll()
}

// factorTile performs dense, unpivoted LU inside the diagonal tile.
func factorTile(t *array.Tile) error {
	for p := t.RowLo; p < t.RowHi; p++ {
		piv := t.At(p, p)
		if piv == 0 {
			return fmt.Errorf("linalg: zero pivot at %d (LU is unpivoted)", p)
		}
		for i := p + 1; i < t.RowHi; i++ {
			l := t.At(i, p) / piv
			t.Set(i, p, l)
			for j := p + 1; j < t.ColHi; j++ {
				t.Set(i, j, t.At(i, j)-l*t.At(p, j))
			}
		}
	}
	return nil
}

// solveRightUpper solves X · U = T for X in place of T, where U is the
// upper triangle of the diagonal tile dk.
func solveRightUpper(dk, t *array.Tile) {
	for i := t.RowLo; i < t.RowHi; i++ {
		for j := dk.ColLo; j < dk.ColHi; j++ {
			sum := t.At(i, j)
			for p := dk.ColLo; p < j; p++ {
				sum -= t.At(i, p) * dk.At(dk.RowLo+(p-dk.ColLo), j)
			}
			t.Set(i, j, sum/dk.At(dk.RowLo+(j-dk.ColLo), j))
		}
	}
}

// solveLeftUnitLower solves L · X = T for X in place of T, where L is
// the unit lower triangle of dk.
func solveLeftUnitLower(dk, t *array.Tile) {
	for j := t.ColLo; j < t.ColHi; j++ {
		for i := dk.RowLo; i < dk.RowHi; i++ {
			sum := t.At(t.RowLo+(i-dk.RowLo), j)
			for p := dk.RowLo; p < i; p++ {
				sum -= dk.At(i, dk.ColLo+(p-dk.RowLo)) * t.At(t.RowLo+(p-dk.RowLo), j)
			}
			t.Set(t.RowLo+(i-dk.RowLo), j, sum)
		}
	}
}

// subtractProduct computes C -= L·U over one tile triple.
func subtractProduct(lt, ut, ct *array.Tile) {
	for i := ct.RowLo; i < ct.RowHi; i++ {
		for p := lt.ColLo; p < lt.ColHi; p++ {
			lv := lt.At(i, p)
			if lv == 0 {
				continue
			}
			up := ut.RowLo + (p - lt.ColLo)
			if up >= ut.RowHi {
				continue
			}
			for j := ct.ColLo; j < ct.ColHi; j++ {
				ct.Set(i, j, ct.At(i, j)-lv*ut.At(up, j))
			}
		}
	}
}

// SolveLU solves A·x = b given the packed LU factors, by forward then
// backward substitution. b has length n; the result is a fresh slice.
//
// The substitution sweeps are tile-blocked: each triangular sweep pins
// every tile of the relevant triangle exactly once and consumes all of
// its elements while it is pinned, so the solve costs O(tiles) pool
// requests instead of the O(n²) element-at-a-time pins that Matrix.At
// would charge. The regression test on the pool counters holds this
// bound in place.
func SolveLU(lu *array.Matrix, b []float64) ([]float64, error) {
	n := lu.Rows()
	if int64(len(b)) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	gr, gc := lu.GridDims()
	// Ly = b (unit diagonal): walk tile rows top-down; within a tile row
	// the off-diagonal tiles subtract contributions from already-final
	// prefix elements, and the diagonal tile — visited last — finalizes
	// its elements in ascending order, so every y[j] it reads is final.
	y := make([]float64, n)
	copy(y, b)
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj <= ti && tj < gc; tj++ {
			t, err := lu.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			for i := t.RowLo; i < t.RowHi; i++ {
				hi := min(t.ColHi, i) // strictly below the diagonal
				sum := 0.0
				for j := t.ColLo; j < hi; j++ {
					sum += t.At(i, j) * y[j]
				}
				y[i] -= sum
			}
			t.Release()
		}
	}
	// Ux = y: tile rows bottom-up, tiles right-to-left, so the diagonal
	// tile again comes last in its row; it finalizes elements in
	// descending order, dividing by the diagonal only after every
	// above-diagonal contribution (in-tile and off-tile) is subtracted.
	x := y
	for ti := gr - 1; ti >= 0; ti-- {
		for tj := gc - 1; tj >= ti; tj-- {
			t, err := lu.PinTile(ti, tj)
			if err != nil {
				return nil, err
			}
			if tj > ti {
				for i := t.RowLo; i < t.RowHi; i++ {
					sum := 0.0
					for j := t.ColLo; j < t.ColHi; j++ {
						sum += t.At(i, j) * x[j]
					}
					x[i] -= sum
				}
			} else {
				for i := t.RowHi - 1; i >= t.RowLo; i-- {
					sum := 0.0
					for j := i + 1; j < t.ColHi; j++ {
						sum += t.At(i, j) * x[j]
					}
					x[i] = (x[i] - sum) / t.At(i, i)
				}
			}
			t.Release()
		}
	}
	return x, nil
}
