package exec

import (
	"riot/internal/algebra"
	"riot/internal/scalarop"
)

// Zero-range propagation: the sparse half of fusion.
//
// A sparse vector source knows, from its in-memory chunk directory,
// which element ranges are entirely zero. rangeZero lifts that knowledge
// through the fused pipeline using the per-operator classification in
// internal/scalarop:
//
//   - intersection (*): the output range is zero when EITHER operand's
//     range is — multiplying a dense stream by a sparse mask skips the
//     dense stream's blocks wherever the mask is empty;
//   - union (+, -, and any op with f(0,0) == 0): zero when BOTH are;
//   - unary and scalar ops propagate zero iff they map 0 to 0 (sqrt
//     yes, exp no — decided by evaluating the operator, per scalarop).
//
// When evalRange proves a range zero it writes zeros without reading
// anything; dense sources never prove zero, so the dense execution path
// and its golden I/O counters are byte-identical to before.
func (e *Executor) rangeZero(n *algebra.Node, lo, hi int64) bool {
	if lo >= hi {
		return true
	}
	switch n.Op {
	case algebra.OpSourceVec:
		return n.SVec != nil && n.SVec.RangeEmpty(lo, hi)
	case algebra.OpElemUnary:
		return scalarop.UnaryZero(n.Fn) && e.rangeZero(n.Kids[0], lo, hi)
	case algebra.OpScalarOp:
		return scalarop.BinZeroWithScalar(n.BinOp, n.Scalar, n.ScalarLeft) &&
			e.rangeZero(n.Kids[0], lo, hi)
	case algebra.OpElemBinary:
		if scalarop.BinZeroEither(n.BinOp) &&
			(e.rangeZero(n.Kids[0], lo, hi) || e.rangeZero(n.Kids[1], lo, hi)) {
			return true
		}
		return scalarop.BinZeroBoth(n.BinOp) &&
			e.rangeZero(n.Kids[0], lo, hi) && e.rangeZero(n.Kids[1], lo, hi)
	case algebra.OpUpdateMask:
		if !e.rangeZero(n.Kids[0], lo, hi) {
			return false
		}
		// The update rewrites zeros to Scalar2 wherever cmp(0, thresh)
		// holds; otherwise zeros pass through unchanged.
		f, err := scalarop.Bin(n.BinOp)
		if err != nil {
			return false
		}
		if f(0, n.Scalar) != 0 {
			return n.Scalar2 == 0
		}
		return true
	case algebra.OpRange:
		return e.rangeZero(n.Kids[0], n.Lo+lo, n.Lo+hi)
	case algebra.OpReduce:
		// sum/min/max of an all-zero, non-empty vector are all zero. The
		// empty-vector reduce keeps its identity semantics, so it is
		// never claimed zero here.
		kid := n.Kids[0]
		return kid.Shape.Rows > 0 && e.rangeZero(kid, 0, kid.Shape.Rows)
	}
	// Gathers, matrix ops, and anything unclassified: never proven zero.
	return false
}
