// Package exec evaluates optimized expression DAGs over the tiled array
// store. Its two core behaviours are the ones the paper identifies as
// the sources of RIOT's wins (§3, §5):
//
//   - Fusion: maximal elementwise regions of the DAG are evaluated in a
//     single streaming pass, block by block, with no intermediate vector
//     ever materialized — the hand-coded loop of Example 1, derived
//     automatically.
//   - Selective evaluation: Range and Gather nodes (after pushdown)
//     compute only the elements actually demanded, touching only the
//     blocks that hold them.
//
// Shared subexpressions (more than one consumer) are materialized once
// into temporaries and reused — the materialization policy that
// "complements deferred evaluation" (§5). Matrix multiplies dispatch to
// the out-of-core kernels in internal/linalg, choosing the algorithm by
// analytic cost.
//
// # Parallelism
//
// When Workers > 1, full-length evaluations (ForceVector, Fetch of many
// blocks, reductions) partition the output into block-aligned ranges and
// dispatch them to a bounded pool of goroutines over the shared
// (sharded) buffer pool. Each worker owns the output blocks it produces
// and carries its own scratch buffers; reductions combine per-worker
// partials in worker order. Shared subexpressions are materialized
// up-front by a sequential preparation pass, so during the parallel
// phase the memo table is read-only. Workers == 1 takes the exact
// sequential code path of the original executor, reproducing its
// deterministic I/O counts; parallel runs compute identical values but
// may schedule I/O differently (and so see different hit/miss splits).
package exec

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/linalg"
	"riot/internal/plan"
	"riot/internal/rescache"
	"riot/internal/scalarop"
	"riot/internal/sparse"
)

// Stats counts evaluation work.
type Stats struct {
	ElementsComputed int64 // elements produced across all node evaluations
	Materialized     int64 // temporaries written to the store
	Flops            int64 // scalar arithmetic operations
	// FlopsByOp splits Flops by the operator that performed them
	// (binary/unary spellings, "matmul", reduction names). The map is a
	// copy; mutating it does not affect the executor.
	FlopsByOp map[string]int64
}

// Executor evaluates DAGs over a buffer pool. It is a plan interpreter:
// every Force call first builds a plan.Plan for the root (per-node
// Pipeline/Materialize decisions, multiply algorithm selection, the
// preparation schedule) and then reads that decision table instead of
// deriving policy on the fly.
type Executor struct {
	pool *buffer.Pool
	seq  atomic.Int64
	// Workers bounds the goroutines used for full-length evaluation.
	// 1 (the default) is the sequential, I/O-deterministic executor.
	Workers int
	// Planner selects the plan-time decision strategy. The default,
	// plan.Heuristic, reproduces the seed executor's materialization
	// rules (and I/O counters) exactly; plan.CostBased decides from the
	// analytic cost formulas and the live machine parameters.
	Planner plan.Strategy
	// ExplainTo, when set, receives the rendered physical plan of every
	// Force call before it executes (riot-run -explain).
	ExplainTo io.Writer
	// Prefix namespaces the owner names of materialized temporaries on
	// the device. Executors sharing one device (per-session engines over
	// a server's shared pool) must use distinct prefixes so one session's
	// teardown cannot free another's temporaries.
	Prefix string
	// FuseElementwise can be disabled to materialize every intermediate
	// (the ablation that mimics plain R's evaluation inside RIOT).
	FuseElementwise bool
	// EagerUpdates makes []<-(x) materialize the whole new state before
	// any element is read — the semantics of R and RIOT-DB, where a
	// modification forces evaluation (§5). RIOT's functional updates
	// leave it false; Figure 2 compares the two.
	EagerUpdates bool
	// Cache is the shared cross-session result cache. Nil (the default)
	// leaves every code path byte-identical to the cache-free executor;
	// when set, each Force call probes it for the root (and, on a root
	// miss, for interior nodes) before planning, serves hits with zero
	// recomputation, and installs eligible materialized temporaries on
	// miss.
	Cache *rescache.Cache

	elementsComputed atomic.Int64
	materialized     atomic.Int64
	flops            atomic.Int64
	// flopsByOp attributes flops to operator spellings. Updated once per
	// chunk (not per element) under flopsMu, so the lock is cold.
	flopsByOp map[string]int64
	flopsMu   sync.Mutex
	// scratch recycles chunk-sized []float64 buffers across the fused
	// pipeline's recursive descent (OpElemBinary right operands, gather
	// index blocks). A sync.Pool rather than per-worker slots because the
	// recursion can hold several live buffers at once.
	scratch sync.Pool

	// temps caches materialized shared subexpressions per Force call.
	// During a parallel section the map is read-only except for the rare
	// fallback in storeTemp, which takes tempsMu; lookups in parallel
	// mode take the read lock.
	temps      map[*algebra.Node]*array.Vector
	tempsMu    sync.RWMutex
	inParallel bool
	// curPlan is the physical plan of the Force call in progress.
	curPlan *plan.Plan
	// cacheHashes/cacheHits carry the Force call's cache state: the
	// canonical hashes of the (eligible) DAG and the handles acquired
	// for every probe that hit. Both are written only in begin and read
	// concurrently by workers; handles are released in end.
	cacheHashes *rescache.DAGHashes
	cacheHits   map[*algebra.Node]*rescache.Handle
}

// New creates an executor with fusion enabled.
func New(pool *buffer.Pool) *Executor {
	return &Executor{pool: pool, FuseElementwise: true, Workers: 1}
}

// Pool returns the executor's buffer pool.
func (e *Executor) Pool() *buffer.Pool { return e.pool }

// Stats returns the work counters.
func (e *Executor) Stats() Stats {
	e.flopsMu.Lock()
	byOp := make(map[string]int64, len(e.flopsByOp))
	for op, n := range e.flopsByOp {
		byOp[op] = n
	}
	e.flopsMu.Unlock()
	return Stats{
		ElementsComputed: e.elementsComputed.Load(),
		Materialized:     e.materialized.Load(),
		Flops:            e.flops.Load(),
		FlopsByOp:        byOp,
	}
}

// ResetStats zeroes the counters.
func (e *Executor) ResetStats() {
	e.elementsComputed.Store(0)
	e.materialized.Store(0)
	e.flops.Store(0)
	e.flopsMu.Lock()
	e.flopsByOp = nil
	e.flopsMu.Unlock()
}

// addFlops charges n flops to op: the global counter feeds the time
// model, the per-op split feeds \stats. Called once per chunk.
// ChargeFlops adds n operations under the given op label — for
// engine-level composites (like the semi-ring closure's ⊕-merges) that
// run kernels outside a DAG force but should still appear in
// flops_by_op.
func (e *Executor) ChargeFlops(op string, n int64) { e.addFlops(op, n) }

func (e *Executor) addFlops(op string, n int64) {
	e.flops.Add(n)
	e.flopsMu.Lock()
	if e.flopsByOp == nil {
		e.flopsByOp = make(map[string]int64)
	}
	e.flopsByOp[op] += n
	e.flopsMu.Unlock()
}

// getScratch returns a recycled buffer of length n; putScratch gives it
// back. Recycling replaces the per-chunk-per-level make in the fused
// pipeline, whose garbage scaled with DAG depth × chunks × workers.
func (e *Executor) getScratch(n int) []float64 {
	if p, ok := e.scratch.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func (e *Executor) putScratch(b []float64) {
	e.scratch.Put(&b)
}

func (e *Executor) fresh(prefix string) string {
	return fmt.Sprintf("%s%s#%d", e.Prefix, prefix, e.seq.Add(1))
}

// workerCount bounds the parallelism for a job of tasks block-sized
// units. Inside an already-parallel section nested jobs run sequentially.
// Workers are also capped at a third of the pool's frame budget: a
// streaming worker holds one pinned output chunk, one transient input
// chunk, and (while filling a memoized temporary) one more output
// chunk, so capacity/3 in-flight workers can never pin the pool shut.
func (e *Executor) workerCount(tasks int) int {
	w := e.Workers
	if w < 1 || e.inParallel {
		w = 1
	}
	if frames := e.pool.Capacity() / 3; w > frames && frames >= 1 {
		w = frames
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runParallel splits [0, n) into w contiguous ranges and runs fn on each
// from its own goroutine. Contiguous ranges keep each worker's device
// access as sequential as a lone scan. The first error wins.
func (e *Executor) runParallel(w, n int, fn func(worker, lo, hi int) error) error {
	if w <= 1 {
		return fn(0, 0, n)
	}
	e.inParallel = true
	defer func() { e.inParallel = false }()
	errs := make([]error, w)
	var wg sync.WaitGroup
	for j := 0; j < w; j++ {
		lo, hi := n*j/w, n*(j+1)/w
		wg.Add(1)
		go func(j, lo, hi int) {
			defer wg.Done()
			errs[j] = fn(j, lo, hi)
		}(j, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForceVector evaluates a vector-shaped DAG into a stored vector.
func (e *Executor) ForceVector(n *algebra.Node, name string) (*array.Vector, error) {
	if !n.Shape.Vector {
		return nil, fmt.Errorf("exec: ForceVector of matrix node")
	}
	e.begin(n)
	defer e.end()
	if n.Op == algebra.OpSourceVec && n.Vec != nil {
		return n.Vec, nil
	}
	out, err := array.NewVector(e.pool, name, n.Shape.Rows)
	if err != nil {
		return nil, err
	}
	if err := e.streamInto(n, out); err != nil {
		return nil, err
	}
	return out, e.pool.FlushAll()
}

// Fetch evaluates up to limit elements of a vector node (limit < 0 for
// all) into memory. Small selective results never touch the store.
func (e *Executor) Fetch(n *algebra.Node, limit int64) ([]float64, error) {
	if !n.Shape.Vector {
		return nil, fmt.Errorf("exec: Fetch of matrix node")
	}
	e.begin(n)
	defer e.end()
	count := n.Shape.Rows
	if limit >= 0 && limit < count {
		count = limit
	}
	out := make([]float64, count)
	const block = 4096
	nchunks := int((count + block - 1) / block)
	w := e.workerCount(nchunks)
	if w > 1 {
		if err := e.prepareShared(n); err != nil {
			return nil, err
		}
	}
	win := e.announceWindow(w, n)
	err := e.runParallel(w, nchunks, func(_, clo, chi int) error {
		partEnd := min(int64(chi)*block, count)
		announced := int64(clo) * block
		buf := make([]float64, 0, block)
		for c := clo; c < chi; c++ {
			lo := int64(c) * block
			hi := min(lo+block, count)
			announced = e.announceAhead(n, lo, announced, win, partEnd)
			buf = buf[:hi-lo]
			if err := e.evalRange(n, lo, hi, buf); err != nil {
				return err
			}
			copy(out[lo:hi], buf)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reduce evaluates a reduction over a vector node.
func (e *Executor) Reduce(fn string, n *algebra.Node) (float64, error) {
	e.begin(n)
	defer e.end()
	return e.reduce(fn, n)
}

func (e *Executor) reduce(fn string, n *algebra.Node) (float64, error) {
	var identity float64
	switch fn {
	case "min":
		identity = math.Inf(1)
	case "max":
		identity = math.Inf(-1)
	case "sum":
	default:
		return 0, fmt.Errorf("exec: unknown reduction %q", fn)
	}
	const block = 4096
	nelem := n.Shape.Rows
	nchunks := int((nelem + block - 1) / block)
	w := e.workerCount(nchunks)
	if w > 1 {
		if err := e.prepareShared(n); err != nil {
			return 0, err
		}
	}
	// Per-worker partials, combined in worker order so a given worker
	// count reduces deterministically.
	partials := make([]float64, w)
	win := e.announceWindow(w, n)
	err := e.runParallel(w, nchunks, func(worker, clo, chi int) error {
		partEnd := min(int64(chi)*block, nelem)
		announced := int64(clo) * block
		acc := identity
		buf := make([]float64, block)
		for c := clo; c < chi; c++ {
			lo := int64(c) * block
			hi := min(lo+block, nelem)
			announced = e.announceAhead(n, lo, announced, win, partEnd)
			b := buf[:hi-lo]
			if err := e.evalRange(n, lo, hi, b); err != nil {
				return err
			}
			// The slice kernels fold b into acc in the same element order
			// as the scalar loops they replaced, so chunked and parallel
			// reductions stay bit-identical to the sequential sweep.
			switch fn {
			case "sum":
				acc = scalarop.SumSlice(acc, b)
			case "min":
				acc = scalarop.MinSlice(acc, b)
			case "max":
				acc = scalarop.MaxSlice(acc, b)
			}
		}
		partials[worker] = acc
		return nil
	})
	if err != nil {
		return 0, err
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		switch fn {
		case "sum":
			acc += p
		case "min":
			if p < acc {
				acc = p
			}
		case "max":
			if p > acc {
				acc = p
			}
		}
	}
	e.addFlops(fn, nelem)
	return acc, nil
}

// ForceMatrix evaluates a matrix-shaped DAG into a stored dense matrix.
// Results whose natural kind is sparse (a sparse source, or a
// sparse×sparse product) are densified — the explicit dense(m)
// conversion; use ForceMatrixAny to keep them compressed. A sparse
// *intermediate* (temp) is freed after the conversion; a sparse source
// is not, since it is the caller's stored array.
func (e *Executor) ForceMatrix(n *algebra.Node, name string) (*array.Matrix, error) {
	if n.Shape.Vector {
		return nil, fmt.Errorf("exec: ForceMatrix of vector node")
	}
	e.begin(n)
	defer e.end()
	f, err := e.forceMatAny(n, name)
	if err != nil {
		return nil, err
	}
	if f.s != nil {
		d, err := f.s.ToDense(e.pool, e.fresh(name+"_dense"))
		if f.temp {
			f.s.Free()
		}
		return d, err
	}
	return f.d, nil
}

// ForceMatrixAny evaluates a matrix-shaped DAG into a stored matrix of
// its natural kind: exactly one of the returned matrices is non-nil.
func (e *Executor) ForceMatrixAny(n *algebra.Node, name string) (*array.Matrix, *sparse.Matrix, error) {
	d, s, _, err := e.ForceMatrixOwned(n, name)
	return d, s, err
}

// ForceMatrixOwned is ForceMatrixAny plus ownership: temp reports
// whether the result is a fresh intermediate (not a stored source) —
// a caller that only inspects the result should free it when temp, so
// repeated evaluations don't grow the device until session close.
func (e *Executor) ForceMatrixOwned(n *algebra.Node, name string) (d *array.Matrix, s *sparse.Matrix, temp bool, err error) {
	if n.Shape.Vector {
		return nil, nil, false, fmt.Errorf("exec: ForceMatrix of vector node")
	}
	e.begin(n)
	defer e.end()
	f, err := e.forceMatAny(n, name)
	if err != nil {
		return nil, nil, false, err
	}
	return f.d, f.s, f.temp, nil
}

// PlanOptions returns the planner inputs for this executor: its
// strategy, ablation knobs, and the live machine parameters of its
// buffer pool.
func (e *Executor) PlanOptions() plan.Options {
	return plan.Options{
		Strategy: e.Planner,
		Machine: plan.Machine{
			MemElems:   e.pool.MemoryElems(),
			BlockElems: e.pool.Device().BlockElems(),
			Frames:     e.pool.Capacity(),
			Workers:    e.Workers,
			Readahead:  e.pool.ReadaheadEnabled(),
		},
		FuseElementwise: e.FuseElementwise,
		EagerUpdates:    e.EagerUpdates,
	}
}

// BuildPlan plans a root without executing it (Explain). With a result
// cache attached it runs the same probe a Force call would, so Explain
// shows the cached steps the execution will take; the probe's handles
// are released before returning.
func (e *Executor) BuildPlan(root *algebra.Node) *plan.Plan {
	e.beginCache(root)
	opts := e.PlanOptions()
	opts.Cache = e.cachePlanView()
	p := plan.Build(root, opts)
	for _, h := range e.cacheHits {
		h.Release()
	}
	e.cacheHits = nil
	e.cacheHashes = nil
	return p
}

func (e *Executor) begin(root *algebra.Node) {
	e.temps = make(map[*algebra.Node]*array.Vector)
	e.beginCache(root)
	opts := e.PlanOptions()
	opts.Cache = e.cachePlanView()
	e.curPlan = plan.Build(root, opts)
	if e.ExplainTo != nil {
		fmt.Fprint(e.ExplainTo, e.curPlan.Render())
	}
}

func (e *Executor) end() {
	for _, v := range e.temps {
		v.Free()
	}
	e.temps = nil
	e.curPlan = nil
	for _, h := range e.cacheHits {
		h.Release()
	}
	e.cacheHits = nil
	e.cacheHashes = nil
}

// beginCache probes the result cache for the Force call: it hashes the
// DAG (nil if any leaf is session-local), acquires the root's entry if
// present, and only on a root miss probes the interior top-down —
// skipping the subtree under every hit, since nothing below a served
// node executes. Acquired handles pin their entries against eviction
// and invalidation-frees until end releases them.
func (e *Executor) beginCache(root *algebra.Node) {
	e.cacheHashes = nil
	e.cacheHits = nil
	if e.Cache == nil || root.Op == algebra.OpSourceVec || root.Op == algebra.OpSourceMat {
		return
	}
	h := e.Cache.HashDAG(root)
	if h == nil {
		return
	}
	e.cacheHashes = h
	e.cacheHits = make(map[*algebra.Node]*rescache.Handle)
	if k, ok := h.Key(root); ok {
		if hd, hit := e.Cache.Acquire(k); hit {
			e.cacheHits[root] = hd
			return
		}
	}
	seen := make(map[*algebra.Node]bool)
	var probe func(n *algebra.Node)
	probe = func(n *algebra.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n != root && n.Op != algebra.OpSourceVec && n.Op != algebra.OpSourceMat {
			if k, ok := h.Key(n); ok {
				if hd, hit := e.Cache.Acquire(k); hit {
					e.cacheHits[n] = hd
					return
				}
			}
		}
		for _, k := range n.Kids {
			probe(k)
		}
	}
	probe(root)
}

// cacheHit reports the handle acquired for n, if any. The map is
// written only in begin, so concurrent worker reads are safe.
func (e *Executor) cacheHit(n *algebra.Node) (*rescache.Handle, bool) {
	h, ok := e.cacheHits[n]
	return h, ok
}

// cachePlanView exposes the probe results to the planner, so the plan's
// cached steps are exactly the hits the executor will serve.
func (e *Executor) cachePlanView() *plan.CacheView {
	if e.cacheHashes == nil {
		return nil
	}
	return &plan.CacheView{
		Hit: func(n *algebra.Node) bool {
			_, ok := e.cacheHits[n]
			return ok
		},
		Installable: func(n *algebra.Node) bool {
			if _, hit := e.cacheHits[n]; hit {
				return false
			}
			if n.Op == algebra.OpSourceVec || n.Op == algebra.OpSourceMat {
				return false
			}
			_, ok := e.cacheHashes.Key(n)
			return ok
		},
		Describe: func(n *algebra.Node) string {
			if k, ok := e.cacheHashes.Key(n); ok {
				return k.String()
			}
			return ""
		},
	}
}

// maybeInstallVec offers a freshly materialized temporary to the result
// cache. Best-effort: refused admission, duplicate keys, or I/O errors
// never fail the query.
func (e *Executor) maybeInstallVec(n *algebra.Node, v *array.Vector) {
	if e.Cache == nil || e.cacheHashes == nil {
		return
	}
	if _, hit := e.cacheHits[n]; hit {
		return
	}
	if k, ok := e.cacheHashes.Key(n); ok {
		_, _ = e.Cache.InstallVector(k, e.cacheHashes.Deps(n), v)
	}
}

// maybeInstallMat is maybeInstallVec for dense matrix results (sparse
// results are not cached).
func (e *Executor) maybeInstallMat(n *algebra.Node, m *array.Matrix) {
	if e.Cache == nil || e.cacheHashes == nil || m == nil {
		return
	}
	if _, hit := e.cacheHits[n]; hit {
		return
	}
	if k, ok := e.cacheHashes.Key(n); ok {
		_, _ = e.Cache.InstallMatrix(k, e.cacheHashes.Deps(n), m)
	}
}

// streamInto evaluates n block by block into out. With Workers > 1 the
// output blocks are partitioned into contiguous block-aligned ranges,
// one range per worker; each output block has exactly one writer, so no
// two workers ever mutate the same frame.
func (e *Executor) streamInto(n *algebra.Node, out *array.Vector) error {
	w := e.workerCount(out.Blocks())
	if w > 1 {
		if err := e.prepareShared(n); err != nil {
			return err
		}
	}
	b := int64(e.pool.Device().BlockElems())
	win := e.announceWindow(w, n)
	return e.runParallel(w, out.Blocks(), func(_, klo, khi int) error {
		partEnd := min(int64(khi)*b, n.Shape.Rows)
		announced := int64(klo) * b
		for k := klo; k < khi; k++ {
			c, err := out.PinChunkNew(k)
			if err != nil {
				return err
			}
			announced = e.announceAhead(n, c.Lo, announced, win, partEnd)
			err = e.evalRange(n, c.Lo, c.Hi, c.Data())
			c.MarkDirty()
			c.Release()
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// lookupTemp reads the shared-subexpression memo; in a parallel section
// it takes the read lock.
func (e *Executor) lookupTemp(n *algebra.Node) (*array.Vector, bool) {
	if e.inParallel {
		e.tempsMu.RLock()
		defer e.tempsMu.RUnlock()
	}
	v, ok := e.temps[n]
	return v, ok
}

// storeTemp publishes a freshly materialized temporary. If a racing
// worker published the node first, the duplicate is freed and the
// winner's copy returned.
func (e *Executor) storeTemp(n *algebra.Node, v *array.Vector) *array.Vector {
	if e.inParallel {
		e.tempsMu.Lock()
		defer e.tempsMu.Unlock()
		if winner, ok := e.temps[n]; ok {
			v.Free()
			return winner
		}
	}
	e.temps[n] = v
	e.materialized.Add(1)
	return v
}

// shouldMaterialize reads the materialization policy from the plan's
// decision table (Heuristic reproduces the seed rules; CostBased
// decides from the cost formulas).
func (e *Executor) shouldMaterialize(n *algebra.Node) bool {
	return e.curPlan.ShouldMaterialize(n)
}

// materializeNode evaluates n into a fresh stored temporary and
// publishes it in the memo.
func (e *Executor) materializeNode(n *algebra.Node) (*array.Vector, error) {
	tmp, err := array.NewVector(e.pool, e.fresh("tmp"), n.Shape.Rows)
	if err != nil {
		return nil, err
	}
	if err := e.streamIntoRaw(n, tmp); err != nil {
		return nil, err
	}
	v := e.storeTemp(n, tmp)
	e.maybeInstallVec(n, v)
	return v, nil
}

// prepareShared runs before a parallel section: it executes the plan's
// preparation schedule for the subtree — every subexpression the
// sequential evaluator would have materialized lazily, plus the
// random-access sources gathers need, already in dependency order — so
// the memo is read-only while workers run.
func (e *Executor) prepareShared(root *algebra.Node) error {
	for _, s := range e.curPlan.PrepareSteps(root) {
		if _, ok := e.temps[s.Node]; ok {
			continue
		}
		if _, err := e.materializeNode(s.Node); err != nil {
			return err
		}
	}
	return nil
}

// announceRange tells the pool's I/O scheduler which source blocks the
// fused pipeline will stream to produce elements [lo, hi) of n: each
// parallel worker announces the window of its partition it is about to
// evaluate, so the scheduler sees bulky sequential requests per source
// instead of the interleaved single-block reads the workers would
// otherwise issue. Materialized temporaries are announced in place of
// their definitions; gathers (random access) and reductions/matrix ops
// (separate pipelines) are not announced. A no-op when the scheduler is
// disabled.
func (e *Executor) announceRange(n *algebra.Node, lo, hi int64) {
	if !e.pool.ReadaheadEnabled() {
		return
	}
	e.announce(n, lo, hi, make(map[*algebra.Node]bool))
}

// announceWindow sizes a worker's rolling announcement so that all w
// workers' prefetched windows across every source stream of n together
// stay well under the frame budget: prefetch that outruns the pool only
// evicts itself (a pipeline over x and y prefetching half the pool per
// stream would have each stream's claims flushing the other's). Returns
// the window in elements.
func (e *Executor) announceWindow(w int, n *algebra.Node) int64 {
	if w < 1 {
		w = 1
	}
	streams := countStreams(n, make(map[*algebra.Node]bool))
	if streams < 1 {
		streams = 1
	}
	blocks := e.pool.Capacity() / (2 * w * streams)
	if blocks < 2 {
		blocks = 2
	}
	return int64(blocks) * int64(e.pool.Device().BlockElems())
}

// countStreams counts the distinct stored vectors a fused pipeline will
// stream: the source leaves the announcement walk reaches.
func countStreams(n *algebra.Node, seen map[*algebra.Node]bool) int {
	if seen[n] {
		return 0
	}
	seen[n] = true
	switch n.Op {
	case algebra.OpSourceVec:
		return 1
	case algebra.OpGather, algebra.OpReduce, algebra.OpMatMul, algebra.OpSourceMat:
		return 0
	}
	total := 0
	for _, k := range n.Kids {
		total += countStreams(k, seen)
	}
	return total
}

// announceAhead keeps a worker's announced region ~win elements ahead of
// its cursor lo: it announces [announced, lo+win) and returns the new
// high-water mark. Announcing ahead (not at) the cursor lets the loads
// overlap the worker's compute, and the half-window hysteresis keeps the
// hints chunky — many small extensions would fragment the scheduler's
// vectored reads into short runs and waste the seeks readahead exists to
// save.
func (e *Executor) announceAhead(n *algebra.Node, lo, announced, win, partEnd int64) int64 {
	target := lo + win
	if target > partEnd {
		target = partEnd
	}
	if announced < lo {
		announced = lo
	}
	if announced >= target {
		return announced
	}
	if announced > lo && target-announced < win/2 {
		// Not yet half a window behind: wait so the next hint is bulky.
		return announced
	}
	e.announceRange(n, announced, target)
	return target
}

func (e *Executor) announce(n *algebra.Node, lo, hi int64, seen map[*algebra.Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	if h, ok := e.cacheHit(n); ok {
		if v := h.Vec(); v != nil {
			v.PrefetchRange(lo, hi)
		}
		return
	}
	if v, ok := e.lookupTemp(n); ok {
		v.PrefetchRange(lo, hi)
		return
	}
	switch n.Op {
	case algebra.OpSourceVec:
		if n.SVec != nil {
			n.SVec.PrefetchRange(lo, hi)
		} else {
			n.Vec.PrefetchRange(lo, hi)
		}
	case algebra.OpRange:
		e.announce(n.Kids[0], n.Lo+lo, n.Lo+hi, seen)
	case algebra.OpGather, algebra.OpReduce, algebra.OpMatMul, algebra.OpSourceMat:
		// Random access or a separate pipeline: no linear hint to give.
	default:
		for _, k := range n.Kids {
			e.announce(k, lo, hi, seen)
		}
	}
}

// evalRange computes elements [lo, hi) of n into buf (len hi-lo). This
// is the fused pipeline: one recursive descent per output block, no
// intermediate storage.
func (e *Executor) evalRange(n *algebra.Node, lo, hi int64, buf []float64) error {
	e.elementsComputed.Add(hi - lo)
	// Sparse short-circuit: a range the zero-propagation rules prove
	// all-zero is written without reading a single block — the fused
	// pipeline's union/intersection semantics over sparse operands.
	// Dense sources never prove zero, so the dense path is untouched.
	if e.rangeZero(n, lo, hi) {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	// A result-cache hit serves the node from its cross-session copy:
	// no recomputation, and (warm pool) no device reads.
	if h, ok := e.cacheHit(n); ok {
		return readVecRange(h.Vec(), lo, hi, buf)
	}
	// A shared, expensive subexpression is materialized once and then
	// served from its temporary. Cheap shared elementwise work is
	// recomputed instead: re-deriving a block costs a few flops, while a
	// temporary costs a full write and re-read of the vector.
	if v, ok := e.lookupTemp(n); ok {
		return readVecRange(v, lo, hi, buf)
	}
	if e.shouldMaterialize(n) {
		tmp, err := e.materializeNode(n)
		if err != nil {
			return err
		}
		return readVecRange(tmp, lo, hi, buf)
	}
	return e.evalRangeRaw(n, lo, hi, buf)
}

// streamIntoRaw is streamInto without the memoization check (used to
// fill the memo itself).
func (e *Executor) streamIntoRaw(n *algebra.Node, out *array.Vector) error {
	for k := 0; k < out.Blocks(); k++ {
		c, err := out.PinChunkNew(k)
		if err != nil {
			return err
		}
		err = e.evalRangeRaw(n, c.Lo, c.Hi, c.Data())
		c.MarkDirty()
		c.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) evalRangeRaw(n *algebra.Node, lo, hi int64, buf []float64) error {
	switch n.Op {
	case algebra.OpSourceVec:
		if n.SVec != nil {
			return n.SVec.ReadRange(lo, hi, buf)
		}
		return readVecRange(n.Vec, lo, hi, buf)
	case algebra.OpElemUnary:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := scalarop.UnarySlice(n.Fn)
		if err != nil {
			return err
		}
		f(buf, buf)
		e.addFlops(n.Fn, hi-lo)
		return nil
	case algebra.OpScalarOp:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := scalarop.BinSliceScalar(n.BinOp, n.ScalarLeft)
		if err != nil {
			return err
		}
		f(buf, buf, n.Scalar)
		e.addFlops(n.BinOp, hi-lo)
		return nil
	case algebra.OpElemBinary:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		rbuf := e.getScratch(int(hi - lo))
		defer e.putScratch(rbuf)
		if err := e.evalRange(n.Kids[1], lo, hi, rbuf); err != nil {
			return err
		}
		f, err := scalarop.BinSlices(n.BinOp)
		if err != nil {
			return err
		}
		f(buf, buf, rbuf)
		e.addFlops(n.BinOp, hi-lo)
		return nil
	case algebra.OpUpdateMask:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := binFn(n.BinOp)
		if err != nil {
			return err
		}
		for i := range buf {
			if f(buf[i], n.Scalar) != 0 {
				buf[i] = n.Scalar2
			}
		}
		e.addFlops("mask"+n.BinOp, hi-lo)
		return nil
	case algebra.OpRange:
		return e.evalRange(n.Kids[0], n.Lo+lo, n.Lo+hi, buf)
	case algebra.OpGather:
		idx := e.getScratch(int(hi - lo))
		defer e.putScratch(idx)
		if err := e.evalRange(n.Kids[1], lo, hi, idx); err != nil {
			return err
		}
		return e.gather(n.Kids[0], idx, buf)
	case algebra.OpReduce:
		v, err := e.reduce(n.Fn, n.Kids[0])
		if err != nil {
			return err
		}
		if lo == 0 && hi == 1 {
			buf[0] = v
		}
		return nil
	case algebra.OpMatMul, algebra.OpSourceMat:
		return fmt.Errorf("exec: matrix node %s in vector pipeline", n.Op)
	}
	return fmt.Errorf("exec: unhandled op %s", n.Op)
}

// indexedVec is the random-access face a gather needs from its data
// source; dense and sparse stored vectors both wear it (sparse answers
// hits in empty chunks from the directory, with no I/O).
type indexedVec interface {
	Len() int64
	At(i int64) (float64, error)
}

// gather fetches data[idx[k]] for each k. The data child is a source
// after pushdown; anything else is materialized first.
func (e *Executor) gather(data *algebra.Node, idx []float64, buf []float64) error {
	var src indexedVec
	if data.Op == algebra.OpSourceVec {
		if data.SVec != nil {
			src = data.SVec
		} else {
			src = data.Vec
		}
	} else if h, ok := e.cacheHit(data); ok {
		src = h.Vec()
	} else if v, ok := e.lookupTemp(data); ok {
		src = v
	} else {
		tmp, err := e.materializeNode(data)
		if err != nil {
			return err
		}
		src = tmp
	}
	for k, fi := range idx {
		i := int64(fi)
		if i < 0 || i >= src.Len() {
			return fmt.Errorf("exec: gather index %d outside vector of %d", i, src.Len())
		}
		v, err := src.At(i)
		if err != nil {
			return err
		}
		buf[k] = v
	}
	return nil
}

// forcedMat is a matrix operand in whichever kind its producer stored:
// exactly one of d and s is non-nil. temp marks a fresh intermediate the
// consuming multiply frees after use (sources are never temp).
type forcedMat struct {
	d    *array.Matrix
	s    *sparse.Matrix
	temp bool
}

func (f forcedMat) free() {
	if !f.temp {
		return
	}
	if f.d != nil {
		f.d.Free()
	}
	if f.s != nil {
		f.s.Free()
	}
}

// rows/cols read the dimensions of whichever store is present.
func (f forcedMat) rows() int64 {
	if f.s != nil {
		return f.s.Rows()
	}
	return f.d.Rows()
}

func (f forcedMat) cols() int64 {
	if f.s != nil {
		return f.s.Cols()
	}
	return f.d.Cols()
}

// tileDims reads the tile geometry of whichever store is present.
func (f forcedMat) tileDims() (tr, tc int) {
	if f.s != nil {
		return f.s.TileDims()
	}
	return f.d.TileDims()
}

// densify returns a dense view of the operand, converting (as a fresh
// temporary) when it is sparse — the fallback for tile geometries the
// sparse kernels reject. The input is consumed: it is freed (when it
// was a temporary) whether the conversion succeeds or fails, so the
// caller's deferred free of the reassigned variable never leaks it.
func (e *Executor) densify(f forcedMat, name string) (forcedMat, error) {
	if f.s == nil {
		return f, nil
	}
	d, err := f.s.ToDense(e.pool, e.fresh(name+"_dense"))
	f.free()
	if err != nil {
		return forcedMat{}, err
	}
	return forcedMat{d: d, temp: true}, nil
}

// forceMatAny materializes a matrix node in its natural kind,
// dispatching multiplies to the kernel matching the operand kinds:
// sparse operands keep their tile directories all the way into the
// multiply, which is what lets the kernels skip empty tiles.
func (e *Executor) forceMatAny(n *algebra.Node, name string) (forcedMat, error) {
	switch n.Op {
	case algebra.OpSourceMat:
		return forcedMat{d: n.Mat, s: n.SMat}, nil
	case algebra.OpMatMul:
		if h, ok := e.cacheHit(n); ok && h.Mat() != nil {
			if n == e.curPlan.Root {
				// The root result outlives this Force call (and so the
				// handle released in end); hand the caller a copy it
				// owns, so a later eviction cannot free blocks under it.
				cp, err := copyCachedMatrix(e.pool, e.fresh(name+"_hit"), h.Mat())
				return forcedMat{d: cp, temp: true}, err
			}
			// Interior hit: the handle stays held until end, so the
			// cached store itself is safe to use in place.
			return forcedMat{d: h.Mat(), temp: false}, nil
		}
		a, err := e.forceMatAny(n.Kids[0], e.fresh(name+"_l"))
		if err != nil {
			return forcedMat{}, err
		}
		b, err := e.forceMatAny(n.Kids[1], e.fresh(name+"_r"))
		if err != nil {
			a.free()
			return forcedMat{}, err
		}
		defer func() {
			// Intermediates (not sources) are freed after use.
			a.free()
			b.free()
		}()
		e.elementsComputed.Add(a.rows() * b.cols())
		// The node's ring selects the kernel arithmetic; the Ring kernel
		// variants delegate to the legacy code paths verbatim for the
		// standard ring, and the flop counter is labelled per ring.
		ring, err := scalarop.Ring(n.Ring)
		if err != nil {
			return forcedMat{}, err
		}
		matmulOp := "matmul"
		if n.Ring != "" {
			matmulOp = "matmul[" + n.Ring + "]"
		}
		// Sparse kernels need matching square tiles; a mixed-geometry
		// operand (e.g. a row-tiled BNLJ intermediate against a sparse
		// source) densifies the sparse side and takes the dense path.
		if (a.s != nil || b.s != nil) && !sparseTilesAligned(a, b) {
			if a, err = e.densify(a, name+"_l"); err != nil {
				return forcedMat{}, err
			}
			if b, err = e.densify(b, name+"_r"); err != nil {
				return forcedMat{}, err
			}
		}
		switch {
		case a.s != nil && b.s != nil:
			e.addFlops(matmulOp, sparseProductFlops(a.s.NNZ(), b.s.NNZ(), a.cols()))
			t, err := linalg.MatMulSparseSparseRing(e.pool, name, a.s, b.s, ring)
			return forcedMat{s: t, temp: true}, err
		case a.s != nil:
			e.addFlops(matmulOp, a.s.NNZ()*b.cols())
			t, err := linalg.MatMulSparseDenseRing(e.pool, name, a.s, b.d, ring)
			if err == nil {
				e.maybeInstallMat(n, t)
			}
			return forcedMat{d: t, temp: true}, err
		case b.s != nil:
			e.addFlops(matmulOp, b.s.NNZ()*a.rows())
			t, err := linalg.MatMulDenseSparseRing(e.pool, name, a.d, b.s, ring)
			if err == nil {
				e.maybeInstallMat(n, t)
			}
			return forcedMat{d: t, temp: true}, err
		}
		e.addFlops(matmulOp, a.rows()*a.cols()*b.cols())
		// The kernel was selected at plan time from the same cost
		// formulas the seed consulted here.
		var t *array.Matrix
		if !ring.IsStandard() {
			// Non-standard rings have no BNLJ or packed path: take the
			// tiled ring schedule when the tiling permits it, else the
			// naive triple loop.
			atr, atc := a.d.TileDims()
			btr, btc := b.d.TileDims()
			if atr == atc && btr == btc && atr == btr {
				t, err = linalg.MatMulTiledRing(e.pool, name, a.d, b.d, e.Workers, ring)
			} else {
				t, err = linalg.MatMulNaiveRing(e.pool, name, a.d, b.d,
					array.Options{Shape: array.SquareTiles, Lin: a.d.Lin()}, ring)
			}
		} else {
			switch e.curPlan.Algo(n) {
			case plan.AlgoSquareTiled:
				t, err = linalg.MatMulTiledWorkers(e.pool, name, a.d, b.d, e.Workers)
			case plan.AlgoBNLJSquare:
				// Square tiling but BNLJ is cheaper at this size.
				t, err = linalg.MatMulBNLJ(e.pool, name, a.d, b.d, array.Options{Shape: array.SquareTiles, Lin: a.d.Lin()})
			default:
				t, err = linalg.MatMulBNLJ(e.pool, name, a.d, b.d, array.Options{Shape: array.RowTiles})
			}
		}
		if err == nil {
			e.maybeInstallMat(n, t)
		}
		return forcedMat{d: t, temp: true}, err
	}
	return forcedMat{}, fmt.Errorf("exec: cannot force matrix op %s", n.Op)
}

// copyCachedMatrix tile-copies a cache-owned matrix into a fresh store
// the caller's session owns (same dims, shape, and linearization).
func copyCachedMatrix(pool *buffer.Pool, name string, src *array.Matrix) (*array.Matrix, error) {
	dst, err := array.NewMatrix(pool, name, src.Rows(), src.Cols(),
		array.Options{Shape: src.Shape(), Lin: src.Lin()})
	if err != nil {
		return nil, err
	}
	gr, gc := src.GridDims()
	for ti := 0; ti < gr; ti++ {
		for tj := 0; tj < gc; tj++ {
			st, err := src.PinTile(ti, tj)
			if err != nil {
				dst.Free()
				return nil, err
			}
			dt, err := dst.PinTileNew(ti, tj)
			if err != nil {
				st.Release()
				dst.Free()
				return nil, err
			}
			copy(dt.Data(), st.Data())
			dt.MarkDirty()
			dt.Release()
			st.Release()
		}
	}
	return dst, nil
}

// sparseTilesAligned reports whether the operands' tile geometries meet
// the sparse kernels' precondition (equal square tiles).
func sparseTilesAligned(a, b forcedMat) bool {
	atr, atc := a.tileDims()
	btr, btc := b.tileDims()
	return atr == atc && btr == btc && atr == btr
}

// sparseProductFlops estimates the scalar multiplications of a
// sparse×sparse product: each stored nonzero of a meets the nonzeros of
// one b row (nnzB/m of them on average).
func sparseProductFlops(nnzA, nnzB, m int64) int64 {
	if m == 0 {
		return 0
	}
	return nnzA * nnzB / m
}

func readVecRange(v *array.Vector, lo, hi int64, buf []float64) error {
	b := int64(v.Pool().Device().BlockElems())
	for lo < hi {
		k := int(lo / b)
		c, err := v.PinChunk(k)
		if err != nil {
			return err
		}
		n := min(hi, c.Hi) - lo
		copy(buf[:n], c.Data()[lo-c.Lo:lo-c.Lo+n])
		c.Release()
		buf = buf[n:]
		lo += n
	}
	return nil
}

// binFn and unaryFn resolve operators in the shared scalar-op table.
func binFn(op string) (scalarop.BinFunc, error)       { return scalarop.Bin(op) }
func unaryFn(name string) (scalarop.UnaryFunc, error) { return scalarop.Unary(name) }
