// Package exec evaluates optimized expression DAGs over the tiled array
// store. Its two core behaviours are the ones the paper identifies as
// the sources of RIOT's wins (§3, §5):
//
//   - Fusion: maximal elementwise regions of the DAG are evaluated in a
//     single streaming pass, block by block, with no intermediate vector
//     ever materialized — the hand-coded loop of Example 1, derived
//     automatically.
//   - Selective evaluation: Range and Gather nodes (after pushdown)
//     compute only the elements actually demanded, touching only the
//     blocks that hold them.
//
// Shared subexpressions (more than one consumer) are materialized once
// into temporaries and reused — the materialization policy that
// "complements deferred evaluation" (§5). Matrix multiplies dispatch to
// the out-of-core kernels in internal/linalg, choosing the algorithm by
// analytic cost.
package exec

import (
	"fmt"
	"math"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/costmodel"
	"riot/internal/linalg"
)

// Stats counts evaluation work.
type Stats struct {
	ElementsComputed int64 // elements produced across all node evaluations
	Materialized     int64 // temporaries written to the store
	Flops            int64 // scalar arithmetic operations
}

// Executor evaluates DAGs over a buffer pool.
type Executor struct {
	pool *buffer.Pool
	seq  int
	// FuseElementwise can be disabled to materialize every intermediate
	// (the ablation that mimics plain R's evaluation inside RIOT).
	FuseElementwise bool
	// EagerUpdates makes []<-(x) materialize the whole new state before
	// any element is read — the semantics of R and RIOT-DB, where a
	// modification forces evaluation (§5). RIOT's functional updates
	// leave it false; Figure 2 compares the two.
	EagerUpdates bool
	stats        Stats
	// temps caches materialized shared subexpressions per Force call.
	temps map[*algebra.Node]*array.Vector
	refs  map[*algebra.Node]int
}

// New creates an executor with fusion enabled.
func New(pool *buffer.Pool) *Executor {
	return &Executor{pool: pool, FuseElementwise: true}
}

// Pool returns the executor's buffer pool.
func (e *Executor) Pool() *buffer.Pool { return e.pool }

// Stats returns the work counters.
func (e *Executor) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Executor) ResetStats() { e.stats = Stats{} }

func (e *Executor) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("%s#%d", prefix, e.seq)
}

// ForceVector evaluates a vector-shaped DAG into a stored vector.
func (e *Executor) ForceVector(n *algebra.Node, name string) (*array.Vector, error) {
	if !n.Shape.Vector {
		return nil, fmt.Errorf("exec: ForceVector of matrix node")
	}
	e.begin(n)
	defer e.end()
	if n.Op == algebra.OpSourceVec {
		return n.Vec, nil
	}
	out, err := array.NewVector(e.pool, name, n.Shape.Rows)
	if err != nil {
		return nil, err
	}
	if err := e.streamInto(n, out); err != nil {
		return nil, err
	}
	return out, e.pool.FlushAll()
}

// Fetch evaluates up to limit elements of a vector node (limit < 0 for
// all) into memory. Small selective results never touch the store.
func (e *Executor) Fetch(n *algebra.Node, limit int64) ([]float64, error) {
	if !n.Shape.Vector {
		return nil, fmt.Errorf("exec: Fetch of matrix node")
	}
	e.begin(n)
	defer e.end()
	count := n.Shape.Rows
	if limit >= 0 && limit < count {
		count = limit
	}
	out := make([]float64, count)
	const block = 4096
	buf := make([]float64, 0, block)
	for lo := int64(0); lo < count; lo += block {
		hi := min(lo+block, count)
		buf = buf[:hi-lo]
		if err := e.evalRange(n, lo, hi, buf); err != nil {
			return nil, err
		}
		copy(out[lo:hi], buf)
	}
	return out, nil
}

// Reduce evaluates a reduction over a vector node.
func (e *Executor) Reduce(fn string, n *algebra.Node) (float64, error) {
	e.begin(n)
	defer e.end()
	return e.reduce(fn, n)
}

func (e *Executor) reduce(fn string, n *algebra.Node) (float64, error) {
	acc := 0.0
	switch fn {
	case "min":
		acc = math.Inf(1)
	case "max":
		acc = math.Inf(-1)
	case "sum":
	default:
		return 0, fmt.Errorf("exec: unknown reduction %q", fn)
	}
	const block = 4096
	buf := make([]float64, block)
	nelem := n.Shape.Rows
	for lo := int64(0); lo < nelem; lo += block {
		hi := min(lo+block, nelem)
		b := buf[:hi-lo]
		if err := e.evalRange(n, lo, hi, b); err != nil {
			return 0, err
		}
		switch fn {
		case "sum":
			for _, v := range b {
				acc += v
			}
		case "min":
			for _, v := range b {
				if v < acc {
					acc = v
				}
			}
		case "max":
			for _, v := range b {
				if v > acc {
					acc = v
				}
			}
		}
	}
	e.stats.Flops += nelem
	return acc, nil
}

// ForceMatrix evaluates a matrix-shaped DAG into a stored matrix.
func (e *Executor) ForceMatrix(n *algebra.Node, name string) (*array.Matrix, error) {
	if n.Shape.Vector {
		return nil, fmt.Errorf("exec: ForceMatrix of vector node")
	}
	e.begin(n)
	defer e.end()
	return e.forceMatrix(n, name)
}

func (e *Executor) begin(roots ...*algebra.Node) {
	e.temps = make(map[*algebra.Node]*array.Vector)
	e.refs = algebra.CountRefs(roots...)
}

func (e *Executor) end() {
	for _, v := range e.temps {
		v.Free()
	}
	e.temps = nil
	e.refs = nil
}

// streamInto evaluates n block by block into out.
func (e *Executor) streamInto(n *algebra.Node, out *array.Vector) error {
	for k := 0; k < out.Blocks(); k++ {
		c, err := out.PinChunkNew(k)
		if err != nil {
			return err
		}
		err = e.evalRange(n, c.Lo, c.Hi, c.Data())
		c.MarkDirty()
		c.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// evalRange computes elements [lo, hi) of n into buf (len hi-lo). This
// is the fused pipeline: one recursive descent per output block, no
// intermediate storage.
func (e *Executor) evalRange(n *algebra.Node, lo, hi int64, buf []float64) error {
	e.stats.ElementsComputed += hi - lo
	// A shared, expensive subexpression is materialized once and then
	// served from its temporary. Cheap shared elementwise work is
	// recomputed instead: re-deriving a block costs a few flops, while a
	// temporary costs a full write and re-read of the vector.
	if v, ok := e.temps[n]; ok {
		return readVecRange(v, lo, hi, buf)
	}
	materialize := e.refs[n] > 1 && worthMaterializing(n)
	if !e.FuseElementwise && n.Op != algebra.OpSourceVec && n.Shape.Vector && n.Op != algebra.OpReduce {
		// Ablation: no fusion means every interior node becomes a
		// full-length temporary, exactly like plain R's evaluator.
		materialize = true
	}
	if e.EagerUpdates && n.Op == algebra.OpUpdateMask {
		materialize = true
	}
	if materialize {
		tmp, err := array.NewVector(e.pool, e.fresh("tmp"), n.Shape.Rows)
		if err != nil {
			return err
		}
		if err := e.streamIntoRaw(n, tmp); err != nil {
			return err
		}
		e.temps[n] = tmp
		e.stats.Materialized++
		return readVecRange(tmp, lo, hi, buf)
	}
	return e.evalRangeRaw(n, lo, hi, buf)
}

// streamIntoRaw is streamInto without the memoization check (used to
// fill the memo itself).
func (e *Executor) streamIntoRaw(n *algebra.Node, out *array.Vector) error {
	for k := 0; k < out.Blocks(); k++ {
		c, err := out.PinChunkNew(k)
		if err != nil {
			return err
		}
		err = e.evalRangeRaw(n, c.Lo, c.Hi, c.Data())
		c.MarkDirty()
		c.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Executor) evalRangeRaw(n *algebra.Node, lo, hi int64, buf []float64) error {
	switch n.Op {
	case algebra.OpSourceVec:
		return readVecRange(n.Vec, lo, hi, buf)
	case algebra.OpElemUnary:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := unaryFn(n.Fn)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = f(buf[i])
		}
		e.stats.Flops += hi - lo
		return nil
	case algebra.OpScalarOp:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := binFn(n.BinOp)
		if err != nil {
			return err
		}
		s := n.Scalar
		if n.ScalarLeft {
			for i := range buf {
				buf[i] = f(s, buf[i])
			}
		} else {
			for i := range buf {
				buf[i] = f(buf[i], s)
			}
		}
		e.stats.Flops += hi - lo
		return nil
	case algebra.OpElemBinary:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		rbuf := make([]float64, hi-lo)
		if err := e.evalRange(n.Kids[1], lo, hi, rbuf); err != nil {
			return err
		}
		f, err := binFn(n.BinOp)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = f(buf[i], rbuf[i])
		}
		e.stats.Flops += hi - lo
		return nil
	case algebra.OpUpdateMask:
		if err := e.evalRange(n.Kids[0], lo, hi, buf); err != nil {
			return err
		}
		f, err := binFn(n.BinOp)
		if err != nil {
			return err
		}
		for i := range buf {
			if f(buf[i], n.Scalar) != 0 {
				buf[i] = n.Scalar2
			}
		}
		e.stats.Flops += hi - lo
		return nil
	case algebra.OpRange:
		return e.evalRange(n.Kids[0], n.Lo+lo, n.Lo+hi, buf)
	case algebra.OpGather:
		idx := make([]float64, hi-lo)
		if err := e.evalRange(n.Kids[1], lo, hi, idx); err != nil {
			return err
		}
		return e.gather(n.Kids[0], idx, buf)
	case algebra.OpReduce:
		v, err := e.reduce(n.Fn, n.Kids[0])
		if err != nil {
			return err
		}
		if lo == 0 && hi == 1 {
			buf[0] = v
		}
		return nil
	case algebra.OpMatMul, algebra.OpSourceMat:
		return fmt.Errorf("exec: matrix node %s in vector pipeline", n.Op)
	}
	return fmt.Errorf("exec: unhandled op %s", n.Op)
}

// gather fetches data[idx[k]] for each k. The data child is a source
// after pushdown; anything else is materialized first.
func (e *Executor) gather(data *algebra.Node, idx []float64, buf []float64) error {
	var src *array.Vector
	switch {
	case data.Op == algebra.OpSourceVec:
		src = data.Vec
	case e.temps[data] != nil:
		src = e.temps[data]
	default:
		tmp, err := array.NewVector(e.pool, e.fresh("tmp"), data.Shape.Rows)
		if err != nil {
			return err
		}
		if err := e.streamIntoRaw(data, tmp); err != nil {
			return err
		}
		e.temps[data] = tmp
		e.stats.Materialized++
		src = tmp
	}
	for k, fi := range idx {
		i := int64(fi)
		if i < 0 || i >= src.Len() {
			return fmt.Errorf("exec: gather index %d outside vector of %d", i, src.Len())
		}
		v, err := src.At(i)
		if err != nil {
			return err
		}
		buf[k] = v
	}
	return nil
}

// forceMatrix materializes a matrix node, dispatching multiplies to the
// cheaper of the square-tiled and BNLJ kernels by analytic cost.
func (e *Executor) forceMatrix(n *algebra.Node, name string) (*array.Matrix, error) {
	switch n.Op {
	case algebra.OpSourceMat:
		return n.Mat, nil
	case algebra.OpMatMul:
		a, err := e.forceMatrix(n.Kids[0], e.fresh(name+"_l"))
		if err != nil {
			return nil, err
		}
		b, err := e.forceMatrix(n.Kids[1], e.fresh(name+"_r"))
		if err != nil {
			return nil, err
		}
		defer func() {
			// Intermediates (not sources) are freed after use.
			if n.Kids[0].Op != algebra.OpSourceMat {
				a.Free()
			}
			if n.Kids[1].Op != algebra.OpSourceMat {
				b.Free()
			}
		}()
		e.stats.Flops += a.Rows() * a.Cols() * b.Cols()
		e.stats.ElementsComputed += a.Rows() * b.Cols()
		p := costmodel.Params{
			MemElems:   float64(e.pool.MemoryElems()),
			BlockElems: float64(e.pool.Device().BlockElems()),
		}
		l, m, k := float64(a.Rows()), float64(a.Cols()), float64(b.Cols())
		atr, atc := a.TileDims()
		btr, btc := b.TileDims()
		squareOK := atr == atc && btr == btc && atr == btr
		if squareOK && costmodel.SquareTiled(l, m, k, p) <= costmodel.BNLJ(l, m, k, p) {
			return linalg.MatMulTiled(e.pool, name, a, b)
		}
		if squareOK {
			// Square tiling but BNLJ is cheaper at this size.
			return linalg.MatMulBNLJ(e.pool, name, a, b, array.Options{Shape: array.SquareTiles, Lin: a.Lin()})
		}
		return linalg.MatMulBNLJ(e.pool, name, a, b, array.Options{Shape: array.RowTiles})
	}
	return nil, fmt.Errorf("exec: cannot force matrix op %s", n.Op)
}

// worthMaterializing gates the shared-subexpression memo. Recomputing a
// fused elementwise block costs a handful of flops per element, while a
// temporary costs a full write plus re-read; only subtrees containing
// genuinely expensive operators (gathers, reductions, multiplies) pay
// for materialization.
func worthMaterializing(n *algebra.Node) bool {
	switch n.Op {
	case algebra.OpSourceVec, algebra.OpSourceMat:
		return false
	case algebra.OpGather, algebra.OpReduce, algebra.OpMatMul:
		return true
	}
	for _, k := range n.Kids {
		if worthMaterializing(k) {
			return true
		}
	}
	return false
}

func readVecRange(v *array.Vector, lo, hi int64, buf []float64) error {
	b := int64(v.Pool().Device().BlockElems())
	for lo < hi {
		k := int(lo / b)
		c, err := v.PinChunk(k)
		if err != nil {
			return err
		}
		n := min(hi, c.Hi) - lo
		copy(buf[:n], c.Data()[lo-c.Lo:lo-c.Lo+n])
		c.Release()
		buf = buf[n:]
		lo += n
	}
	return nil
}

func binFn(op string) (func(a, b float64) float64, error) {
	switch op {
	case "+":
		return func(a, b float64) float64 { return a + b }, nil
	case "-":
		return func(a, b float64) float64 { return a - b }, nil
	case "*":
		return func(a, b float64) float64 { return a * b }, nil
	case "/":
		return func(a, b float64) float64 { return a / b }, nil
	case "^":
		return math.Pow, nil
	case "%%":
		return math.Mod, nil
	case "==":
		return func(a, b float64) float64 { return b2f(a == b) }, nil
	case "!=":
		return func(a, b float64) float64 { return b2f(a != b) }, nil
	case "<":
		return func(a, b float64) float64 { return b2f(a < b) }, nil
	case "<=":
		return func(a, b float64) float64 { return b2f(a <= b) }, nil
	case ">":
		return func(a, b float64) float64 { return b2f(a > b) }, nil
	case ">=":
		return func(a, b float64) float64 { return b2f(a >= b) }, nil
	case "&":
		return func(a, b float64) float64 { return b2f(a != 0 && b != 0) }, nil
	case "|":
		return func(a, b float64) float64 { return b2f(a != 0 || b != 0) }, nil
	}
	return nil, fmt.Errorf("exec: unknown operator %q", op)
}

func unaryFn(name string) (func(float64) float64, error) {
	switch name {
	case "sqrt":
		return math.Sqrt, nil
	case "abs":
		return math.Abs, nil
	case "exp":
		return math.Exp, nil
	case "log":
		return math.Log, nil
	case "sin":
		return math.Sin, nil
	case "cos":
		return math.Cos, nil
	case "floor":
		return math.Floor, nil
	case "ceiling":
		return math.Ceil, nil
	}
	return nil, fmt.Errorf("exec: unknown function %q", name)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
