package exec

import (
	"math"
	"testing"
	"testing/quick"

	"riot/internal/algebra"
	"riot/internal/array"
	"riot/internal/buffer"
	"riot/internal/disk"
	"riot/internal/opt"
)

func newExec(blockElems, frames int) *Executor {
	return New(buffer.New(disk.NewDevice(blockElems), frames))
}

func srcVec(t *testing.T, e *Executor, g *algebra.Graph, name string, n int64, f func(i int64) float64) *algebra.Node {
	t.Helper()
	v, err := array.NewVector(e.Pool(), name, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Fill(f); err != nil {
		t.Fatal(err)
	}
	return g.SourceVec(v)
}

func TestFusedPipelineCorrectness(t *testing.T) {
	e := newExec(64, 16)
	g := algebra.NewGraph()
	x := srcVec(t, e, g, "x", 1000, func(i int64) float64 { return float64(i) })
	// sqrt((x-3)^2 + 7)
	d, err := g.ScalarOp("-", x, 3, false)
	ok(t, err)
	sq, err := g.ElemBinary("*", d, d)
	ok(t, err)
	pl, err := g.ScalarOp("+", sq, 7, false)
	ok(t, err)
	r, err := g.ElemUnary("sqrt", pl)
	ok(t, err)
	out, err := e.Fetch(r, -1)
	ok(t, err)
	for i, v := range out {
		want := math.Sqrt(float64(i-3)*float64(i-3) + 7)
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("out[%d]=%v want %v", i, v, want)
		}
	}
	if e.Stats().Materialized != 0 {
		t.Fatalf("fused pipeline materialized %d temporaries", e.Stats().Materialized)
	}
}

func TestFusionAvoidsIntermediateIO(t *testing.T) {
	// Example 1's line (1): twelve-ish operations, one pass, zero
	// intermediate I/O beyond reading x,y and writing d.
	e := newExec(64, 16)
	g := algebra.NewGraph()
	n := int64(64 * 100)
	x := srcVec(t, e, g, "x", n, func(i int64) float64 { return float64(i % 997) })
	y := srcVec(t, e, g, "y", n, func(i int64) float64 { return float64(i % 991) })
	d := example1(t, g, x, y)
	ok(t, e.Pool().DropAll())
	e.Pool().Device().ResetStats()
	v, err := e.ForceVector(d, "d")
	ok(t, err)
	defer v.Free()
	s := e.Pool().Device().Stats()
	// Reads: x and y once each (CSE collapses their four uses). Writes: d.
	xBlocks := int64(100)
	if s.BlocksRead > 2*xBlocks+2 {
		t.Fatalf("read %d blocks; single pass over x,y is %d", s.BlocksRead, 2*xBlocks)
	}
	if s.BlocksWritten > xBlocks+1 {
		t.Fatalf("wrote %d blocks; d alone is %d", s.BlocksWritten, xBlocks)
	}
}

func example1(t *testing.T, g *algebra.Graph, x, y *algebra.Node) *algebra.Node {
	t.Helper()
	sq := func(v *algebra.Node, c float64) *algebra.Node {
		d, err := g.ScalarOp("-", v, c, false)
		ok(t, err)
		s, err := g.ElemBinary("*", d, d)
		ok(t, err)
		return s
	}
	s1, err := g.ElemBinary("+", sq(x, 3), sq(y, 4))
	ok(t, err)
	r1, err := g.ElemUnary("sqrt", s1)
	ok(t, err)
	s2, err := g.ElemBinary("+", sq(x, 100), sq(y, 200))
	ok(t, err)
	r2, err := g.ElemUnary("sqrt", s2)
	ok(t, err)
	d, err := g.ElemBinary("+", r1, r2)
	ok(t, err)
	return d
}

func TestGatherSelectiveIO(t *testing.T) {
	// z <- d[s] with pushdown: only the blocks containing the sampled
	// indices are read.
	e := newExec(64, 32)
	g := algebra.NewGraph()
	n := int64(64 * 1000)
	x := srcVec(t, e, g, "x", n, func(i int64) float64 { return float64(i % 997) })
	y := srcVec(t, e, g, "y", n, func(i int64) float64 { return float64(i % 991) })
	d := example1(t, g, x, y)
	idx := srcVec(t, e, g, "s", 10, func(i int64) float64 { return float64(i * 5000) })
	z, err := g.Gather(d, idx)
	ok(t, err)
	o := opt.New(g, opt.DefaultConfig())
	zopt, err := o.Optimize(z)
	ok(t, err)
	ok(t, e.Pool().DropAll())
	e.Pool().Device().ResetStats()
	out, err := e.Fetch(zopt, -1)
	ok(t, err)
	if len(out) != 10 {
		t.Fatalf("%d elements", len(out))
	}
	for k, v := range out {
		i := int64(k * 5000)
		xi, yi := float64(i%997), float64(i%991)
		want := math.Sqrt((xi-3)*(xi-3)+(yi-4)*(yi-4)) +
			math.Sqrt((xi-100)*(xi-100)+(yi-200)*(yi-200))
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("z[%d]=%v want %v", k, v, want)
		}
	}
	reads := e.Pool().Device().Stats().BlocksRead
	if reads > 50 { // 10 samples × (x block + y block) + index + slack
		t.Fatalf("selective gather read %d blocks of a %d-block dataset", reads, 2000)
	}
}

func TestFigure2Pushdown(t *testing.T) {
	// b <- a^2; b[b>100] <- 100; print(b[1:10]): with functional updates
	// plus pushdown, the update and the square run on 10 elements; with
	// R/RIOT-DB semantics (a modification forces evaluation), the whole
	// vector is computed first.
	run := func(deferred bool) (int64, []float64) {
		e := newExec(64, 16)
		e.EagerUpdates = !deferred
		g := algebra.NewGraph()
		n := int64(64 * 200)
		a := srcVec(t, e, g, "a", n, func(i int64) float64 { return float64(i) })
		b, err := g.ScalarOp("^", a, 2, false)
		ok(t, err)
		b2, err := g.UpdateMask(b, ">", 100, 100)
		ok(t, err)
		head, err := g.Range(b2, 0, 10)
		ok(t, err)
		cfg := opt.DefaultConfig()
		cfg.PushdownRange = deferred
		cfg.PushdownGather = deferred
		root, err := opt.New(g, cfg).Optimize(head)
		ok(t, err)
		out, err := e.Fetch(root, -1)
		ok(t, err)
		return e.Stats().ElementsComputed, out
	}
	withOpt, outOpt := run(true)
	without, outNo := run(false)
	for i := range outOpt {
		want := math.Min(float64(i*i), 100)
		if outOpt[i] != want || outNo[i] != want {
			t.Fatalf("values wrong at %d: %v / %v want %v", i, outOpt[i], outNo[i], want)
		}
	}
	if withOpt >= without {
		t.Fatalf("pushdown did not reduce work: %d vs %d elements", withOpt, without)
	}
	if withOpt > 100 {
		t.Fatalf("optimized plan computed %d elements; should be ~30", withOpt)
	}
}

func TestSharedExpensiveSubtreeMaterializedOnce(t *testing.T) {
	// A gather used by two consumers is evaluated once.
	e := newExec(64, 16)
	g := algebra.NewGraph()
	data := srcVec(t, e, g, "d", 64*10, func(i int64) float64 { return float64(i) })
	idx := srcVec(t, e, g, "s", 64*2, func(i int64) float64 { return float64(i * 3) })
	gth, err := g.Gather(data, idx)
	ok(t, err)
	l, err := g.ScalarOp("+", gth, 1, false)
	ok(t, err)
	r, err := g.ScalarOp("*", gth, 2, false)
	ok(t, err)
	both, err := g.ElemBinary("+", l, r)
	ok(t, err)
	out, err := e.Fetch(both, -1)
	ok(t, err)
	for k, v := range out {
		base := float64(k * 3)
		if v != (base+1)+(base*2) {
			t.Fatalf("out[%d]=%v", k, v)
		}
	}
	if e.Stats().Materialized != 1 {
		t.Fatalf("materialized %d temps, want exactly 1 (the shared gather)", e.Stats().Materialized)
	}
}

func TestNoFusionAblationMaterializesEverything(t *testing.T) {
	e := newExec(64, 32)
	e.FuseElementwise = false
	g := algebra.NewGraph()
	x := srcVec(t, e, g, "x", 64*10, func(i int64) float64 { return float64(i) })
	a, err := g.ScalarOp("+", x, 1, false)
	ok(t, err)
	b, err := g.ElemUnary("sqrt", a)
	ok(t, err)
	c, err := g.ScalarOp("*", b, 2, false)
	ok(t, err)
	out, err := e.Fetch(c, -1)
	ok(t, err)
	if out[3] != 4 {
		t.Fatalf("out[3]=%v", out[3])
	}
	if e.Stats().Materialized != 3 {
		t.Fatalf("ablation materialized %d temps, want 3", e.Stats().Materialized)
	}
}

func TestRangeComposition(t *testing.T) {
	e := newExec(64, 16)
	g := algebra.NewGraph()
	x := srcVec(t, e, g, "x", 100, func(i int64) float64 { return float64(i) })
	r1, err := g.Range(x, 20, 80)
	ok(t, err)
	r2, err := g.Range(r1, 5, 15)
	ok(t, err)
	root, err := opt.New(g, opt.DefaultConfig()).Optimize(r2)
	ok(t, err)
	out, err := e.Fetch(root, -1)
	ok(t, err)
	if len(out) != 10 || out[0] != 25 || out[9] != 34 {
		t.Fatalf("out=%v", out)
	}
	// Composition must collapse to a single range over the source.
	if root.Op != algebra.OpRange || root.Kids[0].Op != algebra.OpSourceVec {
		t.Fatalf("ranges not collapsed: %s", root)
	}
}

func TestReduceOverPipeline(t *testing.T) {
	e := newExec(64, 16)
	g := algebra.NewGraph()
	x := srcVec(t, e, g, "x", 1000, func(i int64) float64 { return float64(i) })
	d, err := g.ScalarOp("*", x, 2, false)
	ok(t, err)
	sum, err := e.Reduce("sum", d)
	ok(t, err)
	if sum != 999000 {
		t.Fatalf("sum=%v", sum)
	}
	mn, err := e.Reduce("min", d)
	ok(t, err)
	mx, err := e.Reduce("max", d)
	ok(t, err)
	if mn != 0 || mx != 1998 {
		t.Fatalf("min/max = %v/%v", mn, mx)
	}
}

func TestMatMulChainReorderedAndCorrect(t *testing.T) {
	e := newExec(64, 48)
	g := algebra.NewGraph()
	// Skewed chain: A 30×6, B 6×30, C 30×30 → optimal is A(BC).
	mk := func(name string, r, c int64, seed int64) *algebra.Node {
		m, err := array.NewMatrix(e.Pool(), name, r, c, array.Options{Shape: array.SquareTiles})
		ok(t, err)
		ok(t, m.Fill(func(i, j int64) float64 {
			return float64((i*31+j*17+seed)%13) - 6
		}))
		return g.SourceMat(m)
	}
	a := mk("A", 30, 6, 1)
	b := mk("B", 6, 30, 2)
	c := mk("C", 30, 30, 3)
	ab, err := g.MatMul(a, b)
	ok(t, err)
	abc, err := g.MatMul(ab, c)
	ok(t, err)
	root, err := opt.New(g, opt.DefaultConfig()).Optimize(abc)
	ok(t, err)
	// The optimizer must have re-parenthesized to A(BC).
	if root.Kids[0] != a || root.Kids[1].Op != algebra.OpMatMul {
		t.Fatalf("chain not reordered: %s", root)
	}
	got, err := e.ForceMatrix(root, "out")
	ok(t, err)
	// Reference via in-order evaluation without reordering.
	cfg := opt.DefaultConfig()
	cfg.ChainReorder = false
	root2, err := opt.New(g, cfg).Optimize(abc)
	ok(t, err)
	want, err := e.ForceMatrix(root2, "out2")
	ok(t, err)
	for i := int64(0); i < 30; i++ {
		for j := int64(0); j < 30; j++ {
			v1, _ := got.At(i, j)
			v2, _ := want.At(i, j)
			if math.Abs(v1-v2) > 1e-9 {
				t.Fatalf("reordered product differs at (%d,%d): %v vs %v", i, j, v1, v2)
			}
		}
	}
}

func TestCSECollapsesIdenticalSubtrees(t *testing.T) {
	g := algebra.NewGraph()
	pool := buffer.New(disk.NewDevice(16), 8)
	v, err := array.NewVector(pool, "x", 10)
	ok(t, err)
	x := g.SourceVec(v)
	a1, err := g.ScalarOp("-", x, 3, false)
	ok(t, err)
	a2, err := g.ScalarOp("-", x, 3, false)
	ok(t, err)
	if a1 != a2 {
		t.Fatal("CSE failed to share identical nodes")
	}
	g2 := algebra.NewGraph()
	g2.EnableCSE = false
	x2 := g2.SourceVec(v)
	b1, _ := g2.ScalarOp("-", x2, 3, false)
	b2, _ := g2.ScalarOp("-", x2, 3, false)
	if b1 == b2 {
		t.Fatal("CSE disabled but nodes shared")
	}
}

func TestShapeErrors(t *testing.T) {
	g := algebra.NewGraph()
	pool := buffer.New(disk.NewDevice(16), 8)
	v1, _ := array.NewVector(pool, "a", 10)
	v2, _ := array.NewVector(pool, "b", 20)
	x, y := g.SourceVec(v1), g.SourceVec(v2)
	if _, err := g.ElemBinary("+", x, y); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := g.Range(x, 5, 20); err == nil {
		t.Fatal("expected range error")
	}
	m, _ := array.NewMatrix(pool, "m", 4, 5, array.Options{Shape: array.SquareTiles})
	mn := g.SourceMat(m)
	if _, err := g.MatMul(mn, mn); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	if _, err := g.ElemUnary("sqrt", mn); err == nil {
		t.Fatal("expected vector-required error")
	}
}

// Property: for random elementwise expression trees, the fused executor
// agrees with a direct in-memory evaluation.
func TestFusedMatchesModelProperty(t *testing.T) {
	f := func(ops []uint8, scalars []int8) bool {
		if len(ops) == 0 || len(ops) > 12 || len(scalars) == 0 {
			return true
		}
		e := newExec(16, 8)
		g := algebra.NewGraph()
		n := int64(100)
		x := srcVec(t, e, g, "x", n, func(i int64) float64 { return float64(i%17) + 1 })
		model := make([]float64, n)
		for i := range model {
			model[i] = float64(int64(i)%17) + 1
		}
		node := x
		binops := []string{"+", "-", "*"}
		for k, op := range ops {
			s := float64(int(scalars[k%max(len(scalars), 1)])%5 + 6) // 1..10, nonzero
			name := binops[int(op)%3]
			var err error
			node, err = g.ScalarOp(name, node, s, op%2 == 0)
			if err != nil {
				return false
			}
			for i := range model {
				a, b := model[i], s
				if op%2 == 0 {
					a, b = b, a
				}
				switch name {
				case "+":
					model[i] = a + b
				case "-":
					model[i] = a - b
				case "*":
					model[i] = a * b
				}
			}
		}
		out, err := e.Fetch(node, -1)
		if err != nil {
			return false
		}
		for i := range model {
			if math.Abs(out[i]-model[i]) > 1e-6*math.Max(1, math.Abs(model[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func ok(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
