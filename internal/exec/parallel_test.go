package exec

import (
	"math"
	"testing"

	"riot/internal/algebra"
	"riot/internal/buffer"
	"riot/internal/disk"
)

// newExecWorkers builds an executor with a sharded pool and the given
// worker count.
func newExecWorkers(blockElems, frames, workers int) *Executor {
	e := New(buffer.NewSharded(disk.NewDevice(blockElems), frames, workers))
	e.Workers = workers
	return e
}

// buildPipeline constructs the Example-1-style DAG
// sqrt((x-3)^2) + sqrt((x-4)^2) with a shared gather and an update mask,
// exercising every vector operator the parallel path must handle.
func buildPipeline(t *testing.T, e *Executor, g *algebra.Graph, n int64) *algebra.Node {
	t.Helper()
	x := srcVec(t, e, g, "x", n, func(i int64) float64 { return float64(i % 9973) })
	y := srcVec(t, e, g, "y", n, func(i int64) float64 { return float64(i % 9967) })
	dist := func(v *algebra.Node, c float64) *algebra.Node {
		d, err := g.ScalarOp("-", v, c, false)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := g.ElemBinary("*", d, d)
		if err != nil {
			t.Fatal(err)
		}
		return sq
	}
	s1, err := g.ElemBinary("+", dist(x, 3), dist(y, 4))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := g.ElemUnary("sqrt", s1)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := g.UpdateMask(r1, ">", 5000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	return upd
}

// TestParallelForceVectorMatchesSequential forces the same DAG with one
// and with several workers and compares every element.
func TestParallelForceVectorMatchesSequential(t *testing.T) {
	const n = 1 << 15
	run := func(workers int) []float64 {
		e := newExecWorkers(1024, 16, workers)
		g := algebra.NewGraph()
		root := buildPipeline(t, e, g, n)
		v, err := e.ForceVector(root, "out")
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Fetch(g.SourceVec(v), -1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %v, want %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestParallelFetchMatchesSequential covers the parallel Fetch path,
// which needs several 4096-element chunks before it fans out.
func TestParallelFetchMatchesSequential(t *testing.T) {
	const n = 1 << 15
	run := func(workers int) []float64 {
		e := newExecWorkers(1024, 16, workers)
		g := algebra.NewGraph()
		root := buildPipeline(t, e, g, n)
		out, err := e.Fetch(root, -1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	got := run(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestParallelReduceMatchesSequential: per-worker partials reassociate
// the sum, so allow a relative error at float64 rounding scale.
func TestParallelReduceMatchesSequential(t *testing.T) {
	const n = 1 << 15
	run := func(workers int) float64 {
		e := newExecWorkers(1024, 16, workers)
		g := algebra.NewGraph()
		root := buildPipeline(t, e, g, n)
		s, err := e.Reduce("sum", root)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Fatalf("workers=%d: sum=%v, want %v", w, got, want)
		}
	}
	for _, fn := range []string{"min", "max"} {
		runF := func(workers int) float64 {
			e := newExecWorkers(1024, 16, workers)
			g := algebra.NewGraph()
			root := buildPipeline(t, e, g, n)
			s, err := e.Reduce(fn, root)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		if got, want := runF(4), runF(1); got != want {
			t.Fatalf("%s: workers=4 got %v, want %v", fn, got, want)
		}
	}
}

// TestParallelSharedSubexpression: a shared expensive subtree (a gather)
// must be materialized exactly once by the preparation pass, then served
// read-only to all workers.
func TestParallelSharedSubexpression(t *testing.T) {
	const n = 1 << 15
	run := func(workers int) ([]float64, int64) {
		e := newExecWorkers(1024, 16, workers)
		g := algebra.NewGraph()
		x := srcVec(t, e, g, "x", n, func(i int64) float64 { return float64(i) })
		idx := srcVec(t, e, g, "idx", n, func(i int64) float64 { return float64((i * 7) % n) })
		gat, err := g.Gather(x, idx)
		if err != nil {
			t.Fatal(err)
		}
		// The gather feeds two consumers, making it a shared expensive node.
		a, err := g.ScalarOp("*", gat, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.ScalarOp("+", gat, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := g.ElemBinary("+", a, b)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Fetch(sum, -1)
		if err != nil {
			t.Fatal(err)
		}
		return out, e.Stats().Materialized
	}
	want, _ := run(1)
	got, mat := run(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if mat != 1 {
		t.Fatalf("parallel run materialized %d temps, want exactly 1 (the shared gather)", mat)
	}
}

// TestParallelNoFusionAblation: the ablation that materializes every
// interior node must agree across worker counts too.
func TestParallelNoFusionAblation(t *testing.T) {
	const n = 1 << 14
	run := func(workers int) []float64 {
		e := newExecWorkers(1024, 16, workers)
		e.FuseElementwise = false
		g := algebra.NewGraph()
		root := buildPipeline(t, e, g, n)
		out, err := e.Fetch(root, -1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	got := run(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestWorkers1PathUnchanged pins the executor's Workers=1 I/O shape: the
// fused pipeline must stream with zero temporaries and the exact same
// device traffic as the seed executor.
func TestWorkers1PathUnchanged(t *testing.T) {
	const n = 1 << 15
	e := newExecWorkers(1024, 16, 1)
	g := algebra.NewGraph()
	root := buildPipeline(t, e, g, n)
	e.Pool().Device().ResetStats()
	if _, err := e.Fetch(root, -1); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Materialized != 0 {
		t.Fatalf("fused Workers=1 run materialized %d temps", e.Stats().Materialized)
	}
	// Reads: x and y once each (32 blocks each at 1024 elems/block).
	if r := e.Pool().Device().Stats().BlocksRead; r != 64 {
		t.Fatalf("Workers=1 fused pipeline read %d blocks, want 64", r)
	}
}
