// Package vmem simulates operating-system virtual memory with demand
// paging. It exists to reproduce plain R's failure mode from the paper:
// R assumes all data fits in main memory, and when eager whole-vector
// temporaries exceed physical memory the OS starts swapping, "often
// causing the program to thrash and run unbearably slow" (§1).
//
// The Plain R engine (internal/rvec) allocates every vector — inputs and
// all intermediates — inside a Space with a fixed physical-page budget.
// Page residency follows LRU; evicting a dirty page charges a swap-out,
// re-touching an evicted page that has a swap copy charges a swap-in.
// The resulting counters are the moral equivalent of the DTrace
// virtual-memory paging statistics the paper collected for R.
package vmem

import "fmt"

// Stats counts paging activity for a Space.
type Stats struct {
	MinorFaults int64 // first touch of a zero page: no I/O, consumes a frame
	MajorFaults int64 // page read back from swap
	Writebacks  int64 // dirty page written to swap on eviction
	SeqIO       int64 // major faults/writebacks adjacent to the previous one
	RandIO      int64 // all other swap traffic
	pageBytes   int64
}

// SwapOps returns the number of page-sized I/O operations performed.
func (s Stats) SwapOps() int64 { return s.MajorFaults + s.Writebacks }

// IOBytes returns the swap traffic in bytes.
func (s Stats) IOBytes() int64 { return s.SwapOps() * s.pageBytes }

// IOMB returns the swap traffic in mebibytes, the unit of Figure 1(a).
func (s Stats) IOMB() float64 { return float64(s.IOBytes()) / (1 << 20) }

func (s Stats) String() string {
	return fmt.Sprintf("minor=%d major=%d writeback=%d io=%.1fMB",
		s.MinorFaults, s.MajorFaults, s.Writebacks, s.IOMB())
}

type pageState uint8

const (
	pageUntouched pageState = iota // never touched: zero-fill on demand
	pageResident                   // in physical memory
	pageSwapped                    // evicted with a valid swap copy
	pageDropped                    // evicted clean with no swap copy (still zero or rebuilt)
)

type page struct {
	state pageState
	dirty bool
	// LRU intrusive doubly-linked list (resident pages only).
	prev, next *page
	arr        *Array
	idx        int
}

// Array is a contiguous allocation of float64 elements inside a Space.
// Element data is always materialized in host memory; the Space only
// simulates which pages would be resident.
type Array struct {
	space *Space
	name  string
	data  []float64
	pages []page
	freed bool
}

// Space models physical memory: a budget of page frames shared by all
// arrays allocated from it.
type Space struct {
	pageElems int
	capacity  int // frames available to pageable data
	locked    int // frames permanently consumed (the "R runtime")
	resident  int
	lruHead   *page // least recently used
	lruTail   *page // most recently used
	stats     Stats
	lastSwap  int64 // last swap "slot" for seq/random classification
	hasSwap   bool
	nextSlot  map[*page]int64 // swap slot assigned per page
	slotSeq   int64
}

// NewSpace creates a Space with pages of pageElems float64s and a
// physical budget of capacityPages frames.
func NewSpace(pageElems, capacityPages int) *Space {
	if pageElems <= 0 || capacityPages <= 0 {
		panic("vmem: page size and capacity must be positive")
	}
	return &Space{
		pageElems: pageElems,
		capacity:  capacityPages,
		nextSlot:  make(map[*page]int64),
	}
}

// PageElems returns the page size in elements.
func (s *Space) PageElems() int { return s.pageElems }

// PageBytes returns the page size in bytes.
func (s *Space) PageBytes() int64 { return int64(s.pageElems) * 8 }

// CapacityPages returns the pageable frame budget (after locking).
func (s *Space) CapacityPages() int { return s.capacity }

// ReserveLocked permanently removes pages frames from the budget,
// simulating memory pinned by the language runtime itself (the paper
// caps memory at "the R runtime plus two vectors").
func (s *Space) ReserveLocked(pages int) {
	if pages >= s.capacity {
		panic("vmem: locking more pages than capacity")
	}
	s.capacity -= pages
	s.locked += pages
}

// LockedPages returns how many frames are reserved for the runtime.
func (s *Space) LockedPages() int { return s.locked }

// Stats returns a snapshot of the paging counters.
func (s *Space) Stats() Stats {
	st := s.stats
	st.pageBytes = s.PageBytes()
	return st
}

// ResetStats zeroes the counters without changing residency.
func (s *Space) ResetStats() { s.stats = Stats{} }

// ResidentPages returns the number of frames currently in use.
func (s *Space) ResidentPages() int { return s.resident }

// Alloc creates an array of n elements. Allocation itself performs no
// I/O: pages are zero-fill-on-demand, exactly like anonymous mmap.
func (s *Space) Alloc(name string, n int64) *Array {
	if n < 0 {
		panic("vmem: negative allocation")
	}
	np := int((n + int64(s.pageElems) - 1) / int64(s.pageElems))
	a := &Array{
		space: s,
		name:  name,
		data:  make([]float64, n),
		pages: make([]page, np),
	}
	for i := range a.pages {
		a.pages[i].arr = a
		a.pages[i].idx = i
	}
	return a
}

// Free releases the array's frames. Dropping pages needs no I/O: the OS
// discards anonymous pages of an unmapped region, dirty or not.
func (s *Space) Free(a *Array) {
	if a.freed {
		return
	}
	a.freed = true
	for i := range a.pages {
		p := &a.pages[i]
		if p.state == pageResident {
			s.lruRemove(p)
			s.resident--
		}
		delete(s.nextSlot, p)
		p.state = pageDropped
	}
	a.data = nil
}

// Len returns the number of elements in the array.
func (a *Array) Len() int64 { return int64(cap(a.data)) }

// Name returns the allocation label.
func (a *Array) Name() string { return a.name }

// NumPages returns the number of pages backing the array.
func (a *Array) NumPages() int { return len(a.pages) }

// PageSpan returns the element range [lo, hi) covered by page i.
func (a *Array) PageSpan(i int) (lo, hi int64) {
	pe := int64(a.space.pageElems)
	lo = int64(i) * pe
	hi = lo + pe
	if hi > a.Len() {
		hi = a.Len()
	}
	return lo, hi
}

// ReadPage touches page i for reading and returns its element slice.
// The slice is valid until the next Space operation evicts the page —
// callers should finish with it before touching other pages in bulk, as
// an eager interpreter does.
func (a *Array) ReadPage(i int) []float64 {
	a.touch(i, false)
	lo, hi := a.PageSpan(i)
	return a.data[lo:hi]
}

// WritePage touches page i for writing (marking it dirty) and returns
// its element slice.
func (a *Array) WritePage(i int) []float64 {
	a.touch(i, true)
	lo, hi := a.PageSpan(i)
	return a.data[lo:hi]
}

// At reads one element, faulting its page if needed.
func (a *Array) At(i int64) float64 {
	a.touch(int(i/int64(a.space.pageElems)), false)
	return a.data[i]
}

// Set writes one element, faulting its page if needed.
func (a *Array) Set(i int64, v float64) {
	a.touch(int(i/int64(a.space.pageElems)), true)
	a.data[i] = v
}

// PageOfElem returns the page index containing element i.
func (a *Array) PageOfElem(i int64) int { return int(i / int64(a.space.pageElems)) }

func (a *Array) touch(i int, write bool) {
	if a.freed {
		panic(fmt.Sprintf("vmem: access to freed array %q", a.name))
	}
	s := a.space
	p := &a.pages[i]
	switch p.state {
	case pageResident:
		s.lruRemove(p)
		s.lruPush(p)
	case pageUntouched, pageDropped:
		s.makeRoom()
		p.state = pageResident
		s.resident++
		s.lruPush(p)
		s.stats.MinorFaults++
	case pageSwapped:
		s.makeRoom()
		p.state = pageResident
		s.resident++
		s.lruPush(p)
		s.stats.MajorFaults++
		s.chargeSwapIO(p)
	}
	if write {
		p.dirty = true
	}
}

// makeRoom evicts the LRU page if the budget is exhausted.
func (s *Space) makeRoom() {
	for s.resident >= s.capacity {
		victim := s.lruHead
		if victim == nil {
			panic("vmem: no evictable page")
		}
		s.lruRemove(victim)
		s.resident--
		if victim.dirty {
			victim.state = pageSwapped
			victim.dirty = false
			s.stats.Writebacks++
			s.chargeSwapIO(victim)
		} else if victim.state == pageResident && s.hasSwapCopy(victim) {
			victim.state = pageSwapped
		} else {
			victim.state = pageDropped
		}
	}
}

// hasSwapCopy reports whether the page was ever written to swap (so a
// clean eviction can keep the swap copy instead of dropping).
func (s *Space) hasSwapCopy(p *page) bool {
	_, ok := s.nextSlot[p]
	return ok
}

// chargeSwapIO classifies one page of swap traffic as sequential or
// random based on swap-slot adjacency. Slots are assigned on first
// writeback in eviction order, which is how swap files behave.
func (s *Space) chargeSwapIO(p *page) {
	slot, ok := s.nextSlot[p]
	if !ok {
		slot = s.slotSeq
		s.slotSeq++
		s.nextSlot[p] = slot
	}
	if s.hasSwap && slot == s.lastSwap+1 {
		s.stats.SeqIO++
	} else {
		s.stats.RandIO++
	}
	s.lastSwap = slot
	s.hasSwap = true
}

func (s *Space) lruPush(p *page) {
	p.prev = s.lruTail
	p.next = nil
	if s.lruTail != nil {
		s.lruTail.next = p
	}
	s.lruTail = p
	if s.lruHead == nil {
		s.lruHead = p
	}
}

func (s *Space) lruRemove(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if s.lruHead == p {
		s.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if s.lruTail == p {
		s.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}
