package vmem

import (
	"testing"
	"testing/quick"
)

func TestAllocNoIO(t *testing.T) {
	s := NewSpace(4, 8)
	s.Alloc("x", 100)
	st := s.Stats()
	if st.SwapOps() != 0 || st.MinorFaults != 0 {
		t.Fatalf("allocation caused activity: %v", st)
	}
}

func TestFirstTouchIsMinorFault(t *testing.T) {
	s := NewSpace(4, 8)
	a := s.Alloc("x", 8)
	a.Set(0, 1)
	a.Set(5, 2) // second page
	st := s.Stats()
	if st.MinorFaults != 2 || st.MajorFaults != 0 {
		t.Fatalf("minor=%d major=%d, want 2/0", st.MinorFaults, st.MajorFaults)
	}
}

func TestDataSurvivesEviction(t *testing.T) {
	s := NewSpace(2, 2)
	a := s.Alloc("a", 4) // 2 pages
	b := s.Alloc("b", 4) // 2 pages
	a.Set(0, 10)
	a.Set(2, 20)
	b.Set(0, 30) // evicts a's pages
	b.Set(2, 40)
	if got := a.At(0); got != 10 {
		t.Fatalf("a[0]=%v, want 10", got)
	}
	if got := a.At(2); got != 20 {
		t.Fatalf("a[2]=%v, want 20", got)
	}
}

func TestThrashingAccounting(t *testing.T) {
	// 2 frames; two 2-page arrays written then re-read alternately.
	s := NewSpace(2, 2)
	a := s.Alloc("a", 4)
	b := s.Alloc("b", 4)
	a.Set(0, 1) // minor
	a.Set(2, 1) // minor
	b.Set(0, 1) // minor, evicts a/p0 dirty -> writeback
	b.Set(2, 1) // minor, evicts a/p1 dirty -> writeback
	_ = a.At(0) // major (swap-in), evicts b/p0 dirty -> writeback
	st := s.Stats()
	if st.MinorFaults != 4 {
		t.Fatalf("minor=%d, want 4", st.MinorFaults)
	}
	if st.Writebacks != 3 {
		t.Fatalf("writebacks=%d, want 3", st.Writebacks)
	}
	if st.MajorFaults != 1 {
		t.Fatalf("major=%d, want 1", st.MajorFaults)
	}
}

func TestCleanReReadOfZeroPagesNoIO(t *testing.T) {
	// Pages touched only for reading are zero and clean: eviction drops
	// them and re-touching is another minor fault, never swap traffic.
	s := NewSpace(2, 2)
	a := s.Alloc("a", 8) // 4 pages
	for i := 0; i < 4; i++ {
		_ = a.ReadPage(i)
	}
	_ = a.ReadPage(0) // was dropped; minor again
	st := s.Stats()
	if st.SwapOps() != 0 {
		t.Fatalf("zero-page churn produced I/O: %v", st)
	}
	if st.MinorFaults != 5 {
		t.Fatalf("minor=%d, want 5", st.MinorFaults)
	}
}

func TestCleanEvictionWithSwapCopy(t *testing.T) {
	// A page written back once and swapped in clean keeps its swap copy:
	// the next eviction is free, the next touch is a major fault.
	s := NewSpace(1, 1)
	a := s.Alloc("a", 1)
	b := s.Alloc("b", 1)
	a.Set(0, 7) // resident, dirty
	_ = b.At(0) // evict a (writeback 1)
	_ = a.At(0) // major 1 (clean now), evicts b (dropped: zero)
	_ = b.At(0) // minor, evicts a — clean, swap copy retained, no writeback
	_ = a.At(0) // major 2
	if got := a.At(0); got != 7 {
		t.Fatalf("a[0]=%v, want 7", got)
	}
	st := s.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks=%d, want 1", st.Writebacks)
	}
	if st.MajorFaults != 2 {
		t.Fatalf("major=%d, want 2", st.MajorFaults)
	}
}

func TestFreeReleasesFramesWithoutIO(t *testing.T) {
	s := NewSpace(2, 4)
	a := s.Alloc("a", 8)
	for i := 0; i < 4; i++ {
		a.WritePage(i)
	}
	if s.ResidentPages() != 4 {
		t.Fatalf("resident=%d, want 4", s.ResidentPages())
	}
	before := s.Stats().SwapOps()
	s.Free(a)
	if s.ResidentPages() != 0 {
		t.Fatalf("resident=%d after free", s.ResidentPages())
	}
	if got := s.Stats().SwapOps() - before; got != 0 {
		t.Fatalf("free caused %d swap ops", got)
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	s := NewSpace(2, 4)
	a := s.Alloc("a", 4)
	s.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.At(0)
}

func TestReserveLocked(t *testing.T) {
	s := NewSpace(2, 10)
	s.ReserveLocked(6)
	if s.CapacityPages() != 4 {
		t.Fatalf("capacity=%d, want 4", s.CapacityPages())
	}
	if s.LockedPages() != 6 {
		t.Fatalf("locked=%d, want 6", s.LockedPages())
	}
	// Workload that fits in 10 pages but not 4 must now swap.
	a := s.Alloc("a", 12) // 6 pages
	for i := 0; i < 6; i++ {
		a.WritePage(i)
	}
	for i := 0; i < 6; i++ {
		a.ReadPage(i)
	}
	if s.Stats().MajorFaults == 0 {
		t.Fatal("expected major faults under locked memory")
	}
}

func TestSequentialScanOfBigArrayEvictsInOrder(t *testing.T) {
	// Writing a large array sequentially then rescanning it produces
	// sequential swap traffic (slots assigned in eviction order).
	s := NewSpace(2, 4)
	a := s.Alloc("a", 32) // 16 pages
	for i := 0; i < 16; i++ {
		a.WritePage(i)
	}
	for i := 0; i < 16; i++ {
		a.ReadPage(i)
	}
	st := s.Stats()
	if st.SeqIO == 0 {
		t.Fatal("expected some sequential swap I/O")
	}
	if st.SeqIO < st.RandIO {
		t.Fatalf("seq=%d < rand=%d; scan pattern should be mostly sequential", st.SeqIO, st.RandIO)
	}
}

func TestPageSpanAndStats(t *testing.T) {
	s := NewSpace(4, 4)
	a := s.Alloc("a", 10)
	if a.NumPages() != 3 {
		t.Fatalf("pages=%d, want 3", a.NumPages())
	}
	lo, hi := a.PageSpan(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("span=(%d,%d), want (8,10)", lo, hi)
	}
	if a.PageOfElem(9) != 2 {
		t.Fatalf("PageOfElem(9)=%d", a.PageOfElem(9))
	}
	a.Set(9, 3)
	st := s.Stats()
	if st.IOBytes() != 0 {
		t.Fatalf("unexpected IO: %v", st)
	}
}

// Property: values written through the paging layer always read back,
// regardless of the access pattern and eviction pressure.
func TestReadYourWritesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace(2, 3)
		a := s.Alloc("a", 64)
		model := make([]float64, 64)
		for k, op := range ops {
			i := int64(op % 64)
			if op%2 == 0 {
				v := float64(k + 1)
				a.Set(i, v)
				model[i] = v
			} else if a.At(i) != model[i] {
				return false
			}
		}
		for i := range model {
			if a.At(int64(i)) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: resident page count never exceeds capacity.
func TestResidencyBudgetProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace(2, 3)
		a := s.Alloc("a", 64)
		for _, op := range ops {
			if op%2 == 0 {
				a.Set(int64(op%64), 1)
			} else {
				a.At(int64(op % 64))
			}
			if s.ResidentPages() > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
