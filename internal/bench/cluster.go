package bench

import (
	"fmt"
	"io"
	"time"

	"riot"
	"riot/internal/cluster/harness"
)

// ClusterRow is one distributed-matmul ablation measurement: the same
// out-of-core multiply on a single node versus scattered across a
// 2-node in-process cluster.
type ClusterRow struct {
	Mode           string // "single" or "cluster"
	Nodes          int
	WallNS         int64
	TotalIOBytes   int64 // engine I/O summed over all participating sessions
	MaxNodeIOBytes int64 // largest single session's engine I/O — the per-node load
	NetBytes       int64 // coordinator interconnect traffic (0 for single)
}

// ClusterAblation measures what scatter-gather costs and buys: an
// l×m · m×k dense multiply sized well past the buffer pool, run
// single-node and then across a 2-node harness cluster. The shape is
// the one distribution favors — the sharded operand tall, the
// broadcast one small. Each node multiplies only its tile bands of A,
// so the multiply's dominant I/O term (re-reading B once per tile-row
// of A) halves per node; the price is installing the shipped operands
// on each node and moving every band across the interconnect, which
// the total-I/O and net columns make visible. The bench-smoke CI
// assertion pins the balance claim: neither node's I/O exceeds a
// balanced share of the cluster total, and the interconnect traffic is
// nonzero.
func ClusterAblation(w io.Writer) ([]ClusterRow, error) {
	const (
		l          = 512     // sharded dimension: 32 tile-row bands
		m          = 256
		k          = 64      // small broadcast operand
		blockElems = 256     // 16×16 tiles
		memElems   = 1 << 14 // 64 frames: operands do not stay resident
	)
	cfg := riot.Config{BlockElems: blockElems, MemElems: memElems, Workers: 1}
	gen := func(tag int64) func(i, j int64) float64 {
		return func(i, j int64) float64 { return float64((i*31+j*17+tag)%97) / 8 }
	}
	fmt.Fprintf(w, "cluster ablation: %dx%d · %dx%d dense matmul, B=%d elems, pool %d blocks\n",
		l, m, m, k, blockElems, memElems/blockElems)
	fmt.Fprintf(w, "%-8s %6s %12s %14s %14s %12s\n", "mode", "nodes", "wall ms", "total io MB", "max node MB", "net MB")

	var rows []ClusterRow

	// Single node: one session does everything.
	{
		s := riot.NewSession(cfg)
		a, err := s.NewMatrix(l, m, gen(1))
		if err != nil {
			s.Close()
			return nil, err
		}
		b, err := s.NewMatrix(m, k, gen(2))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.ResetStats() // bill the multiply, not operand creation
		start := time.Now()
		c, err := a.MatMul(b)
		if err != nil {
			s.Close()
			return nil, err
		}
		if _, err := c.Values(); err != nil {
			s.Close()
			return nil, err
		}
		wall := time.Since(start).Nanoseconds()
		io := s.Report().IOBytes
		s.Close()
		rows = append(rows, ClusterRow{Mode: "single", Nodes: 1, WallNS: wall,
			TotalIOBytes: io, MaxNodeIOBytes: io})
	}

	// 2-node cluster: the coordinator scatters A's tile bands and
	// broadcasts the small B; each node reduces its partials locally.
	{
		c, err := harness.Start(harness.Options{Nodes: 2, Config: cfg, Seed: "bench"})
		if err != nil {
			return nil, err
		}
		a, err := c.Sess.NewMatrix(l, m, gen(1))
		if err != nil {
			c.Close()
			return nil, err
		}
		b, err := c.Sess.NewMatrix(m, k, gen(2))
		if err != nil {
			c.Close()
			return nil, err
		}
		for i := 0; i < 2; i++ {
			c.NodeSession(i).ResetStats()
		}
		start := time.Now()
		prod, err := c.Coord.MatMul(a, b)
		if err != nil {
			c.Close()
			return nil, err
		}
		if _, err := prod.Values(); err != nil {
			c.Close()
			return nil, err
		}
		wall := time.Since(start).Nanoseconds()
		row := ClusterRow{Mode: "cluster", Nodes: 2, WallNS: wall}
		for i := 0; i < 2; i++ {
			ioBytes := c.NodeSession(i).Report().IOBytes
			row.TotalIOBytes += ioBytes
			if ioBytes > row.MaxNodeIOBytes {
				row.MaxNodeIOBytes = ioBytes
			}
		}
		ns := c.Coord.NetStats()
		row.NetBytes = ns.BytesSent + ns.BytesRecv
		c.Close()
		rows = append(rows, row)
	}

	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %12.2f %14.2f %14.2f %12.2f\n",
			r.Mode, r.Nodes, float64(r.WallNS)/1e6,
			float64(r.TotalIOBytes)/(1<<20), float64(r.MaxNodeIOBytes)/(1<<20),
			float64(r.NetBytes)/(1<<20))
	}
	return rows, nil
}
