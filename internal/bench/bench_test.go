package bench

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestFigure1ShapesAndOutput(t *testing.T) {
	var sb strings.Builder
	rows, err := Figure1([]int64{1 << 14, 1 << 15}, 256, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 engines × 2 sizes
		t.Fatalf("%d rows", len(rows))
	}
	get := func(engine string, n int64) Figure1Row {
		for _, r := range rows {
			if r.Engine == engine && r.N == n {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", engine, n)
		return Figure1Row{}
	}
	for _, n := range []int64{1 << 14, 1 << 15} {
		straw := get("riot-db/strawman", n)
		matnamed := get("riot-db/matnamed", n)
		full := get("riot-db/full", n)
		if !(straw.IOMB > matnamed.IOMB && matnamed.IOMB > full.IOMB) {
			t.Fatalf("n=%d: IO ordering violated: %.1f / %.1f / %.1f",
				n, straw.IOMB, matnamed.IOMB, full.IOMB)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 1(a)") || !strings.Contains(out, "plain-r") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

func TestFigure2Reduction(t *testing.T) {
	rows, err := Figure2(1<<14, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	eager, deferred := rows[0], rows[1]
	if deferred.Elements*100 > eager.Elements {
		t.Fatalf("pushdown saved too little: %d vs %d elements", deferred.Elements, eager.Elements)
	}
	if deferred.IOBlocks >= eager.IOBlocks {
		t.Fatalf("pushdown did not reduce I/O: %d vs %d", deferred.IOBlocks, eager.IOBlocks)
	}
}

func TestFigure3aOrdering(t *testing.T) {
	rows := Figure3a([]float64{100000}, []float64{2}, nil)
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Strategy] = r.IOBlocks
	}
	if !(byName["RIOT-DB"] > byName["BNLJ-Inspired"] &&
		byName["BNLJ-Inspired"] > byName["Square/In-Order"] &&
		byName["Square/In-Order"] > byName["Square/Opt-Order"]) {
		t.Fatalf("figure 3a ordering violated: %v", byName)
	}
	// The paper's magnitudes: RIOT-DB in the 1e12..1e13 band.
	if byName["RIOT-DB"] < 1e11 || byName["RIOT-DB"] > 1e14 {
		t.Fatalf("RIOT-DB cost %e outside the paper's band", byName["RIOT-DB"])
	}
}

func TestFigure3bGapWidens(t *testing.T) {
	rows := Figure3b([]float64{2, 8}, nil)
	ratio := func(s float64) float64 {
		var in, opt float64
		for _, r := range rows {
			if r.Skew == s && r.Strategy == "Square/In-Order" {
				in = r.IOBlocks
			}
			if r.Skew == s && r.Strategy == "Square/Opt-Order" {
				opt = r.IOBlocks
			}
		}
		return in / opt
	}
	if ratio(8) <= ratio(2) {
		t.Fatalf("gap did not widen with skew: %.2f vs %.2f", ratio(2), ratio(8))
	}
}

func TestValidateModelCloseForSquare(t *testing.T) {
	rows, err := ValidateModel([]int64{96}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Kernel == "square-tiled" {
			ratio := r.Measured / r.Predicted
			if ratio < 0.8 || ratio > 1.2 {
				t.Fatalf("square-tiled measured/model = %.2f, want ~1", ratio)
			}
		}
	}
}

// TestPlannerEstimatesWithinFactor is the planner's accuracy property:
// on every ablation workload the plan's estimated device blocks must be
// within a factor of two of the measured Reads+Writes, and the
// cost-based plans must match or beat the heuristic's measured blocks.
func TestPlannerEstimatesWithinFactor(t *testing.T) {
	rows, err := PlannerAblation(nil)
	if err != nil {
		t.Fatal(err)
	}
	actual := map[string]map[string]int64{}
	for _, r := range rows {
		if r.ActualBlocks <= 0 {
			t.Errorf("%s/%s: no measured I/O", r.Workload, r.Strategy)
			continue
		}
		ratio := r.EstBlocks / float64(r.ActualBlocks)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s/%s: estimated %v blocks vs measured %d (ratio %.2f), want within 2x",
				r.Workload, r.Strategy, r.EstBlocks, r.ActualBlocks, ratio)
		}
		if actual[r.Workload] == nil {
			actual[r.Workload] = map[string]int64{}
		}
		actual[r.Workload][r.Strategy] = r.ActualBlocks
	}
	for wl, byStrat := range actual {
		h, c := byStrat["heuristic"], byStrat["cost-based"]
		if h == 0 || c == 0 {
			t.Errorf("%s: missing a strategy row", wl)
			continue
		}
		if c > h {
			t.Errorf("%s: cost-based measured %d blocks, worse than heuristic's %d", wl, c, h)
		}
	}
}

func TestWALAblationShapes(t *testing.T) {
	rows, err := WALAblation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (off/interval/always)", len(rows))
	}
	for _, r := range rows {
		if r.PubPerSec <= 0 {
			t.Fatalf("%s: publishes/sec = %g", r.Mode, r.PubPerSec)
		}
	}
	off, always := rows[0], rows[2]
	if off.Fsyncs != 0 || off.GroupedAcks != 0 {
		t.Fatalf("off mode recorded WAL activity: %+v", off)
	}
	if always.Fsyncs == 0 {
		t.Fatal("always mode never fsynced")
	}
	// Every ack must have gone through a group flush. How much the
	// flushes batch depends on the host filesystem's fsync latency, so
	// the deterministic batching assertion lives in the wal package
	// tests; here we only require the flusher never exceeds one fsync
	// per publish.
	if always.GroupedAcks != int64(always.Publishes) {
		t.Fatalf("grouped acks = %d, want %d", always.GroupedAcks, always.Publishes)
	}
	if always.Fsyncs > int64(always.Publishes) {
		t.Fatalf("%d fsyncs for %d publishes", always.Fsyncs, always.Publishes)
	}
}

func TestCacheAblationWarmUnderTenPercent(t *testing.T) {
	rows, err := CacheAblation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows (cold/warm x 1,4,8 sessions), got %d", len(rows))
	}
	byKey := make(map[string]CacheRow, len(rows))
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Mode, r.Sessions)] = r
	}
	for _, n := range []int{1, 4, 8} {
		cold := byKey[fmt.Sprintf("cold/%d", n)]
		warm := byKey[fmt.Sprintf("warm/%d", n)]
		if cold.BlockReads == 0 {
			t.Fatalf("cold run at %d sessions read nothing — workload fits the pool", n)
		}
		// The issue's acceptance bar, asserted again in CI bench-smoke.
		if warm.BlockReads*10 > cold.BlockReads {
			t.Errorf("%d sessions: warm read %d blocks, cold %d — want warm <= 10%%",
				n, warm.BlockReads, cold.BlockReads)
		}
		if warm.Hits < int64(n) {
			t.Errorf("%d sessions: only %d cache hits", n, warm.Hits)
		}
		if cold.Hits != 0 {
			t.Errorf("cold mode reported cache hits: %+v", cold)
		}
	}
}
