package bench

import (
	"fmt"
	"io"
	"time"

	"riot/internal/disk"
	"riot/internal/engine"
)

// SemiringRow is one semi-ring ablation measurement: a min-plus
// shortest-path closure over a block-diagonal adjacency matrix, run on
// the tile-compressed sparse kind vs its densified equivalent.
type SemiringRow struct {
	Density    float64 // stored nnz / n² of the adjacency matrix
	Mode       string  // "sparse" or "densified"
	NNZ        int64   // adjacency nonzeros
	BlockReads int64
	IOMB       float64
	SimSec     float64 // disk.DefaultCostModel over the measured stats
	WallNS     int64   // real wall-clock of the closure
}

// SemiringAblation is the tentpole's I/O benchmark: the reflexive-
// transitive min-plus closure (all-pairs shortest paths) of a ~1%-dense
// block-diagonal digraph — disjoint small components, so reachability
// (and with it every closure iterate) stays block-diagonal. The sparse
// closure's block reads follow the tile directory: empty tile pairs are
// skipped before any I/O, so each squaring touches only the diagonal
// band of the grid. The densified equivalent holds the same +Inf-padded
// weights in dense tiles and must stream the full grid through every
// X ← X ⊕ (X ⊗ X) iteration — the semi-ring generalization buys the
// same tile-skipping wins the standard sparse kernels get, because
// absence annihilates in every ring.
func SemiringAblation(w io.Writer) ([]SemiringRow, error) {
	const n = 512
	const comp = 6 // component size: 6 gives ~1% stored density
	const blockElems = 1024
	const memElems = 1 << 16

	// Block-diagonal digraph: nodes i and j connect iff they share a
	// component (i/comp == j/comp); a hash picks integer weights 1..9.
	gen := func(i, j int64) float64 {
		if i == j || i/comp != j/comp {
			return 0
		}
		h := uint64(i*n+j)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		return float64(1 + (h>>32)%9)
	}

	fmt.Fprintf(w, "semiring ablation: %d×%d block-diagonal min-plus closure (components of %d, B=%d, M=%d)\n",
		n, n, comp, blockElems, memElems)
	fmt.Fprintf(w, "%-10s %-10s %10s %12s %10s %10s %14s\n", "density", "mode", "nnz", "blk reads", "io MB", "sim s", "wall")

	var rows []SemiringRow
	for _, mode := range []string{"densified", "sparse"} {
		r := engine.NewRIOT(blockElems, memElems, engine.DefaultTimeModel)
		a, err := r.NewMatrix(n, n, gen)
		if err != nil {
			return nil, err
		}
		nnz, err := r.NNZ(a)
		if err != nil {
			return nil, err
		}
		if mode == "sparse" {
			if a, err = r.ToSparse(a); err != nil {
				return nil, err
			}
		}
		r.ResetStats()
		start := time.Now()
		if _, err := r.Closure(a, "minplus"); err != nil {
			return nil, err
		}
		wall := time.Since(start).Nanoseconds()
		st := r.Pool().Device().Stats()
		row := SemiringRow{
			Density:    float64(nnz) / float64(n*n),
			Mode:       mode,
			NNZ:        nnz,
			BlockReads: st.BlocksRead,
			IOMB:       st.TotalMB(),
			SimSec:     disk.DefaultCostModel.Seconds(st),
			WallNS:     wall,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10.4f %-10s %10d %12d %10.1f %10.2f %14s\n",
			row.Density, row.Mode, row.NNZ, row.BlockReads, row.IOMB, row.SimSec, time.Duration(row.WallNS))
		if err := r.Close(); err != nil {
			return nil, err
		}
	}
	if len(rows) == 2 && rows[1].BlockReads > 0 {
		fmt.Fprintf(w, "sparse closure reads %.1fx fewer blocks than the densified equivalent\n",
			float64(rows[0].BlockReads)/float64(rows[1].BlockReads))
	}
	return rows, nil
}
