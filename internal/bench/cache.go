package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"riot"
)

// CacheRow is one result-cache ablation measurement: N sessions
// replaying one shared workload, without the cache ("cold") or against
// a warmed cache ("warm").
type CacheRow struct {
	Mode       string // "cold" (cache off) or "warm" (cache on, after warmup)
	Sessions   int
	BlockReads int64 // device block reads across the N measured replays
	WallNS     int64 // real wall-clock across the N measured replays
	Hits       int64 // cache hits observed (0 in cold mode)
	Misses     int64 // cache probes that missed (0 in cold mode)
}

// CacheAblation measures what the cross-session result cache is worth:
// N sessions replay one shared workload — a gather of 2000 elements
// scattered across a published 100k-element vector, roughly 3x the
// buffer pool, followed by an elementwise pipeline — and we count
// device block reads and wall-clock. The cold rows run with the cache
// off: every session re-reads the leaf's blocks, random-access, because
// the pool cannot hold it. The warm rows run with the cache on after
// one unmeasured warmup replay: the whole DAG is served from the cached
// 8-block temp, so the measured replays read (near) zero blocks no
// matter how many sessions repeat them. Both modes get the same warmup
// so the comparison is steady-state against steady-state.
func CacheAblation(w io.Writer) ([]CacheRow, error) {
	const (
		blockElems = 256
		memElems   = 1 << 15 // 128 frames: the leaf cannot stay resident
		leafLen    = 100_000 // ~391 blocks
		idxLen     = 2000    // 8-block cached result
	)
	fmt.Fprintf(w, "result-cache ablation: gather of %d from %d elements (pool %d blocks)\n",
		idxLen, leafLen, memElems/blockElems)
	fmt.Fprintf(w, "%-6s %9s %12s %12s %8s %8s\n", "mode", "sessions", "blk reads", "wall ms", "hits", "misses")

	var rows []CacheRow
	for _, sessions := range []int{1, 4, 8} {
		for _, mode := range []string{"cold", "warm"} {
			row, err := cacheAblationRun(mode, sessions, blockElems, memElems, leafLen, idxLen)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "%-6s %9d %12d %12.2f %8d %8d\n",
				row.Mode, row.Sessions, row.BlockReads, float64(row.WallNS)/1e6, row.Hits, row.Misses)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// cacheAblationRun measures one (mode, sessions) cell on a fresh
// database directory.
func cacheAblationRun(mode string, sessions, blockElems int, memElems, leafLen, idxLen int64) (CacheRow, error) {
	dir, err := os.MkdirTemp("", "riot-cachebench-*")
	if err != nil {
		return CacheRow{}, err
	}
	defer os.RemoveAll(dir)

	db, err := riot.Open(dir, riot.Config{
		BlockElems:  blockElems,
		MemElems:    memElems,
		Workers:     1,
		ResultCache: mode == "warm",
		MaxSessions: 2,
	})
	if err != nil {
		return CacheRow{}, err
	}
	defer db.Close()

	// Publish the shared leaves: the big vector and a scattered index.
	pub, err := db.NewSession()
	if err != nil {
		return CacheRow{}, err
	}
	x, err := pub.NewVector(leafLen, func(i int64) float64 { return float64(i%9973) + 1 })
	if err != nil {
		return CacheRow{}, err
	}
	if err := pub.Publish("x", x); err != nil {
		return CacheRow{}, err
	}
	idx, err := pub.NewVector(idxLen, func(i int64) float64 { return float64((i * 9973) % leafLen) })
	if err != nil {
		return CacheRow{}, err
	}
	if err := pub.Publish("idx", idx); err != nil {
		return CacheRow{}, err
	}
	if err := pub.Close(); err != nil {
		return CacheRow{}, err
	}

	replay := func() error {
		s, err := db.NewSession()
		if err != nil {
			return err
		}
		defer s.Close()
		xs, err := s.Lookup("x")
		if err != nil {
			return err
		}
		is, err := s.Lookup("idx")
		if err != nil {
			return err
		}
		g, err := xs.Gather(is)
		if err != nil {
			return err
		}
		y, err := g.Mul(2)
		if err != nil {
			return err
		}
		d, err := y.Sqrt()
		if err != nil {
			return err
		}
		_, err = d.Values()
		return err
	}

	// One unmeasured warmup in both modes: warm installs the cached
	// result; cold reaches whatever steady-state pool residency the
	// workload allows without a cache.
	if err := replay(); err != nil {
		return CacheRow{}, err
	}

	before := db.Pool().Device().Stats().BlocksRead
	start := time.Now()
	for i := 0; i < sessions; i++ {
		if err := replay(); err != nil {
			return CacheRow{}, err
		}
	}
	row := CacheRow{
		Mode:       mode,
		Sessions:   sessions,
		BlockReads: db.Pool().Device().Stats().BlocksRead - before,
		WallNS:     time.Since(start).Nanoseconds(),
	}
	if st, on := db.CacheStats(); on {
		row.Hits, row.Misses = st.Hits, st.Misses
	}
	return row, nil
}
